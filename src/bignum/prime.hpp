// prime.hpp — primality testing and prime generation for the RSA/ECC layer.
#pragma once

#include <cstdint>

#include "bignum/biguint.hpp"
#include "bignum/random.hpp"

namespace mont::bignum {

/// Miller-Rabin probabilistic primality test.
/// `rounds` random bases are drawn from `rng`; 2 and 3 are always tried
/// first so small composites are rejected deterministically.
bool IsProbablePrime(const BigUInt& candidate, RandomBigUInt& rng,
                     int rounds = 24);

/// Generates a random probable prime with exactly `bits` significant bits.
/// The top two bits are forced to 1 (so RSA moduli p*q reach full length)
/// and candidates are sieved by the small primes below 1000 before the
/// Miller-Rabin rounds.
BigUInt GeneratePrime(std::size_t bits, RandomBigUInt& rng, int rounds = 24);

}  // namespace mont::bignum
