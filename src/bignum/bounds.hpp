// bounds.hpp — the Montgomery-parameter bound theory the paper builds on
// (§2/§3, Walter CT-RSA 2002 and Iwamura et al.).
//
// The paper's efficiency edge over Blum-Paar comes entirely from choosing
// the smallest R that makes subtraction-free chaining safe.  This module
// implements the bound arithmetic so the claims can be checked as code:
// the chaining condition R > 4N (Eq. 2), the per-product output bound
// T < XY/R + N, the minimal exponent r with 2^r > 4N, and the comparison
// against Iwamura's R >= 2^(n+2) and Blum-Paar's R = 2^(n+3).
#pragma once

#include <cstddef>

#include "bignum/biguint.hpp"

namespace mont::bignum {

/// Smallest exponent r such that R = 2^r satisfies Walter's chaining
/// condition 4N < R.  For an l-bit modulus this is l+2, except when
/// N < 2^l/... i.e. whenever 4N < 2^(l+1) already holds (N just above a
/// power of two region boundary it is still l+2; the function computes it
/// exactly rather than assuming).
std::size_t MinimalWalterExponent(const BigUInt& modulus);

/// Walter's condition 4N < R for an arbitrary R.
bool SatisfiesWalterBound(const BigUInt& modulus, const BigUInt& r);

/// Eq. 2 of the paper: for X, Y < 2N and R >= kN the Montgomery output
/// obeys T < (4/k)N + N.  Returns a strict upper bound on T = (XY + mN)/R
/// given bounds x_bound/y_bound on the inputs (exclusive).
BigUInt MontgomeryOutputBound(const BigUInt& x_bound, const BigUInt& y_bound,
                              const BigUInt& r, const BigUInt& modulus);

/// True when outputs bounded by `bound` can be fed back as inputs, i.e.
/// bound <= 2N (the closure property Algorithm 2 needs).
bool IsChainable(const BigUInt& bound, const BigUInt& modulus);

/// Iteration counts the three designs need for an l-bit modulus:
struct IterationComparison {
  std::size_t walter;    // this paper: l + 2
  std::size_t iwamura;   // R >= 2^(n+2) read as a non-strict bound: l + 2
  std::size_t blum_paar; // R = 2^(n+3): l + 3
};
IterationComparison CompareIterationCounts(std::size_t l);

}  // namespace mont::bignum
