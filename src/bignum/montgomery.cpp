#include "bignum/montgomery.hpp"

#include <stdexcept>

namespace mont::bignum {

// ---------------------------------------------------------------------------
// BitSerialMontgomery
// ---------------------------------------------------------------------------

BitSerialMontgomery::BitSerialMontgomery(BigUInt modulus)
    : modulus_(std::move(modulus)) {
  if (!modulus_.IsOdd() || modulus_ <= BigUInt{1}) {
    throw std::invalid_argument("BitSerialMontgomery: modulus must be odd > 1");
  }
  modulus_times_two_ = modulus_ << 1;
  l_ = modulus_.BitLength();
  r_ = BigUInt::PowerOfTwo(l_ + 2);
  r2_ = (r_ * r_) % modulus_;
}

BigUInt BitSerialMontgomery::MultiplyAlg1(const BigUInt& x,
                                          const BigUInt& y) const {
  if (x >= modulus_ || y >= modulus_) {
    throw std::invalid_argument("MultiplyAlg1: inputs must be < N");
  }
  // Radix-2 instance of the paper's Algorithm 1: alpha = 1, so N' = 1 and
  // m_i = (t_0 + x_i*y_0) mod 2.
  BigUInt t;
  for (std::size_t i = 0; i < l_; ++i) {
    const bool xi = x.Bit(i);
    const bool mi = t.Bit(0) ^ (xi && y.Bit(0));
    if (xi) t += y;
    if (mi) t += modulus_;
    t >>= 1;
  }
  if (t >= modulus_) t -= modulus_;  // Step 6-8: the final subtraction.
  return t;
}

BigUInt BitSerialMontgomery::MultiplyAlg2(const BigUInt& x,
                                          const BigUInt& y) const {
  if (x >= modulus_times_two_ || y >= modulus_times_two_) {
    throw std::invalid_argument("MultiplyAlg2: inputs must be < 2N");
  }
  // Algorithm 2: l+2 iterations, no final subtraction.  The loop invariant
  // T < 2N after the last iteration follows from Walter's bound R > 4N.
  BigUInt t;
  for (std::size_t i = 0; i < l_ + 2; ++i) {
    const bool xi = x.Bit(i);
    const bool mi = t.Bit(0) ^ (xi && y.Bit(0));
    if (xi) t += y;
    if (mi) t += modulus_;
    t >>= 1;
  }
  return t;
}

BigUInt BitSerialMontgomery::FromMont(const BigUInt& x) const {
  BigUInt t = MultiplyAlg2(x, BigUInt{1});
  // The paper proves Mont(T, 1) <= N with equality impossible for nonzero
  // residues; reduce anyway so callers always receive a canonical value.
  if (t >= modulus_) t -= modulus_;
  return t;
}

BigUInt BitSerialMontgomery::ModExp(const BigUInt& base,
                                    const BigUInt& exponent) const {
  const BigUInt m = base % modulus_;
  if (exponent.IsZero()) return BigUInt{1} % modulus_;
  // Pre-computation: feed MR mod 2N into the exponentiator.
  const BigUInt m_mont = ToMont(m);
  BigUInt a = m_mont;
  // Algorithm 3: left-to-right square-and-multiply, top bit consumed by the
  // initialisation A <- M.
  for (std::size_t i = exponent.BitLength() - 1; i-- > 0;) {
    a = MultiplyAlg2(a, a);
    if (exponent.Bit(i)) a = MultiplyAlg2(a, m_mont);
  }
  // Post-processing: one Montgomery multiplication by 1 removes R.
  return FromMont(a);
}

// ---------------------------------------------------------------------------
// WordMontgomery
// ---------------------------------------------------------------------------

WordMontgomery::WordMontgomery(BigUInt modulus) : modulus_(std::move(modulus)) {
  if (!modulus_.IsOdd() || modulus_ <= BigUInt{1}) {
    throw std::invalid_argument("WordMontgomery: modulus must be odd > 1");
  }
  n_.assign(modulus_.Limbs().begin(), modulus_.Limbs().end());

  // n'_0 = -N^-1 mod 2^32 via Newton iteration on the 2-adic inverse:
  // inv *= 2 - n0*inv doubles the number of correct low bits each step.
  const Limb n0 = n_[0];
  Limb inv = 1;
  for (int iter = 0; iter < 5; ++iter) {
    inv = static_cast<Limb>(inv * (2u - n0 * inv));
  }
  n_prime_0_ = static_cast<Limb>(0u - inv);

  const BigUInt r = BigUInt::PowerOfTwo(32 * n_.size());
  r_mod_n_ = r % modulus_;
  r2_mod_n_ = (r_mod_n_ * r_mod_n_) % modulus_;
  one_mont_ = r_mod_n_;
}

std::vector<WordMontgomery::Limb> WordMontgomery::PadToLimbs(
    const BigUInt& v) const {
  std::vector<Limb> out(n_.size(), 0);
  for (std::size_t i = 0; i < n_.size(); ++i) out[i] = v.LimbAt(i);
  return out;
}

void WordMontgomery::ConditionalSubtract(std::vector<Limb>& value,
                                         std::span<const Limb> modulus) {
  // value has modulus.size() + 1 limbs (top limb is the CIOS/SOS overflow).
  // Subtract modulus when value >= modulus.
  const std::size_t s = modulus.size();
  bool geq = value[s] != 0;
  if (!geq) {
    geq = true;  // assume equal until a difference is found
    for (std::size_t i = s; i-- > 0;) {
      if (value[i] != modulus[i]) {
        geq = value[i] > modulus[i];
        break;
      }
    }
  }
  if (!geq) {
    value.resize(s);
    return;
  }
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < s; ++i) {
    std::int64_t diff = static_cast<std::int64_t>(value[i]) -
                        static_cast<std::int64_t>(modulus[i]) - borrow;
    borrow = diff < 0 ? 1 : 0;
    value[i] = static_cast<Limb>(diff & 0xffffffff);
  }
  value.resize(s);
}

std::vector<WordMontgomery::Limb> WordMontgomery::MultiplyCios(
    std::span<const Limb> a, std::span<const Limb> b) const {
  const std::size_t s = n_.size();
  std::vector<Limb> t(s + 2, 0);
  for (std::size_t i = 0; i < s; ++i) {
    // t += a[i] * b
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < s; ++j) {
      const std::uint64_t v =
          static_cast<std::uint64_t>(a[i]) * b[j] + t[j] + carry;
      t[j] = static_cast<Limb>(v);
      carry = v >> 32;
    }
    std::uint64_t v = static_cast<std::uint64_t>(t[s]) + carry;
    t[s] = static_cast<Limb>(v);
    t[s + 1] = static_cast<Limb>(v >> 32);

    // m = t[0] * n'_0 mod 2^32; t = (t + m*N) / 2^32
    const Limb m = static_cast<Limb>(t[0] * n_prime_0_);
    carry = (static_cast<std::uint64_t>(m) * n_[0] + t[0]) >> 32;
    for (std::size_t j = 1; j < s; ++j) {
      const std::uint64_t w =
          static_cast<std::uint64_t>(m) * n_[j] + t[j] + carry;
      t[j - 1] = static_cast<Limb>(w);
      carry = w >> 32;
    }
    v = static_cast<std::uint64_t>(t[s]) + carry;
    t[s - 1] = static_cast<Limb>(v);
    t[s] = t[s + 1] + static_cast<Limb>(v >> 32);
    t[s + 1] = 0;
  }
  t.resize(s + 1);
  ConditionalSubtract(t, n_);
  return t;
}

std::vector<WordMontgomery::Limb> WordMontgomery::MultiplySos(
    std::span<const Limb> a, std::span<const Limb> b) const {
  const std::size_t s = n_.size();
  // Phase 1: full double-width product.
  std::vector<Limb> t(2 * s + 1, 0);
  for (std::size_t i = 0; i < s; ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < s; ++j) {
      const std::uint64_t v =
          static_cast<std::uint64_t>(a[i]) * b[j] + t[i + j] + carry;
      t[i + j] = static_cast<Limb>(v);
      carry = v >> 32;
    }
    t[i + s] = static_cast<Limb>(carry);
  }
  // Phase 2: interleaved reduction, one limb of m per outer step.
  for (std::size_t i = 0; i < s; ++i) {
    const Limb m = static_cast<Limb>(t[i] * n_prime_0_);
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < s; ++j) {
      const std::uint64_t v =
          static_cast<std::uint64_t>(m) * n_[j] + t[i + j] + carry;
      t[i + j] = static_cast<Limb>(v);
      carry = v >> 32;
    }
    // Propagate the carry up through the remaining limbs.
    for (std::size_t j = i + s; carry != 0 && j < t.size(); ++j) {
      const std::uint64_t v = static_cast<std::uint64_t>(t[j]) + carry;
      t[j] = static_cast<Limb>(v);
      carry = v >> 32;
    }
  }
  // Phase 3: divide by R = 2^(32 s) and reduce.
  std::vector<Limb> u(t.begin() + static_cast<std::ptrdiff_t>(s), t.end());
  ConditionalSubtract(u, n_);
  return u;
}

std::vector<WordMontgomery::Limb> WordMontgomery::MultiplyFips(
    std::span<const Limb> a, std::span<const Limb> b) const {
  const std::size_t s = n_.size();
  std::vector<Limb> m(s, 0);
  std::vector<Limb> u(s + 1, 0);
  unsigned __int128 acc = 0;
  // Lower half: accumulate column i of a*b + m*N, emit m[i], shift.
  for (std::size_t i = 0; i < s; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      acc += static_cast<unsigned __int128>(a[j]) * b[i - j];
      acc += static_cast<unsigned __int128>(m[j]) * n_[i - j];
    }
    acc += static_cast<unsigned __int128>(a[i]) * b[0];
    m[i] = static_cast<Limb>(static_cast<Limb>(acc) * n_prime_0_);
    acc += static_cast<unsigned __int128>(m[i]) * n_[0];
    acc >>= 32;
  }
  // Upper half: remaining columns produce the result limbs directly.
  for (std::size_t i = s; i < 2 * s; ++i) {
    for (std::size_t j = i - s + 1; j < s; ++j) {
      acc += static_cast<unsigned __int128>(a[j]) * b[i - j];
      acc += static_cast<unsigned __int128>(m[j]) * n_[i - j];
    }
    u[i - s] = static_cast<Limb>(acc);
    acc >>= 32;
  }
  u[s] = static_cast<Limb>(acc);
  ConditionalSubtract(u, n_);
  return u;
}

BigUInt WordMontgomery::Multiply(const BigUInt& x, const BigUInt& y,
                                 Variant variant) const {
  if (x >= modulus_ || y >= modulus_) {
    throw std::invalid_argument("WordMontgomery::Multiply: inputs must be < N");
  }
  const std::vector<Limb> a = PadToLimbs(x);
  const std::vector<Limb> b = PadToLimbs(y);
  std::vector<Limb> out;
  switch (variant) {
    case Variant::kCios:
      out = MultiplyCios(a, b);
      break;
    case Variant::kSos:
      out = MultiplySos(a, b);
      break;
    case Variant::kFips:
      out = MultiplyFips(a, b);
      break;
  }
  return BigUInt::FromLimbs(out);
}

BigUInt WordMontgomery::ToMont(const BigUInt& x) const {
  return Multiply(x % modulus_, r2_mod_n_);
}

BigUInt WordMontgomery::FromMont(const BigUInt& x) const {
  return Multiply(x, BigUInt{1});
}

BigUInt WordMontgomery::ModExp(const BigUInt& base, const BigUInt& exponent,
                               Variant variant) const {
  if (exponent.IsZero()) return BigUInt{1} % modulus_;
  const BigUInt m_mont = ToMont(base % modulus_);
  BigUInt a = m_mont;
  for (std::size_t i = exponent.BitLength() - 1; i-- > 0;) {
    a = Multiply(a, a, variant);
    if (exponent.Bit(i)) a = Multiply(a, m_mont, variant);
  }
  return Multiply(a, BigUInt{1}, variant);
}

}  // namespace mont::bignum
