// montgomery.hpp — software reference implementations of Montgomery modular
// multiplication, exactly as specified in the paper.
//
// Two layers are provided:
//
//  * BitSerialMontgomery — radix-2 references for the paper's Algorithm 1
//    (with final subtraction, R = 2^l) and Algorithm 2 (without final
//    subtraction, R = 2^(l+2), Walter's bound 4N < R).  These are the golden
//    models the cycle-accurate systolic hardware in src/core is checked
//    against, and they expose the paper's pre-/post-processing flow for
//    modular exponentiation (§4.5).
//
//  * WordMontgomery — word-level (2^32 radix) CIOS / SOS / FIPS variants as
//    classified by Koç, Acar & Kaliski.  These serve as software baselines in
//    bench_software and as the fast arithmetic behind the crypto layer.
#pragma once

#include <cstdint>
#include <vector>

#include "bignum/biguint.hpp"

namespace mont::bignum {

/// Radix-2 Montgomery multiplication contexts for an odd modulus N.
///
/// Terminology follows the paper: l is the bit length of N (N < 2^l), the
/// Montgomery parameter of Algorithm 2 is R = 2^(l+2) which satisfies
/// Walter's optimal bound 4N < R, so that inputs x, y < 2N produce an output
/// T < 2N with no final subtraction.
class BitSerialMontgomery {
 public:
  /// Requires an odd modulus > 1; throws std::invalid_argument otherwise.
  explicit BitSerialMontgomery(BigUInt modulus);

  const BigUInt& Modulus() const { return modulus_; }
  /// Bit length l of the modulus.
  std::size_t l() const { return l_; }
  /// Algorithm 2's Montgomery parameter R = 2^(l+2).
  const BigUInt& R() const { return r_; }
  /// R^2 mod N, the pre-computation constant for domain entry.
  const BigUInt& RSquaredModN() const { return r2_; }

  /// Algorithm 1 (paper): l iterations, R1 = 2^l, inputs in [0, N),
  /// output x*y*2^-l mod N, fully reduced below N by the final subtraction.
  BigUInt MultiplyAlg1(const BigUInt& x, const BigUInt& y) const;

  /// Algorithm 2 (paper): l+2 iterations, R = 2^(l+2), inputs in [0, 2N),
  /// output congruent to x*y*R^-1 (mod N) and guaranteed < 2N.
  /// Throws std::invalid_argument if an input is >= 2N.
  BigUInt MultiplyAlg2(const BigUInt& x, const BigUInt& y) const;

  /// Montgomery-domain entry: Mont(x, R^2 mod N) = x*R mod 2N.
  BigUInt ToMont(const BigUInt& x) const { return MultiplyAlg2(x, r2_); }
  /// Montgomery-domain exit: Mont(x, 1) = x*R^-1 mod 2N; per the paper this
  /// final step is bounded by N (reduced below N here for API convenience).
  BigUInt FromMont(const BigUInt& x) const;

  /// Modular exponentiation per the paper's §4.5 flow: pre-multiply by
  /// R^2 mod N, left-to-right square-and-multiply over Algorithm 2, then a
  /// final Mont(·, 1).  Returns base^exponent mod N.
  BigUInt ModExp(const BigUInt& base, const BigUInt& exponent) const;

 private:
  BigUInt modulus_;
  BigUInt modulus_times_two_;
  std::size_t l_ = 0;
  BigUInt r_;
  BigUInt r2_;
};

/// Word-level Montgomery multiplication (radix 2^32) for an odd modulus.
/// Values are kept in [0, N); R = 2^(32*s) where s is the limb count of N.
class WordMontgomery {
 public:
  enum class Variant {
    kCios,  ///< Coarsely Integrated Operand Scanning (default).
    kSos,   ///< Separated Operand Scanning.
    kFips,  ///< Finely Integrated Product Scanning.
  };

  /// Requires an odd modulus > 1; throws std::invalid_argument otherwise.
  explicit WordMontgomery(BigUInt modulus);

  const BigUInt& Modulus() const { return modulus_; }
  std::size_t LimbCount() const { return n_.size(); }
  /// R mod N (the Montgomery representation of 1).
  const BigUInt& OneMont() const { return one_mont_; }
  /// R^2 mod N, the domain-entry factor: ToMont(x) == Multiply(x, R^2).
  const BigUInt& RSquaredModN() const { return r2_mod_n_; }

  /// Montgomery product x*y*R^-1 mod N for x, y in [0, N).
  BigUInt Multiply(const BigUInt& x, const BigUInt& y,
                   Variant variant = Variant::kCios) const;

  BigUInt ToMont(const BigUInt& x) const;
  BigUInt FromMont(const BigUInt& x) const;

  /// base^exponent mod N via left-to-right square-and-multiply in the
  /// Montgomery domain with the chosen multiplication variant.
  BigUInt ModExp(const BigUInt& base, const BigUInt& exponent,
                 Variant variant = Variant::kCios) const;

 private:
  using Limb = BigUInt::Limb;

  std::vector<Limb> MultiplyCios(std::span<const Limb> a,
                                 std::span<const Limb> b) const;
  std::vector<Limb> MultiplySos(std::span<const Limb> a,
                                std::span<const Limb> b) const;
  std::vector<Limb> MultiplyFips(std::span<const Limb> a,
                                 std::span<const Limb> b) const;
  std::vector<Limb> PadToLimbs(const BigUInt& v) const;
  static void ConditionalSubtract(std::vector<Limb>& value,
                                  std::span<const Limb> modulus);

  BigUInt modulus_;
  std::vector<Limb> n_;     // modulus limbs, padded form
  Limb n_prime_0_ = 0;      // -N^-1 mod 2^32
  BigUInt r_mod_n_;
  BigUInt r2_mod_n_;
  BigUInt one_mont_;
};

}  // namespace mont::bignum
