// gf2.hpp — GF(2)[x] polynomial arithmetic and GF(2^m) fields.
//
// The paper's §2 cites Savaş/Tenca/Koç's dual-field multiplier — the same
// Montgomery datapath serving both GF(p) and GF(2^m) — and its
// introduction names GF(2^n) as the other field ECC commonly uses.  This
// module provides the software side of that extension: carry-less
// polynomial arithmetic over GF(2) (bit vectors carried by BigUInt), the
// bit-serial Montgomery multiplication for polynomials on the *same
// schedule* as the paper's Algorithm 2 (l+2 iterations, R = x^(l+2)), and
// a GF(2^m) field type.  The hardware counterpart is the Mmmc's dual-field
// mode: identical cells with the carry chain force-gated to zero.
#pragma once

#include <cstddef>

#include "bignum/biguint.hpp"

namespace mont::bignum {

/// Polynomials over GF(2), little-endian bits: bit i = coefficient of x^i.
namespace gf2 {

/// Degree of the polynomial; Degree(0) == 0 by convention (callers check
/// IsZero when the distinction matters).
std::size_t Degree(const BigUInt& poly);

/// Carry-less product a(x) * b(x).
BigUInt Mul(const BigUInt& a, const BigUInt& b);

/// a(x) mod f(x); f must be nonzero.
BigUInt Mod(const BigUInt& a, const BigUInt& f);

/// Bit-serial Montgomery multiplication for polynomials, mirroring the
/// paper's Algorithm 2: iterations i = 0..l+1 where l = deg(f), inputs of
/// degree <= l, result a*b*x^-(l+2) mod f.  f(0) must be 1 (always true
/// for irreducible f), which makes the quotient digit m_i = t_0 + a_i*b_0.
BigUInt MontMul(const BigUInt& a, const BigUInt& b, const BigUInt& f);

}  // namespace gf2

/// The finite field GF(2^m) = GF(2)[x]/(f) for an irreducible f of degree m.
class Gf2Field {
 public:
  /// `modulus` is f(x); requires deg >= 2 and f(0) = 1.  Irreducibility is
  /// the caller's responsibility (standard polynomials are provided below).
  explicit Gf2Field(BigUInt modulus);

  std::size_t Degree() const { return m_; }
  const BigUInt& Modulus() const { return f_; }

  BigUInt Add(const BigUInt& a, const BigUInt& b) const;  // XOR
  BigUInt Mul(const BigUInt& a, const BigUInt& b) const;
  BigUInt Square(const BigUInt& a) const;
  /// a^-1 via a^(2^m - 2); throws std::domain_error for a = 0.
  BigUInt Inverse(const BigUInt& a) const;
  BigUInt Pow(const BigUInt& a, const BigUInt& e) const;

  /// The AES field GF(2^8), f = x^8 + x^4 + x^3 + x + 1.
  static Gf2Field Aes();
  /// The NIST B-163 / K-163 field, f = x^163 + x^7 + x^6 + x^3 + 1.
  static Gf2Field Nist163();

 private:
  BigUInt f_;
  std::size_t m_;
};

}  // namespace mont::bignum
