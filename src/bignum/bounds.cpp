#include "bignum/bounds.hpp"

namespace mont::bignum {

std::size_t MinimalWalterExponent(const BigUInt& modulus) {
  const BigUInt four_n = modulus << 2;
  // Smallest r with 2^r > 4N is BitLength(4N) when 4N is not a power of
  // two, else BitLength(4N) ... careful: 2^r > v  <=>  r >= BitLength(v)
  // unless v is exactly 2^(BitLength-1), where r = BitLength(v) - 1 + 1.
  // Since N is odd, 4N is never a power of two, so:
  return four_n.BitLength();
}

bool SatisfiesWalterBound(const BigUInt& modulus, const BigUInt& r) {
  return (modulus << 2) < r;
}

BigUInt MontgomeryOutputBound(const BigUInt& x_bound, const BigUInt& y_bound,
                              const BigUInt& r, const BigUInt& modulus) {
  // T = (XY + mN)/R with m < R: T < XY/R + N, rounded up.
  const BigUInt xy = x_bound * y_bound;
  BigUInt quotient, remainder;
  BigUInt::DivMod(xy, r, quotient, remainder);
  BigUInt bound = quotient + modulus;
  if (!remainder.IsZero()) bound += BigUInt{1};
  return bound;
}

bool IsChainable(const BigUInt& bound, const BigUInt& modulus) {
  return bound <= (modulus << 1);
}

IterationComparison CompareIterationCounts(std::size_t l) {
  return IterationComparison{
      .walter = l + 2,
      .iwamura = l + 2,
      .blum_paar = l + 3,
  };
}

}  // namespace mont::bignum
