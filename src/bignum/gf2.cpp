#include "bignum/gf2.hpp"

#include <algorithm>
#include <stdexcept>

namespace mont::bignum {

namespace gf2 {

std::size_t Degree(const BigUInt& poly) {
  const std::size_t bits = poly.BitLength();
  return bits == 0 ? 0 : bits - 1;
}

BigUInt Mul(const BigUInt& a, const BigUInt& b) {
  BigUInt out;
  if (a.IsZero() || b.IsZero()) return out;
  BigUInt shifted = b;
  const std::size_t bits = a.BitLength();
  for (std::size_t i = 0; i < bits; ++i) {
    if (a.Bit(i)) {
      // out ^= b << i, bit by bit on the limb level via XOR of BigUInts.
      // BigUInt has no XOR operator; emulate with limb-level work.
      const std::size_t width =
          std::max(out.BitLength(), shifted.BitLength());
      BigUInt next;
      for (std::size_t bit = 0; bit < width; ++bit) {
        if (out.Bit(bit) != shifted.Bit(bit)) next.SetBit(bit, true);
      }
      out = std::move(next);
    }
    shifted <<= 1;
  }
  return out;
}

BigUInt Mod(const BigUInt& a, const BigUInt& f) {
  if (f.IsZero()) throw std::domain_error("gf2::Mod: zero modulus");
  BigUInt r = a;
  const std::size_t df = Degree(f);
  while (!r.IsZero() && Degree(r) >= df) {
    const BigUInt aligned = f << (Degree(r) - df);
    const std::size_t width = r.BitLength();
    BigUInt next;
    for (std::size_t bit = 0; bit < width; ++bit) {
      if (r.Bit(bit) != aligned.Bit(bit)) next.SetBit(bit, true);
    }
    r = std::move(next);
  }
  return r;
}

BigUInt MontMul(const BigUInt& a, const BigUInt& b, const BigUInt& f) {
  if (!f.Bit(0)) throw std::invalid_argument("gf2::MontMul: f(0) must be 1");
  const std::size_t l = Degree(f);
  // Same skeleton as the paper's Algorithm 2 with carries removed:
  // T <- (T + a_i*B + m_i*F) / x, additions are XOR.
  BigUInt t;
  for (std::size_t i = 0; i <= l + 1; ++i) {
    const bool ai = a.Bit(i);
    const bool mi = t.Bit(0) != (ai && b.Bit(0)) ? true : false;
    const std::size_t width =
        std::max({t.BitLength(), b.BitLength(), f.BitLength()}) + 1;
    BigUInt next;
    for (std::size_t bit = 0; bit < width; ++bit) {
      bool v = t.Bit(bit);
      if (ai) v = v != b.Bit(bit);
      if (mi) v = v != f.Bit(bit);
      if (v) next.SetBit(bit, true);
    }
    next >>= 1;
    t = std::move(next);
  }
  return t;
}

}  // namespace gf2

Gf2Field::Gf2Field(BigUInt modulus) : f_(std::move(modulus)) {
  if (f_.BitLength() < 3 || !f_.Bit(0)) {
    throw std::invalid_argument("Gf2Field: need deg(f) >= 2 and f(0) = 1");
  }
  m_ = gf2::Degree(f_);
}

BigUInt Gf2Field::Add(const BigUInt& a, const BigUInt& b) const {
  const std::size_t width = std::max(a.BitLength(), b.BitLength());
  BigUInt out;
  for (std::size_t bit = 0; bit < width; ++bit) {
    if (a.Bit(bit) != b.Bit(bit)) out.SetBit(bit, true);
  }
  return out;
}

BigUInt Gf2Field::Mul(const BigUInt& a, const BigUInt& b) const {
  return gf2::Mod(gf2::Mul(a, b), f_);
}

BigUInt Gf2Field::Square(const BigUInt& a) const { return Mul(a, a); }

BigUInt Gf2Field::Pow(const BigUInt& a, const BigUInt& e) const {
  BigUInt result{1};
  if (e.IsZero()) return result;
  const BigUInt base = gf2::Mod(a, f_);
  for (std::size_t i = e.BitLength(); i-- > 0;) {
    result = Square(result);
    if (e.Bit(i)) result = Mul(result, base);
  }
  return result;
}

BigUInt Gf2Field::Inverse(const BigUInt& a) const {
  if (gf2::Mod(a, f_).IsZero()) {
    throw std::domain_error("Gf2Field::Inverse of zero");
  }
  // a^(2^m - 2) = a^-1 in GF(2^m).
  BigUInt exponent = BigUInt::PowerOfTwo(m_) - BigUInt{2};
  return Pow(a, exponent);
}

Gf2Field Gf2Field::Aes() {
  return Gf2Field(BigUInt{0x11bu});  // x^8 + x^4 + x^3 + x + 1
}

Gf2Field Gf2Field::Nist163() {
  BigUInt f = BigUInt::PowerOfTwo(163);
  f.SetBit(7, true);
  f.SetBit(6, true);
  f.SetBit(3, true);
  f.SetBit(0, true);
  return Gf2Field(std::move(f));
}

}  // namespace mont::bignum
