#include "bignum/biguint.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace mont::bignum {

namespace {

constexpr std::uint64_t kLimbBase = 1ull << BigUInt::kLimbBits;

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

BigUInt::BigUInt(std::uint64_t value) {
  if (value != 0) {
    limbs_.push_back(static_cast<Limb>(value & 0xffffffffu));
    if (value >> 32) limbs_.push_back(static_cast<Limb>(value >> 32));
  }
}

BigUInt BigUInt::FromHex(std::string_view hex) {
  if (hex.substr(0, 2) == "0x" || hex.substr(0, 2) == "0X") hex.remove_prefix(2);
  if (hex.empty()) throw std::invalid_argument("BigUInt::FromHex: empty string");
  BigUInt out;
  out.limbs_.assign((hex.size() * 4 + kLimbBits - 1) / kLimbBits, 0);
  std::size_t bit = 0;
  for (std::size_t i = hex.size(); i-- > 0;) {
    const int digit = HexDigit(hex[i]);
    if (digit < 0) throw std::invalid_argument("BigUInt::FromHex: bad digit");
    out.limbs_[bit / kLimbBits] |=
        static_cast<Limb>(digit) << (bit % kLimbBits);
    bit += 4;
  }
  out.Normalize();
  return out;
}

BigUInt BigUInt::FromBytesBE(std::span<const std::uint8_t> bytes) {
  BigUInt out;
  out.limbs_.assign((bytes.size() + 3) / 4, 0);
  std::size_t shift = 0;
  std::size_t limb = 0;
  // bytes[size-1] is the least significant byte; walk it into limb 0 up.
  for (std::size_t i = bytes.size(); i-- > 0;) {
    out.limbs_[limb] |= static_cast<Limb>(bytes[i]) << shift;
    shift += 8;
    if (shift == kLimbBits) {
      shift = 0;
      ++limb;
    }
  }
  out.Normalize();
  return out;
}

BigUInt BigUInt::FromDec(std::string_view dec) {
  if (dec.empty()) throw std::invalid_argument("BigUInt::FromDec: empty string");
  BigUInt out;
  for (const char c : dec) {
    if (c < '0' || c > '9') throw std::invalid_argument("BigUInt::FromDec: bad digit");
    // out = out * 10 + digit, done in place on the limb vector.
    WideLimb carry = static_cast<WideLimb>(c - '0');
    for (auto& limb : out.limbs_) {
      const WideLimb v = static_cast<WideLimb>(limb) * 10u + carry;
      limb = static_cast<Limb>(v & 0xffffffffu);
      carry = v >> 32;
    }
    if (carry != 0) out.limbs_.push_back(static_cast<Limb>(carry));
  }
  out.Normalize();
  return out;
}

BigUInt BigUInt::PowerOfTwo(std::size_t exponent) {
  BigUInt out;
  out.limbs_.assign(exponent / kLimbBits + 1, 0);
  out.limbs_.back() = Limb{1} << (exponent % kLimbBits);
  return out;
}

BigUInt BigUInt::FromLimbs(std::span<const Limb> limbs) {
  BigUInt out;
  out.limbs_.assign(limbs.begin(), limbs.end());
  out.Normalize();
  return out;
}

std::size_t BigUInt::BitLength() const {
  if (limbs_.empty()) return 0;
  const Limb top = limbs_.back();
  return (limbs_.size() - 1) * kLimbBits +
         (kLimbBits - static_cast<std::size_t>(__builtin_clz(top)));
}

bool BigUInt::Bit(std::size_t index) const {
  const std::size_t limb = index / kLimbBits;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (index % kLimbBits)) & 1u;
}

std::size_t BigUInt::PopCount() const {
  std::size_t total = 0;
  for (const Limb limb : limbs_) total += static_cast<std::size_t>(__builtin_popcount(limb));
  return total;
}

std::uint64_t BigUInt::ToUint64() const {
  std::uint64_t v = limbs_.empty() ? 0u : limbs_[0];
  if (limbs_.size() > 1) v |= static_cast<std::uint64_t>(limbs_[1]) << 32;
  return v;
}

void BigUInt::SetBit(std::size_t index, bool value) {
  const std::size_t limb = index / kLimbBits;
  if (limb >= limbs_.size()) {
    if (!value) return;
    limbs_.resize(limb + 1, 0);
  }
  const Limb mask = Limb{1} << (index % kLimbBits);
  if (value) {
    limbs_[limb] |= mask;
  } else {
    limbs_[limb] &= ~mask;
    Normalize();
  }
}

void BigUInt::Normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

int BigUInt::Compare(const BigUInt& a, const BigUInt& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigUInt& BigUInt::operator+=(const BigUInt& rhs) {
  if (limbs_.size() < rhs.limbs_.size()) limbs_.resize(rhs.limbs_.size(), 0);
  WideLimb carry = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const WideLimb sum = static_cast<WideLimb>(limbs_[i]) +
                         (i < rhs.limbs_.size() ? rhs.limbs_[i] : 0u) + carry;
    limbs_[i] = static_cast<Limb>(sum & 0xffffffffu);
    carry = sum >> 32;
    if (carry == 0 && i >= rhs.limbs_.size()) break;
  }
  if (carry != 0) limbs_.push_back(static_cast<Limb>(carry));
  return *this;
}

BigUInt& BigUInt::operator-=(const BigUInt& rhs) {
  if (Compare(*this, rhs) < 0) {
    throw std::underflow_error("BigUInt subtraction would be negative");
  }
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(limbs_[i]) -
                        (i < rhs.limbs_.size() ? rhs.limbs_[i] : 0u) - borrow;
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kLimbBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    limbs_[i] = static_cast<Limb>(diff);
    if (borrow == 0 && i >= rhs.limbs_.size()) break;
  }
  assert(borrow == 0);
  Normalize();
  return *this;
}

BigUInt operator+(const BigUInt& a, const BigUInt& b) {
  BigUInt out = a;
  out += b;
  return out;
}

BigUInt operator-(const BigUInt& a, const BigUInt& b) {
  BigUInt out = a;
  out -= b;
  return out;
}

BigUInt BigUInt::MulSchoolbook(std::span<const Limb> a, std::span<const Limb> b) {
  BigUInt out;
  if (a.empty() || b.empty()) return out;
  out.limbs_.assign(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    WideLimb carry = 0;
    const WideLimb ai = a[i];
    for (std::size_t j = 0; j < b.size(); ++j) {
      const WideLimb v = ai * b[j] + out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<Limb>(v & 0xffffffffu);
      carry = v >> 32;
    }
    out.limbs_[i + b.size()] = static_cast<Limb>(carry);
  }
  out.Normalize();
  return out;
}

BigUInt BigUInt::MulKaratsuba(std::span<const Limb> a, std::span<const Limb> b) {
  if (a.size() < kKaratsubaThreshold || b.size() < kKaratsubaThreshold) {
    return MulSchoolbook(a, b);
  }
  const std::size_t half = std::max(a.size(), b.size()) / 2;
  const auto lo = [&](std::span<const Limb> v) {
    return v.subspan(0, std::min(half, v.size()));
  };
  const auto hi = [&](std::span<const Limb> v) {
    return v.size() > half ? v.subspan(half) : std::span<const Limb>{};
  };
  const BigUInt a_lo = FromLimbs(lo(a)), a_hi = FromLimbs(hi(a));
  const BigUInt b_lo = FromLimbs(lo(b)), b_hi = FromLimbs(hi(b));

  const BigUInt z0 = MulKaratsuba(a_lo.limbs_, b_lo.limbs_);
  const BigUInt z2 = MulKaratsuba(a_hi.limbs_, b_hi.limbs_);
  const BigUInt sum_a = a_lo + a_hi;
  const BigUInt sum_b = b_lo + b_hi;
  BigUInt z1 = MulKaratsuba(sum_a.limbs_, sum_b.limbs_);
  z1 -= z0;
  z1 -= z2;

  BigUInt out = z2;
  out <<= (half * kLimbBits);
  out += z1;
  out <<= (half * kLimbBits);
  out += z0;
  return out;
}

BigUInt operator*(const BigUInt& a, const BigUInt& b) {
  return BigUInt::MulKaratsuba(a.limbs_, b.limbs_);
}

BigUInt& BigUInt::operator*=(const BigUInt& rhs) {
  *this = *this * rhs;
  return *this;
}

BigUInt& BigUInt::operator<<=(std::size_t bits) {
  if (limbs_.empty() || bits == 0) return *this;
  const std::size_t limb_shift = bits / kLimbBits;
  const std::size_t bit_shift = bits % kLimbBits;
  limbs_.insert(limbs_.begin(), limb_shift, 0);
  if (bit_shift != 0) {
    Limb carry = 0;
    for (std::size_t i = limb_shift; i < limbs_.size(); ++i) {
      const Limb next_carry = limbs_[i] >> (kLimbBits - bit_shift);
      limbs_[i] = (limbs_[i] << bit_shift) | carry;
      carry = next_carry;
    }
    if (carry != 0) limbs_.push_back(carry);
  }
  return *this;
}

BigUInt& BigUInt::operator>>=(std::size_t bits) {
  if (limbs_.empty() || bits == 0) return *this;
  const std::size_t limb_shift = bits / kLimbBits;
  if (limb_shift >= limbs_.size()) {
    limbs_.clear();
    return *this;
  }
  limbs_.erase(limbs_.begin(),
               limbs_.begin() + static_cast<std::ptrdiff_t>(limb_shift));
  const std::size_t bit_shift = bits % kLimbBits;
  if (bit_shift != 0) {
    for (std::size_t i = 0; i + 1 < limbs_.size(); ++i) {
      limbs_[i] = (limbs_[i] >> bit_shift) |
                  (limbs_[i + 1] << (kLimbBits - bit_shift));
    }
    limbs_.back() >>= bit_shift;
  }
  Normalize();
  return *this;
}

BigUInt BigUInt::operator<<(std::size_t bits) const {
  BigUInt out = *this;
  out <<= bits;
  return out;
}

BigUInt BigUInt::operator>>(std::size_t bits) const {
  BigUInt out = *this;
  out >>= bits;
  return out;
}

// Knuth TAOCP vol. 2, Algorithm D (4.3.1), with 32-bit digits.
void BigUInt::DivMod(const BigUInt& dividend, const BigUInt& divisor,
                     BigUInt& quotient, BigUInt& remainder) {
  if (divisor.IsZero()) throw std::domain_error("BigUInt division by zero");
  if (Compare(dividend, divisor) < 0) {
    quotient = BigUInt{};
    remainder = dividend;
    return;
  }
  if (divisor.limbs_.size() == 1) {
    // Short division.
    const WideLimb d = divisor.limbs_[0];
    BigUInt q;
    q.limbs_.assign(dividend.limbs_.size(), 0);
    WideLimb rem = 0;
    for (std::size_t i = dividend.limbs_.size(); i-- > 0;) {
      const WideLimb cur = (rem << 32) | dividend.limbs_[i];
      q.limbs_[i] = static_cast<Limb>(cur / d);
      rem = cur % d;
    }
    q.Normalize();
    quotient = std::move(q);
    remainder = BigUInt{rem};
    return;
  }

  // D1: normalize so that the divisor's top limb has its high bit set.
  const int shift = __builtin_clz(divisor.limbs_.back());
  BigUInt u = dividend << static_cast<std::size_t>(shift);
  const BigUInt v = divisor << static_cast<std::size_t>(shift);
  const std::size_t n = v.limbs_.size();
  const std::size_t m = u.limbs_.size() - n;
  u.limbs_.push_back(0);  // u has m+n+1 digits.

  BigUInt q;
  q.limbs_.assign(m + 1, 0);
  const WideLimb v_top = v.limbs_[n - 1];
  const WideLimb v_next = v.limbs_[n - 2];

  for (std::size_t j = m + 1; j-- > 0;) {
    // D3: estimate q_hat.
    const WideLimb numerator =
        (static_cast<WideLimb>(u.limbs_[j + n]) << 32) | u.limbs_[j + n - 1];
    WideLimb q_hat = numerator / v_top;
    WideLimb r_hat = numerator % v_top;
    while (q_hat >= kLimbBase ||
           q_hat * v_next > ((r_hat << 32) | u.limbs_[j + n - 2])) {
      --q_hat;
      r_hat += v_top;
      if (r_hat >= kLimbBase) break;
    }
    // D4: multiply-and-subtract u[j..j+n] -= q_hat * v.
    std::int64_t borrow = 0;
    WideLimb carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const WideLimb product = q_hat * v.limbs_[i] + carry;
      carry = product >> 32;
      const std::int64_t diff = static_cast<std::int64_t>(u.limbs_[i + j]) -
                                static_cast<std::int64_t>(product & 0xffffffffu) -
                                borrow;
      u.limbs_[i + j] = static_cast<Limb>(diff & 0xffffffff);
      borrow = diff < 0 ? 1 : 0;
    }
    const std::int64_t diff = static_cast<std::int64_t>(u.limbs_[j + n]) -
                              static_cast<std::int64_t>(carry) - borrow;
    u.limbs_[j + n] = static_cast<Limb>(diff & 0xffffffff);

    if (diff < 0) {
      // D6: q_hat was one too large; add v back.
      --q_hat;
      WideLimb add_carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const WideLimb sum =
            static_cast<WideLimb>(u.limbs_[i + j]) + v.limbs_[i] + add_carry;
        u.limbs_[i + j] = static_cast<Limb>(sum & 0xffffffffu);
        add_carry = sum >> 32;
      }
      u.limbs_[j + n] =
          static_cast<Limb>(u.limbs_[j + n] + static_cast<Limb>(add_carry));
    }
    q.limbs_[j] = static_cast<Limb>(q_hat);
  }

  q.Normalize();
  quotient = std::move(q);
  u.limbs_.resize(n);
  u.Normalize();
  u >>= static_cast<std::size_t>(shift);
  remainder = std::move(u);
}

BigUInt operator/(const BigUInt& a, const BigUInt& b) {
  BigUInt q, r;
  BigUInt::DivMod(a, b, q, r);
  return q;
}

BigUInt operator%(const BigUInt& a, const BigUInt& b) {
  BigUInt q, r;
  BigUInt::DivMod(a, b, q, r);
  return r;
}

BigUInt BigUInt::Gcd(BigUInt a, BigUInt b) {
  if (a.IsZero()) return b;
  if (b.IsZero()) return a;
  // Binary GCD: strip common powers of two, then subtract.
  std::size_t common_twos = 0;
  while (!a.IsOdd() && !b.IsOdd()) {
    a >>= 1;
    b >>= 1;
    ++common_twos;
  }
  while (!a.IsOdd()) a >>= 1;
  while (!b.IsZero()) {
    while (!b.IsOdd()) b >>= 1;
    if (Compare(a, b) > 0) std::swap(a, b);
    b -= a;
  }
  return a << common_twos;
}

BigUInt BigUInt::ModInverse(const BigUInt& a, const BigUInt& m) {
  // Extended Euclid on (a mod m, m) tracking only the coefficient of a.
  // Signed bookkeeping is emulated with (value, negative?) pairs.
  if (m.IsZero()) throw std::domain_error("ModInverse: zero modulus");
  BigUInt r0 = m, r1 = a % m;
  BigUInt s0 = BigUInt{0}, s1 = BigUInt{1};
  bool s0_neg = false, s1_neg = false;
  while (!r1.IsZero()) {
    BigUInt q, r2;
    DivMod(r0, r1, q, r2);
    // s2 = s0 - q*s1 with sign tracking.
    const BigUInt qs1 = q * s1;
    BigUInt s2;
    bool s2_neg = false;
    if (s0_neg == s1_neg) {
      // s0 and q*s1 have the same sign: result is s0 - qs1 in magnitude.
      if (Compare(s0, qs1) >= 0) {
        s2 = s0 - qs1;
        s2_neg = s0_neg;
      } else {
        s2 = qs1 - s0;
        s2_neg = !s0_neg;
      }
    } else {
      s2 = s0 + qs1;
      s2_neg = s0_neg;
    }
    r0 = std::move(r1);
    r1 = std::move(r2);
    s0 = std::move(s1);
    s0_neg = s1_neg;
    s1 = std::move(s2);
    s1_neg = s2_neg;
  }
  if (!r0.IsOne()) throw std::domain_error("ModInverse: not invertible");
  BigUInt inv = s0 % m;
  if (s0_neg && !inv.IsZero()) inv = m - inv;
  return inv;
}

BigUInt BigUInt::ModExp(const BigUInt& base, const BigUInt& exponent,
                        const BigUInt& modulus) {
  if (modulus.IsZero()) throw std::domain_error("ModExp: zero modulus");
  if (modulus.IsOne()) return BigUInt{};
  BigUInt result{1};
  const BigUInt b = base % modulus;
  const std::size_t bits = exponent.BitLength();
  for (std::size_t i = bits; i-- > 0;) {
    result = (result * result) % modulus;
    if (exponent.Bit(i)) result = (result * b) % modulus;
  }
  return result;
}

std::vector<std::uint8_t> BigUInt::ToBytesBE(std::size_t min_length) const {
  const std::size_t natural = (BitLength() + 7) / 8;
  const std::size_t length = std::max(natural, min_length);
  std::vector<std::uint8_t> out(length, 0);
  for (std::size_t i = 0; i < natural; ++i) {
    // Byte i of the value (little-endian index) lands at out[length-1-i].
    const Limb limb = limbs_[i / 4];
    out[length - 1 - i] = static_cast<std::uint8_t>(limb >> (8 * (i % 4)));
  }
  return out;
}

std::string BigUInt::ToHex() const {
  if (limbs_.empty()) return "0";
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(limbs_.size() * 8);
  bool leading = true;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int nibble = 7; nibble >= 0; --nibble) {
      const unsigned d = (limbs_[i] >> (nibble * 4)) & 0xfu;
      if (leading && d == 0) continue;
      leading = false;
      out.push_back(kDigits[d]);
    }
  }
  return out;
}

std::string BigUInt::ToDec() const {
  if (limbs_.empty()) return "0";
  std::vector<Limb> work = limbs_;
  std::string out;
  while (!work.empty()) {
    // Divide the limb vector by 10^9 and emit 9 decimal digits at a time.
    constexpr WideLimb kChunk = 1000000000u;
    WideLimb rem = 0;
    for (std::size_t i = work.size(); i-- > 0;) {
      const WideLimb cur = (rem << 32) | work[i];
      work[i] = static_cast<Limb>(cur / kChunk);
      rem = cur % kChunk;
    }
    while (!work.empty() && work.back() == 0) work.pop_back();
    for (int d = 0; d < 9; ++d) {
      out.push_back(static_cast<char>('0' + rem % 10));
      rem /= 10;
      if (work.empty() && rem == 0) break;
    }
  }
  while (out.size() > 1 && out.back() == '0') out.pop_back();
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace mont::bignum
