// biguint.hpp — arbitrary-precision unsigned integer arithmetic.
//
// This is the software substrate of the reproduction: every hardware model in
// src/core is validated against the reference arithmetic implemented here.
// No external bignum library (GMP, OpenSSL) is used; everything is built from
// 32-bit limbs with 64-bit intermediates so the code is portable and easy to
// audit.
//
// Representation: little-endian vector of uint32_t limbs, always normalized
// (no trailing zero limbs; the value zero is the empty vector).
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace mont::bignum {

/// Arbitrary-precision unsigned integer.
///
/// Supports the operations required by the Montgomery-multiplier
/// reproduction: ring arithmetic, shifts, bit access, division with
/// remainder (Knuth Algorithm D), gcd / modular inverse and decimal/hex
/// conversion.  Multiplication switches from schoolbook to Karatsuba above
/// `kKaratsubaThreshold` limbs.
class BigUInt {
 public:
  using Limb = std::uint32_t;
  using WideLimb = std::uint64_t;
  static constexpr int kLimbBits = 32;
  /// Operand size (in limbs) above which multiplication uses Karatsuba.
  static constexpr std::size_t kKaratsubaThreshold = 24;

  /// Constructs zero.
  BigUInt() = default;
  /// Constructs from a machine word.
  BigUInt(std::uint64_t value);  // NOLINT(google-explicit-constructor)

  /// Parses a lowercase/uppercase hexadecimal string (no 0x prefix required,
  /// but one is accepted). Throws std::invalid_argument on bad input.
  static BigUInt FromHex(std::string_view hex);
  /// Parses a decimal string. Throws std::invalid_argument on bad input.
  static BigUInt FromDec(std::string_view dec);
  /// Builds the value 2^exponent.
  static BigUInt PowerOfTwo(std::size_t exponent);
  /// Builds a value from raw little-endian limbs (normalizes a copy).
  static BigUInt FromLimbs(std::span<const Limb> limbs);
  /// Parses a big-endian byte string (the RFC 8017 OS2IP primitive; an
  /// empty span reads as zero).
  static BigUInt FromBytesBE(std::span<const std::uint8_t> bytes);

  // -- observers -------------------------------------------------------------

  bool IsZero() const { return limbs_.empty(); }
  bool IsOdd() const { return !limbs_.empty() && (limbs_[0] & 1u); }
  bool IsOne() const { return limbs_.size() == 1 && limbs_[0] == 1u; }
  /// Number of significant bits; zero has bit length 0.
  std::size_t BitLength() const;
  /// Returns bit `index` (0 = least significant); out-of-range bits read 0.
  bool Bit(std::size_t index) const;
  /// Number of set bits (Hamming weight).
  std::size_t PopCount() const;
  /// Number of limbs in the normalized representation.
  std::size_t LimbCount() const { return limbs_.size(); }
  /// Limb `i` (0 = least significant); out-of-range limbs read 0.
  Limb LimbAt(std::size_t i) const { return i < limbs_.size() ? limbs_[i] : 0u; }
  /// Read-only access to the limb vector (little-endian, normalized).
  std::span<const Limb> Limbs() const { return limbs_; }
  /// Converts to uint64_t; truncates silently if the value does not fit.
  std::uint64_t ToUint64() const;

  // -- mutators --------------------------------------------------------------

  /// Sets bit `index` to `value`, growing the representation as needed.
  void SetBit(std::size_t index, bool value);

  // -- arithmetic ------------------------------------------------------------

  friend BigUInt operator+(const BigUInt& a, const BigUInt& b);
  /// Subtraction requires a >= b; throws std::underflow_error otherwise.
  friend BigUInt operator-(const BigUInt& a, const BigUInt& b);
  friend BigUInt operator*(const BigUInt& a, const BigUInt& b);
  /// Quotient; throws std::domain_error when b == 0.
  friend BigUInt operator/(const BigUInt& a, const BigUInt& b);
  /// Remainder; throws std::domain_error when b == 0.
  friend BigUInt operator%(const BigUInt& a, const BigUInt& b);

  BigUInt& operator+=(const BigUInt& rhs);
  BigUInt& operator-=(const BigUInt& rhs);
  BigUInt& operator*=(const BigUInt& rhs);
  BigUInt& operator<<=(std::size_t bits);
  BigUInt& operator>>=(std::size_t bits);
  BigUInt operator<<(std::size_t bits) const;
  BigUInt operator>>(std::size_t bits) const;

  /// Computes quotient and remainder in one pass (Knuth Algorithm D).
  /// Throws std::domain_error when divisor == 0.
  static void DivMod(const BigUInt& dividend, const BigUInt& divisor,
                     BigUInt& quotient, BigUInt& remainder);

  // -- comparisons -----------------------------------------------------------

  friend bool operator==(const BigUInt& a, const BigUInt& b) {
    return a.limbs_ == b.limbs_;
  }
  friend bool operator!=(const BigUInt& a, const BigUInt& b) { return !(a == b); }
  friend bool operator<(const BigUInt& a, const BigUInt& b) {
    return Compare(a, b) < 0;
  }
  friend bool operator<=(const BigUInt& a, const BigUInt& b) {
    return Compare(a, b) <= 0;
  }
  friend bool operator>(const BigUInt& a, const BigUInt& b) {
    return Compare(a, b) > 0;
  }
  friend bool operator>=(const BigUInt& a, const BigUInt& b) {
    return Compare(a, b) >= 0;
  }
  /// Three-way comparison: negative if a < b, 0 if equal, positive if a > b.
  static int Compare(const BigUInt& a, const BigUInt& b);

  // -- number theory helpers ---------------------------------------------------

  /// Greatest common divisor (binary GCD).
  static BigUInt Gcd(BigUInt a, BigUInt b);
  /// Modular inverse of a mod m; throws std::domain_error when gcd(a,m) != 1.
  static BigUInt ModInverse(const BigUInt& a, const BigUInt& m);
  /// Plain square-and-multiply modular exponentiation (left-to-right).
  static BigUInt ModExp(const BigUInt& base, const BigUInt& exponent,
                        const BigUInt& modulus);

  // -- conversion --------------------------------------------------------------

  /// Lowercase hexadecimal, no prefix, "0" for zero.
  std::string ToHex() const;
  /// Decimal string.
  std::string ToDec() const;
  /// Big-endian byte string, left-padded with zeros to at least
  /// `min_length` bytes (the RFC 8017 I2OSP primitive).  A value needing
  /// more than `min_length` bytes gets its natural length — never
  /// truncated.  Zero with min_length 0 yields an empty vector.
  std::vector<std::uint8_t> ToBytesBE(std::size_t min_length = 0) const;

 private:
  void Normalize();
  static BigUInt MulSchoolbook(std::span<const Limb> a, std::span<const Limb> b);
  static BigUInt MulKaratsuba(std::span<const Limb> a, std::span<const Limb> b);

  std::vector<Limb> limbs_;
};

}  // namespace mont::bignum
