#include "bignum/random.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

namespace mont::bignum {

namespace {

std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(sm);
}

std::uint64_t Xoshiro256::Next() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::NextBelow(std::uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = bound * ((~std::uint64_t{0} / bound));
  std::uint64_t v = Next();
  while (v >= limit) v = Next();
  return v % bound;
}

BigUInt RandomBigUInt::ExactBits(std::size_t bits) {
  if (bits == 0) return BigUInt{};
  BigUInt out;
  for (std::size_t bit = 0; bit < bits; bit += 64) {
    const std::uint64_t word = rng_.Next();
    for (std::size_t i = 0; i < 64 && bit + i < bits; ++i) {
      out.SetBit(bit + i, (word >> i) & 1u);
    }
  }
  out.SetBit(bits - 1, true);
  return out;
}

BigUInt RandomBigUInt::Below(const BigUInt& bound) {
  const std::size_t bits = bound.BitLength();
  if (bits == 0) return BigUInt{};
  // Rejection sampling over [0, 2^bits).
  for (;;) {
    BigUInt candidate;
    for (std::size_t bit = 0; bit < bits; bit += 64) {
      const std::uint64_t word = rng_.Next();
      for (std::size_t i = 0; i < 64 && bit + i < bits; ++i) {
        candidate.SetBit(bit + i, (word >> i) & 1u);
      }
    }
    if (candidate < bound) return candidate;
  }
}

BigUInt RandomBigUInt::OddExactBits(std::size_t bits) {
  BigUInt out = ExactBits(bits);
  out.SetBit(0, true);
  return out;
}

BigUInt RandomBigUInt::BalancedExactBits(std::size_t bits) {
  if (bits == 0) return BigUInt{};
  BigUInt out;
  out.SetBit(bits - 1, true);
  if (bits == 1) return out;
  // Choose exactly floor((bits-1)/2) of the remaining positions — together
  // with the forced top bit this gives Hamming weight round(bits/2).
  std::vector<std::size_t> positions(bits - 1);
  std::iota(positions.begin(), positions.end(), std::size_t{0});
  // Fisher-Yates partial shuffle.
  const std::size_t want = (bits - 1) / 2;
  for (std::size_t i = 0; i < want; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng_.NextBelow(positions.size() - i));
    std::swap(positions[i], positions[j]);
    out.SetBit(positions[i], true);
  }
  return out;
}

}  // namespace mont::bignum
