#include "bignum/prime.hpp"

#include <array>
#include <stdexcept>

#include "bignum/montgomery.hpp"

namespace mont::bignum {

namespace {

// Primes below 1000, used for trial-division sieving.
constexpr std::array<std::uint32_t, 168> kSmallPrimes = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,
    47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107,
    109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181,
    191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263,
    269, 271, 277, 281, 283, 293, 307, 311, 313, 317, 331, 337, 347, 349,
    353, 359, 367, 373, 379, 383, 389, 397, 401, 409, 419, 421, 431, 433,
    439, 443, 449, 457, 461, 463, 467, 479, 487, 491, 499, 503, 509, 521,
    523, 541, 547, 557, 563, 569, 571, 577, 587, 593, 599, 601, 607, 613,
    617, 619, 631, 641, 643, 647, 653, 659, 661, 673, 677, 683, 691, 701,
    709, 719, 727, 733, 739, 743, 751, 757, 761, 769, 773, 787, 797, 809,
    811, 821, 823, 827, 829, 839, 853, 857, 859, 863, 877, 881, 883, 887,
    907, 911, 919, 929, 937, 941, 947, 953, 967, 971, 977, 983, 991, 997};

bool MillerRabinWitness(const BigUInt& n, const BigUInt& n_minus_1,
                        const BigUInt& odd_part, std::size_t twos,
                        const WordMontgomery& ctx, const BigUInt& base) {
  BigUInt x = ctx.ModExp(base, odd_part);
  if (x.IsOne() || x == n_minus_1) return false;
  for (std::size_t i = 1; i < twos; ++i) {
    x = (x * x) % n;
    if (x == n_minus_1) return false;
    if (x.IsOne()) return true;  // nontrivial square root of 1 found
  }
  return true;  // composite witnessed
}

}  // namespace

bool IsProbablePrime(const BigUInt& candidate, RandomBigUInt& rng, int rounds) {
  if (candidate < BigUInt{2}) return false;
  for (const std::uint32_t p : kSmallPrimes) {
    const BigUInt prime{p};
    if (candidate == prime) return true;
    if ((candidate % prime).IsZero()) return false;
  }
  // candidate is odd and > 1000 here.
  const BigUInt n_minus_1 = candidate - BigUInt{1};
  BigUInt odd_part = n_minus_1;
  std::size_t twos = 0;
  while (!odd_part.IsOdd()) {
    odd_part >>= 1;
    ++twos;
  }
  const WordMontgomery ctx(candidate);
  const BigUInt two{2}, three{3};
  if (MillerRabinWitness(candidate, n_minus_1, odd_part, twos, ctx, two)) {
    return false;
  }
  if (MillerRabinWitness(candidate, n_minus_1, odd_part, twos, ctx, three)) {
    return false;
  }
  for (int round = 0; round < rounds; ++round) {
    const BigUInt base =
        rng.Below(candidate - BigUInt{3}) + BigUInt{2};  // in [2, n-2]
    if (MillerRabinWitness(candidate, n_minus_1, odd_part, twos, ctx, base)) {
      return false;
    }
  }
  return true;
}

BigUInt GeneratePrime(std::size_t bits, RandomBigUInt& rng, int rounds) {
  if (bits < 2) throw std::invalid_argument("GeneratePrime: bits must be >= 2");
  for (;;) {
    BigUInt candidate = rng.OddExactBits(bits);
    if (bits >= 2) candidate.SetBit(bits - 2, true);  // force top two bits
    bool sieved = false;
    for (const std::uint32_t p : kSmallPrimes) {
      const BigUInt prime{p};
      if (candidate != prime && (candidate % prime).IsZero()) {
        sieved = true;
        break;
      }
    }
    if (sieved) continue;
    if (IsProbablePrime(candidate, rng, rounds)) return candidate;
  }
}

}  // namespace mont::bignum
