// random.hpp — deterministic random number generation for tests and benches.
//
// All randomized workloads in the reproduction are seeded so every run of the
// test suite and benchmark harness is bit-for-bit reproducible.  The core
// generator is xoshiro256** (public-domain algorithm by Blackman & Vigna).
#pragma once

#include <cstdint>

#include "bignum/biguint.hpp"

namespace mont::bignum {

/// xoshiro256** pseudo-random generator with SplitMix64 seeding.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed);

  /// Uniform 64-bit word.
  std::uint64_t Next();
  /// Uniform value in [0, bound); bound must be nonzero.
  std::uint64_t NextBelow(std::uint64_t bound);

 private:
  std::uint64_t state_[4];
};

/// Random-bignum helpers layered over Xoshiro256.
class RandomBigUInt {
 public:
  explicit RandomBigUInt(std::uint64_t seed) : rng_(seed) {}

  /// Uniform value with exactly `bits` significant bits (top bit forced to 1);
  /// bits == 0 yields zero.
  BigUInt ExactBits(std::size_t bits);
  /// Uniform value in [0, bound).
  BigUInt Below(const BigUInt& bound);
  /// Uniform odd value with exactly `bits` significant bits (bits >= 1).
  BigUInt OddExactBits(std::size_t bits);
  /// Value with exactly `bits` bits whose Hamming weight is as close to
  /// bits/2 as possible — the "balanced exponent" workload the paper assumes
  /// when quoting average exponentiation time.
  BigUInt BalancedExactBits(std::size_t bits);

  Xoshiro256& Engine() { return rng_; }

 private:
  Xoshiro256 rng_;
};

}  // namespace mont::bignum
