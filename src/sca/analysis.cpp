#include "sca/analysis.hpp"

#include <cmath>

#include "sca/trace.hpp"

namespace mont::sca {

using bignum::BigUInt;

std::vector<std::uint32_t> PowerTrace(core::Mmmc& circuit, const BigUInt& x,
                                      const BigUInt& y) {
  // Routed through the gate-level lab: capture the multiplication on the
  // generated netlist and report the datapath-register toggle counts.
  CaptureOptions options;
  options.datapath_only = true;
  options.field = circuit.Mode();
  GateLevelCapture capture(circuit.Modulus(), options);
  const std::vector<BigUInt> xs{x};
  const std::vector<BigUInt> ys{y};
  const TraceSet set = capture.CaptureMultiplications(xs, ys);
  // Drop the load-edge sample: the legacy proxy's 3l+3 samples start at
  // the first compute cycle.
  std::vector<std::uint32_t> trace;
  trace.reserve(set.Samples() - 1);
  for (std::size_t s = 1; s < set.Samples(); ++s) {
    trace.push_back(static_cast<std::uint32_t>(set.At(0, s)));
  }
  return trace;
}

std::vector<std::uint32_t> ModelRegisterTrace(core::Mmmc& circuit,
                                              const BigUInt& x,
                                              const BigUInt& y) {
  const auto snapshot = [&] {
    std::vector<std::uint8_t> state;
    const auto& t = circuit.TBits();
    const auto& c0 = circuit.C0Bits();
    const auto& c1 = circuit.C1Bits();
    state.reserve(t.size() + c0.size() + c1.size());
    state.insert(state.end(), t.begin(), t.end());
    state.insert(state.end(), c0.begin(), c0.end());
    state.insert(state.end(), c1.begin(), c1.end());
    return state;
  };

  while (circuit.State() != core::MmmcState::kIdle) circuit.Tick();
  circuit.ApplyInputs(x, y);
  std::vector<std::uint32_t> trace;
  circuit.Tick();  // load edge (clears the datapath; not part of the trace)
  std::vector<std::uint8_t> previous = snapshot();
  while (!circuit.Done()) {
    circuit.Tick();
    const std::vector<std::uint8_t> current = snapshot();
    std::uint32_t toggles = 0;
    for (std::size_t i = 0; i < current.size(); ++i) {
      toggles += static_cast<std::uint32_t>(current[i] != previous[i]);
    }
    trace.push_back(toggles);
    previous = std::move(current);
  }
  return trace;
}

SampleStats Summarize(std::span<const double> samples) {
  SampleStats stats;
  stats.count = samples.size();
  if (samples.empty()) return stats;
  double sum = 0;
  for (const double v : samples) sum += v;
  stats.mean = sum / static_cast<double>(samples.size());
  if (samples.size() > 1) {
    double ss = 0;
    for (const double v : samples) {
      ss += (v - stats.mean) * (v - stats.mean);
    }
    stats.variance = ss / static_cast<double>(samples.size() - 1);
  }
  return stats;
}

double PearsonCorrelation(std::span<const double> a,
                          std::span<const double> b) {
  const std::size_t n = a.size();
  if (n != b.size() || n < 2) return 0;
  double mean_a = 0, mean_b = 0;
  for (std::size_t i = 0; i < n; ++i) {
    mean_a += a[i];
    mean_b += b[i];
  }
  mean_a /= static_cast<double>(n);
  mean_b /= static_cast<double>(n);
  double cov = 0, var_a = 0, var_b = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double da = a[i] - mean_a;
    const double db = b[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a <= 0 || var_b <= 0) return 0;
  return cov / std::sqrt(var_a * var_b);
}

double WelchT(std::span<const double> a, std::span<const double> b) {
  const SampleStats sa = Summarize(a);
  const SampleStats sb = Summarize(b);
  if (sa.count < 2 || sb.count < 2) return 0;
  const double se = std::sqrt(sa.variance / static_cast<double>(sa.count) +
                              sb.variance / static_cast<double>(sb.count));
  if (se == 0) return 0;
  return (sa.mean - sb.mean) / se;
}

TimingOracle::TimingOracle(BigUInt modulus) : ctx_(std::move(modulus)) {}

bool TimingOracle::Alg1SubtractionTaken(const BigUInt& x,
                                        const BigUInt& y) const {
  // Re-run Algorithm 1 up to step 5 and test T >= N.
  const BigUInt& n = ctx_.Modulus();
  BigUInt t;
  for (std::size_t i = 0; i < ctx_.l(); ++i) {
    const bool xi = x.Bit(i);
    const bool mi = t.Bit(0) ^ (xi && y.Bit(0));
    if (xi) t += y;
    if (mi) t += n;
    t >>= 1;
  }
  return t >= n;
}

std::uint64_t TimingOracle::Alg1Cycles(const BigUInt& x,
                                       const BigUInt& y) const {
  const std::uint64_t base = 3 * static_cast<std::uint64_t>(ctx_.l()) + 4;
  // One comparison cycle always; a ripple subtraction pass when taken.
  return base + 1 +
         (Alg1SubtractionTaken(x, y) ? static_cast<std::uint64_t>(ctx_.l()) + 1
                                     : 0);
}

std::uint64_t TimingOracle::Alg2Cycles() const {
  return 3 * static_cast<std::uint64_t>(ctx_.l()) + 4;
}

}  // namespace mont::sca
