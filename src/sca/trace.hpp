// trace.hpp — gate-level power-trace capture for the side-channel lab.
//
// The paper's §5 argues algorithm choices on side-channel grounds; this
// module provides the measurement half of actually testing such claims on
// the reproduced hardware:
//
//  * TraceSet — a rectangular store of power traces (one row per captured
//    execution, one column per clock cycle) with the standard conditioning
//    utilities: Gaussian noise injection, sum-compression, and integer-
//    shift alignment.
//
//  * GateLevelCapture — hooks the compiled 64-lane simulator
//    (rtl::BatchSimulator toggle accounting) to the generated MMMC netlist
//    and records one power sample per clock cycle: the number of nets —
//    *all* nets of the circuit, not a register proxy — that switched on
//    that edge.  64 independent traces are captured per simulation pass,
//    one per lane, so trace acquisition runs at the batch engine's
//    throughput.  Capture units are single Montgomery multiplications or
//    whole left-to-right modular exponentiations (the §4.5 flow, which is
//    what the CPA engine in sca/attack.hpp attacks).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "bignum/biguint.hpp"
#include "bignum/montgomery.hpp"
#include "bignum/random.hpp"
#include "core/mmmc.hpp"
#include "core/netlist_gen.hpp"
#include "rtl/batch_sim.hpp"

namespace mont::sca {

/// Rectangular trace store: Count() traces of Samples() samples, row-major.
class TraceSet {
 public:
  TraceSet() = default;

  std::size_t Count() const { return count_; }
  std::size_t Samples() const { return samples_; }
  bool Empty() const { return count_ == 0; }

  /// Appends one trace.  The first Append fixes the sample count; later
  /// ones must match (std::invalid_argument otherwise).
  void Append(std::span<const double> trace);

  double At(std::size_t trace, std::size_t sample) const {
    return data_[trace * samples_ + sample];
  }
  std::span<const double> Trace(std::size_t trace) const {
    return {data_.data() + trace * samples_, samples_};
  }
  /// Copies column `sample` (one value per trace) into `out`.
  void Column(std::size_t sample, std::vector<double>& out) const;

  /// The first `count` traces (count must be <= Count()).
  TraceSet Head(std::size_t count) const;

  /// Per-sample mean over all traces.
  std::vector<double> MeanTrace() const;
  /// Sum of all samples of one trace (the "total energy" aggregate the
  /// TVLA suites compare).
  double TraceEnergy(std::size_t trace) const;

  /// Adds zero-mean Gaussian noise of standard deviation `sigma` to every
  /// sample (Box–Muller over the repo's deterministic xoshiro stream).
  void AddGaussianNoise(double sigma, bignum::Xoshiro256& rng);
  void AddGaussianNoise(double sigma, std::uint64_t seed);

  /// Sum-compresses every trace by `factor` consecutive samples (the
  /// standard acquisition-rate reduction; a trailing partial window is
  /// kept).  factor must be >= 1.
  TraceSet Compress(std::size_t factor) const;

  /// Aligns every trace to `reference` by the integer shift in
  /// [-max_shift, +max_shift] that maximizes correlation with it, padding
  /// with the trace's edge samples.  Recovers from constant-offset
  /// misalignment (e.g. trigger jitter re-injected for testing).
  TraceSet AlignTo(std::span<const double> reference,
                   std::size_t max_shift) const;

 private:
  std::size_t count_ = 0;
  std::size_t samples_ = 0;
  std::vector<double> data_;
};

/// One standard Gaussian sample (Box–Muller) from the deterministic rng.
double GaussianSample(bignum::Xoshiro256& rng);

/// The TVLA statistic over two trace populations: Welch's t computed per
/// sample (column by column), returning the peak |t|.  |t| > 4.5 at any
/// sample is the conventional "leakage detected" verdict — far more
/// sensitive than comparing whole-trace energies, which wash out
/// sample-local differences.  Sample counts must match.
double WelchTPeak(const TraceSet& a, const TraceSet& b);

/// Capture configuration.
struct CaptureOptions {
  /// Standard deviation of Gaussian noise added to every captured sample
  /// (0 = noise-free, the simulator's exact switching counts).
  double noise_sigma = 0.0;
  /// Seed of the capture's noise stream (deterministic; successive
  /// captures on one GateLevelCapture draw from the same stream).
  std::uint64_t noise_seed = 0x7ace5e7u;
  /// Count only the MMMC datapath register nets (the t/c0/c1 probe
  /// buses) instead of every net — the legacy PowerTrace proxy's view.
  bool datapath_only = false;
  /// Count only the nets the static taint pass (analysis::AnalyzeTaint)
  /// places in the secret cone (Blinded or Secret).  This is the
  /// attacker's best case: every sampled toggle is key-dependent, none of
  /// the Clean control/counter switching dilutes the signal — useful for
  /// bounding CPA/DPA data complexity from above.  Mutually exclusive
  /// with datapath_only (std::invalid_argument if both are set).
  bool secret_cone_only = false;
  /// Field of the generated circuit (kGf2 builds the dual-field netlist
  /// with fsel tied to GF(2^m); the modulus is then the field polynomial).
  core::FieldMode field = core::FieldMode::kGfP;
};

/// Gate-level trace capture over the generated MMMC (Fig. 3) netlist.
/// One instance owns one compiled circuit; captures may be issued
/// repeatedly and each batches up to 64 executions per simulation pass.
class GateLevelCapture {
 public:
  /// Builds, compiles, and resets the MMMC for `modulus` (odd, > 1; for
  /// kGf2 the field polynomial with f(0) = 1).
  explicit GateLevelCapture(bignum::BigUInt modulus,
                            const CaptureOptions& options = {});

  std::size_t l() const { return gen_.l; }
  const bignum::BigUInt& Modulus() const { return modulus_; }
  const CaptureOptions& Options() const { return options_; }
  /// Nets contributing to each power sample.
  std::size_t TrackedNetCount() const { return tracked_net_count_; }
  /// Samples one multiplication contributes: the paper's 3l+4 cycles,
  /// from the START edge (operand load) to DONE inclusive.
  std::size_t SamplesPerMultiplication() const { return 3 * gen_.l + 4; }

  /// Captures one trace per (x, y) operand pair — xs[k]*ys[k]*R^-1 on
  /// lane k, 64 pairs per simulation pass, any number of pairs total.
  /// Operands must be inside the chainable window [0, 2N).  Each trace
  /// has SamplesPerMultiplication() samples.
  TraceSet CaptureMultiplications(std::span<const bignum::BigUInt> xs,
                                  std::span<const bignum::BigUInt> ys);

  /// Captures one trace per base of the full §4.5 modular exponentiation
  /// base^exponent mod N run MMM-by-MMM on the netlist (pre-computation,
  /// square/conditional-multiply scan, post-processing).  All executions
  /// share `exponent`, so the MMM schedule is lane-uniform and 64 bases
  /// capture per pass.  Bases must be < N; exponent must be nonzero.
  /// Trace length = (mmm count) * SamplesPerMultiplication().  GF(p) only.
  TraceSet CaptureModExps(std::span<const bignum::BigUInt> bases,
                          const bignum::BigUInt& exponent);

  /// Montgomery context of the captured circuit (R = 2^(l+2)); the
  /// attack engine replays hypotheses through the same arithmetic.
  const bignum::BitSerialMontgomery& Context() const { return ctx_; }

 private:
  /// Presents per-lane operands, pulses START, and appends one sample per
  /// clock edge (START..DONE) to each lane's row; drains OUT afterwards.
  void RunOneMmm(const std::vector<bignum::BigUInt>& xs,
                 const std::vector<bignum::BigUInt>& ys,
                 std::vector<std::vector<double>>& rows);
  /// Result of the completed multiplication on `lane`.
  bignum::BigUInt LaneResult(std::size_t lane) const;
  void ApplyNoise(TraceSet& set);

  CaptureOptions options_;
  bignum::BigUInt modulus_;
  core::MmmcNetlist gen_;
  std::unique_ptr<rtl::BatchSimulator> sim_;
  bignum::BitSerialMontgomery ctx_;
  std::size_t tracked_net_count_ = 0;
  bignum::Xoshiro256 noise_rng_;
};

}  // namespace mont::sca
