// analysis.hpp — side-channel analysis of the reproduced hardware.
//
// The paper's §5 motivates the subtraction-free Algorithm 2 partly on
// side-channel grounds: "the optimal bound ... omits completely all
// reduction steps that are presumed to be vulnerable to side-channel
// attacks."  This module quantifies that claim on the cycle-accurate
// models:
//
//  * TimingOracle — Algorithm 1's data-dependent final subtraction leaks
//    one bit (T >= N?) per multiplication through the cycle count, while
//    Algorithm 2 / the MMMC run in exactly 3l+4 cycles for every input.
//
//  * PowerTrace — the datapath power proxy, one sample per clock cycle,
//    enabling TVLA-style fixed-vs-random comparisons.  Since the
//    side-channel lab landed this is *measured at gate level*: the legacy
//    signature is routed through sca/trace.hpp's GateLevelCapture, so the
//    samples are real netlist register toggles, not the former 3-register
//    software proxy.  (ModelRegisterTrace keeps the software
//    Hamming-distance replay available — it is the CPA engine's
//    kHammingDistanceStates leakage predictor.)
//
//  * WelchT — the standard leakage-assessment statistic between two trace
//    populations.
//
// Trace capture, the TraceSet store, and the CPA/DPA attack engine live
// in sca/trace.hpp and sca/attack.hpp.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bignum/biguint.hpp"
#include "bignum/montgomery.hpp"
#include "core/mmmc.hpp"

namespace mont::sca {

/// One power sample per clock cycle of a complete multiplication: the
/// number of datapath register bits (the T/C0/C1 probe registers of the
/// generated netlist) that toggled on that edge.  Legacy proxy signature,
/// now measured on the gate-level circuit for `circuit`'s modulus and
/// field via GateLevelCapture (3l+3 samples — the load edge is excluded,
/// as the behavioural proxy always did).  Builds a netlist per call; hot
/// loops should hold a GateLevelCapture (sca/trace.hpp) instead.
std::vector<std::uint32_t> PowerTrace(core::Mmmc& circuit,
                                      const bignum::BigUInt& x,
                                      const bignum::BigUInt& y);

/// The software Hamming-distance replay over the behavioural model's
/// T/C0/C1 registers (the former PowerTrace implementation): one
/// predicted sample per compute cycle, 3l+3 of them.  This is the
/// cycle-accurate leakage *predictor* behind the CPA engine's
/// kHammingDistanceStates hypothesis (sca/attack.hpp).
std::vector<std::uint32_t> ModelRegisterTrace(core::Mmmc& circuit,
                                              const bignum::BigUInt& x,
                                              const bignum::BigUInt& y);

/// Mean/variance summary of a trace (or of per-trace aggregates).
struct SampleStats {
  double mean = 0;
  double variance = 0;  // unbiased
  std::size_t count = 0;
};
SampleStats Summarize(std::span<const double> samples);

/// Welch's t-statistic between two sample populations.  |t| > 4.5 is the
/// conventional TVLA threshold for "leakage detected".
double WelchT(std::span<const double> a, std::span<const double> b);

/// Pearson correlation coefficient between two equal-length series — the
/// CPA statistic and the trace-alignment objective.  Returns 0 for
/// degenerate inputs (fewer than two points, or either side constant).
double PearsonCorrelation(std::span<const double> a,
                          std::span<const double> b);

/// Timing behaviour of the two algorithms per multiplication.
class TimingOracle {
 public:
  explicit TimingOracle(bignum::BigUInt modulus);

  /// Algorithm 1 on a sequential datapath: 3l+4 compute cycles plus a
  /// conditional subtraction pass of l+1 cycles when T >= N (the
  /// data-dependent step), plus one comparison cycle.
  std::uint64_t Alg1Cycles(const bignum::BigUInt& x,
                           const bignum::BigUInt& y) const;
  /// Whether the Algorithm-1 subtraction fires for these operands (the
  /// bit an attacker reads from the timing).
  bool Alg1SubtractionTaken(const bignum::BigUInt& x,
                            const bignum::BigUInt& y) const;
  /// Algorithm 2 / MMMC: always exactly 3l+4.
  std::uint64_t Alg2Cycles() const;

  std::size_t l() const { return ctx_.l(); }
  const bignum::BitSerialMontgomery& Context() const { return ctx_; }

 private:
  bignum::BitSerialMontgomery ctx_;
};

}  // namespace mont::sca
