#include "sca/trace.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "analysis/taint.hpp"
#include "bignum/gf2.hpp"
#include "core/sim_drivers.hpp"
#include "sca/analysis.hpp"

namespace mont::sca {

using bignum::BigUInt;

// ---------------------------------------------------------------------------
// TraceSet
// ---------------------------------------------------------------------------

void TraceSet::Append(std::span<const double> trace) {
  if (count_ == 0) {
    samples_ = trace.size();
  } else if (trace.size() != samples_) {
    throw std::invalid_argument("TraceSet::Append: sample-count mismatch");
  }
  data_.insert(data_.end(), trace.begin(), trace.end());
  ++count_;
}

void TraceSet::Column(std::size_t sample, std::vector<double>& out) const {
  if (sample >= samples_) {
    throw std::out_of_range("TraceSet::Column: sample out of range");
  }
  out.resize(count_);
  for (std::size_t i = 0; i < count_; ++i) out[i] = At(i, sample);
}

TraceSet TraceSet::Head(std::size_t count) const {
  if (count > count_) {
    throw std::out_of_range("TraceSet::Head: count exceeds trace count");
  }
  TraceSet out;
  for (std::size_t i = 0; i < count; ++i) out.Append(Trace(i));
  return out;
}

std::vector<double> TraceSet::MeanTrace() const {
  std::vector<double> mean(samples_, 0.0);
  if (count_ == 0) return mean;
  for (std::size_t i = 0; i < count_; ++i) {
    for (std::size_t j = 0; j < samples_; ++j) mean[j] += At(i, j);
  }
  for (double& v : mean) v /= static_cast<double>(count_);
  return mean;
}

double TraceSet::TraceEnergy(std::size_t trace) const {
  double sum = 0;
  for (const double v : Trace(trace)) sum += v;
  return sum;
}

double GaussianSample(bignum::Xoshiro256& rng) {
  // Box–Muller on two uniforms in (0, 1]; 2^-64 offsets keep log() finite.
  const double u1 =
      (static_cast<double>(rng.Next() >> 11) + 1.0) / 9007199254740993.0;
  const double u2 =
      static_cast<double>(rng.Next() >> 11) / 9007199254740992.0;
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * 3.14159265358979323846 * u2);
}

void TraceSet::AddGaussianNoise(double sigma, bignum::Xoshiro256& rng) {
  if (sigma <= 0) return;
  for (double& v : data_) v += sigma * GaussianSample(rng);
}

void TraceSet::AddGaussianNoise(double sigma, std::uint64_t seed) {
  bignum::Xoshiro256 rng(seed);
  AddGaussianNoise(sigma, rng);
}

TraceSet TraceSet::Compress(std::size_t factor) const {
  if (factor == 0) {
    throw std::invalid_argument("TraceSet::Compress: factor must be >= 1");
  }
  TraceSet out;
  std::vector<double> row;
  for (std::size_t i = 0; i < count_; ++i) {
    row.clear();
    for (std::size_t j = 0; j < samples_; j += factor) {
      double sum = 0;
      for (std::size_t k = j; k < std::min(j + factor, samples_); ++k) {
        sum += At(i, k);
      }
      row.push_back(sum);
    }
    out.Append(row);
  }
  return out;
}

TraceSet TraceSet::AlignTo(std::span<const double> reference,
                           std::size_t max_shift) const {
  if (reference.size() != samples_) {
    throw std::invalid_argument("TraceSet::AlignTo: reference length mismatch");
  }
  TraceSet out;
  std::vector<double> shifted(samples_);
  std::vector<double> best(samples_);
  const auto shift_index = [this](std::ptrdiff_t i) {
    // Edge-padded source index.
    if (i < 0) return std::size_t{0};
    if (static_cast<std::size_t>(i) >= samples_) return samples_ - 1;
    return static_cast<std::size_t>(i);
  };
  for (std::size_t t = 0; t < count_; ++t) {
    double best_corr = -2;
    const std::span<const double> trace = Trace(t);
    for (std::ptrdiff_t s = -static_cast<std::ptrdiff_t>(max_shift);
         s <= static_cast<std::ptrdiff_t>(max_shift); ++s) {
      for (std::size_t j = 0; j < samples_; ++j) {
        shifted[j] = trace[shift_index(static_cast<std::ptrdiff_t>(j) + s)];
      }
      const double corr = PearsonCorrelation(reference, shifted);
      if (corr > best_corr) {
        best_corr = corr;
        best = shifted;
      }
    }
    out.Append(best);
  }
  return out;
}

double WelchTPeak(const TraceSet& a, const TraceSet& b) {
  if (a.Samples() != b.Samples()) {
    throw std::invalid_argument("WelchTPeak: sample-count mismatch");
  }
  double peak = 0;
  std::vector<double> column_a, column_b;
  for (std::size_t s = 0; s < a.Samples(); ++s) {
    a.Column(s, column_a);
    b.Column(s, column_b);
    peak = std::max(peak, std::abs(WelchT(column_a, column_b)));
  }
  return peak;
}

// ---------------------------------------------------------------------------
// GateLevelCapture
// ---------------------------------------------------------------------------

GateLevelCapture::GateLevelCapture(BigUInt modulus,
                                   const CaptureOptions& options)
    : options_(options),
      modulus_(std::move(modulus)),
      gen_(core::BuildMmmcNetlist(
          options.field == core::FieldMode::kGf2
              ? bignum::gf2::Degree(modulus_)
              : modulus_.BitLength(),
          /*dual_field=*/options.field == core::FieldMode::kGf2)),
      sim_(std::make_unique<rtl::BatchSimulator>(*gen_.netlist)),
      ctx_(modulus_),
      noise_rng_(options.noise_seed) {
  // BitSerialMontgomery's constructor has already rejected even or trivial
  // moduli (a GF(2^m) polynomial with f(0) = 1 is odd, so it passes too);
  // the netlist generator rejects l < 2.
  core::DriveBusAllLanes(*sim_, gen_.n_in, modulus_);
  if (gen_.fsel != rtl::kNoNet) {
    sim_->SetInputAll(gen_.fsel, options_.field == core::FieldMode::kGfP);
  }
  sim_->SetInputAll(gen_.start, false);
  sim_->Settle();
  if (options_.datapath_only && options_.secret_cone_only) {
    throw std::invalid_argument(
        "GateLevelCapture: datapath_only and secret_cone_only are exclusive");
  }
  if (options_.datapath_only) {
    std::vector<rtl::NetId> tracked;
    for (const rtl::Bus* bus : {&gen_.t_probe, &gen_.c0_probe, &gen_.c1_probe}) {
      tracked.insert(tracked.end(), bus->begin(), bus->end());
    }
    tracked_net_count_ = tracked.size();
    sim_->EnableToggleCapture(tracked);
  } else if (options_.secret_cone_only) {
    const analysis::TaintReport taint = analysis::AnalyzeTaint(*gen_.netlist);
    std::vector<rtl::NetId> tracked;
    for (std::size_t id = 0; id < gen_.netlist->NodeCount(); ++id) {
      if (analysis::DependsOnSecret(taint.LabelOf(static_cast<rtl::NetId>(id)))) {
        tracked.push_back(static_cast<rtl::NetId>(id));
      }
    }
    tracked_net_count_ = tracked.size();
    sim_->EnableToggleCapture(tracked);
  } else {
    tracked_net_count_ = gen_.netlist->NodeCount();
    sim_->EnableToggleCapture();
  }
}

BigUInt GateLevelCapture::LaneResult(std::size_t lane) const {
  return sim_->PeekWide(gen_.result, lane);
}

void GateLevelCapture::RunOneMmm(const std::vector<BigUInt>& xs,
                                 const std::vector<BigUInt>& ys,
                                 std::vector<std::vector<double>>& rows) {
  // Present operand pair k on lane k (idle lanes multiply 0 by 0).
  for (std::size_t i = 0; i < gen_.x_in.size(); ++i) {
    std::uint64_t wx = 0, wy = 0;
    for (std::size_t lane = 0; lane < xs.size(); ++lane) {
      if (xs[lane].Bit(i)) wx |= std::uint64_t{1} << lane;
      if (ys[lane].Bit(i)) wy |= std::uint64_t{1} << lane;
    }
    sim_->SetInput(gen_.x_in[i], wx);
    sim_->SetInput(gen_.y_in[i], wy);
  }
  const auto record = [&] {
    const auto& counts = sim_->ToggleCounts();
    for (std::size_t lane = 0; lane < rows.size(); ++lane) {
      rows[lane].push_back(static_cast<double>(counts[lane]));
    }
  };
  sim_->SetInputAll(gen_.start, true);
  sim_->Tick();  // START edge: operand load — sample 0 of this MMM
  record();
  sim_->SetInputAll(gen_.start, false);
  const std::size_t budget = 8 * (gen_.l + 4);
  std::size_t cycles = 1;
  while (sim_->Peek(gen_.done) != rtl::BatchSimulator::kAllLanes) {
    if (cycles >= budget) {
      throw std::runtime_error("GateLevelCapture: DONE never arrived");
    }
    sim_->Tick();
    record();
    ++cycles;
  }
  // Drain OUT -> IDLE so the next START is sampled from IDLE.  The drain
  // edge is control-only housekeeping between multiplications and is not
  // part of any MMM's 3l+4-sample window.
  sim_->Tick();
}

void GateLevelCapture::ApplyNoise(TraceSet& set) {
  set.AddGaussianNoise(options_.noise_sigma, noise_rng_);
}

TraceSet GateLevelCapture::CaptureMultiplications(
    std::span<const BigUInt> xs, std::span<const BigUInt> ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument(
        "GateLevelCapture::CaptureMultiplications: size mismatch");
  }
  const BigUInt bound = options_.field == core::FieldMode::kGf2
                            ? BigUInt::PowerOfTwo(gen_.l + 1)
                            : (modulus_ << 1);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] >= bound || ys[i] >= bound) {
      throw std::invalid_argument(
          "GateLevelCapture::CaptureMultiplications: operand outside window");
    }
  }
  TraceSet out;
  std::vector<BigUInt> chunk_x, chunk_y;
  for (std::size_t at = 0; at < xs.size();
       at += rtl::BatchSimulator::kLanes) {
    const std::size_t n =
        std::min(rtl::BatchSimulator::kLanes, xs.size() - at);
    chunk_x.assign(xs.begin() + at, xs.begin() + at + n);
    chunk_y.assign(ys.begin() + at, ys.begin() + at + n);
    std::vector<std::vector<double>> rows(n);
    RunOneMmm(chunk_x, chunk_y, rows);
    for (const auto& row : rows) out.Append(row);
  }
  ApplyNoise(out);
  return out;
}

TraceSet GateLevelCapture::CaptureModExps(std::span<const BigUInt> bases,
                                          const BigUInt& exponent) {
  if (options_.field != core::FieldMode::kGfP) {
    throw std::logic_error(
        "GateLevelCapture::CaptureModExps: GF(p) circuits only");
  }
  if (exponent.IsZero()) {
    throw std::invalid_argument(
        "GateLevelCapture::CaptureModExps: exponent must be nonzero");
  }
  for (const BigUInt& base : bases) {
    if (base >= modulus_) {
      throw std::invalid_argument(
          "GateLevelCapture::CaptureModExps: base must be < modulus");
    }
  }
  TraceSet out;
  const BigUInt one{1};
  for (std::size_t at = 0; at < bases.size();
       at += rtl::BatchSimulator::kLanes) {
    const std::size_t n =
        std::min(rtl::BatchSimulator::kLanes, bases.size() - at);
    std::vector<std::vector<double>> rows(n);
    std::vector<BigUInt> x(n), y(n);
    // Pre-computation: M~ = Mont(M, R^2) — §4.5's first MMM.
    for (std::size_t k = 0; k < n; ++k) {
      x[k] = bases[at + k];
      y[k] = ctx_.RSquaredModN();
    }
    RunOneMmm(x, y, rows);
    std::vector<BigUInt> m_mont(n), a(n);
    for (std::size_t k = 0; k < n; ++k) {
      m_mont[k] = LaneResult(k);
      a[k] = m_mont[k];
    }
    // Left-to-right scan: every intermediate feeds back from the device's
    // own RESULT bus, so the traces are of a self-contained execution.
    for (std::size_t i = exponent.BitLength() - 1; i-- > 0;) {
      RunOneMmm(a, a, rows);
      for (std::size_t k = 0; k < n; ++k) a[k] = LaneResult(k);
      if (exponent.Bit(i)) {
        RunOneMmm(a, m_mont, rows);
        for (std::size_t k = 0; k < n; ++k) a[k] = LaneResult(k);
      }
    }
    // Post-processing: Mont(A, 1) strips R.
    for (std::size_t k = 0; k < n; ++k) y[k] = one;
    RunOneMmm(a, y, rows);
    for (const auto& row : rows) out.Append(row);
  }
  ApplyNoise(out);
  return out;
}

}  // namespace mont::sca
