// attack.hpp — the CPA/DPA attack engine of the side-channel lab.
//
// Target: the §4.5 left-to-right square-and-multiply modular
// exponentiation running on the MMMC, as captured at gate level by
// sca/trace.hpp (GateLevelCapture::CaptureModExps).  The attacker knows
// the modulus, the per-trace bases, and the exponent bit length; the
// secret is the exponent (an RSA private key d in the paper's
// application).
//
// The attack recovers exponent bits MSB-first.  For bit i, with the
// already-recovered prefix fixed, each guess g predicts the accumulator
// value that enters the *next* multiplication, replays that multiplication
// through a software model, and correlates the predicted leakage with the
// trace samples in the guess's own next-MMM window:
//
//  * Leakage::kHammingWeightOutput — h_j = HW(predicted MMM output), the
//    classic single-point CPA hypothesis;
//  * Leakage::kHammingDistanceStates — per-cycle Hamming distance of the
//    predicted MMMC datapath registers (the cycle-accurate core::Mmmc
//    replay, Eq. 4–9), a multi-sample template-strength hypothesis.
//
// Distinguishers: Pearson correlation (CPA) or a difference-of-means
// partition on the hypothesis (DPA), both scored as the peak statistic
// over the window.  Because wrong guesses predict values the device never
// computes, their statistics collapse; per-bit confidence is the score
// margin.  MeasurementsToDisclosure() reports the smallest trace budget
// that reaches a target recovery fraction — the lab's headline metric for
// countermeasure closure (blinding pushes it beyond any budget).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "bignum/biguint.hpp"
#include "bignum/montgomery.hpp"
#include "sca/trace.hpp"

namespace mont::sca {

/// Pluggable leakage hypothesis (what the attacker predicts per trace).
enum class Leakage : std::uint8_t {
  kHammingWeightOutput,
  kHammingDistanceStates,
};
const char* LeakageName(Leakage leakage);

/// Statistic comparing hypothesis and measurement.
enum class Distinguisher : std::uint8_t {
  kPearsonCpa,
  kDifferenceOfMeans,
};
const char* DistinguisherName(Distinguisher distinguisher);

struct AttackOptions {
  Leakage leakage = Leakage::kHammingDistanceStates;
  Distinguisher distinguisher = Distinguisher::kPearsonCpa;
  /// Exponent bits to recover below the (implicit, always-1) MSB;
  /// 0 = all of them.
  std::size_t bits_to_recover = 0;
};

/// One recovered exponent bit.
struct BitResult {
  std::size_t bit_index = 0;  ///< exponent bit position (MSB-1 downward)
  bool guess = false;         ///< recovered value
  double score_zero = 0;      ///< distinguisher peak under guess 0
  double score_one = 0;       ///< distinguisher peak under guess 1
  /// best/(best+other) in [0.5, 1]; 0.5 = no evidence either way.
  double confidence = 0.5;
};

struct AttackResult {
  std::vector<BitResult> bits;  ///< in recovery order (MSB-1 downward)
  bignum::BigUInt recovered;    ///< assembled exponent (MSB set, guessed
                                ///< bits below; untargeted bits zero)
  /// Bits of `truth` (over the targeted positions) the attack got right.
  std::size_t CorrectBits(const bignum::BigUInt& truth) const;
  /// CorrectBits as a fraction of the targeted bits (1.0 when none).
  double RecoveredFraction(const bignum::BigUInt& truth) const;
};

/// CPA/DPA engine over traces of base^exponent mod N executions captured
/// by GateLevelCapture::CaptureModExps (R = 2^(l+2) Algorithm-2 MMMs,
/// 3l+4 samples per MMM).
class CpaAttack {
 public:
  explicit CpaAttack(bignum::BigUInt modulus, AttackOptions options = {});

  const AttackOptions& Options() const { return options_; }
  std::size_t l() const { return ctx_.l(); }

  /// Recovers the exponent from `traces` (trace j was captured with base
  /// bases[j]; exponent_bits is the known secret bit length).  Throws
  /// std::invalid_argument on size mismatch or exponent_bits < 2.
  AttackResult Recover(const TraceSet& traces,
                       std::span<const bignum::BigUInt> bases,
                       std::size_t exponent_bits) const;

  /// Smallest prefix of `traces` whose attack recovers at least
  /// `fraction` of the targeted bits of `truth`, stepping the budget by
  /// `step` traces; 0 when even the full set fails.
  std::size_t MeasurementsToDisclosure(const TraceSet& traces,
                                       std::span<const bignum::BigUInt> bases,
                                       const bignum::BigUInt& truth,
                                       double fraction = 1.0,
                                       std::size_t step = 8) const;

 private:
  /// Distinguisher peak for one guess: hypotheses per trace (scalar or
  /// per-cycle vector) against the window starting at `window_start`.
  double ScoreWindow(const TraceSet& traces,
                     const std::vector<std::vector<double>>& hypotheses,
                     std::size_t window_start) const;

  AttackOptions options_;
  bignum::BitSerialMontgomery ctx_;
};

}  // namespace mont::sca
