#include "sca/attack.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/mmmc.hpp"
#include "sca/analysis.hpp"

namespace mont::sca {

using bignum::BigUInt;

const char* LeakageName(Leakage leakage) {
  switch (leakage) {
    case Leakage::kHammingWeightOutput: return "hw-output";
    case Leakage::kHammingDistanceStates: return "hd-states";
  }
  return "?";
}

const char* DistinguisherName(Distinguisher distinguisher) {
  switch (distinguisher) {
    case Distinguisher::kPearsonCpa: return "pearson-cpa";
    case Distinguisher::kDifferenceOfMeans: return "difference-of-means";
  }
  return "?";
}

std::size_t AttackResult::CorrectBits(const BigUInt& truth) const {
  std::size_t correct = 0;
  for (const BitResult& bit : bits) {
    if (truth.Bit(bit.bit_index) == bit.guess) ++correct;
  }
  return correct;
}

double AttackResult::RecoveredFraction(const BigUInt& truth) const {
  if (bits.empty()) return 1.0;
  return static_cast<double>(CorrectBits(truth)) /
         static_cast<double>(bits.size());
}

namespace {

/// |Pearson| of hypothesis vs one trace column; 0 when either side is
/// constant (e.g. control-only cycles).
double AbsCorrelation(std::span<const double> h, std::span<const double> t) {
  return std::abs(PearsonCorrelation(h, t));
}

double Median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  if (n == 0) return 0;
  return n % 2 == 1 ? values[n / 2]
                    : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

}  // namespace

CpaAttack::CpaAttack(BigUInt modulus, AttackOptions options)
    : options_(options), ctx_(std::move(modulus)) {}

double CpaAttack::ScoreWindow(
    const TraceSet& traces, const std::vector<std::vector<double>>& hypotheses,
    std::size_t window_start) const {
  const std::size_t window = 3 * ctx_.l() + 4;
  if (window_start + window > traces.Samples()) return 0;  // beyond the trace
  const std::size_t n = traces.Count();
  std::vector<double> column;
  if (options_.distinguisher == Distinguisher::kDifferenceOfMeans) {
    // DPA: partition traces by the hypothesis (reduced to a scalar) above
    // vs below its median; peak |Welch t| over the window distinguishes.
    std::vector<double> selector(n, 0);
    for (std::size_t j = 0; j < n; ++j) {
      for (const double v : hypotheses[j]) selector[j] += v;
    }
    const double median = Median(selector);
    double best = 0;
    std::vector<double> high, low;
    for (std::size_t s = window_start; s < window_start + window; ++s) {
      traces.Column(s, column);
      high.clear();
      low.clear();
      for (std::size_t j = 0; j < n; ++j) {
        (selector[j] > median ? high : low).push_back(column[j]);
      }
      best = std::max(best, std::abs(WelchT(high, low)));
    }
    return best;
  }
  // CPA: peak |Pearson| over the window.  A scalar hypothesis correlates
  // against every column; a per-cycle hypothesis (length 3l+3, predicted
  // for the cycles after the load edge) correlates column-for-column.
  double best = 0;
  if (hypotheses.empty()) return 0;
  if (hypotheses[0].size() == 1) {
    std::vector<double> h(n);
    for (std::size_t j = 0; j < n; ++j) h[j] = hypotheses[j][0];
    // The predicted output's strongest signatures: per-cycle columns of
    // its producing MMM, that window's total switching energy, and the
    // load edge one sample past the window (where the predicted value is
    // written into the next MMM's operand registers).
    std::vector<double> energy(n, 0);
    const std::size_t stop = std::min(window_start + window + 1,
                                      traces.Samples());
    for (std::size_t s = window_start; s < stop; ++s) {
      traces.Column(s, column);
      best = std::max(best, AbsCorrelation(h, column));
      for (std::size_t j = 0; j < n; ++j) energy[j] += column[j];
    }
    best = std::max(best, AbsCorrelation(h, energy));
    return best;
  }
  const std::size_t cycles = hypotheses[0].size();
  std::vector<double> h(n);
  for (std::size_t k = 0; k < cycles; ++k) {
    const std::size_t s = window_start + 1 + k;  // +1 skips the load edge
    if (s >= window_start + window) break;
    for (std::size_t j = 0; j < n; ++j) h[j] = hypotheses[j][k];
    traces.Column(s, column);
    best = std::max(best, AbsCorrelation(h, column));
  }
  return best;
}

AttackResult CpaAttack::Recover(const TraceSet& traces,
                                std::span<const BigUInt> bases,
                                std::size_t exponent_bits) const {
  if (traces.Count() != bases.size()) {
    throw std::invalid_argument("CpaAttack::Recover: one base per trace");
  }
  if (exponent_bits < 2) {
    throw std::invalid_argument("CpaAttack::Recover: exponent_bits < 2");
  }
  if (traces.Count() < 2) {
    throw std::invalid_argument("CpaAttack::Recover: need >= 2 traces");
  }
  const std::size_t n = traces.Count();
  // Replay state: the attacker runs the same Algorithm-2 arithmetic the
  // device runs, starting from the known bases.
  std::vector<BigUInt> m_mont(n), a(n);
  for (std::size_t j = 0; j < n; ++j) {
    m_mont[j] = ctx_.MultiplyAlg2(bases[j] % ctx_.Modulus(),
                                  ctx_.RSquaredModN());
    a[j] = m_mont[j];
  }
  std::size_t mmms_done = 1;  // the pre-computation MMM
  core::Mmmc model(ctx_.Modulus());  // the state-HD predictor's replay core

  AttackResult result;
  result.recovered = BigUInt{0};
  result.recovered.SetBit(exponent_bits - 1, true);
  const std::size_t targeted =
      options_.bits_to_recover == 0
          ? exponent_bits - 1
          : std::min(options_.bits_to_recover, exponent_bits - 1);

  std::vector<std::vector<double>> hypotheses(n);
  std::vector<BigUInt> squared(n), v(n);
  const BigUInt one{1};
  for (std::size_t idx = 0; idx < targeted; ++idx) {
    const std::size_t bit_pos = exponent_bits - 2 - idx;
    for (std::size_t j = 0; j < n; ++j) {
      squared[j] = ctx_.MultiplyAlg2(a[j], a[j]);
    }
    double score[2] = {0, 0};
    for (int guess = 0; guess < 2; ++guess) {
      // Accumulator entering the next MMM under this guess, and that next
      // MMM's operands (a squaring, or the post-processing Mont(A, 1)
      // when this was the last exponent bit).
      for (std::size_t j = 0; j < n; ++j) {
        v[j] = guess == 1 ? ctx_.MultiplyAlg2(squared[j], m_mont[j])
                          : squared[j];
      }
      const bool next_is_post = bit_pos == 0;
      for (std::size_t j = 0; j < n; ++j) {
        const BigUInt& x = v[j];
        const BigUInt& y = next_is_post ? one : v[j];
        if (options_.leakage == Leakage::kHammingWeightOutput) {
          hypotheses[j] = {
              static_cast<double>(ctx_.MultiplyAlg2(x, y).PopCount())};
        } else {
          const auto predicted = ModelRegisterTrace(model, x, y);
          hypotheses[j].assign(predicted.begin(), predicted.end());
        }
      }
      const std::size_t window_start =
          (mmms_done + 1 + static_cast<std::size_t>(guess)) *
          (3 * ctx_.l() + 4);
      score[guess] = ScoreWindow(traces, hypotheses, window_start);
    }
    BitResult bit;
    bit.bit_index = bit_pos;
    bit.score_zero = score[0];
    bit.score_one = score[1];
    bit.guess = score[1] > score[0];
    const double total = score[0] + score[1];
    bit.confidence =
        total > 0 ? std::max(score[0], score[1]) / total : 0.5;
    result.bits.push_back(bit);
    result.recovered.SetBit(bit_pos, bit.guess);
    // Commit the replay to the chosen branch.  The guess loop's last
    // iteration (guess 1) left Mont(squared, m_mont) in v, so no
    // recomputation is needed either way.
    for (std::size_t j = 0; j < n; ++j) {
      a[j] = bit.guess ? std::move(v[j]) : std::move(squared[j]);
    }
    mmms_done += 1 + static_cast<std::size_t>(bit.guess);
  }
  return result;
}

std::size_t CpaAttack::MeasurementsToDisclosure(
    const TraceSet& traces, std::span<const BigUInt> bases,
    const BigUInt& truth, double fraction, std::size_t step) const {
  if (step == 0) step = 1;
  for (std::size_t budget = std::min(step, traces.Count());;
       budget += step) {
    budget = std::min(budget, traces.Count());
    if (budget >= 2) {
      const AttackResult result =
          Recover(traces.Head(budget), bases.first(budget), truth.BitLength());
      if (result.RecoveredFraction(truth) >= fraction) return budget;
    }
    if (budget == traces.Count()) break;
  }
  return 0;
}

}  // namespace mont::sca
