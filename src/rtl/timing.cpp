#include "rtl/timing.hpp"

#include <algorithm>
#include <sstream>

namespace mont::rtl {

double DelayModel::DelayOf(Op op) const {
  switch (op) {
    case Op::kBuf: return buf_ps;
    case Op::kNot: return not_ps;
    case Op::kAnd:
    case Op::kNand: return and_ps;
    case Op::kOr:
    case Op::kNor: return or_ps;
    case Op::kXor:
    case Op::kXnor: return xor_ps;
    case Op::kMux: return mux_ps;
    default: return 0;
  }
}

DelayModel DelayModel::Unit() {
  DelayModel m;
  m.buf_ps = m.not_ps = m.and_ps = m.or_ps = m.xor_ps = m.mux_ps = 1;
  return m;
}

TimingAnalyzer::TimingAnalyzer(const Netlist& netlist, DelayModel model)
    : netlist_(netlist), model_(model) {
  arrival_.assign(netlist_.NodeCount(), 0);
  levels_.assign(netlist_.NodeCount(), 0);
  pred_.assign(netlist_.NodeCount(), kNoNet);
  // Launch points (inputs, constants, DFF q) have arrival 0; propagate in
  // topological order.
  for (const NetId id : netlist_.TopoOrder()) {
    const Node& node = netlist_.NodeAt(id);
    double best = 0;
    std::size_t best_levels = 0;
    NetId best_pred = kNoNet;
    for (const NetId src : {node.a, node.b, node.c}) {
      if (src == kNoNet) continue;
      if (arrival_[src] >= best) {
        best = arrival_[src];
        best_levels = levels_[src];
        best_pred = src;
      }
    }
    arrival_[id] = best + model_.DelayOf(node.op);
    levels_[id] = best_levels + 1;
    pred_[id] = best_pred;
  }
}

double TimingAnalyzer::ArrivalOf(NetId net) const { return arrival_.at(net); }

TimingReport TimingAnalyzer::CriticalPath() const {
  // Capture points: DFF fan-ins and marked outputs.
  NetId worst = kNoNet;
  double worst_arrival = -1;
  const auto consider = [&](NetId net) {
    if (net == kNoNet) return;
    if (arrival_[net] > worst_arrival) {
      worst_arrival = arrival_[net];
      worst = net;
    }
  };
  for (NetId id = 0; id < netlist_.NodeCount(); ++id) {
    const Node& node = netlist_.NodeAt(id);
    if (node.op == Op::kDff) {
      consider(node.a);
      consider(node.b);
      consider(node.c);
    }
  }
  for (const auto& [net, name] : netlist_.Outputs()) consider(net);

  TimingReport report;
  if (worst == kNoNet) return report;
  report.critical_path_ps = worst_arrival;
  report.logic_levels = levels_[worst];
  for (NetId at = worst; at != kNoNet; at = pred_[at]) {
    report.path.push_back(at);
    if (!IsCombinational(netlist_.NodeAt(at).op)) break;
  }
  std::reverse(report.path.begin(), report.path.end());
  return report;
}

std::string TimingReport::Describe(const Netlist& netlist) const {
  std::ostringstream out;
  out << "critical path: " << critical_path_ps << " ps over " << logic_levels
      << " levels:";
  for (const NetId id : path) {
    out << ' ' << OpName(netlist.NodeAt(id).op) << '(' << netlist.NetName(id)
        << ')';
  }
  return out.str();
}

}  // namespace mont::rtl
