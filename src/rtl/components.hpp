// components.hpp — reusable structural building blocks over Netlist.
//
// The paper's MMMC datapath (Fig. 3) is assembled from exactly these pieces:
// half/full adders (the Fig. 1 cells), load/shift registers (X, Y, N, T),
// a counter, and an equality comparator.  Keeping them as a small generic
// library lets tests cover each block in isolation before the full circuit
// is generated.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rtl/netlist.hpp"

namespace mont::rtl {

/// A little-endian vector of nets (index 0 = LSB).
using Bus = std::vector<NetId>;

/// sum/carry pair produced by adder cells.
struct AdderBit {
  NetId sum = kNoNet;
  NetId carry = kNoNet;
};

/// Half adder: sum = a XOR b, carry = a AND b. 1 XOR + 1 AND.
AdderBit HalfAdder(Netlist& nl, NetId a, NetId b);

/// Full adder built from two half adders plus an OR on the carries:
/// 2 XOR + 2 AND + 1 OR, carry chain cin->cout crosses one AND + one OR.
AdderBit FullAdder(Netlist& nl, NetId a, NetId b, NetId cin);

/// Ripple-carry adder over equal-width buses; returns width+1 bits.
Bus RippleCarryAdder(Netlist& nl, const Bus& a, const Bus& b,
                     NetId cin = kNoNet);

/// Bus of constant bits for `value` (width nets, LSB first).
Bus ConstantBus(Netlist& nl, std::uint64_t value, std::size_t width);

/// Bus of fresh named inputs: name[0..width).
Bus InputBus(Netlist& nl, const std::string& name, std::size_t width);

/// Parallel-load register: q <= load ? d : q (per-bit DFF with enable).
Bus LoadRegister(Netlist& nl, const Bus& d, NetId load);

/// Register with parallel load, hold, and an extra update path:
/// q <= load ? d : (update ? next : q).  Used for the T register, which
/// either loads 0 or captures the systolic array output.
Bus LoadUpdateRegister(Netlist& nl, const Bus& d, NetId load, const Bus& next,
                       NetId update);

/// Right-shift register with parallel load: on load, q <= d; on shift,
/// q <= {fill_msb, q[width-1:1]}.  This is the paper's X register whose MSB
/// is refilled with 0 in state MUL2 so the final iterations see x_i = 0.
Bus ShiftRightRegister(Netlist& nl, const Bus& d, NetId load, NetId shift,
                       NetId fill_msb);

/// Left-shift register with parallel load: on load, q <= d; on shift,
/// q <= {q[width-2:0], fill_lsb}.  The exponentiator's key register scans
/// the exponent MSB-first through bit width-1 of this bus.
Bus ShiftLeftRegister(Netlist& nl, const Bus& d, NetId load, NetId shift,
                      NetId fill_lsb);

/// Binary up-counter with synchronous reset; increments when `increment`
/// is high. Returns the count bus (width bits).
Bus Counter(Netlist& nl, std::size_t width, NetId increment, NetId reset);

/// Single-net equality test of a bus against a compile-time constant
/// (AND-reduce of XNOR bits).
NetId EqualsConstant(Netlist& nl, const Bus& bus, std::uint64_t value);

/// AND/OR-reduce helpers (balanced trees).
NetId ReduceAnd(Netlist& nl, const Bus& bus);
NetId ReduceOr(Netlist& nl, const Bus& bus);

/// Per-bit 2:1 mux over buses of equal width.
Bus MuxBus(Netlist& nl, NetId sel, const Bus& if0, const Bus& if1);

}  // namespace mont::rtl
