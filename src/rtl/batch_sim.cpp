#include "rtl/batch_sim.hpp"

#include <algorithm>
#include <stdexcept>

namespace mont::rtl {

BatchSimulator::BatchSimulator(const CompiledNetlist& compiled)
    : compiled_(compiled) {
  Init();
}

BatchSimulator::BatchSimulator(const Netlist& netlist)
    : owned_(std::make_unique<CompiledNetlist>(netlist)), compiled_(*owned_) {
  Init();
}

void BatchSimulator::Init() {
  words_.assign(compiled_.WordCount(), 0);
  words_[compiled_.OnesSlot()] = kAllLanes;
  for (const NetId id : compiled_.Const1Nets()) words_[id] = kAllLanes;
  next_state_.assign(compiled_.Dffs().size(), 0);
  dirty_ = true;
  Settle();
}

void BatchSimulator::CheckLane(std::size_t lane) {
  if (lane >= kLanes) {
    throw std::out_of_range("BatchSimulator: lane index out of range");
  }
}

void BatchSimulator::SetInput(NetId input, std::uint64_t lanes_value) {
  if (!compiled_.IsInput(input)) {
    throw std::logic_error(
        "BatchSimulator::SetInput: net is not a primary input");
  }
  if (!source_faults_.empty()) {
    for (SourceFault& sf : source_faults_) {
      if (sf.net != input) continue;
      sf.raw = lanes_value;
      words_[input] = ApplyMasks(sf.masks, lanes_value);
      dirty_ = true;
      return;
    }
  }
  words_[input] = lanes_value;
  dirty_ = true;
}

void BatchSimulator::SetInputLane(NetId input, std::size_t lane, bool value) {
  CheckLane(lane);
  const std::uint64_t bit = std::uint64_t{1} << lane;
  const std::uint64_t raw = RawOf(input);
  SetInput(input, value ? (raw | bit) : (raw & ~bit));
}

std::uint64_t BatchSimulator::RawOf(NetId net) const {
  for (const SourceFault& sf : source_faults_) {
    if (sf.net == net) return sf.raw;
  }
  return words_[net];
}

template <bool kHasCombFaults>
void BatchSimulator::SettleStream() {
  const Op* ops = compiled_.OpStream().data();
  const std::uint32_t* as = compiled_.AStream().data();
  const std::uint32_t* bs = compiled_.BStream().data();
  const std::uint32_t* cs = compiled_.CStream().data();
  const NetId* outs = compiled_.OutStream().data();
  std::uint64_t* w = words_.data();
  auto fault = comb_faults_.cbegin();
  const std::size_t n = compiled_.InstructionCount();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t a = w[as[i]];
    const std::uint64_t b = w[bs[i]];
    std::uint64_t out = 0;
    switch (ops[i]) {
      case Op::kBuf: out = a; break;
      case Op::kNot: out = ~a; break;
      case Op::kAnd: out = a & b; break;
      case Op::kOr: out = a | b; break;
      case Op::kXor: out = a ^ b; break;
      case Op::kNand: out = ~(a & b); break;
      case Op::kNor: out = ~(a | b); break;
      case Op::kXnor: out = ~(a ^ b); break;
      case Op::kMux: out = (a & w[cs[i]]) | (~a & b); break;
      default: continue;  // unreachable: the stream is purely combinational
    }
    if constexpr (kHasCombFaults) {
      if (fault != comb_faults_.cend() &&
          fault->first == static_cast<std::uint32_t>(i)) {
        out = ApplyMasks(fault->second, out);
        ++fault;
      }
    }
    w[outs[i]] = out;
  }
}

void BatchSimulator::Settle() {
  if (!dirty_) return;
  if (comb_faults_.empty()) {
    SettleStream<false>();
  } else {
    SettleStream<true>();
  }
  dirty_ = false;
}

void BatchSimulator::Tick() {
  Settle();
  const std::vector<CompiledNetlist::Dff>& dffs = compiled_.Dffs();
  // Phase 1: every DFF samples from the settled pre-edge values, all lanes
  // at once: next = reset ? 0 : (enable ? d : q).
  for (std::size_t i = 0; i < dffs.size(); ++i) {
    const CompiledNetlist::Dff& dff = dffs[i];
    const std::uint64_t q = words_[dff.q];
    const std::uint64_t en = words_[dff.enable];
    const std::uint64_t d = words_[dff.d];
    next_state_[i] = ((en & d) | (~en & q)) & ~words_[dff.reset];
  }
  // Faulted flip-flops: the fault sits on the *output* net, not inside the
  // feedback path, so the hold path must recirculate the raw internal
  // state — otherwise an invert fault on a holding register would
  // oscillate.  Recompute those flip-flops from their retained raw value
  // and expose the override.
  for (const auto& [dff_index, fault_index] : dff_fault_hooks_) {
    const CompiledNetlist::Dff& dff = dffs[dff_index];
    SourceFault& sf = source_faults_[fault_index];
    const std::uint64_t q = sf.raw;
    const std::uint64_t en = words_[dff.enable];
    const std::uint64_t d = dff.d == dff.q ? q : words_[dff.d];
    sf.raw = ((en & d) | (~en & q)) & ~words_[dff.reset];
    next_state_[dff_index] = ApplyMasks(sf.masks, sf.raw);
  }
  // Phase 2: commit simultaneously; re-settle only if any register moved.
  bool changed = false;
  for (std::size_t i = 0; i < dffs.size(); ++i) {
    changed |= next_state_[i] != words_[dffs[i].q];
    words_[dffs[i].q] = next_state_[i];
  }
  if (changed) {
    dirty_ = true;
    Settle();
  }
  ++cycles_;
  if (toggle_capture_) AccumulateToggles();
}

void BatchSimulator::EnableToggleCapture(std::span<const NetId> nets) {
  toggle_nets_.clear();
  if (nets.empty()) {
    toggle_nets_.reserve(compiled_.NetCount());
    for (NetId id = 0; id < compiled_.NetCount(); ++id) {
      toggle_nets_.push_back(id);
    }
  } else {
    for (const NetId id : nets) {
      if (!compiled_.ValidNet(id)) {
        throw std::out_of_range(
            "BatchSimulator::EnableToggleCapture: unknown net");
      }
    }
    toggle_nets_.assign(nets.begin(), nets.end());
  }
  toggle_prev_.resize(toggle_nets_.size());
  for (std::size_t i = 0; i < toggle_nets_.size(); ++i) {
    toggle_prev_[i] = words_[toggle_nets_[i]];
  }
  toggle_counts_.fill(0);
  toggle_capture_ = true;
}

void BatchSimulator::DisableToggleCapture() {
  toggle_capture_ = false;
  toggle_nets_.clear();
  toggle_prev_.clear();
  toggle_counts_.fill(0);
}

void BatchSimulator::AccumulateToggles() {
  // Vertical (bit-sliced) counters: plane p holds bit p of every lane's
  // running count, so one XOR word updates all 64 lane counts in the few
  // word ops its ripple carry needs.  32 planes cover any NetId count.
  constexpr std::size_t kPlanes = 32;
  std::uint64_t planes[kPlanes] = {};
  const std::size_t n = toggle_nets_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t current = words_[toggle_nets_[i]];
    std::uint64_t carry = current ^ toggle_prev_[i];
    toggle_prev_[i] = current;
    for (std::size_t p = 0; carry != 0 && p < kPlanes; ++p) {
      const std::uint64_t next = planes[p] & carry;
      planes[p] ^= carry;
      carry = next;
    }
  }
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    std::uint32_t count = 0;
    for (std::size_t p = 0; p < kPlanes; ++p) {
      count |= static_cast<std::uint32_t>((planes[p] >> lane) & 1u) << p;
    }
    toggle_counts_[lane] = count;
  }
}

void BatchSimulator::Run(std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) Tick();
}

void BatchSimulator::Reset() {
  for (const CompiledNetlist::Dff& dff : compiled_.Dffs()) words_[dff.q] = 0;
  for (const auto& [dff_index, fault_index] : dff_fault_hooks_) {
    SourceFault& sf = source_faults_[fault_index];
    sf.raw = 0;
    words_[compiled_.Dffs()[dff_index].q] = ApplyMasks(sf.masks, 0);
  }
  cycles_ = 0;
  dirty_ = true;
  Settle();
}

std::uint64_t BatchSimulator::PeekBus(const std::vector<NetId>& nets,
                                      std::size_t lane) const {
  if (nets.size() > 64) {
    throw std::invalid_argument(
        "BatchSimulator::PeekBus: bus wider than 64 nets, use PeekWide");
  }
  CheckLane(lane);
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < nets.size(); ++i) {
    if ((words_[nets[i]] >> lane) & 1u) out |= std::uint64_t{1} << i;
  }
  return out;
}

bignum::BigUInt BatchSimulator::PeekWide(const std::vector<NetId>& nets,
                                         std::size_t lane) const {
  CheckLane(lane);
  bignum::BigUInt out;
  for (std::size_t i = 0; i < nets.size(); ++i) {
    if ((words_[nets[i]] >> lane) & 1u) out.SetBit(i, true);
  }
  return out;
}

void BatchSimulator::InjectFault(NetId net, FaultType type,
                                 std::uint64_t lanes) {
  InjectFaults({LaneFault{net, type, lanes}});
}

void BatchSimulator::InjectFaults(const std::vector<LaneFault>& faults) {
  for (const LaneFault& fault : faults) {
    if (!compiled_.ValidNet(fault.net)) {
      throw std::out_of_range("BatchSimulator::InjectFault: unknown net");
    }
  }
  for (const LaneFault& fault : faults) {
    if (fault.lanes == 0) continue;
    FaultMasks& masks = faults_[fault.net];
    // Per lane, the last injected fault wins: release the lanes from every
    // mask, then claim them for the requested type.
    masks.stuck0 &= ~fault.lanes;
    masks.stuck1 &= ~fault.lanes;
    masks.invert &= ~fault.lanes;
    switch (fault.type) {
      case FaultType::kStuckAt0: masks.stuck0 |= fault.lanes; break;
      case FaultType::kStuckAt1: masks.stuck1 |= fault.lanes; break;
      case FaultType::kInvert: masks.invert |= fault.lanes; break;
    }
  }
  RebuildFaultTables();
  dirty_ = true;
  Settle();
}

void BatchSimulator::ClearFaults() {
  if (faults_.empty()) return;
  // Restore the retained un-faulted values of faulted source nets; faulted
  // combinational nets recompute on the next Settle().
  for (const SourceFault& sf : source_faults_) words_[sf.net] = sf.raw;
  faults_.clear();
  comb_faults_.clear();
  source_faults_.clear();
  dff_fault_hooks_.clear();
  dirty_ = true;
}

void BatchSimulator::RebuildFaultTables() {
  // Retain raw values of already-faulted source nets across the rebuild;
  // newly faulted sources are currently un-faulted, so words_ is raw.
  std::map<NetId, std::uint64_t> raws;
  for (const SourceFault& sf : source_faults_) raws[sf.net] = sf.raw;
  comb_faults_.clear();
  source_faults_.clear();
  dff_fault_hooks_.clear();
  for (const auto& [net, masks] : faults_) {
    if (masks.Empty()) continue;
    const std::uint32_t instr = compiled_.InstructionOf(net);
    if (instr != CompiledNetlist::kNoInstruction) {
      comb_faults_.emplace_back(instr, masks);
      continue;
    }
    SourceFault sf;
    sf.net = net;
    sf.masks = masks;
    const auto raw_it = raws.find(net);
    sf.raw = raw_it != raws.end() ? raw_it->second : words_[net];
    const std::uint32_t dff_index = compiled_.DffIndexOf(net);
    if (dff_index != CompiledNetlist::kNoInstruction) {
      dff_fault_hooks_.emplace_back(
          dff_index, static_cast<std::uint32_t>(source_faults_.size()));
    }
    source_faults_.push_back(sf);
  }
  std::sort(comb_faults_.begin(), comb_faults_.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  for (const SourceFault& sf : source_faults_) {
    words_[sf.net] = ApplyMasks(sf.masks, sf.raw);
  }
}

}  // namespace mont::rtl
