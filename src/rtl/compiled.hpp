// compiled.hpp — a Netlist lowered once into a flat, cache-friendly
// instruction stream for fast repeated simulation.
//
// The walking-the-graph simulator pays for pointer-chasing Node lookups on
// every gate of every Settle().  CompiledNetlist performs that traversal
// exactly once: the topologically ordered combinational cone becomes a
// structure-of-arrays stream of (op, a, b, c, out) index tuples, the
// flip-flops become a dense latch table, and every absent operand is
// redirected to one of two scratch value slots (constant all-0 and
// constant all-1) so the evaluation loops are branch-free.  Both the
// scalar Simulator and the 64-lane BatchSimulator execute this form.
//
// A CompiledNetlist is a self-contained snapshot: it keeps no reference to
// the source Netlist, so the netlist may be destroyed (or mutated and
// re-compiled) afterwards.
#pragma once

#include <cstdint>
#include <vector>

#include "rtl/netlist.hpp"

namespace mont::rtl {

class CompiledNetlist {
 public:
  /// Index of an instruction in the stream; kNoInstruction marks nets that
  /// are evaluation sources (inputs, constants, flip-flop outputs) and
  /// therefore have no computing instruction — the fault-injection hook
  /// uses this to route overrides to the right evaluation phase.
  static constexpr std::uint32_t kNoInstruction =
      std::numeric_limits<std::uint32_t>::max();

  /// One flip-flop: q <= reset ? 0 : (enable ? d : q) on each clock edge.
  /// Absent enable points at the all-ones slot, absent reset at the
  /// all-zeros slot, absent d at q itself — so the latch loop needs no
  /// presence checks.
  struct Dff {
    NetId q = kNoNet;
    std::uint32_t d = 0;
    std::uint32_t enable = 0;
    std::uint32_t reset = 0;
  };

  /// Lowers `netlist`.  Throws std::logic_error on combinational cycles
  /// (via Netlist::TopoOrder).
  explicit CompiledNetlist(const Netlist& netlist);

  /// Number of nets in the source netlist.
  std::size_t NetCount() const { return net_count_; }
  /// Value-array length: every net plus the two scratch slots.
  std::size_t WordCount() const { return net_count_ + 2; }
  std::uint32_t ZeroSlot() const { return static_cast<std::uint32_t>(net_count_); }
  std::uint32_t OnesSlot() const {
    return static_cast<std::uint32_t>(net_count_ + 1);
  }

  /// Parallel arrays of the topo-ordered combinational instruction stream.
  std::size_t InstructionCount() const { return op_.size(); }
  const std::vector<Op>& OpStream() const { return op_; }
  const std::vector<std::uint32_t>& AStream() const { return a_; }
  const std::vector<std::uint32_t>& BStream() const { return b_; }
  const std::vector<std::uint32_t>& CStream() const { return c_; }
  const std::vector<NetId>& OutStream() const { return out_; }

  const std::vector<Dff>& Dffs() const { return dffs_; }
  const std::vector<NetId>& InputNets() const { return inputs_; }
  const std::vector<NetId>& Const1Nets() const { return const1_; }

  bool ValidNet(NetId id) const { return id < net_count_; }
  bool IsInput(NetId id) const { return ValidNet(id) && is_input_[id] != 0; }

  /// Instruction computing `id`, or kNoInstruction for source nets.
  std::uint32_t InstructionOf(NetId id) const { return instr_of_.at(id); }
  /// Index into Dffs() for a flip-flop net, or kNoInstruction otherwise.
  std::uint32_t DffIndexOf(NetId id) const { return dff_index_of_.at(id); }

 private:
  std::size_t net_count_ = 0;
  std::vector<Op> op_;
  std::vector<std::uint32_t> a_;
  std::vector<std::uint32_t> b_;
  std::vector<std::uint32_t> c_;
  std::vector<NetId> out_;
  std::vector<Dff> dffs_;
  std::vector<NetId> inputs_;
  std::vector<NetId> const1_;
  std::vector<std::uint8_t> is_input_;
  std::vector<std::uint32_t> instr_of_;
  std::vector<std::uint32_t> dff_index_of_;
};

}  // namespace mont::rtl
