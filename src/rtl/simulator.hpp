// simulator.hpp — cycle-accurate two-phase simulator for Netlist.
//
// Evaluation model: set primary inputs, call Settle() to propagate through
// the combinational logic (levelized, one pass), then Tick() to advance the
// single implicit clock by one cycle — all flip-flops sample their data
// inputs simultaneously from the settled combinational values, then the
// combinational logic settles again.  This matches a synchronous
// single-clock FPGA design with registered state, which is exactly the
// paper's design style.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "rtl/netlist.hpp"

namespace mont::rtl {

/// Fault models for InjectFault (see fault.hpp for campaigns).
enum class FaultType : std::uint8_t { kStuckAt0, kStuckAt1, kInvert };

class Simulator {
 public:
  /// The netlist must outlive the simulator.  All state starts at 0.
  explicit Simulator(const Netlist& netlist);

  /// Drives a primary input.  Takes effect at the next Settle()/Tick().
  void SetInput(NetId input, bool value);

  /// Propagates combinational logic from current inputs and register state.
  void Settle();

  /// One positive clock edge: flip-flops latch, then logic settles.
  /// Settle() must reflect the current inputs first; Tick() calls it
  /// internally before latching so callers only need SetInput + Tick.
  void Tick();

  /// Runs `n` clock cycles with inputs held.
  void Run(std::size_t n);

  /// Resets all flip-flops to 0 and re-settles.
  void Reset();

  /// Value of any net after the last Settle()/Tick().
  bool Peek(NetId net) const { return values_[net] != 0; }

  /// Reads a bus (LSB first) as an integer (at most 64 bits).
  std::uint64_t PeekBus(const std::vector<NetId>& nets) const;

  /// Number of Tick() calls since construction/Reset().
  std::uint64_t CycleCount() const { return cycles_; }

  /// Forces a net faulty; applied during every evaluation so the fault
  /// propagates through downstream logic and state.
  void InjectFault(NetId net, FaultType type);
  void ClearFaults();
  std::size_t ActiveFaults() const { return faults_.size(); }

 private:
  std::uint8_t Faulted(NetId id, std::uint8_t value) const;

  const Netlist& netlist_;
  std::vector<std::uint8_t> values_;
  std::vector<NetId> dffs_;
  std::vector<std::uint8_t> next_state_;
  std::uint64_t cycles_ = 0;
  std::unordered_map<NetId, FaultType> faults_;
};

}  // namespace mont::rtl
