// simulator.hpp — cycle-accurate two-phase simulator for Netlist.
//
// Evaluation model: set primary inputs, call Settle() to propagate through
// the combinational logic (levelized, one pass), then Tick() to advance the
// single implicit clock by one cycle — all flip-flops sample their data
// inputs simultaneously from the settled combinational values, then the
// combinational logic settles again.  This matches a synchronous
// single-clock FPGA design with registered state, which is exactly the
// paper's design style.
//
// Since the compiled-engine rework this class is a thin single-lane view
// over the word-packed BatchSimulator: the netlist is lowered once into a
// CompiledNetlist instruction stream and evaluated with the same code path
// that serves 64-lane batch runs, so the two engines cannot drift.  Use
// BatchSimulator directly (batch_sim.hpp) to evaluate 64 independent
// stimuli or fault lanes per pass.
#pragma once

#include <cstdint>
#include <vector>

#include "bignum/biguint.hpp"
#include "rtl/batch_sim.hpp"
#include "rtl/compiled.hpp"
#include "rtl/netlist.hpp"

namespace mont::rtl {

class Simulator {
 public:
  /// Compiles a private snapshot of `netlist`; later netlist mutations are
  /// not observed.  All state starts at 0.
  explicit Simulator(const Netlist& netlist);

  /// Non-copyable and non-movable: the internal batch engine references
  /// the by-value compiled snapshot, so a moved-from instance would leave
  /// the engine pointing at dead storage.
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Drives a primary input.  Takes effect at the next Settle()/Tick().
  void SetInput(NetId input, bool value) {
    batch_.SetInputAll(input, value);
  }

  /// Propagates combinational logic from current inputs and register state.
  /// A no-op when no input, register or fault changed since the last settle.
  void Settle() { batch_.Settle(); }

  /// One positive clock edge: flip-flops latch, then logic settles.
  /// Settle() must reflect the current inputs first; Tick() calls it
  /// internally before latching so callers only need SetInput + Tick.
  void Tick() { batch_.Tick(); }

  /// Runs `n` clock cycles with inputs held.
  void Run(std::size_t n) { batch_.Run(n); }

  /// Resets all flip-flops to 0 and re-settles.
  void Reset() { batch_.Reset(); }

  /// Value of any net after the last Settle()/Tick().
  bool Peek(NetId net) const { return (batch_.Peek(net) & 1u) != 0; }

  /// Reads a bus (LSB first) as an integer.  Throws std::invalid_argument
  /// for buses wider than 64 nets — use PeekWide for wide datapaths.
  std::uint64_t PeekBus(const std::vector<NetId>& nets) const {
    return batch_.PeekBus(nets, 0);
  }

  /// Reads an arbitrarily wide bus (LSB first) as a BigUInt.
  bignum::BigUInt PeekWide(const std::vector<NetId>& nets) const {
    return batch_.PeekWide(nets, 0);
  }

  /// Number of Tick() calls since construction/Reset().
  std::uint64_t CycleCount() const { return batch_.CycleCount(); }

  /// Forces a net faulty; applied during every evaluation so the fault
  /// propagates through downstream logic and state.
  void InjectFault(NetId net, FaultType type) {
    batch_.InjectFault(net, type);
  }
  void ClearFaults() { batch_.ClearFaults(); }
  std::size_t ActiveFaults() const { return batch_.ActiveFaults(); }

 private:
  CompiledNetlist compiled_;
  BatchSimulator batch_;
};

}  // namespace mont::rtl
