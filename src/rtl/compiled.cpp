#include "rtl/compiled.hpp"

namespace mont::rtl {

CompiledNetlist::CompiledNetlist(const Netlist& netlist) {
  net_count_ = netlist.NodeCount();
  is_input_.assign(net_count_, 0);
  instr_of_.assign(net_count_, kNoInstruction);
  dff_index_of_.assign(net_count_, kNoInstruction);

  const std::vector<NetId>& topo = netlist.TopoOrder();
  op_.reserve(topo.size());
  a_.reserve(topo.size());
  b_.reserve(topo.size());
  c_.reserve(topo.size());
  out_.reserve(topo.size());
  const auto slot = [this](NetId id) {
    return id == kNoNet ? ZeroSlot() : static_cast<std::uint32_t>(id);
  };
  for (const NetId id : topo) {
    const Node& node = netlist.NodeAt(id);
    instr_of_[id] = static_cast<std::uint32_t>(op_.size());
    op_.push_back(node.op);
    a_.push_back(slot(node.a));
    b_.push_back(slot(node.b));
    c_.push_back(slot(node.c));
    out_.push_back(id);
  }

  for (NetId id = 0; id < net_count_; ++id) {
    const Node& node = netlist.NodeAt(id);
    switch (node.op) {
      case Op::kInput:
        is_input_[id] = 1;
        inputs_.push_back(id);
        break;
      case Op::kConst1:
        const1_.push_back(id);
        break;
      case Op::kDff: {
        dff_index_of_[id] = static_cast<std::uint32_t>(dffs_.size());
        Dff dff;
        dff.q = id;
        dff.d = node.a == kNoNet ? static_cast<std::uint32_t>(id)
                                 : static_cast<std::uint32_t>(node.a);
        dff.enable = node.b == kNoNet ? OnesSlot()
                                      : static_cast<std::uint32_t>(node.b);
        dff.reset = slot(node.c);
        dffs_.push_back(dff);
        break;
      }
      default:
        break;
    }
  }
}

}  // namespace mont::rtl
