// netlist.hpp — structural gate-level netlist IR.
//
// This is the substitution for the paper's FPGA design entry: the systolic
// array, the MMMC datapath and the controller are generated as explicit
// gate-level netlists (AND/OR/XOR/... + D flip-flops) so that the same
// quantities the authors measured after synthesis — gate counts, flip-flop
// counts, critical-path composition — can be measured here, and so the
// netlist can be simulated cycle-by-cycle and checked bit-for-bit against
// both the behavioural hardware model and the software reference.
//
// Semantics:
//  * Combinational ops evaluate instantaneously (levelized evaluation).
//  * kDff is a positive-edge D flip-flop with optional clock-enable and
//    optional synchronous reset (reset wins over enable); power-on state 0.
//  * A single implicit clock drives all flip-flops (the paper's design is
//    single-clock).
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace mont::rtl {

/// Identifier of a net (the output of a node). Dense, starting at 0.
using NetId = std::uint32_t;
inline constexpr NetId kNoNet = std::numeric_limits<NetId>::max();

/// "<prefix><index>" built by append: operator+(const char*, string&&)
/// trips GCC 12's bogus -Wrestrict (PR 105651) at -O3, so every indexed
/// net/port name in the tree goes through this one helper.
inline std::string IndexedName(const char* prefix, std::uint64_t index) {
  std::string name(prefix);
  name += std::to_string(index);
  return name;
}

/// Node kinds. Arity: kInput/kConst* none; kNot/kBuf one (a);
/// two-input gates (a, b); kMux three (sel=a, if0=b, if1=c);
/// kDff three (d=a, enable=b or kNoNet, sync reset=c or kNoNet).
enum class Op : std::uint8_t {
  kInput,
  kConst0,
  kConst1,
  kBuf,
  kNot,
  kAnd,
  kOr,
  kXor,
  kNand,
  kNor,
  kXnor,
  kMux,
  kDff,
};

/// Human-readable op name ("and", "dff", ...).
const char* OpName(Op op);
/// True for every op except kInput, kConst0/1 and kDff.
bool IsCombinational(Op op);
/// True for 2-input logic gates (kAnd .. kXnor).
bool IsBinaryGate(Op op);

struct Node {
  Op op;
  NetId a = kNoNet;
  NetId b = kNoNet;
  NetId c = kNoNet;
};

/// The operand nets a node actually consumes (kNoNet slots dropped), in
/// slot order — the one place the per-op operand convention is decoded for
/// graph walkers (topo sort, taint propagation, lint reachability).
struct NodeFanin {
  std::array<NetId, 3> nets{kNoNet, kNoNet, kNoNet};
  std::size_t count = 0;
  const NetId* begin() const { return nets.data(); }
  const NetId* end() const { return nets.data() + count; }
};
NodeFanin FaninOf(const Node& node);

/// Aggregate gate statistics of a netlist (the quantities in the paper's
/// area formula: XOR/AND/OR gate counts and flip-flop count).
struct NetlistStats {
  std::size_t inputs = 0;
  std::size_t and_gates = 0;   // AND + NAND
  std::size_t or_gates = 0;    // OR + NOR
  std::size_t xor_gates = 0;   // XOR + XNOR
  std::size_t not_gates = 0;
  std::size_t mux_gates = 0;
  std::size_t flip_flops = 0;
  /// Total two-input-gate equivalents (MUX counted as 3, NOT as 1).
  std::size_t GateEquivalents() const {
    return and_gates + or_gates + xor_gates + not_gates + 3 * mux_gates;
  }
  std::size_t CombinationalNodes() const {
    return and_gates + or_gates + xor_gates + not_gates + mux_gates;
  }
};

/// A gate-level netlist under construction plus named port bookkeeping.
class Netlist {
 public:
  Netlist();

  // -- construction ----------------------------------------------------------

  NetId AddInput(const std::string& name);
  NetId Const0() const { return const0_; }
  NetId Const1() const { return const1_; }
  NetId Not(NetId a);
  NetId Buf(NetId a);
  NetId And(NetId a, NetId b);
  NetId Or(NetId a, NetId b);
  NetId Xor(NetId a, NetId b);
  NetId Nand(NetId a, NetId b);
  NetId Nor(NetId a, NetId b);
  NetId Xnor(NetId a, NetId b);
  /// sel ? if1 : if0.
  NetId Mux(NetId sel, NetId if0, NetId if1);
  /// D flip-flop; q <= reset ? 0 : (enable ? d : q) on each Tick.
  NetId Dff(NetId d, NetId enable = kNoNet, NetId sync_reset = kNoNet);

  /// Re-points an existing DFF's data/enable/reset inputs.  Netlists with
  /// state feedback (registers that hold their own value) are built by
  /// creating the DFF first and wiring its input cone afterwards.
  void RewireDff(NetId dff, NetId d, NetId enable = kNoNet,
                 NetId sync_reset = kNoNet);

  /// Re-points one operand slot (0 = a, 1 = b, 2 = c) of an existing gate.
  /// Unlike the builder calls this can create defective graphs on purpose —
  /// combinational loops, floating operands (src = kNoNet) — which is what
  /// the structural lint's tests and fault-modelling experiments need.
  /// Throws std::logic_error for source nodes (inputs/constants have no
  /// operands) and std::out_of_range for an unknown node or source net.
  void RewireOperand(NetId node, int slot, NetId src);

  /// Marks a net as a module output under `name` (for export/inspection).
  void MarkOutput(NetId net, const std::string& name);
  /// Flags a gate as belonging to a dedicated fast-carry chain (FPGA
  /// MUXCY/XORCY resources).  Technology mapping keeps such gates out of
  /// LUT clusters and the timing model charges them carry-chain delays.
  void MarkFastCarry(NetId net);
  bool IsFastCarry(NetId net) const;
  /// Attaches a debug name to any net.
  void NameNet(NetId net, const std::string& name);

  // -- security annotations (consumed by analysis::TaintAnalysis) -------------

  /// Marks a net as a secret source: key/exponent input bits, or any net
  /// whose value is derived from key material outside this netlist.
  void MarkSecret(NetId net);
  bool IsSecret(NetId net) const;
  const std::vector<NetId>& SecretNets() const { return secret_nets_; }

  /// Marks a net as a fresh-randomness source.  `mask_group` identifies the
  /// random variable: nets sharing a group carry the *same* randomness (so
  /// XOR-ing them can cancel), different groups are independent.  Blinding
  /// one secret bit per fresh group is what moves taint Secret -> Blinded.
  void MarkRandom(NetId net, unsigned mask_group);
  const std::vector<std::pair<NetId, unsigned>>& RandomNets() const {
    return random_nets_;
  }

  /// Waives a structural-lint finding on `net` with a recorded reason
  /// (e.g. a register kept for port regularity that the logic never reads).
  /// Lint reports waived nets separately instead of failing on them.
  void WaiveLint(NetId net, const std::string& reason);
  const std::vector<std::pair<NetId, std::string>>& LintWaivers() const {
    return lint_waivers_;
  }

  // -- inspection --------------------------------------------------------------

  std::size_t NodeCount() const { return nodes_.size(); }
  const Node& NodeAt(NetId id) const { return nodes_.at(id); }
  const std::vector<std::pair<NetId, std::string>>& Outputs() const {
    return outputs_;
  }
  const std::vector<std::pair<NetId, std::string>>& Inputs() const {
    return inputs_;
  }
  /// Name of a net if one was attached, otherwise "n<id>".
  std::string NetName(NetId id) const;
  NetlistStats Stats() const;

  /// Topologically ordered combinational node ids (inputs/consts/DFFs are
  /// evaluation sources and are excluded).  Throws std::logic_error if a
  /// combinational cycle exists.  Cached; invalidated by construction calls.
  const std::vector<NetId>& TopoOrder() const;

  /// Fanout adjacency: element i lists the nodes consuming net i (a node
  /// with the same net in two slots appears twice).  Built on demand — an
  /// O(nets) walk — not cached.
  std::vector<std::vector<NetId>> BuildFanout() const;

 private:
  NetId Emit(Op op, NetId a = kNoNet, NetId b = kNoNet, NetId c = kNoNet);
  void CheckNet(NetId id) const;

  std::vector<Node> nodes_;
  NetId const0_ = kNoNet;
  NetId const1_ = kNoNet;
  std::vector<std::pair<NetId, std::string>> inputs_;
  std::vector<std::pair<NetId, std::string>> outputs_;
  std::unordered_map<NetId, std::string> names_;
  std::vector<NetId> secret_nets_;
  std::vector<std::pair<NetId, unsigned>> random_nets_;
  std::vector<std::pair<NetId, std::string>> lint_waivers_;
  std::vector<std::uint8_t> fast_carry_;
  mutable std::vector<NetId> topo_cache_;
  mutable bool topo_valid_ = false;
};

}  // namespace mont::rtl
