#include "rtl/testbench.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "rtl/batch_sim.hpp"
#include "rtl/simulator.hpp"

namespace mont::rtl {

namespace {

std::string Sym(NetId id) { return IndexedName("n", id); }

}  // namespace

std::string ExportTestbench(const Netlist& netlist,
                            const std::string& module_name,
                            const std::vector<TestbenchVector>& vectors) {
  std::ostringstream out;
  out << "// Self-checking testbench generated from the cycle-accurate "
         "model.\n";
  out << "`timescale 1ns/1ps\n";
  out << "module " << module_name << "_tb;\n";
  out << "  reg clk = 1'b0;\n";
  out << "  integer errors = 0;\n";
  for (const auto& [net, name] : netlist.Inputs()) {
    out << "  reg " << Sym(net) << " = 1'b0;  // " << name << '\n';
  }
  for (const auto& [net, name] : netlist.Outputs()) {
    out << "  wire out_" << name << ";\n";
  }
  out << "\n  " << module_name << " dut (\n    .clk(clk)";
  for (const auto& [net, name] : netlist.Inputs()) {
    out << ",\n    ." << Sym(net) << '(' << Sym(net) << ')';
  }
  for (const auto& [net, name] : netlist.Outputs()) {
    out << ",\n    .out_" << name << "(out_" << name << ')';
  }
  out << "\n  );\n\n";
  out << "  always #5 clk = ~clk;\n\n";
  out << "  initial begin\n";
  std::size_t index = 0;
  for (const TestbenchVector& vec : vectors) {
    out << "    // vector " << index++ << '\n';
    for (const auto& [net, value] : vec.inputs) {
      out << "    " << Sym(net) << " = 1'b" << (value ? 1 : 0) << ";\n";
    }
    out << "    @(posedge clk); #1;\n";
    for (const auto& [net, value] : vec.expected) {
      // Find the output name for the net.
      for (const auto& [onet, name] : netlist.Outputs()) {
        if (onet != net) continue;
        out << "    if (out_" << name << " !== 1'b" << (value ? 1 : 0)
            << ") begin\n"
            << "      $display(\"MISMATCH vector " << (index - 1) << " out_"
            << name << "\");\n      errors = errors + 1;\n    end\n";
        break;
      }
    }
  }
  out << "    if (errors == 0) $display(\"PASS: all " << vectors.size()
      << " vectors\");\n";
  out << "    else $display(\"FAIL: %0d mismatches\", errors);\n";
  out << "    $finish;\n  end\nendmodule\n";
  return out.str();
}

std::vector<TestbenchVector> RecordVectors(
    const Netlist& netlist,
    const std::vector<std::vector<std::pair<NetId, bool>>>& stimulus,
    std::size_t cycles_per_vector) {
  Simulator sim(netlist);
  std::vector<TestbenchVector> vectors;
  for (const auto& step : stimulus) {
    TestbenchVector vec;
    vec.inputs = step;
    for (const auto& [net, value] : step) sim.SetInput(net, value);
    sim.Run(cycles_per_vector);
    for (const auto& [net, name] : netlist.Outputs()) {
      vec.expected.emplace_back(net, sim.Peek(net));
    }
    vectors.push_back(std::move(vec));
  }
  return vectors;
}

std::vector<std::vector<TestbenchVector>> RecordVectorsBatch(
    const Netlist& netlist, const std::vector<StimulusSequence>& sequences,
    std::size_t cycles_per_vector) {
  if (sequences.size() > BatchSimulator::kLanes) {
    throw std::invalid_argument(
        "RecordVectorsBatch: more than 64 stimulus sequences");
  }
  std::size_t steps = 0;
  for (const StimulusSequence& seq : sequences) {
    steps = std::max(steps, seq.size());
  }
  BatchSimulator sim(netlist);
  std::vector<std::vector<TestbenchVector>> recorded(sequences.size());
  for (std::size_t step = 0; step < steps; ++step) {
    for (std::size_t lane = 0; lane < sequences.size(); ++lane) {
      if (step >= sequences[lane].size()) continue;
      for (const auto& [net, value] : sequences[lane][step]) {
        sim.SetInputLane(net, lane, value);
      }
    }
    sim.Run(cycles_per_vector);
    for (std::size_t lane = 0; lane < sequences.size(); ++lane) {
      if (step >= sequences[lane].size()) continue;
      TestbenchVector vec;
      vec.inputs = sequences[lane][step];
      for (const auto& [net, name] : netlist.Outputs()) {
        vec.expected.emplace_back(net, sim.PeekLane(net, lane));
      }
      recorded[lane].push_back(std::move(vec));
    }
  }
  return recorded;
}

}  // namespace mont::rtl
