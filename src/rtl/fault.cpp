#include "rtl/fault.hpp"

#include <algorithm>

namespace mont::rtl {

const char* FaultTypeName(FaultType type) {
  switch (type) {
    case FaultType::kStuckAt0: return "stuck-at-0";
    case FaultType::kStuckAt1: return "stuck-at-1";
    case FaultType::kInvert: return "invert";
  }
  return "?";
}

FaultCoverage RunFaultCampaign(
    const Netlist& netlist, const std::vector<NetId>& targets,
    const std::vector<FaultType>& types,
    const std::function<bool(Simulator&)>& workload) {
  FaultCoverage coverage;
  Simulator sim(netlist);
  for (const NetId net : targets) {
    for (const FaultType type : types) {
      sim.ClearFaults();
      sim.Reset();
      sim.InjectFault(net, type);
      FaultResult result;
      result.net = net;
      result.type = type;
      result.detected = workload(sim);
      ++coverage.injected;
      if (result.detected) ++coverage.detected;
      coverage.results.push_back(result);
    }
  }
  return coverage;
}

FaultCoverage RunFaultCampaignBatch(
    const Netlist& netlist, const std::vector<NetId>& targets,
    const std::vector<FaultType>& types,
    const std::function<std::uint64_t(BatchSimulator&)>& workload) {
  std::vector<FaultResult> population;
  for (const NetId net : targets) {
    for (const FaultType type : types) {
      population.push_back(FaultResult{net, type, false});
    }
  }
  FaultCoverage coverage;
  const CompiledNetlist compiled(netlist);
  BatchSimulator sim(compiled);
  for (std::size_t base = 0; base < population.size();
       base += BatchSimulator::kLanes) {
    const std::size_t pack =
        std::min(BatchSimulator::kLanes, population.size() - base);
    sim.ClearFaults();
    sim.Reset();
    std::vector<BatchSimulator::LaneFault> pack_faults;
    for (std::size_t lane = 0; lane < pack; ++lane) {
      const FaultResult& fault = population[base + lane];
      pack_faults.push_back({fault.net, fault.type, std::uint64_t{1} << lane});
    }
    sim.InjectFaults(pack_faults);
    const std::uint64_t detected = workload(sim);
    for (std::size_t lane = 0; lane < pack; ++lane) {
      FaultResult result = population[base + lane];
      result.detected = ((detected >> lane) & 1u) != 0;
      ++coverage.injected;
      if (result.detected) ++coverage.detected;
      coverage.results.push_back(result);
    }
  }
  return coverage;
}

}  // namespace mont::rtl
