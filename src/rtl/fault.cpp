#include "rtl/fault.hpp"

namespace mont::rtl {

const char* FaultTypeName(FaultType type) {
  switch (type) {
    case FaultType::kStuckAt0: return "stuck-at-0";
    case FaultType::kStuckAt1: return "stuck-at-1";
    case FaultType::kInvert: return "invert";
  }
  return "?";
}

FaultCoverage RunFaultCampaign(
    const Netlist& netlist, const std::vector<NetId>& targets,
    const std::vector<FaultType>& types,
    const std::function<bool(Simulator&)>& workload) {
  FaultCoverage coverage;
  Simulator sim(netlist);
  for (const NetId net : targets) {
    for (const FaultType type : types) {
      sim.ClearFaults();
      sim.Reset();
      sim.InjectFault(net, type);
      FaultResult result;
      result.net = net;
      result.type = type;
      result.detected = workload(sim);
      ++coverage.injected;
      if (result.detected) ++coverage.detected;
      coverage.results.push_back(result);
    }
  }
  return coverage;
}

}  // namespace mont::rtl
