// testbench.hpp — self-checking Verilog testbench generation.
//
// ExportVerilog (verilog.hpp) emits the synthesizable module; this
// generator emits the matching testbench: stimulus vectors and expected
// responses are produced by the cycle-accurate simulator, so the exported
// RTL can be validated in any standard Verilog simulator against the very
// model this repo verified — closing the loop back to the paper's FPGA
// flow without needing the original toolchain.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rtl/netlist.hpp"

namespace mont::rtl {

/// One stimulus step: input values applied before a clock edge, plus the
/// output values expected after it.
struct TestbenchVector {
  std::vector<std::pair<NetId, bool>> inputs;    // primary input, value
  std::vector<std::pair<NetId, bool>> expected;  // marked output net, value
};

/// Renders a Verilog-2001 testbench for `module_name` (as produced by
/// ExportVerilog for the same netlist).  Each vector drives the inputs,
/// waits one clock, and compares the listed outputs, incrementing an error
/// counter on mismatch; the bench finishes with a PASS/FAIL banner.
std::string ExportTestbench(const Netlist& netlist,
                            const std::string& module_name,
                            const std::vector<TestbenchVector>& vectors);

/// Convenience: runs the netlist on the built-in simulator for
/// `cycles_per_vector` cycles per stimulus and records all marked outputs
/// as the expectation, returning ready-to-emit vectors.
std::vector<TestbenchVector> RecordVectors(
    const Netlist& netlist,
    const std::vector<std::vector<std::pair<NetId, bool>>>& stimulus,
    std::size_t cycles_per_vector = 1);

/// One independent stimulus run: the same shape RecordVectors consumes.
using StimulusSequence = std::vector<std::vector<std::pair<NetId, bool>>>;

/// Batch path: records up to 64 independent stimulus sequences in one
/// word-packed simulation (sequence k on lane k of a BatchSimulator), each
/// lane starting from reset state — element k of the result equals
/// RecordVectors(netlist, sequences[k], cycles_per_vector), at a fraction
/// of the cost.  Sequences may differ in length and in which inputs they
/// drive; shorter lanes simply hold their inputs once exhausted.  Throws
/// std::invalid_argument for more than 64 sequences.
std::vector<std::vector<TestbenchVector>> RecordVectorsBatch(
    const Netlist& netlist, const std::vector<StimulusSequence>& sequences,
    std::size_t cycles_per_vector = 1);

}  // namespace mont::rtl
