// verilog.hpp — structural Verilog export of a Netlist.
//
// Emits a synthesizable single-clock Verilog-2001 module so the generated
// MMMC can be inspected with standard EDA tooling or re-synthesized on a
// real FPGA, closing the loop with the paper's original flow.
#pragma once

#include <string>

#include "rtl/netlist.hpp"

namespace mont::rtl {

/// Renders the netlist as a Verilog module named `module_name`.
/// Primary inputs become input ports, marked outputs become output ports,
/// and an implicit `clk` port drives all flip-flops.
std::string ExportVerilog(const Netlist& netlist,
                          const std::string& module_name);

}  // namespace mont::rtl
