#include "rtl/simulator.hpp"

namespace mont::rtl {

Simulator::Simulator(const Netlist& netlist)
    : compiled_(netlist), batch_(compiled_) {}

}  // namespace mont::rtl
