#include "rtl/simulator.hpp"

namespace mont::rtl {

Simulator::Simulator(const Netlist& netlist) : netlist_(netlist) {
  values_.assign(netlist_.NodeCount(), 0);
  for (NetId id = 0; id < netlist_.NodeCount(); ++id) {
    const Node& node = netlist_.NodeAt(id);
    if (node.op == Op::kDff) dffs_.push_back(id);
    if (node.op == Op::kConst1) values_[id] = 1;
  }
  next_state_.assign(dffs_.size(), 0);
  Settle();
}

void Simulator::SetInput(NetId input, bool value) {
  if (netlist_.NodeAt(input).op != Op::kInput) {
    throw std::logic_error("Simulator::SetInput: net is not a primary input");
  }
  values_[input] = value ? 1 : 0;
}

std::uint8_t Simulator::Faulted(NetId id, std::uint8_t value) const {
  const auto it = faults_.find(id);
  if (it == faults_.end()) return value;
  switch (it->second) {
    case FaultType::kStuckAt0: return 0;
    case FaultType::kStuckAt1: return 1;
    case FaultType::kInvert: return value ^ 1u;
  }
  return value;
}

void Simulator::InjectFault(NetId net, FaultType type) {
  if (net >= netlist_.NodeCount()) {
    throw std::out_of_range("Simulator::InjectFault: unknown net");
  }
  faults_[net] = type;
  // Re-apply to already-settled source values.
  Settle();
}

void Simulator::ClearFaults() { faults_.clear(); }

void Simulator::Settle() {
  if (!faults_.empty()) {
    // Faults on sources (inputs, constants, flip-flop outputs) override
    // their stored values before propagation.
    for (const auto& [net, type] : faults_) {
      if (!IsCombinational(netlist_.NodeAt(net).op)) {
        values_[net] = Faulted(net, values_[net]);
      }
    }
  }
  for (const NetId id : netlist_.TopoOrder()) {
    const Node& node = netlist_.NodeAt(id);
    const std::uint8_t a = node.a != kNoNet ? values_[node.a] : 0;
    const std::uint8_t b = node.b != kNoNet ? values_[node.b] : 0;
    std::uint8_t out = 0;
    switch (node.op) {
      case Op::kBuf: out = a; break;
      case Op::kNot: out = a ^ 1u; break;
      case Op::kAnd: out = a & b; break;
      case Op::kOr: out = a | b; break;
      case Op::kXor: out = a ^ b; break;
      case Op::kNand: out = (a & b) ^ 1u; break;
      case Op::kNor: out = (a | b) ^ 1u; break;
      case Op::kXnor: out = (a ^ b) ^ 1u; break;
      case Op::kMux: out = a ? values_[node.c] : b; break;
      default: continue;  // unreachable for TopoOrder contents
    }
    values_[id] = faults_.empty() ? out : Faulted(id, out);
  }
}

void Simulator::Tick() {
  Settle();
  // Phase 1: every DFF samples from the settled pre-edge values.
  for (std::size_t i = 0; i < dffs_.size(); ++i) {
    const Node& node = netlist_.NodeAt(dffs_[i]);
    const std::uint8_t q = values_[dffs_[i]];
    std::uint8_t next = q;
    const bool enabled = node.b == kNoNet || values_[node.b] != 0;
    if (enabled && node.a != kNoNet) next = values_[node.a];
    if (node.c != kNoNet && values_[node.c] != 0) next = 0;  // sync reset
    next_state_[i] = next;
  }
  // Phase 2: commit simultaneously, then settle the new cycle.
  for (std::size_t i = 0; i < dffs_.size(); ++i) {
    values_[dffs_[i]] = next_state_[i];
  }
  Settle();
  ++cycles_;
}

void Simulator::Run(std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) Tick();
}

void Simulator::Reset() {
  for (const NetId dff : dffs_) values_[dff] = 0;
  cycles_ = 0;
  Settle();
}

std::uint64_t Simulator::PeekBus(const std::vector<NetId>& nets) const {
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < nets.size() && i < 64; ++i) {
    if (Peek(nets[i])) out |= 1ull << i;
  }
  return out;
}

}  // namespace mont::rtl
