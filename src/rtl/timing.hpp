// timing.hpp — static timing analysis over a gate-level netlist.
//
// The paper's key timing claim is that the systolic array's critical path is
// one regular cell — 2·T_FA(cin→cout) + T_HA(cin→cout) — independent of the
// operand length l.  This analyzer computes the longest register-to-register
// combinational path (in picoseconds under a configurable per-gate delay
// model, or in gate levels under the unit model) so that claim can be checked
// mechanically on the generated netlists.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rtl/netlist.hpp"

namespace mont::rtl {

/// Per-gate propagation delays in picoseconds.  Defaults approximate a
/// late-1990s FPGA logic fabric (pre-mapping; the fpga module applies its
/// own LUT-level model after technology mapping).
struct DelayModel {
  double buf_ps = 50;
  double not_ps = 50;
  double and_ps = 120;
  double or_ps = 120;
  double xor_ps = 180;
  double mux_ps = 150;

  double DelayOf(Op op) const;

  /// Unit-delay model: every combinational gate costs 1 (depth in levels).
  static DelayModel Unit();
};

/// Result of a longest-path query.
struct TimingReport {
  double critical_path_ps = 0;   ///< launch-to-capture combinational delay
  std::size_t logic_levels = 0;  ///< gate count along the critical path
  std::vector<NetId> path;       ///< source ... sink nets along the path
  std::string Describe(const Netlist& netlist) const;
};

/// Static timing analyzer.  Launch points: primary inputs and DFF outputs.
/// Capture points: DFF data/enable/reset inputs and marked outputs.
class TimingAnalyzer {
 public:
  explicit TimingAnalyzer(const Netlist& netlist,
                          DelayModel model = DelayModel{});

  /// Longest combinational path in the whole netlist.
  TimingReport CriticalPath() const;

  /// Arrival time (ps) of one net relative to launch points.
  double ArrivalOf(NetId net) const;

 private:
  const Netlist& netlist_;
  DelayModel model_;
  std::vector<double> arrival_;
  std::vector<std::size_t> levels_;
  std::vector<NetId> pred_;  // predecessor on the longest path
};

}  // namespace mont::rtl
