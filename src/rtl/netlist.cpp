#include "rtl/netlist.hpp"

#include <algorithm>

namespace mont::rtl {

const char* OpName(Op op) {
  switch (op) {
    case Op::kInput: return "input";
    case Op::kConst0: return "const0";
    case Op::kConst1: return "const1";
    case Op::kBuf: return "buf";
    case Op::kNot: return "not";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kXor: return "xor";
    case Op::kNand: return "nand";
    case Op::kNor: return "nor";
    case Op::kXnor: return "xnor";
    case Op::kMux: return "mux";
    case Op::kDff: return "dff";
  }
  return "?";
}

bool IsCombinational(Op op) {
  switch (op) {
    case Op::kInput:
    case Op::kConst0:
    case Op::kConst1:
    case Op::kDff:
      return false;
    default:
      return true;
  }
}

NodeFanin FaninOf(const Node& node) {
  NodeFanin fanin;
  for (const NetId src : {node.a, node.b, node.c}) {
    if (src != kNoNet) fanin.nets[fanin.count++] = src;
  }
  return fanin;
}

bool IsBinaryGate(Op op) {
  switch (op) {
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kNand:
    case Op::kNor:
    case Op::kXnor:
      return true;
    default:
      return false;
  }
}

Netlist::Netlist() {
  const0_ = Emit(Op::kConst0);
  const1_ = Emit(Op::kConst1);
}

NetId Netlist::Emit(Op op, NetId a, NetId b, NetId c) {
  nodes_.push_back(Node{op, a, b, c});
  topo_valid_ = false;
  return static_cast<NetId>(nodes_.size() - 1);
}

void Netlist::CheckNet(NetId id) const {
  if (id >= nodes_.size()) {
    throw std::out_of_range("Netlist: reference to unknown net");
  }
}

NetId Netlist::AddInput(const std::string& name) {
  const NetId id = Emit(Op::kInput);
  inputs_.emplace_back(id, name);
  names_[id] = name;
  return id;
}

NetId Netlist::Not(NetId a) {
  CheckNet(a);
  return Emit(Op::kNot, a);
}

NetId Netlist::Buf(NetId a) {
  CheckNet(a);
  return Emit(Op::kBuf, a);
}

NetId Netlist::And(NetId a, NetId b) {
  CheckNet(a);
  CheckNet(b);
  return Emit(Op::kAnd, a, b);
}

NetId Netlist::Or(NetId a, NetId b) {
  CheckNet(a);
  CheckNet(b);
  return Emit(Op::kOr, a, b);
}

NetId Netlist::Xor(NetId a, NetId b) {
  CheckNet(a);
  CheckNet(b);
  return Emit(Op::kXor, a, b);
}

NetId Netlist::Nand(NetId a, NetId b) {
  CheckNet(a);
  CheckNet(b);
  return Emit(Op::kNand, a, b);
}

NetId Netlist::Nor(NetId a, NetId b) {
  CheckNet(a);
  CheckNet(b);
  return Emit(Op::kNor, a, b);
}

NetId Netlist::Xnor(NetId a, NetId b) {
  CheckNet(a);
  CheckNet(b);
  return Emit(Op::kXnor, a, b);
}

NetId Netlist::Mux(NetId sel, NetId if0, NetId if1) {
  CheckNet(sel);
  CheckNet(if0);
  CheckNet(if1);
  return Emit(Op::kMux, sel, if0, if1);
}

NetId Netlist::Dff(NetId d, NetId enable, NetId sync_reset) {
  if (d != kNoNet) CheckNet(d);
  if (enable != kNoNet) CheckNet(enable);
  if (sync_reset != kNoNet) CheckNet(sync_reset);
  return Emit(Op::kDff, d, enable, sync_reset);
}

void Netlist::RewireDff(NetId dff, NetId d, NetId enable, NetId sync_reset) {
  CheckNet(dff);
  if (nodes_[dff].op != Op::kDff) {
    throw std::logic_error("RewireDff: target is not a DFF");
  }
  CheckNet(d);
  if (enable != kNoNet) CheckNet(enable);
  if (sync_reset != kNoNet) CheckNet(sync_reset);
  nodes_[dff].a = d;
  nodes_[dff].b = enable;
  nodes_[dff].c = sync_reset;
  topo_valid_ = false;
}

void Netlist::RewireOperand(NetId node, int slot, NetId src) {
  CheckNet(node);
  Node& n = nodes_[node];
  if (n.op == Op::kInput || n.op == Op::kConst0 || n.op == Op::kConst1) {
    throw std::logic_error("RewireOperand: source nodes have no operands");
  }
  if (slot < 0 || slot > 2) {
    throw std::out_of_range("RewireOperand: slot must be 0, 1 or 2");
  }
  if (src != kNoNet) CheckNet(src);
  (slot == 0 ? n.a : slot == 1 ? n.b : n.c) = src;
  topo_valid_ = false;
}

void Netlist::MarkSecret(NetId net) {
  CheckNet(net);
  if (!IsSecret(net)) secret_nets_.push_back(net);
}

bool Netlist::IsSecret(NetId net) const {
  return std::find(secret_nets_.begin(), secret_nets_.end(), net) !=
         secret_nets_.end();
}

void Netlist::MarkRandom(NetId net, unsigned mask_group) {
  CheckNet(net);
  random_nets_.emplace_back(net, mask_group);
}

void Netlist::WaiveLint(NetId net, const std::string& reason) {
  CheckNet(net);
  lint_waivers_.emplace_back(net, reason);
}

void Netlist::MarkOutput(NetId net, const std::string& name) {
  CheckNet(net);
  outputs_.emplace_back(net, name);
  names_.emplace(net, name);
}

void Netlist::NameNet(NetId net, const std::string& name) {
  CheckNet(net);
  names_[net] = name;
}

void Netlist::MarkFastCarry(NetId net) {
  CheckNet(net);
  if (fast_carry_.size() < nodes_.size()) fast_carry_.resize(nodes_.size(), 0);
  fast_carry_[net] = 1;
}

bool Netlist::IsFastCarry(NetId net) const {
  return net < fast_carry_.size() && fast_carry_[net] != 0;
}

std::string Netlist::NetName(NetId id) const {
  const auto it = names_.find(id);
  if (it != names_.end()) return it->second;
  return IndexedName("n", id);
}

NetlistStats Netlist::Stats() const {
  NetlistStats stats;
  for (const Node& node : nodes_) {
    switch (node.op) {
      case Op::kInput: ++stats.inputs; break;
      case Op::kAnd:
      case Op::kNand: ++stats.and_gates; break;
      case Op::kOr:
      case Op::kNor: ++stats.or_gates; break;
      case Op::kXor:
      case Op::kXnor: ++stats.xor_gates; break;
      case Op::kNot: ++stats.not_gates; break;
      case Op::kMux: ++stats.mux_gates; break;
      case Op::kDff: ++stats.flip_flops; break;
      default: break;
    }
  }
  return stats;
}

std::vector<std::vector<NetId>> Netlist::BuildFanout() const {
  std::vector<std::vector<NetId>> fanout(nodes_.size());
  for (NetId id = 0; id < nodes_.size(); ++id) {
    for (const NetId src : FaninOf(nodes_[id])) {
      if (src < nodes_.size()) fanout[src].push_back(id);
    }
  }
  return fanout;
}

const std::vector<NetId>& Netlist::TopoOrder() const {
  if (topo_valid_) return topo_cache_;
  topo_cache_.clear();
  topo_cache_.reserve(nodes_.size());
  // Kahn's algorithm restricted to combinational nodes; DFF outputs,
  // inputs and constants are sources whose values are known before
  // combinational settling.
  std::vector<std::uint8_t> pending(nodes_.size(), 0);
  std::vector<std::vector<NetId>> fanout(nodes_.size());
  std::vector<NetId> ready;
  for (NetId id = 0; id < nodes_.size(); ++id) {
    const Node& node = nodes_[id];
    if (!IsCombinational(node.op)) continue;
    int deps = 0;
    for (const NetId src : {node.a, node.b, node.c}) {
      if (src == kNoNet) continue;
      if (IsCombinational(nodes_[src].op)) {
        fanout[src].push_back(id);
        ++deps;
      }
    }
    pending[id] = static_cast<std::uint8_t>(deps);
    if (deps == 0) ready.push_back(id);
  }
  while (!ready.empty()) {
    const NetId id = ready.back();
    ready.pop_back();
    topo_cache_.push_back(id);
    for (const NetId next : fanout[id]) {
      if (--pending[next] == 0) ready.push_back(next);
    }
  }
  std::size_t comb_total = 0;
  for (const Node& node : nodes_) {
    if (IsCombinational(node.op)) ++comb_total;
  }
  if (topo_cache_.size() != comb_total) {
    throw std::logic_error("Netlist: combinational cycle detected");
  }
  topo_valid_ = true;
  return topo_cache_;
}

}  // namespace mont::rtl
