#include "rtl/components.hpp"

#include <stdexcept>

namespace mont::rtl {

AdderBit HalfAdder(Netlist& nl, NetId a, NetId b) {
  return AdderBit{nl.Xor(a, b), nl.And(a, b)};
}

AdderBit FullAdder(Netlist& nl, NetId a, NetId b, NetId cin) {
  const AdderBit first = HalfAdder(nl, a, b);
  const AdderBit second = HalfAdder(nl, first.sum, cin);
  return AdderBit{second.sum, nl.Or(first.carry, second.carry)};
}

Bus RippleCarryAdder(Netlist& nl, const Bus& a, const Bus& b, NetId cin) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("RippleCarryAdder: width mismatch");
  }
  Bus out;
  out.reserve(a.size() + 1);
  NetId carry = cin == kNoNet ? nl.Const0() : cin;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const AdderBit bit = FullAdder(nl, a[i], b[i], carry);
    nl.MarkFastCarry(bit.sum);
    nl.MarkFastCarry(bit.carry);
    out.push_back(bit.sum);
    carry = bit.carry;
  }
  out.push_back(carry);
  return out;
}

Bus ConstantBus(Netlist& nl, std::uint64_t value, std::size_t width) {
  Bus out(width);
  for (std::size_t i = 0; i < width; ++i) {
    out[i] = ((value >> i) & 1u) ? nl.Const1() : nl.Const0();
  }
  return out;
}

Bus InputBus(Netlist& nl, const std::string& name, std::size_t width) {
  Bus out(width);
  for (std::size_t i = 0; i < width; ++i) {
    out[i] = nl.AddInput(name + "[" + std::to_string(i) + "]");
  }
  return out;
}

Bus LoadRegister(Netlist& nl, const Bus& d, NetId load) {
  Bus q(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) q[i] = nl.Dff(d[i], load);
  return q;
}

Bus LoadUpdateRegister(Netlist& nl, const Bus& d, NetId load, const Bus& next,
                       NetId update) {
  if (d.size() != next.size()) {
    throw std::invalid_argument("LoadUpdateRegister: width mismatch");
  }
  Bus q(d.size());
  const NetId enable = nl.Or(load, update);
  for (std::size_t i = 0; i < d.size(); ++i) {
    // Data mux: load wins over update.
    q[i] = nl.Dff(nl.Mux(load, next[i], d[i]), enable);
  }
  return q;
}

Bus ShiftRightRegister(Netlist& nl, const Bus& d, NetId load, NetId shift,
                       NetId fill_msb) {
  Bus q(d.size());
  // Create the DFFs first so bit i's input cone can reference bit i+1's q.
  for (std::size_t i = 0; i < d.size(); ++i) q[i] = nl.Dff(nl.Const0());
  const NetId enable = nl.Or(load, shift);
  for (std::size_t i = 0; i < d.size(); ++i) {
    const NetId shifted_in = (i + 1 < d.size()) ? q[i + 1] : fill_msb;
    nl.RewireDff(q[i], nl.Mux(load, shifted_in, d[i]), enable);
  }
  return q;
}

Bus ShiftLeftRegister(Netlist& nl, const Bus& d, NetId load, NetId shift,
                      NetId fill_lsb) {
  Bus q(d.size());
  // Create the DFFs first so bit i's input cone can reference bit i-1's q.
  for (std::size_t i = 0; i < d.size(); ++i) q[i] = nl.Dff(nl.Const0());
  const NetId enable = nl.Or(load, shift);
  for (std::size_t i = 0; i < d.size(); ++i) {
    const NetId shifted_in = (i > 0) ? q[i - 1] : fill_lsb;
    nl.RewireDff(q[i], nl.Mux(load, shifted_in, d[i]), enable);
  }
  return q;
}

Bus Counter(Netlist& nl, std::size_t width, NetId increment, NetId reset) {
  Bus q(width);
  for (std::size_t i = 0; i < width; ++i) q[i] = nl.Dff(nl.Const0());
  // q + 1 via a half-adder chain on the current state; the chain is flagged
  // as dedicated fast-carry logic (MUXCY/XORCY on the modelled FPGA).
  NetId carry = nl.Const1();
  for (std::size_t i = 0; i < width; ++i) {
    const AdderBit bit = HalfAdder(nl, q[i], carry);
    nl.MarkFastCarry(bit.sum);
    nl.MarkFastCarry(bit.carry);
    nl.RewireDff(q[i], bit.sum, increment, reset);
    carry = bit.carry;
  }
  // The MSB's carry-out (overflow) is deliberately unconnected: counters
  // are sized so the count wraps are unreachable, and the carry chain is
  // emitted uniformly so every stage maps to the same MUXCY/XORCY pair.
  nl.WaiveLint(carry, "counter overflow carry, intentionally unconnected");
  return q;
}

NetId EqualsConstant(Netlist& nl, const Bus& bus, std::uint64_t value) {
  Bus matched(bus.size());
  for (std::size_t i = 0; i < bus.size(); ++i) {
    matched[i] = ((value >> i) & 1u) ? nl.Buf(bus[i]) : nl.Not(bus[i]);
  }
  return ReduceAnd(nl, matched);
}

namespace {

NetId ReduceTree(Netlist& nl, const Bus& bus, bool is_and) {
  if (bus.empty()) return is_and ? nl.Const1() : nl.Const0();
  Bus level = bus;
  while (level.size() > 1) {
    Bus next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(is_and ? nl.And(level[i], level[i + 1])
                            : nl.Or(level[i], level[i + 1]));
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
  }
  return level[0];
}

}  // namespace

NetId ReduceAnd(Netlist& nl, const Bus& bus) { return ReduceTree(nl, bus, true); }

NetId ReduceOr(Netlist& nl, const Bus& bus) { return ReduceTree(nl, bus, false); }

Bus MuxBus(Netlist& nl, NetId sel, const Bus& if0, const Bus& if1) {
  if (if0.size() != if1.size()) {
    throw std::invalid_argument("MuxBus: width mismatch");
  }
  Bus out(if0.size());
  for (std::size_t i = 0; i < if0.size(); ++i) {
    out[i] = nl.Mux(sel, if0[i], if1[i]);
  }
  return out;
}

}  // namespace mont::rtl
