// fault.hpp — gate-level fault injection campaigns.
//
// Stuck-at fault simulation is the standard way to grade a hardware test
// bench: a verification flow that cannot distinguish a faulty circuit from
// a healthy one is not testing anything.  The Simulator supports per-net
// fault overrides (stuck-at-0 / stuck-at-1 / inversion) applied during
// evaluation so faults propagate; this header adds the campaign helper
// that injects a population of faults one at a time and reports how many
// a given workload detects — used to grade the MMMC's self-checking
// multiply in the tests and the fault-coverage bench.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "rtl/batch_sim.hpp"
#include "rtl/netlist.hpp"
#include "rtl/simulator.hpp"

namespace mont::rtl {

const char* FaultTypeName(FaultType type);

/// One injected fault and whether the workload caught it.
struct FaultResult {
  NetId net = kNoNet;
  FaultType type = FaultType::kStuckAt0;
  bool detected = false;
};

/// Aggregate of a campaign.
struct FaultCoverage {
  std::size_t injected = 0;
  std::size_t detected = 0;
  std::vector<FaultResult> results;
  double Rate() const {
    return injected == 0 ? 0.0
                         : static_cast<double>(detected) /
                               static_cast<double>(injected);
  }
};

/// Runs `workload` once per fault in `targets` x `types`.  The workload
/// receives a simulator with exactly one active fault and returns true if
/// it detected misbehaviour (wrong result, wrong latency, ...).  The
/// simulator is Reset() between faults.
FaultCoverage RunFaultCampaign(
    const Netlist& netlist, const std::vector<NetId>& targets,
    const std::vector<FaultType>& types,
    const std::function<bool(Simulator&)>& workload);

/// Lane-parallel campaign over the 64-lane bit-parallel engine: the
/// `targets` x `types` fault population is packed 64 faults per simulation
/// pass, fault k of a pack injected on lane k only.  The workload drives
/// identical stimulus into every lane (BatchSimulator::SetInputAll /
/// testutil SetBus helpers do this) and returns the set of lanes whose
/// behaviour diverged from expectation — bit k set means fault k of the
/// pack was detected.  The simulator is ClearFaults() + Reset() between
/// packs.  Results are reported in the same (net-major, type-minor) order
/// as RunFaultCampaign, so a sequential and a batch campaign over the same
/// population and equivalent workloads produce identical FaultCoverage —
/// the batch one ~64x faster.
FaultCoverage RunFaultCampaignBatch(
    const Netlist& netlist, const std::vector<NetId>& targets,
    const std::vector<FaultType>& types,
    const std::function<std::uint64_t(BatchSimulator&)>& workload);

}  // namespace mont::rtl
