// fault.hpp — gate-level fault injection campaigns.
//
// Stuck-at fault simulation is the standard way to grade a hardware test
// bench: a verification flow that cannot distinguish a faulty circuit from
// a healthy one is not testing anything.  The Simulator supports per-net
// fault overrides (stuck-at-0 / stuck-at-1 / inversion) applied during
// evaluation so faults propagate; this header adds the campaign helper
// that injects a population of faults one at a time and reports how many
// a given workload detects — used to grade the MMMC's self-checking
// multiply in the tests and the fault-coverage bench.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "rtl/netlist.hpp"
#include "rtl/simulator.hpp"

namespace mont::rtl {

const char* FaultTypeName(FaultType type);

/// One injected fault and whether the workload caught it.
struct FaultResult {
  NetId net = kNoNet;
  FaultType type = FaultType::kStuckAt0;
  bool detected = false;
};

/// Aggregate of a campaign.
struct FaultCoverage {
  std::size_t injected = 0;
  std::size_t detected = 0;
  std::vector<FaultResult> results;
  double Rate() const {
    return injected == 0 ? 0.0
                         : static_cast<double>(detected) /
                               static_cast<double>(injected);
  }
};

/// Runs `workload` once per fault in `targets` x `types`.  The workload
/// receives a simulator with exactly one active fault and returns true if
/// it detected misbehaviour (wrong result, wrong latency, ...).  The
/// simulator is Reset() between faults.
FaultCoverage RunFaultCampaign(
    const Netlist& netlist, const std::vector<NetId>& targets,
    const std::vector<FaultType>& types,
    const std::function<bool(Simulator&)>& workload);

}  // namespace mont::rtl
