// batch_sim.hpp — 64-lane bit-parallel simulation over a CompiledNetlist.
//
// One std::uint64_t word is stored per net; bit k of every word belongs to
// lane k, so 64 independent stimuli (or 64 independently faulted copies of
// the circuit) evaluate in a single pass of plain bitwise ops — a 2-input
// gate costs one machine instruction for all 64 lanes, and a mux is
// (sel & if1) | (~sel & if0).  Lanes never interact: lane k of every net
// evolves exactly as a scalar Simulator driven with lane k's inputs and
// lane k's faults.
//
// The engine also tracks whether any evaluation source (primary input,
// flip-flop output, fault override) changed since the last Settle() and
// skips provably no-op settle passes — in steady state a Tick() costs one
// pass over the combinational stream, not the two the seed engine paid.
//
// Fault semantics are per-lane and idempotent: a fault is an override mask
// (stuck-at-0 / stuck-at-1 / invert) applied to a net's value, while the
// underlying un-faulted ("raw") value of source nets is retained — so
// clearing a fault restores the true value, and repeated Settle() calls
// are stable even under invert faults.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <map>
#include <span>
#include <vector>

#include "bignum/biguint.hpp"
#include "rtl/compiled.hpp"
#include "rtl/netlist.hpp"

namespace mont::rtl {

/// Fault models shared with the scalar Simulator (see fault.hpp for
/// campaigns).
enum class FaultType : std::uint8_t { kStuckAt0, kStuckAt1, kInvert };

class BatchSimulator {
 public:
  static constexpr std::size_t kLanes = 64;
  static constexpr std::uint64_t kAllLanes = ~std::uint64_t{0};

  /// Runs over an externally owned compiled netlist (which must outlive
  /// the simulator).  Compiling once and sharing is the cheap way to run
  /// many simulator instances of the same circuit.
  explicit BatchSimulator(const CompiledNetlist& compiled);
  /// Convenience: compiles `netlist` internally and owns the result.
  explicit BatchSimulator(const Netlist& netlist);

  // -- stimulus ---------------------------------------------------------------

  /// Drives all 64 lanes of a primary input at once (bit k = lane k).
  void SetInput(NetId input, std::uint64_t lanes_value);
  /// Drives one lane of a primary input, leaving the others untouched.
  void SetInputLane(NetId input, std::size_t lane, bool value);
  /// Drives the same value into every lane.
  void SetInputAll(NetId input, bool value) {
    SetInput(input, value ? kAllLanes : 0);
  }

  // -- evaluation -------------------------------------------------------------

  /// Propagates combinational logic from current inputs and register
  /// state.  A no-op when nothing changed since the last settle.
  void Settle();
  /// One positive clock edge on every lane: settle, latch all flip-flops
  /// simultaneously, re-settle (skipped when no register changed).
  void Tick();
  void Run(std::size_t n);
  /// Resets all flip-flops to 0 (all lanes) and re-settles.
  void Reset();
  std::uint64_t CycleCount() const { return cycles_; }

  // -- observation ------------------------------------------------------------

  /// All 64 lanes of a net after the last Settle()/Tick().
  std::uint64_t Peek(NetId net) const { return words_[net]; }
  bool PeekLane(NetId net, std::size_t lane) const {
    CheckLane(lane);
    return ((words_[net] >> lane) & 1u) != 0;
  }
  /// Reads one lane of a bus (LSB first) as an integer.  Throws
  /// std::invalid_argument for buses wider than 64 nets — use PeekWide.
  std::uint64_t PeekBus(const std::vector<NetId>& nets,
                        std::size_t lane) const;
  /// Reads one lane of an arbitrarily wide bus (LSB first).
  bignum::BigUInt PeekWide(const std::vector<NetId>& nets,
                           std::size_t lane) const;

  // -- toggle accounting (power-trace capture hook) ---------------------------
  //
  // The side-channel lab's power model is CMOS switching activity: one
  // sample per clock cycle counting the nets whose value changed on that
  // edge, independently for each of the 64 lanes.  The accumulation is
  // bit-sliced (vertical counters): adding one net's 64-lane XOR word
  // costs O(carry depth) word ops instead of 64 popcounts, so capture
  // stays a small constant factor on top of plain simulation.

  /// Enables per-cycle toggle accounting over `nets` (empty = every net of
  /// the circuit).  The snapshot taken here is the baseline the next
  /// Tick()'s counts are measured against.  Throws std::out_of_range for
  /// an unknown net.
  void EnableToggleCapture(std::span<const NetId> nets = {});
  void DisableToggleCapture();
  bool ToggleCaptureEnabled() const { return toggle_capture_; }
  /// Per-lane count of tracked nets that changed across the most recent
  /// Tick() (all zeros before the first Tick() after enabling).
  const std::array<std::uint32_t, kLanes>& ToggleCounts() const {
    return toggle_counts_;
  }

  // -- fault injection --------------------------------------------------------

  /// One fault of a bulk injection: `type` forced onto `net` on the lanes
  /// selected by `lanes` (bit k = lane k).
  struct LaneFault {
    NetId net = kNoNet;
    FaultType type = FaultType::kStuckAt0;
    std::uint64_t lanes = kAllLanes;
  };

  /// Forces `net` faulty on the lanes selected by `lanes` (bit k = lane k;
  /// default all).  Per lane, the last injected fault on a net wins.  The
  /// override is applied during every evaluation so the fault propagates
  /// through downstream logic and state.  Re-settles immediately.
  void InjectFault(NetId net, FaultType type, std::uint64_t lanes = kAllLanes);
  /// Injects a whole fault population in one shot — one table rebuild and
  /// one settle instead of one per fault; this is what keeps per-pack
  /// setup cost flat in lane-parallel campaigns.
  void InjectFaults(const std::vector<LaneFault>& faults);
  /// Removes every fault and restores the un-faulted source values.
  void ClearFaults();
  /// Number of nets with at least one faulted lane.
  std::size_t ActiveFaults() const { return faults_.size(); }

 private:
  /// Per-net, per-lane override masks; the three masks are disjoint.
  struct FaultMasks {
    std::uint64_t stuck0 = 0;
    std::uint64_t stuck1 = 0;
    std::uint64_t invert = 0;
    bool Empty() const { return (stuck0 | stuck1 | invert) == 0; }
  };
  /// A faulted source net plus its retained un-faulted value.
  struct SourceFault {
    NetId net = kNoNet;
    FaultMasks masks;
    std::uint64_t raw = 0;
  };

  static std::uint64_t ApplyMasks(const FaultMasks& m, std::uint64_t v) {
    return (((v ^ m.invert) | m.stuck1) & ~m.stuck0);
  }
  static void CheckLane(std::size_t lane);
  void Init();
  /// Folds this Tick's net changes into toggle_counts_ (capture enabled).
  void AccumulateToggles();
  /// Un-faulted value of a source net (== words_[net] when not faulted).
  std::uint64_t RawOf(NetId net) const;
  /// Re-derives the evaluation-phase fault tables from faults_.
  void RebuildFaultTables();
  template <bool kHasCombFaults>
  void SettleStream();

  std::unique_ptr<const CompiledNetlist> owned_;
  const CompiledNetlist& compiled_;
  std::vector<std::uint64_t> words_;
  std::vector<std::uint64_t> next_state_;
  std::uint64_t cycles_ = 0;
  bool dirty_ = true;

  /// Toggle accounting: tracked nets, their previous post-Tick values, and
  /// the per-lane counts of the most recent Tick.
  bool toggle_capture_ = false;
  std::vector<NetId> toggle_nets_;
  std::vector<std::uint64_t> toggle_prev_;
  std::array<std::uint32_t, kLanes> toggle_counts_{};

  /// Authoritative sparse fault store (ordered => deterministic tables).
  std::map<NetId, FaultMasks> faults_;
  /// Derived: faults on combinational nets, sorted by instruction index so
  /// the settle loop applies them with a single forward cursor.
  std::vector<std::pair<std::uint32_t, FaultMasks>> comb_faults_;
  /// Derived: faults on source nets (inputs, constants, DFF outputs).
  std::vector<SourceFault> source_faults_;
  /// Derived: (index into Dffs(), index into source_faults_) for faulted
  /// flip-flops, applied at latch commit.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> dff_fault_hooks_;
};

}  // namespace mont::rtl
