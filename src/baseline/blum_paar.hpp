// blum_paar.hpp — comparison models for the designs the paper benchmarks
// against (§2, §4.4):
//
//  * Blum & Paar's radix-2 systolic Montgomery multiplier [3], which uses
//    the non-optimal bound R = 2^(l+3) (one extra iteration per MMM) and
//    processing elements containing 3-bit control registers driving four
//    multiplexers — a longer critical path, hence a lower clock frequency.
//
//  * Blum & Paar's high-radix variant [4] (radix 2^u), for the radix
//    ablation bench.
//
//  * The classical Algorithm-1 datapath with a final subtraction, to
//    quantify what Walter's bound saves.
//
// Each model provides (a) a functionally correct software implementation
// (so the comparison benches verify every baseline actually computes
// modular products) and (b) cycle/clock models derived from the same device
// model used for our design — the PE-with-control-muxes netlist is built
// for real and timed with the same AnalyzeNetlist pipeline.
#pragma once

#include <cstdint>
#include <memory>

#include "bignum/biguint.hpp"
#include "core/engine.hpp"
#include "fpga/device_model.hpp"
#include "rtl/netlist.hpp"

namespace mont::baseline {

/// Blum-Paar radix-2 systolic Montgomery multiplier model.  The
/// functional arithmetic is the registry's "blum-paar" backend
/// (core/engine.hpp) — this class adds the PE netlist and clock-period
/// side of the comparison.
class BlumPaarRadix2 {
 public:
  /// Requires an odd modulus > 1.
  explicit BlumPaarRadix2(bignum::BigUInt modulus);

  std::size_t l() const { return l_; }
  /// Their Montgomery parameter: R = 2^(l+3), one iteration more than the
  /// optimal bound.
  bignum::BigUInt R() const { return bignum::BigUInt::PowerOfTwo(l_ + 3); }
  std::size_t Iterations() const { return l_ + 3; }

  /// Functional model: x*y*2^-(l+3) mod N, inputs/outputs bounded by 2N
  /// (their R also satisfies R > 4N, so chaining works).
  bignum::BigUInt Multiply(const bignum::BigUInt& x,
                           const bignum::BigUInt& y) const;

  /// Modular exponentiation with their pre/post flow (R^2 mod N uses their
  /// wider R).
  bignum::BigUInt ModExp(const bignum::BigUInt& base,
                         const bignum::BigUInt& exponent,
                         std::uint64_t* mmm_count = nullptr) const;

  /// Cycle count for one multiplication on their pipeline: the extra
  /// iteration adds two clock cycles to the 3l+4 schedule.
  static std::uint64_t MultiplyCycles(std::size_t l) { return 3 * l + 6; }

  /// Builds one Blum-Paar-style processing element: our regular cell
  /// followed by the four control multiplexers their PEs contain, plus the
  /// 3-bit command register.  Timed with the shared device model to obtain
  /// their achievable clock period.
  static rtl::Netlist BuildProcessingElement();

  /// Clock period of the PE on the given device (cached per call).
  static double ClockPeriodNs(
      const fpga::DeviceParameters& device = fpga::DeviceParameters::VirtexE8());

 private:
  std::unique_ptr<core::MmmEngine> engine_;
  std::size_t l_ = 0;
};

/// Blum-Paar high-radix model [4]: radix 2^u processing elements.
struct HighRadixModel {
  std::size_t radix_bits;  // u

  /// Words per operand for length l.
  std::size_t Words(std::size_t l) const {
    return (l + radix_bits - 1) / radix_bits + 1;
  }
  /// Cycle count per multiplication: the pipeline processes one u-bit word
  /// per cycle with the same 2-phase skew, over ceil((l+2)/u)+1 iterations.
  std::uint64_t MultiplyCycles(std::size_t l) const;
  /// Clock period: partial-product width grows with u, adding roughly one
  /// LUT level per doubling beyond radix 2.
  double ClockPeriodNs(const fpga::DeviceParameters& device =
                           fpga::DeviceParameters::VirtexE8()) const;
};

/// Algorithm-1 baseline: identical array, but every multiplication is
/// followed by a compare-and-subtract pass over l+1 bits.
struct FinalSubtractionModel {
  static std::uint64_t MultiplyCycles(std::size_t l) {
    return (3 * l + 4) + (l + 1);
  }
};

}  // namespace mont::baseline
