#include "baseline/blum_paar.hpp"

#include <cmath>
#include <stdexcept>

#include "core/cells.hpp"
#include "rtl/components.hpp"

namespace mont::baseline {

using bignum::BigUInt;

BlumPaarRadix2::BlumPaarRadix2(BigUInt modulus)
    : engine_(core::MakeEngine("blum-paar", std::move(modulus))),
      l_(engine_->l()) {}

BigUInt BlumPaarRadix2::Multiply(const BigUInt& x, const BigUInt& y) const {
  return engine_->Multiply(x, y);
}

BigUInt BlumPaarRadix2::ModExp(const BigUInt& base, const BigUInt& exponent,
                               std::uint64_t* mmm_count) const {
  core::EngineStats stats;
  BigUInt out = engine_->ModExp(base, exponent, &stats);
  if (mmm_count != nullptr) *mmm_count = stats.mmm_invocations;
  return out;
}

rtl::Netlist BlumPaarRadix2::BuildProcessingElement() {
  rtl::Netlist nl;
  // The datapath of one regular cell...
  const rtl::NetId t_in = nl.AddInput("t_in");
  const rtl::NetId x_in = nl.AddInput("x_in");
  const rtl::NetId y = nl.AddInput("y");
  const rtl::NetId m_in = nl.AddInput("m_in");
  const rtl::NetId n = nl.AddInput("n");
  const rtl::NetId c0_in = nl.AddInput("c0_in");
  const rtl::NetId c1_in = nl.AddInput("c1_in");
  const core::InnerCellOut cell =
      core::BuildRegularCell(nl, t_in, x_in, y, m_in, n, c0_in, c1_in);

  // ...plus the Blum-Paar PE control structure: a 3-bit command register
  // decoded into four output multiplexers that steer the result/operand
  // buses (their cells handle load/shift/multiply/output phases locally
  // instead of using a global controller).
  const rtl::NetId cmd_in0 = nl.AddInput("cmd0");
  const rtl::NetId cmd_in1 = nl.AddInput("cmd1");
  const rtl::NetId cmd_in2 = nl.AddInput("cmd2");
  const rtl::NetId cmd0 = nl.Dff(cmd_in0);
  const rtl::NetId cmd1 = nl.Dff(cmd_in1);
  const rtl::NetId cmd2 = nl.Dff(cmd_in2);
  const rtl::NetId alt0 = nl.AddInput("alt0");
  const rtl::NetId alt1 = nl.AddInput("alt1");
  // Four muxes in series-parallel on the result path: two select the data
  // source, two steer it to the t / carry registers.
  const rtl::NetId sel_a = nl.Mux(cmd0, cell.t, alt0);
  const rtl::NetId sel_b = nl.Mux(cmd1, cell.c0, alt1);
  const rtl::NetId steer_t = nl.Mux(cmd2, sel_a, sel_b);
  const rtl::NetId steer_c = nl.Mux(cmd0, sel_b, sel_a);
  nl.Dff(steer_t);
  nl.Dff(steer_c);
  nl.Dff(cell.c1);
  nl.MarkOutput(steer_t, "t_out");
  nl.MarkOutput(steer_c, "c0_out");
  (void)cmd1;
  return nl;
}

double BlumPaarRadix2::ClockPeriodNs(const fpga::DeviceParameters& device) {
  const rtl::Netlist pe = BuildProcessingElement();
  return fpga::AnalyzeNetlist(pe, device).clock_period_ns;
}

std::uint64_t HighRadixModel::MultiplyCycles(std::size_t l) const {
  const std::size_t words = (l + 2 + radix_bits - 1) / radix_bits + 1;
  // Same systolic skew as radix 2, but over words instead of bits.
  return 2 * words + (l + radix_bits - 1) / radix_bits + 4;
}

double HighRadixModel::ClockPeriodNs(
    const fpga::DeviceParameters& device) const {
  // Radix-2^u partial products add roughly log2(u) LUT levels plus wider
  // carry propagation inside the PE.
  const double extra_levels = std::log2(static_cast<double>(radix_bits));
  const double per_level = device.lut_delay_ns + device.net_base_ns;
  rtl::Netlist pe = BlumPaarRadix2::BuildProcessingElement();
  return fpga::AnalyzeNetlist(pe, device).clock_period_ns +
         extra_levels * per_level;
}

}  // namespace mont::baseline
