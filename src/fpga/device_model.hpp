// device_model.hpp — Virtex-E slice-packing and timing model.
//
// This is the substitution for the paper's synthesis + place-and-route flow
// on the Xilinx V812E-BG-560-8.  Given a mapped netlist it produces the two
// quantities Table 2 reports: occupied slices and the achievable clock
// period.  The numbers are calibrated to the -8 speed grade (CLB timing
// from the Virtex-E data sheet era) and reproduce the *shape* of the
// paper's results: slices linear in l, clock period flat in l.
//
// Timing model:  Tclk = Tcq + sum over the critical path of
// (Tlut + Tnet(fanout)) + Tsu, where Tnet grows logarithmically with the
// fanout of the driving net (wire-load model).  The systolic datapath has
// constant LUT depth, so the only l-dependence comes from the high-fanout
// control enables — matching the paper's observation that the clock
// frequency is essentially independent of the bit length.
#pragma once

#include <cstddef>

#include "fpga/lut_mapper.hpp"
#include "rtl/netlist.hpp"

namespace mont::fpga {

/// Per-element delays in nanoseconds plus packing parameters.
struct DeviceParameters {
  double clk_to_q_ns = 0.56;   // Tcko, slice register
  double lut_delay_ns = 0.47;  // Tilo, LUT4 through-delay
  double setup_ns = 0.60;      // Tick register setup (incl. clock skew)
  double net_base_ns = 0.72;   // routing delay at fanout 1
  double net_per_log_fanout_ns = 0.42;  // extra per log2(fanout)
  double net_log_fanout_cap = 4.0;  // buffered high-fanout nets saturate
  double carry_per_bit_ns = 0.06;   // dedicated MUXCY/XORCY chain hop
  double packing_overhead = 0.12;  // fraction of slices lost to packing
  std::size_t luts_per_slice = 2;
  std::size_t ffs_per_slice = 2;

  /// Xilinx Virtex-E, -8 speed grade (the paper's part).
  static DeviceParameters VirtexE8();
  /// Slower -6 speed grade, used by the ablation bench.
  static DeviceParameters VirtexE6();
};

/// Synthesis-style report for one netlist on one device.
struct FpgaReport {
  std::size_t luts = 0;
  std::size_t flip_flops = 0;
  std::size_t slices = 0;
  std::size_t lut_depth = 0;        // LUT levels on the critical path
  double clock_period_ns = 0;       // Tp
  double fmax_mhz = 0;
  double time_area_ns_slices = 0;   // Tp * slices (the paper's TA column)
};

/// Maps, packs and times a netlist on the modelled device.
FpgaReport AnalyzeNetlist(const rtl::Netlist& netlist,
                          const DeviceParameters& device =
                              DeviceParameters::VirtexE8());

}  // namespace mont::fpga
