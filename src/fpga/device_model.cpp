#include "fpga/device_model.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace mont::fpga {

using rtl::kNoNet;
using rtl::Netlist;
using rtl::NetId;
using rtl::Node;
using rtl::Op;

DeviceParameters DeviceParameters::VirtexE8() { return DeviceParameters{}; }

DeviceParameters DeviceParameters::VirtexE6() {
  DeviceParameters p;
  // The -6 grade is roughly 30% slower across the board.
  p.clk_to_q_ns *= 1.3;
  p.lut_delay_ns *= 1.3;
  p.setup_ns *= 1.3;
  p.net_base_ns *= 1.3;
  p.net_per_log_fanout_ns *= 1.3;
  return p;
}

FpgaReport AnalyzeNetlist(const Netlist& netlist,
                          const DeviceParameters& device) {
  const LutMapping mapping = MapToLuts(netlist);
  FpgaReport report;
  report.luts = mapping.lut_count;
  report.flip_flops = mapping.ff_count;
  report.lut_depth = mapping.max_lut_depth;

  // --- slice packing: a Virtex-E slice holds 2 LUT4s and 2 registers.
  // LUT/FF pairs share a slice when the LUT drives the FF; the packing
  // overhead models the fraction where that is impossible.
  const double lut_slices =
      static_cast<double>(report.luts) / device.luts_per_slice;
  const double ff_slices =
      static_cast<double>(report.flip_flops) / device.ffs_per_slice;
  report.slices = static_cast<std::size_t>(
      std::ceil(std::max(lut_slices, ff_slices) *
                (1.0 + device.packing_overhead)));

  // --- timing: longest register-to-register path over the LUT-root graph.
  const std::size_t n = netlist.NodeCount();
  const auto net_delay = [&](NetId driver) {
    if (netlist.IsFastCarry(driver)) return device.carry_per_bit_ns;
    const double fanout = std::max<std::uint32_t>(mapping.fanout[driver], 1);
    const double log_term =
        std::min(std::log2(1.0 + fanout), device.net_log_fanout_cap);
    return device.net_base_ns + device.net_per_log_fanout_ns * log_term;
  };

  // Arrival time at each node's cluster output.  Sources (inputs, DFF
  // outputs) launch at Tcq.
  std::vector<double> arrival(n, 0.0);
  for (NetId id = 0; id < n; ++id) {
    const Node& node = netlist.NodeAt(id);
    if (node.op == Op::kDff) arrival[id] = device.clk_to_q_ns;
    if (node.op == Op::kInput) arrival[id] = device.clk_to_q_ns;  // IOB reg
  }
  // Walk clusters in topo order; only LUT roots add delay.
  //
  // Absorbed nodes inherit their cluster's arrival lazily: because the
  // topo order visits operands first, a root's leaves are already final.
  // A root's leaves are its transitive operands that are themselves roots
  // or sources; absorbed nodes contribute no delay of their own.
  const auto leaf_arrival = [&](NetId id, const auto& self) -> double {
    const Node& node = netlist.NodeAt(id);
    double best = 0.0;
    for (const NetId src : {node.a, node.b, node.c}) {
      if (src == kNoNet) continue;
      const Op op = netlist.NodeAt(src).op;
      if (op == Op::kConst0 || op == Op::kConst1) continue;
      double t;
      if (!rtl::IsCombinational(op) || mapping.is_root[src]) {
        t = arrival[src] + net_delay(src);
      } else {
        t = self(src, self);  // absorbed into this LUT: no extra delay
      }
      best = std::max(best, t);
    }
    return best;
  };
  double worst = 0.0;
  for (const NetId id : netlist.TopoOrder()) {
    if (!mapping.is_root[id]) continue;
    const double cell_delay = netlist.IsFastCarry(id) ? device.carry_per_bit_ns
                                                      : device.lut_delay_ns;
    arrival[id] = leaf_arrival(id, leaf_arrival) + cell_delay;
  }
  for (NetId id = 0; id < n; ++id) {
    const Node& node = netlist.NodeAt(id);
    if (node.op != Op::kDff) continue;
    for (const NetId src : {node.a, node.b, node.c}) {
      if (src == kNoNet) continue;
      worst = std::max(worst, arrival[src] + net_delay(src));
    }
  }
  report.clock_period_ns = worst + device.setup_ns;
  if (report.clock_period_ns > 0) {
    report.fmax_mhz = 1000.0 / report.clock_period_ns;
  }
  report.time_area_ns_slices =
      report.clock_period_ns * static_cast<double>(report.slices);
  return report;
}

}  // namespace mont::fpga
