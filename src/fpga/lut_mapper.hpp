// lut_mapper.hpp — technology mapping of a gate-level netlist onto 4-input
// lookup tables (the logic element of the paper's Xilinx Virtex-E target).
//
// A deterministic greedy cone-packing mapper: walking the netlist in
// topological order, each combinational node absorbs single-fanout operand
// cones while the merged leaf set stays within 4 inputs.  Nodes that feed
// flip-flops or outputs, have multiple fanouts, or cannot be absorbed
// become LUT roots.  This is intentionally simple (FlowMap-style optimal
// depth is unnecessary here) but produces realistic LUT counts and depths
// for the slice/packing and timing models layered on top.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "rtl/netlist.hpp"

namespace mont::fpga {

/// Result of mapping one netlist onto LUT4s.
struct LutMapping {
  std::size_t lut_count = 0;
  std::size_t ff_count = 0;
  std::size_t max_lut_depth = 0;  // LUT levels on the longest reg-to-reg path
  /// For each netlist node: true when the node is a LUT root.
  std::vector<bool> is_root;
  /// For each netlist node: LUT depth of its cluster root (0 for
  /// non-combinational nodes).
  std::vector<std::size_t> depth;
  /// For each LUT root / source node: number of distinct cluster consumers
  /// (fanout after mapping; drives the wire-load timing model).
  std::vector<std::uint32_t> fanout;
};

/// Maps `netlist` onto LUT4s.  `max_inputs` is exposed for what-if studies
/// (e.g. LUT3 or LUT5/6 fabrics in the ablation bench).
LutMapping MapToLuts(const rtl::Netlist& netlist, std::size_t max_inputs = 4);

}  // namespace mont::fpga
