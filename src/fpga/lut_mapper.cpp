#include "fpga/lut_mapper.hpp"

#include <algorithm>
#include <set>

namespace mont::fpga {

using rtl::kNoNet;
using rtl::Netlist;
using rtl::NetId;
using rtl::Node;
using rtl::Op;

LutMapping MapToLuts(const Netlist& netlist, std::size_t max_inputs) {
  const std::size_t n = netlist.NodeCount();
  LutMapping out;
  out.is_root.assign(n, false);
  out.depth.assign(n, 0);
  out.fanout.assign(n, 0);

  // Fanout of every node at the gate level (combinational consumers plus
  // DFF data/enable/reset pins).
  std::vector<std::uint32_t> gate_fanout(n, 0);
  std::vector<bool> feeds_state(n, false);  // drives a DFF pin or output
  for (NetId id = 0; id < n; ++id) {
    const Node& node = netlist.NodeAt(id);
    for (const NetId src : {node.a, node.b, node.c}) {
      if (src == kNoNet) continue;
      ++gate_fanout[src];
      if (node.op == Op::kDff) feeds_state[src] = true;
    }
  }
  for (const auto& [net, name] : netlist.Outputs()) feeds_state[net] = true;

  // Leaf sets of each node's cluster, built in topological order.  Logic
  // duplication is allowed (standard in LUT mapping): a multi-fanout
  // operand may be absorbed into each consumer's LUT and still exist as a
  // root for consumers that could not absorb it.  Absorption is greedy and
  // partial — operands are merged one at a time while the leaf set fits.
  std::vector<std::vector<NetId>> leaves(n);
  for (const NetId id : netlist.TopoOrder()) {
    const Node& node = netlist.NodeAt(id);
    // Pass 1: operands that must appear as leaves no matter what.
    std::set<NetId> merged;
    std::vector<NetId> absorbable;
    for (const NetId src : {node.a, node.b, node.c}) {
      if (src == kNoNet) continue;
      const Op src_op = netlist.NodeAt(src).op;
      if (src_op == Op::kConst0 || src_op == Op::kConst1) {
        continue;  // constants fold into the LUT truth table for free
      }
      if (rtl::IsCombinational(src_op) && !feeds_state[src] &&
          !netlist.IsFastCarry(src)) {
        absorbable.push_back(src);
      } else {
        merged.insert(src);
      }
    }
    // Pass 2: absorb operand cones while the leaf set fits, reserving one
    // slot for each not-yet-processed absorbable operand.
    for (std::size_t k = 0; k < absorbable.size(); ++k) {
      const NetId src = absorbable[k];
      const std::size_t reserved = absorbable.size() - k - 1;
      std::set<NetId> trial = merged;
      trial.insert(leaves[src].begin(), leaves[src].end());
      // Remaining operands may already be in the set; reserving a slot for
      // each is conservative but never produces an oversized LUT.
      if (trial.size() + reserved <= max_inputs) {
        merged = std::move(trial);
      } else {
        merged.insert(src);
      }
    }
    leaves[id].assign(merged.begin(), merged.end());
  }

  // Roots: nodes that feed state/outputs, plus every node appearing in some
  // cluster's leaf set (it must be physically realised to drive that LUT).
  std::vector<bool> is_leaf_somewhere(n, false);
  for (const NetId id : netlist.TopoOrder()) {
    for (const NetId leaf : leaves[id]) is_leaf_somewhere[leaf] = true;
  }
  for (const NetId id : netlist.TopoOrder()) {
    out.is_root[id] = feeds_state[id] || is_leaf_somewhere[id];
  }

  // Depth and fanout over the LUT-root graph.  Fast-carry cells do not add
  // LUT levels (they ride the dedicated carry chain).
  for (const NetId id : netlist.TopoOrder()) {
    std::size_t best = 0;
    for (const NetId leaf : leaves[id]) {
      best = std::max(best, out.depth[leaf]);
    }
    out.depth[id] = best + (netlist.IsFastCarry(id) ? 0 : 1);
    if (out.is_root[id]) {
      out.lut_count += 1;
      out.max_lut_depth = std::max(out.max_lut_depth, out.depth[id]);
      for (const NetId leaf : leaves[id]) ++out.fanout[leaf];
    }
  }
  // DFFs also load their sources' nets.
  for (NetId id = 0; id < n; ++id) {
    const Node& node = netlist.NodeAt(id);
    if (node.op == Op::kDff) {
      ++out.ff_count;
      for (const NetId src : {node.a, node.b, node.c}) {
        if (src != kNoNet) ++out.fanout[src];
      }
    }
  }
  return out;
}

}  // namespace mont::fpga
