#include "analysis/lint.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace mont::analysis {

using rtl::kNoNet;
using rtl::NetId;
using rtl::Netlist;
using rtl::Node;
using rtl::Op;

const char* LintRuleName(LintRule rule) {
  switch (rule) {
    case LintRule::kCombLoop: return "comb-loop";
    case LintRule::kFloatingOperand: return "floating-operand";
    case LintRule::kUnusedNet: return "unused-net";
    case LintRule::kDeadNet: return "dead-net";
    case LintRule::kDuplicatePortName: return "duplicate-port-name";
    case LintRule::kAliasedOutput: return "aliased-output";
  }
  return "?";
}

namespace {

/// Required operand slot count by op (optional DFF enable/reset excluded).
std::size_t RequiredOperands(Op op) {
  switch (op) {
    case Op::kInput:
    case Op::kConst0:
    case Op::kConst1:
      return 0;
    case Op::kBuf:
    case Op::kNot:
    case Op::kDff:  // d only; enable/reset are legitimately kNoNet
      return 1;
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kNand:
    case Op::kNor:
    case Op::kXnor:
      return 2;
    case Op::kMux:
      return 3;
  }
  return 0;
}

const char* SlotName(Op op, int slot) {
  if (op == Op::kMux) return slot == 0 ? "sel" : slot == 1 ? "if0" : "if1";
  if (op == Op::kDff) return slot == 0 ? "d" : slot == 1 ? "enable" : "reset";
  return slot == 0 ? "a" : slot == 1 ? "b" : "c";
}

}  // namespace

LintReport RunLint(const Netlist& nl) {
  LintReport report;
  const std::size_t n = nl.NodeCount();
  std::vector<LintFinding> raw;

  // ---- floating operands ----
  for (NetId id = 0; id < n; ++id) {
    const Node& node = nl.NodeAt(id);
    const std::size_t required = RequiredOperands(node.op);
    const NetId slots[3] = {node.a, node.b, node.c};
    for (std::size_t s = 0; s < required; ++s) {
      if (slots[s] == kNoNet) {
        raw.push_back({LintRule::kFloatingOperand, id,
                       std::string(rtl::OpName(node.op)) + " operand '" +
                           SlotName(node.op, static_cast<int>(s)) +
                           "' is unconnected"});
      }
    }
  }

  // ---- combinational loops (own Kahn pass; never throws) ----
  {
    std::vector<std::uint32_t> pending(n, 0);
    std::vector<std::vector<NetId>> comb_fanout(n);
    std::vector<NetId> ready;
    std::size_t comb_total = 0;
    for (NetId id = 0; id < n; ++id) {
      const Node& node = nl.NodeAt(id);
      if (!rtl::IsCombinational(node.op)) continue;
      ++comb_total;
      std::uint32_t deps = 0;
      for (const NetId src : rtl::FaninOf(node)) {
        if (rtl::IsCombinational(nl.NodeAt(src).op)) {
          comb_fanout[src].push_back(id);
          ++deps;
        }
      }
      pending[id] = deps;
      if (deps == 0) ready.push_back(id);
    }
    std::vector<NetId> order;
    order.reserve(comb_total);
    while (!ready.empty()) {
      const NetId id = ready.back();
      ready.pop_back();
      order.push_back(id);
      for (const NetId next : comb_fanout[id]) {
        if (--pending[next] == 0) ready.push_back(next);
      }
    }
    if (order.size() != comb_total) {
      for (NetId id = 0; id < n; ++id) {
        if (rtl::IsCombinational(nl.NodeAt(id).op) && pending[id] != 0) {
          raw.push_back({LintRule::kCombLoop, id,
                         "on or downstream of a combinational cycle"});
        }
      }
    } else {
      // Acyclic: structural depth profile rides on the same order.
      std::vector<std::size_t> depth(n, 0);
      // Kahn's stack order is not level order, so compute depths by a
      // second pass in id order repeated via the recorded order instead.
      std::vector<NetId> topo_sorted = order;
      // `order` is a valid topological order (every node appears after
      // its combinational fanin), so one forward pass suffices.
      for (const NetId id : topo_sorted) {
        std::size_t d = 0;
        for (const NetId src : rtl::FaninOf(nl.NodeAt(id))) {
          d = std::max(d, depth[src] + 1);
        }
        depth[id] = d;
        report.max_depth = std::max(report.max_depth, d);
      }
      report.depth_histogram.assign(report.max_depth + 1, 0);
      for (NetId id = 0; id < n; ++id) ++report.depth_histogram[depth[id]];
    }
  }

  // ---- fanout profile + unused / dead nets ----
  const std::vector<std::vector<NetId>> fanout = nl.BuildFanout();
  std::vector<std::uint8_t> is_output(n, 0);
  for (const auto& [net, name] : nl.Outputs()) is_output[net] = 1;
  for (NetId id = 0; id < n; ++id) {
    report.max_fanout = std::max(report.max_fanout, fanout[id].size());
  }
  report.fanout_histogram.assign(report.max_fanout + 1, 0);
  for (NetId id = 0; id < n; ++id) {
    ++report.fanout_histogram[fanout[id].size()];
  }

  for (NetId id = 0; id < n; ++id) {
    const Op op = nl.NodeAt(id).op;
    if (op == Op::kConst0 || op == Op::kConst1) continue;  // always present
    if (fanout[id].empty() && !is_output[id]) {
      raw.push_back({LintRule::kUnusedNet, id,
                     std::string(rtl::OpName(op)) +
                         " drives nothing and is not an output"});
    }
  }

  // Dead nets: backward reachability from outputs; waived nets count as
  // roots so a waiver covers its whole otherwise-unobservable fanin cone.
  {
    std::vector<std::uint8_t> reached(n, 0);
    std::vector<NetId> stack;
    for (const auto& [net, name] : nl.Outputs()) {
      if (!reached[net]) {
        reached[net] = 1;
        stack.push_back(net);
      }
    }
    for (const auto& [net, reason] : nl.LintWaivers()) {
      if (!reached[net]) {
        reached[net] = 1;
        stack.push_back(net);
      }
    }
    while (!stack.empty()) {
      const NetId id = stack.back();
      stack.pop_back();
      for (const NetId src : rtl::FaninOf(nl.NodeAt(id))) {
        if (!reached[src]) {
          reached[src] = 1;
          stack.push_back(src);
        }
      }
    }
    for (NetId id = 0; id < n; ++id) {
      const Op op = nl.NodeAt(id).op;
      if (op == Op::kConst0 || op == Op::kConst1) continue;
      if (!reached[id] && !fanout[id].empty()) {
        raw.push_back({LintRule::kDeadNet, id,
                       "no path from this net to any output"});
      }
    }
  }

  // ---- port-name collisions / output aliasing ----
  {
    std::unordered_map<std::string, NetId> seen;
    for (const auto& [net, name] : nl.Inputs()) {
      const auto [it, inserted] = seen.emplace(name, net);
      if (!inserted) {
        raw.push_back({LintRule::kDuplicatePortName, net,
                       "input name '" + name + "' already used by net " +
                           std::to_string(it->second)});
      }
    }
    seen.clear();
    std::unordered_map<NetId, std::string> exported;
    for (const auto& [net, name] : nl.Outputs()) {
      const auto [it, inserted] = seen.emplace(name, net);
      if (!inserted) {
        raw.push_back({LintRule::kDuplicatePortName, net,
                       "output name '" + name + "' already used by net " +
                           std::to_string(it->second)});
      }
      const auto [eit, fresh] = exported.emplace(net, name);
      if (!fresh && eit->second != name) {
        raw.push_back({LintRule::kAliasedOutput, net,
                       "net exported as both '" + eit->second + "' and '" +
                           name + "'"});
      }
    }
  }

  // ---- waiver routing ----
  std::unordered_map<NetId, std::string> waiver_reason;
  for (const auto& [net, reason] : nl.LintWaivers()) {
    waiver_reason.emplace(net, reason);
  }
  std::unordered_set<NetId> used_waivers;
  for (LintFinding& finding : raw) {
    const auto it = waiver_reason.find(finding.net);
    if (it != waiver_reason.end()) {
      used_waivers.insert(finding.net);
      finding.detail += " [waived: " + it->second + "]";
      report.waived.push_back(std::move(finding));
    } else {
      report.findings.push_back(std::move(finding));
    }
  }
  for (const auto& [net, reason] : nl.LintWaivers()) {
    if (!used_waivers.count(net)) report.stale_waivers.push_back(net);
  }
  return report;
}

std::string FormatLintReport(const Netlist& nl, const LintReport& report) {
  std::ostringstream os;
  os << "lint: " << report.findings.size() << " finding(s), "
     << report.waived.size() << " waived, " << report.stale_waivers.size()
     << " stale waiver(s)\n";
  for (const LintFinding& f : report.findings) {
    os << "  [" << LintRuleName(f.rule) << "] net " << f.net << " ("
       << nl.NetName(f.net) << "): " << f.detail << "\n";
  }
  for (const LintFinding& f : report.waived) {
    os << "  waived [" << LintRuleName(f.rule) << "] net " << f.net << " ("
       << nl.NetName(f.net) << "): " << f.detail << "\n";
  }
  for (const NetId net : report.stale_waivers) {
    os << "  stale waiver on net " << net << " (" << nl.NetName(net)
       << "): no finding to waive\n";
  }
  os << "  depth: max " << report.max_depth << "; fanout: max "
     << report.max_fanout << "\n";
  return os.str();
}

}  // namespace mont::analysis
