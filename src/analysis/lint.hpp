// lint.hpp — structural sanity checks over a gate-level netlist.
//
// The netlist builder API makes many classic RTL defects impossible (every
// net has exactly one driver; operands must exist before use), but the
// graph-editing accessors (RewireDff / RewireOperand) and plain generator
// bugs can still produce circuits that simulate but are wrong or wasteful.
// RunLint finds, without simulating:
//
//   kCombLoop        a combinational cycle (the simulator would refuse to
//                    levelize; lint localises the nets on the cycle).
//   kFloatingOperand a required operand slot left kNoNet (a DFF whose data
//                    input was never rewired, a gate gutted by rewiring).
//   kUnusedNet       a net nothing consumes: not an output, zero fanout.
//   kDeadNet         a net with fanout whose entire forward cone misses
//                    every output (work that cannot be observed).
//   kDuplicatePortName  two inputs, or two outputs, under one name (the
//                    Verilog export would emit a name collision).
//   kAliasedOutput   one net exported as two different output ports.
//
// Findings on nets covered by Netlist::WaiveLint are reported separately
// (with the recorded reason) instead of failing; waivers that match no
// finding are flagged as stale so they cannot rot.  The report also
// carries the fanout and combinational-depth histograms — the structural
// profile the paper's area/critical-path discussion cares about.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "rtl/netlist.hpp"

namespace mont::analysis {

enum class LintRule : std::uint8_t {
  kCombLoop,
  kFloatingOperand,
  kUnusedNet,
  kDeadNet,
  kDuplicatePortName,
  kAliasedOutput,
};

/// "comb-loop" / "floating-operand" / ... (stable CLI/JSON identifiers).
const char* LintRuleName(LintRule rule);

struct LintFinding {
  LintRule rule;
  rtl::NetId net = rtl::kNoNet;
  /// Human-readable specifics: the slot that floats, the colliding name,
  /// or — for waived findings — the waiver's recorded reason.
  std::string detail;
};

struct LintReport {
  /// Hard findings: a circuit shipped by a generator should have none.
  std::vector<LintFinding> findings;
  /// Findings suppressed by Netlist::WaiveLint, with the waiver reason.
  std::vector<LintFinding> waived;
  /// Waived nets with nothing to waive (stale after a generator change).
  std::vector<rtl::NetId> stale_waivers;

  /// Structural profile (combinational depth is only populated when the
  /// netlist is acyclic): histogram[d] = nets whose depth is d, where
  /// inputs/constants/DFF outputs have depth 0.
  std::vector<std::size_t> depth_histogram;
  std::size_t max_depth = 0;
  /// histogram[f] = nets with fanout f, capped at the last bucket.
  std::vector<std::size_t> fanout_histogram;
  std::size_t max_fanout = 0;

  bool Clean() const { return findings.empty(); }
};

/// Runs every rule.  Never throws on defective graphs — combinational
/// loops are a finding, not an error.
LintReport RunLint(const rtl::Netlist& netlist);

/// Renders findings + histogram summary (the analysis_report text block).
std::string FormatLintReport(const rtl::Netlist& netlist,
                             const LintReport& report);

}  // namespace mont::analysis
