// taint.hpp — masking-aware secret-taint dataflow over a gate-level netlist.
//
// Classifies every net of an rtl::Netlist by how its value relates to the
// secret sources (Netlist::MarkSecret) and fresh-randomness sources
// (Netlist::MarkRandom) annotated on the circuit:
//
//             Clean  <  Random  <  Blinded  <  Secret
//
//   Clean    a function of public inputs and constants only.
//   Random   a function of public inputs and fresh randomness only —
//            still independent of the secret.
//   Blinded  depends on the secret, but every first-order marginal is
//            independent of it: the secret is additively masked by fresh
//            randomness the analysis can prove was not cancelled (a
//            boolean share, e XOR r).
//   Secret   depends on the secret with no masking guarantee.
//
// The lattice is a sound over-approximation in one specific, dynamically
// checkable sense (crosscheck.hpp exercises it): a net labelled Clean or
// Random is a function of non-secret sources only, so flipping secret
// input bits — with all other inputs, including the masks, held fixed —
// can never change its value.  The Blinded/Secret distinction then adds
// the first-order masking argument on top: a Blinded net's distribution
// over the masks is the same for every secret value, which is exactly the
// property PR 5's CPA/DPA engine fails to exploit on masked circuits.
//
// Mask bookkeeping: every net carries the set of mask groups (bitset,
// up to 64 dense groups; more overflow-lump into one bit, conservatively
// preventing further disjointness proofs) whose randomness its value may
// involve.  XOR with a Random operand whose groups are disjoint from the
// other operand's is the blinding step (Secret -> Blinded); any operation
// that re-combines overlapping groups may cancel the mask and escalates
// to Secret.  Nonlinear gates (AND/OR/NAND/NOR) keep Blinded only for
// operands with pairwise-disjoint masks; MUX selects and DFF enables that
// are Clean/Random give the disjunctive join (the output equals exactly
// one operand, so shift-register recirculation does not "mix" masks).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "rtl/netlist.hpp"

namespace mont::analysis {

/// Taint lattice, ordered: join = max.
enum class TaintLabel : std::uint8_t {
  kClean = 0,
  kRandom = 1,
  kBlinded = 2,
  kSecret = 3,
};

/// "clean" / "random" / "blinded" / "secret".
const char* TaintLabelName(TaintLabel label);

/// Depends on the secret at all (Blinded or Secret)?
inline bool DependsOnSecret(TaintLabel label) {
  return label >= TaintLabel::kBlinded;
}

/// Result of one taint fixpoint over a netlist.
struct TaintReport {
  /// Per-net label, indexed by NetId.
  std::vector<TaintLabel> label;
  /// Per-net mask-group bitset (which fresh-randomness groups the value
  /// may involve).  Group numbers are densified in first-seen order.
  std::vector<std::uint64_t> mask;
  /// Per-net witness edge: the operand that made this net tainted
  /// (kNoNet for sources and untainted nets).  Chains of these edges walk
  /// back to a secret source — see WitnessPath.
  std::vector<rtl::NetId> taint_parent;
  /// Net counts by label: counts[static_cast<int>(label)].
  std::array<std::size_t, 4> counts{};
  /// Counts restricted to logic (combinational gates + flip-flops),
  /// excluding inputs and constants — the "how much of the circuit is in
  /// the secret cone" metric the blinded/unblinded comparison uses.
  std::array<std::size_t, 4> logic_counts{};
  /// Sweeps until fixpoint (>= 2: one to converge, one to confirm).
  std::size_t sweeps = 0;
  /// More than 64 distinct mask groups were annotated; the overflow
  /// groups share one bit, so their disjointness can no longer be proven
  /// and combinations involving them escalate conservatively.
  bool mask_groups_overflowed = false;

  TaintLabel LabelOf(rtl::NetId net) const { return label.at(net); }
  /// Nets with the given label, in id order.
  std::vector<rtl::NetId> NetsWithLabel(TaintLabel l) const;
  /// Walks taint_parent edges from `net` back to a source: the returned
  /// path starts at `net` and ends at a net with no tainted parent (a
  /// secret source for Secret/Blinded nets).  Empty if `net` is untainted.
  std::vector<rtl::NetId> WitnessPath(rtl::NetId net) const;
};

/// Runs the taint dataflow to fixpoint.  Requires a combinationally
/// acyclic netlist (uses Netlist::TopoOrder; run lint first on untrusted
/// graphs).  Secret/random annotations may sit on any net — a marked net
/// is forced to at least that label no matter what drives it.
TaintReport AnalyzeTaint(const rtl::Netlist& netlist);

/// Renders a per-label summary plus the witness path of one worst net —
/// the human-readable block analysis_report prints per circuit.
std::string FormatTaintSummary(const rtl::Netlist& netlist,
                               const TaintReport& report);

}  // namespace mont::analysis
