// crosscheck.hpp — dynamic soundness check of the static taint labels.
//
// The taint lattice's load-bearing claim is that Clean/Random nets are
// functions of non-secret sources only.  That claim is directly testable
// on the 64-lane simulator: run the circuit twice from reset with every
// input identical except ONE secret input bit, and any net whose value
// ever differs between the two executions provably depends on that bit —
// so its static label must be Blinded or Secret.  A differing net
// labelled Clean or Random is a soundness violation (an unsound transfer
// rule, or a missing MarkSecret annotation on the circuit).
//
// The batch engine does 63 such experiments per pass: lane 0 is the
// baseline execution, lane k flips the k-th secret input bit, and every
// other input — including the mask inputs, which is what makes the check
// meaningful for Blinded nets: the masks are held fixed, so a blinded
// share DOES differ and must be labelled — is driven lane-uniformly with
// fresh pseudo-random values each cycle (randomized stimulus doubles as
// protocol excitation: START pulses land in every FSM state).  Circuits
// with more than 63 secret input bits run additional batches.
//
// The converse direction is reported as coverage, not asserted: a
// Blinded/Secret net that never differed was simply not exercised by this
// stimulus (the static answer is an over-approximation by design).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/taint.hpp"
#include "rtl/netlist.hpp"

namespace mont::analysis {

struct CrosscheckOptions {
  /// Clock cycles simulated per batch (from reset).  Size this to several
  /// full operations of the circuit under test.
  std::size_t ticks = 512;
  /// Seed of the deterministic stimulus stream.
  std::uint64_t seed = 0x5eedc0de;
};

struct CrosscheckResult {
  /// Secret-marked primary-input bits exercised (one differential
  /// experiment each).
  std::size_t secret_bits = 0;
  /// Simulation batches run (ceil(secret_bits / 63)).
  std::size_t batches = 0;
  std::size_t ticks_per_batch = 0;
  /// Nets that differed from the baseline lane in any experiment.
  std::size_t differing_nets = 0;
  /// Of those, nets statically labelled Blinded/Secret (the sound case).
  std::size_t differing_tainted = 0;
  /// Nets that differed but are statically Clean/Random — must be empty.
  std::vector<rtl::NetId> violations;
  /// Fraction of statically Blinded/Secret *logic* nets that the stimulus
  /// actually made differ — how non-vacuous the check was.
  double tainted_coverage = 0.0;

  bool Sound() const { return violations.empty(); }
};

/// Runs the differential experiments.  Throws std::invalid_argument if the
/// netlist has no secret-marked primary input (nothing to flip) and
/// std::logic_error (from compilation) on combinationally cyclic graphs.
CrosscheckResult RunDifferentialCrosscheck(const rtl::Netlist& netlist,
                                           const TaintReport& taint,
                                           const CrosscheckOptions& options = {});

/// One-line human-readable verdict (the analysis_report text block).
std::string FormatCrosscheckResult(const rtl::Netlist& netlist,
                                   const CrosscheckResult& result);

}  // namespace mont::analysis
