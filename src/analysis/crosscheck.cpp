#include "analysis/crosscheck.hpp"

#include <random>
#include <sstream>
#include <stdexcept>

#include "rtl/batch_sim.hpp"

namespace mont::analysis {

using rtl::kNoNet;
using rtl::NetId;
using rtl::Netlist;
using rtl::Op;

CrosscheckResult RunDifferentialCrosscheck(const Netlist& nl,
                                           const TaintReport& taint,
                                           const CrosscheckOptions& options) {
  // Partition the primary inputs: the secret-marked ones get one
  // differential lane each; everything else (public and mask inputs
  // alike) is driven lane-uniformly.
  std::vector<NetId> secret_inputs;
  std::vector<NetId> uniform_inputs;
  for (const auto& [net, name] : nl.Inputs()) {
    (nl.IsSecret(net) ? secret_inputs : uniform_inputs).push_back(net);
  }
  if (secret_inputs.empty()) {
    throw std::invalid_argument(
        "RunDifferentialCrosscheck: no secret-marked primary input");
  }

  const std::size_t n = nl.NodeCount();
  CrosscheckResult result;
  result.secret_bits = secret_inputs.size();
  result.ticks_per_batch = options.ticks;

  rtl::BatchSimulator sim(nl);
  std::mt19937_64 rng(options.seed);
  const auto coin = [&]() { return (rng() & 1u) != 0; };

  // ever_differed[net]: some lane disagreed with lane 0 at some cycle.
  std::vector<std::uint8_t> ever_differed(n, 0);

  constexpr std::size_t kExperimentLanes = rtl::BatchSimulator::kLanes - 1;
  for (std::size_t base = 0; base < secret_inputs.size();
       base += kExperimentLanes) {
    const std::size_t batch_bits =
        std::min(kExperimentLanes, secret_inputs.size() - base);
    ++result.batches;
    sim.Reset();
    for (std::size_t tick = 0; tick < options.ticks; ++tick) {
      for (const NetId input : uniform_inputs) sim.SetInputAll(input, coin());
      for (std::size_t i = 0; i < secret_inputs.size(); ++i) {
        std::uint64_t word = coin() ? rtl::BatchSimulator::kAllLanes : 0;
        if (i >= base && i < base + batch_bits) {
          // Lane (i - base + 1) runs with this bit flipped; lane 0 and all
          // other lanes hold the baseline value.
          word ^= std::uint64_t{1} << (i - base + 1);
        }
        sim.SetInput(secret_inputs[i], word);
      }
      sim.Tick();
      for (NetId net = 0; net < n; ++net) {
        const std::uint64_t w = sim.Peek(net);
        const std::uint64_t baseline = (w & 1u) ? rtl::BatchSimulator::kAllLanes : 0;
        if (w != baseline) ever_differed[net] = 1;
      }
    }
  }

  std::size_t tainted_logic = 0;
  std::size_t tainted_logic_differed = 0;
  for (NetId net = 0; net < n; ++net) {
    const bool tainted = DependsOnSecret(taint.label[net]);
    const Op op = nl.NodeAt(net).op;
    const bool is_logic =
        op != Op::kInput && op != Op::kConst0 && op != Op::kConst1;
    if (tainted && is_logic) ++tainted_logic;
    if (!ever_differed[net]) continue;
    ++result.differing_nets;
    if (tainted) {
      ++result.differing_tainted;
      if (is_logic) ++tainted_logic_differed;
    } else {
      result.violations.push_back(net);
    }
  }
  result.tainted_coverage =
      tainted_logic == 0
          ? 0.0
          : static_cast<double>(tainted_logic_differed) /
                static_cast<double>(tainted_logic);
  return result;
}

std::string FormatCrosscheckResult(const Netlist& nl,
                                   const CrosscheckResult& result) {
  std::ostringstream os;
  os << "crosscheck: " << (result.Sound() ? "SOUND" : "UNSOUND") << " — "
     << result.secret_bits << " secret bit(s), " << result.batches
     << " batch(es) x " << result.ticks_per_batch << " ticks; "
     << result.differing_nets << " net(s) differed ("
     << result.differing_tainted << " tainted, "
     << result.violations.size() << " violation(s)); tainted-logic coverage "
     << result.tainted_coverage << "\n";
  for (const NetId net : result.violations) {
    os << "  VIOLATION: net " << net << " (" << nl.NetName(net)
       << ") differed under a secret flip but is statically "
       << "clean/random\n";
  }
  return os.str();
}

}  // namespace mont::analysis
