#include "analysis/taint.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

namespace mont::analysis {

using rtl::kNoNet;
using rtl::NetId;
using rtl::Netlist;
using rtl::Node;
using rtl::Op;

const char* TaintLabelName(TaintLabel label) {
  switch (label) {
    case TaintLabel::kClean: return "clean";
    case TaintLabel::kRandom: return "random";
    case TaintLabel::kBlinded: return "blinded";
    case TaintLabel::kSecret: return "secret";
  }
  return "?";
}

namespace {

/// A (label, mask set) value plus the operand net that justifies it.
struct Taint {
  TaintLabel label = TaintLabel::kClean;
  std::uint64_t mask = 0;
  NetId parent = kNoNet;
};

TaintLabel Max(TaintLabel a, TaintLabel b) { return a >= b ? a : b; }

/// XOR-like combination (kXor/kXnor): linear over GF(2), so this is where
/// masking happens — a Random operand with provably fresh (disjoint)
/// groups blinds a Secret one; overlapping groups may cancel and unmask.
Taint XorJoin(const Taint& x, const Taint& y) {
  const bool disjoint = (x.mask & y.mask) == 0;
  // Sort so a.label >= b.label.
  const Taint& a = x.label >= y.label ? x : y;
  const Taint& b = x.label >= y.label ? y : x;
  Taint out;
  out.mask = a.mask | b.mask;
  out.parent = DependsOnSecret(a.label) ? a.parent : kNoNet;
  switch (a.label) {
    case TaintLabel::kClean:
      out.label = TaintLabel::kClean;
      break;
    case TaintLabel::kRandom:
      // Random (+) Random may cancel, but the result is still a function
      // of randomness/public inputs only; the union mask over-approximates
      // which groups it may involve.
      out.label = TaintLabel::kRandom;
      break;
    case TaintLabel::kBlinded:
      // A fresh (disjoint) Random or an independently-Blinded share keeps
      // the masking argument; overlap may strip the mask.
      out.label = (b.label != TaintLabel::kSecret && disjoint)
                      ? TaintLabel::kBlinded
                      : TaintLabel::kSecret;
      break;
    case TaintLabel::kSecret:
      // The blinding rule itself: secret XOR fresh randomness.
      out.label = (b.label == TaintLabel::kRandom && disjoint)
                      ? TaintLabel::kBlinded
                      : TaintLabel::kSecret;
      break;
  }
  if (!DependsOnSecret(out.label)) out.parent = kNoNet;
  return out;
}

/// Nonlinear combination (kAnd/kOr/kNand/kNor, and any gate fed a tainted
/// control): the output's distribution couples both operands, so Blinded
/// survives only with pairwise-disjoint masks (the standard first-order
/// argument for AND of independent shares).
Taint NonlinearJoin(const Taint& x, const Taint& y) {
  const bool disjoint = (x.mask & y.mask) == 0;
  const Taint& a = x.label >= y.label ? x : y;
  const Taint& b = x.label >= y.label ? y : x;
  Taint out;
  out.mask = a.mask | b.mask;
  out.parent = DependsOnSecret(a.label) ? a.parent : kNoNet;
  switch (a.label) {
    case TaintLabel::kClean:
    case TaintLabel::kRandom:
      out.label = a.label;
      break;
    case TaintLabel::kBlinded:
      out.label = (b.label == TaintLabel::kClean ||
                   (disjoint && b.label != TaintLabel::kSecret))
                      ? TaintLabel::kBlinded
                      : TaintLabel::kSecret;
      break;
    case TaintLabel::kSecret:
      out.label = TaintLabel::kSecret;
      break;
  }
  if (!DependsOnSecret(out.label)) out.parent = kNoNet;
  return out;
}

/// Disjunctive combination: the output equals exactly one of the operands
/// (a MUX whose select, or a DFF whose enable/reset, is secret-independent).
/// Labels join by max and masks by union with no overlap escalation —
/// recirculating registers (shift chains, hold muxes) whose data already
/// shares mask groups stay Blinded instead of collapsing to Secret.
Taint DisjunctiveJoin(const Taint& x, const Taint& y) {
  const Taint& a = x.label >= y.label ? x : y;
  Taint out;
  out.label = a.label;
  out.mask = x.mask | y.mask;
  out.parent = DependsOnSecret(out.label) ? a.parent : kNoNet;
  return out;
}

}  // namespace

TaintReport AnalyzeTaint(const Netlist& nl) {
  const std::size_t n = nl.NodeCount();
  std::vector<Taint> taint(n);

  // Densify mask groups into bit positions; group 64+ lump into bit 63.
  std::unordered_map<unsigned, unsigned> group_bit;
  bool overflowed = false;
  const auto bit_of = [&](unsigned group) -> std::uint64_t {
    auto it = group_bit.find(group);
    if (it == group_bit.end()) {
      unsigned bit = static_cast<unsigned>(group_bit.size());
      if (bit >= 64) {
        bit = 63;
        overflowed = true;
      }
      it = group_bit.emplace(group, bit).first;
    }
    return std::uint64_t{1} << it->second;
  };

  // Forced source annotations (applicable to any net, joined every sweep).
  std::vector<std::uint8_t> forced_secret(n, 0);
  std::vector<std::uint64_t> forced_mask(n, 0);
  std::vector<std::uint8_t> forced_random(n, 0);
  for (const NetId net : nl.SecretNets()) forced_secret[net] = 1;
  for (const auto& [net, group] : nl.RandomNets()) {
    forced_random[net] = 1;
    forced_mask[net] |= bit_of(group);
  }

  const auto apply_forced = [&](NetId id, Taint& t) {
    if (forced_secret[id]) {
      t.label = TaintLabel::kSecret;
      t.parent = kNoNet;  // a source is its own witness
    } else if (forced_random[id]) {
      t.label = Max(t.label, TaintLabel::kRandom);
    }
    t.mask |= forced_mask[id];
  };

  // Transfer function of one node given current operand taints.  An
  // operand's taint is read with its parent field re-pointed at the
  // operand itself, so the join functions' parent propagation builds the
  // witness edge net -> contributing operand.
  const auto at = [&](NetId src) -> Taint {
    if (src == kNoNet) return Taint{};
    Taint t = taint[src];
    t.parent = src;
    return t;
  };
  const auto transfer = [&](const Node& node) -> Taint {
    switch (node.op) {
      case Op::kInput:
      case Op::kConst0:
      case Op::kConst1:
        return Taint{};
      case Op::kBuf:
      case Op::kNot:
        return at(node.a);
      case Op::kXor:
      case Op::kXnor:
        return XorJoin(at(node.a), at(node.b));
      case Op::kAnd:
      case Op::kOr:
      case Op::kNand:
      case Op::kNor:
        return NonlinearJoin(at(node.a), at(node.b));
      case Op::kMux: {
        const Taint sel = at(node.a);
        const Taint data = DisjunctiveJoin(at(node.b), at(node.c));
        if (DependsOnSecret(sel.label)) {
          // A tainted select couples itself into the output value.
          return NonlinearJoin(sel, data);
        }
        Taint out = data;
        out.label = Max(out.label, sel.label);  // Random select => >= Random
        out.mask |= sel.mask;
        return out;
      }
      case Op::kDff:
        // Handled separately (needs the node's own id for the q operand).
        return Taint{};
    }
    return Taint{};
  };

  // Sources first: inputs/constants take their forced annotations once.
  for (NetId id = 0; id < n; ++id) {
    const Op op = nl.NodeAt(id).op;
    if (op == Op::kInput || op == Op::kConst0 || op == Op::kConst1) {
      apply_forced(id, taint[id]);
    }
  }

  // Fixpoint: combinational nets in topological order, then every DFF
  // against its (d, enable, reset, q) operands, until no label or mask
  // changes.  Join with the previous value (labels only ever increase,
  // masks only ever grow), so termination is by lattice height.
  const std::vector<NetId>& topo = nl.TopoOrder();
  std::size_t sweeps = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    ++sweeps;
    const auto join_into = [&](NetId id, Taint computed) {
      apply_forced(id, computed);
      Taint& cur = taint[id];
      const TaintLabel joined = Max(cur.label, computed.label);
      const std::uint64_t mask = cur.mask | computed.mask;
      if (joined != cur.label || mask != cur.mask) {
        if (joined != cur.label) {
          cur.parent =
              computed.label >= cur.label ? computed.parent : cur.parent;
        }
        cur.label = joined;
        cur.mask = mask;
        changed = true;
      }
    };
    for (const NetId id : topo) join_into(id, transfer(nl.NodeAt(id)));
    for (NetId id = 0; id < n; ++id) {
      const Node& node = nl.NodeAt(id);
      if (node.op != Op::kDff) continue;
      const Taint d = at(node.a);
      const Taint en = at(node.b);
      const Taint rst = at(node.c);
      Taint next;
      if (DependsOnSecret(en.label) || DependsOnSecret(rst.label)) {
        // Tainted control: the register's value couples with it.
        next = NonlinearJoin(NonlinearJoin(en, rst),
                             DisjunctiveJoin(d, taint[id]));
      } else {
        // q' is exactly one of {0, d, q}: disjunctive join, plus the
        // control's own (<= Random) contribution.
        next = DisjunctiveJoin(d, taint[id]);
        next.label = Max(next.label, Max(en.label, rst.label));
        next.mask |= en.mask | rst.mask;
      }
      join_into(id, next);
    }
  }

  TaintReport report;
  report.label.resize(n);
  report.mask.resize(n);
  report.taint_parent.resize(n);
  report.sweeps = sweeps;
  report.mask_groups_overflowed = overflowed;
  for (NetId id = 0; id < n; ++id) {
    report.label[id] = taint[id].label;
    report.mask[id] = taint[id].mask;
    report.taint_parent[id] = taint[id].parent;
    const auto slot = static_cast<std::size_t>(taint[id].label);
    ++report.counts[slot];
    const Op op = nl.NodeAt(id).op;
    if (op != Op::kInput && op != Op::kConst0 && op != Op::kConst1) {
      ++report.logic_counts[slot];
    }
  }
  return report;
}

std::vector<NetId> TaintReport::NetsWithLabel(TaintLabel l) const {
  std::vector<NetId> out;
  for (NetId id = 0; id < label.size(); ++id) {
    if (label[id] == l) out.push_back(id);
  }
  return out;
}

std::vector<NetId> TaintReport::WitnessPath(NetId net) const {
  std::vector<NetId> path;
  if (net >= label.size() || !DependsOnSecret(label[net])) return path;
  NetId cur = net;
  // Parent chains cannot be longer than the net count (each hop moves to
  // a net that was tainted no later); the bound guards corrupted input.
  while (cur != kNoNet && path.size() <= label.size()) {
    path.push_back(cur);
    cur = taint_parent[cur];
  }
  return path;
}

std::string FormatTaintSummary(const Netlist& nl, const TaintReport& report) {
  std::ostringstream os;
  os << "taint: ";
  for (int l = 0; l < 4; ++l) {
    if (l) os << ", ";
    os << report.counts[l] << " "
       << TaintLabelName(static_cast<TaintLabel>(l));
  }
  os << " (logic only: ";
  for (int l = 0; l < 4; ++l) {
    if (l) os << ", ";
    os << report.logic_counts[l] << " "
       << TaintLabelName(static_cast<TaintLabel>(l));
  }
  os << "); fixpoint in " << report.sweeps << " sweeps\n";
  if (report.mask_groups_overflowed) {
    os << "  note: >64 mask groups; overflow groups lumped (conservative)\n";
  }
  // One witness: the highest-id Secret net (deep in the cone) back to its
  // source, capped for readability.
  const std::vector<NetId> secrets =
      report.NetsWithLabel(TaintLabel::kSecret);
  if (!secrets.empty()) {
    const std::vector<NetId> path = report.WitnessPath(secrets.back());
    os << "  witness (" << path.size() << " hops): ";
    constexpr std::size_t kShow = 6;
    bool first = true;
    for (std::size_t i = 0; i < path.size(); ++i) {
      if (path.size() > 2 * kShow && i >= kShow && i + kShow < path.size()) {
        if (i == kShow) os << " -> ...";
        continue;
      }
      if (!first) os << " -> ";
      first = false;
      os << nl.NetName(path[i]);
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace mont::analysis
