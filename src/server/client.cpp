// client.cpp — retry loop with deterministic exponential backoff.
#include "server/client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace mont::server {

bool SigningClient::MayRetry(StatusCode status, bool idempotent) {
  switch (status) {
    // Definitely not executed AND transient: always safe to retry.
    case StatusCode::kRejectedBackpressure:
    case StatusCode::kShedOverload:
    case StatusCode::kInternalRetrying:
      return true;
    // Ambiguous — the signature may have been computed server-side.
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kTransportTimeout:
      return idempotent;
    // Permanent (malformed, unknown tenant/key, oversize) or pointless
    // (shutting down, already ok): never retried.
    default:
      return false;
  }
}

std::uint64_t SigningClient::BackoffMicros(std::size_t attempt) {
  const std::size_t shift = std::min<std::size_t>(attempt == 0 ? 0 : attempt - 1, 20);
  std::uint64_t delay = policy_.base_backoff_micros << shift;
  delay = std::min(delay, policy_.max_backoff_micros);
  if (delay == 0) return 0;
  const std::uint64_t half = delay / 2;
  std::lock_guard<std::mutex> lk(rng_mu_);
  return half + rng_.NextBelow(delay - half + 1);
}

SigningClient::Outcome SigningClient::Sign(
    std::uint32_t tenant_id, std::uint32_t key_id,
    std::span<const std::uint8_t> message, std::uint64_t deadline_ticks,
    bool idempotent) {
  Outcome outcome;
  for (std::size_t attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
    outcome.attempts = attempt;
    SignRequest request;
    request.type = RequestType::kSign;
    request.request_id =
        next_request_id_.fetch_add(1, std::memory_order_relaxed);
    request.tenant_id = tenant_id;
    request.key_id = key_id;
    request.deadline_ticks = deadline_ticks;
    request.message.assign(message.begin(), message.end());

    auto future = transport_.Call(request);
    std::optional<SignResponse> response;
    if (future.wait_for(std::chrono::microseconds(
            policy_.attempt_timeout_micros)) == std::future_status::ready) {
      response = future.get();
    }
    if (!response) {
      outcome.status = StatusCode::kTransportTimeout;
    } else {
      outcome.status = response->status;
      if (response->status == StatusCode::kOk) {
        outcome.signature = std::move(response->payload);
        return outcome;
      }
    }
    if (!MayRetry(outcome.status, idempotent) ||
        attempt == policy_.max_attempts) {
      return outcome;
    }
    const std::uint64_t backoff = BackoffMicros(attempt);
    if (backoff > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(backoff));
    }
  }
  return outcome;
}

}  // namespace mont::server
