// signing_service.cpp — the signing front-end's request lifecycle.
//
// The shutdown/retry interlock in one place: every (re)submission of a
// request's CRT half-jobs happens under mu_ with shutting_down_ checked,
// and ~SigningService sets shutting_down_ under mu_ *before* destroying
// the ExpService.  A submit therefore either happens-before shutdown (and
// the ExpService destructor drains it — every callback and continuation
// still runs) or observes the flag and answers kShuttingDown instead.
// Either way each admitted request gets exactly one response and no
// future is abandoned.
#include "server/signing_service.hpp"

#include <cstring>
#include <future>
#include <stdexcept>
#include <string>
#include <utility>

namespace mont::server {

namespace {

std::vector<std::uint8_t> DetailBytes(const char* detail) {
  const std::size_t length = detail == nullptr ? 0 : std::strlen(detail);
  return std::vector<std::uint8_t>(detail, detail + length);
}

}  // namespace

SigningService::SigningService(Keystore keystore, Options options)
    : keystore_(std::move(keystore)),
      options_(std::move(options)),
      max_frame_bytes_(options_.max_frame_bytes),
      chaos_(options_.chaos),
      admission_(options_.admission) {
  clock_ = options_.service.clock != nullptr ? options_.service.clock
                                             : &steady_clock_;
  for (const std::uint32_t tenant_id : keystore_.TenantIds()) {
    admission_.RegisterTenant(tenant_id, *keystore_.FindTenant(tenant_id));
  }
  keystore_.ForEachKey([this](std::uint32_t tenant_id, std::uint32_t key_id,
                              const crypto::RsaKeyPair& key) {
    using bignum::BigUInt;
    if (key.p == key.q || key.p * key.q != key.n) {
      throw std::invalid_argument(
          "SigningService: malformed CRT key (tenant " +
          std::to_string(tenant_id) + ", key " + std::to_string(key_id) + ")");
    }
    PreparedKey prepared;
    prepared.key = &key;
    prepared.modulus_bytes = (key.n.BitLength() + 7) / 8;
    if (prepared.modulus_bytes < crypto::kPkcs1MinModulusBytes) {
      throw std::invalid_argument(
          "SigningService: modulus too small for PKCS#1 v1.5 / SHA-256 "
          "(need >= 62 bytes)");
    }
    const BigUInt one{1};
    prepared.dp = key.d % (key.p - one);
    prepared.dq = key.d % (key.q - one);
    prepared.q_inv = BigUInt::ModInverse(key.q % key.p, key.p);
    prepared.verify_engine = core::MakeEngine("word-mont", key.n);
    keys_[KeySlot(tenant_id, key_id)] = std::move(prepared);
  });
  auto service_options = options_.service;
  if (chaos_ != nullptr) {
    ChaosLayer* chaos = chaos_;
    service_options.worker_observer = [chaos](std::size_t worker) {
      chaos->OnWorkerIssue(worker);
    };
  }
  service_ = std::make_unique<core::ExpService>(std::move(service_options));
  exp_ = service_.get();
}

SigningService::~SigningService() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutting_down_ = true;
  }
  // Drains every queued half-job and continuation; each in-flight request
  // reaches Finish before this returns.
  service_.reset();
}

std::uint64_t SigningService::NowTicks() const { return clock_->Now(); }

void SigningService::RespondRejected(const ResponseFn& respond,
                                     std::uint64_t request_id,
                                     StatusCode status, const char* detail) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    BumpLocked(status);
  }
  if (!respond) return;
  SignResponse response;
  response.status = status;
  response.request_id = request_id;
  response.payload = DetailBytes(detail);
  try {
    respond(std::move(response));
  } catch (...) {
  }
}

void SigningService::HandleRequest(std::vector<std::uint8_t> payload,
                                   ResponseFn respond) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++counters_.requests;
  }
  const auto request = DecodeSignRequest(payload);
  if (!request) {
    RespondRejected(respond, 0, StatusCode::kMalformedRequest,
                    "undecodable request payload");
    return;
  }
  if (request->type == RequestType::kPing) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++counters_.pings;
    }
    if (respond) {
      SignResponse response;
      response.request_id = request->request_id;
      try {
        respond(std::move(response));
      } catch (...) {
      }
    }
    return;
  }
  if (keystore_.FindTenant(request->tenant_id) == nullptr) {
    RespondRejected(respond, request->request_id, StatusCode::kUnknownTenant,
                    "unknown tenant");
    return;
  }
  const auto key_it = keys_.find(KeySlot(request->tenant_id, request->key_id));
  if (key_it == keys_.end()) {
    RespondRejected(respond, request->request_id, StatusCode::kUnknownKey,
                    "unknown key for tenant");
    return;
  }
  const PreparedKey& prepared = key_it->second;
  // The message representative is computed outside the lock (hashing is
  // the request's only unbounded-input work).
  bignum::BigUInt em =
      crypto::EmsaPkcs1V15Encode(request->message, prepared.modulus_bytes);
  const std::uint64_t now = NowTicks();

  std::unique_lock<std::mutex> lk(mu_);
  if (shutting_down_) {
    lk.unlock();
    RespondRejected(respond, request->request_id, StatusCode::kShuttingDown,
                    "service shutting down");
    return;
  }
  const AdmissionDecision decision = admission_.Admit(request->tenant_id, now);
  if (!decision.admitted) {
    lk.unlock();
    RespondRejected(respond, request->request_id, decision.reason,
                    decision.reason == StatusCode::kShedOverload
                        ? "shed: overload priority cutoff"
                        : "backpressure: tenant budget exhausted");
    return;
  }
  ++counters_.admitted;
  ++in_flight_;

  auto state = std::make_shared<RequestState>();
  state->request_id = request->request_id;
  state->tenant_id = request->tenant_id;
  state->key = &prepared;
  state->em = std::move(em);
  state->deadline =
      request->deadline_ticks == 0 ? 0 : now + request->deadline_ticks;
  state->respond = std::move(respond);
  SubmitHalvesLocked(state);
}

SignResponse SigningService::HandleRequestSync(
    std::vector<std::uint8_t> payload) {
  std::promise<SignResponse> promise;
  std::future<SignResponse> future = promise.get_future();
  HandleRequest(std::move(payload), [&promise](SignResponse response) {
    promise.set_value(std::move(response));
  });
  return future.get();
}

void SigningService::SubmitHalvesLocked(
    const std::shared_ptr<RequestState>& state) {
  state->remaining.store(2, std::memory_order_relaxed);
  state->p_cancelled = false;
  state->q_cancelled = false;
  const crypto::RsaKeyPair& key = *state->key->key;
  core::ExpJobOptions job_options;
  job_options.deadline = state->deadline;
  exp_->Submit(key.p, state->em % key.p, state->key->dp, job_options,
               [this, state](const core::ExpResult& result) {
                 state->mp = result.value;
                 state->p_cancelled = result.cancelled;
                 OnHalfDone(state);
               });
  exp_->Submit(key.q, state->em % key.q, state->key->dq, job_options,
               [this, state](const core::ExpResult& result) {
                 state->mq = result.value;
                 state->q_cancelled = result.cancelled;
                 OnHalfDone(state);
               });
}

void SigningService::OnHalfDone(const std::shared_ptr<RequestState>& state) {
  // acq_rel: the half that arrives second observes the first half's
  // mp/mq write before posting recombination.
  if (state->remaining.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
  exp_->Post([this, state] { Recombine(state); });
}

void SigningService::Recombine(const std::shared_ptr<RequestState>& state) {
  if (state->p_cancelled || state->q_cancelled) {
    Finish(state, StatusCode::kDeadlineExceeded,
           DetailBytes("deadline expired before engine dispatch"));
    return;
  }
  // Chaos compute-fault injection: flip a bit of the p-half *after* the
  // engines ran and *before* recombination — exactly the fault class the
  // Bellcore check exists for.
  if (chaos_ != nullptr && chaos_->ShouldCorruptCrtHalf()) {
    chaos_->CorruptValue(state->mp);
  }
  const PreparedKey& prepared = *state->key;
  const bignum::BigUInt signature =
      crypto::RsaCrtRecombine(*prepared.key, prepared.q_inv, state->mp,
                              state->mq);
  if (!crypto::RsaCrtResultOk(*prepared.verify_engine, *prepared.key,
                              state->em, signature)) {
    bool shutdown = false;
    bool retried = false;
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++counters_.faults_caught;
      shutdown = shutting_down_;
      if (!shutdown && state->attempts < options_.max_internal_retries) {
        ++state->attempts;
        ++counters_.internal_retries;
        SubmitHalvesLocked(state);
        retried = true;
      }
    }
    if (!retried) {
      Finish(state,
             shutdown ? StatusCode::kShuttingDown
                      : StatusCode::kInternalRetrying,
             DetailBytes(shutdown
                             ? "service shutting down during internal retry"
                             : "compute fault persisted across retries; "
                               "no signature released"));
    }
    return;
  }
  Finish(state, StatusCode::kOk,
         signature.ToBytesBE(prepared.modulus_bytes));
}

void SigningService::Finish(const std::shared_ptr<RequestState>& state,
                            StatusCode status,
                            std::vector<std::uint8_t> payload) {
  SignResponse response;
  response.status = status;
  response.request_id = state->request_id;
  response.payload = std::move(payload);
  {
    std::lock_guard<std::mutex> lk(mu_);
    admission_.OnComplete(state->tenant_id);
    BumpLocked(status);
    --in_flight_;
    if (in_flight_ == 0) idle_cv_.notify_all();
  }
  if (state->respond) {
    try {
      state->respond(std::move(response));
    } catch (...) {
    }
  }
}

void SigningService::BumpLocked(StatusCode status) {
  switch (status) {
    case StatusCode::kOk:
      ++counters_.ok;
      break;
    case StatusCode::kRejectedBackpressure:
      ++counters_.rejected_backpressure;
      break;
    case StatusCode::kShedOverload:
      ++counters_.shed_overload;
      break;
    case StatusCode::kDeadlineExceeded:
      ++counters_.deadline_exceeded;
      break;
    case StatusCode::kInternalRetrying:
      ++counters_.retry_exhausted;
      break;
    case StatusCode::kUnknownTenant:
      ++counters_.unknown_tenant;
      break;
    case StatusCode::kUnknownKey:
      ++counters_.unknown_key;
      break;
    case StatusCode::kMalformedRequest:
      ++counters_.malformed;
      break;
    case StatusCode::kShuttingDown:
      ++counters_.shutdown_refused;
      break;
    default:
      break;
  }
}

void SigningService::Wait() {
  {
    std::unique_lock<std::mutex> lk(mu_);
    idle_cv_.wait(lk, [this] { return in_flight_ == 0; });
  }
  // Also drain the ExpService so job-level counters have settled (the
  // last response can fire before its worker retires the issue group).
  exp_->Wait();
}

SigningService::Counters SigningService::Snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  return counters_;
}

core::ExpService::Counters SigningService::ServiceSnapshot() const {
  return exp_->Snapshot();
}

}  // namespace mont::server
