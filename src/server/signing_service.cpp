// signing_service.cpp — the signing front-end's request lifecycle.
//
// The shutdown/retry interlock in one place: every (re)submission of a
// request's CRT half-jobs happens under mu_ with shutting_down_ checked,
// and ~SigningService sets shutting_down_ under mu_ *before* destroying
// the ExpService.  A submit therefore either happens-before shutdown (and
// the ExpService destructor drains it — every callback and continuation
// still runs) or observes the flag and answers kShuttingDown instead.
// Either way each admitted request gets exactly one response and no
// future is abandoned.
#include "server/signing_service.hpp"

#include <cstring>
#include <future>
#include <stdexcept>
#include <string>
#include <utility>

namespace mont::server {

namespace {

std::vector<std::uint8_t> DetailBytes(const char* detail) {
  const std::size_t length = detail == nullptr ? 0 : std::strlen(detail);
  return std::vector<std::uint8_t>(detail, detail + length);
}

}  // namespace

SigningService::SigningService(Keystore keystore, Options options)
    : keystore_(std::move(keystore)),
      options_(std::move(options)),
      max_frame_bytes_(options_.max_frame_bytes),
      chaos_(options_.chaos),
      admission_(options_.admission),
      owned_registry_(options_.service.registry == nullptr
                          ? std::make_unique<obs::Registry>()
                          : nullptr),
      registry_(options_.service.registry != nullptr ? options_.service.registry
                                                     : owned_registry_.get()),
      tracer_(options_.service.tracer) {
  clock_ = options_.service.clock != nullptr ? options_.service.clock
                                             : &steady_clock_;
  metrics_.requests = registry_->GetCounter("server.requests");
  metrics_.pings = registry_->GetCounter("server.pings");
  metrics_.stats_requests = registry_->GetCounter("server.stats_requests");
  metrics_.admitted = registry_->GetCounter("server.admitted");
  metrics_.ok = registry_->GetCounter("server.ok");
  metrics_.rejected_backpressure =
      registry_->GetCounter("server.rejected_backpressure");
  metrics_.shed_overload = registry_->GetCounter("server.shed_overload");
  metrics_.deadline_exceeded =
      registry_->GetCounter("server.deadline_exceeded");
  metrics_.retry_exhausted = registry_->GetCounter("server.retry_exhausted");
  metrics_.shutdown_refused = registry_->GetCounter("server.shutdown_refused");
  metrics_.malformed = registry_->GetCounter("server.malformed");
  metrics_.unknown_tenant = registry_->GetCounter("server.unknown_tenant");
  metrics_.unknown_key = registry_->GetCounter("server.unknown_key");
  metrics_.faults_caught = registry_->GetCounter("server.faults_caught");
  metrics_.internal_retries = registry_->GetCounter("server.internal_retries");
  metrics_.bad_signatures_released =
      registry_->GetCounter("server.bad_signatures_released");
  metrics_.latency_ticks = registry_->GetHistogram("server.latency_ticks");
  for (const std::uint32_t tenant_id : keystore_.TenantIds()) {
    admission_.RegisterTenant(tenant_id, *keystore_.FindTenant(tenant_id));
  }
  keystore_.ForEachKey([this](std::uint32_t tenant_id, std::uint32_t key_id,
                              const crypto::RsaKeyPair& key) {
    using bignum::BigUInt;
    if (key.p == key.q || key.p * key.q != key.n) {
      throw std::invalid_argument(
          "SigningService: malformed CRT key (tenant " +
          std::to_string(tenant_id) + ", key " + std::to_string(key_id) + ")");
    }
    PreparedKey prepared;
    prepared.key = &key;
    prepared.modulus_bytes = (key.n.BitLength() + 7) / 8;
    if (prepared.modulus_bytes < crypto::kPkcs1MinModulusBytes) {
      throw std::invalid_argument(
          "SigningService: modulus too small for PKCS#1 v1.5 / SHA-256 "
          "(need >= 62 bytes)");
    }
    const BigUInt one{1};
    prepared.dp = key.d % (key.p - one);
    prepared.dq = key.d % (key.q - one);
    prepared.q_inv = BigUInt::ModInverse(key.q % key.p, key.p);
    prepared.verify_engine = core::MakeEngine("word-mont", key.n);
    keys_[KeySlot(tenant_id, key_id)] = std::move(prepared);
  });
  auto service_options = options_.service;
  // Every layer shares one registry: the ExpService's jobs.*/sched.*/
  // engine.* counters land next to the server.* ones above.
  service_options.registry = registry_;
  if (chaos_ != nullptr) {
    ChaosLayer* chaos = chaos_;
    service_options.worker_observer = [chaos](std::size_t worker) {
      chaos->OnWorkerIssue(worker);
    };
  }
  service_ = std::make_unique<core::ExpService>(std::move(service_options));
  exp_ = service_.get();
}

SigningService::~SigningService() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutting_down_ = true;
  }
  // Drains every queued half-job and continuation; each in-flight request
  // reaches Finish before this returns.
  service_.reset();
}

std::uint64_t SigningService::NowTicks() const { return clock_->Now(); }

void SigningService::RespondRejected(const ResponseFn& respond,
                                     std::uint64_t request_id,
                                     StatusCode status, const char* detail) {
  Bump(status);
  if (!respond) return;
  SignResponse response;
  response.status = status;
  response.request_id = request_id;
  response.payload = DetailBytes(detail);
  try {
    respond(std::move(response));
  } catch (...) {
  }
}

void SigningService::HandleRequest(std::vector<std::uint8_t> payload,
                                   ResponseFn respond) {
  metrics_.requests.Increment();
  const auto request = DecodeSignRequest(payload);
  if (!request) {
    RespondRejected(respond, 0, StatusCode::kMalformedRequest,
                    "undecodable request payload");
    return;
  }
  if (request->type == RequestType::kPing) {
    metrics_.pings.Increment();
    if (respond) {
      SignResponse response;
      response.request_id = request->request_id;
      try {
        respond(std::move(response));
      } catch (...) {
      }
    }
    return;
  }
  if (request->type == RequestType::kStats) {
    // Deliberately bypasses admission: the ops view must stay readable
    // while the service sheds load (STATS does no engine work).
    metrics_.stats_requests.Increment();
    if (respond) {
      SignResponse response;
      response.request_id = request->request_id;
      const std::string json = registry_->Snapshot().RenderJson();
      response.payload.assign(json.begin(), json.end());
      try {
        respond(std::move(response));
      } catch (...) {
      }
    }
    return;
  }
  if (keystore_.FindTenant(request->tenant_id) == nullptr) {
    RespondRejected(respond, request->request_id, StatusCode::kUnknownTenant,
                    "unknown tenant");
    return;
  }
  const auto key_it = keys_.find(KeySlot(request->tenant_id, request->key_id));
  if (key_it == keys_.end()) {
    RespondRejected(respond, request->request_id, StatusCode::kUnknownKey,
                    "unknown key for tenant");
    return;
  }
  const PreparedKey& prepared = key_it->second;
  // The message representative is computed outside the lock (hashing is
  // the request's only unbounded-input work).
  bignum::BigUInt em =
      crypto::EmsaPkcs1V15Encode(request->message, prepared.modulus_bytes);
  const std::uint64_t now = NowTicks();

  std::unique_lock<std::mutex> lk(mu_);
  if (shutting_down_) {
    lk.unlock();
    RespondRejected(respond, request->request_id, StatusCode::kShuttingDown,
                    "service shutting down");
    return;
  }
  const AdmissionDecision decision = admission_.Admit(request->tenant_id, now);
  if (!decision.admitted) {
    lk.unlock();
    RespondRejected(respond, request->request_id, decision.reason,
                    decision.reason == StatusCode::kShedOverload
                        ? "shed: overload priority cutoff"
                        : "backpressure: tenant budget exhausted");
    return;
  }
  metrics_.admitted.Increment();
  ++in_flight_;
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->Instant("server.admit", request->request_id, 0, now,
                     {{"tenant", request->tenant_id},
                      {"key", request->key_id}});
  }

  auto state = std::make_shared<RequestState>();
  state->request_id = request->request_id;
  state->tenant_id = request->tenant_id;
  state->key = &prepared;
  state->em = std::move(em);
  state->deadline =
      request->deadline_ticks == 0 ? 0 : now + request->deadline_ticks;
  state->admit_tick = now;
  state->respond = std::move(respond);
  SubmitHalvesLocked(state);
}

SignResponse SigningService::HandleRequestSync(
    std::vector<std::uint8_t> payload) {
  std::promise<SignResponse> promise;
  std::future<SignResponse> future = promise.get_future();
  HandleRequest(std::move(payload), [&promise](SignResponse response) {
    promise.set_value(std::move(response));
  });
  return future.get();
}

void SigningService::SubmitHalvesLocked(
    const std::shared_ptr<RequestState>& state) {
  state->remaining.store(2, std::memory_order_relaxed);
  state->p_cancelled = false;
  state->q_cancelled = false;
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->Instant(
        "crt.submit_halves", state->request_id, 0, NowTicks(),
        {{"attempt", static_cast<std::uint64_t>(state->attempts)}});
  }
  const crypto::RsaKeyPair& key = *state->key->key;
  core::ExpJobOptions job_options;
  job_options.deadline = state->deadline;
  // Both half-jobs carry the request id as their trace id, so the
  // engine-level job.run spans correlate with the server.* events.
  job_options.trace_id = state->request_id;
  exp_->Submit(key.p, state->em % key.p, state->key->dp, job_options,
               [this, state](const core::ExpResult& result) {
                 state->mp = result.value;
                 state->p_cancelled = result.cancelled;
                 OnHalfDone(state);
               });
  exp_->Submit(key.q, state->em % key.q, state->key->dq, job_options,
               [this, state](const core::ExpResult& result) {
                 state->mq = result.value;
                 state->q_cancelled = result.cancelled;
                 OnHalfDone(state);
               });
}

void SigningService::OnHalfDone(const std::shared_ptr<RequestState>& state) {
  // acq_rel: the half that arrives second observes the first half's
  // mp/mq write before posting recombination.
  if (state->remaining.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->Instant("crt.join", state->request_id, 0, NowTicks());
  }
  exp_->Post([this, state] { Recombine(state); });
}

void SigningService::Recombine(const std::shared_ptr<RequestState>& state) {
  if (state->p_cancelled || state->q_cancelled) {
    Finish(state, StatusCode::kDeadlineExceeded,
           DetailBytes("deadline expired before engine dispatch"));
    return;
  }
  // Chaos compute-fault injection: flip a bit of the p-half *after* the
  // engines ran and *before* recombination — exactly the fault class the
  // Bellcore check exists for.
  if (chaos_ != nullptr && chaos_->ShouldCorruptCrtHalf()) {
    chaos_->CorruptValue(state->mp);
  }
  const PreparedKey& prepared = *state->key;
  obs::Tracer* const tracer = tracer_;
  const bool tracing = tracer != nullptr && tracer->enabled();
  const std::uint64_t recombine_start = tracing ? NowTicks() : 0;
  const bignum::BigUInt signature =
      crypto::RsaCrtRecombine(*prepared.key, prepared.q_inv, state->mp,
                              state->mq);
  const bool bellcore_ok = crypto::RsaCrtResultOk(
      *prepared.verify_engine, *prepared.key, state->em, signature);
  if (tracing) {
    tracer->Complete("crt.recombine", state->request_id, 0, recombine_start,
                     NowTicks(),
                     {{"bellcore_ok", bellcore_ok ? std::uint64_t{1}
                                                  : std::uint64_t{0}}});
  }
  if (!bellcore_ok) {
    metrics_.faults_caught.Increment();
    if (tracing) {
      tracer->Instant(
          "bellcore.fault", state->request_id, 0, NowTicks(),
          {{"attempt", static_cast<std::uint64_t>(state->attempts)}});
    }
    bool shutdown = false;
    bool retried = false;
    {
      std::lock_guard<std::mutex> lk(mu_);
      shutdown = shutting_down_;
      if (!shutdown && state->attempts < options_.max_internal_retries) {
        ++state->attempts;
        metrics_.internal_retries.Increment();
        SubmitHalvesLocked(state);
        retried = true;
      }
    }
    if (!retried) {
      Finish(state,
             shutdown ? StatusCode::kShuttingDown
                      : StatusCode::kInternalRetrying,
             DetailBytes(shutdown
                             ? "service shutting down during internal retry"
                             : "compute fault persisted across retries; "
                               "no signature released"));
    }
    return;
  }
  Finish(state, StatusCode::kOk,
         signature.ToBytesBE(prepared.modulus_bytes));
}

void SigningService::Finish(const std::shared_ptr<RequestState>& state,
                            StatusCode status,
                            std::vector<std::uint8_t> payload) {
  SignResponse response;
  response.status = status;
  response.request_id = state->request_id;
  response.payload = std::move(payload);
  const std::uint64_t release_tick = NowTicks();
  metrics_.latency_ticks.Record(release_tick >= state->admit_tick
                                    ? release_tick - state->admit_tick
                                    : 0);
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->Instant(
        "server.release", state->request_id, 0, release_tick,
        {{"status", static_cast<std::uint64_t>(status)},
         {"attempts", static_cast<std::uint64_t>(state->attempts)}});
  }
  // Bump before dropping in_flight_ so Wait()-then-Snapshot() observes
  // the final status counter.
  Bump(status);
  {
    std::lock_guard<std::mutex> lk(mu_);
    admission_.OnComplete(state->tenant_id);
    --in_flight_;
    if (in_flight_ == 0) idle_cv_.notify_all();
  }
  if (state->respond) {
    try {
      state->respond(std::move(response));
    } catch (...) {
    }
  }
}

void SigningService::Bump(StatusCode status) {
  switch (status) {
    case StatusCode::kOk:
      metrics_.ok.Increment();
      break;
    case StatusCode::kRejectedBackpressure:
      metrics_.rejected_backpressure.Increment();
      break;
    case StatusCode::kShedOverload:
      metrics_.shed_overload.Increment();
      break;
    case StatusCode::kDeadlineExceeded:
      metrics_.deadline_exceeded.Increment();
      break;
    case StatusCode::kInternalRetrying:
      metrics_.retry_exhausted.Increment();
      break;
    case StatusCode::kUnknownTenant:
      metrics_.unknown_tenant.Increment();
      break;
    case StatusCode::kUnknownKey:
      metrics_.unknown_key.Increment();
      break;
    case StatusCode::kMalformedRequest:
      metrics_.malformed.Increment();
      break;
    case StatusCode::kShuttingDown:
      metrics_.shutdown_refused.Increment();
      break;
    default:
      break;
  }
}

void SigningService::Wait() {
  {
    std::unique_lock<std::mutex> lk(mu_);
    idle_cv_.wait(lk, [this] { return in_flight_ == 0; });
  }
  // Also drain the ExpService so job-level counters have settled (the
  // last response can fire before its worker retires the issue group).
  exp_->Wait();
}

SigningService::Counters SigningService::Snapshot() const {
  Counters counters;
  counters.requests = metrics_.requests.Value();
  counters.pings = metrics_.pings.Value();
  counters.stats_requests = metrics_.stats_requests.Value();
  counters.admitted = metrics_.admitted.Value();
  counters.ok = metrics_.ok.Value();
  counters.rejected_backpressure = metrics_.rejected_backpressure.Value();
  counters.shed_overload = metrics_.shed_overload.Value();
  counters.deadline_exceeded = metrics_.deadline_exceeded.Value();
  counters.retry_exhausted = metrics_.retry_exhausted.Value();
  counters.shutdown_refused = metrics_.shutdown_refused.Value();
  counters.malformed = metrics_.malformed.Value();
  counters.unknown_tenant = metrics_.unknown_tenant.Value();
  counters.unknown_key = metrics_.unknown_key.Value();
  counters.faults_caught = metrics_.faults_caught.Value();
  counters.internal_retries = metrics_.internal_retries.Value();
  counters.bad_signatures_released =
      metrics_.bad_signatures_released.Value();
  return counters;
}

core::ExpService::Counters SigningService::ServiceSnapshot() const {
  return exp_->Snapshot();
}

}  // namespace mont::server
