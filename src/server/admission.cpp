// admission.cpp — token buckets and the watermark/priority shed policy.
#include "server/admission.hpp"

#include <algorithm>
#include <stdexcept>

namespace mont::server {

void TokenBucket::Refill(std::uint64_t now) {
  if (!primed_) {
    tokens_ = capacity_;
    last_refill_ = now;
    primed_ = true;
    return;
  }
  if (period_ == 0) return;
  if (now <= last_refill_) return;
  const std::uint64_t earned = (now - last_refill_) / period_;
  if (earned == 0) return;
  tokens_ = std::min(capacity_, tokens_ + earned);
  // Advance by whole periods only, so fractional progress carries over.
  last_refill_ += earned * period_;
}

bool TokenBucket::TryAcquire(std::uint64_t now) {
  Refill(now);
  if (period_ == 0) return true;  // unlimited rate
  if (tokens_ == 0) return false;
  --tokens_;
  return true;
}

std::uint64_t TokenBucket::Available(std::uint64_t now) {
  Refill(now);
  return period_ == 0 ? capacity_ : tokens_;
}

void AdmissionController::RegisterTenant(std::uint32_t tenant_id,
                                         const TenantConfig& config) {
  TenantState state;
  state.bucket = TokenBucket(config.burst, config.refill_period_ticks);
  state.max_in_flight = config.max_in_flight;
  state.priority = std::clamp(config.priority, 0, kMaxPriority);
  tenants_[tenant_id] = state;
}

int AdmissionController::PriorityCutoff(std::size_t depth) const {
  const std::size_t watermark = config_.queue_high_watermark;
  if (watermark == 0 || depth < watermark) return 0;
  // Linear ramp: cutoff 1 at the watermark, kMaxPriority + 1 (shed
  // everything) at twice the watermark.
  const std::size_t over = depth - watermark;
  const std::size_t cutoff =
      1 + (over * static_cast<std::size_t>(kMaxPriority)) / watermark;
  return static_cast<int>(
      std::min<std::size_t>(cutoff, static_cast<std::size_t>(kMaxPriority) + 1));
}

AdmissionDecision AdmissionController::Admit(std::uint32_t tenant_id,
                                             std::uint64_t now) {
  const auto it = tenants_.find(tenant_id);
  if (it == tenants_.end()) {
    throw std::logic_error("AdmissionController: tenant not registered");
  }
  TenantState& tenant = it->second;
  AdmissionDecision decision;
  // Gate 1 — per-tenant backpressure.  The in-flight bound is checked
  // before the bucket so a refused request does not burn a token.
  if (tenant.in_flight >= tenant.max_in_flight) {
    decision.reason = StatusCode::kRejectedBackpressure;
    return decision;
  }
  // Gate 2 — global overload shedding by priority.  Checked before the
  // bucket too: a shed request should not also drain the tenant's budget.
  if (tenant.priority < PriorityCutoff(global_in_flight_)) {
    decision.reason = StatusCode::kShedOverload;
    return decision;
  }
  if (!tenant.bucket.TryAcquire(now)) {
    decision.reason = StatusCode::kRejectedBackpressure;
    return decision;
  }
  ++tenant.in_flight;
  ++global_in_flight_;
  decision.admitted = true;
  return decision;
}

void AdmissionController::OnComplete(std::uint32_t tenant_id) {
  const auto it = tenants_.find(tenant_id);
  if (it == tenants_.end() || it->second.in_flight == 0 ||
      global_in_flight_ == 0) {
    throw std::logic_error("AdmissionController: OnComplete without Admit");
  }
  --it->second.in_flight;
  --global_in_flight_;
}

std::size_t AdmissionController::TenantInFlight(std::uint32_t tenant_id) const {
  const auto it = tenants_.find(tenant_id);
  return it == tenants_.end() ? 0 : it->second.in_flight;
}

}  // namespace mont::server
