// transport.hpp — the in-process byte transport: the same framed wire
// bytes a TCP adapter would move, without sockets.
//
// Call() serialises the request through the full codec path — encode,
// frame, FrameReader split, decode — on both directions, so every test
// and bench that uses it exercises the real wire.  A ChaosLayer attached
// here injects *transport* faults:
//
//   * dropped request/response frames resolve the future with nullopt
//     (what a client-side timeout looks like — ambiguous by design);
//   * garbled frames reach the service and come back MALFORMED_REQUEST;
//   * the slow tenant's calls are delayed before the service sees them.
//
// An oversize frame is rejected at the transport with kFrameTooLarge and
// never reaches the service — the same check examples/exp_server.cpp's
// TCP adapter applies per connection.
#pragma once

#include <cstdint>
#include <future>
#include <optional>
#include <vector>

#include "server/chaos.hpp"
#include "server/signing_service.hpp"
#include "server/wire.hpp"

namespace mont::server {

class InProcTransport {
 public:
  /// `chaos` is optional and not owned; both must outlive the transport.
  explicit InProcTransport(SigningService& service,
                           ChaosLayer* chaos = nullptr)
      : service_(service), chaos_(chaos) {}

  /// Sends one request; the future resolves with the decoded response, or
  /// nullopt when the request or response frame was dropped (client must
  /// treat that as a timeout).
  std::future<std::optional<SignResponse>> Call(const SignRequest& request);

  /// Raw-bytes variant (malformed/oversize-frame tests): `frame` is a
  /// complete length-prefixed frame; `tenant_hint` routes the slow-tenant
  /// delay (0 = none).
  std::future<std::optional<SignResponse>> CallRaw(
      std::vector<std::uint8_t> frame, std::uint32_t tenant_hint = 0);

 private:
  SigningService& service_;
  ChaosLayer* chaos_ = nullptr;
};

}  // namespace mont::server
