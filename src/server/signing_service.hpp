// signing_service.hpp — the production-grade signing front-end over
// core::ExpService.
//
// One SigningService serves PKCS#1 v1.5 RSA signatures for many tenants
// from a read-only Keystore, and survives the things a production service
// must survive:
//
//   * admission control — per-tenant token buckets + in-flight bounds and
//     a global priority-cutoff shed policy (server/admission.hpp); every
//     refusal is a typed StatusCode, never a silent drop;
//   * deadlines — a request's relative deadline becomes an absolute
//     ExpJobOptions::deadline on both CRT half-jobs, so an expired request
//     is cancelled *inside the scheduler* before it ever reaches an
//     engine (DEADLINE_EXCEEDED, and the array time goes to live work);
//   * fault containment — each signature is recombined off-worker on the
//     continuation thread (pipelined CRT), then gated by the
//     Bellcore/Lenstra check.  A corrupted half (chaos injection or a real
//     compute fault) is caught, the request silently retried up to
//     max_internal_retries, and a bad signature is NEVER released —
//     Counters::bad_signatures_released exists to let tests assert the
//     zero;
//   * clean shutdown — the destructor drains in-flight work; internal
//     retries racing destruction respond kShuttingDown instead of
//     submitting into a stopping service.  Every admitted request gets
//     exactly one response.
//
// The service speaks decoded wire payloads (HandleRequest); framing, the
// oversize check and chaos transport faults live in server/transport.hpp
// and the TCP adapter (examples/exp_server.cpp).
//
// Observability: every counter lives in one obs::Registry
// (Options::service.registry, or a service-owned one) under stable
// dotted names — server.* here, jobs.*/sched.*/engine.* from the
// ExpService below — and the STATS wire verb returns the merged snapshot
// as JSON.  When Options::service.tracer is set, each admitted request
// emits lifecycle events (server.admit → crt.submit_halves → crt.join →
// crt.recombine → bellcore.fault? → server.release) carrying the
// request id, and both CRT half-jobs propagate it as their trace id so
// the engine-level job.run spans correlate.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/exp_service.hpp"
#include "crypto/pkcs1.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "crypto/rsa.hpp"
#include "server/admission.hpp"
#include "server/chaos.hpp"
#include "server/keystore.hpp"
#include "server/wire.hpp"

namespace mont::server {

class SigningService {
 public:
  struct Options {
    /// ExpService configuration (workers, scheduler, engine).  The
    /// service installs its own worker_observer when a ChaosLayer is
    /// attached; engine defaults to the service default ("bit-serial").
    /// `service.registry` (null = service-owned) also receives the
    /// server.* counters and the server.latency_ticks histogram;
    /// `service.tracer` additionally gets the request-lifecycle events.
    core::ExpService::Options service;
    AdmissionController::Config admission;
    /// Internal re-sign attempts after a Bellcore-detected fault before
    /// giving up with kInternalRetrying.
    int max_internal_retries = 2;
    /// Frame-size ceiling advertised to transports/adapters.
    std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
    /// Fault injection (not owned, may be null; must outlive the
    /// service).  Only the compute-fault and worker-stall knobs act here;
    /// transport faults act in InProcTransport.
    ChaosLayer* chaos = nullptr;
  };

  /// Validates every key in the keystore up front (CRT-valid, modulus
  /// large enough for PKCS#1/SHA-256) and precomputes its CRT context —
  /// throws std::invalid_argument rather than serving a bad key.
  explicit SigningService(Keystore keystore)
      : SigningService(std::move(keystore), Options{}) {}
  SigningService(Keystore keystore, Options options);
  /// Drains all in-flight requests (each still gets its one response),
  /// then stops the workers.
  ~SigningService();

  SigningService(const SigningService&) = delete;
  SigningService& operator=(const SigningService&) = delete;

  using ResponseFn = std::function<void(SignResponse)>;

  /// Handles one decoded request payload asynchronously.  `respond` is
  /// invoked exactly once — possibly immediately on the caller's thread
  /// (rejections), possibly later on a service thread (signatures) — and
  /// any exception it throws is contained.  Callers must not destroy the
  /// service while calls are entering; in-flight requests are drained by
  /// the destructor.
  void HandleRequest(std::vector<std::uint8_t> payload, ResponseFn respond);

  /// Synchronous convenience wrapper (blocks for the response).
  SignResponse HandleRequestSync(std::vector<std::uint8_t> payload);

  /// Blocks until no admitted request is in flight AND the underlying
  /// ExpService has retired every job (so counter snapshots are stable).
  void Wait();

  /// Compat snapshot of the server.* registry counters.  The registry
  /// (registry()) is the storage; this struct is materialised per call
  /// for tests that predate it.
  struct Counters {
    std::uint64_t requests = 0;  ///< decoded payloads seen (incl. pings)
    std::uint64_t pings = 0;
    std::uint64_t stats_requests = 0;  ///< STATS verbs answered
    std::uint64_t admitted = 0;
    std::uint64_t ok = 0;
    std::uint64_t rejected_backpressure = 0;
    std::uint64_t shed_overload = 0;
    std::uint64_t deadline_exceeded = 0;
    /// Requests that exhausted max_internal_retries (every attempt caught
    /// by the Bellcore gate) and were answered kInternalRetrying.
    std::uint64_t retry_exhausted = 0;
    std::uint64_t shutdown_refused = 0;
    std::uint64_t malformed = 0;
    std::uint64_t unknown_tenant = 0;
    std::uint64_t unknown_key = 0;
    /// Bellcore-detected faults (== chaos corruptions that reached
    /// recombination, plus any real compute fault).
    std::uint64_t faults_caught = 0;
    /// Internal re-sign attempts issued after a caught fault.
    std::uint64_t internal_retries = 0;
    /// THE invariant counter: a signature released to a client whose
    /// Bellcore check did not pass.  Structurally unreachable — the only
    /// kOk path is behind RsaCrtResultOk — and asserted == 0 by the chaos
    /// suite.
    std::uint64_t bad_signatures_released = 0;
  };
  Counters Snapshot() const;
  /// Underlying ExpService counters (deadline conservation etc.).
  core::ExpService::Counters ServiceSnapshot() const;
  /// The metrics registry every counter lives in (server.* + the
  /// ExpService's jobs.*/sched.*/engine.*): Options::service.registry
  /// when that was set, the service's private one otherwise.  What the
  /// STATS verb renders.
  obs::Registry& registry() const { return *registry_; }
  /// Merged metrics snapshot — the STATS verb's source of truth.
  obs::MetricsSnapshot StatsSnapshot() const { return registry_->Snapshot(); }

  std::size_t MaxFrameBytes() const { return max_frame_bytes_; }
  const Keystore& keystore() const { return keystore_; }
  /// Current service-clock tick (what relative deadlines are added to).
  std::uint64_t NowTicks() const;

 private:
  /// Per-(tenant, key) context hoisted at construction: CRT exponents,
  /// Garner constant, a mod-n verify engine for the Bellcore gate, and
  /// the PKCS#1 encoding length.
  struct PreparedKey {
    const crypto::RsaKeyPair* key = nullptr;
    bignum::BigUInt dp, dq, q_inv;
    std::shared_ptr<const core::MmmEngine> verify_engine;
    std::size_t modulus_bytes = 0;
  };

  /// One admitted request's lifecycle across its two CRT half-jobs.
  struct RequestState {
    std::uint64_t request_id = 0;
    std::uint32_t tenant_id = 0;
    const PreparedKey* key = nullptr;
    bignum::BigUInt em;        ///< PKCS#1 message representative
    std::uint64_t deadline = 0;  ///< absolute tick, 0 = none
    std::uint64_t admit_tick = 0;  ///< for server.latency_ticks
    int attempts = 0;
    std::atomic<int> remaining{2};
    bignum::BigUInt mp, mq;
    bool p_cancelled = false;
    bool q_cancelled = false;
    ResponseFn respond;
  };

  static std::uint64_t KeySlot(std::uint32_t tenant_id, std::uint32_t key_id) {
    return (static_cast<std::uint64_t>(tenant_id) << 32) | key_id;
  }

  /// Responds without touching admission (request was never admitted).
  void RespondRejected(const ResponseFn& respond, std::uint64_t request_id,
                       StatusCode status, const char* detail);
  /// Submits (or resubmits) the request's two CRT half-jobs.  Caller
  /// holds mu_ — that ordering is what makes shutdown airtight: the
  /// destructor sets shutting_down_ under mu_ before the ExpService stops,
  /// so a submit either happens-before shutdown (and is drained) or
  /// observes the flag and never happens.
  void SubmitHalvesLocked(const std::shared_ptr<RequestState>& state);
  void OnHalfDone(const std::shared_ptr<RequestState>& state);
  /// Continuation-thread stage: recombine, Bellcore-gate, retry or
  /// finish.
  void Recombine(const std::shared_ptr<RequestState>& state);
  /// Retires an admitted request with its one response.
  void Finish(const std::shared_ptr<RequestState>& state, StatusCode status,
              std::vector<std::uint8_t> payload);
  /// Maps a final status to its server.* counter.  Registry counters are
  /// lock-free, so no lock is required (call sites that hold mu_ anyway
  /// are fine too).
  void Bump(StatusCode status);

  Keystore keystore_;
  Options options_;
  std::size_t max_frame_bytes_ = kDefaultMaxFrameBytes;
  core::SteadyClock steady_clock_;
  const core::Clock* clock_ = nullptr;
  ChaosLayer* chaos_ = nullptr;
  std::unordered_map<std::uint64_t, PreparedKey> keys_;

  mutable std::mutex mu_;  // admission_, in_flight_, shutdown
  std::condition_variable idle_cv_;
  AdmissionController admission_;
  /// Backs registry() when Options::service.registry is null.
  std::unique_ptr<obs::Registry> owned_registry_;
  obs::Registry* registry_ = nullptr;
  obs::Tracer* tracer_ = nullptr;  ///< Options::service.tracer (may be null)
  struct {
    obs::Counter requests;
    obs::Counter pings;
    obs::Counter stats_requests;
    obs::Counter admitted;
    obs::Counter ok;
    obs::Counter rejected_backpressure;
    obs::Counter shed_overload;
    obs::Counter deadline_exceeded;
    obs::Counter retry_exhausted;
    obs::Counter shutdown_refused;
    obs::Counter malformed;
    obs::Counter unknown_tenant;
    obs::Counter unknown_key;
    obs::Counter faults_caught;
    obs::Counter internal_retries;
    obs::Counter bad_signatures_released;
    obs::Histogram latency_ticks;  ///< admit → release, service-clock ticks
  } metrics_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;

  /// Last member: destroyed first, and reset explicitly by ~SigningService
  /// after shutting_down_ is set — its drain may still run our
  /// continuations, which touch everything above.
  std::unique_ptr<core::ExpService> service_;
  /// Non-owning alias of service_, set once at construction and never
  /// nulled.  All request paths go through this: during destruction,
  /// unique_ptr::reset() nulls service_ *before* running the ExpService
  /// destructor, but worker callbacks still need to Post continuations
  /// while that destructor drains — the alias stays valid for exactly
  /// that window.
  core::ExpService* exp_ = nullptr;
};

}  // namespace mont::server
