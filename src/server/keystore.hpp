// keystore.hpp — per-tenant key material and service-level tenant config.
//
// The keystore is configured up front (AddTenant/AddKey) and then read-only
// while the service runs, so lookups need no lock.  Each tenant carries its
// admission-control parameters (token bucket, in-flight bound) and its
// shedding priority; each key is a full RSA CRT keypair served as
// PKCS#1 v1.5 signatures.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "crypto/rsa.hpp"

namespace mont::server {

struct TenantConfig {
  std::string name;
  /// Shedding priority, higher = more important (kept last under
  /// overload).  Range 0..15.
  int priority = 8;
  /// Token bucket: `burst` tokens capacity, one token refilled every
  /// `refill_period_ticks` clock ticks (0 = unlimited rate).
  std::uint64_t burst = 16;
  std::uint64_t refill_period_ticks = 0;
  /// Per-tenant in-flight bound (admitted, not yet responded).
  std::size_t max_in_flight = 32;
};

class Keystore {
 public:
  /// Registers a tenant (replaces an existing config for the id).
  void AddTenant(std::uint32_t tenant_id, TenantConfig config);
  /// Registers a signing key under a tenant.  Throws std::invalid_argument
  /// when the tenant is unknown.
  void AddKey(std::uint32_t tenant_id, std::uint32_t key_id,
              crypto::RsaKeyPair key);

  const TenantConfig* FindTenant(std::uint32_t tenant_id) const;
  const crypto::RsaKeyPair* FindKey(std::uint32_t tenant_id,
                                    std::uint32_t key_id) const;

  std::vector<std::uint32_t> TenantIds() const;
  std::size_t TenantCount() const { return tenants_.size(); }
  /// Visits every (tenant_id, key_id, key) — the service prepares its
  /// per-key CRT context from this at construction.
  void ForEachKey(
      const std::function<void(std::uint32_t, std::uint32_t,
                               const crypto::RsaKeyPair&)>& fn) const;

 private:
  struct Tenant {
    TenantConfig config;
    std::unordered_map<std::uint32_t, crypto::RsaKeyPair> keys;
  };
  std::unordered_map<std::uint32_t, Tenant> tenants_;
};

}  // namespace mont::server
