// admission.hpp — per-tenant token-bucket admission control and global
// overload shedding for the signing service.
//
// Two independent gates, applied in order:
//
//   1. Per-tenant backpressure (REJECTED_BACKPRESSURE): a deterministic
//      integer token bucket (burst capacity, one token per
//      refill_period_ticks) plus an in-flight bound.  A tenant that
//      floods only ever exhausts *its own* budget.
//   2. Global overload shedding (SHED_OVERLOAD): when total admitted
//      in-flight work passes the queue-depth watermark, a priority
//      cutoff rises linearly with depth — at the watermark every tenant
//      is still admitted, at 2x the watermark even the highest priority
//      (15) is shed.  Low-priority tenants are shed first, and the
//      cutoff is a pure function of (depth, priority): deterministic,
//      monotone, no randomness.
//
// Everything is tick-driven (the caller passes the clock value) and
// integer-only, so admission decisions replay bit-identically in tests.
// Externally synchronised by the service's mutex.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "server/keystore.hpp"
#include "server/wire.hpp"

namespace mont::server {

/// Deterministic integer token bucket: `capacity` tokens, one refilled
/// every `refill_period_ticks` (0 = unlimited rate).
class TokenBucket {
 public:
  TokenBucket() = default;
  TokenBucket(std::uint64_t capacity, std::uint64_t refill_period_ticks)
      : capacity_(capacity), period_(refill_period_ticks) {}

  /// Consumes one token if available at `now`; refill is computed lazily
  /// from whole elapsed periods, so the bucket never drifts.
  bool TryAcquire(std::uint64_t now);
  std::uint64_t Available(std::uint64_t now);

 private:
  void Refill(std::uint64_t now);

  std::uint64_t capacity_ = 0;
  std::uint64_t period_ = 0;
  std::uint64_t tokens_ = 0;
  std::uint64_t last_refill_ = 0;
  bool primed_ = false;  ///< first use fills the bucket to capacity
};

struct AdmissionDecision {
  bool admitted = false;
  /// kRejectedBackpressure or kShedOverload when refused.
  StatusCode reason = StatusCode::kOk;
};

class AdmissionController {
 public:
  struct Config {
    /// Global admitted-in-flight depth at which shedding starts; at
    /// 2 * watermark every request is shed.
    std::size_t queue_high_watermark = 64;
  };
  inline static constexpr int kMaxPriority = 15;

  explicit AdmissionController(Config config) : config_(config) {}

  /// Registers a tenant's bucket/bounds from its config.
  void RegisterTenant(std::uint32_t tenant_id, const TenantConfig& config);

  /// Admission decision for one request of `tenant_id` at tick `now`.
  /// An admitted request MUST later be retired with OnComplete.
  AdmissionDecision Admit(std::uint32_t tenant_id, std::uint64_t now);
  void OnComplete(std::uint32_t tenant_id);

  /// The priority a tenant needs to be admitted at global depth `depth`:
  /// 0 below the watermark, rising linearly to kMaxPriority + 1 at twice
  /// the watermark.
  int PriorityCutoff(std::size_t depth) const;

  std::size_t GlobalInFlight() const { return global_in_flight_; }
  std::size_t TenantInFlight(std::uint32_t tenant_id) const;

 private:
  struct TenantState {
    TokenBucket bucket;
    std::size_t max_in_flight = 0;
    std::size_t in_flight = 0;
    int priority = 0;
  };

  Config config_;
  std::unordered_map<std::uint32_t, TenantState> tenants_;
  std::size_t global_in_flight_ = 0;
};

}  // namespace mont::server
