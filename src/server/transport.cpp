// transport.cpp — in-process framed transport with chaos fault points.
#include "server/transport.hpp"

#include <chrono>
#include <memory>
#include <thread>
#include <utility>

namespace mont::server {

std::future<std::optional<SignResponse>> InProcTransport::Call(
    const SignRequest& request) {
  return CallRaw(Frame(EncodeSignRequest(request)), request.tenant_id);
}

std::future<std::optional<SignResponse>> InProcTransport::CallRaw(
    std::vector<std::uint8_t> frame, std::uint32_t tenant_hint) {
  auto promise =
      std::make_shared<std::promise<std::optional<SignResponse>>>();
  std::future<std::optional<SignResponse>> future = promise->get_future();

  if (chaos_ != nullptr) {
    const std::uint64_t delay = chaos_->SlowTenantDelayMicros(tenant_hint);
    if (delay > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(delay));
    }
    if (chaos_->ShouldDropRequest()) {
      // The frame vanished on the wire: the caller sees a timeout.
      promise->set_value(std::nullopt);
      return future;
    }
    chaos_->MaybeGarbleFrame(frame);
  }

  FrameReader reader(service_.MaxFrameBytes());
  reader.Feed(frame);
  if (reader.OversizeError()) {
    SignResponse response;
    response.status = StatusCode::kFrameTooLarge;
    promise->set_value(std::move(response));
    return future;
  }
  auto payload = reader.Next();
  if (!payload) {
    // Truncated frame: nothing to hand the service — the stream would
    // stay silent until more bytes arrive, so the caller times out.
    promise->set_value(std::nullopt);
    return future;
  }

  ChaosLayer* chaos = chaos_;
  service_.HandleRequest(
      std::move(*payload), [promise, chaos](SignResponse response) {
        if (chaos != nullptr && chaos->ShouldDropResponse()) {
          promise->set_value(std::nullopt);
          return;
        }
        // Round-trip the response through the codec too, so in-proc
        // callers exercise the exact bytes a socket would carry.
        const auto decoded =
            DecodeSignResponse(EncodeSignResponse(response));
        promise->set_value(decoded);
      });
  return future;
}

}  // namespace mont::server
