// client.hpp — the retrying signing client.
//
// The retry policy encodes the safety half of the error taxonomy
// (wire.hpp): statuses where the server *definitely did not execute* the
// request (backpressure, shed, exhausted internal retries) are always
// retryable; *ambiguous* statuses (deadline exceeded, transport timeout —
// the signature may have been computed) are retryable only when the
// caller declared the request idempotent; permanent errors (malformed,
// unknown tenant/key, oversize, shutting down) are never retried.
// Backoff is exponential with deterministic seeded jitter, so tests
// replay the exact retry schedule.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "bignum/random.hpp"
#include "server/transport.hpp"
#include "server/wire.hpp"

namespace mont::server {

struct RetryPolicy {
  std::size_t max_attempts = 4;
  std::uint64_t base_backoff_micros = 200;
  std::uint64_t max_backoff_micros = 5'000;
  /// Per-attempt wait on the transport future before declaring
  /// kTransportTimeout.
  std::uint64_t attempt_timeout_micros = 30'000'000;
  std::uint64_t jitter_seed = 0x7e57c11e;
};

class SigningClient {
 public:
  explicit SigningClient(InProcTransport& transport, RetryPolicy policy = {})
      : transport_(transport), policy_(policy), rng_(policy.jitter_seed) {}

  struct Outcome {
    StatusCode status = StatusCode::kTransportTimeout;
    std::vector<std::uint8_t> signature;  ///< set iff status == kOk
    std::size_t attempts = 0;
  };

  /// Signs `message` with retries per policy.  `idempotent` gates retries
  /// of the ambiguous statuses; a non-idempotent request is NEVER resent
  /// after kDeadlineExceeded or a transport timeout.
  Outcome Sign(std::uint32_t tenant_id, std::uint32_t key_id,
               std::span<const std::uint8_t> message,
               std::uint64_t deadline_ticks = 0, bool idempotent = true);

  /// The taxonomy's retry rule, exposed for tests.
  static bool MayRetry(StatusCode status, bool idempotent);

  /// Deterministic backoff for the given 1-based failed attempt:
  /// exponential from base to max, jittered to [delay/2, delay].
  std::uint64_t BackoffMicros(std::size_t attempt);

 private:
  InProcTransport& transport_;
  RetryPolicy policy_;
  std::mutex rng_mu_;
  bignum::Xoshiro256 rng_;
  std::atomic<std::uint64_t> next_request_id_{1};
};

}  // namespace mont::server
