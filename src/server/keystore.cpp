// keystore.cpp — tenant/key registry for the signing service.
#include "server/keystore.hpp"

#include <stdexcept>
#include <utility>

namespace mont::server {

void Keystore::AddTenant(std::uint32_t tenant_id, TenantConfig config) {
  tenants_[tenant_id].config = std::move(config);
}

void Keystore::AddKey(std::uint32_t tenant_id, std::uint32_t key_id,
                      crypto::RsaKeyPair key) {
  const auto it = tenants_.find(tenant_id);
  if (it == tenants_.end()) {
    throw std::invalid_argument("Keystore::AddKey: unknown tenant");
  }
  it->second.keys[key_id] = std::move(key);
}

const TenantConfig* Keystore::FindTenant(std::uint32_t tenant_id) const {
  const auto it = tenants_.find(tenant_id);
  return it == tenants_.end() ? nullptr : &it->second.config;
}

const crypto::RsaKeyPair* Keystore::FindKey(std::uint32_t tenant_id,
                                            std::uint32_t key_id) const {
  const auto it = tenants_.find(tenant_id);
  if (it == tenants_.end()) return nullptr;
  const auto key = it->second.keys.find(key_id);
  return key == it->second.keys.end() ? nullptr : &key->second;
}

void Keystore::ForEachKey(
    const std::function<void(std::uint32_t, std::uint32_t,
                             const crypto::RsaKeyPair&)>& fn) const {
  for (const auto& [tenant_id, tenant] : tenants_) {
    for (const auto& [key_id, key] : tenant.keys) fn(tenant_id, key_id, key);
  }
}

std::vector<std::uint32_t> Keystore::TenantIds() const {
  std::vector<std::uint32_t> ids;
  ids.reserve(tenants_.size());
  for (const auto& [id, tenant] : tenants_) ids.push_back(id);
  return ids;
}

}  // namespace mont::server
