// wire.hpp — the signing service's length-prefixed binary wire protocol.
//
// Framing: every message travels as  u32-LE payload length || payload.
// FrameReader incrementally splits a byte stream into payloads and
// enforces the maximum frame size (an oversize length prefix is a typed,
// non-recoverable stream error — the TCP adapter answers FRAME_TOO_LARGE
// and closes).  All integers are little-endian; no field is host-order.
//
// Request payload (kSign / kPing / kStats):
//   u16 magic 'MS' | u8 version | u8 type | u64 request_id | u32 tenant_id
//   | u32 key_id | u64 deadline_ticks (relative, 0 = none) | u32 msg_len
//   | msg bytes
// Response payload:
//   u16 magic 'MS' | u8 version | u8 status | u64 request_id
//   | u32 payload_len | payload (signature bytes for kOk, UTF-8 detail
//   otherwise)
//
// The status taxonomy is the service's whole error contract: every
// admission / deadline / overload / fault outcome maps to exactly one
// typed code, so clients can implement retry policy without parsing
// strings — and the chaos suite can assert "shed requests get typed
// errors" mechanically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

namespace mont::server {

inline constexpr std::uint16_t kWireMagic = 0x4d53;  // "MS"
inline constexpr std::uint8_t kWireVersion = 1;
/// Default frame-size ceiling (requests this service handles are tiny; a
/// larger prefix is an attack or a corrupted stream, not a workload).
inline constexpr std::size_t kDefaultMaxFrameBytes = 64 * 1024;

enum class StatusCode : std::uint8_t {
  kOk = 0,
  /// Per-tenant admission refused the request (token bucket empty or the
  /// tenant's in-flight bound reached).  Definitely not executed.
  kRejectedBackpressure = 1,
  /// Global overload shedding dropped the request (queue-depth watermark
  /// + tenant priority cutoff).  Definitely not executed.
  kShedOverload = 2,
  /// The request's deadline expired before its jobs reached an engine.
  kDeadlineExceeded = 3,
  /// A compute fault was caught by the Bellcore check on every internal
  /// retry attempt; no (bad) signature was ever released.
  kInternalRetrying = 4,
  kUnknownTenant = 5,
  kUnknownKey = 6,
  kMalformedRequest = 7,
  kFrameTooLarge = 8,
  kShuttingDown = 9,
  /// Client-side synthetic code: no response arrived in time (the
  /// request may or may not have executed — ambiguous!).  Never sent on
  /// the wire by the server.
  kTransportTimeout = 10,
};

const char* StatusCodeName(StatusCode code);

/// True for outcomes where the request definitely did not execute, so a
/// retry is safe even for non-idempotent requests.  kDeadlineExceeded and
/// kTransportTimeout are *ambiguous* (the work may have run) and return
/// false — the client may retry those only when the caller marked the
/// request idempotent.
bool DefinitelyNotExecuted(StatusCode code);

enum class RequestType : std::uint8_t {
  kSign = 1,
  kPing = 2,
  /// Metrics snapshot: the kOk response payload is the service metrics
  /// registry rendered as JSON (obs::MetricsSnapshot::RenderJson).  The
  /// tenant/key/deadline/message fields are ignored; STATS bypasses
  /// admission so it stays answerable under overload.
  kStats = 3,
};

struct SignRequest {
  RequestType type = RequestType::kSign;
  std::uint64_t request_id = 0;
  std::uint32_t tenant_id = 0;
  std::uint32_t key_id = 0;
  /// Relative deadline in service-clock ticks (nanoseconds on the real
  /// clock); 0 = no deadline.
  std::uint64_t deadline_ticks = 0;
  std::vector<std::uint8_t> message;
};

struct SignResponse {
  StatusCode status = StatusCode::kOk;
  std::uint64_t request_id = 0;
  /// Signature bytes (big-endian, modulus-length) for kOk; a short UTF-8
  /// detail string otherwise.
  std::vector<std::uint8_t> payload;
};

/// Serializes a request/response into a *payload* (no length prefix).
std::vector<std::uint8_t> EncodeSignRequest(const SignRequest& request);
std::vector<std::uint8_t> EncodeSignResponse(const SignResponse& response);

/// Parses a payload; nullopt on bad magic/version/type or truncation.
std::optional<SignRequest> DecodeSignRequest(
    std::span<const std::uint8_t> payload);
std::optional<SignResponse> DecodeSignResponse(
    std::span<const std::uint8_t> payload);

/// Wraps a payload in the u32-LE length prefix.
std::vector<std::uint8_t> Frame(std::span<const std::uint8_t> payload);

/// Incremental stream splitter: feed bytes in arbitrary chunks, pop
/// complete payloads.  A length prefix above `max_frame_bytes` puts the
/// reader into a permanent error state (the stream cannot be resynced).
class FrameReader {
 public:
  explicit FrameReader(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Appends stream bytes and extracts any completed frames.
  void Feed(std::span<const std::uint8_t> bytes);
  /// Pops the next completed payload, if any.
  std::optional<std::vector<std::uint8_t>> Next();
  /// The stream declared a frame larger than max_frame_bytes.
  bool OversizeError() const { return oversize_; }

 private:
  std::size_t max_frame_bytes_;
  std::vector<std::uint8_t> buffer_;
  std::deque<std::vector<std::uint8_t>> ready_;
  bool oversize_ = false;
};

}  // namespace mont::server
