// chaos.hpp — seeded, deterministic fault injection for the signing
// service.  Every knob defaults off; the chaos test suite turns them on
// one at a time and asserts the service's invariants hold:
//
//   knob                  | injected fault            | must hold
//   ----------------------+---------------------------+--------------------
//   stall_worker/_dur     | one ExpService worker     | healthy tenants are
//                         | sleeps before each group  | still served (work
//                         |                           | stealing routes
//                         |                           | around the stall)
//   corrupt_crt_rate      | one CRT half flips a bit  | Bellcore check
//                         | before recombination      | catches it; service
//                         |                           | retries internally;
//                         |                           | zero bad signatures
//   drop_request_rate     | request frame vanishes    | client times out,
//                         |                           | retries per policy
//   drop_response_rate    | response frame vanishes   | ditto (ambiguous —
//                         |                           | idempotent only)
//   garble_frame_rate     | random byte corrupted     | server answers
//                         |                           | MALFORMED_REQUEST
//   slow_tenant(_delay)   | one tenant's requests     | other tenants'
//                         | delayed at the transport  | latency unaffected
//
// The RNG is a single seeded xoshiro stream behind a mutex: runs are
// reproducible per seed (thread interleaving varies, the *decisions
// per draw* do not), and counters record every injection so tests can
// assert faults actually fired.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>

#include "bignum/biguint.hpp"
#include "bignum/random.hpp"
#include "obs/metrics.hpp"

namespace mont::server {

struct ChaosOptions {
  std::uint64_t seed = 0xc4a0c4a0ull;
  /// Worker index to stall (-1 = none) and the stall applied before each
  /// issue group it executes.
  int stall_worker = -1;
  std::uint64_t stall_micros = 0;
  /// Probability (0..1) that a CRT half is bit-flipped pre-recombination.
  double corrupt_crt_rate = 0.0;
  /// Probabilities (0..1) of transport faults.
  double drop_request_rate = 0.0;
  double drop_response_rate = 0.0;
  double garble_frame_rate = 0.0;
  /// Tenant whose requests the transport delays (-1 = none).
  std::int64_t slow_tenant = -1;
  std::uint64_t slow_tenant_micros = 0;
};

class ChaosLayer {
 public:
  /// `registry` (may be null) receives the chaos.* injection counters;
  /// with null the layer owns a private registry so Snapshot() always
  /// works.  Pass the SigningService's registry to get one merged
  /// chaos.* + server.* + jobs.* snapshot from the STATS verb.
  explicit ChaosLayer(ChaosOptions options,
                      obs::Registry* registry = nullptr);

  /// Worker hook (ExpService::Options::worker_observer): sleeps when
  /// `worker` is the stalled one.
  void OnWorkerIssue(std::size_t worker);

  /// One decision per CRT half: corrupt it?  (Counts when true.)
  bool ShouldCorruptCrtHalf();
  /// Flips one pseudo-randomly chosen low bit of `value` in place.
  void CorruptValue(bignum::BigUInt& value);

  bool ShouldDropRequest();
  bool ShouldDropResponse();
  /// Garbles one byte of `frame` in place; returns whether it fired.
  bool MaybeGarbleFrame(std::vector<std::uint8_t>& frame);
  /// Transport-side delay for a tenant's request (microseconds, 0 = none).
  std::uint64_t SlowTenantDelayMicros(std::uint32_t tenant_id) const;

  /// Compat snapshot of the chaos.* registry counters (the struct the
  /// chaos suite predates the obs::Registry with).
  struct Counters {
    std::uint64_t worker_stalls = 0;
    std::uint64_t crt_corruptions = 0;
    std::uint64_t requests_dropped = 0;
    std::uint64_t responses_dropped = 0;
    std::uint64_t frames_garbled = 0;
  };
  Counters Snapshot() const;

 private:
  bool Draw(double rate);

  ChaosOptions options_;
  mutable std::mutex mu_;
  bignum::Xoshiro256 rng_;
  /// Backs the handles when no registry was supplied.
  std::unique_ptr<obs::Registry> owned_registry_;
  struct {
    obs::Counter worker_stalls;
    obs::Counter crt_corruptions;
    obs::Counter requests_dropped;
    obs::Counter responses_dropped;
    obs::Counter frames_garbled;
  } metrics_;
};

}  // namespace mont::server
