// wire.cpp — serialization for the length-prefixed signing protocol.
#include "server/wire.hpp"

namespace mont::server {

namespace {

void PutU16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void PutU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

/// Bounds-checked little-endian cursor; any overrun poisons the read.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint64_t Take(std::size_t bytes) {
    if (failed_ || data_.size() - pos_ < bytes) {
      failed_ = true;
      return 0;
    }
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < bytes; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += bytes;
    return v;
  }

  std::vector<std::uint8_t> TakeBytes(std::size_t count) {
    if (failed_ || data_.size() - pos_ < count) {
      failed_ = true;
      return {};
    }
    std::vector<std::uint8_t> out(data_.begin() + pos_,
                                  data_.begin() + pos_ + count);
    pos_ += count;
    return out;
  }

  bool Done() const { return !failed_ && pos_ == data_.size(); }
  bool Failed() const { return failed_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kRejectedBackpressure:
      return "REJECTED_BACKPRESSURE";
    case StatusCode::kShedOverload:
      return "SHED_OVERLOAD";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kInternalRetrying:
      return "INTERNAL_RETRYING";
    case StatusCode::kUnknownTenant:
      return "UNKNOWN_TENANT";
    case StatusCode::kUnknownKey:
      return "UNKNOWN_KEY";
    case StatusCode::kMalformedRequest:
      return "MALFORMED_REQUEST";
    case StatusCode::kFrameTooLarge:
      return "FRAME_TOO_LARGE";
    case StatusCode::kShuttingDown:
      return "SHUTTING_DOWN";
    case StatusCode::kTransportTimeout:
      return "TRANSPORT_TIMEOUT";
  }
  return "UNKNOWN";
}

bool DefinitelyNotExecuted(StatusCode code) {
  switch (code) {
    case StatusCode::kRejectedBackpressure:
    case StatusCode::kShedOverload:
    case StatusCode::kInternalRetrying:  // result withheld, never released
    case StatusCode::kUnknownTenant:
    case StatusCode::kUnknownKey:
    case StatusCode::kMalformedRequest:
    case StatusCode::kFrameTooLarge:
    case StatusCode::kShuttingDown:
      return true;
    case StatusCode::kOk:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kTransportTimeout:
      return false;
  }
  return false;
}

std::vector<std::uint8_t> EncodeSignRequest(const SignRequest& request) {
  std::vector<std::uint8_t> out;
  out.reserve(32 + request.message.size());
  PutU16(out, kWireMagic);
  out.push_back(kWireVersion);
  out.push_back(static_cast<std::uint8_t>(request.type));
  PutU64(out, request.request_id);
  PutU32(out, request.tenant_id);
  PutU32(out, request.key_id);
  PutU64(out, request.deadline_ticks);
  PutU32(out, static_cast<std::uint32_t>(request.message.size()));
  out.insert(out.end(), request.message.begin(), request.message.end());
  return out;
}

std::vector<std::uint8_t> EncodeSignResponse(const SignResponse& response) {
  std::vector<std::uint8_t> out;
  out.reserve(20 + response.payload.size());
  PutU16(out, kWireMagic);
  out.push_back(kWireVersion);
  out.push_back(static_cast<std::uint8_t>(response.status));
  PutU64(out, response.request_id);
  PutU32(out, static_cast<std::uint32_t>(response.payload.size()));
  out.insert(out.end(), response.payload.begin(), response.payload.end());
  return out;
}

std::optional<SignRequest> DecodeSignRequest(
    std::span<const std::uint8_t> payload) {
  Reader reader(payload);
  if (reader.Take(2) != kWireMagic) return std::nullopt;
  if (reader.Take(1) != kWireVersion) return std::nullopt;
  const std::uint64_t type = reader.Take(1);
  if (type != static_cast<std::uint64_t>(RequestType::kSign) &&
      type != static_cast<std::uint64_t>(RequestType::kPing) &&
      type != static_cast<std::uint64_t>(RequestType::kStats)) {
    return std::nullopt;
  }
  SignRequest request;
  request.type = static_cast<RequestType>(type);
  request.request_id = reader.Take(8);
  request.tenant_id = static_cast<std::uint32_t>(reader.Take(4));
  request.key_id = static_cast<std::uint32_t>(reader.Take(4));
  request.deadline_ticks = reader.Take(8);
  const std::size_t msg_len = static_cast<std::size_t>(reader.Take(4));
  request.message = reader.TakeBytes(msg_len);
  // Trailing garbage is a malformed request, not ignorable padding.
  if (!reader.Done()) return std::nullopt;
  return request;
}

std::optional<SignResponse> DecodeSignResponse(
    std::span<const std::uint8_t> payload) {
  Reader reader(payload);
  if (reader.Take(2) != kWireMagic) return std::nullopt;
  if (reader.Take(1) != kWireVersion) return std::nullopt;
  const std::uint64_t status = reader.Take(1);
  if (status > static_cast<std::uint64_t>(StatusCode::kTransportTimeout)) {
    return std::nullopt;
  }
  SignResponse response;
  response.status = static_cast<StatusCode>(status);
  response.request_id = reader.Take(8);
  const std::size_t len = static_cast<std::size_t>(reader.Take(4));
  response.payload = reader.TakeBytes(len);
  if (!reader.Done()) return std::nullopt;
  return response;
}

std::vector<std::uint8_t> Frame(std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> out;
  out.reserve(4 + payload.size());
  PutU32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

void FrameReader::Feed(std::span<const std::uint8_t> bytes) {
  if (oversize_) return;
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  for (;;) {
    if (buffer_.size() < 4) return;
    // The prefix is serialized little-endian; reassemble portably.
    const std::uint32_t length =
        static_cast<std::uint32_t>(buffer_[0]) |
             (static_cast<std::uint32_t>(buffer_[1]) << 8) |
             (static_cast<std::uint32_t>(buffer_[2]) << 16) |
             (static_cast<std::uint32_t>(buffer_[3]) << 24);
    if (length > max_frame_bytes_) {
      oversize_ = true;
      buffer_.clear();
      return;
    }
    if (buffer_.size() - 4 < length) return;
    ready_.emplace_back(buffer_.begin() + 4, buffer_.begin() + 4 + length);
    buffer_.erase(buffer_.begin(), buffer_.begin() + 4 + length);
  }
}

std::optional<std::vector<std::uint8_t>> FrameReader::Next() {
  if (ready_.empty()) return std::nullopt;
  std::vector<std::uint8_t> payload = std::move(ready_.front());
  ready_.pop_front();
  return payload;
}

}  // namespace mont::server
