// chaos.cpp — deterministic fault injection decisions.
#include "server/chaos.hpp"

#include <chrono>
#include <thread>
#include <vector>

namespace mont::server {

ChaosLayer::ChaosLayer(ChaosOptions options, obs::Registry* registry)
    : options_(options),
      rng_(options.seed),
      owned_registry_(registry == nullptr ? std::make_unique<obs::Registry>()
                                          : nullptr) {
  obs::Registry& reg = registry != nullptr ? *registry : *owned_registry_;
  metrics_.worker_stalls = reg.GetCounter("chaos.worker_stalls");
  metrics_.crt_corruptions = reg.GetCounter("chaos.crt_corruptions");
  metrics_.requests_dropped = reg.GetCounter("chaos.requests_dropped");
  metrics_.responses_dropped = reg.GetCounter("chaos.responses_dropped");
  metrics_.frames_garbled = reg.GetCounter("chaos.frames_garbled");
}

bool ChaosLayer::Draw(double rate) {
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  // 53-bit uniform draw — deterministic per seed, platform-independent.
  const std::uint64_t word = rng_.Next() >> 11;
  const double u = static_cast<double>(word) * 0x1.0p-53;
  return u < rate;
}

void ChaosLayer::OnWorkerIssue(std::size_t worker) {
  if (options_.stall_worker < 0 ||
      static_cast<std::size_t>(options_.stall_worker) != worker) {
    return;
  }
  metrics_.worker_stalls.Increment();
  if (options_.stall_micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(options_.stall_micros));
  }
}

bool ChaosLayer::ShouldCorruptCrtHalf() {
  std::lock_guard<std::mutex> lk(mu_);
  if (!Draw(options_.corrupt_crt_rate)) return false;
  metrics_.crt_corruptions.Increment();
  return true;
}

void ChaosLayer::CorruptValue(bignum::BigUInt& value) {
  std::size_t bit;
  {
    std::lock_guard<std::mutex> lk(mu_);
    const std::size_t bits = value.BitLength();
    bit = bits == 0 ? 0 : static_cast<std::size_t>(rng_.NextBelow(bits));
  }
  // XOR one bit: add it when clear, subtract when set.
  const bignum::BigUInt mask = bignum::BigUInt::PowerOfTwo(bit);
  if (value.Bit(bit)) {
    value -= mask;
  } else {
    value += mask;
  }
}

bool ChaosLayer::ShouldDropRequest() {
  std::lock_guard<std::mutex> lk(mu_);
  if (!Draw(options_.drop_request_rate)) return false;
  metrics_.requests_dropped.Increment();
  return true;
}

bool ChaosLayer::ShouldDropResponse() {
  std::lock_guard<std::mutex> lk(mu_);
  if (!Draw(options_.drop_response_rate)) return false;
  metrics_.responses_dropped.Increment();
  return true;
}

bool ChaosLayer::MaybeGarbleFrame(std::vector<std::uint8_t>& frame) {
  std::lock_guard<std::mutex> lk(mu_);
  if (frame.empty() || !Draw(options_.garble_frame_rate)) return false;
  // Garble past the length prefix so the frame still parses as a frame —
  // the *payload* decode must catch it (bad magic/field/trailing bytes).
  const std::size_t lo = frame.size() > 4 ? 4 : 0;
  const std::size_t index =
      lo + static_cast<std::size_t>(rng_.NextBelow(frame.size() - lo));
  frame[index] ^= static_cast<std::uint8_t>(1 + rng_.NextBelow(255));
  metrics_.frames_garbled.Increment();
  return true;
}

std::uint64_t ChaosLayer::SlowTenantDelayMicros(std::uint32_t tenant_id) const {
  if (options_.slow_tenant < 0 ||
      static_cast<std::uint64_t>(options_.slow_tenant) != tenant_id) {
    return 0;
  }
  return options_.slow_tenant_micros;
}

ChaosLayer::Counters ChaosLayer::Snapshot() const {
  Counters counters;
  counters.worker_stalls = metrics_.worker_stalls.Value();
  counters.crt_corruptions = metrics_.crt_corruptions.Value();
  counters.requests_dropped = metrics_.requests_dropped.Value();
  counters.responses_dropped = metrics_.responses_dropped.Value();
  counters.frames_garbled = metrics_.frames_garbled.Value();
  return counters;
}

}  // namespace mont::server
