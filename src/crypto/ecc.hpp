// ecc.hpp — elliptic-curve point multiplication over GF(p), the paper's
// stated future-work application (§5): "This operation does not require
// modular exponentiation but modular multiplication only, so all required
// components are available."
//
// Field multiplication runs through a registry-selected multiplication
// backend (core/engine.hpp, default "bit-serial" — the paper's Algorithm 2
// with no final subtraction) with values kept in the engine's own
// chainable window, exactly as the hardware would hold them, and every
// field multiplication is counted so point-multiplication latency can be
// quoted in MMMC cycles.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "bignum/biguint.hpp"
#include "core/engine.hpp"
#include "core/exp_service.hpp"

namespace mont::crypto {

/// Short Weierstrass curve y^2 = x^3 + ax + b over GF(p).
struct CurveParams {
  bignum::BigUInt p;
  bignum::BigUInt a;
  bignum::BigUInt b;
  bignum::BigUInt gx;
  bignum::BigUInt gy;
  bignum::BigUInt order;  ///< order of the base point

  /// NIST P-192 / secp192r1 (the ECC size class the paper targets).
  static CurveParams Secp192r1();
  /// A tiny curve over GF(97) for exhaustive testing: y^2 = x^3 + 2x + 3.
  static CurveParams Tiny97();
};

/// Affine point; `infinity` marks the group identity.
struct AffinePoint {
  bignum::BigUInt x;
  bignum::BigUInt y;
  bool infinity = false;

  static AffinePoint Infinity() { return AffinePoint{{}, {}, true}; }
};

bool operator==(const AffinePoint& a, const AffinePoint& b);

/// Field-multiplication counters for the hardware latency model.
struct EccStats {
  std::uint64_t field_mults = 0;    // general products
  std::uint64_t field_squares = 0;  // squarings (same hardware cost)
  /// Total MMMC cycles at 3l+4 per field multiplication.
  std::uint64_t ModeledCycles(std::size_t l) const {
    return (field_mults + field_squares) * (3 * static_cast<std::uint64_t>(l) + 4);
  }
};

/// Curve arithmetic engine.  `engine` names the registry backend the
/// Montgomery-domain field arithmetic runs on (any GF(p) backend works;
/// they are bit-identical, differing only in cycle model).
class Curve {
 public:
  explicit Curve(CurveParams params, std::string_view engine = "bit-serial");

  const CurveParams& Params() const { return params_; }
  const core::MmmEngine& FieldEngine() const { return *field_; }
  AffinePoint Generator() const {
    return AffinePoint{params_.gx, params_.gy, false};
  }
  bool IsOnCurve(const AffinePoint& point) const;

  /// Affine group law (reference implementation with modular inversion).
  AffinePoint Add(const AffinePoint& lhs, const AffinePoint& rhs) const;
  AffinePoint Double(const AffinePoint& point) const;
  AffinePoint Negate(const AffinePoint& point) const;

  /// Scalar multiplication k*P via Jacobian double-and-add over
  /// Montgomery-domain field arithmetic (the hardware path); `stats`
  /// accumulates field-multiplication counts when non-null.
  AffinePoint ScalarMul(const bignum::BigUInt& k, const AffinePoint& point,
                        EccStats* stats = nullptr) const;

  /// Batched scalar multiplication scalars[i]*P driving the exponentiation
  /// service: the ladders run locally, then every Jacobian->affine field
  /// inversion is submitted to `service` as the Fermat exponentiation
  /// z^(p-2) mod p.  All inversions share the modulus p, so the service's
  /// pairing scheduler packs them two per dual-channel array pass.
  std::vector<AffinePoint> ScalarMulBatch(
      std::span<const bignum::BigUInt> scalars, const AffinePoint& point,
      core::ExpService& service, EccStats* stats = nullptr) const;

 private:
  struct Jacobian;  // Montgomery-domain X, Y, Z
  Jacobian ToJacobian(const AffinePoint& point) const;
  AffinePoint FromJacobian(const Jacobian& point, EccStats* stats) const;
  AffinePoint FromJacobianWithInverse(const Jacobian& point,
                                      const bignum::BigUInt& z_inv,
                                      EccStats* stats) const;
  Jacobian Ladder(const bignum::BigUInt& k_mod, const Jacobian& base,
                  EccStats* stats) const;
  Jacobian JacobianDouble(const Jacobian& point, EccStats* stats) const;
  Jacobian JacobianAdd(const Jacobian& lhs, const Jacobian& rhs,
                       EccStats* stats) const;

  // Montgomery-window helpers: values live in [0, window_), where window_
  // is the engine's chainable operand bound (2p for the array designs, p
  // for the word-level software backend).
  bignum::BigUInt MulM(const bignum::BigUInt& a, const bignum::BigUInt& b,
                       EccStats* stats, bool square) const;
  bignum::BigUInt AddM(const bignum::BigUInt& a,
                       const bignum::BigUInt& b) const;
  bignum::BigUInt SubM(const bignum::BigUInt& a,
                       const bignum::BigUInt& b) const;
  bool IsZeroM(const bignum::BigUInt& a) const;

  CurveParams params_;
  std::unique_ptr<core::MmmEngine> field_;
  bignum::BigUInt window_;
  bignum::BigUInt a_mont_;
};

}  // namespace mont::crypto
