#include "crypto/rsa.hpp"

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "bignum/montgomery.hpp"
#include "bignum/prime.hpp"
#include "obs/trace.hpp"

namespace mont::crypto {

using bignum::BigUInt;

RsaKeyPair GenerateRsaKey(std::size_t modulus_bits,
                          bignum::RandomBigUInt& rng) {
  if (modulus_bits < 32 || modulus_bits % 2 != 0) {
    throw std::invalid_argument("GenerateRsaKey: need even modulus_bits >= 32");
  }
  const std::size_t half = modulus_bits / 2;
  for (;;) {
    RsaKeyPair key;
    key.p = bignum::GeneratePrime(half, rng);
    do {
      key.q = bignum::GeneratePrime(half, rng);
    } while (key.q == key.p);
    key.n = key.p * key.q;
    if (key.n.BitLength() != modulus_bits) continue;  // forced top bits make
                                                      // this rare
    const BigUInt p1 = key.p - BigUInt{1};
    const BigUInt q1 = key.q - BigUInt{1};
    const BigUInt lambda = (p1 * q1) / BigUInt::Gcd(p1, q1);
    key.e = BigUInt{65537};
    while (!BigUInt::Gcd(key.e, lambda).IsOne()) key.e += BigUInt{2};
    key.d = BigUInt::ModInverse(key.e, lambda);
    return key;
  }
}

BigUInt RsaPublic(const RsaKeyPair& key, const BigUInt& m,
                  std::string_view engine) {
  if (m >= key.n) throw std::invalid_argument("RsaPublic: message >= modulus");
  return core::MakeEngine(engine, key.n)->ModExp(m, key.e);
}

BigUInt RsaPrivate(const RsaKeyPair& key, const BigUInt& c,
                   std::string_view engine) {
  if (c >= key.n) throw std::invalid_argument("RsaPrivate: input >= modulus");
  return core::MakeEngine(engine, key.n)->ModExp(c, key.d);
}

namespace {

// A CRT key assembled by hand (rather than by GenerateRsaKey) can carry
// p == q or p*q != n; Garner recombination then returns a well-formed
// number that is simply the wrong plaintext.  Reject loudly instead.
void ValidateCrtKey(const RsaKeyPair& key, const char* who) {
  if (key.p == key.q) {
    throw std::invalid_argument(std::string(who) +
                                ": p == q (not a valid CRT key)");
  }
  if (key.p * key.q != key.n) {
    throw std::invalid_argument(std::string(who) + ": p*q != n");
  }
}

// Garner recombination: m = mq + q * (q^-1 (mp - mq) mod p).  q_inv is a
// pure function of the key — callers compute it once (per batch, for
// RsaSignBatch) rather than per message.
BigUInt CrtRecombine(const RsaKeyPair& key, const BigUInt& q_inv,
                     const BigUInt& mp, const BigUInt& mq) {
  BigUInt diff = mp % key.p;
  const BigUInt mq_mod_p = mq % key.p;
  if (diff < mq_mod_p) diff += key.p;
  diff -= mq_mod_p;
  const BigUInt h = (q_inv * diff) % key.p;
  return mq + key.q * h;
}

// Bellcore/Lenstra fault hygiene: a single fault in one CRT half makes
// gcd(sig^e - c, n) a prime factor of n, so a CRT signature must never
// leave the device unverified.  The check is one cheap public
// exponentiation (e is small); `verify_engine` is a mod-n backend —
// batch callers hoist one, single-shot callers build a word-mont.
void VerifyCrtResult(const core::MmmEngine& verify_engine,
                     const RsaKeyPair& key, const BigUInt& input,
                     const BigUInt& sig, const char* who) {
  if (verify_engine.ModExp(sig, key.e) != input) {
    throw std::runtime_error(
        std::string(who) +
        ": CRT fault check failed (sig^e mod n != input); result withheld");
  }
}

void VerifyCrtResult(const RsaKeyPair& key, const BigUInt& input,
                     const BigUInt& sig, const char* who) {
  VerifyCrtResult(*core::MakeEngine("word-mont", key.n), key, input, sig, who);
}

// d + k*order for a fresh k of `bits` bits (k's top bit is forced, so the
// exponent really is randomized); bits == 0 returns d unchanged.
BigUInt BlindExponent(const BigUInt& d, const BigUInt& order,
                      std::size_t bits, bignum::RandomBigUInt& rng) {
  if (bits == 0) return d;
  return d + rng.ExactBits(bits) * order;
}

// The shared CRT core (half exponentiations + Garner recombination) —
// one copy serves the plain and blinded paths, so fault-check or
// recombination fixes cannot diverge between them.  Callers validate the
// key, choose the half exponents, and verify the released signature.
BigUInt CrtExponentiate(const RsaKeyPair& key, const BigUInt& input,
                        const BigUInt& dp, const BigUInt& dq,
                        std::string_view engine) {
  const BigUInt mp = core::MakeEngine(engine, key.p)->ModExp(input % key.p, dp);
  const BigUInt mq = core::MakeEngine(engine, key.q)->ModExp(input % key.q, dq);
  return CrtRecombine(key, BigUInt::ModInverse(key.q % key.p, key.p), mp, mq);
}

// The base-blinding step itself: c -> c * r^e mod n.
BigUInt BlindBaseWith(const BigUInt& c, const BigUInt& e, const BigUInt& n,
                      const core::MmmEngine& engine,
                      const RsaBlindingUnit& unit) {
  return (c * engine.ModExp(unit.r, e)) % n;
}

}  // namespace

RsaBlindingUnit MakeRsaBlindingUnit(const BigUInt& n,
                                    bignum::RandomBigUInt& rng) {
  // Random candidates below n are almost never non-units for RSA moduli,
  // so the rejection loop is effectively one draw.
  for (;;) {
    BigUInt r = rng.Below(n);
    if (r <= BigUInt{1}) continue;
    if (!BigUInt::Gcd(r, n).IsOne()) continue;
    BigUInt r_inv = BigUInt::ModInverse(r, n);
    return {std::move(r), std::move(r_inv)};
  }
}

BigUInt BlindRsaBase(const BigUInt& c, const BigUInt& e, const BigUInt& n,
                     bignum::RandomBigUInt& rng) {
  return BlindBaseWith(c, e, n, *core::MakeEngine("word-mont", n),
                       MakeRsaBlindingUnit(n, rng));
}

BigUInt RsaLambda(const RsaKeyPair& key) {
  if (key.p * key.q != key.n) {
    throw std::invalid_argument("RsaLambda: p*q != n");
  }
  const BigUInt p1 = key.p - BigUInt{1};
  const BigUInt q1 = key.q - BigUInt{1};
  return (p1 * q1) / BigUInt::Gcd(p1, q1);
}

BigUInt RsaPrivateBlinded(const RsaKeyPair& key, const BigUInt& c,
                          bignum::RandomBigUInt& rng,
                          const RsaBlindingOptions& options,
                          std::string_view engine) {
  if (c >= key.n) {
    throw std::invalid_argument("RsaPrivateBlinded: input >= modulus");
  }
  const auto eng = core::MakeEngine(engine, key.n);
  BigUInt input = c;
  RsaBlindingUnit unit;
  if (options.blind_base) {
    unit = MakeRsaBlindingUnit(key.n, rng);
    input = BlindBaseWith(input, key.e, key.n, *eng, unit);
  }
  BigUInt d_eff = key.d;
  if (options.exponent_blind_bits > 0) {
    // Exponent randomization needs the group order, i.e. the key's
    // factorization — RsaLambda rejects keys whose p/q are not the real
    // factors instead of silently computing a wrong-order blinding.
    d_eff = BlindExponent(key.d, RsaLambda(key), options.exponent_blind_bits,
                          rng);
  }
  BigUInt m = eng->ModExp(input, d_eff);
  if (options.blind_base) m = (m * unit.r_inv) % key.n;
  return m;
}

BigUInt RsaPrivateCrtBlinded(const RsaKeyPair& key, const BigUInt& c,
                             bignum::RandomBigUInt& rng,
                             const RsaBlindingOptions& options,
                             std::string_view engine) {
  if (c >= key.n) {
    throw std::invalid_argument("RsaPrivateCrtBlinded: input >= modulus");
  }
  ValidateCrtKey(key, "RsaPrivateCrtBlinded");
  BigUInt input = c;
  RsaBlindingUnit unit;
  if (options.blind_base) {
    // Blind once mod n, before the CRT split, so *both* half-
    // exponentiations run on residues of the blinded value.
    unit = MakeRsaBlindingUnit(key.n, rng);
    input = BlindBaseWith(input, key.e, key.n,
                          *core::MakeEngine(engine, key.n), unit);
  }
  const BigUInt p1 = key.p - BigUInt{1};
  const BigUInt q1 = key.q - BigUInt{1};
  BigUInt sig = CrtExponentiate(
      key, input, BlindExponent(key.d % p1, p1, options.exponent_blind_bits, rng),
      BlindExponent(key.d % q1, q1, options.exponent_blind_bits, rng), engine);
  if (options.blind_base) sig = (sig * unit.r_inv) % key.n;
  // Fault hygiene checks the released (unblinded) signature against the
  // original input — a fault anywhere in the blinded pipeline is caught.
  VerifyCrtResult(key, c, sig, "RsaPrivateCrtBlinded");
  return sig;
}

BigUInt RsaPrivateCrt(const RsaKeyPair& key, const BigUInt& c,
                      std::string_view engine) {
  if (c >= key.n) throw std::invalid_argument("RsaPrivateCrt: input >= modulus");
  ValidateCrtKey(key, "RsaPrivateCrt");
  const BigUInt sig = CrtExponentiate(key, c, key.d % (key.p - BigUInt{1}),
                                      key.d % (key.q - BigUInt{1}), engine);
  VerifyCrtResult(key, c, sig, "RsaPrivateCrt");
  return sig;
}

BigUInt RsaPrivateCrtPaired(const RsaKeyPair& key, const BigUInt& c,
                            core::EngineStats* stats,
                            std::string_view engine) {
  if (c >= key.n) {
    throw std::invalid_argument("RsaPrivateCrtPaired: input >= modulus");
  }
  ValidateCrtKey(key, "RsaPrivateCrtPaired");
  const BigUInt dp = key.d % (key.p - BigUInt{1});
  const BigUInt dq = key.d % (key.q - BigUInt{1});
  const auto engine_p = core::MakeEngine(engine, key.p);
  const auto engine_q = core::MakeEngine(engine, key.q);
  BigUInt mp, mq;
  if (engine_p->l() == engine_q->l() && engine_p->Caps().pairable_streams) {
    // The two half-exponentiations share the array: p on channel A, q on
    // channel B of one dual-modulus interleaved multiplier.  (A backend
    // without pairable streams falls back to sequential issue below, like
    // unequal prime lengths.)
    core::PairedExpResult paired = core::PairedModExp(
        *engine_p, c % key.p, dp, *engine_q, c % key.q, dq);
    mp = std::move(paired.a);
    mq = std::move(paired.b);
    if (stats != nullptr) *stats = paired.stats;
  } else {
    // Unequal prime lengths cannot share cells; issue sequentially.
    core::EngineStats stats_p, stats_q;
    mp = engine_p->ModExp(c % key.p, dp, &stats_p);
    mq = engine_q->ModExp(c % key.q, dq, &stats_q);
    if (stats != nullptr) {
      *stats = {};
      stats->single_issues =
          stats_p.mmm_invocations + stats_q.mmm_invocations;
      stats->engine_cycles = stats_p.engine_cycles + stats_q.engine_cycles;
    }
  }
  const BigUInt sig =
      CrtRecombine(key, BigUInt::ModInverse(key.q % key.p, key.p), mp, mq);
  VerifyCrtResult(key, c, sig, "RsaPrivateCrtPaired");
  return sig;
}

std::vector<BigUInt> RsaSignBatch(const RsaKeyPair& key,
                                  std::span<const BigUInt> messages,
                                  core::ExpService& service) {
  // A GF(2^m)-configured service would accept p and q as "field
  // polynomials" (any odd prime has f(0) = 1) and compute carry-less
  // nonsense that the fault check would then misreport as a fault.
  if (service.options().engine_options.field != core::EngineField::kGfP) {
    throw std::invalid_argument(
        "RsaSignBatch: the service must run a GF(p) engine");
  }
  ValidateCrtKey(key, "RsaSignBatch");
  // Fail fast before any pair is queued: a bad message mid-span must not
  // leave earlier jobs burning worker time for futures nobody will read.
  for (const BigUInt& message : messages) {
    if (message >= key.n) {
      throw std::invalid_argument("RsaSignBatch: message >= modulus");
    }
  }
  const BigUInt dp = key.d % (key.p - BigUInt{1});
  const BigUInt dq = key.d % (key.q - BigUInt{1});

  // When the service carries a tracer, the whole batch gets an rsa.batch
  // span and each message's recombination an rsa.recombine instant; the
  // half-jobs take message-index trace ids so their job.run spans
  // correlate across the p/q halves.
  obs::Tracer* const tracer = service.options().tracer;
  const bool tracing = tracer != nullptr && tracer->enabled();
  const std::uint64_t batch_start = tracing ? obs::Tracer::NowTicks() : 0;

  // Pipelined CRT: the p- and q-halves go in as *independent* jobs, so
  // each half completes on its own (the scheduler pairs equal-length
  // halves opportunistically — same message or across messages) and the
  // second-arriving half posts Garner recombination + the
  // Bellcore/Lenstra fault check to the service's continuation thread.
  // No worker array ever stalls on recombination, and a slow q-half
  // can't block the next message's p-half from issuing.
  //
  // Everything a callback/continuation touches is owned by shared state
  // (no references into this frame): if a Submit throws mid-batch, the
  // in-flight halves of earlier messages still complete safely.
  struct BatchContext {
    RsaKeyPair key;
    BigUInt q_inv;
    std::shared_ptr<const core::MmmEngine> verify_engine;
  };
  struct MessageState {
    BigUInt message;
    BigUInt mp, mq;
    std::atomic<int> remaining{2};
    std::promise<BigUInt> signature;
  };
  auto context = std::make_shared<BatchContext>();
  context->key = key;
  context->q_inv = BigUInt::ModInverse(key.q % key.p, key.p);
  context->verify_engine = core::MakeEngine("word-mont", key.n);

  std::vector<std::pair<std::future<core::ExpService::Result>,
                        std::future<core::ExpService::Result>>>
      halves;
  std::vector<std::future<BigUInt>> recombined;
  halves.reserve(messages.size());
  recombined.reserve(messages.size());
  for (std::size_t index = 0; index < messages.size(); ++index) {
    const BigUInt& message = messages[index];
    auto state = std::make_shared<MessageState>();
    state->message = message;
    recombined.push_back(state->signature.get_future());
    const std::uint64_t trace_id = static_cast<std::uint64_t>(index) + 1;
    // Whichever half lands second owns the continuation handoff.  The
    // acq_rel decrement makes both halves' writes visible to it (and,
    // through the continuation queue, to the recombining thread).
    const auto finish_half = [&service, context, state, tracer, trace_id] {
      if (state->remaining.fetch_sub(1, std::memory_order_acq_rel) != 1) {
        return;
      }
      service.Post([context, state, tracer, trace_id] {
        try {
          BigUInt sig = CrtRecombine(context->key, context->q_inv, state->mp,
                                     state->mq);
          VerifyCrtResult(*context->verify_engine, context->key,
                          state->message, sig, "RsaSignBatch");
          if (tracer != nullptr && tracer->enabled()) {
            tracer->Instant("rsa.recombine", trace_id, 0,
                            obs::Tracer::NowTicks());
          }
          state->signature.set_value(std::move(sig));
        } catch (...) {
          state->signature.set_exception(std::current_exception());
        }
      });
    };
    core::ExpJobOptions job_options;
    job_options.trace_id = trace_id;
    auto p_half = service.Submit(
        key.p, message % key.p, dp, job_options,
        [state, finish_half](const core::ExpService::Result& result) {
          state->mp = result.value;
          finish_half();
        });
    auto q_half = service.Submit(
        key.q, message % key.q, dq, job_options,
        [state, finish_half](const core::ExpService::Result& result) {
          state->mq = result.value;
          finish_half();
        });
    halves.emplace_back(std::move(p_half), std::move(q_half));
  }
  // Half futures resolve unconditionally (value or exception), so they
  // are waited first — a failed half means its callback never ran and
  // the recombination future would never materialise.
  for (auto& pair : halves) {
    pair.first.get();
    pair.second.get();
  }
  std::vector<BigUInt> signatures;
  signatures.reserve(messages.size());
  for (auto& future : recombined) signatures.push_back(future.get());
  if (tracing) {
    tracer->Complete(
        "rsa.batch", 0, 0, batch_start, obs::Tracer::NowTicks(),
        {{"messages", static_cast<std::uint64_t>(messages.size())}});
  }
  return signatures;
}

BigUInt RsaCrtRecombine(const RsaKeyPair& key, const BigUInt& q_inv,
                        const BigUInt& mp, const BigUInt& mq) {
  return CrtRecombine(key, q_inv, mp, mq);
}

bool RsaCrtResultOk(const core::MmmEngine& verify_engine,
                    const RsaKeyPair& key, const BigUInt& input,
                    const BigUInt& sig) {
  return verify_engine.ModExp(sig, key.e) == input;
}

BigUInt RsaPrivateOnHardwareModel(const RsaKeyPair& key, const BigUInt& c,
                                  core::EngineStats* stats,
                                  std::string_view engine) {
  if (c >= key.n) {
    throw std::invalid_argument("RsaPrivateOnHardwareModel: input >= modulus");
  }
  return core::MakeEngine(engine, key.n)->ModExp(c, key.d, stats);
}

}  // namespace mont::crypto
