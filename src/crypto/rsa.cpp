#include "crypto/rsa.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "bignum/montgomery.hpp"
#include "bignum/prime.hpp"

namespace mont::crypto {

using bignum::BigUInt;

RsaKeyPair GenerateRsaKey(std::size_t modulus_bits,
                          bignum::RandomBigUInt& rng) {
  if (modulus_bits < 32 || modulus_bits % 2 != 0) {
    throw std::invalid_argument("GenerateRsaKey: need even modulus_bits >= 32");
  }
  const std::size_t half = modulus_bits / 2;
  for (;;) {
    RsaKeyPair key;
    key.p = bignum::GeneratePrime(half, rng);
    do {
      key.q = bignum::GeneratePrime(half, rng);
    } while (key.q == key.p);
    key.n = key.p * key.q;
    if (key.n.BitLength() != modulus_bits) continue;  // forced top bits make
                                                      // this rare
    const BigUInt p1 = key.p - BigUInt{1};
    const BigUInt q1 = key.q - BigUInt{1};
    const BigUInt lambda = (p1 * q1) / BigUInt::Gcd(p1, q1);
    key.e = BigUInt{65537};
    while (!BigUInt::Gcd(key.e, lambda).IsOne()) key.e += BigUInt{2};
    key.d = BigUInt::ModInverse(key.e, lambda);
    return key;
  }
}

BigUInt RsaPublic(const RsaKeyPair& key, const BigUInt& m) {
  if (m >= key.n) throw std::invalid_argument("RsaPublic: message >= modulus");
  const bignum::WordMontgomery ctx(key.n);
  return ctx.ModExp(m, key.e);
}

BigUInt RsaPrivate(const RsaKeyPair& key, const BigUInt& c) {
  if (c >= key.n) throw std::invalid_argument("RsaPrivate: input >= modulus");
  const bignum::WordMontgomery ctx(key.n);
  return ctx.ModExp(c, key.d);
}

namespace {

// A CRT key assembled by hand (rather than by GenerateRsaKey) can carry
// p == q or p*q != n; Garner recombination then returns a well-formed
// number that is simply the wrong plaintext.  Reject loudly instead.
void ValidateCrtKey(const RsaKeyPair& key, const char* who) {
  if (key.p == key.q) {
    throw std::invalid_argument(std::string(who) +
                                ": p == q (not a valid CRT key)");
  }
  if (key.p * key.q != key.n) {
    throw std::invalid_argument(std::string(who) + ": p*q != n");
  }
}

// Garner recombination: m = mq + q * (q^-1 (mp - mq) mod p).  q_inv is a
// pure function of the key — callers compute it once (per batch, for
// RsaSignBatch) rather than per message.
BigUInt CrtRecombine(const RsaKeyPair& key, const BigUInt& q_inv,
                     const BigUInt& mp, const BigUInt& mq) {
  BigUInt diff = mp % key.p;
  const BigUInt mq_mod_p = mq % key.p;
  if (diff < mq_mod_p) diff += key.p;
  diff -= mq_mod_p;
  const BigUInt h = (q_inv * diff) % key.p;
  return mq + key.q * h;
}

}  // namespace

BigUInt RsaPrivateCrt(const RsaKeyPair& key, const BigUInt& c) {
  if (c >= key.n) throw std::invalid_argument("RsaPrivateCrt: input >= modulus");
  ValidateCrtKey(key, "RsaPrivateCrt");
  const BigUInt dp = key.d % (key.p - BigUInt{1});
  const BigUInt dq = key.d % (key.q - BigUInt{1});
  const bignum::WordMontgomery ctx_p(key.p);
  const bignum::WordMontgomery ctx_q(key.q);
  const BigUInt mp = ctx_p.ModExp(c % key.p, dp);
  const BigUInt mq = ctx_q.ModExp(c % key.q, dq);
  return CrtRecombine(key, BigUInt::ModInverse(key.q % key.p, key.p), mp, mq);
}

BigUInt RsaPrivateCrtPaired(const RsaKeyPair& key, const BigUInt& c,
                            core::PairedExpStats* stats) {
  if (c >= key.n) {
    throw std::invalid_argument("RsaPrivateCrtPaired: input >= modulus");
  }
  ValidateCrtKey(key, "RsaPrivateCrtPaired");
  const BigUInt dp = key.d % (key.p - BigUInt{1});
  const BigUInt dq = key.d % (key.q - BigUInt{1});
  const bignum::BitSerialMontgomery ctx_p(key.p);
  const bignum::BitSerialMontgomery ctx_q(key.q);
  BigUInt mp, mq;
  if (ctx_p.l() == ctx_q.l()) {
    // The two half-exponentiations share the array: p on channel A, q on
    // channel B of one dual-modulus interleaved multiplier.
    core::PairedExpResult paired = core::PairedModExp(
        ctx_p, c % key.p, dp, ctx_q, c % key.q, dq, core::PairedEngine::kFast);
    mp = std::move(paired.a);
    mq = std::move(paired.b);
    if (stats != nullptr) *stats = paired.stats;
  } else {
    // Unequal prime lengths cannot share cells; issue sequentially.
    core::Exponentiator exp_p(key.p), exp_q(key.q);
    core::ExponentiationStats stats_p, stats_q;
    mp = exp_p.ModExp(c % key.p, dp, &stats_p);
    mq = exp_q.ModExp(c % key.q, dq, &stats_q);
    if (stats != nullptr) {
      stats->paired_issues = 0;
      stats->single_issues =
          stats_p.mmm_invocations + stats_q.mmm_invocations;
      stats->total_cycles =
          stats_p.measured_mmm_cycles + stats_q.measured_mmm_cycles;
    }
  }
  return CrtRecombine(key, BigUInt::ModInverse(key.q % key.p, key.p), mp, mq);
}

std::vector<BigUInt> RsaSignBatch(const RsaKeyPair& key,
                                  std::span<const BigUInt> messages,
                                  core::ExpService& service) {
  ValidateCrtKey(key, "RsaSignBatch");
  // Fail fast before any pair is queued: a bad message mid-span must not
  // leave earlier jobs burning worker time for futures nobody will read.
  for (const BigUInt& message : messages) {
    if (message >= key.n) {
      throw std::invalid_argument("RsaSignBatch: message >= modulus");
    }
  }
  const BigUInt dp = key.d % (key.p - BigUInt{1});
  const BigUInt dq = key.d % (key.q - BigUInt{1});
  const BigUInt q_inv = BigUInt::ModInverse(key.q % key.p, key.p);
  std::vector<std::pair<std::future<core::ExpService::Result>,
                        std::future<core::ExpService::Result>>>
      halves;
  halves.reserve(messages.size());
  for (const BigUInt& message : messages) {
    halves.push_back(service.SubmitPair(key.p, message % key.p, dp, key.q,
                                        message % key.q, dq));
  }
  std::vector<BigUInt> signatures;
  signatures.reserve(messages.size());
  for (auto& [future_p, future_q] : halves) {
    const BigUInt mp = future_p.get().value;
    const BigUInt mq = future_q.get().value;
    signatures.push_back(CrtRecombine(key, q_inv, mp, mq));
  }
  return signatures;
}

BigUInt RsaPrivateOnHardwareModel(const RsaKeyPair& key, const BigUInt& c,
                                  core::ExponentiationStats* stats) {
  if (c >= key.n) {
    throw std::invalid_argument("RsaPrivateOnHardwareModel: input >= modulus");
  }
  core::Exponentiator exp(key.n, core::Exponentiator::Engine::kFast);
  return exp.ModExp(c, key.d, stats);
}

}  // namespace mont::crypto
