#include "crypto/rsa.hpp"

#include <stdexcept>

#include "bignum/montgomery.hpp"
#include "bignum/prime.hpp"

namespace mont::crypto {

using bignum::BigUInt;

RsaKeyPair GenerateRsaKey(std::size_t modulus_bits,
                          bignum::RandomBigUInt& rng) {
  if (modulus_bits < 32 || modulus_bits % 2 != 0) {
    throw std::invalid_argument("GenerateRsaKey: need even modulus_bits >= 32");
  }
  const std::size_t half = modulus_bits / 2;
  for (;;) {
    RsaKeyPair key;
    key.p = bignum::GeneratePrime(half, rng);
    do {
      key.q = bignum::GeneratePrime(half, rng);
    } while (key.q == key.p);
    key.n = key.p * key.q;
    if (key.n.BitLength() != modulus_bits) continue;  // forced top bits make
                                                      // this rare
    const BigUInt p1 = key.p - BigUInt{1};
    const BigUInt q1 = key.q - BigUInt{1};
    const BigUInt lambda = (p1 * q1) / BigUInt::Gcd(p1, q1);
    key.e = BigUInt{65537};
    while (!BigUInt::Gcd(key.e, lambda).IsOne()) key.e += BigUInt{2};
    key.d = BigUInt::ModInverse(key.e, lambda);
    return key;
  }
}

BigUInt RsaPublic(const RsaKeyPair& key, const BigUInt& m) {
  if (m >= key.n) throw std::invalid_argument("RsaPublic: message >= modulus");
  const bignum::WordMontgomery ctx(key.n);
  return ctx.ModExp(m, key.e);
}

BigUInt RsaPrivate(const RsaKeyPair& key, const BigUInt& c) {
  if (c >= key.n) throw std::invalid_argument("RsaPrivate: input >= modulus");
  const bignum::WordMontgomery ctx(key.n);
  return ctx.ModExp(c, key.d);
}

BigUInt RsaPrivateCrt(const RsaKeyPair& key, const BigUInt& c) {
  if (c >= key.n) throw std::invalid_argument("RsaPrivateCrt: input >= modulus");
  const BigUInt dp = key.d % (key.p - BigUInt{1});
  const BigUInt dq = key.d % (key.q - BigUInt{1});
  const bignum::WordMontgomery ctx_p(key.p);
  const bignum::WordMontgomery ctx_q(key.q);
  const BigUInt mp = ctx_p.ModExp(c % key.p, dp);
  const BigUInt mq = ctx_q.ModExp(c % key.q, dq);
  // Garner recombination: m = mq + q * (q^-1 (mp - mq) mod p).
  const BigUInt q_inv = BigUInt::ModInverse(key.q % key.p, key.p);
  BigUInt diff = mp % key.p;
  const BigUInt mq_mod_p = mq % key.p;
  if (diff < mq_mod_p) diff += key.p;
  diff -= mq_mod_p;
  const BigUInt h = (q_inv * diff) % key.p;
  return mq + key.q * h;
}

BigUInt RsaPrivateOnHardwareModel(const RsaKeyPair& key, const BigUInt& c,
                                  core::ExponentiationStats* stats) {
  core::Exponentiator exp(key.n, core::Exponentiator::Engine::kFast);
  return exp.ModExp(c, key.d, stats);
}

}  // namespace mont::crypto
