#include "crypto/ecc2.hpp"

#include <stdexcept>

namespace mont::crypto {

using bignum::BigUInt;
using bignum::Gf2Field;

BinaryCurveParams BinaryCurveParams::Koblitz163() {
  return BinaryCurveParams{Gf2Field::Nist163().Modulus(), BigUInt{1},
                           BigUInt{1}};
}

BinaryCurveParams BinaryCurveParams::Tiny16() {
  return BinaryCurveParams{BigUInt{0b10011}, BigUInt{1}, BigUInt{1}};
}

BinaryCurveParams BinaryCurveParams::Aes256() {
  return BinaryCurveParams{BigUInt{0x11b}, BigUInt{1}, BigUInt{1}};
}

bool operator==(const BinaryPoint& a, const BinaryPoint& b) {
  if (a.infinity || b.infinity) return a.infinity == b.infinity;
  return a.x == b.x && a.y == b.y;
}

BinaryCurve::BinaryCurve(BinaryCurveParams params)
    : params_(params), field_(params.f) {
  if (params_.b.IsZero()) {
    throw std::invalid_argument("BinaryCurve: b must be nonzero");
  }
}

BigUInt BinaryCurve::Mul(const BigUInt& a, const BigUInt& b,
                         BinaryEccStats* stats) const {
  if (stats != nullptr) ++stats->field_mults;
  return field_.Mul(a, b);
}

BigUInt BinaryCurve::Inv(const BigUInt& a, BinaryEccStats* stats) const {
  if (stats != nullptr) ++stats->field_inversions;
  return field_.Inverse(a);
}

bool BinaryCurve::IsOnCurve(const BinaryPoint& point) const {
  if (point.infinity) return true;
  // y^2 + xy == x^3 + a x^2 + b
  const BigUInt lhs =
      field_.Add(field_.Square(point.y), field_.Mul(point.x, point.y));
  const BigUInt x2 = field_.Square(point.x);
  const BigUInt rhs = field_.Add(
      field_.Add(field_.Mul(x2, point.x), field_.Mul(params_.a, x2)),
      params_.b);
  return lhs == rhs;
}

BinaryPoint BinaryCurve::Negate(const BinaryPoint& point) const {
  if (point.infinity) return point;
  return BinaryPoint{point.x, field_.Add(point.x, point.y), false};
}

BinaryPoint BinaryCurve::Add(const BinaryPoint& lhs, const BinaryPoint& rhs,
                             BinaryEccStats* stats) const {
  if (lhs.infinity) return rhs;
  if (rhs.infinity) return lhs;
  if (lhs.x == rhs.x) {
    if (lhs.y == rhs.y) return Double(lhs, stats);
    return BinaryPoint::Infinity();  // P + (-P)
  }
  // lambda = (y1 + y2) / (x1 + x2)
  const BigUInt dx = field_.Add(lhs.x, rhs.x);
  const BigUInt lambda =
      Mul(field_.Add(lhs.y, rhs.y), Inv(dx, stats), stats);
  // x3 = lambda^2 + lambda + x1 + x2 + a
  const BigUInt x3 = field_.Add(
      field_.Add(field_.Add(Mul(lambda, lambda, stats), lambda), dx),
      params_.a);
  // y3 = lambda*(x1 + x3) + x3 + y1
  const BigUInt y3 = field_.Add(
      field_.Add(Mul(lambda, field_.Add(lhs.x, x3), stats), x3), lhs.y);
  return BinaryPoint{x3, y3, false};
}

BinaryPoint BinaryCurve::Double(const BinaryPoint& point,
                                BinaryEccStats* stats) const {
  if (point.infinity || point.x.IsZero()) return BinaryPoint::Infinity();
  // lambda = x + y/x
  const BigUInt lambda =
      field_.Add(point.x, Mul(point.y, Inv(point.x, stats), stats));
  // x3 = lambda^2 + lambda + a
  const BigUInt x3 =
      field_.Add(field_.Add(Mul(lambda, lambda, stats), lambda), params_.a);
  // y3 = x^2 + (lambda + 1)*x3
  const BigUInt y3 = field_.Add(
      Mul(point.x, point.x, stats),
      Mul(field_.Add(lambda, BigUInt{1}), x3, stats));
  return BinaryPoint{x3, y3, false};
}

BinaryPoint BinaryCurve::ScalarMul(const BigUInt& k, const BinaryPoint& point,
                                   BinaryEccStats* stats) const {
  if (k.IsZero() || point.infinity) return BinaryPoint::Infinity();
  BinaryPoint acc = point;
  for (std::size_t i = k.BitLength() - 1; i-- > 0;) {
    acc = Double(acc, stats);
    if (k.Bit(i)) acc = Add(acc, point, stats);
  }
  return acc;
}

std::vector<BinaryPoint> BinaryCurve::EnumeratePoints() const {
  const std::size_t m = field_.Degree();
  if (m > 10) {
    throw std::invalid_argument("EnumeratePoints: field too large");
  }
  std::vector<BinaryPoint> points;
  const std::uint64_t size = 1ull << m;
  for (std::uint64_t x = 0; x < size; ++x) {
    for (std::uint64_t y = 0; y < size; ++y) {
      const BinaryPoint p{BigUInt{x}, BigUInt{y}, false};
      if (IsOnCurve(p)) points.push_back(p);
    }
  }
  return points;
}

}  // namespace mont::crypto
