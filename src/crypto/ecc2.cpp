#include "crypto/ecc2.hpp"

#include <optional>
#include <stdexcept>

namespace mont::crypto {

using bignum::BigUInt;
using bignum::Gf2Field;

BinaryCurveParams BinaryCurveParams::Koblitz163() {
  return BinaryCurveParams{Gf2Field::Nist163().Modulus(), BigUInt{1},
                           BigUInt{1}};
}

BinaryCurveParams BinaryCurveParams::Tiny16() {
  return BinaryCurveParams{BigUInt{0b10011}, BigUInt{1}, BigUInt{1}};
}

BinaryCurveParams BinaryCurveParams::Aes256() {
  return BinaryCurveParams{BigUInt{0x11b}, BigUInt{1}, BigUInt{1}};
}

bool operator==(const BinaryPoint& a, const BinaryPoint& b) {
  if (a.infinity || b.infinity) return a.infinity == b.infinity;
  return a.x == b.x && a.y == b.y;
}

BinaryCurve::BinaryCurve(BinaryCurveParams params, std::string_view engine)
    : params_(params),
      field_(params.f),
      engine_(core::MakeEngine(engine, params.f,
                               {.field = core::EngineField::kGf2})) {
  if (params_.b.IsZero()) {
    throw std::invalid_argument("BinaryCurve: b must be nonzero");
  }
  inv_exponent_ = BigUInt::PowerOfTwo(field_.Degree()) - BigUInt{2};
}

BigUInt BinaryCurve::Mul(const BigUInt& a, const BigUInt& b,
                         BinaryEccStats* stats) const {
  if (stats != nullptr) ++stats->field_mults;
  // Plain field product through the Montgomery backend: Mont(a, b) gives
  // a*b*R^-1, a second pass by R^2 restores the factor — two MMM passes,
  // exactly what the dual-field array would execute.
  return engine_->Reduce(
      engine_->Multiply(engine_->Multiply(a, b), engine_->MontFactor()));
}

BigUInt BinaryCurve::Inv(const BigUInt& a, BinaryEccStats* stats) const {
  if (stats != nullptr) ++stats->field_inversions;
  if (engine_->Reduce(a).IsZero()) {
    throw std::domain_error("BinaryCurve: inverse of zero");
  }
  // Fermat: a^-1 = a^(2^m - 2), a field exponentiation on the engine.
  return engine_->ModExp(a, inv_exponent_);
}

bool BinaryCurve::IsOnCurve(const BinaryPoint& point) const {
  if (point.infinity) return true;
  // y^2 + xy == x^3 + a x^2 + b
  const BigUInt lhs =
      field_.Add(field_.Square(point.y), field_.Mul(point.x, point.y));
  const BigUInt x2 = field_.Square(point.x);
  const BigUInt rhs = field_.Add(
      field_.Add(field_.Mul(x2, point.x), field_.Mul(params_.a, x2)),
      params_.b);
  return lhs == rhs;
}

BinaryPoint BinaryCurve::Negate(const BinaryPoint& point) const {
  if (point.infinity) return point;
  return BinaryPoint{point.x, field_.Add(point.x, point.y), false};
}

BinaryPoint BinaryCurve::AddWithInverse(const BinaryPoint& lhs,
                                        const BinaryPoint& rhs,
                                        const BigUInt& dx_inv,
                                        BinaryEccStats* stats) const {
  const BigUInt dx = field_.Add(lhs.x, rhs.x);
  // lambda = (y1 + y2) / (x1 + x2)
  const BigUInt lambda = Mul(field_.Add(lhs.y, rhs.y), dx_inv, stats);
  // x3 = lambda^2 + lambda + x1 + x2 + a
  const BigUInt x3 = field_.Add(
      field_.Add(field_.Add(Mul(lambda, lambda, stats), lambda), dx),
      params_.a);
  // y3 = lambda*(x1 + x3) + x3 + y1
  const BigUInt y3 = field_.Add(
      field_.Add(Mul(lambda, field_.Add(lhs.x, x3), stats), x3), lhs.y);
  return BinaryPoint{x3, y3, false};
}

BinaryPoint BinaryCurve::DoubleWithInverse(const BinaryPoint& point,
                                           const BigUInt& x_inv,
                                           BinaryEccStats* stats) const {
  // lambda = x + y/x
  const BigUInt lambda =
      field_.Add(point.x, Mul(point.y, x_inv, stats));
  // x3 = lambda^2 + lambda + a
  const BigUInt x3 =
      field_.Add(field_.Add(Mul(lambda, lambda, stats), lambda), params_.a);
  // y3 = x^2 + (lambda + 1)*x3
  const BigUInt y3 = field_.Add(
      Mul(point.x, point.x, stats),
      Mul(field_.Add(lambda, BigUInt{1}), x3, stats));
  return BinaryPoint{x3, y3, false};
}

BinaryPoint BinaryCurve::Add(const BinaryPoint& lhs, const BinaryPoint& rhs,
                             BinaryEccStats* stats) const {
  if (lhs.infinity) return rhs;
  if (rhs.infinity) return lhs;
  if (lhs.x == rhs.x) {
    if (lhs.y == rhs.y) return Double(lhs, stats);
    return BinaryPoint::Infinity();  // P + (-P)
  }
  const BigUInt dx = field_.Add(lhs.x, rhs.x);
  return AddWithInverse(lhs, rhs, Inv(dx, stats), stats);
}

BinaryPoint BinaryCurve::Double(const BinaryPoint& point,
                                BinaryEccStats* stats) const {
  if (point.infinity || point.x.IsZero()) return BinaryPoint::Infinity();
  return DoubleWithInverse(point, Inv(point.x, stats), stats);
}

BinaryPoint BinaryCurve::ScalarMul(const BigUInt& k, const BinaryPoint& point,
                                   BinaryEccStats* stats) const {
  if (k.IsZero() || point.infinity) return BinaryPoint::Infinity();
  BinaryPoint acc = point;
  for (std::size_t i = k.BitLength() - 1; i-- > 0;) {
    acc = Double(acc, stats);
    if (k.Bit(i)) acc = Add(acc, point, stats);
  }
  return acc;
}

// ---------------------------------------------------------------------------
// Batched scalar multiplication: inversions through the service
// ---------------------------------------------------------------------------

namespace {

/// One double-and-add ladder unrolled into inversion-sized steps: every
/// group operation needs exactly one field inversion, so the ladder runs
/// until it must invert, parks, and resumes when the service delivers
/// z^(2^m-2).  Degenerate branches (infinity, x = 0, P + (-P)) carry no
/// inversion and are folded through inline.
struct LadderState {
  enum class Stage { kDouble, kAdd };
  enum class Pending { kNone, kDouble, kAddViaDouble, kAddSlope };

  BinaryPoint acc;
  std::size_t i = 0;  // remaining iterations; bit i-1 is processed next
  Stage stage = Stage::kDouble;
  Pending pending = Pending::kNone;
  bool done = false;
};

}  // namespace

std::vector<BinaryPoint> BinaryCurve::ScalarMulBatch(
    std::span<const BigUInt> scalars, const BinaryPoint& point,
    core::ExpService& service, BinaryEccStats* stats) const {
  if (service.options().engine_options.field != core::EngineField::kGf2) {
    throw std::invalid_argument(
        "BinaryCurve::ScalarMulBatch: the service must run a GF(2^m) "
        "engine (Options::engine_options.field = kGf2)");
  }
  std::vector<BinaryPoint> out(scalars.size(), BinaryPoint::Infinity());
  std::vector<LadderState> ladders(scalars.size());
  for (std::size_t j = 0; j < scalars.size(); ++j) {
    LadderState& st = ladders[j];
    if (scalars[j].IsZero() || point.infinity) {
      st.done = true;
      continue;
    }
    st.acc = point;
    st.i = scalars[j].BitLength() - 1;
  }

  const auto finish_double = [&](LadderState& st, const BigUInt& k) {
    st.stage = k.Bit(st.i - 1) ? LadderState::Stage::kAdd
                               : LadderState::Stage::kDouble;
    if (st.stage == LadderState::Stage::kDouble) --st.i;
  };
  const auto finish_add = [&](LadderState& st) {
    --st.i;
    st.stage = LadderState::Stage::kDouble;
  };

  // Advances one ladder through its inversion-free steps; returns the
  // denominator of the next required inversion, or nullopt when done.
  const auto advance = [&](LadderState& st,
                           const BigUInt& k) -> std::optional<BigUInt> {
    for (;;) {
      if (st.i == 0) {
        st.done = true;
        return std::nullopt;
      }
      if (st.stage == LadderState::Stage::kDouble) {
        if (st.acc.infinity || st.acc.x.IsZero()) {
          st.acc = BinaryPoint::Infinity();
          finish_double(st, k);
          continue;
        }
        st.pending = LadderState::Pending::kDouble;
        return st.acc.x;
      }
      // Stage::kAdd — acc + point for the just-doubled bit.
      if (st.acc.infinity) {
        st.acc = point;
        finish_add(st);
        continue;
      }
      if (st.acc.x == point.x) {
        if (st.acc.y == point.y) {
          if (st.acc.x.IsZero()) {
            st.acc = BinaryPoint::Infinity();
            finish_add(st);
            continue;
          }
          st.pending = LadderState::Pending::kAddViaDouble;
          return st.acc.x;
        }
        st.acc = BinaryPoint::Infinity();  // P + (-P)
        finish_add(st);
        continue;
      }
      st.pending = LadderState::Pending::kAddSlope;
      return field_.Add(st.acc.x, point.x);
    }
  };

  const auto complete = [&](LadderState& st, const BigUInt& k,
                            const BigUInt& inverse) {
    switch (st.pending) {
      case LadderState::Pending::kDouble:
        st.acc = DoubleWithInverse(st.acc, inverse, stats);
        finish_double(st, k);
        break;
      case LadderState::Pending::kAddViaDouble:
        st.acc = DoubleWithInverse(st.acc, inverse, stats);
        finish_add(st);
        break;
      case LadderState::Pending::kAddSlope:
        st.acc = AddWithInverse(st.acc, point, inverse, stats);
        finish_add(st);
        break;
      case LadderState::Pending::kNone:
        break;
    }
    st.pending = LadderState::Pending::kNone;
  };

  // Lockstep rounds: every active ladder contributes at most one
  // denominator per round, the whole round is one same-modulus batch, and
  // the pairing scheduler two-packs the queued inversions per array pass.
  for (;;) {
    std::vector<std::size_t> who;
    std::vector<BigUInt> denominators;
    for (std::size_t j = 0; j < ladders.size(); ++j) {
      LadderState& st = ladders[j];
      if (st.done || st.pending != LadderState::Pending::kNone) continue;
      if (auto denominator = advance(st, scalars[j])) {
        who.push_back(j);
        denominators.push_back(std::move(*denominator));
      }
    }
    if (who.empty()) break;
    const std::vector<BigUInt> exponents(denominators.size(), inv_exponent_);
    auto futures = service.SubmitBatch(params_.f, denominators, exponents);
    for (std::size_t j = 0; j < who.size(); ++j) {
      complete(ladders[who[j]], scalars[who[j]], futures[j].get().value);
      if (stats != nullptr) ++stats->field_inversions;
    }
  }

  for (std::size_t j = 0; j < scalars.size(); ++j) {
    if (!ladders[j].done) continue;
    out[j] = ladders[j].acc;
    if (scalars[j].IsZero() || point.infinity) out[j] = BinaryPoint::Infinity();
  }
  return out;
}

std::vector<BinaryPoint> BinaryCurve::EnumeratePoints() const {
  const std::size_t m = field_.Degree();
  if (m > 10) {
    throw std::invalid_argument("EnumeratePoints: field too large");
  }
  std::vector<BinaryPoint> points;
  const std::uint64_t size = 1ull << m;
  for (std::uint64_t x = 0; x < size; ++x) {
    for (std::uint64_t y = 0; y < size; ++y) {
      const BinaryPoint p{BigUInt{x}, BigUInt{y}, false};
      if (IsOnCurve(p)) points.push_back(p);
    }
  }
  return points;
}

}  // namespace mont::crypto
