// ecc2.hpp — elliptic curves over GF(2^m) (binary curves), the second
// half of the paper's introduction: "Commonly used finite fields in ECC
// protocols are GF(p) and GF(2^n)."  Together with the dual-field MMMC
// (core/mmmc.hpp FieldMode::kGf2) this closes the loop: one multiplier
// architecture serving RSA, prime-field ECC and binary-field ECC.
//
// Field multiplications and Fermat inversions run on a registry-selected
// dual-field multiplication backend (core/engine.hpp, field = kGf2), so
// the binary-curve workload exercises the same engines — and the same
// 3l+4 schedule — as the integer paths.  ScalarMulBatch additionally
// routes every field inversion (a^(2^m-2), ~2m multiplications each)
// through the async ExpService, where same-length inversions pair two per
// dual-channel array pass.
//
// Curve form: y^2 + xy = x^3 + a*x^2 + b over GF(2^m), b != 0.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "bignum/biguint.hpp"
#include "bignum/gf2.hpp"
#include "core/engine.hpp"
#include "core/exp_service.hpp"

namespace mont::crypto {

/// Binary-curve parameters.
struct BinaryCurveParams {
  bignum::BigUInt f;  ///< field polynomial
  bignum::BigUInt a;
  bignum::BigUInt b;

  /// Koblitz K-163 equation (a = 1, b = 1) over the NIST B/K-163 field.
  /// (Base-point coordinates are not embedded; tests derive points.)
  static BinaryCurveParams Koblitz163();
  /// A tiny curve over GF(2^4), f = x^4 + x + 1, a = 1, b = 1 — small
  /// enough for exhaustive group checks.
  static BinaryCurveParams Tiny16();
  /// A curve over the AES field GF(2^8), a = 1, b = 1.
  static BinaryCurveParams Aes256();
};

/// Affine point; `infinity` marks the identity.
struct BinaryPoint {
  bignum::BigUInt x;
  bignum::BigUInt y;
  bool infinity = false;

  static BinaryPoint Infinity() { return BinaryPoint{{}, {}, true}; }
};

bool operator==(const BinaryPoint& a, const BinaryPoint& b);

/// Field-operation counters (for the dual-field MMMC latency model, in
/// 3l+4-cycle MMM passes).
struct BinaryEccStats {
  std::uint64_t field_mults = 0;
  std::uint64_t field_inversions = 0;
  /// MMM passes on the multiplier: a plain field multiplication costs two
  /// Montgomery passes (product, then re-scaling by R^2); a Fermat
  /// inversion runs as a field exponentiation of ~2m single passes.
  std::uint64_t EquivalentMults(std::size_t m) const {
    return 2 * field_mults +
           field_inversions * 2 * static_cast<std::uint64_t>(m);
  }
};

/// Binary-curve arithmetic engine (affine formulas).  `engine` names the
/// registry backend (must support GF(2^m): "bit-serial", "mmmc" or
/// "netlist-sim") the field multiplications and inversions run on.
class BinaryCurve {
 public:
  explicit BinaryCurve(BinaryCurveParams params,
                       std::string_view engine = "bit-serial");

  const BinaryCurveParams& Params() const { return params_; }
  std::size_t FieldDegree() const { return field_.Degree(); }
  const core::MmmEngine& FieldEngine() const { return *engine_; }

  bool IsOnCurve(const BinaryPoint& point) const;
  BinaryPoint Negate(const BinaryPoint& point) const;
  BinaryPoint Add(const BinaryPoint& lhs, const BinaryPoint& rhs,
                  BinaryEccStats* stats = nullptr) const;
  BinaryPoint Double(const BinaryPoint& point,
                     BinaryEccStats* stats = nullptr) const;
  /// Double-and-add scalar multiplication.
  BinaryPoint ScalarMul(const bignum::BigUInt& k, const BinaryPoint& point,
                        BinaryEccStats* stats = nullptr) const;

  /// Batched scalar multiplication scalars[i]*P with every field inversion
  /// routed through `service` as the Fermat exponentiation z^(2^m-2) mod f:
  /// the ladders advance in lockstep rounds, each round's denominators are
  /// submitted as one same-modulus batch (so the pairing scheduler packs
  /// them two per dual-channel array pass), and the group operations
  /// complete as the futures resolve.  The service must be configured for
  /// GF(2^m) (Options::engine_options.field = kGf2 on a dual-field
  /// backend); throws std::invalid_argument otherwise.
  std::vector<BinaryPoint> ScalarMulBatch(
      std::span<const bignum::BigUInt> scalars, const BinaryPoint& point,
      core::ExpService& service, BinaryEccStats* stats = nullptr) const;

  /// Enumerates every affine point (exponential; only for tiny fields,
  /// degree <= 10).
  std::vector<BinaryPoint> EnumeratePoints() const;

 private:
  bignum::BigUInt Mul(const bignum::BigUInt& a, const bignum::BigUInt& b,
                      BinaryEccStats* stats) const;
  bignum::BigUInt Inv(const bignum::BigUInt& a, BinaryEccStats* stats) const;
  /// Group operations with the inversion already supplied (the batch path
  /// receives inverses from the service).
  BinaryPoint DoubleWithInverse(const BinaryPoint& point,
                                const bignum::BigUInt& x_inv,
                                BinaryEccStats* stats) const;
  BinaryPoint AddWithInverse(const BinaryPoint& lhs, const BinaryPoint& rhs,
                             const bignum::BigUInt& dx_inv,
                             BinaryEccStats* stats) const;

  BinaryCurveParams params_;
  bignum::Gf2Field field_;  // carry-less add/square (free XOR hardware)
  std::unique_ptr<core::MmmEngine> engine_;
  bignum::BigUInt inv_exponent_;  // 2^m - 2 (Fermat)
};

}  // namespace mont::crypto
