// ecc2.hpp — elliptic curves over GF(2^m) (binary curves), the second
// half of the paper's introduction: "Commonly used finite fields in ECC
// protocols are GF(p) and GF(2^n)."  Together with the dual-field MMMC
// (core/mmmc.hpp FieldMode::kGf2) this closes the loop: one multiplier
// architecture serving RSA, prime-field ECC and binary-field ECC.
//
// Curve form: y^2 + xy = x^3 + a*x^2 + b over GF(2^m), b != 0.
#pragma once

#include <cstdint>

#include "bignum/biguint.hpp"
#include "bignum/gf2.hpp"

namespace mont::crypto {

/// Binary-curve parameters.
struct BinaryCurveParams {
  bignum::BigUInt f;  ///< field polynomial
  bignum::BigUInt a;
  bignum::BigUInt b;

  /// Koblitz K-163 equation (a = 1, b = 1) over the NIST B/K-163 field.
  /// (Base-point coordinates are not embedded; tests derive points.)
  static BinaryCurveParams Koblitz163();
  /// A tiny curve over GF(2^4), f = x^4 + x + 1, a = 1, b = 1 — small
  /// enough for exhaustive group checks.
  static BinaryCurveParams Tiny16();
  /// A curve over the AES field GF(2^8), a = 1, b = 1.
  static BinaryCurveParams Aes256();
};

/// Affine point; `infinity` marks the identity.
struct BinaryPoint {
  bignum::BigUInt x;
  bignum::BigUInt y;
  bool infinity = false;

  static BinaryPoint Infinity() { return BinaryPoint{{}, {}, true}; }
};

bool operator==(const BinaryPoint& a, const BinaryPoint& b);

/// Field-operation counters (for the dual-field MMMC latency model: one
/// field multiplication or inversion step = one 3l+4-cycle MMM pass).
struct BinaryEccStats {
  std::uint64_t field_mults = 0;
  std::uint64_t field_inversions = 0;
  /// Inversions via Fermat cost ~2m multiplications on the multiplier.
  std::uint64_t EquivalentMults(std::size_t m) const {
    return field_mults + field_inversions * 2 * static_cast<std::uint64_t>(m);
  }
};

/// Binary-curve arithmetic engine (affine formulas).
class BinaryCurve {
 public:
  explicit BinaryCurve(BinaryCurveParams params);

  const BinaryCurveParams& Params() const { return params_; }
  std::size_t FieldDegree() const { return field_.Degree(); }

  bool IsOnCurve(const BinaryPoint& point) const;
  BinaryPoint Negate(const BinaryPoint& point) const;
  BinaryPoint Add(const BinaryPoint& lhs, const BinaryPoint& rhs,
                  BinaryEccStats* stats = nullptr) const;
  BinaryPoint Double(const BinaryPoint& point,
                     BinaryEccStats* stats = nullptr) const;
  /// Double-and-add scalar multiplication.
  BinaryPoint ScalarMul(const bignum::BigUInt& k, const BinaryPoint& point,
                        BinaryEccStats* stats = nullptr) const;

  /// Enumerates every affine point (exponential; only for tiny fields,
  /// degree <= 10).
  std::vector<BinaryPoint> EnumeratePoints() const;

 private:
  bignum::BigUInt Mul(const bignum::BigUInt& a, const bignum::BigUInt& b,
                      BinaryEccStats* stats) const;
  bignum::BigUInt Inv(const bignum::BigUInt& a, BinaryEccStats* stats) const;

  BinaryCurveParams params_;
  bignum::Gf2Field field_;
};

}  // namespace mont::crypto
