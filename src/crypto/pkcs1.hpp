// pkcs1.hpp — RSASSA-PKCS1-v1_5 signatures (RFC 8017 §8.2) over the
// repo's CRT/blinded private-key paths, plus the SHA-256 compression the
// encoding needs.  This is what turns the raw modexp service into a *real*
// signature scheme: the signing service front-end (src/server/) signs
// EMSA-PKCS1-v1_5 encoded digests, never raw caller-controlled integers.
//
// SHA-256 is implemented here from scratch (FIPS 180-4); the container
// bakes in no crypto library and the repo links nothing external.  It is a
// straightforward portable implementation — fast enough for request
// hashing, not a performance claim of the paper.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

#include "bignum/biguint.hpp"
#include "crypto/rsa.hpp"

namespace mont::crypto {

/// SHA-256 of `data` (FIPS 180-4).
std::array<std::uint8_t, 32> Sha256(std::span<const std::uint8_t> data);

/// EMSA-PKCS1-v1_5 needs emLen >= tLen + 11 = (19 + 32) + 11 bytes for a
/// SHA-256 DigestInfo, so the modulus must be at least 62 bytes (496
/// bits); the server uses >= 512-bit keys.
inline constexpr std::size_t kPkcs1MinModulusBytes = 62;

/// EMSA-PKCS1-v1_5 encoding of message's SHA-256 digest for a
/// `modulus_bytes`-byte modulus, returned as the message representative
/// integer EM = 0x00 || 0x01 || 0xff..0xff || 0x00 || DigestInfo || H.
/// The leading zero byte makes EM < 2^(8(k-1)) <= n, so EM is always a
/// valid RSA input.  Throws std::invalid_argument when modulus_bytes <
/// kPkcs1MinModulusBytes.
bignum::BigUInt EmsaPkcs1V15Encode(std::span<const std::uint8_t> message,
                                   std::size_t modulus_bytes);

/// RSASSA-PKCS1-v1_5 signature of `message` (CRT private-key path with
/// the Bellcore/Lenstra release check; throws std::runtime_error on a
/// detected fault).
bignum::BigUInt RsaSignPkcs1V15(const RsaKeyPair& key,
                                std::span<const std::uint8_t> message,
                                std::string_view engine = "word-mont");

/// Verifies an RSASSA-PKCS1-v1_5 signature: sig^e mod n must equal the
/// full EMSA encoding of message's digest (exact match — no tolerance
/// for padding variants).
bool RsaVerifyPkcs1V15(const RsaKeyPair& key,
                       std::span<const std::uint8_t> message,
                       const bignum::BigUInt& signature,
                       std::string_view engine = "word-mont");

}  // namespace mont::crypto
