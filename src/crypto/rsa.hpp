// rsa.hpp — RSA on top of the Montgomery machinery (the paper's §4.5
// application).  Keys are generated with the repo's own primality testing;
// every exponentiation runs on a registry-selected multiplication backend
// (core/engine.hpp) — fast software arithmetic by default, any
// hardware-modelled datapath by name — so the examples and benches can
// quote cycle counts for real workloads on any engine.
//
// The CRT private-key path maps onto the dual-channel array: its two
// half-size exponentiations are independent and (for keys from
// GenerateRsaKey) share a bit length, so RsaPrivateCrtPaired runs them as
// one co-scheduled pair — two MMMs per 3l+5 cycles — and RsaSignBatch
// drives a whole message stream through the async ExpService the same way.
// Every CRT path verifies sig^e mod n against the input before releasing
// a result (Bellcore/Lenstra fault hygiene): a fault in either
// half-exponentiation would otherwise leak a factorisation of n through
// the broken signature.
//
// The blinded private-key paths (RsaBlindingOptions) are the sca lab's
// countermeasure: base blinding by r^e and/or exponent randomization by
// k*lambda(n), bit-identical to the unblinded paths and validated at gate
// level in tests/test_sca_attack.cpp (CPA collapses to chance).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "bignum/biguint.hpp"
#include "bignum/random.hpp"
#include "core/engine.hpp"
#include "core/exp_service.hpp"

namespace mont::crypto {

struct RsaKeyPair {
  bignum::BigUInt n;  ///< modulus p*q
  bignum::BigUInt e;  ///< public exponent
  bignum::BigUInt d;  ///< private exponent
  bignum::BigUInt p;  ///< prime factor
  bignum::BigUInt q;  ///< prime factor
};

/// Generates an RSA key with a modulus of exactly `modulus_bits` bits
/// (modulus_bits must be even and >= 32).  The public exponent is 65537
/// unless it divides phi, in which case the next Fermat-style candidate is
/// used.
RsaKeyPair GenerateRsaKey(std::size_t modulus_bits, bignum::RandomBigUInt& rng);

/// m^e mod n on the named registry backend; message must be < n.
bignum::BigUInt RsaPublic(const RsaKeyPair& key, const bignum::BigUInt& m,
                          std::string_view engine = "word-mont");

/// c^d mod n, straightforward private-key operation.
bignum::BigUInt RsaPrivate(const RsaKeyPair& key, const bignum::BigUInt& c,
                           std::string_view engine = "word-mont");

/// Side-channel blinding for the private-key paths (the countermeasure
/// the sca lab's CPA engine validates: blinded executions degrade the
/// attack to chance while the outputs stay bit-identical).
struct RsaBlindingOptions {
  /// Multiplicative base blinding: the exponentiation runs on
  /// c * r^e mod n for a fresh unit r per call and the result is
  /// unblinded with r^-1 — the device never exponentiates a value the
  /// attacker can predict intermediates from.
  bool blind_base = true;
  /// Exponent randomization: adds k * lambda(n) (plain path) or
  /// k * (p-1) / k * (q-1) (CRT halves) with a fresh k of this many bits
  /// per call, randomizing the square/multiply schedule.  0 disables it.
  std::size_t exponent_blind_bits = 0;
};

/// A multiplicative blinding unit r (1 < r < n, gcd(r, n) = 1) and its
/// inverse mod n — the randomness behind base blinding.  Exposed so the
/// sca lab's benches and tests blind executions over arbitrary moduli
/// with the same rejection rule the RSA paths use.
struct RsaBlindingUnit {
  bignum::BigUInt r;
  bignum::BigUInt r_inv;
};
RsaBlindingUnit MakeRsaBlindingUnit(const bignum::BigUInt& n,
                                    bignum::RandomBigUInt& rng);

/// The base-blinding step on its own: c * r^e mod n for a fresh unit r —
/// exactly what the blinded private-key paths feed their exponentiation.
/// Exposed so the sca lab's captures trace the production blinding step
/// rather than a re-implementation.  (The unit is discarded: capture-side
/// callers never unblind.)
bignum::BigUInt BlindRsaBase(const bignum::BigUInt& c,
                             const bignum::BigUInt& e,
                             const bignum::BigUInt& n,
                             bignum::RandomBigUInt& rng);

/// Carmichael lambda(n) = lcm(p-1, q-1), the exponent-blinding group
/// order.  Throws std::invalid_argument unless key.p * key.q == key.n.
bignum::BigUInt RsaLambda(const RsaKeyPair& key);

/// Blinded c^d mod n: bit-identical to RsaPrivate for every input, with
/// the intermediate values (and optionally the operation schedule)
/// decorrelated from c.  `rng` supplies the blinding randomness (callers
/// seed it; all repo randomness is deterministic by seed).
bignum::BigUInt RsaPrivateBlinded(const RsaKeyPair& key,
                                  const bignum::BigUInt& c,
                                  bignum::RandomBigUInt& rng,
                                  const RsaBlindingOptions& options = {},
                                  std::string_view engine = "word-mont");

/// Blinded CRT private-key operation: base blinding is applied mod n
/// before the halves split (so both half-exponentiations run on blinded
/// residues), exponent blinding per CRT half, recombination unblinds, and
/// the Bellcore/Lenstra sig^e check runs against the *original* input
/// before release.  Bit-identical to RsaPrivateCrt.
bignum::BigUInt RsaPrivateCrtBlinded(const RsaKeyPair& key,
                                     const bignum::BigUInt& c,
                                     bignum::RandomBigUInt& rng,
                                     const RsaBlindingOptions& options = {},
                                     std::string_view engine = "word-mont");

/// c^d mod n using the CRT (two half-size exponentiations, ~4x faster).
/// Throws std::invalid_argument for malformed CRT keys (p == q, or
/// p*q != n) instead of silently recombining garbage, and verifies the
/// result against the public exponent before release (std::runtime_error
/// on a detected fault).
bignum::BigUInt RsaPrivateCrt(const RsaKeyPair& key, const bignum::BigUInt& c,
                              std::string_view engine = "word-mont");

/// CRT private-key operation with the two half-size exponentiations
/// co-scheduled onto one dual-channel array (core::PairedModExp): the p-
/// and q-streams occupy the two channels, so each pair of MMMs costs 3l+5
/// cycles instead of 6l+8.  Requires p and q of equal bit length (always
/// true for GenerateRsaKey output); falls back to sequential issue
/// otherwise.  `stats` reports the pair's issue counts and array cycles.
/// Before returning, the result is verified against the public exponent
/// (sig^e mod n == c); std::runtime_error signals a detected fault.
bignum::BigUInt RsaPrivateCrtPaired(const RsaKeyPair& key,
                                    const bignum::BigUInt& c,
                                    core::EngineStats* stats = nullptr,
                                    std::string_view engine = "bit-serial");

/// Signs (raw RSA private-key operation, no padding) every message through
/// `service` with a pipelined CRT: each message's p-half and q-half are
/// submitted as independent jobs (the scheduler pairs equal-length halves
/// opportunistically, including across messages), and whichever half lands
/// second posts Garner recombination plus the Bellcore/Lenstra fault check
/// to the service's continuation thread — workers never stall on
/// recombination.  Returns one signature per message; throws
/// std::runtime_error if any recombined signature fails verification.
std::vector<bignum::BigUInt> RsaSignBatch(
    const RsaKeyPair& key, std::span<const bignum::BigUInt> messages,
    core::ExpService& service);

/// Garner recombination m = mq + q * ((q^-1 (mp - mq)) mod p), with
/// q_inv = q^-1 mod p precomputed by the caller (it is a pure function of
/// the key).  Exposed for pipelined-CRT callers (RsaSignBatch-style
/// continuations, the signing service) that recombine off-worker.
bignum::BigUInt RsaCrtRecombine(const RsaKeyPair& key,
                                const bignum::BigUInt& q_inv,
                                const bignum::BigUInt& mp,
                                const bignum::BigUInt& mq);

/// The Bellcore/Lenstra release gate as a predicate: sig^e mod n == input
/// on `verify_engine` (a mod-n backend the caller hoists once per key).
/// Callers that can retry (the signing service) branch on this; the
/// throwing paths above keep throwing.
bool RsaCrtResultOk(const core::MmmEngine& verify_engine,
                    const RsaKeyPair& key, const bignum::BigUInt& input,
                    const bignum::BigUInt& sig);

/// Private-key operation on the hardware-modelled exponentiator; returns
/// the exponentiation statistics (cycle counts per the validated model).
bignum::BigUInt RsaPrivateOnHardwareModel(const RsaKeyPair& key,
                                          const bignum::BigUInt& c,
                                          core::EngineStats* stats,
                                          std::string_view engine = "bit-serial");

}  // namespace mont::crypto
