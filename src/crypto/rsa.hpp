// rsa.hpp — RSA on top of the Montgomery machinery (the paper's §4.5
// application).  Keys are generated with the repo's own primality testing;
// encryption/decryption can run either on fast software Montgomery
// arithmetic or through the hardware-modelled exponentiator so the examples
// and benches can quote cycle counts for real workloads.
#pragma once

#include <cstdint>
#include <optional>

#include "bignum/biguint.hpp"
#include "bignum/random.hpp"
#include "core/exponentiator.hpp"

namespace mont::crypto {

struct RsaKeyPair {
  bignum::BigUInt n;  ///< modulus p*q
  bignum::BigUInt e;  ///< public exponent
  bignum::BigUInt d;  ///< private exponent
  bignum::BigUInt p;  ///< prime factor
  bignum::BigUInt q;  ///< prime factor
};

/// Generates an RSA key with a modulus of exactly `modulus_bits` bits
/// (modulus_bits must be even and >= 32).  The public exponent is 65537
/// unless it divides phi, in which case the next Fermat-style candidate is
/// used.
RsaKeyPair GenerateRsaKey(std::size_t modulus_bits, bignum::RandomBigUInt& rng);

/// m^e mod n; message must be < n.
bignum::BigUInt RsaPublic(const RsaKeyPair& key, const bignum::BigUInt& m);

/// c^d mod n, straightforward private-key operation.
bignum::BigUInt RsaPrivate(const RsaKeyPair& key, const bignum::BigUInt& c);

/// c^d mod n using the CRT (two half-size exponentiations, ~4x faster).
bignum::BigUInt RsaPrivateCrt(const RsaKeyPair& key, const bignum::BigUInt& c);

/// Private-key operation on the hardware-modelled exponentiator; returns
/// the exponentiation statistics (cycle counts per the validated model).
bignum::BigUInt RsaPrivateOnHardwareModel(const RsaKeyPair& key,
                                          const bignum::BigUInt& c,
                                          core::ExponentiationStats* stats);

}  // namespace mont::crypto
