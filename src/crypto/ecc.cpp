#include "crypto/ecc.hpp"

#include <stdexcept>

namespace mont::crypto {

using bignum::BigUInt;

CurveParams CurveParams::Secp192r1() {
  CurveParams curve;
  curve.p = BigUInt::FromHex("fffffffffffffffffffffffffffffffeffffffffffffffff");
  curve.a = curve.p - BigUInt{3};
  curve.b = BigUInt::FromHex("64210519e59c80e70fa7e9ab72243049feb8deecc146b9b1");
  curve.gx = BigUInt::FromHex("188da80eb03090f67cbf20eb43a18800f4ff0afd82ff1012");
  curve.gy = BigUInt::FromHex("07192b95ffc8da78631011ed6b24cdd573f977a11e794811");
  curve.order =
      BigUInt::FromHex("ffffffffffffffffffffffff99def836146bc9b1b4d22831");
  return curve;
}

CurveParams CurveParams::Tiny97() {
  CurveParams curve;
  curve.p = BigUInt{97};
  curve.a = BigUInt{2};
  curve.b = BigUInt{3};
  curve.gx = BigUInt{3};
  curve.gy = BigUInt{6};
  curve.order = BigUInt{5};  // placeholder; tests compute the real order
  return curve;
}

bool operator==(const AffinePoint& a, const AffinePoint& b) {
  if (a.infinity || b.infinity) return a.infinity == b.infinity;
  return a.x == b.x && a.y == b.y;
}

Curve::Curve(CurveParams params, std::string_view engine)
    : params_(std::move(params)),
      field_(core::MakeEngine(engine, params_.p)) {
  window_ = field_->OperandBound();
  a_mont_ = field_->ToMont(params_.a);
}

bool Curve::IsOnCurve(const AffinePoint& point) const {
  if (point.infinity) return true;
  const BigUInt& p = params_.p;
  const BigUInt lhs = (point.y * point.y) % p;
  const BigUInt rhs =
      (point.x * point.x * point.x + params_.a * point.x + params_.b) % p;
  return lhs == rhs;
}

AffinePoint Curve::Negate(const AffinePoint& point) const {
  if (point.infinity || point.y.IsZero()) return point;
  return AffinePoint{point.x, params_.p - point.y, false};
}

AffinePoint Curve::Add(const AffinePoint& lhs, const AffinePoint& rhs) const {
  if (lhs.infinity) return rhs;
  if (rhs.infinity) return lhs;
  const BigUInt& p = params_.p;
  if (lhs.x == rhs.x) {
    if ((lhs.y + rhs.y) % p == BigUInt{0}) return AffinePoint::Infinity();
    return Double(lhs);
  }
  // slope = (y2 - y1) / (x2 - x1)
  BigUInt dy = rhs.y % p;
  if (dy < lhs.y) dy += p;
  dy -= lhs.y;
  BigUInt dx = rhs.x % p;
  if (dx < lhs.x) dx += p;
  dx -= lhs.x;
  const BigUInt slope = (dy * BigUInt::ModInverse(dx, p)) % p;
  const BigUInt x3 =
      ((slope * slope) % p + (p << 1) - lhs.x % p - rhs.x % p) % p;
  const BigUInt y3 =
      ((slope * ((lhs.x % p + p - x3) % p)) % p + p - lhs.y % p) % p;
  return AffinePoint{x3, y3, false};
}

AffinePoint Curve::Double(const AffinePoint& point) const {
  if (point.infinity || point.y.IsZero()) return AffinePoint::Infinity();
  const BigUInt& p = params_.p;
  // slope = (3x^2 + a) / (2y)
  const BigUInt numerator = (point.x * point.x * BigUInt{3} + params_.a) % p;
  const BigUInt denominator = (point.y << 1) % p;
  const BigUInt slope =
      (numerator * BigUInt::ModInverse(denominator, p)) % p;
  const BigUInt x3 = ((slope * slope) % p + (p << 1) - (point.x << 1)) % p;
  const BigUInt y3 =
      (slope * ((point.x + p - x3) % p) % p + p - point.y % p) % p;
  return AffinePoint{x3, y3, false};
}

// ---------------------------------------------------------------------------
// Jacobian path over Montgomery-domain arithmetic (the hardware model).
// ---------------------------------------------------------------------------

struct Curve::Jacobian {
  BigUInt x, y, z;  // Montgomery domain, each in [0, 2p)
  bool infinity = false;
};

BigUInt Curve::MulM(const BigUInt& a, const BigUInt& b, EccStats* stats,
                    bool square) const {
  if (stats != nullptr) {
    if (square) {
      ++stats->field_squares;
    } else {
      ++stats->field_mults;
    }
  }
  return field_->Multiply(a, b);
}

BigUInt Curve::AddM(const BigUInt& a, const BigUInt& b) const {
  // window_ is a multiple of p, so one conditional subtraction keeps the
  // sum in-window and congruent.
  BigUInt out = a + b;
  if (out >= window_) out -= window_;
  return out;
}

BigUInt Curve::SubM(const BigUInt& a, const BigUInt& b) const {
  BigUInt out = a + window_;
  out -= b;
  if (out >= window_) out -= window_;
  return out;
}

bool Curve::IsZeroM(const BigUInt& a) const {
  return a.IsZero() || a == params_.p;
}

Curve::Jacobian Curve::ToJacobian(const AffinePoint& point) const {
  if (point.infinity) return Jacobian{{}, {}, {}, true};
  return Jacobian{field_->ToMont(point.x), field_->ToMont(point.y),
                  field_->ToMont(BigUInt{1}), false};
}

AffinePoint Curve::FromJacobian(const Jacobian& point, EccStats* stats) const {
  if (point.infinity || IsZeroM(point.z)) return AffinePoint::Infinity();
  // x = X / Z^2, y = Y / Z^3 — inversion done in the plain domain.
  const BigUInt z = field_->FromMont(point.z);
  return FromJacobianWithInverse(point, BigUInt::ModInverse(z, params_.p),
                                 stats);
}

AffinePoint Curve::FromJacobianWithInverse(const Jacobian& point,
                                           const BigUInt& z_inv,
                                           EccStats* stats) const {
  const BigUInt z_inv_m = field_->ToMont(z_inv);
  const BigUInt z2 = MulM(z_inv_m, z_inv_m, stats, /*square=*/true);
  const BigUInt x = MulM(point.x, z2, stats, /*square=*/false);
  const BigUInt z3 = MulM(z2, z_inv_m, stats, /*square=*/false);
  const BigUInt y = MulM(point.y, z3, stats, /*square=*/false);
  return AffinePoint{field_->FromMont(x), field_->FromMont(y), false};
}

Curve::Jacobian Curve::JacobianDouble(const Jacobian& point,
                                      EccStats* stats) const {
  if (point.infinity || IsZeroM(point.y)) return Jacobian{{}, {}, {}, true};
  // Standard dbl-2007-bl-style formulas (general a).
  const BigUInt xx = MulM(point.x, point.x, stats, true);
  const BigUInt yy = MulM(point.y, point.y, stats, true);
  const BigUInt yyyy = MulM(yy, yy, stats, true);
  const BigUInt zz = MulM(point.z, point.z, stats, true);
  // S = 4*X*YY
  const BigUInt xyy = MulM(point.x, yy, stats, false);
  const BigUInt s = AddM(AddM(xyy, xyy), AddM(xyy, xyy));
  // M = 3*XX + a*ZZ^2
  const BigUInt zz2 = MulM(zz, zz, stats, true);
  const BigUInt azz2 = MulM(a_mont_, zz2, stats, false);
  const BigUInt m = AddM(AddM(xx, xx), AddM(xx, azz2));
  // X' = M^2 - 2*S
  const BigUInt m2 = MulM(m, m, stats, true);
  const BigUInt x3 = SubM(m2, AddM(s, s));
  // Y' = M*(S - X') - 8*YYYY
  BigUInt y8 = AddM(yyyy, yyyy);
  y8 = AddM(y8, y8);
  y8 = AddM(y8, y8);
  const BigUInt y3 = SubM(MulM(m, SubM(s, x3), stats, false), y8);
  // Z' = 2*Y*Z
  const BigUInt yz = MulM(point.y, point.z, stats, false);
  const BigUInt z3 = AddM(yz, yz);
  return Jacobian{x3, y3, z3, false};
}

Curve::Jacobian Curve::JacobianAdd(const Jacobian& lhs, const Jacobian& rhs,
                                   EccStats* stats) const {
  if (lhs.infinity) return rhs;
  if (rhs.infinity) return lhs;
  const BigUInt z1z1 = MulM(lhs.z, lhs.z, stats, true);
  const BigUInt z2z2 = MulM(rhs.z, rhs.z, stats, true);
  const BigUInt u1 = MulM(lhs.x, z2z2, stats, false);
  const BigUInt u2 = MulM(rhs.x, z1z1, stats, false);
  const BigUInt z2cube = MulM(rhs.z, z2z2, stats, false);
  const BigUInt z1cube = MulM(lhs.z, z1z1, stats, false);
  const BigUInt s1 = MulM(lhs.y, z2cube, stats, false);
  const BigUInt s2 = MulM(rhs.y, z1cube, stats, false);
  const BigUInt h = SubM(u2, u1);
  const BigUInt r = SubM(s2, s1);
  if (IsZeroM(h)) {
    if (IsZeroM(r)) return JacobianDouble(lhs, stats);
    return Jacobian{{}, {}, {}, true};
  }
  const BigUInt h2 = MulM(h, h, stats, true);
  const BigUInt h3 = MulM(h2, h, stats, false);
  const BigUInt u1h2 = MulM(u1, h2, stats, false);
  // X3 = R^2 - H^3 - 2*U1*H^2
  const BigUInt r2 = MulM(r, r, stats, true);
  const BigUInt x3 = SubM(SubM(r2, h3), AddM(u1h2, u1h2));
  // Y3 = R*(U1*H^2 - X3) - S1*H^3
  const BigUInt y3 =
      SubM(MulM(r, SubM(u1h2, x3), stats, false), MulM(s1, h3, stats, false));
  // Z3 = H*Z1*Z2
  const BigUInt z1z2 = MulM(lhs.z, rhs.z, stats, false);
  const BigUInt z3 = MulM(h, z1z2, stats, false);
  return Jacobian{x3, y3, z3, false};
}

Curve::Jacobian Curve::Ladder(const BigUInt& k_mod, const Jacobian& base,
                              EccStats* stats) const {
  Jacobian acc = base;
  for (std::size_t i = k_mod.BitLength() - 1; i-- > 0;) {
    acc = JacobianDouble(acc, stats);
    if (k_mod.Bit(i)) acc = JacobianAdd(acc, base, stats);
  }
  return acc;
}

AffinePoint Curve::ScalarMul(const BigUInt& k, const AffinePoint& point,
                             EccStats* stats) const {
  if (k.IsZero() || point.infinity) return AffinePoint::Infinity();
  const BigUInt k_mod = k % params_.order;
  if (k_mod.IsZero()) return AffinePoint::Infinity();
  return FromJacobian(Ladder(k_mod, ToJacobian(point), stats), stats);
}

std::vector<AffinePoint> Curve::ScalarMulBatch(std::span<const BigUInt> scalars,
                                               const AffinePoint& point,
                                               core::ExpService& service,
                                               EccStats* stats) const {
  // A GF(2^m)-configured service would accept p as a "field polynomial"
  // (any odd p has f(0) = 1) and compute carry-less nonsense silently.
  if (service.options().engine_options.field != core::EngineField::kGfP) {
    throw std::invalid_argument(
        "Curve::ScalarMulBatch: the service must run a GF(p) engine");
  }
  std::vector<AffinePoint> out(scalars.size(), AffinePoint::Infinity());
  std::vector<Jacobian> accs(scalars.size());
  std::vector<std::future<core::ExpService::Result>> inversions(
      scalars.size());
  std::vector<bool> live(scalars.size(), false);

  // p is prime, so by Fermat z^-1 = z^(p-2) mod p — a modular
  // exponentiation the service can schedule like any RSA job.  Every
  // inversion shares the modulus, so queued conversions pair two per
  // array pass.
  const BigUInt fermat_exponent = params_.p - BigUInt{2};
  const Jacobian base =
      point.infinity ? Jacobian{{}, {}, {}, true} : ToJacobian(point);
  std::vector<BigUInt> zs;
  zs.reserve(scalars.size());
  for (std::size_t i = 0; i < scalars.size(); ++i) {
    if (scalars[i].IsZero() || point.infinity) continue;
    const BigUInt k_mod = scalars[i] % params_.order;
    if (k_mod.IsZero()) continue;
    accs[i] = Ladder(k_mod, base, stats);
    if (accs[i].infinity || IsZeroM(accs[i].z)) continue;
    zs.push_back(field_->FromMont(accs[i].z));
    live[i] = true;
  }
  // Submit every inversion back to back (not interleaved with the much
  // longer ladders) so the queue actually holds same-modulus jobs at
  // once and the pairing scheduler can two-pack them.
  std::size_t next_z = 0;
  for (std::size_t i = 0; i < scalars.size(); ++i) {
    if (!live[i]) continue;
    inversions[i] = service.Submit(params_.p, zs[next_z++], fermat_exponent);
  }
  for (std::size_t i = 0; i < scalars.size(); ++i) {
    if (!live[i]) continue;
    out[i] = FromJacobianWithInverse(accs[i], inversions[i].get().value, stats);
  }
  return out;
}

}  // namespace mont::crypto
