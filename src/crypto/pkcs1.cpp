// pkcs1.cpp — SHA-256 (FIPS 180-4) and RSASSA-PKCS1-v1_5 (RFC 8017 §8.2).
#include "crypto/pkcs1.hpp"

#include <cstring>
#include <stdexcept>
#include <vector>

namespace mont::crypto {

using bignum::BigUInt;

namespace {

// ---------------------------------------------------------------------------
// SHA-256
// ---------------------------------------------------------------------------

constexpr std::array<std::uint32_t, 64> kSha256K = {
    0x428a2f98u, 0x71374491u, 0xb5c0fbcfu, 0xe9b5dba5u, 0x3956c25bu,
    0x59f111f1u, 0x923f82a4u, 0xab1c5ed5u, 0xd807aa98u, 0x12835b01u,
    0x243185beu, 0x550c7dc3u, 0x72be5d74u, 0x80deb1feu, 0x9bdc06a7u,
    0xc19bf174u, 0xe49b69c1u, 0xefbe4786u, 0x0fc19dc6u, 0x240ca1ccu,
    0x2de92c6fu, 0x4a7484aau, 0x5cb0a9dcu, 0x76f988dau, 0x983e5152u,
    0xa831c66du, 0xb00327c8u, 0xbf597fc7u, 0xc6e00bf3u, 0xd5a79147u,
    0x06ca6351u, 0x14292967u, 0x27b70a85u, 0x2e1b2138u, 0x4d2c6dfcu,
    0x53380d13u, 0x650a7354u, 0x766a0abbu, 0x81c2c92eu, 0x92722c85u,
    0xa2bfe8a1u, 0xa81a664bu, 0xc24b8b70u, 0xc76c51a3u, 0xd192e819u,
    0xd6990624u, 0xf40e3585u, 0x106aa070u, 0x19a4c116u, 0x1e376c08u,
    0x2748774cu, 0x34b0bcb5u, 0x391c0cb3u, 0x4ed8aa4au, 0x5b9cca4fu,
    0x682e6ff3u, 0x748f82eeu, 0x78a5636fu, 0x84c87814u, 0x8cc70208u,
    0x90befffau, 0xa4506cebu, 0xbef9a3f7u, 0xc67178f2u};

constexpr std::uint32_t Rotr(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

void Sha256Compress(std::array<std::uint32_t, 8>& state,
                    const std::uint8_t* block) {
  std::uint32_t w[64];
  for (int t = 0; t < 16; ++t) {
    w[t] = (static_cast<std::uint32_t>(block[4 * t]) << 24) |
           (static_cast<std::uint32_t>(block[4 * t + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * t + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * t + 3]);
  }
  for (int t = 16; t < 64; ++t) {
    const std::uint32_t s0 =
        Rotr(w[t - 15], 7) ^ Rotr(w[t - 15], 18) ^ (w[t - 15] >> 3);
    const std::uint32_t s1 =
        Rotr(w[t - 2], 17) ^ Rotr(w[t - 2], 19) ^ (w[t - 2] >> 10);
    w[t] = w[t - 16] + s0 + w[t - 7] + s1;
  }
  std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
  std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];
  for (int t = 0; t < 64; ++t) {
    const std::uint32_t s1 = Rotr(e, 6) ^ Rotr(e, 11) ^ Rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t t1 = h + s1 + ch + kSha256K[t] + w[t];
    const std::uint32_t s0 = Rotr(a, 2) ^ Rotr(a, 13) ^ Rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  state[0] += a;
  state[1] += b;
  state[2] += c;
  state[3] += d;
  state[4] += e;
  state[5] += f;
  state[6] += g;
  state[7] += h;
}

// ASN.1 DigestInfo prefix for SHA-256 (RFC 8017 §9.2 note 1): the DER
// encoding of AlgorithmIdentifier{id-sha256, NULL} + OCTET STRING header.
constexpr std::array<std::uint8_t, 19> kSha256DigestInfoPrefix = {
    0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01,
    0x65, 0x03, 0x04, 0x02, 0x01, 0x05, 0x00, 0x04, 0x20};

}  // namespace

std::array<std::uint8_t, 32> Sha256(std::span<const std::uint8_t> data) {
  std::array<std::uint32_t, 8> state = {0x6a09e667u, 0xbb67ae85u, 0x3c6ef372u,
                                        0xa54ff53au, 0x510e527fu, 0x9b05688cu,
                                        0x1f83d9abu, 0x5be0cd19u};
  std::size_t offset = 0;
  for (; offset + 64 <= data.size(); offset += 64) {
    Sha256Compress(state, data.data() + offset);
  }
  // Final block(s): the 0x80 terminator and the 64-bit bit length.
  std::uint8_t tail[128] = {};
  const std::size_t rem = data.size() - offset;
  if (rem > 0) std::memcpy(tail, data.data() + offset, rem);
  tail[rem] = 0x80;
  const std::size_t tail_len = rem + 1 + 8 <= 64 ? 64 : 128;
  const std::uint64_t bits = static_cast<std::uint64_t>(data.size()) * 8;
  for (int i = 0; i < 8; ++i) {
    tail[tail_len - 1 - i] = static_cast<std::uint8_t>(bits >> (8 * i));
  }
  Sha256Compress(state, tail);
  if (tail_len == 128) Sha256Compress(state, tail + 64);
  std::array<std::uint8_t, 32> digest;
  for (int i = 0; i < 8; ++i) {
    digest[4 * i] = static_cast<std::uint8_t>(state[i] >> 24);
    digest[4 * i + 1] = static_cast<std::uint8_t>(state[i] >> 16);
    digest[4 * i + 2] = static_cast<std::uint8_t>(state[i] >> 8);
    digest[4 * i + 3] = static_cast<std::uint8_t>(state[i]);
  }
  return digest;
}

BigUInt EmsaPkcs1V15Encode(std::span<const std::uint8_t> message,
                           std::size_t modulus_bytes) {
  if (modulus_bytes < kPkcs1MinModulusBytes) {
    throw std::invalid_argument(
        "EmsaPkcs1V15Encode: modulus too short for a SHA-256 DigestInfo "
        "(needs >= 62 bytes / 496 bits)");
  }
  const std::array<std::uint8_t, 32> digest = Sha256(message);
  std::vector<std::uint8_t> em(modulus_bytes, 0xff);
  em[0] = 0x00;
  em[1] = 0x01;
  const std::size_t t_len = kSha256DigestInfoPrefix.size() + digest.size();
  em[modulus_bytes - t_len - 1] = 0x00;
  std::memcpy(em.data() + modulus_bytes - t_len, kSha256DigestInfoPrefix.data(),
              kSha256DigestInfoPrefix.size());
  std::memcpy(em.data() + modulus_bytes - digest.size(), digest.data(),
              digest.size());
  return BigUInt::FromBytesBE(em);
}

BigUInt RsaSignPkcs1V15(const RsaKeyPair& key,
                        std::span<const std::uint8_t> message,
                        std::string_view engine) {
  const std::size_t k = (key.n.BitLength() + 7) / 8;
  const BigUInt em = EmsaPkcs1V15Encode(message, k);
  return RsaPrivateCrt(key, em, engine);
}

bool RsaVerifyPkcs1V15(const RsaKeyPair& key,
                       std::span<const std::uint8_t> message,
                       const bignum::BigUInt& signature,
                       std::string_view engine) {
  if (signature >= key.n) return false;
  const std::size_t k = (key.n.BitLength() + 7) / 8;
  BigUInt em;
  try {
    em = EmsaPkcs1V15Encode(message, k);
  } catch (const std::invalid_argument&) {
    return false;
  }
  return RsaPublic(key, signature, engine) == em;
}

}  // namespace mont::crypto
