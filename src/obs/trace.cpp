#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace mont::obs {

namespace {
std::uint64_t NextTracerId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

Tracer::Tracer(Options options)
    : tracer_id_(NextTracerId()),
      options_(options),
      enabled_(options.start_enabled) {}

Tracer::~Tracer() = default;

Tracer::Shard& Tracer::LocalShard() {
  // One-entry per-thread cache: re-resolving through the registry map
  // (and its mutex) only happens the first time a given thread emits
  // into a given tracer.  Keyed on tracer_id_, not `this` — a tracer
  // constructed at a destroyed tracer's address would otherwise hit the
  // stale cache and hand back a dangling shard.
  thread_local std::uint64_t cached_tracer_id = 0;
  thread_local Shard* cached_shard = nullptr;
  if (cached_tracer_id == tracer_id_ && cached_shard != nullptr) {
    return *cached_shard;
  }

  const std::lock_guard<std::mutex> lock(registry_mu_);
  auto& shard = shards_[std::this_thread::get_id()];
  if (shard == nullptr) {
    shard = std::make_unique<Shard>();
    shard->ring.resize(options_.ring_capacity);
    shard->index = next_shard_index_++;
  }
  cached_tracer_id = tracer_id_;
  cached_shard = shard.get();
  return *cached_shard;
}

void Tracer::Emit(TraceEvent event, std::initializer_list<TraceArg> args) {
  event.arg_count = 0;
  for (const TraceArg& arg : args) {
    if (event.arg_count == 4) break;
    event.args[event.arg_count++] = arg;
  }
  Shard& shard = LocalShard();
  const std::lock_guard<std::mutex> lock(shard.mu);
  event.seq = shard.seq++;
  if (shard.size == shard.ring.size()) {
    ++shard.dropped;  // overwriting the oldest event
  } else {
    ++shard.size;
  }
  shard.ring[shard.head] = event;
  shard.head = (shard.head + 1) % shard.ring.size();
}

void Tracer::Complete(const char* name, std::uint64_t id, std::uint64_t track,
                      std::uint64_t start, std::uint64_t end,
                      std::initializer_list<TraceArg> args) {
  if (!enabled()) return;
  TraceEvent event;
  event.ts = start;
  event.dur = end >= start ? end - start : 0;
  event.id = id;
  event.track = track;
  event.kind = TraceEvent::Kind::kComplete;
  event.name = name;
  Emit(event, args);
}

void Tracer::Instant(const char* name, std::uint64_t id, std::uint64_t track,
                     std::uint64_t ts, std::initializer_list<TraceArg> args) {
  if (!enabled()) return;
  TraceEvent event;
  event.ts = ts;
  event.id = id;
  event.track = track;
  event.kind = TraceEvent::Kind::kInstant;
  event.name = name;
  Emit(event, args);
}

std::size_t Tracer::EventCount() const {
  std::size_t total = 0;
  const std::lock_guard<std::mutex> registry_lock(registry_mu_);
  for (const auto& [thread_id, shard] : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->size;
  }
  return total;
}

std::uint64_t Tracer::DroppedEvents() const {
  std::uint64_t total = 0;
  const std::lock_guard<std::mutex> registry_lock(registry_mu_);
  for (const auto& [thread_id, shard] : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->dropped;
  }
  return total;
}

std::vector<TraceEvent> Tracer::SortedEvents() const {
  struct Keyed {
    std::uint64_t shard_index;
    TraceEvent event;
  };
  std::vector<Keyed> keyed;
  {
    const std::lock_guard<std::mutex> registry_lock(registry_mu_);
    for (const auto& [thread_id, shard] : shards_) {
      const std::lock_guard<std::mutex> lock(shard->mu);
      // Oldest-first within the ring: the oldest live event sits at
      // `head` once the ring has wrapped, at 0 before.
      const std::size_t capacity = shard->ring.size();
      const std::size_t start =
          shard->size == capacity ? shard->head : 0;
      for (std::size_t i = 0; i < shard->size; ++i) {
        keyed.push_back(
            Keyed{shard->index, shard->ring[(start + i) % capacity]});
      }
    }
  }
  std::sort(keyed.begin(), keyed.end(), [](const Keyed& a, const Keyed& b) {
    if (a.event.ts != b.event.ts) return a.event.ts < b.event.ts;
    if (a.shard_index != b.shard_index) return a.shard_index < b.shard_index;
    return a.event.seq < b.event.seq;
  });
  std::vector<TraceEvent> events;
  events.reserve(keyed.size());
  for (Keyed& k : keyed) events.push_back(k.event);
  return events;
}

std::string Tracer::ExportChromeJson() const {
  const std::vector<TraceEvent> events = SortedEvents();
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"name\":\"" << (event.name != nullptr ? event.name : "?")
        << "\",\"ph\":\""
        << (event.kind == TraceEvent::Kind::kComplete ? "X" : "i")
        << "\",\"ts\":" << event.ts;
    if (event.kind == TraceEvent::Kind::kComplete) {
      out << ",\"dur\":" << event.dur;
    } else {
      out << ",\"s\":\"t\"";
    }
    out << ",\"pid\":0,\"tid\":" << event.track << ",\"id\":" << event.id;
    out << ",\"args\":{\"trace_id\":" << event.id;
    for (std::uint8_t i = 0; i < event.arg_count; ++i) {
      out << ",\"" << event.args[i].key << "\":" << event.args[i].value;
    }
    out << "}}";
  }
  out << "\n]}\n";
  return out.str();
}

bool Tracer::WriteChromeJson(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << ExportChromeJson();
  return static_cast<bool>(out);
}

void Tracer::Clear() {
  const std::lock_guard<std::mutex> registry_lock(registry_mu_);
  for (auto& [thread_id, shard] : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mu);
    shard->head = 0;
    shard->size = 0;
    shard->dropped = 0;
    // seq keeps counting — it only breaks ties within one shard.
  }
}

}  // namespace mont::obs
