// trace.hpp — the span tracer: per-thread ring buffers of lifecycle
// events, exported as chrome://tracing (Perfetto "JSON trace") format.
//
// Every stage of a signing request emits an event carrying the
// propagated job/trace id: server admit → submit → hold/pair/steal →
// engine ModExp (with per-multiply cycle counts in the args) → CRT-half
// join → Bellcore check → release.  Loading the exported JSON in
// https://ui.perfetto.dev (or chrome://tracing) lays the spans out per
// worker track, so "where did this request's cycles go" is one click.
//
// Design constraints, in order:
//   1. Idle cost.  `enabled()` is one relaxed atomic load; a disabled
//      tracer does nothing else.  bench_obs gates the compiled-in-but-
//      idle cost at <3% on the bursty stress workload.
//   2. No cross-thread contention on the hot path.  Each thread writes
//      its own Shard (fixed-capacity ring; oldest events overwritten,
//      drops counted) guarded by a shard-local mutex that only the
//      exporter ever contends on.
//   3. Determinism.  Timestamps come from the caller (the
//      DeterministicExecutor passes virtual ticks; threaded callers use
//      NowTicks()).  Export sorts by (timestamp, shard, sequence) and
//      renders integers only, so two replays of the same seed emit
//      byte-identical JSON.
//
// Event names and arg keys are `const char*` and must be string
// literals (or otherwise outlive the tracer) — the ring stores the
// pointer, never a copy.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace mont::obs {

/// One key/value pair attached to a trace event.  `key` must outlive the
/// tracer (string literal).
struct TraceArg {
  const char* key = nullptr;
  std::uint64_t value = 0;
};

/// One trace event.  kComplete spans have a duration; kInstant events are
/// points in time.
struct TraceEvent {
  enum class Kind : std::uint8_t { kComplete, kInstant };

  std::uint64_t ts = 0;   ///< start, in caller ticks (ns or virtual)
  std::uint64_t dur = 0;  ///< kComplete only
  std::uint64_t id = 0;   ///< propagated job / request / trace id
  std::uint64_t track = 0;  ///< rendered as the tid (worker index, …)
  std::uint64_t seq = 0;    ///< per-shard emission order (ties in ts)
  Kind kind = Kind::kInstant;
  const char* name = nullptr;  ///< string literal
  TraceArg args[4];
  std::uint8_t arg_count = 0;
};

/// Per-thread ring-buffer span tracer with chrome://tracing JSON export.
/// Emission is thread-safe and contention-free across threads; export
/// and Clear may run concurrently with emission (they briefly take each
/// shard's mutex in turn).
class Tracer {
 public:
  struct Options {
    std::size_t ring_capacity = std::size_t{1} << 14;  ///< events per thread
    bool start_enabled = true;
  };

  Tracer() : Tracer(Options{}) {}
  explicit Tracer(Options options);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;
  ~Tracer();

  /// Hot-path guard: callers skip event construction entirely when
  /// disabled.  One relaxed load.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Monotonic wall ticks (steady_clock nanoseconds) for threaded
  /// callers.  Deterministic callers pass their own virtual ticks
  /// instead and never call this.
  static std::uint64_t NowTicks() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  /// Records a span [start, end) on `track`.  No-op when disabled.
  void Complete(const char* name, std::uint64_t id, std::uint64_t track,
                std::uint64_t start, std::uint64_t end,
                std::initializer_list<TraceArg> args = {});

  /// Records a point event.  No-op when disabled.
  void Instant(const char* name, std::uint64_t id, std::uint64_t track,
               std::uint64_t ts, std::initializer_list<TraceArg> args = {});

  /// Events currently buffered across all shards (post-wraparound, i.e.
  /// at most shards * ring_capacity).
  std::size_t EventCount() const;
  /// Events overwritten by ring wraparound since construction/Clear.
  std::uint64_t DroppedEvents() const;

  /// All buffered events, stably ordered by (ts, shard, seq).
  std::vector<TraceEvent> SortedEvents() const;

  /// chrome://tracing "JSON Array Format" — load in ui.perfetto.dev or
  /// chrome://tracing.  Integers only and deterministically ordered, so
  /// equal event streams render byte-identical JSON.
  std::string ExportChromeJson() const;

  /// ExportChromeJson() to `path`; returns false on I/O failure.
  bool WriteChromeJson(const std::string& path) const;

  /// Drops all buffered events and the drop tally (shard rings survive
  /// for reuse by their threads).
  void Clear();

 private:
  struct Shard {
    mutable std::mutex mu;
    std::vector<TraceEvent> ring;  // capacity fixed at first emission
    std::size_t head = 0;          // next write slot
    std::size_t size = 0;
    std::uint64_t seq = 0;
    std::uint64_t dropped = 0;
    std::uint64_t index = 0;  // registration order, for sort tiebreak
  };

  Shard& LocalShard();
  void Emit(TraceEvent event, std::initializer_list<TraceArg> args);

  /// Unique across tracer lifetimes — the per-thread shard cache keys on
  /// this, not on `this`: a new tracer constructed at a freed tracer's
  /// address must not resurrect the old tracer's cached shard pointer.
  const std::uint64_t tracer_id_;
  const Options options_;
  std::atomic<bool> enabled_;
  mutable std::mutex registry_mu_;
  std::map<std::thread::id, std::unique_ptr<Shard>> shards_;
  std::uint64_t next_shard_index_ = 0;
};

}  // namespace mont::obs
