#include "obs/metrics.hpp"

#include <algorithm>
#include <sstream>

namespace mont::obs {

namespace detail {

std::size_t ThreadStripe() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) & (kStripes - 1);
  return stripe;
}

void HistogramCell::Record(std::uint64_t value) {
  const std::size_t index = HistogramBucketIndex(value);
  if (index >= kHistBuckets) {
    overflow.fetch_add(1, std::memory_order_relaxed);
  } else {
    buckets[index].fetch_add(1, std::memory_order_relaxed);
  }
  count.fetch_add(1, std::memory_order_relaxed);
  sum.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = min.load(std::memory_order_relaxed);
  while (value < seen &&
         !min.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max.load(std::memory_order_relaxed);
  while (value > seen &&
         !max.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

}  // namespace detail

std::size_t HistogramBucketIndex(std::uint64_t value) {
  // Exact buckets 0..3, then kHistSubBuckets linear sub-buckets per octave:
  // for value with highest set bit m >= 2, the sub-bucket is the next two
  // bits below the leading one.
  if (value < 4) return static_cast<std::size_t>(value);
  int major = 63;
  while ((value >> major) == 0) --major;  // major >= 2
  const std::uint64_t sub = (value >> (major - 2)) & 3;
  return (static_cast<std::size_t>(major) - 1) * detail::kHistSubBuckets +
         static_cast<std::size_t>(sub);
}

std::uint64_t HistogramBucketLowerBound(std::size_t index) {
  if (index < 4) return index;
  const std::size_t major = index / detail::kHistSubBuckets + 1;
  const std::uint64_t sub = index % detail::kHistSubBuckets;
  const std::uint64_t base = std::uint64_t{1} << major;
  return base + sub * (base >> 2);
}

std::uint64_t HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  // Rank of the p-quantile, 1-based; percentile(1.0) is the last recording.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(p * static_cast<double>(count) + 0.5));
  std::uint64_t seen = 0;
  for (const auto& [lower_bound, bucket_count] : buckets) {
    seen += bucket_count;
    if (seen >= rank) return lower_bound;
  }
  return max;  // quantile falls in the overflow bucket
}

std::uint64_t MetricsSnapshot::CounterValue(const std::string& name) const {
  const auto it = counters.find(name);
  return it != counters.end() ? it->second : 0;
}

std::string MetricsSnapshot::RenderText() const {
  std::ostringstream out;
  for (const auto& [name, value] : counters) {
    out << name << " = " << value << '\n';
  }
  for (const auto& [name, value] : gauges) {
    out << name << " = " << value << '\n';
  }
  for (const auto& [name, hist] : histograms) {
    out << name << " count=" << hist.count << " sum=" << hist.sum
        << " min=" << (hist.count != 0 ? hist.min : 0) << " max=" << hist.max
        << " p50=" << hist.Percentile(0.50) << " p95=" << hist.Percentile(0.95)
        << " p99=" << hist.Percentile(0.99) << '\n';
  }
  return out.str();
}

std::string MetricsSnapshot::RenderJson() const {
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out << ',';
    first = false;
    out << '"' << name << "\":" << value;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out << ',';
    first = false;
    out << '"' << name << "\":" << value;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms) {
    if (!first) out << ',';
    first = false;
    out << '"' << name << "\":{\"count\":" << hist.count
        << ",\"sum\":" << hist.sum
        << ",\"min\":" << (hist.count != 0 ? hist.min : 0)
        << ",\"max\":" << hist.max << ",\"p50\":" << hist.Percentile(0.50)
        << ",\"p95\":" << hist.Percentile(0.95)
        << ",\"p99\":" << hist.Percentile(0.99)
        << ",\"overflow\":" << hist.overflow << '}';
  }
  out << "}}";
  return out.str();
}

Registry::~Registry() = default;

Counter Registry::GetCounter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& cell = counters_[name];
  if (cell == nullptr) cell = std::make_unique<detail::CounterCell>();
  return Counter(cell.get());
}

Gauge Registry::GetGauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& cell = gauges_[name];
  if (cell == nullptr) cell = std::make_unique<detail::GaugeCell>();
  return Gauge(cell.get());
}

Histogram Registry::GetHistogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& cell = histograms_[name];
  if (cell == nullptr) cell = std::make_unique<detail::HistogramCell>();
  return Histogram(cell.get());
}

void Registry::AddInvariant(const std::string& name,
                            std::vector<std::string> lhs,
                            std::vector<std::string> rhs) {
  const std::lock_guard<std::mutex> lock(mu_);
  invariants_[name] = Invariant{std::move(lhs), std::move(rhs)};
}

std::vector<std::string> Registry::CheckInvariants(
    const MetricsSnapshot& snapshot) const {
  std::vector<std::string> violations;
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, invariant] : invariants_) {
    std::uint64_t lhs = 0;
    std::uint64_t rhs = 0;
    for (const std::string& term : invariant.lhs) {
      lhs += snapshot.CounterValue(term);
    }
    for (const std::string& term : invariant.rhs) {
      rhs += snapshot.CounterValue(term);
    }
    if (lhs != rhs) {
      std::ostringstream out;
      out << "invariant '" << name << "' violated: ";
      for (std::size_t i = 0; i < invariant.lhs.size(); ++i) {
        out << (i != 0 ? " + " : "") << invariant.lhs[i];
      }
      out << " = " << lhs << " but ";
      for (std::size_t i = 0; i < invariant.rhs.size(); ++i) {
        out << (i != 0 ? " + " : "") << invariant.rhs[i];
      }
      out << " = " << rhs;
      violations.push_back(out.str());
    }
  }
  return violations;
}

MetricsSnapshot Registry::Snapshot() const {
  MetricsSnapshot snapshot;
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, cell] : counters_) {
    snapshot.counters[name] = cell->Value();
  }
  for (const auto& [name, cell] : gauges_) {
    snapshot.gauges[name] = cell->value.load(std::memory_order_relaxed);
  }
  for (const auto& [name, cell] : histograms_) {
    HistogramSnapshot hist;
    for (std::size_t i = 0; i < detail::kHistBuckets; ++i) {
      const std::uint64_t bucket_count =
          cell->buckets[i].load(std::memory_order_relaxed);
      if (bucket_count != 0) {
        hist.buckets.emplace_back(HistogramBucketLowerBound(i), bucket_count);
      }
    }
    hist.overflow = cell->overflow.load(std::memory_order_relaxed);
    hist.count = cell->count.load(std::memory_order_relaxed);
    hist.sum = cell->sum.load(std::memory_order_relaxed);
    const std::uint64_t raw_min = cell->min.load(std::memory_order_relaxed);
    hist.min = hist.count != 0 ? raw_min : 0;
    hist.max = cell->max.load(std::memory_order_relaxed);
    snapshot.histograms[name] = std::move(hist);
  }
  return snapshot;
}

}  // namespace mont::obs
