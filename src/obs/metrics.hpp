// metrics.hpp — the unified metrics registry behind every counter in the
// serving stack.
//
// Before this layer, telemetry was fragmented: ExpService::Counters,
// StealScheduler::Stats, SigningService::Counters, ChaosLayer::Counters
// and EngineStats each had their own struct, its own locking story and
// its own test idiom.  The registry replaces the *storage* of all of
// them with typed handles behind stable dotted names (jobs.submitted,
// sched.steals, server.ok, chaos.crt_corruptions, engine.cycles, ...);
// the old structs survive only as thin compat accessors built from a
// snapshot, so existing tests keep reading the fields they always read.
//
//   * Counter — monotonic u64.  Writes go to one of a small number of
//     cache-line-padded relaxed-atomic stripes selected per thread, so
//     hot counters never bounce one line between workers; Value() and
//     Snapshot() merge the stripes by summing.
//   * Gauge — settable i64 (last-write-wins) with a RecordMax() CAS for
//     high-watermark style metrics (max_batch_claimed).
//   * Histogram — log-linear buckets (4 linear sub-buckets per power of
//     two, exact below 4), relaxed-atomic counts, an explicit overflow
//     bucket past 2^40, and min/max/sum tracking.  Percentile() answers
//     from bucket lower bounds — good enough for p50/p95/p99 ops lines.
//
// Handles are trivially copyable pointer wrappers; a default-constructed
// handle is a no-op sink (Add/Record do nothing, Value() is 0), so
// not-yet-bound instrumentation costs one branch.
//
// Conservation invariants (e.g. jobs.submitted == jobs.completed +
// jobs.cancelled on a drained service) are registered once by the owning
// component and checked against any snapshot with CheckInvariants() —
// the STATS wire verb and the tests share the same predicate.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mont::obs {

namespace detail {

inline constexpr std::size_t kStripes = 16;  // power of two

struct alignas(64) Stripe {
  std::atomic<std::uint64_t> value{0};
};

/// Stable per-thread stripe index (assigned round-robin on first use) so
/// each worker thread keeps hitting its own cache line.
std::size_t ThreadStripe();

struct CounterCell {
  Stripe stripes[kStripes];

  void Add(std::uint64_t delta) {
    stripes[ThreadStripe()].value.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t Value() const {
    std::uint64_t sum = 0;
    for (const Stripe& stripe : stripes) {
      sum += stripe.value.load(std::memory_order_relaxed);
    }
    return sum;
  }
};

struct GaugeCell {
  std::atomic<std::int64_t> value{0};
};

inline constexpr int kHistSubBuckets = 4;       // per power of two
inline constexpr int kHistMaxMajor = 40;        // values >= 2^40 overflow
inline constexpr std::size_t kHistBuckets =
    static_cast<std::size_t>(kHistMaxMajor - 1) * kHistSubBuckets;

struct HistogramCell {
  std::atomic<std::uint64_t> buckets[kHistBuckets]{};
  std::atomic<std::uint64_t> overflow{0};
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> min{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max{0};

  void Record(std::uint64_t value);
};

}  // namespace detail

/// Log-linear bucket geometry, shared by the cell and the snapshot (and
/// unit-tested directly): values 0..3 land in exact buckets, value v >= 4
/// lands in the bucket whose lower bound is the top three bits of v.
std::size_t HistogramBucketIndex(std::uint64_t value);
std::uint64_t HistogramBucketLowerBound(std::size_t index);

/// Monotonic counter handle.  Trivially copyable; default-constructed =
/// no-op sink.
class Counter {
 public:
  Counter() = default;
  void Add(std::uint64_t delta) {
    if (cell_ != nullptr) cell_->Add(delta);
  }
  void Increment() { Add(1); }
  std::uint64_t Value() const { return cell_ != nullptr ? cell_->Value() : 0; }

 private:
  friend class Registry;
  explicit Counter(detail::CounterCell* cell) : cell_(cell) {}
  detail::CounterCell* cell_ = nullptr;
};

/// Settable gauge handle (i64, last-write-wins; RecordMax keeps a high
/// watermark).
class Gauge {
 public:
  Gauge() = default;
  void Set(std::int64_t value) {
    if (cell_ != nullptr) {
      cell_->value.store(value, std::memory_order_relaxed);
    }
  }
  void Add(std::int64_t delta) {
    if (cell_ != nullptr) {
      cell_->value.fetch_add(delta, std::memory_order_relaxed);
    }
  }
  void RecordMax(std::int64_t candidate) {
    if (cell_ == nullptr) return;
    std::int64_t seen = cell_->value.load(std::memory_order_relaxed);
    while (candidate > seen &&
           !cell_->value.compare_exchange_weak(seen, candidate,
                                               std::memory_order_relaxed)) {
    }
  }
  std::int64_t Value() const {
    return cell_ != nullptr ? cell_->value.load(std::memory_order_relaxed) : 0;
  }

 private:
  friend class Registry;
  explicit Gauge(detail::GaugeCell* cell) : cell_(cell) {}
  detail::GaugeCell* cell_ = nullptr;
};

/// Log-linear histogram handle.
class Histogram {
 public:
  Histogram() = default;
  void Record(std::uint64_t value) {
    if (cell_ != nullptr) cell_->Record(value);
  }

 private:
  friend class Registry;
  explicit Histogram(detail::HistogramCell* cell) : cell_(cell) {}
  detail::HistogramCell* cell_ = nullptr;
};

/// Point-in-time merge of one histogram's shards.
struct HistogramSnapshot {
  /// (bucket lower bound, count), non-empty buckets only, ascending.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
  std::uint64_t overflow = 0;  ///< recordings >= 2^40
  std::uint64_t count = 0;     ///< total recordings (incl. overflow)
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;

  /// Lower bound of the bucket holding the p-quantile (p in [0,1]);
  /// `max` when the quantile falls in the overflow bucket.
  std::uint64_t Percentile(double p) const;
};

/// Point-in-time view of every metric in a registry.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Counter value by name (0 when absent) — the compat accessors'
  /// lookup primitive.
  std::uint64_t CounterValue(const std::string& name) const;

  /// One line per metric, sorted — for scorecards and stderr dumps.
  std::string RenderText() const;
  /// Flat JSON object (counters/gauges/histogram summaries) — the STATS
  /// wire verb's payload.
  std::string RenderJson() const;
};

/// Named-metric registry.  GetCounter/GetGauge/GetHistogram create on
/// first use and always return a handle to the same cell for the same
/// name, so every component naming "jobs.submitted" shares one counter.
/// Cells are node-stable: handles stay valid for the registry's lifetime.
/// All methods are thread-safe.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;
  ~Registry();

  Counter GetCounter(const std::string& name);
  Gauge GetGauge(const std::string& name);
  Histogram GetHistogram(const std::string& name);

  /// Registers the conservation law sum(lhs) == sum(rhs) under `name`.
  /// Re-registering the same name replaces the law (idempotent for the
  /// components that register in their constructors).
  void AddInvariant(const std::string& name, std::vector<std::string> lhs,
                    std::vector<std::string> rhs);

  /// Checks every registered invariant against `snapshot`; returns one
  /// human-readable violation line per broken law (empty = all hold).
  /// Only meaningful on quiescent snapshots (a drained service).
  std::vector<std::string> CheckInvariants(
      const MetricsSnapshot& snapshot) const;

  MetricsSnapshot Snapshot() const;

 private:
  struct Invariant {
    std::vector<std::string> lhs;
    std::vector<std::string> rhs;
  };

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<detail::CounterCell>> counters_;
  std::map<std::string, std::unique_ptr<detail::GaugeCell>> gauges_;
  std::map<std::string, std::unique_ptr<detail::HistogramCell>> histograms_;
  std::map<std::string, Invariant> invariants_;
};

}  // namespace mont::obs
