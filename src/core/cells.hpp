// cells.hpp — gate-level builders for the four systolic-array cell types of
// the paper's Fig. 1.  Each builder instantiates exactly the gate inventory
// the figure shows (HA = XOR + AND; FA = two HAs + OR), so the generated
// netlist's area can be compared against both the paper's closed form and
// this repo's derived closed form (see area_model.hpp).
//
// Port naming follows Eq. (4)–(9): cell j consumes t_{i-1,j+1}, the
// propagated x_i and m_i, its static operand bits y_j / n_j, and the carries
// c0_{i,j-1} / c1_{i,j-1} from its right neighbour; it produces t_{i,j} and
// carries c0_{i,j} / c1_{i,j}.
#pragma once

#include "rtl/netlist.hpp"

namespace mont::core {

/// Outputs of the rightmost cell (j = 0, Fig. 1(b)): computes
/// m_i = t_{i-1,1} XOR x_i*y_0 and c0_{i,0} = t_{i-1,1} OR x_i*y_0
/// (t_{i,0} = 0 identically and is not produced).
struct RightmostCellOut {
  rtl::NetId m = rtl::kNoNet;
  rtl::NetId c0 = rtl::kNoNet;
};
RightmostCellOut BuildRightmostCell(rtl::Netlist& nl, rtl::NetId t1_in,
                                    rtl::NetId x_in, rtl::NetId y0);

/// Outputs of the 1st-bit cell (j = 1, Fig. 1(c)) and of regular cells
/// (j = 2..l-1, Fig. 1(a)).
struct InnerCellOut {
  rtl::NetId t = rtl::kNoNet;
  rtl::NetId c0 = rtl::kNoNet;
  rtl::NetId c1 = rtl::kNoNet;
};
/// 1st-bit cell: one FA, two HAs, two ANDs (no c1 carry input exists).
InnerCellOut BuildFirstBitCell(rtl::Netlist& nl, rtl::NetId t2_in,
                               rtl::NetId x_in, rtl::NetId y1, rtl::NetId m_in,
                               rtl::NetId n1, rtl::NetId c0_in);
/// Regular cell: two FAs, one HA, two ANDs.
InnerCellOut BuildRegularCell(rtl::Netlist& nl, rtl::NetId t_next_in,
                              rtl::NetId x_in, rtl::NetId yj, rtl::NetId m_in,
                              rtl::NetId nj, rtl::NetId c0_in,
                              rtl::NetId c1_in);

/// Outputs of the leftmost cell (j = l, Fig. 1(d), widened): n_l = 0 removes
/// the m*n product; produces t_{i,l} and the two top bits t_{i,l+1} and
/// t_{i,l+2}.
///
/// The paper's cell (one FA + one XOR) drops a carry when the intermediate
/// accumulator exceeds 2^(l+2), which legal inputs can reach (DESIGN.md
/// "Erratum"); the second full adder and the extra top bit close the range.
struct LeftmostCellOut {
  rtl::NetId t = rtl::kNoNet;
  rtl::NetId t_top = rtl::kNoNet;
  rtl::NetId t_top2 = rtl::kNoNet;
};
/// Leftmost cell: two FAs, one AND.
LeftmostCellOut BuildLeftmostCell(rtl::Netlist& nl, rtl::NetId t_top_in,
                                  rtl::NetId t_top2_in, rtl::NetId x_in,
                                  rtl::NetId yl, rtl::NetId c0_in,
                                  rtl::NetId c1_in);

}  // namespace mont::core
