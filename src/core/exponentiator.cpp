#include "core/exponentiator.hpp"

#include <stdexcept>
#include <utility>

namespace mont::core {

using bignum::BigUInt;

Exponentiator::Exponentiator(BigUInt modulus, std::string_view engine,
                             const EngineOptions& options)
    : engine_(MakeEngine(engine, std::move(modulus), options)) {}

Exponentiator::Exponentiator(std::unique_ptr<MmmEngine> engine)
    : engine_(std::move(engine)) {
  if (engine_ == nullptr) {
    throw std::invalid_argument("Exponentiator: engine must not be null");
  }
}

void Exponentiator::EnableExponentBlinding(ExponentBlinding blinding) {
  if (blinding.group_order.IsZero()) {
    throw std::invalid_argument(
        "Exponentiator: blinding group_order must be nonzero");
  }
  if (blinding.random_bits == 0) {
    throw std::invalid_argument(
        "Exponentiator: blinding random_bits must be >= 1");
  }
  blind_rng_.emplace(blinding.seed);
  blinding_ = std::move(blinding);
}

BigUInt Exponentiator::ModExp(const BigUInt& base, const BigUInt& exponent,
                              EngineStats* stats) {
  if (blinding_.has_value()) {
    const BigUInt k = blind_rng_->ExactBits(blinding_->random_bits);
    return engine_->ModExp(base, exponent + k * blinding_->group_order,
                           stats);
  }
  return engine_->ModExp(base, exponent, stats);
}

}  // namespace mont::core
