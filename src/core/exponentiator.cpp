#include "core/exponentiator.hpp"

#include <stdexcept>
#include <utility>

namespace mont::core {

using bignum::BigUInt;

Exponentiator::Exponentiator(BigUInt modulus, std::string_view engine,
                             const EngineOptions& options)
    : engine_(MakeEngine(engine, std::move(modulus), options)) {}

Exponentiator::Exponentiator(std::unique_ptr<MmmEngine> engine)
    : engine_(std::move(engine)) {
  if (engine_ == nullptr) {
    throw std::invalid_argument("Exponentiator: engine must not be null");
  }
}

BigUInt Exponentiator::ModExp(const BigUInt& base, const BigUInt& exponent,
                              EngineStats* stats) {
  return engine_->ModExp(base, exponent, stats);
}

}  // namespace mont::core
