#include "core/exponentiator.hpp"

#include <stdexcept>

#include "core/schedule.hpp"

namespace mont::core {

using bignum::BigUInt;

Exponentiator::Exponentiator(BigUInt modulus, Engine engine)
    : reference_(std::move(modulus)), engine_(engine) {
  if (engine_ == Engine::kCycleAccurate) {
    circuit_.emplace(reference_.Modulus());
  }
}

BigUInt Exponentiator::Mmm(const BigUInt& x, const BigUInt& y,
                           ExponentiationStats* stats) {
  if (stats != nullptr) ++stats->mmm_invocations;
  if (engine_ == Engine::kCycleAccurate) {
    std::uint64_t cycles = 0;
    BigUInt out = circuit_->Multiply(x, y, &cycles);
    if (stats != nullptr) stats->measured_mmm_cycles += cycles;
    return out;
  }
  if (stats != nullptr) stats->measured_mmm_cycles += MultiplyCycles(l());
  return reference_.MultiplyAlg2(x, y);
}

BigUInt Exponentiator::ModExp(const BigUInt& base, const BigUInt& exponent,
                              ExponentiationStats* stats) {
  const BigUInt& n = Modulus();
  if (exponent.IsZero()) return BigUInt{1} % n;
  const BigUInt m = base % n;

  // Pre-computation: M*R mod 2N = Mont(M, R^2 mod N).
  const BigUInt m_mont = Mmm(m, reference_.RSquaredModN(), stats);

  // Algorithm 3: A <- M; scan remaining exponent bits left to right.
  BigUInt a = m_mont;
  for (std::size_t i = exponent.BitLength() - 1; i-- > 0;) {
    a = Mmm(a, a, stats);
    if (stats != nullptr) ++stats->squarings;
    if (exponent.Bit(i)) {
      a = Mmm(a, m_mont, stats);
      if (stats != nullptr) ++stats->multiplications;
    }
  }

  // Post-processing: one Montgomery multiplication by 1 removes R.
  BigUInt out = Mmm(a, BigUInt{1}, stats);
  if (out >= n) out -= n;

  if (stats != nullptr) {
    stats->paper_model_cycles =
        ExponentiationCycles(l(), stats->squarings, stats->multiplications);
  }
  return out;
}

}  // namespace mont::core
