// exp_algorithms.hpp — the design space around the paper's Algorithm 3.
//
// The paper uses left-to-right binary square-and-multiply.  This module
// implements the standard alternatives on top of the same chainable
// Algorithm-2 multiplier so their MMM counts (and hence latency on the
// MMMC) and side-channel profiles can be compared:
//
//   * kLeftToRight  — the paper's Algorithm 3.
//   * kRightToLeft  — scans the exponent LSB-first; same multiplication
//                     count, but the square chain is data-independent.
//   * kSlidingWindow — w-bit windows over precomputed odd powers; fewer
//                     multiplications for long exponents.
//   * kMontgomeryLadder — one square and one multiply per bit regardless
//                     of the bit value; the constant operation sequence
//                     defeats simple power analysis (§5 of the paper notes
//                     data-dependent steps are presumed SCA-vulnerable).
//
// Every algorithm records the sequence of MMM operations it issued so the
// sca module can mount (and the benches can quantify) SPA-style attacks.
#pragma once

#include <cstdint>
#include <vector>

#include "bignum/biguint.hpp"
#include "bignum/montgomery.hpp"

namespace mont::core {

enum class ExpAlgorithm {
  kLeftToRight,
  kRightToLeft,
  kSlidingWindow,
  kMontgomeryLadder,
};

const char* ExpAlgorithmName(ExpAlgorithm algorithm);

/// One MMM issued by an exponentiation, as an SPA observer would see it.
enum class MmmOp : std::uint8_t {
  kSquare,    // operands identical
  kMultiply,  // operands differ
};

/// Operation statistics plus the full issue trace.
struct ExpTrace {
  std::uint64_t squarings = 0;
  std::uint64_t multiplications = 0;
  std::uint64_t precompute_mmms = 0;  // table building + domain entry/exit
  std::vector<MmmOp> operations;      // main-loop issue order only

  std::uint64_t TotalMmms() const {
    return squarings + multiplications + precompute_mmms;
  }
  /// Latency on the MMMC at 3l+4 cycles per operation.
  std::uint64_t ModeledCycles(std::size_t l) const {
    return TotalMmms() * (3 * static_cast<std::uint64_t>(l) + 4);
  }
};

/// Modular exponentiation engine offering all four algorithms over one
/// modulus.  All values move through the paper's Algorithm 2; results are
/// canonical (< N).
class MultiExponentiator {
 public:
  explicit MultiExponentiator(bignum::BigUInt modulus);

  std::size_t l() const { return ctx_.l(); }
  const bignum::BigUInt& Modulus() const { return ctx_.Modulus(); }

  /// base^exponent mod N.  `window_bits` applies to kSlidingWindow only
  /// (2..8).  `trace`, when non-null, receives the operation record.
  bignum::BigUInt ModExp(const bignum::BigUInt& base,
                         const bignum::BigUInt& exponent,
                         ExpAlgorithm algorithm, int window_bits = 4,
                         ExpTrace* trace = nullptr) const;

 private:
  bignum::BigUInt LeftToRight(const bignum::BigUInt& m_mont,
                              const bignum::BigUInt& e, ExpTrace* t) const;
  bignum::BigUInt RightToLeft(const bignum::BigUInt& m_mont,
                              const bignum::BigUInt& e, ExpTrace* t) const;
  bignum::BigUInt SlidingWindow(const bignum::BigUInt& m_mont,
                                const bignum::BigUInt& e, int w,
                                ExpTrace* t) const;
  bignum::BigUInt Ladder(const bignum::BigUInt& m_mont,
                         const bignum::BigUInt& e, ExpTrace* t) const;

  bignum::BitSerialMontgomery ctx_;
};

/// The SPA "attack" on a recorded operation sequence: reconstructs the
/// exponent bits that a left-to-right binary trace leaks (a multiply after
/// a square reveals a 1-bit; a square followed by another square reveals a
/// 0-bit).  Returns the recovered bits, MSB first (excluding the implicit
/// leading 1).  For a ladder trace the recovery yields no information —
/// every bit position looks identical.
std::vector<bool> RecoverExponentFromTrace(const std::vector<MmmOp>& trace);

}  // namespace mont::core
