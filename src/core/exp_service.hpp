// exp_service.hpp — the batched, asynchronous modular-exponentiation
// service: the serving layer between crypto traffic (RSA, ECC) and the
// repo's multiplication backends.
//
// The paper's endpoint is one modular exponentiator; a deployment serves a
// *stream* of exponentiations over a handful of hot moduli.  This layer
// adds exactly what that takes:
//
//   * a thread-safe job queue — Submit() returns a std::future (with an
//     optional completion callback), SubmitBatch() fans a vector of jobs
//     out, SubmitPair() bonds two jobs for co-scheduling, and Post()
//     hands a continuation (e.g. RSA-CRT recombination + fault check) to
//     a dedicated thread so it never blocks a worker's array;
//   * a worker pool whose per-modulus multiplication engines are
//     LRU-cached, so repeated traffic on one key pays the R^2-mod-N
//     precomputation once (core/schedule.hpp LruCache);
//   * the v2 scheduler (core/schedule.hpp StealScheduler): per-worker
//     deques with cross-worker work stealing, hold-for-pairing with an
//     age-based unpair timeout, and adaptive batch claims — two queued
//     jobs of equal operand length are issued together onto one
//     dual-channel interleaved array, where each pair of MMMs costs 3l+5
//     cycles instead of the sequential 2(3l+4) = 6l+8.  The v1 shared
//     PairingQueue is selectable via Options::scheduler for A/B benches.
//
// Every scheduling decision is tick-driven behind an injectable Clock,
// and the threaded ExpService is a thin shell over the same scheduler +
// execution code (ExecutionCore) that the single-threaded
// DeterministicExecutor replays in virtual time — which is how the
// stealing/unpair/pipelining policy is unit-tested and benchmarked
// deterministically on any host.
//
// The multiplication backend is selected per service through the engine
// registry (Options::engine_name, core/engine.hpp) — any registered
// datapath serves, and with Options::engine_options.field = kGf2 a
// dual-field backend serves GF(2^m) jobs (the modulus is the field
// polynomial f and each job computes a field exponentiation, e.g. the
// Fermat inversions of BinaryCurve::ScalarMulBatch).  Individual jobs
// may override the backend and request exponent blinding (the sca lab's
// schedule countermeasure) through ExpJobOptions.
//
// PairedModExp() is the engine underneath the pairing path and is exposed
// directly: it zips the MMM streams of two independent exponentiations
// (which may use two different equal-length moduli — see the dual-modulus
// InterleavedMmmc) through any two backends of equal operand length, and
// can optionally run every product clock-by-clock on a dual-channel array
// model.  All execution paths are bit-identical; tests assert it.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bignum/biguint.hpp"
#include "bignum/random.hpp"
#include "core/engine.hpp"
#include "core/schedule.hpp"

namespace mont::core {

class InterleavedMmmc;

struct PairedExpResult {
  bignum::BigUInt a;     ///< base_a^exp_a mod N_a
  bignum::BigUInt b;     ///< base_b^exp_b mod N_b
  /// Shared issue accounting for the whole pair, charged per the engines'
  /// own per-multiply models: a dual-channel paired issue costs one cycle
  /// over the slower channel's multiply (3l+5 on the paper's array, whose
  /// model is 3l+4), leftovers issue singly at their engine's model.  The
  /// sum (the array occupancy) lands in engine_cycles.
  EngineStats stats;
  EngineStats stats_a;   ///< per-job operation counts (A)
  EngineStats stats_b;   ///< per-job operation counts (B)
};

/// Runs two independent modular exponentiations with their MMM streams
/// zipped onto one dual-channel array: while both jobs still have work,
/// every issue carries one MMM of each (3l+5 cycles for the two); once the
/// shorter job drains, the leftover stream issues singly (3l+4).  The two
/// engines may hold different moduli but must have equal operand length.
/// With `array` non-null every product additionally runs clock-by-clock on
/// that dual-modulus interleaved array model (its channels must match the
/// engines' moduli, and the engines must use the array's Montgomery
/// parameter R = 2^(l+2) — the bit-serial family); otherwise the engines'
/// own Multiply computes the products.
PairedExpResult PairedModExp(const MmmEngine& engine_a,
                             const bignum::BigUInt& base_a,
                             const bignum::BigUInt& exp_a,
                             const MmmEngine& engine_b,
                             const bignum::BigUInt& base_b,
                             const bignum::BigUInt& exp_b,
                             InterleavedMmmc* array = nullptr);

/// Which scheduling core dispatches jobs to workers.
enum class SchedulerKind {
  /// V1 (PR 3): one shared PairingQueue, pairing resolved at pop time.
  /// Kept as the A/B baseline bench_exp_service compares against.
  kSharedQueue,
  /// V2: per-worker deques + work stealing + hold-for-pairing with an
  /// age-based unpair timeout + adaptive batch claims (StealScheduler).
  kStealing,
};

/// Per-job execution options (the service-wide Options stay the
/// defaults).
struct ExpJobOptions {
  /// Registry backend for this job; empty falls back to
  /// Options::engine_name.  Validated at Submit time (unknown name or a
  /// field-capability mismatch throws std::invalid_argument).  Jobs on
  /// different backends coexist in one service — the engine cache keys
  /// on (engine, modulus) — and two equal-length jobs still co-schedule
  /// when both backends have pairable streams; a job on a non-pairable
  /// backend always issues solo.
  std::string engine_name;
  /// Non-zero: exponent randomization — the job executes with
  /// exponent + k * exponent_blind_order for a fresh random k per
  /// execution (same result whenever the order is a multiple of the
  /// base's multiplicative order; the reported stats then count the
  /// blinded exponent's operations).
  bignum::BigUInt exponent_blind_order;
  /// Bit width of the per-execution random k.
  std::size_t exponent_blind_bits = 16;
  /// Absolute deadline on the service clock (0 = none).  A job whose
  /// deadline has passed when a worker claims it is *cancelled before
  /// engine dispatch*: its future resolves with ExpResult::cancelled set
  /// (value empty, stats.cancelled = 1), its callback still fires, and
  /// the service counts it under Counters::deadline_exceeded.  A job
  /// already handed to an engine is never aborted mid-multiply — the
  /// deadline bounds queueing, not execution.
  std::uint64_t deadline = 0;
  /// Trace id stamped on every span/instant this job emits (0 = use the
  /// service-assigned job id).  Callers propagating a request through
  /// several jobs (the RSA-CRT halves of one signing request) set the
  /// request id here, so one id threads the whole lifecycle in a trace.
  std::uint64_t trace_id = 0;
};

struct ExpResult {
  bignum::BigUInt value;  ///< base^exponent mod modulus
  /// The job's ExpJobOptions::deadline expired before engine dispatch:
  /// `value` is empty and no MMM work was performed (stats.cancelled = 1,
  /// everything else zero).  Callers must check this before using value.
  bool cancelled = false;
  bool paired = false;    ///< ran co-scheduled with a partner job
  /// The issue group was stolen from another worker's deque (v2).
  bool stolen = false;
  /// Held for a partner that never came and released solo by the
  /// age-based unpair timeout (v2).
  bool unpaired_by_timeout = false;
  /// This job's operation counts plus the issue accounting of the issue
  /// group it ran in (shared by both jobs of a pair; a solo job's MMMs
  /// all count as single issues): engine_cycles is the group's array
  /// occupancy, charged per the engine's own per-multiply model — on
  /// the paper's array family, paired*(3l+5) + single*(3l+4).
  EngineStats stats;
};

// ---------------------------------------------------------------------------
// ExecutionCore — the execution substrate shared by the threaded service
// and the deterministic executor
// ---------------------------------------------------------------------------

/// Everything needed to run one issue group, with no opinion about
/// threads or time: backend resolution + validation, the per-(engine,
/// modulus) LRU engine cache, the exponent-blinding stream, and the
/// paired/solo group runner.  ExpService workers and the
/// DeterministicExecutor both execute through one of these, so the two
/// paths cannot diverge.
class ExecutionCore {
 public:
  /// `registry` (may be null) receives the engine.* counters: cycle and
  /// operation aggregates published per executed group, plus mirrors of
  /// the engine-cache hit/miss/eviction tallies.
  ExecutionCore(std::string engine_name, EngineOptions engine_options,
                std::size_t cache_capacity, std::uint64_t blind_seed,
                obs::Registry* registry = nullptr);

  struct JobSpec {
    bignum::BigUInt modulus;
    bignum::BigUInt base;
    bignum::BigUInt exponent;
    ExpJobOptions options;
  };

  struct Outcome {
    std::vector<ExpResult> results;  ///< one per job, in group order
    bool paired = false;             ///< really co-scheduled dual-channel
    std::exception_ptr error;        ///< set => results are invalid
  };

  /// Runs one issue group (1 or 2 jobs): a 2-job group co-schedules via
  /// PairedModExp when both backends pair and lengths/fields match,
  /// otherwise every job runs solo.  Never throws — failures land in
  /// Outcome::error.
  Outcome RunGroup(std::span<const JobSpec* const> group);

  /// Validates a modulus for this core's field (throws
  /// std::invalid_argument), same predicate the engine factory applies.
  void ValidateModulus(const bignum::BigUInt& modulus) const;
  /// Resolves a job's effective backend name and validates it (must be
  /// registered and support the service's field).
  const std::string& ResolveEngineName(const ExpJobOptions& options) const;
  /// Whether the job's backend models pairable dual-channel streams.
  bool Pairable(const ExpJobOptions& options) const;
  std::shared_ptr<const MmmEngine> AcquireEngine(
      const std::string& engine_name, const bignum::BigUInt& modulus);

  const std::string& engine_name() const { return engine_name_; }
  const EngineOptions& engine_options() const { return engine_options_; }
  std::uint64_t CacheHits() const;
  std::uint64_t CacheMisses() const;
  std::uint64_t CacheEvictions() const;

 private:
  bignum::BigUInt EffectiveExponent(const JobSpec& spec);
  /// Publishes one executed group's EngineStats into the engine.*
  /// counters (a pair's shared issue accounting is counted once).
  void PublishGroupStats(const EngineStats& stats);

  std::string engine_name_;
  EngineOptions engine_options_;

  std::mutex blind_mu_;  // guards blind_rng_ only
  bignum::RandomBigUInt blind_rng_;

  mutable std::mutex cache_mu_;  // independent of the service mutex
  mutable LruCache<std::string, std::shared_ptr<const MmmEngine>> cache_;

  struct {
    obs::Counter engine_cycles;
    obs::Counter paper_model_cycles;
    obs::Counter mmm_invocations;
    obs::Counter squarings;
    obs::Counter multiplications;
    obs::Counter cache_hits;
    obs::Counter cache_misses;
    obs::Counter cache_evictions;
  } metrics_;
};

/// Thread-safe batched/async exponentiation service.
///
/// Jobs execute on the registry backend named in Options (bit-identical
/// across backends, with cycles charged per each engine's validated
/// model), so the service is usable at RSA sizes while still reporting
/// hardware-faithful cycle accounting per job.
class ExpService {
 public:
  struct Options {
    std::size_t workers = 2;  ///< worker threads (>= 1; each owns one array)
    /// Distinct moduli whose engines stay precomputed.
    std::size_t engine_cache_capacity = 8;
    /// Issue two equal-length queued jobs per array pass (3l+5 per MMM
    /// pair); disable to force one job per pass (for A/B benches).  Jobs
    /// on a backend without pairable streams
    /// (EngineCaps::pairable_streams false — the word-serial datapaths)
    /// always issue solo regardless, so no backend reports fictitious
    /// dual-channel throughput.
    bool enable_pairing = true;
    /// Registry name of the multiplication backend a job runs on when it
    /// does not carry its own ExpJobOptions::engine_name override.
    std::string engine_name = "bit-serial";
    /// Backend construction options; field = kGf2 turns the service into
    /// a GF(2^m) field-exponentiation service (needs a dual-field
    /// backend; the constructor throws on a capability mismatch).  These
    /// options apply to per-job engine overrides too.
    EngineOptions engine_options;
    /// Seed of the service's exponent-blinding stream (deterministic;
    /// used only by jobs that request ExpJobOptions::exponent_blind_order).
    std::uint64_t blind_seed = 0x0b11d5eedull;

    // --- scheduler v2 knobs --------------------------------------------
    /// Scheduling core (v2 stealing by default; v1 shared queue for A/B).
    SchedulerKind scheduler = SchedulerKind::kStealing;
    /// Ticks (nanoseconds on the default clock) a lone hot-key job may
    /// be held waiting for a pairing partner before the age-based unpair
    /// timeout releases it solo.
    std::uint64_t unpair_timeout = 200'000;
    /// Idle workers steal the oldest group from other deques (v2 only).
    bool work_stealing = true;
    /// Upper bound of one adaptive batch claim (v2 only; >= 1).
    std::size_t max_batch = 8;
    /// Injected tick source for the scheduler's timing decisions; null
    /// uses a steady nanosecond clock.  Tests inject a ManualClock (the
    /// timed waits then poll).  Must outlive the service.
    const Clock* clock = nullptr;
    /// Fault-injection/observability hook: called by each worker thread,
    /// outside the service lock, immediately before it executes an issue
    /// group.  The chaos harness uses it to stall a worker; it must not
    /// call back into the service.  Null disables it.
    std::function<void(std::size_t worker)> worker_observer;

    // --- observability -------------------------------------------------
    /// Metrics registry absorbing every service counter (jobs.*,
    /// issues.*, engine.*, sched.*) behind stable dotted names.  Null:
    /// the service owns a private registry — Snapshot() and registry()
    /// read the same counters either way.  Must outlive the service.
    obs::Registry* registry = nullptr;
    /// Span tracer for the job lifecycle (job.submit, sched.*, job.run,
    /// job.cancelled).  Null disables tracing; a disabled tracer costs
    /// one relaxed load per site.  Must outlive the service.
    obs::Tracer* tracer = nullptr;
  };

  using JobOptions = ExpJobOptions;
  using Result = ExpResult;
  using Callback = std::function<void(const Result&)>;

  ExpService() : ExpService(Options{}) {}
  explicit ExpService(Options options);
  /// Drains every queued job and every posted continuation, then joins
  /// the workers — no future is abandoned, and no callback or
  /// continuation runs after destruction completes.
  ~ExpService();

  ExpService(const ExpService&) = delete;
  ExpService& operator=(const ExpService&) = delete;

  /// Enqueues one job; the optional callback runs on the worker thread
  /// after every future of the job's issue group is fulfilled, and any
  /// exception it throws is contained (it cannot withhold or poison a
  /// future).  Throws std::invalid_argument for an invalid modulus (GF(p):
  /// even or <= 1; GF(2^m): deg(f) < 2 or f(0) != 1).
  std::future<Result> Submit(bignum::BigUInt modulus, bignum::BigUInt base,
                             bignum::BigUInt exponent, Callback callback = {});

  /// Enqueues one job with per-job options (engine override and/or
  /// exponent blinding).  Throws std::invalid_argument for an invalid
  /// modulus, an unknown engine name, or a field-capability mismatch.
  std::future<Result> Submit(bignum::BigUInt modulus, bignum::BigUInt base,
                             bignum::BigUInt exponent, JobOptions options,
                             Callback callback = {});

  /// Enqueues bases[i]^exponents[i] mod modulus for every i (sizes must
  /// match).  Same-modulus batches pair with each other naturally.
  std::vector<std::future<Result>> SubmitBatch(
      const bignum::BigUInt& modulus, std::span<const bignum::BigUInt> bases,
      std::span<const bignum::BigUInt> exponents);

  /// Enqueues two jobs bonded for co-scheduling on one dual-channel array
  /// (e.g. the p- and q-halves of one RSA-CRT operation).  If the moduli
  /// cannot share an array (unequal bit lengths) or pairing is disabled,
  /// the jobs still run — just sequentially.
  std::pair<std::future<Result>, std::future<Result>> SubmitPair(
      bignum::BigUInt modulus_a, bignum::BigUInt base_a,
      bignum::BigUInt exponent_a, bignum::BigUInt modulus_b,
      bignum::BigUInt base_b, bignum::BigUInt exponent_b);

  /// Hands a continuation to the service's continuation thread — the
  /// pipelined-CRT hook: a job callback posts recombination + fault
  /// check here so the worker's array moves straight to the next issue.
  /// Continuations run in post order; exceptions are contained; the
  /// destructor drains every posted continuation before returning.
  /// Continuations must not Submit new jobs once destruction has begun.
  void Post(std::function<void()> continuation);

  /// Blocks until every job submitted so far has completed.
  void Wait();

  /// Compat snapshot of the registry-backed counters.  The obs::Registry
  /// (Options::registry, or the service's private one — see registry())
  /// is the single source of truth; Snapshot() materialises this struct
  /// from it so existing callers keep their field names.
  struct Counters {
    std::uint64_t jobs_submitted = 0;
    /// Jobs that executed to completion.  Conservation: on a drained
    /// service, jobs_submitted == jobs_completed + deadline_exceeded.
    std::uint64_t jobs_completed = 0;
    /// Jobs cancelled at claim time because their deadline had passed —
    /// dropped before engine dispatch, futures resolved with
    /// ExpResult::cancelled (no silent drops).
    std::uint64_t deadline_exceeded = 0;
    /// Issues that actually co-scheduled two jobs onto one dual-channel
    /// array.  A bonded pair whose backends cannot pair (no pairable
    /// streams, unequal lengths) executes — and is counted — as two
    /// solo issues instead.
    std::uint64_t pair_issues = 0;
    std::uint64_t single_issues = 0;  ///< jobs issued solo
    std::uint64_t engine_cache_hits = 0;
    std::uint64_t engine_cache_misses = 0;
    std::uint64_t engine_cache_evictions = 0;
    // --- v2 scheduler counters (zero under kSharedQueue) ---------------
    std::uint64_t steals = 0;           ///< groups taken from another deque
    std::uint64_t holds = 0;            ///< jobs held waiting for a partner
    std::uint64_t hold_pairs = 0;       ///< holds that found a partner
    std::uint64_t unpair_timeouts = 0;  ///< holds released solo by timeout
    std::uint64_t batch_acquires = 0;   ///< multi-group batch claims
    std::uint64_t max_batch_claimed = 0;
  };
  Counters Snapshot() const;

  /// The metrics registry every counter lives in: Options::registry when
  /// provided, the service's private one otherwise.  Registered names:
  /// jobs.submitted / jobs.completed / jobs.cancelled, issues.paired /
  /// issues.single, engine.*, sched.* — plus the jobs.conservation
  /// invariant (submitted == completed + cancelled on a drained
  /// service).
  obs::Registry& registry() const { return *registry_; }

  const Options& options() const { return options_; }

 private:
  struct Job {
    std::uint64_t id = 0;
    ExecutionCore::JobSpec spec;
    std::promise<Result> promise;
    Callback callback;
  };

  std::uint64_t NowTicks() const;
  std::future<Result> Enqueue(Job job, std::uint64_t key, bool pairable);
  void WorkerLoop(std::size_t index);
  /// Acquires the next issue batch for `index`, waiting as needed.
  /// Returns false when the worker should exit (stopping and drained).
  bool AcquireIssues(std::size_t index, std::unique_lock<std::mutex>& lk,
                     std::vector<StealScheduler::Issue>* issues);
  bool QueueDrainedLocked() const;
  void ContinuationLoop();

  Options options_;
  /// Backs registry() when Options::registry is null (declared before
  /// core_, which publishes into it).
  std::unique_ptr<obs::Registry> owned_registry_;
  obs::Registry* registry_ = nullptr;
  ExecutionCore core_;
  SteadyClock steady_clock_;
  const Clock* clock_ = nullptr;

  mutable std::mutex mu_;            // guards everything below it
  std::condition_variable cv_;       // queue became non-empty / stopping
  std::condition_variable idle_cv_;  // queue drained and no job in flight
  PairingQueue queue_;               // v1 core (kSharedQueue)
  std::unique_ptr<StealScheduler> sched_;  // v2 core (kStealing)
  std::unordered_map<std::uint64_t, Job> pending_;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_bond_key_ = 0;
  std::uint64_t next_solo_key_ = 0;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  struct ServiceMetrics {
    obs::Counter jobs_submitted;
    obs::Counter jobs_completed;
    obs::Counter jobs_cancelled;  // deadline_exceeded in the compat struct
    obs::Counter pair_issues;
    obs::Counter single_issues;
  };
  ServiceMetrics metrics_;

  std::mutex cont_mu_;  // guards the continuation queue only
  std::condition_variable cont_cv_;
  std::queue<std::function<void()>> continuations_;
  bool cont_stop_ = false;

  std::thread cont_thread_;
  std::vector<std::thread> workers_;  // last member: joins before teardown
};

// ---------------------------------------------------------------------------
// DeterministicExecutor — the scheduler in virtual time
// ---------------------------------------------------------------------------

/// Single-threaded discrete-event replay of the service: the same
/// ExecutionCore runs the jobs and the same scheduling core (v1 or v2,
/// per Options::scheduler) makes every dispatch decision, but time is a
/// virtual tick counter and "workers" are simulated array channels whose
/// job durations are the modelled engine cycles.  Every stealing /
/// hold / unpair / batch decision is therefore an exact, replayable
/// function of the submitted workload — the property tests and the
/// multi-tenant stress bench run here, immune to host timing.
///
/// Usage: schedule arrivals with SubmitAt()/SubmitPairAt()/PostAt(),
/// then RunUntilIdle().  Callbacks fire at the job's virtual completion
/// tick and may schedule further work (at >= Now()).
class DeterministicExecutor {
 public:
  using Result = ExpResult;
  using Callback = std::function<void(const Result&)>;

  explicit DeterministicExecutor(ExpService::Options options);

  std::future<Result> SubmitAt(std::uint64_t tick, bignum::BigUInt modulus,
                               bignum::BigUInt base, bignum::BigUInt exponent,
                               ExpJobOptions job_options = {},
                               Callback callback = {});
  std::pair<std::future<Result>, std::future<Result>> SubmitPairAt(
      std::uint64_t tick, bignum::BigUInt modulus_a, bignum::BigUInt base_a,
      bignum::BigUInt exponent_a, bignum::BigUInt modulus_b,
      bignum::BigUInt base_b, bignum::BigUInt exponent_b);
  /// Runs `continuation` at the given virtual tick (clamped to Now()).
  void PostAt(std::uint64_t tick, std::function<void()> continuation);

  /// Processes events until nothing remains; Now() then holds the last
  /// completion tick (the virtual makespan).
  void RunUntilIdle();
  std::uint64_t Now() const { return now_; }

  /// Per-job completion record — the bench derives latency percentiles
  /// and the tests assert scheduling decisions from these.
  struct JobRecord {
    std::uint64_t id = 0;
    std::uint64_t submit_tick = 0;
    std::uint64_t start_tick = 0;
    std::uint64_t finish_tick = 0;
    std::size_t worker = 0;
    bool paired = false;
    bool stolen = false;
    bool unpaired_by_timeout = false;
    bool bonded = false;
    /// Deadline expired in queue; finish_tick is the exact cancellation
    /// tick (== the deadline when it expired while queued/held).
    bool cancelled = false;
  };
  const std::vector<JobRecord>& Records() const { return records_; }

  ExpService::Counters Snapshot() const;
  /// V2 scheduler stats (null under kSharedQueue).  The pointee is a
  /// snapshot refreshed by each call — copy it before the next call.
  const StealScheduler::Stats* SchedulerStats() const {
    if (sched_ == nullptr) return nullptr;
    sched_stats_ = sched_->GetStats();
    return &sched_stats_;
  }

  /// The metrics registry (Options::registry or the executor's private
  /// one); same dotted names as the threaded service.
  obs::Registry& registry() const { return *registry_; }

 private:
  struct Job {
    std::uint64_t id = 0;
    ExecutionCore::JobSpec spec;
    std::promise<Result> promise;
    Callback callback;
    std::uint64_t submit_tick = 0;
  };
  struct Event {
    std::uint64_t tick = 0;
    std::uint64_t seq = 0;  ///< schedule order: total, deterministic tie-break
    std::function<void()> action;
  };
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      return a.tick != b.tick ? a.tick > b.tick : a.seq > b.seq;
    }
  };

  void Schedule(std::uint64_t tick, std::function<void()> action);
  /// The id stamped on this job's trace events (options.trace_id or the
  /// executor-assigned job id).
  static std::uint64_t TraceId(const Job& job);
  void EnterQueue(Job job, std::uint64_t key, bool pairable);
  /// Deadline event: if `id` is still queued (un-claimed, possibly held
  /// for pairing), releases it from the scheduler and resolves it
  /// cancelled at the current tick.  No-op once the job was dispatched.
  void CancelIfQueued(std::uint64_t id);
  /// Resolves `job` as deadline-cancelled at the current tick.
  void FinishCancelled(Job job);
  void TryDispatch();
  /// Claims the next issues for an idle worker (mode-dependent).
  std::vector<StealScheduler::Issue> AcquireFor(std::size_t worker);
  void ScheduleHoldWake();

  ExpService::Options options_;
  std::unique_ptr<obs::Registry> owned_registry_;
  obs::Registry* registry_ = nullptr;
  ExecutionCore core_;
  std::unique_ptr<StealScheduler> sched_;  // kStealing
  PairingQueue queue_;                     // kSharedQueue

  std::priority_queue<Event, std::vector<Event>, EventAfter> events_;
  std::uint64_t now_ = 0;
  std::uint64_t next_seq_ = 0;
  bool running_ = false;

  std::unordered_map<std::uint64_t, Job> pending_;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_bond_key_ = 0;
  std::uint64_t next_solo_key_ = 0;
  std::vector<bool> worker_busy_;
  std::uint64_t hold_wake_tick_ = 0;
  bool hold_wake_scheduled_ = false;

  struct {
    obs::Counter jobs_submitted;
    obs::Counter jobs_completed;
    obs::Counter jobs_cancelled;
    obs::Counter pair_issues;
    obs::Counter single_issues;
  } metrics_;
  mutable StealScheduler::Stats sched_stats_;  // SchedulerStats() storage
  std::vector<JobRecord> records_;
};

}  // namespace mont::core
