// exp_service.hpp — the batched, asynchronous modular-exponentiation
// service: the serving layer between crypto traffic (RSA, ECC) and the
// repo's multiplication backends.
//
// The paper's endpoint is one modular exponentiator; a deployment serves a
// *stream* of exponentiations over a handful of hot moduli.  This layer
// adds exactly what that takes:
//
//   * a thread-safe job queue — Submit() returns a std::future (with an
//     optional completion callback), SubmitBatch() fans a vector of jobs
//     out, SubmitPair() bonds two jobs for co-scheduling;
//   * a worker pool whose per-modulus multiplication engines are
//     LRU-cached, so repeated traffic on one key pays the R^2-mod-N
//     precomputation once (core/schedule.hpp LruCache);
//   * the pairing scheduler (core/schedule.hpp PairingQueue): two queued
//     jobs of equal operand length are issued together onto one
//     dual-channel interleaved array, where each pair of MMMs costs 3l+5
//     cycles instead of the sequential 2(3l+4) = 6l+8 — throughput per
//     array nearly doubles whenever the queue is two deep.
//
// The multiplication backend is selected per service through the engine
// registry (Options::engine_name, core/engine.hpp) — any registered
// datapath serves, and with Options::engine_options.field = kGf2 a
// dual-field backend serves GF(2^m) jobs (the modulus is the field
// polynomial f and each job computes a field exponentiation, e.g. the
// Fermat inversions of BinaryCurve::ScalarMulBatch).  Individual jobs
// may override the backend and request exponent blinding (the sca lab's
// schedule countermeasure) through JobOptions.
//
// PairedModExp() is the engine underneath the pairing path and is exposed
// directly: it zips the MMM streams of two independent exponentiations
// (which may use two different equal-length moduli — see the dual-modulus
// InterleavedMmmc) through any two backends of equal operand length, and
// can optionally run every product clock-by-clock on a dual-channel array
// model.  All execution paths are bit-identical; tests assert it.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bignum/biguint.hpp"
#include "bignum/random.hpp"
#include "core/engine.hpp"
#include "core/schedule.hpp"

namespace mont::core {

class InterleavedMmmc;

struct PairedExpResult {
  bignum::BigUInt a;     ///< base_a^exp_a mod N_a
  bignum::BigUInt b;     ///< base_b^exp_b mod N_b
  /// Shared issue accounting for the whole pair, charged per the engines'
  /// own per-multiply models: a dual-channel paired issue costs one cycle
  /// over the slower channel's multiply (3l+5 on the paper's array, whose
  /// model is 3l+4), leftovers issue singly at their engine's model.  The
  /// sum (the array occupancy) lands in engine_cycles.
  EngineStats stats;
  EngineStats stats_a;   ///< per-job operation counts (A)
  EngineStats stats_b;   ///< per-job operation counts (B)
};

/// Runs two independent modular exponentiations with their MMM streams
/// zipped onto one dual-channel array: while both jobs still have work,
/// every issue carries one MMM of each (3l+5 cycles for the two); once the
/// shorter job drains, the leftover stream issues singly (3l+4).  The two
/// engines may hold different moduli but must have equal operand length.
/// With `array` non-null every product additionally runs clock-by-clock on
/// that dual-modulus interleaved array model (its channels must match the
/// engines' moduli, and the engines must use the array's Montgomery
/// parameter R = 2^(l+2) — the bit-serial family); otherwise the engines'
/// own Multiply computes the products.
PairedExpResult PairedModExp(const MmmEngine& engine_a,
                             const bignum::BigUInt& base_a,
                             const bignum::BigUInt& exp_a,
                             const MmmEngine& engine_b,
                             const bignum::BigUInt& base_b,
                             const bignum::BigUInt& exp_b,
                             InterleavedMmmc* array = nullptr);

/// Thread-safe batched/async exponentiation service.
///
/// Jobs execute on the registry backend named in Options (bit-identical
/// across backends, with cycles charged per each engine's validated
/// model), so the service is usable at RSA sizes while still reporting
/// hardware-faithful cycle accounting per job.
class ExpService {
 public:
  struct Options {
    std::size_t workers = 2;  ///< worker threads (>= 1; each owns one array)
    /// Distinct moduli whose engines stay precomputed.
    std::size_t engine_cache_capacity = 8;
    /// Issue two equal-length queued jobs per array pass (3l+5 per MMM
    /// pair); disable to force one job per pass (for A/B benches).  Jobs
    /// on a backend without pairable streams
    /// (EngineCaps::pairable_streams false — the word-serial datapaths)
    /// always issue solo regardless, so no backend reports fictitious
    /// dual-channel throughput.
    bool enable_pairing = true;
    /// Registry name of the multiplication backend a job runs on when it
    /// does not carry its own JobOptions::engine_name override.
    std::string engine_name = "bit-serial";
    /// Backend construction options; field = kGf2 turns the service into
    /// a GF(2^m) field-exponentiation service (needs a dual-field
    /// backend; the constructor throws on a capability mismatch).  These
    /// options apply to per-job engine overrides too.
    EngineOptions engine_options;
    /// Seed of the service's exponent-blinding stream (deterministic;
    /// used only by jobs that request JobOptions::exponent_blind_order).
    std::uint64_t blind_seed = 0x0b11d5eedull;
  };

  /// Per-job execution options (the service-wide Options stay the
  /// defaults).
  struct JobOptions {
    /// Registry backend for this job; empty falls back to
    /// Options::engine_name.  Validated at Submit time (unknown name or a
    /// field-capability mismatch throws std::invalid_argument).  Jobs on
    /// different backends coexist in one service — the engine cache keys
    /// on (engine, modulus) — and two equal-length jobs still co-schedule
    /// when both backends have pairable streams; a job on a non-pairable
    /// backend always issues solo.
    std::string engine_name;
    /// Non-zero: exponent randomization — the job executes with
    /// exponent + k * exponent_blind_order for a fresh random k per
    /// execution (same result whenever the order is a multiple of the
    /// base's multiplicative order; the reported stats then count the
    /// blinded exponent's operations).
    bignum::BigUInt exponent_blind_order;
    /// Bit width of the per-execution random k.
    std::size_t exponent_blind_bits = 16;
  };

  struct Result {
    bignum::BigUInt value;  ///< base^exponent mod modulus
    bool paired = false;    ///< ran co-scheduled with a partner job
    /// This job's operation counts plus the issue accounting of the issue
    /// group it ran in (shared by both jobs of a pair; a solo job's MMMs
    /// all count as single issues): engine_cycles is the group's array
    /// occupancy, charged per the engine's own per-multiply model — on
    /// the paper's array family, paired*(3l+5) + single*(3l+4).
    EngineStats stats;
  };

  using Callback = std::function<void(const Result&)>;

  ExpService() : ExpService(Options{}) {}
  explicit ExpService(Options options);
  /// Drains every queued job, then joins the workers.
  ~ExpService();

  ExpService(const ExpService&) = delete;
  ExpService& operator=(const ExpService&) = delete;

  /// Enqueues one job; the optional callback runs on the worker thread
  /// after every future of the job's issue group is fulfilled, and any
  /// exception it throws is contained (it cannot withhold or poison a
  /// future).  Throws std::invalid_argument for an invalid modulus (GF(p):
  /// even or <= 1; GF(2^m): deg(f) < 2 or f(0) != 1).
  std::future<Result> Submit(bignum::BigUInt modulus, bignum::BigUInt base,
                             bignum::BigUInt exponent, Callback callback = {});

  /// Enqueues one job with per-job options (engine override and/or
  /// exponent blinding).  Throws std::invalid_argument for an invalid
  /// modulus, an unknown engine name, or a field-capability mismatch.
  std::future<Result> Submit(bignum::BigUInt modulus, bignum::BigUInt base,
                             bignum::BigUInt exponent, JobOptions options,
                             Callback callback = {});

  /// Enqueues bases[i]^exponents[i] mod modulus for every i (sizes must
  /// match).  Same-modulus batches pair with each other naturally.
  std::vector<std::future<Result>> SubmitBatch(
      const bignum::BigUInt& modulus, std::span<const bignum::BigUInt> bases,
      std::span<const bignum::BigUInt> exponents);

  /// Enqueues two jobs bonded for co-scheduling on one dual-channel array
  /// (e.g. the p- and q-halves of one RSA-CRT operation).  If the moduli
  /// cannot share an array (unequal bit lengths) or pairing is disabled,
  /// the jobs still run — just sequentially.
  std::pair<std::future<Result>, std::future<Result>> SubmitPair(
      bignum::BigUInt modulus_a, bignum::BigUInt base_a,
      bignum::BigUInt exponent_a, bignum::BigUInt modulus_b,
      bignum::BigUInt base_b, bignum::BigUInt exponent_b);

  /// Blocks until every job submitted so far has completed.
  void Wait();

  struct Counters {
    std::uint64_t jobs_submitted = 0;
    std::uint64_t jobs_completed = 0;
    /// Issues that actually co-scheduled two jobs onto one dual-channel
    /// array.  A bonded pair whose backends cannot pair (no pairable
    /// streams, unequal lengths) executes — and is counted — as two
    /// solo issues instead.
    std::uint64_t pair_issues = 0;
    std::uint64_t single_issues = 0;  ///< jobs issued solo
    std::uint64_t engine_cache_hits = 0;
    std::uint64_t engine_cache_misses = 0;
    std::uint64_t engine_cache_evictions = 0;
  };
  Counters Snapshot() const;

  const Options& options() const { return options_; }

 private:
  struct Job {
    std::uint64_t id = 0;
    bignum::BigUInt modulus;
    bignum::BigUInt base;
    bignum::BigUInt exponent;
    JobOptions options;
    std::promise<Result> promise;
    Callback callback;
  };

  void ValidateModulus(const bignum::BigUInt& modulus) const;
  /// Resolves a job's effective backend name and validates it (must be
  /// registered and support the service's field).
  const std::string& ResolveEngineName(const JobOptions& options) const;
  /// The exponent a job actually executes with (blinding applied).
  bignum::BigUInt EffectiveExponent(const Job& job);
  std::future<Result> Enqueue(Job job, std::uint64_t key);
  void WorkerLoop();
  /// Runs one issue group and publishes its pair/single issue counters
  /// (before the promises resolve): a 2-job group counts one pair issue
  /// only when it really co-scheduled on a dual-channel array.
  void Execute(std::vector<Job> group);
  std::shared_ptr<const MmmEngine> AcquireEngine(
      const std::string& engine_name, const bignum::BigUInt& modulus);

  Options options_;

  mutable std::mutex mu_;            // guards everything below it
  std::condition_variable cv_;       // queue became non-empty / stopping
  std::condition_variable idle_cv_;  // queue drained and no job in flight
  PairingQueue queue_;
  std::unordered_map<std::uint64_t, Job> pending_;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_bond_key_ = 0;
  std::uint64_t next_solo_key_ = 0;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  Counters counters_;

  std::mutex blind_mu_;  // guards blind_rng_ only
  bignum::RandomBigUInt blind_rng_;

  mutable std::mutex cache_mu_;  // independent of mu_: cache lookups only
  LruCache<std::string, std::shared_ptr<const MmmEngine>> cache_;

  std::vector<std::thread> workers_;  // last member: joins before teardown
};

}  // namespace mont::core
