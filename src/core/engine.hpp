// engine.hpp — the unified modular-multiplication backend interface.
//
// The tree holds many Montgomery-multiplier datapaths: the paper's
// bit-serial systolic array (behavioural `Mmmc` and its gate-level
// netlist), the dual-channel interleaved array, the radix-2^alpha
// word-serial pipeline, the software references (bit-serial Algorithm 2
// and word-level CIOS), and the Blum–Paar comparison design.  Each used to
// expose a bespoke constructor/Multiply/stats shape, so every caller
// (exponentiator, service, crypto, benches) hard-coded one backend.
//
// `MmmEngine` is the one API they all satisfy:
//
//   * Multiply()   — the Montgomery product x*y*R^-1 in the engine's own
//                    chainable window, with per-multiply cycle accounting
//                    (measured clock-by-clock for the cycle-accurate
//                    engines, charged per the validated formula otherwise);
//   * ToMont() / FromMont() / Reduce() — domain entry/exit and canonical
//                    reduction, built on Multiply via MontFactor();
//   * ModExp()     — generic left-to-right square-and-multiply (§4.5,
//                    Algorithm 3) over Multiply, with normalized
//                    `EngineStats`;
//   * Caps()       — capability flags: dual-field GF(2^m) support,
//                    dual-modulus pairing, batch lanes, cycle accuracy.
//
// `EngineRegistry` maps string names to factories, so a workload selects
// its datapath by configuration ("mmmc", "interleaved", "high-radix",
// "word-mont", "blum-paar", "netlist-sim", "bit-serial") and every
// datapath becomes a drop-in, benchmarkable scenario.  The registered
// backends are asserted bit-identical on a shared operand sweep in
// tests/test_engine.cpp.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "bignum/biguint.hpp"

namespace mont::core {

/// Arithmetic field a backend operates in.  kGfP is the paper's integer
/// mode; kGf2 is the Savaş-style dual-field extension where the modulus is
/// the field polynomial f(x) and additions are carry-less.
enum class EngineField : std::uint8_t { kGfP, kGf2 };

const char* EngineFieldName(EngineField field);

/// Static capability advertisement of a backend.
struct EngineCaps {
  /// Supports GF(2^m) operation (EngineOptions::field = kGf2).
  bool gf2 = false;
  /// One physical array can serve two *different* equal-length moduli,
  /// one per channel (the dual-modulus interleaved datapath).
  bool dual_modulus = false;
  /// The backend models the paper's bit-serial array schedule, so two of
  /// its MMM streams can be co-scheduled onto the two channels of the
  /// C-slow (interleaved) variant of its datapath — the basis of the
  /// 3l+5-per-pair accounting.  Word-serial datapaths have no such idle
  /// parity and cannot claim the pairing credit.
  bool pairable_streams = false;
  /// Independent operand pairs MultiplyBatch() evaluates per pass.
  std::size_t batch_lanes = 1;
  /// Cycle counts are measured clock edge by clock edge rather than
  /// charged from the validated closed form.
  bool cycle_accurate = false;
};

/// Normalized per-workload accounting, shared by every backend and every
/// caller (exponentiator, paired exponentiation, service jobs).  Subsumes
/// the former ExponentiationStats and PairedExpStats.
struct EngineStats {
  std::uint64_t squarings = 0;
  std::uint64_t multiplications = 0;  ///< conditional multiplies (set bits)
  std::uint64_t mmm_invocations = 0;  ///< includes domain entry/exit
  /// Issue accounting when the workload ran under the dual-channel
  /// scheduler: paired issues carry two MMMs in 3l+5 cycles, single
  /// issues one MMM at the engine's per-multiply cost.
  std::uint64_t paired_issues = 0;
  std::uint64_t single_issues = 0;
  /// Engine occupancy: the sum of per-multiply cycle counts (measured for
  /// cycle-accurate engines, modelled otherwise), or the paired-issue
  /// charge paired*(3l+5) + single*(3l+4) under the scheduler.
  std::uint64_t engine_cycles = 0;
  /// The paper's §4.5 closed-form accounting for the same operation mix.
  std::uint64_t paper_model_cycles = 0;
  /// Jobs cancelled before engine dispatch (deadline expiry); such a job
  /// performed no MMM work, so every other field stays zero for it.
  std::uint64_t cancelled = 0;

  EngineStats& operator+=(const EngineStats& other);
};

/// Construction-time options for MakeEngine.
struct EngineOptions {
  EngineField field = EngineField::kGfP;
  /// Digit width for the "high-radix" backend (1..32).
  std::size_t alpha = 8;
};

/// Polymorphic modular-multiplication backend.  All methods are const and
/// safe to call concurrently: backends wrapping mutable hardware models
/// (mmmc, interleaved, netlist-sim) serialise internally — one array, one
/// multiplication in flight — while the software backends are lock-free.
class MmmEngine {
 public:
  virtual ~MmmEngine() = default;

  virtual std::string_view Name() const = 0;
  virtual EngineCaps Caps() const = 0;

  EngineField Field() const { return field_; }
  /// Operand bit length: the modulus bit length l for GF(p), the field
  /// degree m = deg(f) for GF(2^m).
  std::size_t l() const { return l_; }
  /// The modulus N (GF(p)) or field polynomial f(x) (GF(2^m)).
  const bignum::BigUInt& Modulus() const { return modulus_; }
  /// Exclusive operand bound of Multiply(): 2N for the no-final-subtraction
  /// designs (Walter's window), N for the word-level software backend,
  /// 2^(l+1) (degree <= l) for GF(2^m).
  const bignum::BigUInt& OperandBound() const { return operand_bound_; }

  /// Montgomery product x*y*R^-1 for the engine's own R, result inside
  /// OperandBound() (chainable).  Adds this multiplication's cycle count
  /// to *cycles when non-null.  Throws std::invalid_argument for operands
  /// outside the window.
  virtual bignum::BigUInt Multiply(const bignum::BigUInt& x,
                                   const bignum::BigUInt& y,
                                   std::uint64_t* cycles = nullptr) const = 0;

  /// The domain-entry operand: ToMont(x) == Multiply(x, MontFactor()),
  /// i.e. R^2 reduced by the modulus.
  virtual const bignum::BigUInt& MontFactor() const = 0;

  /// Per-multiplication cycle model (what Multiply charges when it cannot
  /// measure): 3l+4 for the paper's array, 3l+6 for Blum–Paar, the
  /// word-serial schedule for high-radix, word-MAC counts for word-mont.
  virtual std::uint64_t MultiplyCyclesModel() const = 0;

  /// Evaluates up to Caps().batch_lanes independent products per pass;
  /// the default runs them sequentially.  Sizes must match.
  virtual std::vector<bignum::BigUInt> MultiplyBatch(
      std::span<const bignum::BigUInt> xs, std::span<const bignum::BigUInt> ys,
      std::uint64_t* cycles = nullptr) const;

  /// Domain entry: x -> x*R (mod N), inside the operand window.
  bignum::BigUInt ToMont(const bignum::BigUInt& x,
                         std::uint64_t* cycles = nullptr) const;
  /// Domain exit, fully reduced: x -> x*R^-1 mod N (or mod f).
  bignum::BigUInt FromMont(const bignum::BigUInt& x,
                           std::uint64_t* cycles = nullptr) const;
  /// Canonical reduction: v mod N for GF(p), v(x) mod f(x) for GF(2^m).
  bignum::BigUInt Reduce(bignum::BigUInt v) const;

  /// base^exponent fully reduced, via left-to-right square-and-multiply
  /// with Montgomery pre-/post-processing exactly as in §4.5 — the same
  /// flow for every backend and both fields (for GF(2^m) this is field
  /// exponentiation, e.g. Fermat inversion a^(2^m-2)).
  bignum::BigUInt ModExp(const bignum::BigUInt& base,
                         const bignum::BigUInt& exponent,
                         EngineStats* stats = nullptr) const;

 protected:
  MmmEngine(bignum::BigUInt modulus, EngineField field,
            std::size_t operand_length, bignum::BigUInt operand_bound)
      : modulus_(std::move(modulus)),
        field_(field),
        l_(operand_length),
        operand_bound_(std::move(operand_bound)) {}

 private:
  bignum::BigUInt modulus_;
  EngineField field_;
  std::size_t l_;
  bignum::BigUInt operand_bound_;
};

/// String-keyed backend factory.  The built-in backends are registered on
/// first use; further backends can be registered at runtime (the name must
/// be unique).  All methods are thread-safe.
class EngineRegistry {
 public:
  using Factory = std::function<std::unique_ptr<MmmEngine>(
      bignum::BigUInt modulus, const EngineOptions& options)>;

  struct Entry {
    std::string description;  ///< one line, for listings and error texts
    EngineCaps caps;          ///< static capability advertisement
    Factory factory;
  };

  /// The process-wide registry, pre-populated with the built-in backends.
  static EngineRegistry& Global();

  /// Registers a backend; throws std::invalid_argument on a duplicate name.
  void Register(std::string name, Entry entry);

  /// Constructs the named backend over `modulus`.  Throws
  /// std::invalid_argument for an unknown name (the message lists the
  /// registered names) or a capability mismatch (e.g. options.field =
  /// kGf2 on a GF(p)-only backend).
  std::unique_ptr<MmmEngine> Make(std::string_view name,
                                  bignum::BigUInt modulus,
                                  const EngineOptions& options = {}) const;

  /// Capability entry for `name`, or nullptr if unregistered.  The
  /// pointer stays valid for the process lifetime (entries are never
  /// removed and the storage is node-stable).
  const Entry* Find(std::string_view name) const;

  /// Registered names, sorted.
  std::vector<std::string> Names() const;

 private:
  EngineRegistry();

  mutable std::mutex mu_;
  std::list<std::pair<std::string, Entry>> entries_;
};

/// Shorthand for EngineRegistry::Global().Make(...).
std::unique_ptr<MmmEngine> MakeEngine(std::string_view name,
                                      bignum::BigUInt modulus,
                                      const EngineOptions& options = {});

/// The per-field modulus rules every backend enforces — GF(p): odd > 1;
/// GF(2^m): deg(f) >= 2 and f(0) = 1.  Throws std::invalid_argument with
/// `who` as the message prefix.  Exposed so front doors (e.g. the
/// exponentiation service's Submit) validate with the same predicate the
/// registry factories apply, instead of drifting copies.
void ValidateEngineModulus(const bignum::BigUInt& modulus, EngineField field,
                           const char* who);

}  // namespace mont::core
