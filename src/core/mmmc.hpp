// mmmc.hpp — cycle-accurate behavioural model of the Montgomery Modular
// Multiplication Circuit (paper §4.2–§4.4).
//
// The model simulates, clock edge by clock edge, exactly the structure the
// paper describes:
//
//   * a linear systolic array of l+1 cells (rightmost / 1st-bit / regular /
//     leftmost, Fig. 1) computing Algorithm 2 on the schedule "cell j
//     processes iteration i at cycle 2i+j" (Fig. 2);
//   * X / Y / N operand registers, with X shifting right one bit every
//     second cycle (state MUL2) and zero-filling its MSB;
//   * an iteration counter (0..l+1) and a comparator raising `count-end`;
//   * the four-state ASM controller IDLE / MUL1 / MUL2 / OUT (Fig. 4);
//   * a skewed result-capture register: bit j of the result is captured in
//     the cycle cell j finishes its last iteration, enabled by a capture
//     token launched by the comparator and shifted along the array.  This
//     realises the datapath "T register" of Fig. 3 for a result that is
//     produced diagonally in time.
//
// One multiplication takes exactly 3l+4 clock cycles from the cycle START
// is sampled to the cycle DONE is asserted — the paper's headline count —
// which the tests assert for every operand length.
//
// The per-cell registered values are exposed so tests can check the cell
// recurrences (Eq. 4–9) and the invariant t_{i,0} = 0 directly.
#pragma once

#include <cstdint>
#include <vector>

#include "bignum/biguint.hpp"

namespace mont::core {

/// ASM controller states (paper Fig. 4).
enum class MmmcState : std::uint8_t { kIdle, kMul1, kMul2, kOut };

const char* MmmcStateName(MmmcState state);

/// Arithmetic field of the datapath (the dual-field extension of §2's
/// related work, Savaş/Tenca/Koç): kGfP is the paper's integer mode;
/// kGf2 reuses the identical cells with the carry chain gated to zero,
/// turning every adder into the XOR the polynomial field needs.
enum class FieldMode : std::uint8_t { kGfP, kGf2 };

/// Cycle-accurate Montgomery Modular Multiplication Circuit for a fixed
/// odd modulus N of bit length l.  Computes Algorithm 2:
/// inputs x, y in [0, 2N) -> output x*y*2^-(l+2) mod N, bounded below 2N.
class Mmmc {
 public:
  /// GF(p) mode: requires an odd modulus > 1 (l = its bit length).
  /// GF(2^m) mode: `modulus` is the field polynomial f(x) with f(0) = 1
  /// (l = deg f); operands are polynomials of degree <= l and the result
  /// is x*y*x^-(l+2) mod f on the same 3l+4-cycle schedule.
  /// Throws std::invalid_argument on invalid moduli.
  explicit Mmmc(bignum::BigUInt modulus, FieldMode mode = FieldMode::kGfP);

  std::size_t l() const { return l_; }
  const bignum::BigUInt& Modulus() const { return modulus_; }
  FieldMode Mode() const { return mode_; }

  // -- pin-level interface ---------------------------------------------------

  /// Drives the operand inputs and raises START for the next clock edge.
  /// Throws std::invalid_argument unless x, y < 2N.
  void ApplyInputs(const bignum::BigUInt& x, const bignum::BigUInt& y);

  /// Advances one clock edge.
  void Tick();

  /// DONE output: high for exactly the OUT-state cycle.
  bool Done() const { return state_ == MmmcState::kOut; }

  /// RESULT output bus; valid while Done() is high (and retained after).
  bignum::BigUInt Result() const;

  MmmcState State() const { return state_; }
  std::uint64_t CycleCount() const { return cycles_; }

  // -- convenience -----------------------------------------------------------

  /// Runs one complete multiplication (ApplyInputs + Tick until DONE) and
  /// returns the result.  `cycles_taken`, when non-null, receives the exact
  /// number of clock edges from START to DONE (always 3l+4).
  bignum::BigUInt Multiply(const bignum::BigUInt& x, const bignum::BigUInt& y,
                           std::uint64_t* cycles_taken = nullptr);

  // -- white-box observation for tests/benches --------------------------------

  /// Registered T bits t[1..l+1] (index 0 is the constant t_{i,0} = 0).
  const std::vector<std::uint8_t>& TBits() const { return t_; }
  /// Carry registers c0[0..l-1].
  const std::vector<std::uint8_t>& C0Bits() const { return c0_; }
  /// Carry registers c1[1..l-1] (index 0 unused).
  const std::vector<std::uint8_t>& C1Bits() const { return c1_; }
  /// Counter register (increments in MUL2, holds at l+1).
  std::uint64_t Counter() const { return counter_; }
  /// Comparator output (counter == l+1).
  bool CountEnd() const { return counter_ == l_ + 1; }

 private:
  /// One compute-cycle step.  `even_cycle` is true in MUL1 cycles (compute
  /// cycle index k even): cell j latches its output registers only when
  /// k and j have equal parity — its active phase on the 2i+j schedule.
  /// The alternating-phase enables are the hardware reason the ASM has two
  /// multiply states.
  void StepArray(bool even_cycle);

  bignum::BigUInt modulus_;
  FieldMode mode_ = FieldMode::kGfP;
  std::size_t l_;
  bignum::BigUInt operand_bound_;  // 2N for GF(p); 2^(l+1) for GF(2^m)

  // Static operand bits.
  std::vector<std::uint8_t> y_bits_;  // y_0..y_l
  std::vector<std::uint8_t> n_bits_;  // n_0..n_l (n_l = 0)

  // Datapath registers.
  std::vector<std::uint8_t> x_reg_;    // shift register, LSB presented to cell 0
  std::vector<std::uint8_t> t_;        // t[0..l+1]; t[0] stays 0
  std::vector<std::uint8_t> c0_;       // c0[0..l-1]
  std::vector<std::uint8_t> c1_;       // c1[0..l-1]; produced by cells 1..l-1
  std::vector<std::uint8_t> x_pipe_;   // x value visible to cell j (j=0 unused)
  std::vector<std::uint8_t> m_pipe_;   // m value visible to cell j (j=0 unused)
  std::vector<std::uint8_t> token_;    // capture token at cell j
  std::vector<std::uint8_t> result_;   // skew-captured result bits [0..l]

  std::uint64_t counter_ = 0;
  MmmcState state_ = MmmcState::kIdle;
  bool start_pending_ = false;
  bignum::BigUInt pending_x_;
  bignum::BigUInt pending_y_;
  std::uint64_t cycles_ = 0;
};

}  // namespace mont::core
