#include "core/exp_algorithms.hpp"

#include <stdexcept>

namespace mont::core {

using bignum::BigUInt;

const char* ExpAlgorithmName(ExpAlgorithm algorithm) {
  switch (algorithm) {
    case ExpAlgorithm::kLeftToRight: return "left-to-right binary";
    case ExpAlgorithm::kRightToLeft: return "right-to-left binary";
    case ExpAlgorithm::kSlidingWindow: return "sliding window";
    case ExpAlgorithm::kMontgomeryLadder: return "Montgomery ladder";
  }
  return "?";
}

MultiExponentiator::MultiExponentiator(BigUInt modulus)
    : ctx_(std::move(modulus)) {}

namespace {

void Record(ExpTrace* trace, MmmOp op) {
  if (trace == nullptr) return;
  trace->operations.push_back(op);
  if (op == MmmOp::kSquare) {
    ++trace->squarings;
  } else {
    ++trace->multiplications;
  }
}

void RecordPre(ExpTrace* trace, std::uint64_t count = 1) {
  if (trace != nullptr) trace->precompute_mmms += count;
}

}  // namespace

BigUInt MultiExponentiator::ModExp(const BigUInt& base, const BigUInt& exponent,
                                   ExpAlgorithm algorithm, int window_bits,
                                   ExpTrace* trace) const {
  const BigUInt& n = Modulus();
  if (exponent.IsZero()) return BigUInt{1} % n;
  const BigUInt m = base % n;
  const BigUInt m_mont = ctx_.MultiplyAlg2(m, ctx_.RSquaredModN());
  RecordPre(trace);

  BigUInt a;
  switch (algorithm) {
    case ExpAlgorithm::kLeftToRight:
      a = LeftToRight(m_mont, exponent, trace);
      break;
    case ExpAlgorithm::kRightToLeft:
      a = RightToLeft(m_mont, exponent, trace);
      break;
    case ExpAlgorithm::kSlidingWindow:
      if (window_bits < 2 || window_bits > 8) {
        throw std::invalid_argument("ModExp: window_bits must be in [2, 8]");
      }
      a = SlidingWindow(m_mont, exponent, window_bits, trace);
      break;
    case ExpAlgorithm::kMontgomeryLadder:
      a = Ladder(m_mont, exponent, trace);
      break;
  }

  BigUInt out = ctx_.MultiplyAlg2(a, BigUInt{1});
  RecordPre(trace);
  if (out >= n) out -= n;
  return out;
}

BigUInt MultiExponentiator::LeftToRight(const BigUInt& m_mont, const BigUInt& e,
                                        ExpTrace* t) const {
  BigUInt a = m_mont;
  for (std::size_t i = e.BitLength() - 1; i-- > 0;) {
    a = ctx_.MultiplyAlg2(a, a);
    Record(t, MmmOp::kSquare);
    if (e.Bit(i)) {
      a = ctx_.MultiplyAlg2(a, m_mont);
      Record(t, MmmOp::kMultiply);
    }
  }
  return a;
}

BigUInt MultiExponentiator::RightToLeft(const BigUInt& m_mont, const BigUInt& e,
                                        ExpTrace* t) const {
  // A accumulates; S holds m^(2^i).  One extra squaring chain, but the
  // squarings do not depend on the exponent bits at all.
  BigUInt one_mont = ctx_.MultiplyAlg2(ctx_.RSquaredModN(), BigUInt{1});
  RecordPre(t);
  BigUInt a = one_mont;
  BigUInt s = m_mont;
  const std::size_t bits = e.BitLength();
  for (std::size_t i = 0; i < bits; ++i) {
    if (e.Bit(i)) {
      a = ctx_.MultiplyAlg2(a, s);
      Record(t, MmmOp::kMultiply);
    }
    if (i + 1 < bits) {
      s = ctx_.MultiplyAlg2(s, s);
      Record(t, MmmOp::kSquare);
    }
  }
  return a;
}

BigUInt MultiExponentiator::SlidingWindow(const BigUInt& m_mont,
                                          const BigUInt& e, int w,
                                          ExpTrace* t) const {
  // Precompute odd powers m^1, m^3, ..., m^(2^w - 1) in the domain.
  const std::size_t table_size = std::size_t{1} << (w - 1);
  std::vector<BigUInt> odd_powers(table_size);
  odd_powers[0] = m_mont;
  const BigUInt m2 = ctx_.MultiplyAlg2(m_mont, m_mont);
  RecordPre(t);
  for (std::size_t i = 1; i < table_size; ++i) {
    odd_powers[i] = ctx_.MultiplyAlg2(odd_powers[i - 1], m2);
    RecordPre(t);
  }

  BigUInt a;
  bool started = false;
  std::ptrdiff_t i = static_cast<std::ptrdiff_t>(e.BitLength()) - 1;
  while (i >= 0) {
    if (!e.Bit(static_cast<std::size_t>(i))) {
      if (started) {
        a = ctx_.MultiplyAlg2(a, a);
        Record(t, MmmOp::kSquare);
      }
      --i;
      continue;
    }
    // Take the longest window ending in a 1-bit, at most w bits.
    std::ptrdiff_t bottom = i - w + 1;
    if (bottom < 0) bottom = 0;
    while (!e.Bit(static_cast<std::size_t>(bottom))) ++bottom;
    std::uint64_t value = 0;
    for (std::ptrdiff_t b = i; b >= bottom; --b) {
      value = (value << 1) | (e.Bit(static_cast<std::size_t>(b)) ? 1u : 0u);
    }
    const std::size_t width = static_cast<std::size_t>(i - bottom + 1);
    if (!started) {
      a = odd_powers[(value - 1) / 2];
      started = true;
    } else {
      for (std::size_t s = 0; s < width; ++s) {
        a = ctx_.MultiplyAlg2(a, a);
        Record(t, MmmOp::kSquare);
      }
      a = ctx_.MultiplyAlg2(a, odd_powers[(value - 1) / 2]);
      Record(t, MmmOp::kMultiply);
    }
    i = bottom - 1;
  }
  return a;
}

BigUInt MultiExponentiator::Ladder(const BigUInt& m_mont, const BigUInt& e,
                                   ExpTrace* t) const {
  // Joye-Yen ladder: (R0, R1) with R1 = R0 * m always; one multiply and
  // one square per bit, independent of the bit value.
  BigUInt r0 = ctx_.MultiplyAlg2(ctx_.RSquaredModN(), BigUInt{1});  // 1*R
  RecordPre(t);
  BigUInt r1 = m_mont;
  for (std::size_t i = e.BitLength(); i-- > 0;) {
    if (e.Bit(i)) {
      r0 = ctx_.MultiplyAlg2(r0, r1);
      Record(t, MmmOp::kMultiply);
      r1 = ctx_.MultiplyAlg2(r1, r1);
      Record(t, MmmOp::kSquare);
    } else {
      r1 = ctx_.MultiplyAlg2(r0, r1);
      Record(t, MmmOp::kMultiply);
      r0 = ctx_.MultiplyAlg2(r0, r0);
      Record(t, MmmOp::kSquare);
    }
  }
  return r0;
}

std::vector<bool> RecoverExponentFromTrace(const std::vector<MmmOp>& trace) {
  // Left-to-right binary: the loop body is "square [multiply]" per bit.
  // A square followed by a multiply leaks bit=1; a square followed by
  // another square (or end) leaks bit=0.  A constant S/M cadence (the
  // ladder) decodes to all-ones garbage with no correlation to the key —
  // callers compare recovered bits against truth to quantify leakage.
  std::vector<bool> bits;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (trace[i] != MmmOp::kSquare) continue;
    const bool followed_by_multiply =
        i + 1 < trace.size() && trace[i + 1] == MmmOp::kMultiply;
    bits.push_back(followed_by_multiply);
  }
  return bits;
}

}  // namespace mont::core
