// interleaved.hpp — dual-channel (C-slow) operation of the systolic array.
//
// On the 2i+j schedule each cell does useful work only every second cycle;
// the paper's MUL1/MUL2 alternation is exactly that idle phase.  This
// module fills the idle phase with a second, independent multiplication:
// channel A occupies even compute parities, channel B (started one cycle
// later) the odd ones.  Shared state (T, carries, x/m pipes) naturally
// time-multiplexes between the channels because every consumer reads
// values produced exactly one cycle earlier — the single exception is the
// leftmost cell's two top bits, whose two-cycle self-loop needs one extra
// register per channel.  Extra hardware: a second X register, a second
// Y register with a phase-driven mux per cell, a second result register —
// and throughput doubles: two products in 3l+5 cycles instead of 6l+8.
//
// The natural client is right-to-left exponentiation, where the square
// S <- S^2 and the conditional multiply A <- A*S of one iteration are
// independent: InterleavedExponentiator runs them as an (A, B) pair,
// cutting exponentiation latency by ~1.5x over the paper's Algorithm 3 on
// the same array area (quantified in bench_interleaved).
#pragma once

#include <cstdint>
#include <vector>

#include "bignum/biguint.hpp"
#include "bignum/montgomery.hpp"
#include "core/engine.hpp"

namespace mont::core {

/// Cycle-accurate dual-channel Montgomery multiplier (GF(p) only).
///
/// The two channels normally share one modulus, but since the modulus
/// enters each cell only through the n_j AND gate — on the same
/// phase-driven mux cadence as the Y operand — a second N register per
/// cell lets the channels serve two *different* odd moduli of equal bit
/// length (e.g. the p- and q-halves of one RSA-CRT operation).  The
/// dual-modulus constructor models exactly that: one array, two
/// independent modular multiplications per 3l+5 cycles.
class InterleavedMmmc {
 public:
  explicit InterleavedMmmc(bignum::BigUInt modulus);
  /// Dual-modulus form: channel A reduces modulo `modulus_a`, channel B
  /// modulo `modulus_b`.  Both must be odd, > 1 and of equal bit length
  /// (the cell count is shared); throws std::invalid_argument otherwise.
  InterleavedMmmc(bignum::BigUInt modulus_a, bignum::BigUInt modulus_b);

  std::size_t l() const { return l_; }
  const bignum::BigUInt& Modulus() const { return modulus_[0]; }
  /// Per-channel modulus (channel 0 = A, 1 = B).
  const bignum::BigUInt& Modulus(std::size_t channel) const {
    return modulus_[channel];
  }

  struct PairResult {
    bignum::BigUInt a;       // x_a * y_a * R^-1 mod 2N_a
    bignum::BigUInt b;       // x_b * y_b * R^-1 mod 2N_b
    std::uint64_t cycles = 0;  // total, load to last DONE (3l+5)
  };

  /// Runs the two independent multiplications concurrently.
  /// Channel operands must be < 2N of their channel's modulus.
  PairResult MultiplyPair(const bignum::BigUInt& x_a,
                          const bignum::BigUInt& y_a,
                          const bignum::BigUInt& x_b,
                          const bignum::BigUInt& y_b);

  /// Cycle count for one pair: channel B finishes one cycle after A.
  static std::uint64_t PairCycles(std::size_t l) { return 3 * l + 5; }

 private:
  bignum::BigUInt modulus_[2];  // per-channel modulus (usually identical)
  bignum::BigUInt two_n_[2];
  std::size_t l_;
  std::vector<std::uint8_t> n_bits_[2];
};

/// Right-to-left exponentiator over the dual-channel array: the square
/// stream runs on one channel while the accumulate stream uses the other.
class InterleavedExponentiator {
 public:
  explicit InterleavedExponentiator(bignum::BigUInt modulus);

  /// Issue accounting lands in the normalized EngineStats: paired_issues
  /// are charged 3l+5, single_issues 3l+4, their sum in engine_cycles.
  bignum::BigUInt ModExp(const bignum::BigUInt& base,
                         const bignum::BigUInt& exponent,
                         EngineStats* stats = nullptr);

 private:
  bignum::BitSerialMontgomery reference_;
  InterleavedMmmc circuit_;
};

}  // namespace mont::core
