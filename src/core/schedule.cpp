// schedule.cpp — the v2 scheduling core (StealScheduler) and the steady
// tick source.  The policy here is pure and externally synchronised; the
// threaded ExpService and the DeterministicExecutor are both thin shells
// over exactly this code, which is what makes the scheduler's behaviour
// unit-testable tick by tick.
#include "core/schedule.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>

namespace mont::core {

std::uint64_t SteadyClock::Now() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void ManualClock::Set(std::uint64_t tick) {
  if (tick < now_) {
    throw std::invalid_argument("ManualClock: time must not move backwards");
  }
  now_ = tick;
}

StealScheduler::StealScheduler(Config config) : config_(config) {
  if (config_.workers == 0) config_.workers = 1;
  if (config_.max_batch == 0) config_.max_batch = 1;
  deques_.resize(config_.workers);
  obs::Registry* registry = config_.registry;
  if (registry == nullptr) {
    owned_registry_ = std::make_unique<obs::Registry>();
    registry = owned_registry_.get();
  }
  metrics_.dispatched_groups = registry->GetCounter("sched.dispatched_groups");
  metrics_.pairs_formed = registry->GetCounter("sched.pairs_formed");
  metrics_.bonded_groups = registry->GetCounter("sched.bonded_groups");
  metrics_.holds = registry->GetCounter("sched.holds");
  metrics_.hold_pairs = registry->GetCounter("sched.hold_pairs");
  metrics_.unpair_timeouts = registry->GetCounter("sched.unpair_timeouts");
  metrics_.steals = registry->GetCounter("sched.steals");
  metrics_.batch_acquires = registry->GetCounter("sched.batch_acquires");
  metrics_.cancelled = registry->GetCounter("sched.cancelled");
  metrics_.max_batch_claimed = registry->GetGauge("sched.max_batch_claimed");
}

StealScheduler::Stats StealScheduler::GetStats() const {
  Stats stats;
  stats.dispatched_groups = metrics_.dispatched_groups.Value();
  stats.pairs_formed = metrics_.pairs_formed.Value();
  stats.bonded_groups = metrics_.bonded_groups.Value();
  stats.holds = metrics_.holds.Value();
  stats.hold_pairs = metrics_.hold_pairs.Value();
  stats.unpair_timeouts = metrics_.unpair_timeouts.Value();
  stats.steals = metrics_.steals.Value();
  stats.batch_acquires = metrics_.batch_acquires.Value();
  stats.max_batch_claimed =
      static_cast<std::uint64_t>(metrics_.max_batch_claimed.Value());
  stats.cancelled = metrics_.cancelled.Value();
  return stats;
}

bool StealScheduler::RecordArrivalAndClassify(std::uint64_t key,
                                              std::uint64_t now) {
  KeyTraffic& traffic = traffic_[key];
  bool hot = false;
  if (traffic.has_arrival) {
    const std::uint64_t gap = now - traffic.last_arrival;
    // EWMA with weight 1/4 on the newest gap: one slow outlier does not
    // instantly demote a hot key, a genuinely cold key stays cold.
    traffic.ewma_gap =
        traffic.has_gap ? (3 * traffic.ewma_gap + gap) / 4 : gap;
    traffic.has_gap = true;
    hot = traffic.ewma_gap <= config_.unpair_timeout;
  }
  traffic.last_arrival = now;
  traffic.has_arrival = true;
  return hot;
}

void StealScheduler::Dispatch(Group group) {
  // Least-loaded deque; ties resolve round-robin so equal-load dispatch
  // spreads instead of piling onto worker 0.
  std::size_t best = rr_cursor_ % config_.workers;
  for (std::size_t i = 0; i < config_.workers; ++i) {
    const std::size_t candidate = (rr_cursor_ + i) % config_.workers;
    if (deques_[candidate].size() < deques_[best].size()) best = candidate;
  }
  rr_cursor_ = (best + 1) % config_.workers;
  queued_jobs_ += group.count;
  metrics_.dispatched_groups.Increment();
  deques_[best].push_back(std::move(group));
  if (deques_[best].back().open_solo) {
    open_solos_[deques_[best].back().key] = &deques_[best].back();
  }
}

void StealScheduler::Submit(std::uint64_t id, std::uint64_t key,
                            bool pairable, std::uint64_t now) {
  if (!config_.enable_pairing || !pairable) {
    Group solo;
    solo.ids[0] = id;
    solo.count = 1;
    solo.key = key;
    solo.arrival = now;
    Dispatch(std::move(solo));
    return;
  }
  const bool hot = RecordArrivalAndClassify(key, now);
  // 1. A held partner on this key: form the pair and dispatch it.
  for (auto it = waiting_.begin(); it != waiting_.end(); ++it) {
    if (it->key != key) continue;
    Group pair;
    pair.ids[0] = it->id;
    pair.ids[1] = id;
    pair.count = 2;
    pair.key = key;
    pair.arrival = it->arrival;
    waiting_.erase(it);
    // The held job leaves the hold count before the pair re-enters the
    // queued count, or Idle() would never come back true.
    --queued_jobs_;
    metrics_.pairs_formed.Increment();
    metrics_.hold_pairs.Increment();
    if (config_.tracer != nullptr) {
      config_.tracer->Instant("sched.pair", id, 0, now,
                              {{"partner", pair.ids[0]}, {"key", key}});
    }
    Dispatch(std::move(pair));
    return;
  }
  // 2. An un-acquired solo group on this key: join it in place (this is
  //    what the v1 queue gets from pairing-at-pop; v2 keeps it).
  const auto open = open_solos_.find(key);
  if (open != open_solos_.end()) {
    Group* group = open->second;
    group->ids[1] = id;
    group->count = 2;
    group->open_solo = false;
    open_solos_.erase(open);
    ++queued_jobs_;
    metrics_.pairs_formed.Increment();
    if (config_.tracer != nullptr) {
      config_.tracer->Instant("sched.pair", id, 0, now,
                              {{"partner", group->ids[0]}, {"key", key}});
    }
    return;
  }
  // 3. Lone job.  On a hot key, while the pool has other work to chew
  //    on, hold it for a partner — the age timeout bounds the wait.
  if (hot && PoolBusy()) {
    Held held;
    held.id = id;
    held.key = key;
    held.arrival = now;
    held.ready_at = now + config_.unpair_timeout;
    waiting_.push_back(held);
    ++queued_jobs_;
    metrics_.holds.Increment();
    if (config_.tracer != nullptr) {
      config_.tracer->Instant("sched.hold", id, 0, now,
                              {{"key", key}, {"ready_at", held.ready_at}});
    }
    return;
  }
  // 4. Cold key or idle pool: dispatch immediately, but leave the group
  //    open for a same-key arrival to join before a worker claims it.
  Group solo;
  solo.ids[0] = id;
  solo.count = 1;
  solo.key = key;
  solo.arrival = now;
  solo.open_solo = true;
  Dispatch(std::move(solo));
}

void StealScheduler::SubmitBonded(std::uint64_t id_a, std::uint64_t id_b,
                                  std::uint64_t now) {
  if (!config_.enable_pairing) {
    // Matches the v1 semantics: with pairing disabled the bonded halves
    // still execute, just as two solo issues.
    Group first, second;
    first.ids[0] = id_a;
    first.count = 1;
    first.arrival = now;
    second.ids[0] = id_b;
    second.count = 1;
    second.arrival = now;
    Dispatch(std::move(first));
    Dispatch(std::move(second));
    return;
  }
  Group pair;
  pair.ids[0] = id_a;
  pair.ids[1] = id_b;
  pair.count = 2;
  pair.bonded = true;
  pair.arrival = now;
  metrics_.bonded_groups.Increment();
  Dispatch(std::move(pair));
}

std::optional<StealScheduler::Issue> StealScheduler::PopGroup(
    std::size_t worker, bool stolen) {
  Group group = std::move(deques_[worker].front());
  deques_[worker].pop_front();
  if (group.open_solo) open_solos_.erase(group.key);
  Issue issue;
  for (std::size_t i = 0; i < group.count; ++i) {
    if (group.cancelled[i]) continue;
    issue.ids[issue.count++] = group.ids[i];
  }
  if (issue.count == 0) return std::nullopt;  // every slot was cancelled
  // A pair whose partner was cancelled issues as a plain solo.
  issue.bonded = group.bonded && issue.count == 2;
  issue.stolen = stolen;
  issue.arrival = group.arrival;
  if (stolen) metrics_.steals.Increment();
  queued_jobs_ -= issue.count;
  ++in_flight_groups_;
  return issue;
}

std::optional<StealScheduler::Issue> StealScheduler::Acquire(
    std::size_t worker, std::uint64_t now) {
  // The outer loop only repeats when a popped group turns out to be a
  // fully-cancelled shell, which is discarded and costs nothing.
  for (;;) {
    // Oldest ready held job (deadline reached, partner never came).
    auto ready = waiting_.end();
    for (auto it = waiting_.begin(); it != waiting_.end(); ++it) {
      if (it->ready_at > now) continue;
      if (ready == waiting_.end() || it->arrival < ready->arrival) ready = it;
    }
    const bool own = !deques_[worker].empty();
    // Oldest-arrival wins between the worker's own deque front and the
    // ready held job, so holding can delay a job by at most its timeout —
    // never starve it behind fresher deque traffic.
    if (own && (ready == waiting_.end() ||
                deques_[worker].front().arrival <= ready->arrival)) {
      if (auto issue = PopGroup(worker, /*stolen=*/false)) return issue;
      continue;
    }
    if (ready != waiting_.end()) {
      Issue issue;
      issue.ids[0] = ready->id;
      issue.count = 1;
      issue.unpaired_by_timeout = true;
      issue.arrival = ready->arrival;
      waiting_.erase(ready);
      metrics_.unpair_timeouts.Increment();
      if (config_.tracer != nullptr) {
        config_.tracer->Instant("sched.unpair", issue.ids[0], worker, now,
                                {{"held_since", issue.arrival}});
      }
      --queued_jobs_;
      ++in_flight_groups_;
      return issue;
    }
    if (config_.work_stealing) {
      bool popped_shell = false;
      for (std::size_t i = 1; i < config_.workers; ++i) {
        const std::size_t victim = (worker + i) % config_.workers;
        if (deques_[victim].empty()) continue;
        if (auto issue = PopGroup(victim, /*stolen=*/true)) {
          if (config_.tracer != nullptr) {
            config_.tracer->Instant("sched.steal", issue->ids[0], worker, now,
                                    {{"victim", victim}});
          }
          return issue;
        }
        popped_shell = true;
        break;
      }
      if (popped_shell) continue;
    }
    return std::nullopt;
  }
}

bool StealScheduler::Cancel(std::uint64_t id) {
  // Held jobs are plain list entries: release immediately.
  for (auto it = waiting_.begin(); it != waiting_.end(); ++it) {
    if (it->id != id) continue;
    waiting_.erase(it);
    --queued_jobs_;
    metrics_.cancelled.Increment();
    return true;
  }
  // Queued groups are tombstoned in place (open_solos_ holds pointers
  // into the deques, so elements are never erased mid-deque).
  for (auto& deque : deques_) {
    for (Group& group : deque) {
      for (std::size_t i = 0; i < group.count; ++i) {
        if (group.ids[i] != id || group.cancelled[i]) continue;
        group.cancelled[i] = true;
        if (group.open_solo) {
          // No longer a valid upgrade target.
          open_solos_.erase(group.key);
          group.open_solo = false;
        }
        --queued_jobs_;
        metrics_.cancelled.Increment();
        return true;
      }
    }
  }
  return false;
}

std::size_t StealScheduler::AcquireBatch(std::size_t worker,
                                         std::uint64_t now,
                                         std::vector<Issue>* out) {
  std::size_t ready_groups = 0;
  for (const auto& deque : deques_) ready_groups += deque.size();
  for (const Held& held : waiting_) {
    if (held.ready_at <= now) ++ready_groups;
  }
  const std::size_t target = std::clamp<std::size_t>(
      ready_groups / config_.workers, 1, config_.max_batch);
  std::size_t claimed = 0;
  while (claimed < target) {
    auto issue = Acquire(worker, now);
    if (!issue.has_value()) break;
    out->push_back(*issue);
    ++claimed;
  }
  if (claimed > 1) {
    metrics_.batch_acquires.Increment();
    metrics_.max_batch_claimed.RecordMax(static_cast<std::int64_t>(claimed));
  }
  return claimed;
}

void StealScheduler::OnGroupDone() {
  if (in_flight_groups_ == 0) {
    throw std::logic_error("StealScheduler: OnGroupDone without Acquire");
  }
  --in_flight_groups_;
}

std::optional<std::uint64_t> StealScheduler::NextHoldDeadline() const {
  std::optional<std::uint64_t> deadline;
  for (const Held& held : waiting_) {
    if (!deadline.has_value() || held.ready_at < *deadline) {
      deadline = held.ready_at;
    }
  }
  return deadline;
}

bool StealScheduler::Idle() const { return queued_jobs_ == 0; }

std::size_t StealScheduler::QueueDepth(std::size_t worker) const {
  return deques_[worker].size();
}

}  // namespace mont::core
