// netlist_gen.hpp — generates the complete Montgomery Modular Multiplication
// Circuit as a gate-level netlist (the paper's Fig. 3 architecture), for a
// given operand length l, plus a full left-to-right modular exponentiator
// (the paper's §4.5 flow) built around one embedded MMMC.
//
// The generated circuits are the third — and lowest — fidelity level of the
// reproduction's validation chain:
//
//     gate-level netlist sim  ==  behavioural Mmmc  ==  software Algorithm 2
//
// The MMMC is also the artifact the fpga module maps and times to reproduce
// the paper's Table 2 (slices / clock period), and the artifact exported as
// Verilog by the netlist_export example.
//
// Security annotations: the exponent input bus of the exponentiator (and the
// operand buses of the MMMC, which carry key-derived values during an
// exponentiation) are marked as secret sources on the netlist, and the
// masked variant's mask bus as fresh randomness — analysis::TaintAnalysis
// consumes these to classify every net as Clean/Random/Blinded/Secret.
#pragma once

#include <cstddef>
#include <memory>

#include "rtl/components.hpp"
#include "rtl/netlist.hpp"

namespace mont::core {

/// Port map of a generated MMMC: every field is a net id (or bus of net
/// ids) inside some rtl::Netlist.  Split from MmmcNetlist so the same
/// circuit can either stand alone (BuildMmmcNetlist, ports are primary
/// inputs/outputs) or be embedded as a sub-block of a larger circuit
/// (BuildMmmcInto, ports are internal nets).
struct MmmcPorts {
  rtl::NetId start = rtl::kNoNet;
  rtl::Bus x_in;      // l+1 bits
  rtl::Bus y_in;      // l+1 bits
  rtl::Bus n_in;      // l bits (bit l of N is 0 by definition; in the
                      // dual-field variant's GF(2^m) mode these are f's
                      // coefficients 0..l-1, the top one being implicit)
  rtl::NetId fsel = rtl::kNoNet;  // dual-field only: 1 = GF(p), 0 = GF(2^m)
  rtl::NetId done = rtl::kNoNet;
  rtl::Bus result;    // l+1 bits
  // White-box nets for tests: state encoding and comparator output.
  rtl::NetId state_s0 = rtl::kNoNet;
  rtl::NetId state_s1 = rtl::kNoNet;
  rtl::NetId count_end = rtl::kNoNet;
  // White-box register probes (not marked as outputs, so they change
  // neither the exported Verilog nor the FPGA area/timing analysis).
  // Indexing mirrors Mmmc's register file: t_probe[j-1] is t[j] for
  // j = 1..l+2, c0_probe[j] is c0[j] for j = 0..l-1, and c1_probe[j-1]
  // is c1[j] for j = 1..l-1 — so a simulator and the behavioural model
  // can be compared register-for-register every clock edge (Eq. 4–9).
  rtl::Bus t_probe;   // l+2 bits
  rtl::Bus c0_probe;  // l bits
  rtl::Bus c1_probe;  // l-1 bits
  std::size_t l = 0;
  std::size_t counter_width = 0;
};

/// A standalone MMMC: the port map plus ownership of its netlist.
struct MmmcNetlist : MmmcPorts {
  std::unique_ptr<rtl::Netlist> netlist;
};

/// Builds the full MMMC (controller + datapath + systolic array) for
/// operand length l >= 2.  With `dual_field` the circuit gains an `fsel`
/// input that gates every carry (the Savaş-style dual-field extension):
/// fsel = 1 behaves exactly like the single-field circuit; fsel = 0
/// computes the GF(2^m) Montgomery product on the same schedule.
/// The x/y operand buses are annotated as secret sources (they carry
/// key-derived values when the MMMC runs inside an exponentiation).
MmmcNetlist BuildMmmcNetlist(std::size_t l, bool dual_field = false);

/// Emits the same MMMC into an existing netlist, with caller-provided port
/// nets: `start`, the operand/modulus buses (x and y of width l+1, n of
/// width l) and — for dual_field only — `fsel` may be any nets of `nl`
/// (primary inputs or internal logic).  Marks no outputs and annotates no
/// secrets; the returned port map's done/result/probe nets are internal.
MmmcPorts BuildMmmcInto(rtl::Netlist& nl, std::size_t l, bool dual_field,
                        rtl::NetId start, const rtl::Bus& x_in,
                        const rtl::Bus& y_in, const rtl::Bus& n_in,
                        rtl::NetId fsel = rtl::kNoNet);

/// Builds only the combinational systolic array (l+1 cells) with all cell
/// ports exposed as primary inputs/outputs — used for the Fig. 2 area and
/// critical-path experiments where the surrounding registers would blur the
/// cell-logic gate counts.  The x and m streams (key-derived during an
/// exponentiation) are annotated as secret sources.
struct SystolicArrayNetlist {
  std::unique_ptr<rtl::Netlist> netlist;
  rtl::Bus t_in;    // t[1..l+1] as inputs (index 0 -> t1)
  rtl::Bus x_in;    // x value per cell j = 0..l
  rtl::Bus m_in;    // m value per cell j = 1..l (cell 0 derives m)
  rtl::Bus y_in;    // y_0..y_l
  rtl::Bus n_in;    // n_1..n_{l-1} (bits used by inner cells)
  rtl::Bus c0_in;   // c0[0..l-1]
  rtl::Bus c1_in;   // c1[1..l-1]
  rtl::Bus t_out;   // t[1..l+1]
  rtl::Bus c0_out;  // c0[0..l-1]
  rtl::Bus c1_out;  // c1[1..l-1]
  rtl::NetId m_out = rtl::kNoNet;
  std::size_t l = 0;
};
SystolicArrayNetlist BuildSystolicArrayComb(std::size_t l);

/// Options of the generated exponentiator.
struct ExponentiatorNetlistOptions {
  /// Store the exponent as two boolean shares (e XOR r, r) refreshed from
  /// the r_in mask bus at load, recombining one bit at a time at the scan
  /// point — the gate-level equivalent of PR 5's key blinding.  The taint
  /// pass must show the cut: the key register file is Blinded instead of
  /// Secret, and only the recombination cone stays Secret.
  bool mask_exponent = false;
};

/// Port map of the generated left-to-right modular exponentiator.
///
/// The circuit runs the §4.5 binary method, square-and-multiply-ALWAYS
/// (one squaring MMM plus one multiply MMM per exponent bit, the multiply
/// committed only when the bit is 1), so the control schedule — and the
/// DONE latency of exactly l scan steps — is independent of the exponent.
/// Operands are exchanged in the Montgomery domain: x_in is x·R mod N,
/// one_in is R mod N, and result is x^e·R mod N (R = 2^(l+2)).
struct ExponentiatorNetlist {
  std::unique_ptr<rtl::Netlist> netlist;
  rtl::NetId start = rtl::kNoNet;
  rtl::Bus x_in;     // l+1 bits: base, Montgomery form
  rtl::Bus one_in;   // l+1 bits: R mod N
  rtl::Bus e_in;     // l bits: exponent, scanned MSB-first — secret source
  rtl::Bus n_in;     // l bits: modulus
  rtl::Bus r_in;     // l bits: fresh mask (masked variant only, else empty)
  rtl::NetId done = rtl::kNoNet;  // one-cycle pulse, result then readable
  rtl::Bus result;   // l+1 bits: x^e·R mod N (holds until the next start)
  MmmcPorts mmmc;    // the embedded multiplier's (internal) port map
  std::size_t l = 0;
  bool masked = false;
};

/// Builds the exponentiator for operand length l >= 2 (GF(p) only).
ExponentiatorNetlist BuildExponentiatorNetlist(
    std::size_t l, const ExponentiatorNetlistOptions& options = {});

}  // namespace mont::core
