// netlist_gen.hpp — generates the complete Montgomery Modular Multiplication
// Circuit as a gate-level netlist (the paper's Fig. 3 architecture), for a
// given operand length l.
//
// The generated circuit is the third — and lowest — fidelity level of the
// reproduction's validation chain:
//
//     gate-level netlist sim  ==  behavioural Mmmc  ==  software Algorithm 2
//
// It is also the artifact the fpga module maps and times to reproduce the
// paper's Table 2 (slices / clock period), and the artifact exported as
// Verilog by the netlist_export example.
#pragma once

#include <cstddef>
#include <memory>

#include "rtl/components.hpp"
#include "rtl/netlist.hpp"

namespace mont::core {

/// Port map of the generated MMMC.
struct MmmcNetlist {
  std::unique_ptr<rtl::Netlist> netlist;
  rtl::NetId start = rtl::kNoNet;
  rtl::Bus x_in;      // l+1 bits
  rtl::Bus y_in;      // l+1 bits
  rtl::Bus n_in;      // l bits (bit l of N is 0 by definition; in the
                      // dual-field variant's GF(2^m) mode these are f's
                      // coefficients 0..l-1, the top one being implicit)
  rtl::NetId fsel = rtl::kNoNet;  // dual-field only: 1 = GF(p), 0 = GF(2^m)
  rtl::NetId done = rtl::kNoNet;
  rtl::Bus result;    // l+1 bits
  // White-box nets for tests: state encoding and comparator output.
  rtl::NetId state_s0 = rtl::kNoNet;
  rtl::NetId state_s1 = rtl::kNoNet;
  rtl::NetId count_end = rtl::kNoNet;
  // White-box register probes (not marked as outputs, so they change
  // neither the exported Verilog nor the FPGA area/timing analysis).
  // Indexing mirrors Mmmc's register file: t_probe[j-1] is t[j] for
  // j = 1..l+2, c0_probe[j] is c0[j] for j = 0..l-1, and c1_probe[j-1]
  // is c1[j] for j = 1..l-1 — so a simulator and the behavioural model
  // can be compared register-for-register every clock edge (Eq. 4–9).
  rtl::Bus t_probe;   // l+2 bits
  rtl::Bus c0_probe;  // l bits
  rtl::Bus c1_probe;  // l-1 bits
  std::size_t l = 0;
  std::size_t counter_width = 0;
};

/// Builds the full MMMC (controller + datapath + systolic array) for
/// operand length l >= 2.  With `dual_field` the circuit gains an `fsel`
/// input that gates every carry (the Savaş-style dual-field extension):
/// fsel = 1 behaves exactly like the single-field circuit; fsel = 0
/// computes the GF(2^m) Montgomery product on the same schedule.
MmmcNetlist BuildMmmcNetlist(std::size_t l, bool dual_field = false);

/// Builds only the combinational systolic array (l+1 cells) with all cell
/// ports exposed as primary inputs/outputs — used for the Fig. 2 area and
/// critical-path experiments where the surrounding registers would blur the
/// cell-logic gate counts.
struct SystolicArrayNetlist {
  std::unique_ptr<rtl::Netlist> netlist;
  rtl::Bus t_in;    // t[1..l+1] as inputs (index 0 -> t1)
  rtl::Bus x_in;    // x value per cell j = 0..l
  rtl::Bus m_in;    // m value per cell j = 1..l (cell 0 derives m)
  rtl::Bus y_in;    // y_0..y_l
  rtl::Bus n_in;    // n_1..n_{l-1} (bits used by inner cells)
  rtl::Bus c0_in;   // c0[0..l-1]
  rtl::Bus c1_in;   // c1[1..l-1]
  rtl::Bus t_out;   // t[1..l+1]
  rtl::Bus c0_out;  // c0[0..l-1]
  rtl::Bus c1_out;  // c1[1..l-1]
  rtl::NetId m_out = rtl::kNoNet;
  std::size_t l = 0;
};
SystolicArrayNetlist BuildSystolicArrayComb(std::size_t l);

}  // namespace mont::core
