// area_model.hpp — closed-form area and critical-path models (paper §4.3).
//
// Two closed forms are provided side by side:
//
//  * PaperAreaFormula — exactly the expression printed in the paper:
//    (5l-3) XOR + (7l-7) AND + (4l-5) OR gates and 4l flip-flops, with the
//    critical path 2*T_FA(cin->cout) + T_HA(cin->cout).
//
//  * DerivedAreaFormula — the gate counts that follow from this repo's
//    literal construction of the Fig. 1 cells (HA = XOR+AND, FA = 2 HA + OR,
//    majority carries).  The slopes match the paper; the constant offsets
//    and the OR slope differ because the paper does not state its gate
//    decomposition conventions.  Tests assert the generated netlist matches
//    the derived formula *exactly*, and the benches print both next to the
//    measured netlist so the discrepancy is visible rather than hidden.
#pragma once

#include <cstddef>

namespace mont::core {

struct GateCounts {
  std::size_t xor_gates = 0;
  std::size_t and_gates = 0;
  std::size_t or_gates = 0;
  std::size_t flip_flops = 0;
};

/// The paper's published systolic-array area formula (§4.3).
GateCounts PaperAreaFormula(std::size_t l);

/// Gate counts of this repo's generated systolic array (combinational cell
/// logic only; see netlist_gen.* for the register inventory).
GateCounts DerivedArrayCombFormula(std::size_t l);

/// Flip-flop inventory of the generated array datapath:
/// T (l+1) + C0 (l) + C1 (l-1) + x pipe (l) + m pipe (l) + token (l).
std::size_t DerivedArrayFlipFlops(std::size_t l);

/// Per-cell gate counts for the four Fig. 1 cell types, as constructed here.
GateCounts RightmostCellGates();
GateCounts FirstBitCellGates();
GateCounts RegularCellGates();
GateCounts LeftmostCellGates();

}  // namespace mont::core
