#include "core/high_radix.hpp"

#include <stdexcept>

#include "bignum/bounds.hpp"

namespace mont::core {

using bignum::BigUInt;

HighRadixMultiplier::HighRadixMultiplier(BigUInt modulus, std::size_t alpha)
    : modulus_(std::move(modulus)), alpha_(alpha) {
  if (!modulus_.IsOdd() || modulus_ <= BigUInt{1}) {
    throw std::invalid_argument("HighRadixMultiplier: modulus must be odd > 1");
  }
  if (alpha_ < 1 || alpha_ > 32) {
    throw std::invalid_argument("HighRadixMultiplier: alpha must be in [1,32]");
  }
  modulus_times_two_ = modulus_ << 1;
  l_ = modulus_.BitLength();
  const std::size_t min_r = bignum::MinimalWalterExponent(modulus_);
  iterations_ = (min_r + alpha_ - 1) / alpha_;

  // n' = -N^-1 mod 2^alpha via Newton iteration on the low word of N.
  const std::uint64_t mask =
      alpha_ == 64 ? ~0ull : ((1ull << alpha_) - 1);  // alpha <= 32 anyway
  const std::uint64_t n0 = modulus_.ToUint64() & mask;
  std::uint64_t inv = 1;
  for (int iter = 0; iter < 6; ++iter) {
    inv = (inv * (2 - n0 * inv)) & mask;
  }
  n_prime_ = (0 - inv) & mask;

  const BigUInt r = R();
  r2_ = (r * r) % modulus_;
}

BigUInt HighRadixMultiplier::R() const {
  return BigUInt::PowerOfTwo(alpha_ * iterations_);
}

BigUInt HighRadixMultiplier::Multiply(const BigUInt& x,
                                      const BigUInt& y) const {
  if (x >= modulus_times_two_ || y >= modulus_times_two_) {
    throw std::invalid_argument("HighRadixMultiplier: operands must be < 2N");
  }
  const std::uint64_t mask = (alpha_ == 64) ? ~0ull : ((1ull << alpha_) - 1);
  BigUInt t;
  for (std::size_t i = 0; i < iterations_; ++i) {
    // x_i: the i-th alpha-bit digit of x.
    std::uint64_t xi = 0;
    for (std::size_t b = 0; b < alpha_; ++b) {
      if (x.Bit(i * alpha_ + b)) xi |= 1ull << b;
    }
    // T += x_i * Y.
    if (xi != 0) t += y * BigUInt{xi};
    // m_i = (t mod 2^alpha) * n' mod 2^alpha.
    const std::uint64_t t0 = t.ToUint64() & mask;
    const std::uint64_t mi = (t0 * n_prime_) & mask;
    if (mi != 0) t += modulus_ * BigUInt{mi};
    t >>= alpha_;
  }
  return t;
}

BigUInt HighRadixMultiplier::ModExp(const BigUInt& base,
                                    const BigUInt& exponent) const {
  if (exponent.IsZero()) return BigUInt{1} % modulus_;
  const BigUInt m = base % modulus_;
  const BigUInt m_mont = Multiply(m, r2_);
  BigUInt a = m_mont;
  for (std::size_t i = exponent.BitLength() - 1; i-- > 0;) {
    a = Multiply(a, a);
    if (exponent.Bit(i)) a = Multiply(a, m_mont);
  }
  BigUInt out = Multiply(a, BigUInt{1});
  if (out >= modulus_) out -= modulus_;
  return out;
}

std::uint64_t HighRadixMultiplier::MultiplyCycles() const {
  const std::uint64_t words =
      (static_cast<std::uint64_t>(l_) + 1 + alpha_ - 1) / alpha_;
  return 2 * static_cast<std::uint64_t>(iterations_) + words + 2;
}

}  // namespace mont::core
