#include "core/interleaved.hpp"

#include <stdexcept>

#include "bignum/montgomery.hpp"
#include "core/schedule.hpp"

namespace mont::core {

using bignum::BigUInt;

InterleavedMmmc::InterleavedMmmc(BigUInt modulus)
    : InterleavedMmmc(modulus, modulus) {}

InterleavedMmmc::InterleavedMmmc(BigUInt modulus_a, BigUInt modulus_b) {
  modulus_[0] = std::move(modulus_a);
  modulus_[1] = std::move(modulus_b);
  for (const BigUInt& n : modulus_) {
    if (!n.IsOdd() || n <= BigUInt{1}) {
      throw std::invalid_argument("InterleavedMmmc: modulus must be odd > 1");
    }
  }
  if (modulus_[0].BitLength() != modulus_[1].BitLength()) {
    throw std::invalid_argument(
        "InterleavedMmmc: channel moduli must have equal bit length "
        "(the cell count is shared)");
  }
  l_ = modulus_[0].BitLength();
  for (std::size_t ch = 0; ch < 2; ++ch) {
    two_n_[ch] = modulus_[ch] << 1;
    n_bits_[ch].assign(l_ + 1, 0);
    for (std::size_t j = 0; j < l_; ++j) {
      n_bits_[ch][j] = modulus_[ch].Bit(j) ? 1 : 0;
    }
  }
}

InterleavedMmmc::PairResult InterleavedMmmc::MultiplyPair(const BigUInt& x_a,
                                                          const BigUInt& y_a,
                                                          const BigUInt& x_b,
                                                          const BigUInt& y_b) {
  for (const BigUInt* operand : {&x_a, &y_a}) {
    if (*operand >= two_n_[0]) {
      throw std::invalid_argument("InterleavedMmmc: operands must be < 2N");
    }
  }
  for (const BigUInt* operand : {&x_b, &y_b}) {
    if (*operand >= two_n_[1]) {
      throw std::invalid_argument("InterleavedMmmc: operands must be < 2N");
    }
  }
  const std::size_t l = l_;

  // Per-channel operand bits.  Y is muxed into each cell by the channel
  // phase; X registers shift on their own channel's cadence.
  std::vector<std::vector<std::uint8_t>> y_bits(2,
                                                std::vector<std::uint8_t>(l + 1, 0));
  std::vector<std::vector<std::uint8_t>> x_reg(2,
                                               std::vector<std::uint8_t>(l + 1, 0));
  for (std::size_t b = 0; b <= l; ++b) {
    y_bits[0][b] = y_a.Bit(b) ? 1 : 0;
    y_bits[1][b] = y_b.Bit(b) ? 1 : 0;
    x_reg[0][b] = x_a.Bit(b) ? 1 : 0;
    x_reg[1][b] = x_b.Bit(b) ? 1 : 0;
  }

  // Shared array state: latched every cycle, channels alternate naturally.
  std::vector<std::uint8_t> t(l + 1, 0);   // t[1..l] (index j)
  std::vector<std::uint8_t> c0(l, 0);      // c0[0..l-1]
  std::vector<std::uint8_t> c1(l, 0);      // c1[1..l-1]
  std::vector<std::uint8_t> x_pipe(l + 1, 0);
  std::vector<std::uint8_t> m_pipe(l + 1, 0);
  std::vector<std::uint8_t> token(l + 1, 0);
  // The leftmost cell's two-cycle self-loop: per-channel top bits.
  std::uint8_t t_top1[2] = {0, 0};  // t[l+1] per channel
  std::uint8_t t_top2[2] = {0, 0};  // t[l+2] per channel
  // Per-channel result capture.
  std::vector<std::vector<std::uint8_t>> result(
      2, std::vector<std::uint8_t>(l + 1, 0));

  // Compute cycles k = 0 .. 3l+3: channel A's last capture is at k = 3l+2
  // (cell l, iteration l+1), channel B's one cycle later.
  const std::uint64_t last_cycle = 3 * static_cast<std::uint64_t>(l) + 3;
  for (std::uint64_t k = 0; k <= last_cycle; ++k) {
    std::vector<std::uint8_t> t_next = t;
    std::vector<std::uint8_t> c0_next = c0;
    std::vector<std::uint8_t> c1_next = c1;
    const auto channel_of = [&](std::size_t j) {
      return static_cast<std::size_t>((k - j) % 2);  // k >= j on live cells
    };

    // Rightmost cell (j = 0): channel = k % 2.
    const std::size_t ch0 = static_cast<std::size_t>(k % 2);
    const std::uint8_t x0 = x_reg[ch0][0];
    const std::uint8_t xy0 = static_cast<std::uint8_t>(x0 & y_bits[ch0][0]);
    const std::uint8_t m0 = static_cast<std::uint8_t>(t[1] ^ xy0);
    c0_next[0] = static_cast<std::uint8_t>(t[1] | xy0);

    // 1st-bit cell (j = 1).
    if (k >= 1) {
      const std::size_t ch = channel_of(1);
      const std::uint8_t a = l >= 2 ? t[2] : 0;
      const std::uint8_t b = static_cast<std::uint8_t>(x_pipe[1] & y_bits[ch][1]);
      const std::uint8_t c = static_cast<std::uint8_t>(m_pipe[1] & n_bits_[ch][1]);
      const std::uint8_t s1 = static_cast<std::uint8_t>(a ^ b ^ c);
      const std::uint8_t ca =
          static_cast<std::uint8_t>((a & b) | (a & c) | (b & c));
      t_next[1] = static_cast<std::uint8_t>(s1 ^ c0[0]);
      const std::uint8_t cb = static_cast<std::uint8_t>(s1 & c0[0]);
      c0_next[1] = static_cast<std::uint8_t>(ca ^ cb);
      c1_next[1] = static_cast<std::uint8_t>(ca & cb);
    }

    // Regular cells.
    for (std::size_t j = 2; j + 1 <= l && k >= j; ++j) {
      const std::size_t ch = channel_of(j);
      const std::uint8_t tin = t[j + 1];
      const std::uint8_t b = static_cast<std::uint8_t>(x_pipe[j] & y_bits[ch][j]);
      const std::uint8_t c = static_cast<std::uint8_t>(m_pipe[j] & n_bits_[ch][j]);
      const std::uint8_t s1 = static_cast<std::uint8_t>(tin ^ b ^ c);
      const std::uint8_t ca =
          static_cast<std::uint8_t>((tin & b) | (tin & c) | (b & c));
      t_next[j] = static_cast<std::uint8_t>(s1 ^ c0[j - 1]);
      const std::uint8_t cb = static_cast<std::uint8_t>(s1 & c0[j - 1]);
      c0_next[j] = static_cast<std::uint8_t>(ca ^ cb ^ c1[j - 1]);
      c1_next[j] = static_cast<std::uint8_t>((ca & cb) | (ca & c1[j - 1]) |
                                             (cb & c1[j - 1]));
    }

    // Leftmost cell (j = l): per-channel top bits.
    std::uint8_t leftmost_t = 0, leftmost_top1 = 0, leftmost_top2 = 0;
    std::size_t ch_l = 0;
    if (k >= l) {
      ch_l = channel_of(l);
      const std::uint8_t a = t_top1[ch_l];
      const std::uint8_t b = static_cast<std::uint8_t>(x_pipe[l] & y_bits[ch_l][l]);
      const std::uint8_t c = c0[l - 1];
      leftmost_t = static_cast<std::uint8_t>(a ^ b ^ c);
      const std::uint8_t ca =
          static_cast<std::uint8_t>((a & b) | (a & c) | (b & c));
      const std::uint8_t a2 = t_top2[ch_l];
      const std::uint8_t c1p = c1[l - 1];
      leftmost_top1 = static_cast<std::uint8_t>(a2 ^ ca ^ c1p);
      leftmost_top2 =
          static_cast<std::uint8_t>((a2 & ca) | (a2 & c1p) | (ca & c1p));
      t_next[l] = leftmost_t;
    }

    // Result capture: token[j] active during cycle k captures into the
    // channel that cell j is serving this cycle.
    for (std::size_t j = 1; j <= l; ++j) {
      if (!token[j]) continue;
      const std::size_t ch = channel_of(j);
      if (j < l) {
        result[ch][j - 1] = t_next[j];
      } else {
        result[ch][l - 1] = leftmost_t;
        result[ch][l] = leftmost_top1;
      }
    }

    // Latch.
    t = std::move(t_next);
    c0 = std::move(c0_next);
    c1 = std::move(c1_next);
    if (k >= l) {
      t_top1[ch_l] = leftmost_top1;
      t_top2[ch_l] = leftmost_top2;
    }
    for (std::size_t j = l; j >= 2; --j) {
      x_pipe[j] = x_pipe[j - 1];
      m_pipe[j] = m_pipe[j - 1];
    }
    x_pipe[1] = x0;
    m_pipe[1] = m0;
    for (std::size_t j = l; j >= 1; --j) token[j] = token[j - 1];
    // Token injections: channel A's final iteration reaches cell 0 at
    // k = 2l+2, channel B's at 2l+3.
    token[0] =
        (k + 1 == 2 * l + 2 || k + 1 == 2 * l + 3) ? 1 : 0;
    // Both X registers shift at the end of odd cycles: channel A consumed
    // x_i during the even cycle 2i and channel B during the odd cycle
    // 2i+1, so the end of cycle 2i+1 is past both consumptions.
    if (k % 2 == 1) {
      for (auto& reg : x_reg) {
        for (std::size_t b = 0; b + 1 <= l; ++b) reg[b] = reg[b + 1];
        reg[l] = 0;
      }
    }
  }

  PairResult out;
  for (std::size_t b = 0; b <= l; ++b) {
    if (result[0][b]) out.a.SetBit(b, true);
    if (result[1][b]) out.b.SetBit(b, true);
  }
  out.cycles = PairCycles(l);
  return out;
}

InterleavedExponentiator::InterleavedExponentiator(BigUInt modulus)
    : reference_(modulus), circuit_(std::move(modulus)) {}

BigUInt InterleavedExponentiator::ModExp(const BigUInt& base,
                                         const BigUInt& exponent,
                                         EngineStats* stats) {
  const BigUInt& n = reference_.Modulus();
  const std::size_t l = reference_.l();
  const auto charge_single = [&] {
    if (stats != nullptr) {
      ++stats->single_issues;
      stats->engine_cycles += MultiplyCycles(l);
    }
  };
  const auto charge_pair = [&] {
    if (stats != nullptr) {
      ++stats->paired_issues;
      stats->engine_cycles += InterleavedMmmc::PairCycles(l);
    }
  };

  if (exponent.IsZero()) return BigUInt{1} % n;
  const BigUInt m = base % n;
  // Domain entry for both streams.
  const auto pre = circuit_.MultiplyPair(m, reference_.RSquaredModN(),
                                         BigUInt{1}, reference_.RSquaredModN());
  charge_pair();
  BigUInt s = pre.a;  // m in the Montgomery domain
  BigUInt a = pre.b;  // 1 in the Montgomery domain

  // Right-to-left: per bit, the accumulate (A *= S) and the square
  // (S = S^2) are independent and run as one interleaved pair.
  const std::size_t bits = exponent.BitLength();
  for (std::size_t i = 0; i < bits; ++i) {
    const bool more_squares = i + 1 < bits;
    if (exponent.Bit(i)) {
      if (more_squares) {
        const auto pair = circuit_.MultiplyPair(a, s, s, s);
        charge_pair();
        a = pair.a;
        s = pair.b;
      } else {
        const auto pair = circuit_.MultiplyPair(a, s, BigUInt{0}, BigUInt{0});
        charge_single();
        a = pair.a;
      }
    } else if (more_squares) {
      const auto pair = circuit_.MultiplyPair(s, s, BigUInt{0}, BigUInt{0});
      charge_single();
      s = pair.a;
    }
  }

  // Domain exit.
  const auto post = circuit_.MultiplyPair(a, BigUInt{1}, BigUInt{0}, BigUInt{0});
  charge_single();
  BigUInt out = post.a;
  if (out >= n) out -= n;
  return out;
}

}  // namespace mont::core
