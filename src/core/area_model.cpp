#include "core/area_model.hpp"

namespace mont::core {

GateCounts PaperAreaFormula(std::size_t l) {
  return GateCounts{
      .xor_gates = 5 * l - 3,
      .and_gates = 7 * l - 7,
      .or_gates = 4 * l - 5,
      .flip_flops = 4 * l,
  };
}

GateCounts RightmostCellGates() {
  // Fig. 1(b): one AND (x*y0), one XOR (m), one OR (c0).
  return GateCounts{.xor_gates = 1, .and_gates = 1, .or_gates = 1};
}

GateCounts FirstBitCellGates() {
  // Fig. 1(c): one FA (2 XOR + 2 AND + 1 OR), two HAs (1 XOR + 1 AND each),
  // two product ANDs.
  return GateCounts{.xor_gates = 4, .and_gates = 6, .or_gates = 1};
}

GateCounts RegularCellGates() {
  // Fig. 1(a): two FAs, one HA, two product ANDs.
  return GateCounts{.xor_gates = 5, .and_gates = 7, .or_gates = 2};
}

GateCounts LeftmostCellGates() {
  // Fig. 1(d) widened by one carry bit: two FAs plus one product AND
  // (the paper's single-XOR top merge drops a carry; see DESIGN.md).
  return GateCounts{.xor_gates = 4, .and_gates = 5, .or_gates = 2};
}

GateCounts DerivedArrayCombFormula(std::size_t l) {
  // 1 rightmost + 1 first-bit + (l-2) regular + 1 leftmost cells.
  const GateCounts rm = RightmostCellGates();
  const GateCounts fb = FirstBitCellGates();
  const GateCounts rg = RegularCellGates();
  const GateCounts lm = LeftmostCellGates();
  const std::size_t regulars = l - 2;
  return GateCounts{
      .xor_gates = rm.xor_gates + fb.xor_gates + lm.xor_gates +
                   regulars * rg.xor_gates,
      .and_gates = rm.and_gates + fb.and_gates + lm.and_gates +
                   regulars * rg.and_gates,
      .or_gates =
          rm.or_gates + fb.or_gates + lm.or_gates + regulars * rg.or_gates,
      .flip_flops = DerivedArrayFlipFlops(l),
  };
}

std::size_t DerivedArrayFlipFlops(std::size_t l) {
  // T (l+2) + C0 (l) + C1 (l-1) + x pipe (l) + m pipe (l) + token (l).
  return (l + 2) + l + (l - 1) + l + l + l;
}

}  // namespace mont::core
