// high_radix.hpp — radix-2^α Montgomery multiplication (the paper's §2:
// "In the case of higher radix it can perform multiplication in
// ceil((n+2)/α)" citing Batina & Muurling).
//
// The paper's array fixes α = 1 for simplicity and clock speed; this
// module implements the general word-serial datapath for α up to 32 so the
// radix trade-off can be measured rather than assumed: fewer iterations
// per multiplication, but a quotient-digit multiply (m_i = t_0 * N' mod
// 2^α) and wider partial products on the critical path.
//
// Functional semantics: with s = ceil(r/α) iterations where 2^r is the
// minimal Walter parameter (4N < 2^(αs)), inputs x, y < 2N produce
// T = x * y * 2^(-αs) mod N with T < 2N — the same chainable window as
// Algorithm 2, verified against it in the tests.
#pragma once

#include <cstdint>

#include "bignum/biguint.hpp"

namespace mont::core {

class HighRadixMultiplier {
 public:
  /// Requires an odd modulus > 1 and alpha in [1, 32].
  HighRadixMultiplier(bignum::BigUInt modulus, std::size_t alpha);

  std::size_t l() const { return l_; }
  std::size_t Alpha() const { return alpha_; }
  /// Number of word iterations s (ceil((l+2)/alpha) for full-size moduli).
  std::size_t Iterations() const { return iterations_; }
  /// The Montgomery parameter 2^(alpha * s).
  bignum::BigUInt R() const;
  /// -N^-1 mod 2^alpha (the quotient-digit constant; 1 when alpha = 1).
  std::uint64_t NPrime() const { return n_prime_; }
  /// R^2 mod N, the domain-entry factor: ToMont(x) == Multiply(x, R^2).
  const bignum::BigUInt& RSquaredModN() const { return r2_; }

  /// x * y * R^-1 mod N for x, y < 2N; result < 2N (chainable).
  bignum::BigUInt Multiply(const bignum::BigUInt& x,
                           const bignum::BigUInt& y) const;

  /// Modular exponentiation through this datapath (for end-to-end tests).
  bignum::BigUInt ModExp(const bignum::BigUInt& base,
                         const bignum::BigUInt& exponent) const;

  /// Cycle model for the word-serial systolic pipeline: the radix-2
  /// schedule 2s + w + 2 generalised to words (s iterations, w =
  /// ceil((l+1)/alpha) result words), plus load and output cycles.
  std::uint64_t MultiplyCycles() const;

 private:
  bignum::BigUInt modulus_;
  bignum::BigUInt modulus_times_two_;
  std::size_t l_;
  std::size_t alpha_;
  std::size_t iterations_;
  std::uint64_t n_prime_;
  bignum::BigUInt r2_;
};

}  // namespace mont::core
