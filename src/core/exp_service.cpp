#include "core/exp_service.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>

#include "core/interleaved.hpp"

namespace mont::core {

using bignum::BigUInt;

namespace {

// ---------------------------------------------------------------------------
// ModExpStream — one exponentiation unrolled into its MMM dependency chain
// ---------------------------------------------------------------------------

// Left-to-right square-and-multiply (§4.5, Algorithm 3) as a stream of MMM
// requests against one MmmEngine: NextOperands() exposes the operands of
// the next multiplication this job needs, Consume() feeds the product back
// and advances the state machine.  Every MMM depends on the previous one
// *of the same job*, so two streams can be zipped issue-for-issue onto the
// two channels of one array without any cross-job hazard.  The engine
// supplies the field semantics (GF(p) or GF(2^m)) via MontFactor/Reduce.
class ModExpStream {
 public:
  ModExpStream(const MmmEngine& engine, const BigUInt& base,
               const BigUInt& exponent, EngineStats* stats)
      : engine_(engine), exponent_(exponent), stats_(stats) {
    if (exponent_.IsZero()) {
      result_ = engine_.Reduce(BigUInt{1});
      phase_ = Phase::kDone;
      return;
    }
    m_ = engine_.Reduce(base);
    next_i_ = exponent_.BitLength() - 1;
    phase_ = Phase::kPre;
  }

  bool Done() const { return phase_ == Phase::kDone; }

  /// Operands of the next MMM; pointers stay valid until Consume().
  void NextOperands(const BigUInt** x, const BigUInt** y) const {
    switch (phase_) {
      case Phase::kPre:
        *x = &m_;
        *y = &engine_.MontFactor();
        return;
      case Phase::kSquare:
        *x = &a_;
        *y = &a_;
        return;
      case Phase::kMultiply:
        *x = &a_;
        *y = &m_mont_;
        return;
      case Phase::kPost:
        *x = &a_;
        *y = &one_;
        return;
      case Phase::kDone:
        break;
    }
    throw std::logic_error("ModExpStream: no operands after completion");
  }

  void Consume(BigUInt product) {
    if (stats_ != nullptr) ++stats_->mmm_invocations;
    switch (phase_) {
      case Phase::kPre:
        m_mont_ = std::move(product);
        a_ = m_mont_;
        AdvanceIteration();
        return;
      case Phase::kSquare:
        a_ = std::move(product);
        ++squarings_;
        if (stats_ != nullptr) ++stats_->squarings;
        if (exponent_.Bit(next_i_)) {
          phase_ = Phase::kMultiply;
        } else {
          AdvanceIteration();
        }
        return;
      case Phase::kMultiply:
        a_ = std::move(product);
        ++multiplications_;
        if (stats_ != nullptr) ++stats_->multiplications;
        AdvanceIteration();
        return;
      case Phase::kPost:
        result_ = engine_.Reduce(std::move(product));
        if (stats_ != nullptr) {
          // Accumulate this job's delta (like every other EngineStats
          // field), not a figure recomputed from the cumulative counters:
          // callers may reuse one stats struct across jobs.
          stats_->paper_model_cycles += ExponentiationCycles(
              engine_.l(), squarings_, multiplications_);
        }
        phase_ = Phase::kDone;
        return;
      case Phase::kDone:
        break;
    }
    throw std::logic_error("ModExpStream: consume after completion");
  }

  const BigUInt& Result() const { return result_; }

 private:
  enum class Phase { kPre, kSquare, kMultiply, kPost, kDone };

  // Exponent bit i is handled by the iteration entered when next_i_ == i;
  // the scan covers bits BitLength()-2 .. 0 (the top bit is the initial A).
  void AdvanceIteration() {
    if (next_i_ == 0) {
      phase_ = Phase::kPost;
    } else {
      --next_i_;
      phase_ = Phase::kSquare;
    }
  }

  const MmmEngine& engine_;
  const BigUInt exponent_;
  EngineStats* stats_;
  std::uint64_t squarings_ = 0;        // this job's own operation counts,
  std::uint64_t multiplications_ = 0;  // independent of the caller's struct
  const BigUInt one_{1};
  BigUInt m_;       // base, canonically reduced
  BigUInt m_mont_;  // base in the Montgomery domain
  BigUInt a_;       // accumulator
  BigUInt result_;
  std::size_t next_i_ = 0;
  Phase phase_ = Phase::kDone;
};

/// Runs one stream to completion on its own (single-channel issues only),
/// charging the engine's per-multiply model per MMM into `stats`.
BigUInt RunSoloStream(const MmmEngine& engine, const BigUInt& base,
                      const BigUInt& exponent, EngineStats* stats) {
  ModExpStream stream(engine, base, exponent, stats);
  std::uint64_t issues = 0;
  while (!stream.Done()) {
    const BigUInt* x = nullptr;
    const BigUInt* y = nullptr;
    stream.NextOperands(&x, &y);
    stream.Consume(engine.Multiply(*x, *y));
    ++issues;
  }
  if (stats != nullptr) {
    stats->single_issues += issues;
    stats->engine_cycles += issues * engine.MultiplyCyclesModel();
  }
  return stream.Result();
}

}  // namespace

// ---------------------------------------------------------------------------
// PairedModExp
// ---------------------------------------------------------------------------

PairedExpResult PairedModExp(const MmmEngine& engine_a, const BigUInt& base_a,
                             const BigUInt& exp_a, const MmmEngine& engine_b,
                             const BigUInt& base_b, const BigUInt& exp_b,
                             InterleavedMmmc* array) {
  if (engine_a.l() != engine_b.l()) {
    throw std::invalid_argument(
        "PairedModExp: moduli must have equal bit length to share an array");
  }
  if (engine_a.Field() != engine_b.Field()) {
    throw std::invalid_argument(
        "PairedModExp: both jobs must operate in the same field");
  }
  for (const MmmEngine* engine : {&engine_a, &engine_b}) {
    if (!engine->Caps().pairable_streams) {
      throw std::invalid_argument(
          std::string("PairedModExp: backend '") +
          std::string(engine->Name()) +
          "' has no dual-channel variant to co-schedule on");
    }
  }
  const std::size_t l = engine_a.l();
  if (array != nullptr) {
    if (array->l() != l || array->Modulus(0) != engine_a.Modulus() ||
        array->Modulus(1) != engine_b.Modulus()) {
      throw std::invalid_argument(
          "PairedModExp: array channels must match the engines' moduli");
    }
    // The array multiplies with R = 2^(l+2); an engine with another
    // Montgomery parameter (word-mont, high-radix, blum-paar) would feed
    // the streams an inconsistent domain-entry factor.
    for (const MmmEngine* engine : {&engine_a, &engine_b}) {
      const BigUInt r = BigUInt::PowerOfTwo(l + 2);
      if (engine->MontFactor() != (r * r) % engine->Modulus()) {
        throw std::invalid_argument(
            "PairedModExp: cycle-accurate array needs R = 2^(l+2) engines");
      }
    }
  }
  PairedExpResult out;
  ModExpStream stream_a(engine_a, base_a, exp_a, &out.stats_a);
  ModExpStream stream_b(engine_b, base_b, exp_b, &out.stats_b);

  // Issue accounting follows each engine's own per-multiply model (3l+4
  // for the paper's array family), so solo and paired execution of the
  // same job are charged consistently.  A dual-channel pair costs one
  // cycle over the slower channel's multiply — 3l+5 on the array.
  const std::uint64_t single_cost_a = engine_a.MultiplyCyclesModel();
  const std::uint64_t single_cost_b = engine_b.MultiplyCyclesModel();
  const std::uint64_t pair_cost = std::max(single_cost_a, single_cost_b) + 1;

  while (!stream_a.Done() || !stream_b.Done()) {
    if (!stream_a.Done() && !stream_b.Done()) {
      // Dual-channel issue: one MMM of each job in 3l+5 cycles.
      const BigUInt *xa = nullptr, *ya = nullptr, *xb = nullptr, *yb = nullptr;
      stream_a.NextOperands(&xa, &ya);
      stream_b.NextOperands(&xb, &yb);
      BigUInt ra, rb;
      if (array != nullptr) {
        auto pair = array->MultiplyPair(*xa, *ya, *xb, *yb);
        ra = std::move(pair.a);
        rb = std::move(pair.b);
      } else {
        ra = engine_a.Multiply(*xa, *ya);
        rb = engine_b.Multiply(*xb, *yb);
      }
      stream_a.Consume(std::move(ra));
      stream_b.Consume(std::move(rb));
      ++out.stats.paired_issues;
      out.stats.engine_cycles += pair_cost;
    } else {
      // One stream has drained: the leftover issues singly.
      const bool a_live = !stream_a.Done();
      ModExpStream& stream = a_live ? stream_a : stream_b;
      const MmmEngine& engine = a_live ? engine_a : engine_b;
      const BigUInt *x = nullptr, *y = nullptr;
      stream.NextOperands(&x, &y);
      BigUInt r;
      if (array != nullptr) {
        const BigUInt zero;
        auto pair = a_live ? array->MultiplyPair(*x, *y, zero, zero)
                           : array->MultiplyPair(zero, zero, *x, *y);
        r = a_live ? std::move(pair.a) : std::move(pair.b);
      } else {
        r = engine.Multiply(*x, *y);
      }
      stream.Consume(std::move(r));
      ++out.stats.single_issues;
      out.stats.engine_cycles += a_live ? single_cost_a : single_cost_b;
    }
  }
  out.a = stream_a.Result();
  out.b = stream_b.Result();
  return out;
}

// ---------------------------------------------------------------------------
// ExpService
// ---------------------------------------------------------------------------

ExpService::ExpService(Options options)
    : options_(std::move(options)),
      blind_rng_(options_.blind_seed),
      cache_(options_.engine_cache_capacity == 0
                 ? 1
                 : options_.engine_cache_capacity) {
  if (options_.workers == 0) options_.workers = 1;
  // Resolve the backend up front so a bad name or a capability mismatch
  // (e.g. a GF(2^m) service on a GF(p)-only backend) fails at
  // construction, not on the first worker thread.
  const EngineRegistry::Entry* entry =
      EngineRegistry::Global().Find(options_.engine_name);
  if (entry == nullptr) {
    throw std::invalid_argument("ExpService: unknown engine '" +
                                options_.engine_name + "'");
  }
  if (options_.engine_options.field == EngineField::kGf2 && !entry->caps.gf2) {
    throw std::invalid_argument("ExpService: engine '" + options_.engine_name +
                                "' does not support GF(2^m)");
  }
  // The 3l+5-per-pair credit models the C-slow variant of the array
  // schedule; a backend without pairable streams (word-serial datapaths)
  // must not report fictitious dual-channel throughput.  That is
  // enforced per job — non-pairable jobs get solo queue keys at Submit
  // and Execute falls back to solo issue for bonded pairs — rather than
  // by disabling pairing service-wide, so jobs whose JobOptions override
  // selects a pairable backend still co-schedule.
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ExpService::~ExpService() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ExpService::ValidateModulus(const BigUInt& modulus) const {
  // Same predicate the registry factory will apply on the worker thread —
  // fail at Submit time instead of poisoning a future later.
  ValidateEngineModulus(modulus, options_.engine_options.field, "ExpService");
}

const std::string& ExpService::ResolveEngineName(
    const JobOptions& options) const {
  if (options.engine_name.empty()) return options_.engine_name;
  // Per-job override: apply the same checks the constructor applied to
  // the default backend, at Submit time instead of on a worker thread.
  const EngineRegistry::Entry* entry =
      EngineRegistry::Global().Find(options.engine_name);
  if (entry == nullptr) {
    throw std::invalid_argument("ExpService: unknown engine '" +
                                options.engine_name + "'");
  }
  if (options_.engine_options.field == EngineField::kGf2 && !entry->caps.gf2) {
    throw std::invalid_argument("ExpService: engine '" + options.engine_name +
                                "' does not support GF(2^m)");
  }
  return options.engine_name;
}

BigUInt ExpService::EffectiveExponent(const Job& job) {
  if (job.options.exponent_blind_order.IsZero()) return job.exponent;
  BigUInt k;
  {
    std::lock_guard<std::mutex> lk(blind_mu_);
    k = blind_rng_.ExactBits(job.options.exponent_blind_bits);
  }
  return job.exponent + k * job.options.exponent_blind_order;
}

std::future<ExpService::Result> ExpService::Enqueue(Job job,
                                                    std::uint64_t key) {
  std::future<Result> future = job.promise.get_future();
  {
    std::lock_guard<std::mutex> lk(mu_);
    job.id = next_id_++;
    queue_.Push(job.id, key);
    pending_.emplace(job.id, std::move(job));
    ++counters_.jobs_submitted;
  }
  cv_.notify_one();
  return future;
}

std::future<ExpService::Result> ExpService::Submit(BigUInt modulus,
                                                   BigUInt base,
                                                   BigUInt exponent,
                                                   Callback callback) {
  return Submit(std::move(modulus), std::move(base), std::move(exponent),
                JobOptions{}, std::move(callback));
}

std::future<ExpService::Result> ExpService::Submit(BigUInt modulus,
                                                   BigUInt base,
                                                   BigUInt exponent,
                                                   JobOptions job_options,
                                                   Callback callback) {
  ValidateModulus(modulus);
  const EngineRegistry::Entry* entry =
      EngineRegistry::Global().Find(ResolveEngineName(job_options));
  if (!job_options.exponent_blind_order.IsZero() &&
      job_options.exponent_blind_bits == 0) {
    throw std::invalid_argument(
        "ExpService: exponent_blind_bits must be >= 1 when blinding");
  }
  Job job;
  // Opportunistic pairing key: the operand length — any two jobs of equal
  // l can share one array's two channels.  A job on a backend without
  // pairable streams gets a key of its own instead, so the scheduler
  // never hands it a partner its datapath cannot co-schedule.
  std::uint64_t key = modulus.BitLength();
  if (!entry->caps.pairable_streams) {
    std::lock_guard<std::mutex> lk(mu_);
    key = (std::uint64_t{1} << 62) | next_solo_key_++;
  }
  job.modulus = std::move(modulus);
  job.base = std::move(base);
  job.exponent = std::move(exponent);
  job.options = std::move(job_options);
  job.callback = std::move(callback);
  return Enqueue(std::move(job), key);
}

std::vector<std::future<ExpService::Result>> ExpService::SubmitBatch(
    const BigUInt& modulus, std::span<const BigUInt> bases,
    std::span<const BigUInt> exponents) {
  if (bases.size() != exponents.size()) {
    throw std::invalid_argument(
        "ExpService::SubmitBatch: bases/exponents size mismatch");
  }
  std::vector<std::future<Result>> futures;
  futures.reserve(bases.size());
  for (std::size_t i = 0; i < bases.size(); ++i) {
    futures.push_back(Submit(modulus, bases[i], exponents[i]));
  }
  return futures;
}

std::pair<std::future<ExpService::Result>, std::future<ExpService::Result>>
ExpService::SubmitPair(BigUInt modulus_a, BigUInt base_a, BigUInt exponent_a,
                       BigUInt modulus_b, BigUInt base_b, BigUInt exponent_b) {
  ValidateModulus(modulus_a);
  ValidateModulus(modulus_b);
  if (modulus_a.BitLength() != modulus_b.BitLength()) {
    // Unequal lengths cannot share an array; run them as plain jobs.
    auto first = Submit(std::move(modulus_a), std::move(base_a),
                        std::move(exponent_a));
    auto second = Submit(std::move(modulus_b), std::move(base_b),
                         std::move(exponent_b));
    return {std::move(first), std::move(second)};
  }
  // A bond key is unique to the pair (top bit marks the bonded keyspace),
  // so the partners can only ever pair with each other.  Both jobs enter
  // the queue under one lock: a worker must never observe one half of a
  // bond without the other, or the first half would issue alone.
  Job job_a, job_b;
  job_a.modulus = std::move(modulus_a);
  job_a.base = std::move(base_a);
  job_a.exponent = std::move(exponent_a);
  job_b.modulus = std::move(modulus_b);
  job_b.base = std::move(base_b);
  job_b.exponent = std::move(exponent_b);
  std::future<Result> first = job_a.promise.get_future();
  std::future<Result> second = job_b.promise.get_future();
  {
    std::lock_guard<std::mutex> lk(mu_);
    const std::uint64_t key = (std::uint64_t{1} << 63) | next_bond_key_++;
    for (Job* job : {&job_a, &job_b}) {
      job->id = next_id_++;
      queue_.Push(job->id, key, /*bonded=*/true);
      pending_.emplace(job->id, std::move(*job));
      ++counters_.jobs_submitted;
    }
  }
  cv_.notify_all();
  return {std::move(first), std::move(second)};
}

void ExpService::Wait() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [this] { return queue_.Empty() && in_flight_ == 0; });
}

ExpService::Counters ExpService::Snapshot() const {
  Counters counters;
  {
    std::lock_guard<std::mutex> lk(mu_);
    counters = counters_;
  }
  {
    std::lock_guard<std::mutex> lk(cache_mu_);
    counters.engine_cache_hits = cache_.Hits();
    counters.engine_cache_misses = cache_.Misses();
    counters.engine_cache_evictions = cache_.Evictions();
  }
  return counters;
}

std::shared_ptr<const MmmEngine> ExpService::AcquireEngine(
    const std::string& engine_name, const BigUInt& modulus) {
  // Hex digits never collide with the separator, so (engine, modulus)
  // pairs key uniquely — jobs on different backends share one cache.
  const std::string key = engine_name + ':' + modulus.ToHex();
  {
    std::lock_guard<std::mutex> lk(cache_mu_);
    if (auto* hit = cache_.Get(key)) return *hit;
  }
  // The R^2-mod-N precomputation (and for the simulated backends the
  // netlist build) is the expensive step the cache amortizes — do it
  // outside the lock so a miss never stalls workers hitting other moduli.
  // Two workers racing on the same cold modulus may both construct; the
  // first Put wins and the loser adopts it.
  std::shared_ptr<const MmmEngine> engine =
      MakeEngine(engine_name, modulus, options_.engine_options);
  std::lock_guard<std::mutex> lk(cache_mu_);
  if (cache_.Contains(key)) return *cache_.Get(key);
  cache_.Put(key, engine);
  return engine;
}

void ExpService::WorkerLoop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_.wait(lk, [this] { return stop_ || !queue_.Empty(); });
    if (queue_.Empty()) {
      if (stop_) return;
      continue;
    }
    const auto issue = queue_.Pop(options_.enable_pairing);
    std::vector<Job> group;
    group.reserve(issue->count);
    for (std::size_t i = 0; i < issue->count; ++i) {
      auto it = pending_.find(issue->ids[i]);
      group.push_back(std::move(it->second));
      pending_.erase(it);
    }
    in_flight_ += issue->count;
    lk.unlock();

    const std::size_t completed = group.size();
    Execute(std::move(group));

    lk.lock();
    in_flight_ -= completed;
    counters_.jobs_completed += completed;
    if (queue_.Empty() && in_flight_ == 0) idle_cv_.notify_all();
  }
}

void ExpService::Execute(std::vector<Job> group) {
  std::vector<Result> results(group.size());
  bool pair_executed = false;
  // Issue accounting records what actually ran — a popped pair whose
  // backends could not co-schedule executes (and is counted) as two solo
  // issues, never as fictitious dual-channel throughput.  Counters are
  // published before the promises resolve, so a caller observing a
  // completed future observes its issue already counted.
  bool counted = false;
  const auto count_issues = [&] {
    if (counted) return;  // a throw after counting must not count twice
    counted = true;
    std::lock_guard<std::mutex> lk(mu_);
    if (pair_executed) {
      ++counters_.pair_issues;
    } else {
      counters_.single_issues += group.size();
    }
  };
  try {
    if (group.size() == 2) {
      const auto engine_a =
          AcquireEngine(ResolveEngineName(group[0].options), group[0].modulus);
      const auto engine_b =
          AcquireEngine(ResolveEngineName(group[1].options), group[1].modulus);
      // Per-job engine overrides can bond two backends on one issue —
      // any mix works as long as both model pairable array streams of
      // equal operand length (a bonded SubmitPair of unequal-capability
      // jobs falls back to solo issues instead of failing).
      if (engine_a->Caps().pairable_streams &&
          engine_b->Caps().pairable_streams &&
          engine_a->l() == engine_b->l() &&
          engine_a->Field() == engine_b->Field()) {
        PairedExpResult paired = PairedModExp(
            *engine_a, group[0].base, EffectiveExponent(group[0]), *engine_b,
            group[1].base, EffectiveExponent(group[1]));
        results[0].value = std::move(paired.a);
        results[1].value = std::move(paired.b);
        results[0].stats = paired.stats_a;
        results[1].stats = paired.stats_b;
        for (Result& result : results) {
          result.paired = true;
          // The group's array occupancy is the closest per-job
          // measurement pairing admits (the two MMM streams are
          // interleaved cycle by cycle); both partners report the shared
          // issue accounting.
          result.stats.paired_issues = paired.stats.paired_issues;
          result.stats.single_issues = paired.stats.single_issues;
          result.stats.engine_cycles = paired.stats.engine_cycles;
        }
        pair_executed = true;
      }
    }
    if (!pair_executed) {
      for (std::size_t i = 0; i < group.size(); ++i) {
        const auto engine = AcquireEngine(ResolveEngineName(group[i].options),
                                          group[i].modulus);
        Result& result = results[i];
        result.value = RunSoloStream(*engine, group[i].base,
                                     EffectiveExponent(group[i]),
                                     &result.stats);
      }
    }
    count_issues();
    for (std::size_t i = 0; i < group.size(); ++i) {
      group[i].promise.set_value(results[i]);
    }
  } catch (...) {
    count_issues();
    const std::exception_ptr error = std::current_exception();
    for (Job& job : group) {
      try {
        job.promise.set_exception(error);
      } catch (const std::future_error&) {
        // This promise was already fulfilled before the failure.
      }
    }
    return;
  }
  // Every promise in the group is fulfilled before any callback runs, so
  // a misbehaving callback can neither withhold nor poison a partner
  // job's future (callbacks are documented noexcept-in-spirit; anything
  // they throw is contained here).
  for (std::size_t i = 0; i < group.size(); ++i) {
    if (!group[i].callback) continue;
    try {
      group[i].callback(results[i]);
    } catch (...) {
    }
  }
}

}  // namespace mont::core
