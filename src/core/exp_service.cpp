#include "core/exp_service.hpp"

#include <exception>
#include <optional>
#include <stdexcept>

#include "core/interleaved.hpp"

namespace mont::core {

using bignum::BigUInt;
using bignum::BitSerialMontgomery;

namespace {

// ---------------------------------------------------------------------------
// ModExpStream — one exponentiation unrolled into its MMM dependency chain
// ---------------------------------------------------------------------------

// Left-to-right square-and-multiply (§4.5, Algorithm 3) as a stream of MMM
// requests: NextOperands() exposes the operands of the next multiplication
// this job needs, Consume() feeds the product back and advances the state
// machine.  Every MMM depends on the previous one *of the same job*, so two
// streams can be zipped issue-for-issue onto the two channels of one array
// without any cross-job hazard.
class ModExpStream {
 public:
  ModExpStream(const BitSerialMontgomery& ctx, const BigUInt& base,
               const BigUInt& exponent, ExponentiationStats* stats)
      : ctx_(ctx), exponent_(exponent), stats_(stats) {
    if (exponent_.IsZero()) {
      result_ = BigUInt{1} % ctx_.Modulus();
      phase_ = Phase::kDone;
      return;
    }
    m_ = base % ctx_.Modulus();
    next_i_ = exponent_.BitLength() - 1;
    phase_ = Phase::kPre;
  }

  bool Done() const { return phase_ == Phase::kDone; }

  /// Operands of the next MMM; pointers stay valid until Consume().
  void NextOperands(const BigUInt** x, const BigUInt** y) const {
    switch (phase_) {
      case Phase::kPre:
        *x = &m_;
        *y = &ctx_.RSquaredModN();
        return;
      case Phase::kSquare:
        *x = &a_;
        *y = &a_;
        return;
      case Phase::kMultiply:
        *x = &a_;
        *y = &m_mont_;
        return;
      case Phase::kPost:
        *x = &a_;
        *y = &one_;
        return;
      case Phase::kDone:
        break;
    }
    throw std::logic_error("ModExpStream: no operands after completion");
  }

  void Consume(BigUInt product) {
    if (stats_ != nullptr) ++stats_->mmm_invocations;
    switch (phase_) {
      case Phase::kPre:
        m_mont_ = std::move(product);
        a_ = m_mont_;
        AdvanceIteration();
        return;
      case Phase::kSquare:
        a_ = std::move(product);
        if (stats_ != nullptr) ++stats_->squarings;
        if (exponent_.Bit(next_i_)) {
          phase_ = Phase::kMultiply;
        } else {
          AdvanceIteration();
        }
        return;
      case Phase::kMultiply:
        a_ = std::move(product);
        if (stats_ != nullptr) ++stats_->multiplications;
        AdvanceIteration();
        return;
      case Phase::kPost:
        result_ = std::move(product);
        if (result_ >= ctx_.Modulus()) result_ -= ctx_.Modulus();
        if (stats_ != nullptr) {
          stats_->paper_model_cycles = ExponentiationCycles(
              ctx_.l(), stats_->squarings, stats_->multiplications);
        }
        phase_ = Phase::kDone;
        return;
      case Phase::kDone:
        break;
    }
    throw std::logic_error("ModExpStream: consume after completion");
  }

  const BigUInt& Result() const { return result_; }

 private:
  enum class Phase { kPre, kSquare, kMultiply, kPost, kDone };

  // Exponent bit i is handled by the iteration entered when next_i_ == i;
  // the scan covers bits BitLength()-2 .. 0 (the top bit is the initial A).
  void AdvanceIteration() {
    if (next_i_ == 0) {
      phase_ = Phase::kPost;
    } else {
      --next_i_;
      phase_ = Phase::kSquare;
    }
  }

  const BitSerialMontgomery& ctx_;
  const BigUInt exponent_;
  ExponentiationStats* stats_;
  const BigUInt one_{1};
  BigUInt m_;       // base mod N
  BigUInt m_mont_;  // base in the Montgomery domain
  BigUInt a_;       // accumulator
  BigUInt result_;
  std::size_t next_i_ = 0;
  Phase phase_ = Phase::kDone;
};

/// Runs one stream to completion on its own (single-channel issues only),
/// charging 3l+4 per MMM.  Shared by the service's unpaired path.
BigUInt RunSoloStream(const BitSerialMontgomery& ctx, const BigUInt& base,
                      const BigUInt& exponent, ExponentiationStats* stats,
                      std::uint64_t* single_issues) {
  ModExpStream stream(ctx, base, exponent, stats);
  while (!stream.Done()) {
    const BigUInt* x = nullptr;
    const BigUInt* y = nullptr;
    stream.NextOperands(&x, &y);
    stream.Consume(ctx.MultiplyAlg2(*x, *y));
    if (single_issues != nullptr) ++*single_issues;
  }
  return stream.Result();
}

}  // namespace

// ---------------------------------------------------------------------------
// PairedModExp
// ---------------------------------------------------------------------------

PairedExpResult PairedModExp(const BitSerialMontgomery& ctx_a,
                             const BigUInt& base_a, const BigUInt& exp_a,
                             const BitSerialMontgomery& ctx_b,
                             const BigUInt& base_b, const BigUInt& exp_b,
                             PairedEngine engine) {
  if (ctx_a.l() != ctx_b.l()) {
    throw std::invalid_argument(
        "PairedModExp: moduli must have equal bit length to share an array");
  }
  const std::size_t l = ctx_a.l();
  PairedExpResult out;
  ModExpStream stream_a(ctx_a, base_a, exp_a, &out.stats_a);
  ModExpStream stream_b(ctx_b, base_b, exp_b, &out.stats_b);

  std::optional<InterleavedMmmc> circuit;
  if (engine == PairedEngine::kCycleAccurate) {
    circuit.emplace(ctx_a.Modulus(), ctx_b.Modulus());
  }

  const BigUInt zero;
  while (!stream_a.Done() || !stream_b.Done()) {
    if (!stream_a.Done() && !stream_b.Done()) {
      // Dual-channel issue: one MMM of each job in 3l+5 cycles.
      const BigUInt *xa = nullptr, *ya = nullptr, *xb = nullptr, *yb = nullptr;
      stream_a.NextOperands(&xa, &ya);
      stream_b.NextOperands(&xb, &yb);
      BigUInt ra, rb;
      if (circuit.has_value()) {
        auto pair = circuit->MultiplyPair(*xa, *ya, *xb, *yb);
        ra = std::move(pair.a);
        rb = std::move(pair.b);
      } else {
        ra = ctx_a.MultiplyAlg2(*xa, *ya);
        rb = ctx_b.MultiplyAlg2(*xb, *yb);
      }
      stream_a.Consume(std::move(ra));
      stream_b.Consume(std::move(rb));
      ++out.stats.paired_issues;
      out.stats.total_cycles += PairedMultiplyCycles(l);
    } else {
      // One stream has drained: the leftover issues singly at 3l+4.
      const bool a_live = !stream_a.Done();
      ModExpStream& stream = a_live ? stream_a : stream_b;
      const BitSerialMontgomery& ctx = a_live ? ctx_a : ctx_b;
      const BigUInt *x = nullptr, *y = nullptr;
      stream.NextOperands(&x, &y);
      BigUInt r;
      if (circuit.has_value()) {
        auto pair = a_live ? circuit->MultiplyPair(*x, *y, zero, zero)
                           : circuit->MultiplyPair(zero, zero, *x, *y);
        r = a_live ? std::move(pair.a) : std::move(pair.b);
      } else {
        r = ctx.MultiplyAlg2(*x, *y);
      }
      stream.Consume(std::move(r));
      ++out.stats.single_issues;
      out.stats.total_cycles += MultiplyCycles(l);
    }
  }
  out.a = stream_a.Result();
  out.b = stream_b.Result();
  return out;
}

// ---------------------------------------------------------------------------
// ExpService
// ---------------------------------------------------------------------------

ExpService::ExpService(Options options)
    : options_(options),
      cache_(options.engine_cache_capacity == 0 ? 1
                                                : options.engine_cache_capacity) {
  if (options_.workers == 0) options_.workers = 1;
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ExpService::~ExpService() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::future<ExpService::Result> ExpService::Enqueue(Job job,
                                                    std::uint64_t key) {
  std::future<Result> future = job.promise.get_future();
  {
    std::lock_guard<std::mutex> lk(mu_);
    job.id = next_id_++;
    queue_.Push(job.id, key);
    pending_.emplace(job.id, std::move(job));
    ++counters_.jobs_submitted;
  }
  cv_.notify_one();
  return future;
}

std::future<ExpService::Result> ExpService::Submit(BigUInt modulus,
                                                   BigUInt base,
                                                   BigUInt exponent,
                                                   Callback callback) {
  if (!modulus.IsOdd() || modulus <= BigUInt{1}) {
    throw std::invalid_argument("ExpService: modulus must be odd > 1");
  }
  Job job;
  // Opportunistic pairing key: the operand length — any two jobs of equal
  // l can share one array's two channels.
  const std::uint64_t key = modulus.BitLength();
  job.modulus = std::move(modulus);
  job.base = std::move(base);
  job.exponent = std::move(exponent);
  job.callback = std::move(callback);
  return Enqueue(std::move(job), key);
}

std::vector<std::future<ExpService::Result>> ExpService::SubmitBatch(
    const BigUInt& modulus, std::span<const BigUInt> bases,
    std::span<const BigUInt> exponents) {
  if (bases.size() != exponents.size()) {
    throw std::invalid_argument(
        "ExpService::SubmitBatch: bases/exponents size mismatch");
  }
  std::vector<std::future<Result>> futures;
  futures.reserve(bases.size());
  for (std::size_t i = 0; i < bases.size(); ++i) {
    futures.push_back(Submit(modulus, bases[i], exponents[i]));
  }
  return futures;
}

std::pair<std::future<ExpService::Result>, std::future<ExpService::Result>>
ExpService::SubmitPair(BigUInt modulus_a, BigUInt base_a, BigUInt exponent_a,
                       BigUInt modulus_b, BigUInt base_b, BigUInt exponent_b) {
  for (const BigUInt* modulus : {&modulus_a, &modulus_b}) {
    if (!modulus->IsOdd() || *modulus <= BigUInt{1}) {
      throw std::invalid_argument("ExpService: modulus must be odd > 1");
    }
  }
  if (modulus_a.BitLength() != modulus_b.BitLength()) {
    // Unequal lengths cannot share an array; run them as plain jobs.
    auto first = Submit(std::move(modulus_a), std::move(base_a),
                        std::move(exponent_a));
    auto second = Submit(std::move(modulus_b), std::move(base_b),
                         std::move(exponent_b));
    return {std::move(first), std::move(second)};
  }
  // A bond key is unique to the pair (top bit marks the bonded keyspace),
  // so the partners can only ever pair with each other.  Both jobs enter
  // the queue under one lock: a worker must never observe one half of a
  // bond without the other, or the first half would issue alone.
  Job job_a, job_b;
  job_a.modulus = std::move(modulus_a);
  job_a.base = std::move(base_a);
  job_a.exponent = std::move(exponent_a);
  job_b.modulus = std::move(modulus_b);
  job_b.base = std::move(base_b);
  job_b.exponent = std::move(exponent_b);
  std::future<Result> first = job_a.promise.get_future();
  std::future<Result> second = job_b.promise.get_future();
  {
    std::lock_guard<std::mutex> lk(mu_);
    const std::uint64_t key = (std::uint64_t{1} << 63) | next_bond_key_++;
    for (Job* job : {&job_a, &job_b}) {
      job->id = next_id_++;
      queue_.Push(job->id, key, /*bonded=*/true);
      pending_.emplace(job->id, std::move(*job));
      ++counters_.jobs_submitted;
    }
  }
  cv_.notify_all();
  return {std::move(first), std::move(second)};
}

void ExpService::Wait() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [this] { return queue_.Empty() && in_flight_ == 0; });
}

ExpService::Counters ExpService::Snapshot() const {
  Counters counters;
  {
    std::lock_guard<std::mutex> lk(mu_);
    counters = counters_;
  }
  {
    std::lock_guard<std::mutex> lk(cache_mu_);
    counters.engine_cache_hits = cache_.Hits();
    counters.engine_cache_misses = cache_.Misses();
    counters.engine_cache_evictions = cache_.Evictions();
  }
  return counters;
}

std::shared_ptr<const BitSerialMontgomery> ExpService::AcquireContext(
    const BigUInt& modulus) {
  const std::string key = modulus.ToHex();
  {
    std::lock_guard<std::mutex> lk(cache_mu_);
    if (auto* hit = cache_.Get(key)) return *hit;
  }
  // The R^2-mod-N precomputation is the expensive step the cache
  // amortizes — do it outside the lock so a miss never stalls workers
  // hitting other moduli.  Two workers racing on the same cold modulus
  // may both construct; the first Put wins and the loser adopts it.
  auto ctx = std::make_shared<const BitSerialMontgomery>(modulus);
  std::lock_guard<std::mutex> lk(cache_mu_);
  if (cache_.Contains(key)) return *cache_.Get(key);
  cache_.Put(key, ctx);
  return ctx;
}

void ExpService::WorkerLoop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_.wait(lk, [this] { return stop_ || !queue_.Empty(); });
    if (queue_.Empty()) {
      if (stop_) return;
      continue;
    }
    const auto issue = queue_.Pop(options_.enable_pairing);
    std::vector<Job> group;
    group.reserve(issue->count);
    for (std::size_t i = 0; i < issue->count; ++i) {
      auto it = pending_.find(issue->ids[i]);
      group.push_back(std::move(it->second));
      pending_.erase(it);
    }
    if (issue->count == 2) {
      ++counters_.pair_issues;
    } else {
      ++counters_.single_issues;
    }
    in_flight_ += issue->count;
    lk.unlock();

    const std::size_t completed = group.size();
    Execute(std::move(group));

    lk.lock();
    in_flight_ -= completed;
    counters_.jobs_completed += completed;
    if (queue_.Empty() && in_flight_ == 0) idle_cv_.notify_all();
  }
}

void ExpService::Execute(std::vector<Job> group) {
  std::vector<Result> results(group.size());
  try {
    if (group.size() == 2) {
      const auto ctx_a = AcquireContext(group[0].modulus);
      const auto ctx_b = AcquireContext(group[1].modulus);
      PairedExpResult paired =
          PairedModExp(*ctx_a, group[0].base, group[0].exponent, *ctx_b,
                       group[1].base, group[1].exponent, PairedEngine::kFast);
      results[0].value = std::move(paired.a);
      results[1].value = std::move(paired.b);
      results[0].stats = paired.stats_a;
      results[1].stats = paired.stats_b;
      for (Result& result : results) {
        result.paired = true;
        result.paired_issues = paired.stats.paired_issues;
        result.single_issues = paired.stats.single_issues;
        result.engine_cycles = paired.stats.total_cycles;
        // The group's array occupancy is the closest per-job measurement
        // pairing admits (the two MMM streams are interleaved cycle by
        // cycle); both partners report it, mirroring engine_cycles.
        result.stats.measured_mmm_cycles = paired.stats.total_cycles;
      }
    } else {
      const auto ctx = AcquireContext(group[0].modulus);
      Result& result = results[0];
      result.value = RunSoloStream(*ctx, group[0].base, group[0].exponent,
                                   &result.stats, &result.single_issues);
      result.engine_cycles = result.single_issues * MultiplyCycles(ctx->l());
      result.stats.measured_mmm_cycles = result.engine_cycles;
    }
    for (std::size_t i = 0; i < group.size(); ++i) {
      group[i].promise.set_value(results[i]);
    }
  } catch (...) {
    const std::exception_ptr error = std::current_exception();
    for (Job& job : group) {
      try {
        job.promise.set_exception(error);
      } catch (const std::future_error&) {
        // This promise was already fulfilled before the failure.
      }
    }
    return;
  }
  // Every promise in the group is fulfilled before any callback runs, so
  // a misbehaving callback can neither withhold nor poison a partner
  // job's future (callbacks are documented noexcept-in-spirit; anything
  // they throw is contained here).
  for (std::size_t i = 0; i < group.size(); ++i) {
    if (!group[i].callback) continue;
    try {
      group[i].callback(results[i]);
    } catch (...) {
    }
  }
}

}  // namespace mont::core
