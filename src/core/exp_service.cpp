#include "core/exp_service.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <limits>
#include <exception>
#include <stdexcept>

#include "core/interleaved.hpp"

namespace mont::core {

using bignum::BigUInt;

namespace {

// ---------------------------------------------------------------------------
// ModExpStream — one exponentiation unrolled into its MMM dependency chain
// ---------------------------------------------------------------------------

// Left-to-right square-and-multiply (§4.5, Algorithm 3) as a stream of MMM
// requests against one MmmEngine: NextOperands() exposes the operands of
// the next multiplication this job needs, Consume() feeds the product back
// and advances the state machine.  Every MMM depends on the previous one
// *of the same job*, so two streams can be zipped issue-for-issue onto the
// two channels of one array without any cross-job hazard.  The engine
// supplies the field semantics (GF(p) or GF(2^m)) via MontFactor/Reduce.
class ModExpStream {
 public:
  ModExpStream(const MmmEngine& engine, const BigUInt& base,
               const BigUInt& exponent, EngineStats* stats)
      : engine_(engine), exponent_(exponent), stats_(stats) {
    if (exponent_.IsZero()) {
      result_ = engine_.Reduce(BigUInt{1});
      phase_ = Phase::kDone;
      return;
    }
    m_ = engine_.Reduce(base);
    next_i_ = exponent_.BitLength() - 1;
    phase_ = Phase::kPre;
  }

  bool Done() const { return phase_ == Phase::kDone; }

  /// Operands of the next MMM; pointers stay valid until Consume().
  void NextOperands(const BigUInt** x, const BigUInt** y) const {
    switch (phase_) {
      case Phase::kPre:
        *x = &m_;
        *y = &engine_.MontFactor();
        return;
      case Phase::kSquare:
        *x = &a_;
        *y = &a_;
        return;
      case Phase::kMultiply:
        *x = &a_;
        *y = &m_mont_;
        return;
      case Phase::kPost:
        *x = &a_;
        *y = &one_;
        return;
      case Phase::kDone:
        break;
    }
    throw std::logic_error("ModExpStream: no operands after completion");
  }

  void Consume(BigUInt product) {
    if (stats_ != nullptr) ++stats_->mmm_invocations;
    switch (phase_) {
      case Phase::kPre:
        m_mont_ = std::move(product);
        a_ = m_mont_;
        AdvanceIteration();
        return;
      case Phase::kSquare:
        a_ = std::move(product);
        ++squarings_;
        if (stats_ != nullptr) ++stats_->squarings;
        if (exponent_.Bit(next_i_)) {
          phase_ = Phase::kMultiply;
        } else {
          AdvanceIteration();
        }
        return;
      case Phase::kMultiply:
        a_ = std::move(product);
        ++multiplications_;
        if (stats_ != nullptr) ++stats_->multiplications;
        AdvanceIteration();
        return;
      case Phase::kPost:
        result_ = engine_.Reduce(std::move(product));
        if (stats_ != nullptr) {
          // Accumulate this job's delta (like every other EngineStats
          // field), not a figure recomputed from the cumulative counters:
          // callers may reuse one stats struct across jobs.
          stats_->paper_model_cycles += ExponentiationCycles(
              engine_.l(), squarings_, multiplications_);
        }
        phase_ = Phase::kDone;
        return;
      case Phase::kDone:
        break;
    }
    throw std::logic_error("ModExpStream: consume after completion");
  }

  const BigUInt& Result() const { return result_; }

 private:
  enum class Phase { kPre, kSquare, kMultiply, kPost, kDone };

  // Exponent bit i is handled by the iteration entered when next_i_ == i;
  // the scan covers bits BitLength()-2 .. 0 (the top bit is the initial A).
  void AdvanceIteration() {
    if (next_i_ == 0) {
      phase_ = Phase::kPost;
    } else {
      --next_i_;
      phase_ = Phase::kSquare;
    }
  }

  const MmmEngine& engine_;
  const BigUInt exponent_;
  EngineStats* stats_;
  std::uint64_t squarings_ = 0;        // this job's own operation counts,
  std::uint64_t multiplications_ = 0;  // independent of the caller's struct
  const BigUInt one_{1};
  BigUInt m_;       // base, canonically reduced
  BigUInt m_mont_;  // base in the Montgomery domain
  BigUInt a_;       // accumulator
  BigUInt result_;
  std::size_t next_i_ = 0;
  Phase phase_ = Phase::kDone;
};

/// Runs one stream to completion on its own (single-channel issues only),
/// charging the engine's per-multiply model per MMM into `stats`.
BigUInt RunSoloStream(const MmmEngine& engine, const BigUInt& base,
                      const BigUInt& exponent, EngineStats* stats) {
  ModExpStream stream(engine, base, exponent, stats);
  std::uint64_t issues = 0;
  while (!stream.Done()) {
    const BigUInt* x = nullptr;
    const BigUInt* y = nullptr;
    stream.NextOperands(&x, &y);
    stream.Consume(engine.Multiply(*x, *y));
    ++issues;
  }
  if (stats != nullptr) {
    stats->single_issues += issues;
    stats->engine_cycles += issues * engine.MultiplyCyclesModel();
  }
  return stream.Result();
}

}  // namespace

// ---------------------------------------------------------------------------
// PairedModExp
// ---------------------------------------------------------------------------

PairedExpResult PairedModExp(const MmmEngine& engine_a, const BigUInt& base_a,
                             const BigUInt& exp_a, const MmmEngine& engine_b,
                             const BigUInt& base_b, const BigUInt& exp_b,
                             InterleavedMmmc* array) {
  if (engine_a.l() != engine_b.l()) {
    throw std::invalid_argument(
        "PairedModExp: moduli must have equal bit length to share an array");
  }
  if (engine_a.Field() != engine_b.Field()) {
    throw std::invalid_argument(
        "PairedModExp: both jobs must operate in the same field");
  }
  for (const MmmEngine* engine : {&engine_a, &engine_b}) {
    if (!engine->Caps().pairable_streams) {
      throw std::invalid_argument(
          std::string("PairedModExp: backend '") +
          std::string(engine->Name()) +
          "' has no dual-channel variant to co-schedule on");
    }
  }
  const std::size_t l = engine_a.l();
  if (array != nullptr) {
    if (array->l() != l || array->Modulus(0) != engine_a.Modulus() ||
        array->Modulus(1) != engine_b.Modulus()) {
      throw std::invalid_argument(
          "PairedModExp: array channels must match the engines' moduli");
    }
    // The array multiplies with R = 2^(l+2); an engine with another
    // Montgomery parameter (word-mont, high-radix, blum-paar) would feed
    // the streams an inconsistent domain-entry factor.
    for (const MmmEngine* engine : {&engine_a, &engine_b}) {
      const BigUInt r = BigUInt::PowerOfTwo(l + 2);
      if (engine->MontFactor() != (r * r) % engine->Modulus()) {
        throw std::invalid_argument(
            "PairedModExp: cycle-accurate array needs R = 2^(l+2) engines");
      }
    }
  }
  PairedExpResult out;
  ModExpStream stream_a(engine_a, base_a, exp_a, &out.stats_a);
  ModExpStream stream_b(engine_b, base_b, exp_b, &out.stats_b);

  // Issue accounting follows each engine's own per-multiply model (3l+4
  // for the paper's array family), so solo and paired execution of the
  // same job are charged consistently.  A dual-channel pair costs one
  // cycle over the slower channel's multiply — 3l+5 on the array.
  const std::uint64_t single_cost_a = engine_a.MultiplyCyclesModel();
  const std::uint64_t single_cost_b = engine_b.MultiplyCyclesModel();
  const std::uint64_t pair_cost = std::max(single_cost_a, single_cost_b) + 1;

  while (!stream_a.Done() || !stream_b.Done()) {
    if (!stream_a.Done() && !stream_b.Done()) {
      // Dual-channel issue: one MMM of each job in 3l+5 cycles.
      const BigUInt *xa = nullptr, *ya = nullptr, *xb = nullptr, *yb = nullptr;
      stream_a.NextOperands(&xa, &ya);
      stream_b.NextOperands(&xb, &yb);
      BigUInt ra, rb;
      if (array != nullptr) {
        auto pair = array->MultiplyPair(*xa, *ya, *xb, *yb);
        ra = std::move(pair.a);
        rb = std::move(pair.b);
      } else {
        ra = engine_a.Multiply(*xa, *ya);
        rb = engine_b.Multiply(*xb, *yb);
      }
      stream_a.Consume(std::move(ra));
      stream_b.Consume(std::move(rb));
      ++out.stats.paired_issues;
      out.stats.engine_cycles += pair_cost;
    } else {
      // One stream has drained: the leftover issues singly.
      const bool a_live = !stream_a.Done();
      ModExpStream& stream = a_live ? stream_a : stream_b;
      const MmmEngine& engine = a_live ? engine_a : engine_b;
      const BigUInt *x = nullptr, *y = nullptr;
      stream.NextOperands(&x, &y);
      BigUInt r;
      if (array != nullptr) {
        const BigUInt zero;
        auto pair = a_live ? array->MultiplyPair(*x, *y, zero, zero)
                           : array->MultiplyPair(zero, zero, *x, *y);
        r = a_live ? std::move(pair.a) : std::move(pair.b);
      } else {
        r = engine.Multiply(*x, *y);
      }
      stream.Consume(std::move(r));
      ++out.stats.single_issues;
      out.stats.engine_cycles += a_live ? single_cost_a : single_cost_b;
    }
  }
  out.a = stream_a.Result();
  out.b = stream_b.Result();
  return out;
}

// ---------------------------------------------------------------------------
// ExecutionCore
// ---------------------------------------------------------------------------

ExecutionCore::ExecutionCore(std::string engine_name,
                             EngineOptions engine_options,
                             std::size_t cache_capacity,
                             std::uint64_t blind_seed,
                             obs::Registry* registry)
    : engine_name_(std::move(engine_name)),
      engine_options_(engine_options),
      blind_rng_(blind_seed),
      cache_(cache_capacity == 0 ? 1 : cache_capacity) {
  if (registry != nullptr) {
    metrics_.engine_cycles = registry->GetCounter("engine.cycles");
    metrics_.paper_model_cycles =
        registry->GetCounter("engine.paper_model_cycles");
    metrics_.mmm_invocations = registry->GetCounter("engine.mmm_invocations");
    metrics_.squarings = registry->GetCounter("engine.squarings");
    metrics_.multiplications = registry->GetCounter("engine.multiplications");
    metrics_.cache_hits = registry->GetCounter("engine.cache_hits");
    metrics_.cache_misses = registry->GetCounter("engine.cache_misses");
    metrics_.cache_evictions = registry->GetCounter("engine.cache_evictions");
  }
  // Resolve the backend up front so a bad name or a capability mismatch
  // (e.g. a GF(2^m) service on a GF(p)-only backend) fails at
  // construction, not on the first worker thread.
  const EngineRegistry::Entry* entry =
      EngineRegistry::Global().Find(engine_name_);
  if (entry == nullptr) {
    throw std::invalid_argument("ExpService: unknown engine '" + engine_name_ +
                                "'");
  }
  if (engine_options_.field == EngineField::kGf2 && !entry->caps.gf2) {
    throw std::invalid_argument("ExpService: engine '" + engine_name_ +
                                "' does not support GF(2^m)");
  }
}

void ExecutionCore::ValidateModulus(const BigUInt& modulus) const {
  // Same predicate the registry factory will apply on the worker thread —
  // fail at Submit time instead of poisoning a future later.
  ValidateEngineModulus(modulus, engine_options_.field, "ExpService");
}

const std::string& ExecutionCore::ResolveEngineName(
    const ExpJobOptions& options) const {
  if (options.engine_name.empty()) return engine_name_;
  // Per-job override: apply the same checks the constructor applied to
  // the default backend, at Submit time instead of on a worker thread.
  const EngineRegistry::Entry* entry =
      EngineRegistry::Global().Find(options.engine_name);
  if (entry == nullptr) {
    throw std::invalid_argument("ExpService: unknown engine '" +
                                options.engine_name + "'");
  }
  if (engine_options_.field == EngineField::kGf2 && !entry->caps.gf2) {
    throw std::invalid_argument("ExpService: engine '" + options.engine_name +
                                "' does not support GF(2^m)");
  }
  return options.engine_name;
}

bool ExecutionCore::Pairable(const ExpJobOptions& options) const {
  return EngineRegistry::Global()
      .Find(ResolveEngineName(options))
      ->caps.pairable_streams;
}

BigUInt ExecutionCore::EffectiveExponent(const JobSpec& spec) {
  if (spec.options.exponent_blind_order.IsZero()) return spec.exponent;
  BigUInt k;
  {
    std::lock_guard<std::mutex> lk(blind_mu_);
    k = blind_rng_.ExactBits(spec.options.exponent_blind_bits);
  }
  return spec.exponent + k * spec.options.exponent_blind_order;
}

std::shared_ptr<const MmmEngine> ExecutionCore::AcquireEngine(
    const std::string& engine_name, const BigUInt& modulus) {
  // Hex digits never collide with the separator, so (engine, modulus)
  // pairs key uniquely — jobs on different backends share one cache.
  const std::string key = engine_name + ':' + modulus.ToHex();
  {
    std::lock_guard<std::mutex> lk(cache_mu_);
    if (auto* hit = cache_.Get(key)) {
      metrics_.cache_hits.Increment();
      return *hit;
    }
    metrics_.cache_misses.Increment();
  }
  // The R^2-mod-N precomputation (and for the simulated backends the
  // netlist build) is the expensive step the cache amortizes — do it
  // outside the lock so a miss never stalls workers hitting other moduli.
  // Two workers racing on the same cold modulus may both construct; the
  // first Put wins and the loser adopts it.
  std::shared_ptr<const MmmEngine> engine =
      MakeEngine(engine_name, modulus, engine_options_);
  std::lock_guard<std::mutex> lk(cache_mu_);
  if (cache_.Contains(key)) {
    // The race loser's second lookup counts as a hit, matching the
    // LruCache-internal tallies the registry counters mirror.
    metrics_.cache_hits.Increment();
    return *cache_.Get(key);
  }
  const std::uint64_t evictions_before = cache_.Evictions();
  cache_.Put(key, engine);
  metrics_.cache_evictions.Add(cache_.Evictions() - evictions_before);
  return engine;
}

std::uint64_t ExecutionCore::CacheHits() const {
  std::lock_guard<std::mutex> lk(cache_mu_);
  return cache_.Hits();
}

std::uint64_t ExecutionCore::CacheMisses() const {
  std::lock_guard<std::mutex> lk(cache_mu_);
  return cache_.Misses();
}

std::uint64_t ExecutionCore::CacheEvictions() const {
  std::lock_guard<std::mutex> lk(cache_mu_);
  return cache_.Evictions();
}

void ExecutionCore::PublishGroupStats(const EngineStats& stats) {
  metrics_.engine_cycles.Add(stats.engine_cycles);
  metrics_.paper_model_cycles.Add(stats.paper_model_cycles);
  metrics_.mmm_invocations.Add(stats.mmm_invocations);
  metrics_.squarings.Add(stats.squarings);
  metrics_.multiplications.Add(stats.multiplications);
}

ExecutionCore::Outcome ExecutionCore::RunGroup(
    std::span<const JobSpec* const> group) {
  Outcome outcome;
  outcome.results.resize(group.size());
  try {
    if (group.size() == 2) {
      const auto engine_a =
          AcquireEngine(ResolveEngineName(group[0]->options),
                        group[0]->modulus);
      const auto engine_b =
          AcquireEngine(ResolveEngineName(group[1]->options),
                        group[1]->modulus);
      // Per-job engine overrides can bond two backends on one issue —
      // any mix works as long as both model pairable array streams of
      // equal operand length (a bonded SubmitPair of unequal-capability
      // jobs falls back to solo issues instead of failing).
      if (engine_a->Caps().pairable_streams &&
          engine_b->Caps().pairable_streams &&
          engine_a->l() == engine_b->l() &&
          engine_a->Field() == engine_b->Field()) {
        PairedExpResult paired = PairedModExp(
            *engine_a, group[0]->base, EffectiveExponent(*group[0]),
            *engine_b, group[1]->base, EffectiveExponent(*group[1]));
        outcome.results[0].value = std::move(paired.a);
        outcome.results[1].value = std::move(paired.b);
        outcome.results[0].stats = paired.stats_a;
        outcome.results[1].stats = paired.stats_b;
        for (ExpResult& result : outcome.results) {
          result.paired = true;
          // The group's array occupancy is the closest per-job
          // measurement pairing admits (the two MMM streams are
          // interleaved cycle by cycle); both partners report the shared
          // issue accounting.
          result.stats.paired_issues = paired.stats.paired_issues;
          result.stats.single_issues = paired.stats.single_issues;
          result.stats.engine_cycles = paired.stats.engine_cycles;
        }
        outcome.paired = true;
        // Publish once per group: per-job operation counts from both
        // streams plus the *shared* issue accounting (counting it per
        // result would double the array occupancy).
        EngineStats group_stats = paired.stats_a;
        group_stats += paired.stats_b;
        group_stats.paired_issues = paired.stats.paired_issues;
        group_stats.single_issues = paired.stats.single_issues;
        group_stats.engine_cycles = paired.stats.engine_cycles;
        PublishGroupStats(group_stats);
      }
    }
    if (!outcome.paired) {
      for (std::size_t i = 0; i < group.size(); ++i) {
        const auto engine = AcquireEngine(
            ResolveEngineName(group[i]->options), group[i]->modulus);
        ExpResult& result = outcome.results[i];
        result.value =
            RunSoloStream(*engine, group[i]->base,
                          EffectiveExponent(*group[i]), &result.stats);
        PublishGroupStats(result.stats);
      }
    }
  } catch (...) {
    outcome.error = std::current_exception();
  }
  return outcome;
}

// ---------------------------------------------------------------------------
// ExpService
// ---------------------------------------------------------------------------

namespace {

/// Binds the jobs.*/issues.* handles and registers the conservation law
/// shared by the threaded service and the deterministic executor.
template <typename Metrics>
void BindServiceMetrics(obs::Registry& registry, Metrics* metrics) {
  metrics->jobs_submitted = registry.GetCounter("jobs.submitted");
  metrics->jobs_completed = registry.GetCounter("jobs.completed");
  metrics->jobs_cancelled = registry.GetCounter("jobs.cancelled");
  metrics->pair_issues = registry.GetCounter("issues.paired");
  metrics->single_issues = registry.GetCounter("issues.single");
  registry.AddInvariant("jobs.conservation", {"jobs.submitted"},
                        {"jobs.completed", "jobs.cancelled"});
}

}  // namespace

ExpService::ExpService(Options options)
    : options_(std::move(options)),
      owned_registry_(options_.registry == nullptr
                          ? std::make_unique<obs::Registry>()
                          : nullptr),
      registry_(options_.registry != nullptr ? options_.registry
                                             : owned_registry_.get()),
      core_(options_.engine_name, options_.engine_options,
            options_.engine_cache_capacity, options_.blind_seed, registry_) {
  if (options_.workers == 0) options_.workers = 1;
  if (options_.max_batch == 0) options_.max_batch = 1;
  clock_ = options_.clock != nullptr ? options_.clock : &steady_clock_;
  BindServiceMetrics(*registry_, &metrics_);
  if (options_.scheduler == SchedulerKind::kStealing) {
    StealScheduler::Config config;
    config.workers = options_.workers;
    config.enable_pairing = options_.enable_pairing;
    config.work_stealing = options_.work_stealing;
    config.unpair_timeout = options_.unpair_timeout;
    config.max_batch = options_.max_batch;
    config.registry = registry_;
    config.tracer = options_.tracer;
    sched_ = std::make_unique<StealScheduler>(config);
  }
  // The 3l+5-per-pair credit models the C-slow variant of the array
  // schedule; a backend without pairable streams (word-serial datapaths)
  // must not report fictitious dual-channel throughput.  That is
  // enforced per job — non-pairable jobs never enter the pairing
  // keyspace and RunGroup falls back to solo issue for bonded pairs —
  // rather than by disabling pairing service-wide, so jobs whose
  // ExpJobOptions override selects a pairable backend still co-schedule.
  cont_thread_ = std::thread([this] { ContinuationLoop(); });
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ExpService::~ExpService() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // Workers are gone, so no callback can post further work after this
  // point: drain the continuation queue, then retire its thread.  Every
  // pending CRT recombination posted by a drained job still runs.
  {
    std::lock_guard<std::mutex> lk(cont_mu_);
    cont_stop_ = true;
  }
  cont_cv_.notify_all();
  cont_thread_.join();
}

std::uint64_t ExpService::NowTicks() const { return clock_->Now(); }

std::future<ExpService::Result> ExpService::Enqueue(Job job, std::uint64_t key,
                                                    bool pairable) {
  std::future<Result> future = job.promise.get_future();
  {
    std::lock_guard<std::mutex> lk(mu_);
    const std::uint64_t now = NowTicks();
    job.id = next_id_++;
    if (options_.tracer != nullptr && options_.tracer->enabled()) {
      const std::uint64_t trace_id =
          job.spec.options.trace_id != 0 ? job.spec.options.trace_id : job.id;
      options_.tracer->Instant("job.submit", trace_id, 0, now,
                               {{"job", job.id}, {"key", key}});
    }
    if (sched_ != nullptr) {
      sched_->Submit(job.id, key, pairable, now);
    } else {
      queue_.Push(job.id, key);
    }
    pending_.emplace(job.id, std::move(job));
    metrics_.jobs_submitted.Increment();
  }
  cv_.notify_one();
  return future;
}

std::future<ExpService::Result> ExpService::Submit(BigUInt modulus,
                                                   BigUInt base,
                                                   BigUInt exponent,
                                                   Callback callback) {
  return Submit(std::move(modulus), std::move(base), std::move(exponent),
                JobOptions{}, std::move(callback));
}

std::future<ExpService::Result> ExpService::Submit(BigUInt modulus,
                                                   BigUInt base,
                                                   BigUInt exponent,
                                                   JobOptions job_options,
                                                   Callback callback) {
  core_.ValidateModulus(modulus);
  const bool pairable = core_.Pairable(job_options);
  if (!job_options.exponent_blind_order.IsZero() &&
      job_options.exponent_blind_bits == 0) {
    throw std::invalid_argument(
        "ExpService: exponent_blind_bits must be >= 1 when blinding");
  }
  Job job;
  // Opportunistic pairing key: the operand length — any two jobs of equal
  // l can share one array's two channels.  Under the v1 shared queue a
  // job on a backend without pairable streams gets a key of its own
  // instead (the v2 scheduler takes the pairable flag directly), so the
  // scheduler never hands it a partner its datapath cannot co-schedule.
  std::uint64_t key = modulus.BitLength();
  if (!pairable && sched_ == nullptr) {
    std::lock_guard<std::mutex> lk(mu_);
    key = (std::uint64_t{1} << 62) | next_solo_key_++;
  }
  job.spec.modulus = std::move(modulus);
  job.spec.base = std::move(base);
  job.spec.exponent = std::move(exponent);
  job.spec.options = std::move(job_options);
  job.callback = std::move(callback);
  return Enqueue(std::move(job), key, pairable);
}

std::vector<std::future<ExpService::Result>> ExpService::SubmitBatch(
    const BigUInt& modulus, std::span<const BigUInt> bases,
    std::span<const BigUInt> exponents) {
  if (bases.size() != exponents.size()) {
    throw std::invalid_argument(
        "ExpService::SubmitBatch: bases/exponents size mismatch");
  }
  std::vector<std::future<Result>> futures;
  futures.reserve(bases.size());
  for (std::size_t i = 0; i < bases.size(); ++i) {
    futures.push_back(Submit(modulus, bases[i], exponents[i]));
  }
  return futures;
}

std::pair<std::future<ExpService::Result>, std::future<ExpService::Result>>
ExpService::SubmitPair(BigUInt modulus_a, BigUInt base_a, BigUInt exponent_a,
                       BigUInt modulus_b, BigUInt base_b, BigUInt exponent_b) {
  core_.ValidateModulus(modulus_a);
  core_.ValidateModulus(modulus_b);
  if (modulus_a.BitLength() != modulus_b.BitLength()) {
    // Unequal lengths cannot share an array; run them as plain jobs.
    auto first = Submit(std::move(modulus_a), std::move(base_a),
                        std::move(exponent_a));
    auto second = Submit(std::move(modulus_b), std::move(base_b),
                         std::move(exponent_b));
    return {std::move(first), std::move(second)};
  }
  Job job_a, job_b;
  job_a.spec.modulus = std::move(modulus_a);
  job_a.spec.base = std::move(base_a);
  job_a.spec.exponent = std::move(exponent_a);
  job_b.spec.modulus = std::move(modulus_b);
  job_b.spec.base = std::move(base_b);
  job_b.spec.exponent = std::move(exponent_b);
  std::future<Result> first = job_a.promise.get_future();
  std::future<Result> second = job_b.promise.get_future();
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_a.id = next_id_++;
    job_b.id = next_id_++;
    if (options_.tracer != nullptr && options_.tracer->enabled()) {
      const std::uint64_t now = NowTicks();
      options_.tracer->Instant("job.submit", job_a.id, 0, now,
                               {{"job", job_a.id}, {"bonded", 1}});
      options_.tracer->Instant("job.submit", job_b.id, 0, now,
                               {{"job", job_b.id}, {"bonded", 1}});
    }
    if (sched_ != nullptr) {
      // The v2 scheduler forms the bonded group at submit time: a worker
      // can never observe one half without the other.
      sched_->SubmitBonded(job_a.id, job_b.id, NowTicks());
    } else {
      // A bond key is unique to the pair (top bit marks the bonded
      // keyspace), so the partners can only ever pair with each other.
      // Both jobs enter the queue under one lock: a worker must never
      // observe one half of a bond without the other, or the first half
      // would issue alone.
      const std::uint64_t key = (std::uint64_t{1} << 63) | next_bond_key_++;
      queue_.Push(job_a.id, key, /*bonded=*/true);
      queue_.Push(job_b.id, key, /*bonded=*/true);
    }
    pending_.emplace(job_a.id, std::move(job_a));
    pending_.emplace(job_b.id, std::move(job_b));
    metrics_.jobs_submitted.Add(2);
  }
  cv_.notify_all();
  return {std::move(first), std::move(second)};
}

void ExpService::Post(std::function<void()> continuation) {
  {
    std::lock_guard<std::mutex> lk(cont_mu_);
    continuations_.push(std::move(continuation));
  }
  cont_cv_.notify_one();
}

bool ExpService::QueueDrainedLocked() const {
  const bool queue_empty =
      sched_ != nullptr ? sched_->Idle() : queue_.Empty();
  return queue_empty && in_flight_ == 0;
}

void ExpService::Wait() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [this] { return QueueDrainedLocked(); });
}

ExpService::Counters ExpService::Snapshot() const {
  Counters counters;
  counters.jobs_submitted = metrics_.jobs_submitted.Value();
  counters.jobs_completed = metrics_.jobs_completed.Value();
  counters.deadline_exceeded = metrics_.jobs_cancelled.Value();
  counters.pair_issues = metrics_.pair_issues.Value();
  counters.single_issues = metrics_.single_issues.Value();
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (sched_ != nullptr) {
      const StealScheduler::Stats stats = sched_->GetStats();
      counters.steals = stats.steals;
      counters.holds = stats.holds;
      counters.hold_pairs = stats.hold_pairs;
      counters.unpair_timeouts = stats.unpair_timeouts;
      counters.batch_acquires = stats.batch_acquires;
      counters.max_batch_claimed = stats.max_batch_claimed;
    }
  }
  counters.engine_cache_hits = core_.CacheHits();
  counters.engine_cache_misses = core_.CacheMisses();
  counters.engine_cache_evictions = core_.CacheEvictions();
  return counters;
}

bool ExpService::AcquireIssues(std::size_t index,
                               std::unique_lock<std::mutex>& lk,
                               std::vector<StealScheduler::Issue>* issues) {
  for (;;) {
    if (sched_ != nullptr) {
      // While draining, every held job's deadline is treated as expired
      // so nothing waits out a timeout the pool no longer needs.
      const std::uint64_t now =
          stop_ ? std::numeric_limits<std::uint64_t>::max() : NowTicks();
      sched_->AcquireBatch(index, now, issues);
      if (!issues->empty()) return true;
      if (stop_) return false;
      const auto deadline = sched_->NextHoldDeadline();
      if (!deadline.has_value()) {
        cv_.wait(lk);
      } else if (options_.clock != nullptr) {
        // An injected clock's ticks don't map onto wall time, so the
        // timed wait degrades to a poll (test-only configuration).
        cv_.wait_for(lk, std::chrono::microseconds(100));
      } else {
        cv_.wait_until(lk, std::chrono::steady_clock::time_point(
                               std::chrono::nanoseconds(*deadline)));
      }
      continue;
    }
    cv_.wait(lk, [this] { return stop_ || !queue_.Empty(); });
    if (queue_.Empty()) {
      if (stop_) return false;
      continue;
    }
    const auto popped = queue_.Pop(options_.enable_pairing);
    StealScheduler::Issue issue;
    issue.ids = popped->ids;
    issue.count = popped->count;
    issue.bonded = popped->bonded;
    issues->push_back(issue);
    return true;
  }
}

void ExpService::WorkerLoop(std::size_t index) {
  struct Unit {
    StealScheduler::Issue issue;
    std::vector<Job> jobs;
  };
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    std::vector<StealScheduler::Issue> issues;
    if (!AcquireIssues(index, lk, &issues)) return;
    std::vector<Unit> units;
    units.reserve(issues.size());
    std::size_t claimed = 0;
    for (const StealScheduler::Issue& issue : issues) {
      Unit unit;
      unit.issue = issue;
      unit.jobs.reserve(issue.count);
      for (std::size_t i = 0; i < issue.count; ++i) {
        auto it = pending_.find(issue.ids[i]);
        unit.jobs.push_back(std::move(it->second));
        pending_.erase(it);
      }
      claimed += issue.count;
      units.push_back(std::move(unit));
    }
    in_flight_ += claimed;
    lk.unlock();

    for (Unit& unit : units) {
      // Fault-injection/observability hook (chaos harness): runs before
      // the deadline gate so a stalled worker realistically turns into
      // deadline misses downstream.  Exceptions are contained.
      if (options_.worker_observer) {
        try {
          options_.worker_observer(index);
        } catch (...) {
        }
      }
      // Deadline gate: claim time is the last point before engine
      // dispatch.  Expired jobs are dropped here — they consume no array
      // time, their futures resolve with ExpResult::cancelled, and their
      // callbacks still fire.  A pair with one expired half issues solo.
      std::vector<Job> expired;
      {
        const std::uint64_t now_ticks = NowTicks();
        const auto live_end = std::stable_partition(
            unit.jobs.begin(), unit.jobs.end(), [&](const Job& job) {
              const std::uint64_t deadline = job.spec.options.deadline;
              return deadline == 0 || now_ticks < deadline;
            });
        for (auto it = live_end; it != unit.jobs.end(); ++it) {
          expired.push_back(std::move(*it));
        }
        unit.jobs.erase(live_end, unit.jobs.end());
      }
      std::array<const ExecutionCore::JobSpec*, 2> specs{};
      for (std::size_t i = 0; i < unit.jobs.size(); ++i) {
        specs[i] = &unit.jobs[i].spec;
      }
      ExecutionCore::Outcome outcome;
      obs::Tracer* const tracer = options_.tracer;
      const bool tracing = tracer != nullptr && tracer->enabled();
      std::uint64_t run_start = 0;
      if (!unit.jobs.empty()) {
        if (tracing) run_start = NowTicks();
        outcome = core_.RunGroup(
            std::span<const ExecutionCore::JobSpec* const>(specs.data(),
                                                           unit.jobs.size()));
      }
      // Scheduling provenance rides on every result, so callers can
      // audit steal/unpair decisions per job, not just in aggregate.
      for (ExpResult& result : outcome.results) {
        result.stolen = unit.issue.stolen;
        result.unpaired_by_timeout = unit.issue.unpaired_by_timeout;
      }
      if (tracing) {
        const std::uint64_t run_end = NowTicks();
        for (std::size_t i = 0; i < unit.jobs.size(); ++i) {
          const Job& job = unit.jobs[i];
          const std::uint64_t trace_id = job.spec.options.trace_id != 0
                                             ? job.spec.options.trace_id
                                             : job.id;
          const EngineStats& stats = outcome.results[i].stats;
          tracer->Complete("job.run", trace_id, index, run_start, run_end,
                           {{"mmm_invocations", stats.mmm_invocations},
                            {"engine_cycles", stats.engine_cycles},
                            {"paired", outcome.paired ? 1u : 0u},
                            {"stolen", unit.issue.stolen ? 1u : 0u}});
        }
        for (const Job& job : expired) {
          const std::uint64_t trace_id = job.spec.options.trace_id != 0
                                             ? job.spec.options.trace_id
                                             : job.id;
          tracer->Instant("job.cancelled", trace_id, index, run_end,
                          {{"job", job.id}});
        }
      }
      // Issue accounting records what actually ran — a 2-job group whose
      // backends could not co-schedule executes (and is counted) as two
      // solo issues, never as fictitious dual-channel throughput.
      // Counters (and the scheduler's in-flight accounting, which gates
      // the hold-for-pairing heuristic) are published before the
      // promises resolve, so a caller observing a completed future
      // observes its issue already counted.
      lk.lock();
      if (outcome.paired) {
        metrics_.pair_issues.Increment();
      } else {
        metrics_.single_issues.Add(unit.jobs.size());
      }
      metrics_.jobs_cancelled.Add(expired.size());
      // The scheduler's in-flight accounting (which gates the
      // hold-for-pairing heuristic) retires before the promises resolve,
      // so a caller submitting right after .get() sees an idle pool.
      if (sched_ != nullptr) sched_->OnGroupDone();
      lk.unlock();

      // Expired jobs resolve first (promises before any callback), with
      // the typed cancelled result — never an exception, so pipelined
      // callers (CRT halves) observe the cancellation and can unwind.
      ExpResult cancelled_result;
      cancelled_result.cancelled = true;
      cancelled_result.stats.cancelled = 1;
      for (Job& job : expired) {
        job.promise.set_value(cancelled_result);
      }
      if (outcome.error != nullptr) {
        for (Job& job : unit.jobs) {
          try {
            job.promise.set_exception(outcome.error);
          } catch (const std::future_error&) {
            // This promise was already fulfilled before the failure.
          }
        }
      } else {
        // Every promise in the group is fulfilled before any callback
        // runs, so a misbehaving callback can neither withhold nor
        // poison a partner job's future (callbacks are documented
        // noexcept-in-spirit; anything they throw is contained here).
        for (std::size_t i = 0; i < unit.jobs.size(); ++i) {
          unit.jobs[i].promise.set_value(outcome.results[i]);
        }
        for (std::size_t i = 0; i < unit.jobs.size(); ++i) {
          if (!unit.jobs[i].callback) continue;
          try {
            unit.jobs[i].callback(outcome.results[i]);
          } catch (...) {
          }
        }
      }
      for (Job& job : expired) {
        if (!job.callback) continue;
        try {
          job.callback(cancelled_result);
        } catch (...) {
        }
      }
      // jobs_completed / in_flight_ retire only after the callbacks, so
      // Wait() returning guarantees every completion hook has run.
      lk.lock();
      metrics_.jobs_completed.Add(unit.jobs.size());
      in_flight_ -= unit.jobs.size() + expired.size();
      const bool drained = QueueDrainedLocked();
      lk.unlock();
      if (drained) idle_cv_.notify_all();
    }
    lk.lock();
  }
}

void ExpService::ContinuationLoop() {
  std::unique_lock<std::mutex> lk(cont_mu_);
  for (;;) {
    cont_cv_.wait(lk,
                  [this] { return cont_stop_ || !continuations_.empty(); });
    if (continuations_.empty()) {
      if (cont_stop_) return;
      continue;
    }
    std::function<void()> continuation = std::move(continuations_.front());
    continuations_.pop();
    lk.unlock();
    try {
      continuation();
    } catch (...) {
      // Continuations are fire-and-forget; errors surface through the
      // promises they own, never by killing the drain thread.
    }
    lk.lock();
  }
}

// ---------------------------------------------------------------------------
// DeterministicExecutor
// ---------------------------------------------------------------------------

DeterministicExecutor::DeterministicExecutor(ExpService::Options options)
    : options_(std::move(options)),
      owned_registry_(options_.registry == nullptr
                          ? std::make_unique<obs::Registry>()
                          : nullptr),
      registry_(options_.registry != nullptr ? options_.registry
                                             : owned_registry_.get()),
      core_(options_.engine_name, options_.engine_options,
            options_.engine_cache_capacity, options_.blind_seed, registry_) {
  if (options_.workers == 0) options_.workers = 1;
  if (options_.max_batch == 0) options_.max_batch = 1;
  BindServiceMetrics(*registry_, &metrics_);
  if (options_.scheduler == SchedulerKind::kStealing) {
    StealScheduler::Config config;
    config.workers = options_.workers;
    config.enable_pairing = options_.enable_pairing;
    config.work_stealing = options_.work_stealing;
    config.unpair_timeout = options_.unpair_timeout;
    config.max_batch = options_.max_batch;
    config.registry = registry_;
    config.tracer = options_.tracer;
    sched_ = std::make_unique<StealScheduler>(config);
  }
  worker_busy_.assign(options_.workers, false);
}

std::uint64_t DeterministicExecutor::TraceId(const Job& job) {
  return job.spec.options.trace_id != 0 ? job.spec.options.trace_id : job.id;
}

void DeterministicExecutor::Schedule(std::uint64_t tick,
                                     std::function<void()> action) {
  Event event;
  event.tick = std::max(tick, now_);
  event.seq = next_seq_++;
  event.action = std::move(action);
  events_.push(std::move(event));
}

void DeterministicExecutor::EnterQueue(Job job, std::uint64_t key,
                                       bool pairable) {
  job.submit_tick = now_;
  const std::uint64_t id = job.id;
  metrics_.jobs_submitted.Increment();
  if (options_.tracer != nullptr && options_.tracer->enabled()) {
    options_.tracer->Instant("job.submit", TraceId(job), 0, now_,
                             {{"job", id}, {"key", key}});
  }
  if (sched_ != nullptr) {
    sched_->Submit(id, key, pairable, now_);
  } else {
    queue_.Push(id, key);
  }
  pending_.emplace(id, std::move(job));
}

std::future<DeterministicExecutor::Result> DeterministicExecutor::SubmitAt(
    std::uint64_t tick, BigUInt modulus, BigUInt base, BigUInt exponent,
    ExpJobOptions job_options, Callback callback) {
  core_.ValidateModulus(modulus);
  const bool pairable = core_.Pairable(job_options);
  if (!job_options.exponent_blind_order.IsZero() &&
      job_options.exponent_blind_bits == 0) {
    throw std::invalid_argument(
        "ExpService: exponent_blind_bits must be >= 1 when blinding");
  }
  auto job = std::make_shared<Job>();
  job->id = next_id_++;
  job->spec.modulus = std::move(modulus);
  job->spec.base = std::move(base);
  job->spec.exponent = std::move(exponent);
  job->spec.options = std::move(job_options);
  job->callback = std::move(callback);
  std::future<Result> future = job->promise.get_future();
  std::uint64_t key = job->spec.modulus.BitLength();
  if (!pairable && sched_ == nullptr) {
    key = (std::uint64_t{1} << 62) | next_solo_key_++;
  }
  const std::uint64_t deadline = job->spec.options.deadline;
  const std::uint64_t id = job->id;
  Schedule(tick, [this, job, key, pairable] {
    EnterQueue(std::move(*job), key, pairable);
    TryDispatch();
  });
  if (deadline != 0) {
    // Exact-tick cancellation: the event fires at the deadline (never
    // before the submit event — same tick, later seq) and releases the
    // job if it is still queued or held for pairing.
    Schedule(std::max(tick, deadline), [this, id] { CancelIfQueued(id); });
  }
  return future;
}

void DeterministicExecutor::CancelIfQueued(std::uint64_t id) {
  const auto it = pending_.find(id);
  if (it == pending_.end()) return;  // already claimed by a worker
  const bool removed =
      sched_ != nullptr ? sched_->Cancel(id) : queue_.Remove(id);
  if (!removed) return;
  Job job = std::move(it->second);
  pending_.erase(it);
  FinishCancelled(std::move(job));
}

void DeterministicExecutor::FinishCancelled(Job job) {
  metrics_.jobs_cancelled.Increment();
  if (options_.tracer != nullptr && options_.tracer->enabled()) {
    options_.tracer->Instant("job.cancelled", TraceId(job), 0, now_,
                             {{"job", job.id}});
  }
  JobRecord record;
  record.id = job.id;
  record.submit_tick = job.submit_tick;
  record.start_tick = now_;
  record.finish_tick = now_;
  record.cancelled = true;
  records_.push_back(record);
  ExpResult result;
  result.cancelled = true;
  result.stats.cancelled = 1;
  job.promise.set_value(result);
  if (job.callback) {
    try {
      job.callback(result);
    } catch (...) {
    }
  }
}

std::pair<std::future<DeterministicExecutor::Result>,
          std::future<DeterministicExecutor::Result>>
DeterministicExecutor::SubmitPairAt(std::uint64_t tick, BigUInt modulus_a,
                                    BigUInt base_a, BigUInt exponent_a,
                                    BigUInt modulus_b, BigUInt base_b,
                                    BigUInt exponent_b) {
  core_.ValidateModulus(modulus_a);
  core_.ValidateModulus(modulus_b);
  if (modulus_a.BitLength() != modulus_b.BitLength()) {
    auto first = SubmitAt(tick, std::move(modulus_a), std::move(base_a),
                          std::move(exponent_a));
    auto second = SubmitAt(tick, std::move(modulus_b), std::move(base_b),
                           std::move(exponent_b));
    return {std::move(first), std::move(second)};
  }
  auto job_a = std::make_shared<Job>();
  auto job_b = std::make_shared<Job>();
  job_a->id = next_id_++;
  job_b->id = next_id_++;
  job_a->spec.modulus = std::move(modulus_a);
  job_a->spec.base = std::move(base_a);
  job_a->spec.exponent = std::move(exponent_a);
  job_b->spec.modulus = std::move(modulus_b);
  job_b->spec.base = std::move(base_b);
  job_b->spec.exponent = std::move(exponent_b);
  std::future<Result> first = job_a->promise.get_future();
  std::future<Result> second = job_b->promise.get_future();
  Schedule(tick, [this, job_a, job_b] {
    job_a->submit_tick = now_;
    job_b->submit_tick = now_;
    metrics_.jobs_submitted.Add(2);
    if (options_.tracer != nullptr && options_.tracer->enabled()) {
      options_.tracer->Instant("job.submit", TraceId(*job_a), 0, now_,
                               {{"job", job_a->id}, {"bonded", 1}});
      options_.tracer->Instant("job.submit", TraceId(*job_b), 0, now_,
                               {{"job", job_b->id}, {"bonded", 1}});
    }
    if (sched_ != nullptr) {
      sched_->SubmitBonded(job_a->id, job_b->id, now_);
    } else {
      const std::uint64_t key = (std::uint64_t{1} << 63) | next_bond_key_++;
      queue_.Push(job_a->id, key, /*bonded=*/true);
      queue_.Push(job_b->id, key, /*bonded=*/true);
    }
    pending_.emplace(job_a->id, std::move(*job_a));
    pending_.emplace(job_b->id, std::move(*job_b));
    TryDispatch();
  });
  return {std::move(first), std::move(second)};
}

void DeterministicExecutor::PostAt(std::uint64_t tick,
                                   std::function<void()> continuation) {
  Schedule(tick, [continuation = std::move(continuation)] {
    try {
      continuation();
    } catch (...) {
    }
  });
}

std::vector<StealScheduler::Issue> DeterministicExecutor::AcquireFor(
    std::size_t worker) {
  std::vector<StealScheduler::Issue> issues;
  if (sched_ != nullptr) {
    sched_->AcquireBatch(worker, now_, &issues);
    return issues;
  }
  const auto popped = queue_.Pop(options_.enable_pairing);
  if (popped.has_value()) {
    StealScheduler::Issue issue;
    issue.ids = popped->ids;
    issue.count = popped->count;
    issue.bonded = popped->bonded;
    issues.push_back(issue);
  }
  return issues;
}

void DeterministicExecutor::ScheduleHoldWake() {
  if (sched_ == nullptr) return;
  bool any_idle = false;
  for (const bool busy : worker_busy_) any_idle = any_idle || !busy;
  if (!any_idle) return;
  const auto deadline = sched_->NextHoldDeadline();
  if (!deadline.has_value()) return;
  const std::uint64_t tick = std::max(*deadline, now_);
  if (hold_wake_scheduled_ && hold_wake_tick_ <= tick) return;
  hold_wake_scheduled_ = true;
  hold_wake_tick_ = tick;
  Schedule(tick, [this] {
    hold_wake_scheduled_ = false;
    TryDispatch();
  });
}

void DeterministicExecutor::TryDispatch() {
  struct Unit {
    StealScheduler::Issue issue;
    std::vector<Job> jobs;
    ExecutionCore::Outcome outcome;
    std::uint64_t start = 0;
  };
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t w = 0; w < worker_busy_.size(); ++w) {
      if (worker_busy_[w]) continue;
      std::vector<StealScheduler::Issue> issues = AcquireFor(w);
      if (issues.empty()) continue;
      progress = true;
      worker_busy_[w] = true;
      std::uint64_t start = now_;
      for (const StealScheduler::Issue& issue : issues) {
        auto unit = std::make_shared<Unit>();
        unit->issue = issue;
        unit->jobs.reserve(issue.count);
        for (std::size_t i = 0; i < issue.count; ++i) {
          auto it = pending_.find(issue.ids[i]);
          unit->jobs.push_back(std::move(it->second));
          pending_.erase(it);
        }
        // Claim-time deadline gate (mirrors the threaded worker): a job
        // claimed at the very tick its deadline fires — before the
        // cancellation event ran — is still cancelled, never dispatched.
        {
          const auto live_end = std::stable_partition(
              unit->jobs.begin(), unit->jobs.end(), [this](const Job& job) {
                const std::uint64_t deadline = job.spec.options.deadline;
                return deadline == 0 || now_ < deadline;
              });
          for (auto it = live_end; it != unit->jobs.end(); ++it) {
            FinishCancelled(std::move(*it));
          }
          unit->jobs.erase(live_end, unit->jobs.end());
        }
        if (unit->jobs.empty()) {
          // The whole group expired: retire it without occupying the
          // worker's virtual array for any ticks.
          if (sched_ != nullptr) sched_->OnGroupDone();
          continue;
        }
        std::array<const ExecutionCore::JobSpec*, 2> specs{};
        for (std::size_t i = 0; i < unit->jobs.size(); ++i) {
          specs[i] = &unit->jobs[i].spec;
        }
        // The values are computed eagerly (they are time-independent);
        // only the *completion* is timestamped, at the group's modelled
        // array occupancy past its start tick.
        unit->outcome = core_.RunGroup(
            std::span<const ExecutionCore::JobSpec* const>(
                specs.data(), unit->jobs.size()));
        std::uint64_t duration = 0;
        if (unit->outcome.error == nullptr) {
          if (unit->outcome.paired) {
            duration = unit->outcome.results[0].stats.engine_cycles;
          } else {
            for (const ExpResult& result : unit->outcome.results) {
              duration += result.stats.engine_cycles;
            }
          }
        }
        unit->start = start;
        const std::uint64_t finish = start + duration;
        Schedule(finish, [this, unit, w] {
          if (unit->outcome.paired) {
            metrics_.pair_issues.Increment();
          } else {
            metrics_.single_issues.Add(unit->jobs.size());
          }
          metrics_.jobs_completed.Add(unit->jobs.size());
          if (sched_ != nullptr) sched_->OnGroupDone();
          if (options_.tracer != nullptr && options_.tracer->enabled()) {
            for (std::size_t i = 0; i < unit->jobs.size(); ++i) {
              const EngineStats& stats = unit->outcome.results[i].stats;
              options_.tracer->Complete(
                  "job.run", TraceId(unit->jobs[i]), w, unit->start, now_,
                  {{"mmm_invocations", stats.mmm_invocations},
                   {"engine_cycles", stats.engine_cycles},
                   {"paired", unit->outcome.paired ? 1u : 0u},
                   {"stolen", unit->issue.stolen ? 1u : 0u}});
            }
          }
          for (std::size_t i = 0; i < unit->jobs.size(); ++i) {
            JobRecord record;
            record.id = unit->jobs[i].id;
            record.submit_tick = unit->jobs[i].submit_tick;
            record.start_tick = unit->start;
            record.finish_tick = now_;
            record.worker = w;
            record.paired = unit->outcome.paired;
            record.stolen = unit->issue.stolen;
            record.unpaired_by_timeout = unit->issue.unpaired_by_timeout;
            record.bonded = unit->issue.bonded;
            records_.push_back(record);
          }
          if (unit->outcome.error != nullptr) {
            for (Job& job : unit->jobs) {
              try {
                job.promise.set_exception(unit->outcome.error);
              } catch (const std::future_error&) {
              }
            }
            return;
          }
          for (std::size_t i = 0; i < unit->jobs.size(); ++i) {
            ExpResult& result = unit->outcome.results[i];
            result.stolen = unit->issue.stolen;
            result.unpaired_by_timeout = unit->issue.unpaired_by_timeout;
            unit->jobs[i].promise.set_value(result);
          }
          for (std::size_t i = 0; i < unit->jobs.size(); ++i) {
            if (!unit->jobs[i].callback) continue;
            try {
              unit->jobs[i].callback(unit->outcome.results[i]);
            } catch (...) {
            }
          }
        });
        start = finish;
      }
      Schedule(start, [this, w] {
        worker_busy_[w] = false;
        TryDispatch();
      });
    }
  }
  ScheduleHoldWake();
}

void DeterministicExecutor::RunUntilIdle() {
  if (running_) return;  // re-entrant call from a callback: outer loop runs
  running_ = true;
  while (!events_.empty()) {
    Event event = std::move(const_cast<Event&>(events_.top()));
    events_.pop();
    now_ = event.tick;
    event.action();
  }
  running_ = false;
}

ExpService::Counters DeterministicExecutor::Snapshot() const {
  ExpService::Counters counters;
  counters.jobs_submitted = metrics_.jobs_submitted.Value();
  counters.jobs_completed = metrics_.jobs_completed.Value();
  counters.deadline_exceeded = metrics_.jobs_cancelled.Value();
  counters.pair_issues = metrics_.pair_issues.Value();
  counters.single_issues = metrics_.single_issues.Value();
  if (sched_ != nullptr) {
    const StealScheduler::Stats stats = sched_->GetStats();
    counters.steals = stats.steals;
    counters.holds = stats.holds;
    counters.hold_pairs = stats.hold_pairs;
    counters.unpair_timeouts = stats.unpair_timeouts;
    counters.batch_acquires = stats.batch_acquires;
    counters.max_batch_claimed = stats.max_batch_claimed;
  }
  counters.engine_cache_hits = core_.CacheHits();
  counters.engine_cache_misses = core_.CacheMisses();
  counters.engine_cache_evictions = core_.CacheEvictions();
  return counters;
}

}  // namespace mont::core
