// sim_drivers.hpp — the MMMC pin-level drive protocol, shared by tests
// and benches.
//
// A generated MMMC netlist is driven the way the paper's environment
// drives the chip: load the modulus once, then each multiplication
// presents the operands, pulses START for one clock edge, and runs to
// DONE (3l+4 edges on a healthy circuit).  That handshake used to be
// re-implemented by every consumer; these two gtest-free drivers — one
// per simulation engine — are the single home for it.  The test harness
// (tests/testutil_netlist.hpp) derives from them to add gtest-flavoured
// convenience wrappers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "bignum/biguint.hpp"
#include "core/netlist_gen.hpp"
#include "rtl/batch_sim.hpp"
#include "rtl/simulator.hpp"

namespace mont::core {

/// Drives every bit of an input bus from the matching bits of `value`.
inline void DriveBus(rtl::Simulator& sim, const rtl::Bus& bus,
                     const bignum::BigUInt& value) {
  for (std::size_t i = 0; i < bus.size(); ++i) {
    sim.SetInput(bus[i], value.Bit(i));
  }
}

/// Drives the same value into every lane of a batch simulator's bus.
inline void DriveBusAllLanes(rtl::BatchSimulator& sim, const rtl::Bus& bus,
                             const bignum::BigUInt& value) {
  for (std::size_t i = 0; i < bus.size(); ++i) {
    sim.SetInputAll(bus[i], value.Bit(i));
  }
}

/// Drives one lane of a batch simulator's bus.
inline void DriveBusLane(rtl::BatchSimulator& sim, const rtl::Bus& bus,
                         std::size_t lane, const bignum::BigUInt& value) {
  for (std::size_t i = 0; i < bus.size(); ++i) {
    sim.SetInputLane(bus[i], lane, value.Bit(i));
  }
}

/// Scalar (1-lane) MMMC drive protocol.
class MmmcSimDriver {
 public:
  /// Owns a fresh simulator over the generated netlist.
  explicit MmmcSimDriver(const MmmcNetlist& gen)
      : gen_(gen),
        owned_(std::make_unique<rtl::Simulator>(*gen.netlist)),
        sim_(*owned_) {}

  /// Borrows an existing simulator (fault campaigns construct their own).
  MmmcSimDriver(const MmmcNetlist& gen, rtl::Simulator& sim)
      : gen_(gen), sim_(sim) {}

  rtl::Simulator& sim() { return sim_; }
  const MmmcNetlist& gen() const { return gen_; }

  void LoadModulus(const bignum::BigUInt& n) { DriveBus(sim_, gen_.n_in, n); }

  /// Dual-field builds only: true selects GF(p), false selects GF(2^m).
  void SelectField(bool gfp) { sim_.SetInput(gen_.fsel, gfp); }

  /// Presents x, y and pulses START for exactly one clock edge.
  void Start(const bignum::BigUInt& x, const bignum::BigUInt& y) {
    DriveBus(sim_, gen_.x_in, x);
    DriveBus(sim_, gen_.y_in, y);
    sim_.SetInput(gen_.start, true);
    sim_.Tick();
    sim_.SetInput(gen_.start, false);
  }

  void Tick() { sim_.Tick(); }
  bool Done() const { return sim_.Peek(gen_.done); }

  bignum::BigUInt Result() const { return sim_.PeekWide(gen_.result); }

  /// One full multiplication.  Returns false if DONE does not arrive within
  /// `max_cycles` edges (a hung FSM — fault campaigns count that as a
  /// detection).  On success the OUT state is drained so the next Start()
  /// begins from IDLE, and `cycles_taken` receives the START-to-DONE edge
  /// count (always 3l+4 on a healthy circuit).
  bool TryMultiply(const bignum::BigUInt& x, const bignum::BigUInt& y,
                   bignum::BigUInt* out,
                   std::uint64_t* cycles_taken = nullptr,
                   std::uint64_t max_cycles = 0) {
    if (max_cycles == 0) max_cycles = 8 * (gen_.l + 4);
    Start(x, y);
    std::uint64_t cycles = 1;
    while (!Done()) {
      if (cycles >= max_cycles) return false;
      sim_.Tick();
      ++cycles;
    }
    if (out != nullptr) *out = Result();
    if (cycles_taken != nullptr) *cycles_taken = cycles;
    sim_.Tick();  // drain OUT -> IDLE
    return true;
  }

 private:
  const MmmcNetlist& gen_;
  std::unique_ptr<rtl::Simulator> owned_;
  rtl::Simulator& sim_;
};

/// 64-lane companion: drives up to 64 independent operand pairs through
/// one generated MMMC netlist per simulation pass.  All lanes share the
/// modulus and the START schedule, so the control path (a function of
/// START and the counter only) stays lane-uniform and DONE rises on every
/// lane in the same cycle — the paper's 3l+4.
class MmmcBatchSimDriver {
 public:
  explicit MmmcBatchSimDriver(const MmmcNetlist& gen)
      : gen_(gen),
        owned_(std::make_unique<rtl::BatchSimulator>(*gen.netlist)),
        sim_(*owned_) {}

  /// Borrows an existing simulator (a pre-compiled netlist, a fault
  /// campaign's simulator, ...).
  MmmcBatchSimDriver(const MmmcNetlist& gen, rtl::BatchSimulator& sim)
      : gen_(gen), sim_(sim) {}

  rtl::BatchSimulator& sim() { return sim_; }
  const MmmcNetlist& gen() const { return gen_; }

  void LoadModulus(const bignum::BigUInt& n) {
    DriveBusAllLanes(sim_, gen_.n_in, n);
  }

  /// Dual-field builds only: true selects GF(p), false selects GF(2^m).
  void SelectField(bool gfp) { sim_.SetInputAll(gen_.fsel, gfp); }

  /// Presents operand pair k on lane k (lanes beyond xs.size() get 0) and
  /// pulses START on every lane for exactly one clock edge.  Throws
  /// std::invalid_argument for more than 64 pairs or mismatched sizes.
  void Start(const std::vector<bignum::BigUInt>& xs,
             const std::vector<bignum::BigUInt>& ys) {
    if (xs.size() > rtl::BatchSimulator::kLanes || xs.size() != ys.size()) {
      throw std::invalid_argument(
          "MmmcBatchSimDriver::Start: need equal operand counts <= 64");
    }
    for (std::size_t i = 0; i < gen_.x_in.size(); ++i) {
      std::uint64_t wx = 0, wy = 0;
      for (std::size_t lane = 0; lane < xs.size(); ++lane) {
        if (xs[lane].Bit(i)) wx |= std::uint64_t{1} << lane;
        if (ys[lane].Bit(i)) wy |= std::uint64_t{1} << lane;
      }
      sim_.SetInput(gen_.x_in[i], wx);
      sim_.SetInput(gen_.y_in[i], wy);
    }
    sim_.SetInputAll(gen_.start, true);
    sim_.Tick();
    sim_.SetInputAll(gen_.start, false);
  }

  void Tick() { sim_.Tick(); }
  /// DONE word across lanes; 0 or all-ones on a healthy circuit.
  std::uint64_t DoneLanes() const { return sim_.Peek(gen_.done); }
  bool AllDone() const { return DoneLanes() == rtl::BatchSimulator::kAllLanes; }

  bignum::BigUInt Result(std::size_t lane) const {
    return sim_.PeekWide(gen_.result, lane);
  }

  /// One full multiplication of up to 64 operand pairs.  Returns false if
  /// DONE does not arrive on every lane within `max_cycles` edges.  On
  /// success `out` (if given) receives one result per input pair, the OUT
  /// state is drained so the next Start() begins from IDLE, and
  /// `cycles_taken` receives the START-to-DONE edge count (always 3l+4 on
  /// a healthy circuit).
  bool TryMultiply(const std::vector<bignum::BigUInt>& xs,
                   const std::vector<bignum::BigUInt>& ys,
                   std::vector<bignum::BigUInt>* out,
                   std::uint64_t* cycles_taken = nullptr,
                   std::uint64_t max_cycles = 0) {
    if (max_cycles == 0) max_cycles = 8 * (gen_.l + 4);
    Start(xs, ys);
    std::uint64_t cycles = 1;
    while (!AllDone()) {
      if (cycles >= max_cycles) return false;
      sim_.Tick();
      ++cycles;
    }
    if (out != nullptr) {
      out->clear();
      for (std::size_t lane = 0; lane < xs.size(); ++lane) {
        out->push_back(Result(lane));
      }
    }
    if (cycles_taken != nullptr) *cycles_taken = cycles;
    sim_.Tick();  // drain OUT -> IDLE
    return true;
  }

 private:
  const MmmcNetlist& gen_;
  std::unique_ptr<rtl::BatchSimulator> owned_;
  rtl::BatchSimulator& sim_;
};

}  // namespace mont::core
