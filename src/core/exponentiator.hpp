// exponentiator.hpp — the paper's modular exponentiator (§4.5, Algorithm 3)
// built from repeated Montgomery modular multiplications, with exact cycle
// accounting.
//
// Every multiplication runs on a `core::MmmEngine` selected by registry
// name (core/engine.hpp), so any datapath in the tree is a drop-in:
//
//   * "bit-serial" (default) — software Algorithm 2, cycles charged per
//     the validated formula 3l+4; usable at RSA sizes;
//   * "mmmc" — every multiplication simulated clock edge by clock edge on
//     the behavioural array model, so cycle counts are measured;
//   * "netlist-sim", "interleaved", "high-radix", "word-mont",
//     "blum-paar" — every other registered backend.
//
// All backends are bit-identical (asserted in tests/test_engine.cpp); the
// paper's published cycle model (pre-computation 5l+10, one MMM 3l+4,
// post-processing l+2, Eq. 10 bounds) is reported in EngineStats alongside
// the engine's own count so benches can print paper-vs-measured.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>

#include "bignum/biguint.hpp"
#include "bignum/random.hpp"
#include "core/engine.hpp"

namespace mont::core {

/// Exponent-randomization countermeasure (§5's side-channel motivation,
/// closed by the sca lab): every ModExp call runs with
/// exponent + k * group_order for a fresh random k, so the
/// square/multiply sequence — the SPA/CPA target — changes per call while
/// the result is unchanged whenever group_order is a multiple of the
/// base's multiplicative order (e.g. lambda(n) or phi(n) for RSA).
struct ExponentBlinding {
  bignum::BigUInt group_order;   ///< must be a multiple of the base's order
  std::size_t random_bits = 16;  ///< bit width of the per-call random k
  std::uint64_t seed = 0x0b11d5eedull;  ///< deterministic blinding stream
};

/// Modular exponentiator over a fixed odd modulus N (bit length l),
/// parameterised by multiplication backend.
class Exponentiator {
 public:
  /// Builds the named registry backend over `modulus` (GF(p)).
  explicit Exponentiator(bignum::BigUInt modulus,
                         std::string_view engine = "bit-serial",
                         const EngineOptions& options = {});
  /// Adopts an already-constructed backend.
  explicit Exponentiator(std::unique_ptr<MmmEngine> engine);

  std::size_t l() const { return engine_->l(); }
  const bignum::BigUInt& Modulus() const { return engine_->Modulus(); }
  const MmmEngine& Engine() const { return *engine_; }

  /// base^exponent mod N via left-to-right square-and-multiply with
  /// Montgomery pre-/post-processing exactly as in §4.5.  With exponent
  /// blinding enabled the scan actually runs over
  /// exponent + k * group_order (fresh k per call): same result,
  /// randomized operation sequence — `stats` then reports the blinded
  /// exponent's operation counts.
  bignum::BigUInt ModExp(const bignum::BigUInt& base,
                         const bignum::BigUInt& exponent,
                         EngineStats* stats = nullptr);

  /// Enables per-call exponent randomization.  Throws
  /// std::invalid_argument if group_order is zero or random_bits is 0.
  void EnableExponentBlinding(ExponentBlinding blinding);
  void DisableExponentBlinding() { blinding_.reset(); }
  bool ExponentBlindingEnabled() const { return blinding_.has_value(); }

 private:
  std::unique_ptr<MmmEngine> engine_;
  std::optional<ExponentBlinding> blinding_;
  std::optional<bignum::RandomBigUInt> blind_rng_;
};

}  // namespace mont::core
