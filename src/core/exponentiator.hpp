// exponentiator.hpp — the paper's modular exponentiator (§4.5, Algorithm 3)
// built from repeated Montgomery modular multiplications, with exact cycle
// accounting.
//
// Two interchangeable engines compute each MMM:
//   * kCycleAccurate — every multiplication runs on the clock-by-clock Mmmc
//     model (src/core/mmmc.*), so the cycle counts are measured, not modelled;
//   * kFast — multiplications use the software Algorithm-2 reference and
//     cycles are charged per the validated formula 3l+4.  Bit-for-bit the
//     same results, usable at RSA sizes where full cycle simulation of a
//     whole exponentiation is unnecessarily slow.
//
// The paper's published cycle model (pre-computation 5l+10, one MMM 3l+4,
// post-processing l+2, Eq. 10 bounds) is reported alongside the measured
// count so benches can print paper-vs-measured.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "bignum/biguint.hpp"
#include "bignum/montgomery.hpp"
#include "core/mmmc.hpp"

namespace mont::core {

/// Cycle/operation accounting for one modular exponentiation.
struct ExponentiationStats {
  std::uint64_t squarings = 0;
  std::uint64_t multiplications = 0;   // conditional multiplies (set bits)
  std::uint64_t mmm_invocations = 0;   // includes domain entry/exit
  std::uint64_t measured_mmm_cycles = 0;  // sum over all MMMs actually run
  std::uint64_t paper_model_cycles = 0;   // paper §4.5 accounting
};

/// Modular exponentiator over a fixed odd modulus N (bit length l).
class Exponentiator {
 public:
  enum class Engine { kCycleAccurate, kFast };

  explicit Exponentiator(bignum::BigUInt modulus,
                         Engine engine = Engine::kFast);

  std::size_t l() const { return reference_.l(); }
  const bignum::BigUInt& Modulus() const { return reference_.Modulus(); }

  /// base^exponent mod N via left-to-right square-and-multiply with
  /// Montgomery pre-/post-processing exactly as in §4.5.
  bignum::BigUInt ModExp(const bignum::BigUInt& base,
                         const bignum::BigUInt& exponent,
                         ExponentiationStats* stats = nullptr);

 private:
  bignum::BigUInt Mmm(const bignum::BigUInt& x, const bignum::BigUInt& y,
                      ExponentiationStats* stats);

  bignum::BitSerialMontgomery reference_;
  Engine engine_;
  std::optional<Mmmc> circuit_;
};

}  // namespace mont::core
