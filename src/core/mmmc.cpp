#include "core/mmmc.hpp"

#include <stdexcept>

#include "core/schedule.hpp"

namespace mont::core {

using bignum::BigUInt;

const char* MmmcStateName(MmmcState state) {
  switch (state) {
    case MmmcState::kIdle: return "IDLE";
    case MmmcState::kMul1: return "MUL1";
    case MmmcState::kMul2: return "MUL2";
    case MmmcState::kOut: return "OUT";
  }
  return "?";
}

Mmmc::Mmmc(BigUInt modulus, FieldMode mode)
    : modulus_(std::move(modulus)), mode_(mode) {
  if (!modulus_.IsOdd() || modulus_ <= BigUInt{1}) {
    throw std::invalid_argument(
        "Mmmc: modulus must be odd > 1 (GF(2^m): f(0) = 1)");
  }
  if (mode_ == FieldMode::kGfP) {
    l_ = modulus_.BitLength();
    operand_bound_ = modulus_ << 1;
  } else {
    if (modulus_.BitLength() < 3) {
      throw std::invalid_argument("Mmmc: GF(2^m) needs deg(f) >= 2");
    }
    l_ = modulus_.BitLength() - 1;  // degree of f
    operand_bound_ = BigUInt::PowerOfTwo(l_ + 1);  // polynomials of deg <= l
  }
  y_bits_.assign(l_ + 1, 0);
  // In GF(p) mode n_l = 0 by construction (N < 2^l); in GF(2^m) mode bit l
  // is f's leading coefficient, always 1.
  n_bits_.assign(l_ + 1, 0);
  for (std::size_t j = 0; j <= l_; ++j) n_bits_[j] = modulus_.Bit(j) ? 1 : 0;
  x_reg_.assign(l_ + 1, 0);
  // t_[0..l+2]: one bit wider than the paper's T register.  The paper's
  // leftmost cell (Eq. 9) drops a carry for legal inputs — the intermediate
  // accumulator is bounded by 2(Y+N), which exceeds 2^(l+2) when Y is close
  // to 2N (counterexample: N=13, x=15, y=22).  The extra top bit plus one
  // extra full adder closes the range; see DESIGN.md "Erratum".
  t_.assign(l_ + 3, 0);
  c0_.assign(l_, 0);
  c1_.assign(l_, 0);
  x_pipe_.assign(l_ + 1, 0);
  m_pipe_.assign(l_ + 1, 0);
  token_.assign(l_ + 1, 0);
  result_.assign(l_ + 1, 0);
}

void Mmmc::ApplyInputs(const BigUInt& x, const BigUInt& y) {
  if (x >= operand_bound_ || y >= operand_bound_) {
    throw std::invalid_argument(
        "Mmmc: operands must be < 2N (GF(2^m): degree <= l)");
  }
  pending_x_ = x;
  pending_y_ = y;
  start_pending_ = true;
}

BigUInt Mmmc::Result() const {
  BigUInt out;
  for (std::size_t b = 0; b <= l_; ++b) {
    if (result_[b]) out.SetBit(b, true);
  }
  return out;
}

void Mmmc::StepArray(bool even_cycle) {
  const std::size_t l = l_;
  std::vector<std::uint8_t> t_next = t_;
  std::vector<std::uint8_t> c0_next = c0_;
  std::vector<std::uint8_t> c1_next = c1_;
  // Cell j's output registers are clock-enabled on its active phase only.
  const auto cell_active = [even_cycle](std::size_t j) {
    return (j % 2 == 0) == even_cycle;
  };
  // Dual-field gating: in GF(2^m) mode every carry is forced to zero,
  // which turns each FA/HA into the XOR the polynomial field needs.
  const std::uint8_t carry_en = mode_ == FieldMode::kGfP ? 1 : 0;

  // --- combinational cell outputs from current register values ---

  // Rightmost cell (j = 0), Fig. 1(b): one AND, one XOR, one OR.
  const std::uint8_t x0 = x_reg_[0];
  const std::uint8_t xy0 = static_cast<std::uint8_t>(x0 & y_bits_[0]);
  const std::uint8_t m0 = static_cast<std::uint8_t>(t_[1] ^ xy0);
  if (cell_active(0)) {
    c0_next[0] = static_cast<std::uint8_t>((t_[1] | xy0) & carry_en);
  }
  // t_{i,0} = 0 always (Eq. 6/7); nothing stored.

  // 1st-bit cell (j = 1), Fig. 1(c): one FA, two HAs, two ANDs.
  if (l >= 2 && cell_active(1)) {
    const std::uint8_t a = t_[2];
    const std::uint8_t b = static_cast<std::uint8_t>(x_pipe_[1] & y_bits_[1]);
    const std::uint8_t c = static_cast<std::uint8_t>(m_pipe_[1] & n_bits_[1]);
    const std::uint8_t s1 = static_cast<std::uint8_t>(a ^ b ^ c);
    const std::uint8_t ca =
        static_cast<std::uint8_t>((a & b) | (a & c) | (b & c));
    t_next[1] = static_cast<std::uint8_t>(s1 ^ c0_[0]);
    const std::uint8_t cb = static_cast<std::uint8_t>(s1 & c0_[0]);
    c0_next[1] = static_cast<std::uint8_t>((ca ^ cb) & carry_en);
    c1_next[1] = static_cast<std::uint8_t>(ca & cb & carry_en);
  }

  // Regular cells (j = 2..l-1), Fig. 1(a): two FAs, one HA, two ANDs.
  for (std::size_t j = 2; j + 1 <= l && j <= l - 1 && l >= 3; ++j) {
    if (!cell_active(j)) continue;
    const std::uint8_t a = t_[j + 1];
    const std::uint8_t b = static_cast<std::uint8_t>(x_pipe_[j] & y_bits_[j]);
    const std::uint8_t c = static_cast<std::uint8_t>(m_pipe_[j] & n_bits_[j]);
    const std::uint8_t s1 = static_cast<std::uint8_t>(a ^ b ^ c);
    const std::uint8_t ca =
        static_cast<std::uint8_t>((a & b) | (a & c) | (b & c));
    t_next[j] = static_cast<std::uint8_t>(s1 ^ c0_[j - 1]);
    const std::uint8_t cb = static_cast<std::uint8_t>(s1 & c0_[j - 1]);
    c0_next[j] = static_cast<std::uint8_t>((ca ^ cb ^ c1_[j - 1]) & carry_en);
    c1_next[j] = static_cast<std::uint8_t>(
        ((ca & cb) | (ca & c1_[j - 1]) | (cb & c1_[j - 1])) & carry_en);
  }

  // Leftmost cell (j = l), Fig. 1(d) widened by one carry bit: two FAs and
  // one AND (n_l = 0).  The second FA replaces the paper's single XOR so
  // the top of the accumulator cannot overflow (see DESIGN.md "Erratum").
  if (cell_active(l)) {
    const std::uint8_t a = t_[l + 1];
    const std::uint8_t b = static_cast<std::uint8_t>(x_pipe_[l] & y_bits_[l]);
    const std::uint8_t c = c0_[l - 1];
    // The m*n_l product exists only in GF(2^m) mode (n_l = 1 there, 0 for
    // integer moduli), where every carry is zero, so XOR-ing it into the
    // sum is exact.
    const std::uint8_t mn =
        static_cast<std::uint8_t>(m_pipe_[l] & n_bits_[l]);
    t_next[l] = static_cast<std::uint8_t>(a ^ b ^ c ^ mn);
    const std::uint8_t ca = static_cast<std::uint8_t>(
        ((a & b) | (a & c) | (b & c)) & carry_en);
    const std::uint8_t a2 = t_[l + 2];
    const std::uint8_t c1p = c1_[l - 1];
    t_next[l + 1] = static_cast<std::uint8_t>(a2 ^ ca ^ c1p);
    t_next[l + 2] =
        static_cast<std::uint8_t>(((a2 & ca) | (a2 & c1p) | (ca & c1p)) &
                                  carry_en);
  }

  // --- skewed result capture (the datapath T register of Fig. 3) ---
  for (std::size_t j = 1; j <= l; ++j) {
    if (!token_[j]) continue;
    if (j < l) {
      result_[j - 1] = t_next[j];
    } else {
      result_[l - 1] = t_next[l];
      result_[l] = t_next[l + 1];
    }
  }

  // --- latch all registers ---
  t_ = std::move(t_next);
  c0_ = std::move(c0_next);
  c1_ = std::move(c1_next);

  // x/m pipelines shift one cell leftward per cycle.
  for (std::size_t j = l; j >= 2; --j) {
    x_pipe_[j] = x_pipe_[j - 1];
    m_pipe_[j] = m_pipe_[j - 1];
  }
  x_pipe_[1] = x0;
  m_pipe_[1] = m0;

  // Capture token shifts alongside; token_[0] is re-driven by the
  // comparator in Tick().
  for (std::size_t j = l; j >= 1; --j) token_[j] = token_[j - 1];
  token_[0] = 0;
}

void Mmmc::Tick() {
  ++cycles_;
  switch (state_) {
    case MmmcState::kIdle: {
      if (!start_pending_) return;
      start_pending_ = false;
      // Load operand registers, clear the datapath (Fig. 4 IDLE actions).
      for (std::size_t b = 0; b <= l_; ++b) {
        x_reg_[b] = pending_x_.Bit(b) ? 1 : 0;
        y_bits_[b] = pending_y_.Bit(b) ? 1 : 0;
      }
      std::fill(t_.begin(), t_.end(), 0);
      std::fill(c0_.begin(), c0_.end(), 0);
      std::fill(c1_.begin(), c1_.end(), 0);
      std::fill(x_pipe_.begin(), x_pipe_.end(), 0);
      std::fill(m_pipe_.begin(), m_pipe_.end(), 0);
      std::fill(token_.begin(), token_.end(), 0);
      std::fill(result_.begin(), result_.end(), 0);
      counter_ = 0;
      state_ = MmmcState::kMul1;
      return;
    }
    case MmmcState::kMul1: {
      // The comparator launches the capture token in the MUL1 cycle where
      // the counter first equals l+1 (i.e. compute cycle 2l+2).
      token_[0] = CountEnd() ? 1 : 0;
      const bool finishing = token_[l_] != 0;
      StepArray(/*even_cycle=*/true);
      state_ = finishing ? MmmcState::kOut : MmmcState::kMul2;
      return;
    }
    case MmmcState::kMul2: {
      token_[0] = 0;
      const bool finishing = token_[l_] != 0;
      StepArray(/*even_cycle=*/false);
      // Right-shift X, zero-filling the MSB (Fig. 4 MUL2 action), so the
      // final iterations see x_i = 0.
      for (std::size_t b = 0; b + 1 <= l_; ++b) x_reg_[b] = x_reg_[b + 1];
      x_reg_[l_] = 0;
      ++counter_;
      state_ = finishing ? MmmcState::kOut : MmmcState::kMul1;
      return;
    }
    case MmmcState::kOut: {
      state_ = MmmcState::kIdle;
      return;
    }
  }
}

BigUInt Mmmc::Multiply(const BigUInt& x, const BigUInt& y,
                       std::uint64_t* cycles_taken) {
  ApplyInputs(x, y);
  // Drain a previous OUT state so the measurement starts where the ASM can
  // sample START (the paper's 3l+4 counts START to DONE).
  while (state_ != MmmcState::kIdle) Tick();
  const std::uint64_t begin = cycles_;
  Tick();  // START sampled: IDLE -> MUL1 with operands loaded
  while (!Done()) {
    Tick();
    if (cycles_ - begin > 8 * (l_ + 4)) {
      throw std::logic_error("Mmmc: DONE was not reached (FSM stuck)");
    }
  }
  if (cycles_taken != nullptr) *cycles_taken = cycles_ - begin;
  return Result();
}

}  // namespace mont::core
