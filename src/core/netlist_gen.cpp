#include "core/netlist_gen.hpp"

#include <bit>
#include <stdexcept>
#include <vector>

#include "core/cells.hpp"
#include "rtl/components.hpp"

namespace mont::core {

using rtl::Bus;
using rtl::Netlist;
using rtl::NetId;

SystolicArrayNetlist BuildSystolicArrayComb(std::size_t l) {
  if (l < 2) throw std::invalid_argument("BuildSystolicArrayComb: l >= 2");
  SystolicArrayNetlist out;
  out.l = l;
  out.netlist = std::make_unique<Netlist>();
  Netlist& nl = *out.netlist;

  out.t_in = rtl::InputBus(nl, "t", l + 2);          // t[1..l+2]
  out.x_in = rtl::InputBus(nl, "x", l + 1);          // per cell 0..l
  out.m_in = rtl::InputBus(nl, "m", l);              // per cell 1..l
  out.y_in = rtl::InputBus(nl, "y", l + 1);          // y_0..y_l
  out.n_in = rtl::InputBus(nl, "n", l);              // n_0..n_{l-1}
  out.c0_in = rtl::InputBus(nl, "c0", l);            // c0[0..l-1]
  out.c1_in = rtl::InputBus(nl, "c1", l - 1);        // c1[1..l-1]

  const auto t_reg = [&](std::size_t j) { return out.t_in[j - 1]; };
  const auto m_reg = [&](std::size_t j) { return out.m_in[j - 1]; };
  const auto c1_reg = [&](std::size_t j) { return out.c1_in[j - 1]; };

  out.t_out.assign(l + 2, rtl::kNoNet);
  out.c0_out.assign(l, rtl::kNoNet);
  out.c1_out.assign(l - 1, rtl::kNoNet);

  const RightmostCellOut cell0 =
      BuildRightmostCell(nl, t_reg(1), out.x_in[0], out.y_in[0]);
  out.m_out = cell0.m;
  out.c0_out[0] = cell0.c0;

  const InnerCellOut cell1 =
      BuildFirstBitCell(nl, t_reg(2), out.x_in[1], out.y_in[1], m_reg(1),
                        out.n_in[1], out.c0_in[0]);
  out.t_out[0] = cell1.t;
  out.c0_out[1] = cell1.c0;
  out.c1_out[0] = cell1.c1;

  for (std::size_t j = 2; j <= l - 1; ++j) {
    const InnerCellOut cell =
        BuildRegularCell(nl, t_reg(j + 1), out.x_in[j], out.y_in[j], m_reg(j),
                         out.n_in[j], out.c0_in[j - 1], c1_reg(j - 1));
    out.t_out[j - 1] = cell.t;
    out.c0_out[j] = cell.c0;
    out.c1_out[j - 1] = cell.c1;
  }

  const LeftmostCellOut cell_l = BuildLeftmostCell(
      nl, t_reg(l + 1), t_reg(l + 2), out.x_in[l], out.y_in[l],
      out.c0_in[l - 1], c1_reg(l - 1));
  out.t_out[l - 1] = cell_l.t;
  out.t_out[l] = cell_l.t_top;
  out.t_out[l + 1] = cell_l.t_top2;

  nl.MarkOutput(out.m_out, "m");
  for (std::size_t j = 0; j < out.t_out.size(); ++j) {
    nl.MarkOutput(out.t_out[j], rtl::IndexedName("t_out", j + 1));
  }
  for (std::size_t j = 0; j < out.c0_out.size(); ++j) {
    nl.MarkOutput(out.c0_out[j], rtl::IndexedName("c0_out", j));
  }
  for (std::size_t j = 0; j < out.c1_out.size(); ++j) {
    nl.MarkOutput(out.c1_out[j], rtl::IndexedName("c1_out", j + 1));
  }
  // During an exponentiation the x stream carries the scanned operand and
  // the m stream is derived from it, so both are key-dependent quantities.
  for (const NetId net : out.x_in) nl.MarkSecret(net);
  for (const NetId net : out.m_in) nl.MarkSecret(net);
  // Two port bits exist only for bus regularity: n_0 (1 by precondition,
  // consumed by no cell) and the leftmost cell's m (the Fig. 1(d) cell has
  // no m·n product).  Keeping the full-width buses keeps the port map
  // index-aligned with the paper's figures.
  nl.WaiveLint(out.n_in[0], "n_0 = 1 by precondition; no cell reads it");
  nl.WaiveLint(out.m_in[l - 1],
               "leftmost cell (Fig. 1(d)) takes no m input; bit kept for "
               "bus regularity");
  return out;
}

MmmcPorts BuildMmmcInto(Netlist& nl, std::size_t l, bool dual_field,
                        NetId start, const Bus& x_in, const Bus& y_in,
                        const Bus& n_in, NetId fsel_in) {
  if (l < 2) throw std::invalid_argument("BuildMmmcInto: l >= 2");
  if (x_in.size() != l + 1 || y_in.size() != l + 1 || n_in.size() != l) {
    throw std::invalid_argument(
        "BuildMmmcInto: x/y must be l+1 bits and n must be l bits");
  }
  if (dual_field && fsel_in == rtl::kNoNet) {
    throw std::invalid_argument("BuildMmmcInto: dual_field needs an fsel net");
  }
  MmmcPorts out;
  out.l = l;
  out.start = start;
  out.x_in = x_in;
  out.y_in = y_in;
  out.n_in = n_in;

  // Field select: constant-1 in the single-field build keeps the two
  // variants structurally aligned (the constant folds away in mapping).
  const NetId fsel = dual_field ? fsel_in : nl.Const1();
  if (dual_field) out.fsel = fsel;

  // ---- controller state (Fig. 4): IDLE=00, MUL1=01, MUL2=10, OUT=11 ----
  const NetId s0 = nl.Dff(nl.Const0());
  const NetId s1 = nl.Dff(nl.Const0());
  out.state_s0 = s0;
  out.state_s1 = s1;
  const NetId ns0 = nl.Not(s0);
  const NetId ns1 = nl.Not(s1);
  const NetId in_idle = nl.And(ns1, ns0);
  const NetId in_mul1 = nl.And(ns1, s0);
  const NetId in_mul2 = nl.And(s1, ns0);
  const NetId in_out = nl.And(s1, s0);
  const NetId load = nl.And(in_idle, out.start);
  const NetId compute = nl.Or(in_mul1, in_mul2);

  // ---- operand registers ----
  const Bus x_reg =
      rtl::ShiftRightRegister(nl, out.x_in, load, in_mul2, nl.Const0());
  const Bus y_reg = rtl::LoadRegister(nl, out.y_in, load);
  const Bus n_reg = rtl::LoadRegister(nl, out.n_in, load);
  // The array reads n_1..n_{l-1} only: n_0 is 1 by precondition (odd
  // modulus; f(0) = 1 in the dual-field polynomial mode), so cells 0 and 1
  // never consume it.  The bit-0 register is kept — the paper's N register
  // is l bits wide and Table 1's flip-flop counts include it — and waived
  // for the structural lint's dead-gate rule instead of removed.
  nl.WaiveLint(n_reg[0],
               "N register bit 0: unread (n_0 = 1 by precondition); kept for "
               "the paper's l-bit register file and Table 1 FF counts");

  // ---- counter (increments each MUL2 cycle) + comparator ----
  const std::uint64_t max_count = (3 * static_cast<std::uint64_t>(l) + 3) / 2 + 2;
  out.counter_width = static_cast<std::size_t>(std::bit_width(max_count));
  const Bus counter = rtl::Counter(nl, out.counter_width, in_mul2, load);
  const NetId count_end = rtl::EqualsConstant(nl, counter, l + 1);
  out.count_end = count_end;

  // ---- array state flip-flops (created first, wired after the cells) ----
  const auto make_ffs = [&](std::size_t n) {
    Bus ffs(n);
    for (auto& ff : ffs) ff = nl.Dff(nl.Const0());
    return ffs;
  };
  Bus t_ff = make_ffs(l + 2);    // t[1..l+2] (index j-1)
  Bus c0_ff = make_ffs(l);       // c0[0..l-1]
  Bus c1_ff = make_ffs(l - 1);   // c1[1..l-1] (index j-1)
  out.t_probe = t_ff;
  out.c0_probe = c0_ff;
  out.c1_probe = c1_ff;
  Bus xp_ff = make_ffs(l);       // x pipe into cells 1..l (index j-1)
  Bus mp_ff = make_ffs(l);       // m pipe into cells 1..l (index j-1)
  Bus tok_ff = make_ffs(l);      // capture token at cells 1..l (index j-1)
  Bus res_ff = make_ffs(l + 1);  // result bits 0..l
  out.result = res_ff;

  // ---- systolic array cells (Fig. 1 / Fig. 2) ----
  // In the dual-field variant every carry is gated by fsel before it is
  // registered, so fsel = 0 turns the adders into the XOR network the
  // polynomial field needs.  The single-field build adds no gates.
  const auto gate = [&](NetId carry) {
    return dual_field ? nl.And(fsel, carry) : carry;
  };

  const RightmostCellOut cell0 =
      BuildRightmostCell(nl, t_ff[0], x_reg[0], y_reg[0]);

  std::vector<NetId> t_out(l + 3, rtl::kNoNet);  // t_out[1..l+2]
  std::vector<NetId> c0_out(l, rtl::kNoNet);
  std::vector<NetId> c1_out(l, rtl::kNoNet);  // c1_out[1..l-1]
  c0_out[0] = gate(cell0.c0);

  const InnerCellOut cell1 = BuildFirstBitCell(
      nl, t_ff[1], xp_ff[0], y_reg[1], mp_ff[0], n_reg[1], c0_ff[0]);
  t_out[1] = cell1.t;
  c0_out[1] = gate(cell1.c0);
  c1_out[1] = gate(cell1.c1);

  for (std::size_t j = 2; j <= l - 1; ++j) {
    const InnerCellOut cell =
        BuildRegularCell(nl, t_ff[j], xp_ff[j - 1], y_reg[j], mp_ff[j - 1],
                         n_reg[j], c0_ff[j - 1], c1_ff[j - 2]);
    t_out[j] = cell.t;
    c0_out[j] = gate(cell.c0);
    c1_out[j] = gate(cell.c1);
  }

  if (!dual_field) {
    const LeftmostCellOut cell_l =
        BuildLeftmostCell(nl, t_ff[l], t_ff[l + 1], xp_ff[l - 1], y_reg[l],
                          c0_ff[l - 1], c1_ff[l - 2]);
    t_out[l] = cell_l.t;
    t_out[l + 1] = cell_l.t_top;
    t_out[l + 2] = cell_l.t_top2;
    // The single-field leftmost cell (Fig. 1(d)) has no m·n product, so
    // the last m-pipe stage feeds nothing; it is kept so the register file
    // stays stage-aligned with the dual-field build (whose leftmost cell
    // does read it) and with the paper's register inventory.
    nl.WaiveLint(mp_ff[l - 1],
                 "m-pipe stage l: unread by the single-field leftmost cell "
                 "(n_l = 0); kept for register-file alignment with the "
                 "dual-field variant");
  } else {
    // Dual-field leftmost: a regular cell whose n input is the implicit
    // top modulus bit (0 for integer N < 2^l; 1 for deg-l f), followed by
    // the top-bit merge.
    const NetId n_top = nl.Not(fsel);
    const InnerCellOut cell_l =
        BuildRegularCell(nl, t_ff[l], xp_ff[l - 1], y_reg[l], mp_ff[l - 1],
                         n_top, c0_ff[l - 1], c1_ff[l - 2]);
    t_out[l] = cell_l.t;
    const rtl::AdderBit top = rtl::HalfAdder(nl, gate(cell_l.c0), t_ff[l + 1]);
    t_out[l + 1] = top.sum;
    t_out[l + 2] = gate(nl.Xor(cell_l.c1, top.carry));
  }

  // ---- capture token: launched by the comparator in MUL1, then shifted ----
  const NetId tok0 = nl.And(count_end, in_mul1);
  const NetId finishing = tok_ff[l - 1];

  // ---- register wiring ----
  // Cell j's output registers are clock-enabled only on its active phase:
  // even cells latch in MUL1 (even compute cycles), odd cells in MUL2.
  // This is what makes the two multiply states of the ASM necessary.
  const auto phase_en = [&](std::size_t cell) {
    return (cell % 2 == 0) ? in_mul1 : in_mul2;
  };
  for (std::size_t j = 1; j <= l; ++j) {
    nl.RewireDff(t_ff[j - 1], t_out[j], phase_en(j), load);
  }
  // t[l+1] and t[l+2] are both produced by cell l.
  nl.RewireDff(t_ff[l], t_out[l + 1], phase_en(l), load);
  nl.RewireDff(t_ff[l + 1], t_out[l + 2], phase_en(l), load);
  for (std::size_t j = 0; j <= l - 1; ++j) {
    nl.RewireDff(c0_ff[j], c0_out[j], phase_en(j), load);
  }
  for (std::size_t j = 1; j <= l - 1; ++j) {
    nl.RewireDff(c1_ff[j - 1], c1_out[j], phase_en(j), load);
  }
  nl.RewireDff(xp_ff[0], x_reg[0], compute, load);
  nl.RewireDff(mp_ff[0], cell0.m, compute, load);
  for (std::size_t j = 2; j <= l; ++j) {
    nl.RewireDff(xp_ff[j - 1], xp_ff[j - 2], compute, load);
    nl.RewireDff(mp_ff[j - 1], mp_ff[j - 2], compute, load);
  }
  nl.RewireDff(tok_ff[0], tok0, compute, load);
  for (std::size_t j = 2; j <= l; ++j) {
    nl.RewireDff(tok_ff[j - 1], tok_ff[j - 2], compute, load);
  }
  // Skewed result capture: bit j-1 latches when the token reaches cell j.
  for (std::size_t j = 1; j <= l - 1; ++j) {
    nl.RewireDff(res_ff[j - 1], t_out[j], nl.And(tok_ff[j - 1], compute), load);
  }
  const NetId cap_l = nl.And(tok_ff[l - 1], compute);
  nl.RewireDff(res_ff[l - 1], t_out[l], cap_l, load);
  nl.RewireDff(res_ff[l], t_out[l + 1], cap_l, load);

  // ---- controller next-state logic ----
  const NetId not_fin = nl.Not(finishing);
  const NetId go_out = nl.And(finishing, compute);
  const NetId next_s0 =
      nl.Or(nl.Or(load, nl.And(in_mul2, not_fin)), go_out);
  const NetId next_s1 = nl.Or(nl.And(in_mul1, not_fin), go_out);
  nl.RewireDff(s0, next_s0);
  nl.RewireDff(s1, next_s1);

  out.done = in_out;
  return out;
}

MmmcNetlist BuildMmmcNetlist(std::size_t l, bool dual_field) {
  if (l < 2) throw std::invalid_argument("BuildMmmcNetlist: l >= 2");
  MmmcNetlist out;
  out.netlist = std::make_unique<Netlist>();
  Netlist& nl = *out.netlist;

  // ---- primary ports ----
  const NetId start = nl.AddInput("start");
  const Bus x_in = rtl::InputBus(nl, "x", l + 1);
  const Bus y_in = rtl::InputBus(nl, "y", l + 1);
  const Bus n_in = rtl::InputBus(nl, "n", l);
  const NetId fsel = dual_field ? nl.AddInput("fsel") : rtl::kNoNet;

  static_cast<MmmcPorts&>(out) =
      BuildMmmcInto(nl, l, dual_field, start, x_in, y_in, n_in, fsel);

  nl.MarkOutput(out.done, "done");
  for (std::size_t b = 0; b < out.result.size(); ++b) {
    nl.MarkOutput(out.result[b], rtl::IndexedName("result", b));
  }
  nl.MarkOutput(out.count_end, "count_end");
  // Both operands are key-derived quantities during an exponentiation
  // (x is the scanned accumulator, y the accumulator or the base).
  for (const NetId net : out.x_in) nl.MarkSecret(net);
  for (const NetId net : out.y_in) nl.MarkSecret(net);
  return out;
}

ExponentiatorNetlist BuildExponentiatorNetlist(
    std::size_t l, const ExponentiatorNetlistOptions& options) {
  if (l < 2) throw std::invalid_argument("BuildExponentiatorNetlist: l >= 2");
  ExponentiatorNetlist out;
  out.l = l;
  out.masked = options.mask_exponent;
  out.netlist = std::make_unique<Netlist>();
  Netlist& nl = *out.netlist;

  // ---- primary ports ----
  out.start = nl.AddInput("start");
  out.x_in = rtl::InputBus(nl, "x", l + 1);
  out.one_in = rtl::InputBus(nl, "one", l + 1);
  out.e_in = rtl::InputBus(nl, "e", l);
  out.n_in = rtl::InputBus(nl, "n", l);
  if (options.mask_exponent) out.r_in = rtl::InputBus(nl, "r", l);
  for (const NetId net : out.e_in) nl.MarkSecret(net);
  for (std::size_t i = 0; i < out.r_in.size(); ++i) {
    // One mask group per bit: r_i is fresh, independent randomness.
    nl.MarkRandom(out.r_in[i], static_cast<unsigned>(i));
  }

  // ---- scan controller: IDLE=00, SQ=01, MUL=10, DONE=11 ----
  const NetId s0 = nl.Dff(nl.Const0());
  const NetId s1 = nl.Dff(nl.Const0());
  const NetId ns0 = nl.Not(s0);
  const NetId ns1 = nl.Not(s1);
  const NetId in_idle = nl.And(ns1, ns0);
  const NetId in_sq = nl.And(ns1, s0);
  const NetId in_mul = nl.And(s1, ns0);
  const NetId in_done = nl.And(s1, s0);
  const NetId load = nl.And(in_idle, out.start);

  // ---- iteration counter: one count per exponent bit, MSB first ----
  const std::size_t counter_width =
      static_cast<std::size_t>(std::bit_width(static_cast<std::uint64_t>(l)));

  // The embedded multiplier's DONE pulse sequences everything; the FSM
  // below is created first, so the MMMC's operand muxes can reference the
  // state decode, and the MMMC's done is wired into these event gates via
  // placeholder buffers rewired afterwards.
  const NetId mmmc_done_buf = nl.Buf(nl.Const0());  // rewired to mmmc.done
  const NetId ev_sq_done = nl.And(in_sq, mmmc_done_buf);
  const NetId ev_mul_done = nl.And(in_mul, mmmc_done_buf);

  const Bus counter = rtl::Counter(nl, counter_width, ev_mul_done, load);
  const NetId last_iter = rtl::EqualsConstant(nl, counter, l - 1);

  // ---- key scan register(s) ----
  // Unmasked: the exponent sits in one l-bit shift register — every stage
  // is Secret.  Masked: two shares (e XOR r, r) shift in lockstep and the
  // secret reappears only at the single recombination XOR below.
  NetId e_cur = rtl::kNoNet;
  if (!options.mask_exponent) {
    const Bus k_reg =
        rtl::ShiftLeftRegister(nl, out.e_in, load, ev_mul_done, nl.Const0());
    e_cur = k_reg[l - 1];
  } else {
    Bus share0_d(l);
    for (std::size_t i = 0; i < l; ++i) {
      share0_d[i] = nl.Xor(out.e_in[i], out.r_in[i]);  // the taint cut
    }
    const Bus share0 =
        rtl::ShiftLeftRegister(nl, share0_d, load, ev_mul_done, nl.Const0());
    const Bus share1 =
        rtl::ShiftLeftRegister(nl, out.r_in, load, ev_mul_done, nl.Const0());
    e_cur = nl.Xor(share0[l - 1], share1[l - 1]);  // recombination point
  }
  nl.NameNet(e_cur, "e_cur");

  // ---- operand registers ----
  const Bus x_reg = rtl::LoadRegister(nl, out.x_in, load);
  // Accumulator A: loads R mod N, captures the squaring result always and
  // the multiply result only when the scanned bit is 1 (multiply-always:
  // the MMM schedule never depends on the exponent, only this commit does).
  Bus a_reg(l + 1);
  for (auto& ff : a_reg) ff = nl.Dff(nl.Const0());
  const NetId commit = nl.Or(ev_sq_done, nl.And(ev_mul_done, e_cur));
  const NetId a_en = nl.Or(load, commit);
  out.result = a_reg;

  // ---- embedded MMMC ----
  // x operand is always A; y is A while squaring, X while multiplying.
  const Bus mmm_y = rtl::MuxBus(nl, in_sq, x_reg, a_reg);
  const NetId pend = nl.Dff(nl.Or(load, nl.Or(ev_sq_done,
                                              nl.And(ev_mul_done,
                                                     nl.Not(last_iter)))));
  nl.NameNet(pend, "mmm_start");
  out.mmmc = BuildMmmcInto(nl, l, /*dual_field=*/false, pend, a_reg, mmm_y,
                           out.n_in);
  nl.RewireOperand(mmmc_done_buf, 0, out.mmmc.done);

  // A's input: the Montgomery 1 at load, the multiplier's result otherwise.
  const Bus a_d = rtl::MuxBus(nl, load, out.mmmc.result, out.one_in);
  for (std::size_t b = 0; b <= l; ++b) {
    nl.RewireDff(a_reg[b], a_d[b], a_en);
  }

  // ---- next state ----
  const NetId stay = nl.Nor(nl.Or(load, in_done),
                            nl.Or(ev_sq_done, ev_mul_done));
  const NetId next_s0 =
      nl.Or(nl.Or(load, ev_mul_done), nl.And(stay, s0));
  const NetId next_s1 =
      nl.Or(nl.Or(ev_sq_done, nl.And(ev_mul_done, last_iter)),
            nl.And(stay, s1));
  nl.RewireDff(s0, next_s0);
  nl.RewireDff(s1, next_s1);

  out.done = in_done;
  nl.MarkOutput(out.done, "done");
  for (std::size_t b = 0; b < out.result.size(); ++b) {
    nl.MarkOutput(out.result[b], rtl::IndexedName("result", b));
  }
  return out;
}

}  // namespace mont::core
