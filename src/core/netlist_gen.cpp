#include "core/netlist_gen.hpp"

#include <bit>
#include <stdexcept>
#include <vector>

#include "core/cells.hpp"
#include "rtl/components.hpp"

namespace mont::core {

using rtl::Bus;
using rtl::Netlist;
using rtl::NetId;

SystolicArrayNetlist BuildSystolicArrayComb(std::size_t l) {
  if (l < 2) throw std::invalid_argument("BuildSystolicArrayComb: l >= 2");
  SystolicArrayNetlist out;
  out.l = l;
  out.netlist = std::make_unique<Netlist>();
  Netlist& nl = *out.netlist;

  out.t_in = rtl::InputBus(nl, "t", l + 2);          // t[1..l+2]
  out.x_in = rtl::InputBus(nl, "x", l + 1);          // per cell 0..l
  out.m_in = rtl::InputBus(nl, "m", l);              // per cell 1..l
  out.y_in = rtl::InputBus(nl, "y", l + 1);          // y_0..y_l
  out.n_in = rtl::InputBus(nl, "n", l);              // n_0..n_{l-1}
  out.c0_in = rtl::InputBus(nl, "c0", l);            // c0[0..l-1]
  out.c1_in = rtl::InputBus(nl, "c1", l - 1);        // c1[1..l-1]

  const auto t_reg = [&](std::size_t j) { return out.t_in[j - 1]; };
  const auto m_reg = [&](std::size_t j) { return out.m_in[j - 1]; };
  const auto c1_reg = [&](std::size_t j) { return out.c1_in[j - 1]; };

  out.t_out.assign(l + 2, rtl::kNoNet);
  out.c0_out.assign(l, rtl::kNoNet);
  out.c1_out.assign(l - 1, rtl::kNoNet);

  const RightmostCellOut cell0 =
      BuildRightmostCell(nl, t_reg(1), out.x_in[0], out.y_in[0]);
  out.m_out = cell0.m;
  out.c0_out[0] = cell0.c0;

  const InnerCellOut cell1 =
      BuildFirstBitCell(nl, t_reg(2), out.x_in[1], out.y_in[1], m_reg(1),
                        out.n_in[1], out.c0_in[0]);
  out.t_out[0] = cell1.t;
  out.c0_out[1] = cell1.c0;
  out.c1_out[0] = cell1.c1;

  for (std::size_t j = 2; j <= l - 1; ++j) {
    const InnerCellOut cell =
        BuildRegularCell(nl, t_reg(j + 1), out.x_in[j], out.y_in[j], m_reg(j),
                         out.n_in[j], out.c0_in[j - 1], c1_reg(j - 1));
    out.t_out[j - 1] = cell.t;
    out.c0_out[j] = cell.c0;
    out.c1_out[j - 1] = cell.c1;
  }

  const LeftmostCellOut cell_l = BuildLeftmostCell(
      nl, t_reg(l + 1), t_reg(l + 2), out.x_in[l], out.y_in[l],
      out.c0_in[l - 1], c1_reg(l - 1));
  out.t_out[l - 1] = cell_l.t;
  out.t_out[l] = cell_l.t_top;
  out.t_out[l + 1] = cell_l.t_top2;

  nl.MarkOutput(out.m_out, "m");
  for (std::size_t j = 0; j < out.t_out.size(); ++j) {
    nl.MarkOutput(out.t_out[j], rtl::IndexedName("t_out", j + 1));
  }
  for (std::size_t j = 0; j < out.c0_out.size(); ++j) {
    nl.MarkOutput(out.c0_out[j], rtl::IndexedName("c0_out", j));
  }
  for (std::size_t j = 0; j < out.c1_out.size(); ++j) {
    nl.MarkOutput(out.c1_out[j], rtl::IndexedName("c1_out", j + 1));
  }
  return out;
}

MmmcNetlist BuildMmmcNetlist(std::size_t l, bool dual_field) {
  if (l < 2) throw std::invalid_argument("BuildMmmcNetlist: l >= 2");
  MmmcNetlist out;
  out.l = l;
  out.netlist = std::make_unique<Netlist>();
  Netlist& nl = *out.netlist;

  // ---- primary ports ----
  out.start = nl.AddInput("start");
  out.x_in = rtl::InputBus(nl, "x", l + 1);
  out.y_in = rtl::InputBus(nl, "y", l + 1);
  out.n_in = rtl::InputBus(nl, "n", l);
  // Field select: constant-1 in the single-field build keeps the two
  // variants structurally aligned (the constant folds away in mapping).
  const NetId fsel = dual_field ? nl.AddInput("fsel") : nl.Const1();
  if (dual_field) out.fsel = fsel;

  // ---- controller state (Fig. 4): IDLE=00, MUL1=01, MUL2=10, OUT=11 ----
  const NetId s0 = nl.Dff(nl.Const0());
  const NetId s1 = nl.Dff(nl.Const0());
  out.state_s0 = s0;
  out.state_s1 = s1;
  const NetId ns0 = nl.Not(s0);
  const NetId ns1 = nl.Not(s1);
  const NetId in_idle = nl.And(ns1, ns0);
  const NetId in_mul1 = nl.And(ns1, s0);
  const NetId in_mul2 = nl.And(s1, ns0);
  const NetId in_out = nl.And(s1, s0);
  const NetId load = nl.And(in_idle, out.start);
  const NetId compute = nl.Or(in_mul1, in_mul2);

  // ---- operand registers ----
  const Bus x_reg =
      rtl::ShiftRightRegister(nl, out.x_in, load, in_mul2, nl.Const0());
  const Bus y_reg = rtl::LoadRegister(nl, out.y_in, load);
  const Bus n_reg = rtl::LoadRegister(nl, out.n_in, load);

  // ---- counter (increments each MUL2 cycle) + comparator ----
  const std::uint64_t max_count = (3 * static_cast<std::uint64_t>(l) + 3) / 2 + 2;
  out.counter_width = static_cast<std::size_t>(std::bit_width(max_count));
  const Bus counter = rtl::Counter(nl, out.counter_width, in_mul2, load);
  const NetId count_end = rtl::EqualsConstant(nl, counter, l + 1);
  out.count_end = count_end;

  // ---- array state flip-flops (created first, wired after the cells) ----
  const auto make_ffs = [&](std::size_t n) {
    Bus ffs(n);
    for (auto& ff : ffs) ff = nl.Dff(nl.Const0());
    return ffs;
  };
  Bus t_ff = make_ffs(l + 2);    // t[1..l+2] (index j-1)
  Bus c0_ff = make_ffs(l);       // c0[0..l-1]
  Bus c1_ff = make_ffs(l - 1);   // c1[1..l-1] (index j-1)
  out.t_probe = t_ff;
  out.c0_probe = c0_ff;
  out.c1_probe = c1_ff;
  Bus xp_ff = make_ffs(l);       // x pipe into cells 1..l (index j-1)
  Bus mp_ff = make_ffs(l);       // m pipe into cells 1..l (index j-1)
  Bus tok_ff = make_ffs(l);      // capture token at cells 1..l (index j-1)
  Bus res_ff = make_ffs(l + 1);  // result bits 0..l
  out.result = res_ff;

  // ---- systolic array cells (Fig. 1 / Fig. 2) ----
  // In the dual-field variant every carry is gated by fsel before it is
  // registered, so fsel = 0 turns the adders into the XOR network the
  // polynomial field needs.  The single-field build adds no gates.
  const auto gate = [&](NetId carry) {
    return dual_field ? nl.And(fsel, carry) : carry;
  };

  const RightmostCellOut cell0 =
      BuildRightmostCell(nl, t_ff[0], x_reg[0], y_reg[0]);

  std::vector<NetId> t_out(l + 3, rtl::kNoNet);  // t_out[1..l+2]
  std::vector<NetId> c0_out(l, rtl::kNoNet);
  std::vector<NetId> c1_out(l, rtl::kNoNet);  // c1_out[1..l-1]
  c0_out[0] = gate(cell0.c0);

  const InnerCellOut cell1 = BuildFirstBitCell(
      nl, t_ff[1], xp_ff[0], y_reg[1], mp_ff[0], n_reg[1], c0_ff[0]);
  t_out[1] = cell1.t;
  c0_out[1] = gate(cell1.c0);
  c1_out[1] = gate(cell1.c1);

  for (std::size_t j = 2; j <= l - 1; ++j) {
    const InnerCellOut cell =
        BuildRegularCell(nl, t_ff[j], xp_ff[j - 1], y_reg[j], mp_ff[j - 1],
                         n_reg[j], c0_ff[j - 1], c1_ff[j - 2]);
    t_out[j] = cell.t;
    c0_out[j] = gate(cell.c0);
    c1_out[j] = gate(cell.c1);
  }

  if (!dual_field) {
    const LeftmostCellOut cell_l =
        BuildLeftmostCell(nl, t_ff[l], t_ff[l + 1], xp_ff[l - 1], y_reg[l],
                          c0_ff[l - 1], c1_ff[l - 2]);
    t_out[l] = cell_l.t;
    t_out[l + 1] = cell_l.t_top;
    t_out[l + 2] = cell_l.t_top2;
  } else {
    // Dual-field leftmost: a regular cell whose n input is the implicit
    // top modulus bit (0 for integer N < 2^l; 1 for deg-l f), followed by
    // the top-bit merge.
    const NetId n_top = nl.Not(fsel);
    const InnerCellOut cell_l =
        BuildRegularCell(nl, t_ff[l], xp_ff[l - 1], y_reg[l], mp_ff[l - 1],
                         n_top, c0_ff[l - 1], c1_ff[l - 2]);
    t_out[l] = cell_l.t;
    const rtl::AdderBit top = rtl::HalfAdder(nl, gate(cell_l.c0), t_ff[l + 1]);
    t_out[l + 1] = top.sum;
    t_out[l + 2] = gate(nl.Xor(cell_l.c1, top.carry));
  }

  // ---- capture token: launched by the comparator in MUL1, then shifted ----
  const NetId tok0 = nl.And(count_end, in_mul1);
  const NetId finishing = tok_ff[l - 1];

  // ---- register wiring ----
  // Cell j's output registers are clock-enabled only on its active phase:
  // even cells latch in MUL1 (even compute cycles), odd cells in MUL2.
  // This is what makes the two multiply states of the ASM necessary.
  const auto phase_en = [&](std::size_t cell) {
    return (cell % 2 == 0) ? in_mul1 : in_mul2;
  };
  for (std::size_t j = 1; j <= l; ++j) {
    nl.RewireDff(t_ff[j - 1], t_out[j], phase_en(j), load);
  }
  // t[l+1] and t[l+2] are both produced by cell l.
  nl.RewireDff(t_ff[l], t_out[l + 1], phase_en(l), load);
  nl.RewireDff(t_ff[l + 1], t_out[l + 2], phase_en(l), load);
  for (std::size_t j = 0; j <= l - 1; ++j) {
    nl.RewireDff(c0_ff[j], c0_out[j], phase_en(j), load);
  }
  for (std::size_t j = 1; j <= l - 1; ++j) {
    nl.RewireDff(c1_ff[j - 1], c1_out[j], phase_en(j), load);
  }
  nl.RewireDff(xp_ff[0], x_reg[0], compute, load);
  nl.RewireDff(mp_ff[0], cell0.m, compute, load);
  for (std::size_t j = 2; j <= l; ++j) {
    nl.RewireDff(xp_ff[j - 1], xp_ff[j - 2], compute, load);
    nl.RewireDff(mp_ff[j - 1], mp_ff[j - 2], compute, load);
  }
  nl.RewireDff(tok_ff[0], tok0, compute, load);
  for (std::size_t j = 2; j <= l; ++j) {
    nl.RewireDff(tok_ff[j - 1], tok_ff[j - 2], compute, load);
  }
  // Skewed result capture: bit j-1 latches when the token reaches cell j.
  for (std::size_t j = 1; j <= l - 1; ++j) {
    nl.RewireDff(res_ff[j - 1], t_out[j], nl.And(tok_ff[j - 1], compute), load);
  }
  const NetId cap_l = nl.And(tok_ff[l - 1], compute);
  nl.RewireDff(res_ff[l - 1], t_out[l], cap_l, load);
  nl.RewireDff(res_ff[l], t_out[l + 1], cap_l, load);

  // ---- controller next-state logic ----
  const NetId not_fin = nl.Not(finishing);
  const NetId go_out = nl.And(finishing, compute);
  const NetId next_s0 =
      nl.Or(nl.Or(load, nl.And(in_mul2, not_fin)), go_out);
  const NetId next_s1 = nl.Or(nl.And(in_mul1, not_fin), go_out);
  nl.RewireDff(s0, next_s0);
  nl.RewireDff(s1, next_s1);

  out.done = in_out;
  nl.MarkOutput(out.done, "done");
  for (std::size_t b = 0; b < res_ff.size(); ++b) {
    nl.MarkOutput(res_ff[b], rtl::IndexedName("result", b));
  }
  nl.MarkOutput(out.count_end, "count_end");
  return out;
}

}  // namespace mont::core
