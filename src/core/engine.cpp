#include "core/engine.hpp"

#include <algorithm>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "bignum/gf2.hpp"
#include "bignum/montgomery.hpp"
#include "core/high_radix.hpp"
#include "core/interleaved.hpp"
#include "core/mmmc.hpp"
#include "core/netlist_gen.hpp"
#include "core/schedule.hpp"
#include "core/sim_drivers.hpp"

namespace mont::core {

using bignum::BigUInt;

const char* EngineFieldName(EngineField field) {
  return field == EngineField::kGfP ? "GF(p)" : "GF(2^m)";
}

EngineStats& EngineStats::operator+=(const EngineStats& other) {
  squarings += other.squarings;
  multiplications += other.multiplications;
  mmm_invocations += other.mmm_invocations;
  paired_issues += other.paired_issues;
  single_issues += other.single_issues;
  engine_cycles += other.engine_cycles;
  paper_model_cycles += other.paper_model_cycles;
  cancelled += other.cancelled;
  return *this;
}

// ---------------------------------------------------------------------------
// MmmEngine base behaviour
// ---------------------------------------------------------------------------

namespace {

void CheckGfpModulus(const BigUInt& modulus, const char* who) {
  if (!modulus.IsOdd() || modulus <= BigUInt{1}) {
    throw std::invalid_argument(std::string(who) +
                                ": GF(p) modulus must be odd > 1");
  }
}

void CheckGf2Modulus(const BigUInt& f, const char* who) {
  if (f.BitLength() < 3 || !f.Bit(0)) {
    throw std::invalid_argument(std::string(who) +
                                ": GF(2^m) needs deg(f) >= 2 and f(0) = 1");
  }
}

/// R^2 reduced by the modulus, for R = 2^r_exponent (GF(p)).
BigUInt GfpMontFactor(const BigUInt& modulus, std::size_t r_exponent) {
  const BigUInt r = BigUInt::PowerOfTwo(r_exponent);
  return (r * r) % modulus;
}

/// x^(2(l+2)) mod f — the GF(2^m) domain-entry factor for R = x^(l+2).
BigUInt Gf2MontFactor(const BigUInt& f, std::size_t l) {
  return bignum::gf2::Mod(BigUInt::PowerOfTwo(2 * (l + 2)), f);
}

void CheckGf2Operands(const BigUInt& x, const BigUInt& y, std::size_t l,
                      const char* who) {
  if (x.BitLength() > l + 1 || y.BitLength() > l + 1) {
    throw std::invalid_argument(std::string(who) +
                                ": GF(2^m) operands must have degree <= m");
  }
}

}  // namespace

void ValidateEngineModulus(const BigUInt& modulus, EngineField field,
                           const char* who) {
  if (field == EngineField::kGf2) {
    CheckGf2Modulus(modulus, who);
  } else {
    CheckGfpModulus(modulus, who);
  }
}

std::vector<BigUInt> MmmEngine::MultiplyBatch(std::span<const BigUInt> xs,
                                              std::span<const BigUInt> ys,
                                              std::uint64_t* cycles) const {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("MmmEngine::MultiplyBatch: size mismatch");
  }
  std::vector<BigUInt> out;
  out.reserve(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    out.push_back(Multiply(xs[i], ys[i], cycles));
  }
  return out;
}

BigUInt MmmEngine::ToMont(const BigUInt& x, std::uint64_t* cycles) const {
  return Multiply(Reduce(x), MontFactor(), cycles);
}

BigUInt MmmEngine::FromMont(const BigUInt& x, std::uint64_t* cycles) const {
  return Reduce(Multiply(x, BigUInt{1}, cycles));
}

BigUInt MmmEngine::Reduce(BigUInt v) const {
  if (field_ == EngineField::kGf2) {
    if (v.BitLength() > l_) v = bignum::gf2::Mod(v, modulus_);
    return v;
  }
  if (v >= modulus_) v = v % modulus_;
  return v;
}

BigUInt MmmEngine::ModExp(const BigUInt& base, const BigUInt& exponent,
                          EngineStats* stats) const {
  if (exponent.IsZero()) return Reduce(BigUInt{1});
  const BigUInt m = Reduce(base);

  std::uint64_t cycles = 0;
  EngineStats local;
  // Pre-computation: M*R = Mont(M, R^2) — one MMM like any other (§4.5).
  const BigUInt m_mont = Multiply(m, MontFactor(), &cycles);
  ++local.mmm_invocations;

  // Algorithm 3: A <- M~; scan remaining exponent bits left to right.
  BigUInt a = m_mont;
  for (std::size_t i = exponent.BitLength() - 1; i-- > 0;) {
    a = Multiply(a, a, &cycles);
    ++local.squarings;
    ++local.mmm_invocations;
    if (exponent.Bit(i)) {
      a = Multiply(a, m_mont, &cycles);
      ++local.multiplications;
      ++local.mmm_invocations;
    }
  }

  // Post-processing: Mont(A, 1) strips R; reduce to the canonical range.
  BigUInt out = Reduce(Multiply(a, BigUInt{1}, &cycles));
  ++local.mmm_invocations;

  if (stats != nullptr) {
    local.engine_cycles = cycles;
    local.paper_model_cycles =
        ExponentiationCycles(l_, local.squarings, local.multiplications);
    *stats += local;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Built-in backends
// ---------------------------------------------------------------------------

namespace {

/// "bit-serial" (GF(p) form) — the software Algorithm-2 reference;
/// charges the validated 3l+4 per multiplication.
class GfpBitSerialEngine final : public MmmEngine {
 public:
  explicit GfpBitSerialEngine(BigUInt modulus)
      : MmmEngine(modulus, EngineField::kGfP, modulus.BitLength(),
                  modulus << 1),
        ctx_(std::move(modulus)) {}

  std::string_view Name() const override { return "bit-serial"; }
  EngineCaps Caps() const override {
    return {.gf2 = true, .pairable_streams = true};
  }

  BigUInt Multiply(const BigUInt& x, const BigUInt& y,
                   std::uint64_t* cycles) const override {
    if (cycles != nullptr) *cycles += MultiplyCyclesModel();
    return ctx_.MultiplyAlg2(x, y);
  }
  const BigUInt& MontFactor() const override { return ctx_.RSquaredModN(); }
  std::uint64_t MultiplyCyclesModel() const override {
    return MultiplyCycles(l());
  }

 private:
  bignum::BitSerialMontgomery ctx_;
};

class Gf2BitSerialEngine final : public MmmEngine {
 public:
  explicit Gf2BitSerialEngine(BigUInt f)
      : MmmEngine(f, EngineField::kGf2, bignum::gf2::Degree(f),
                  BigUInt::PowerOfTwo(bignum::gf2::Degree(f) + 1)),
        factor_(Gf2MontFactor(f, bignum::gf2::Degree(f))) {}

  std::string_view Name() const override { return "bit-serial"; }
  EngineCaps Caps() const override {
    return {.gf2 = true, .pairable_streams = true};
  }

  BigUInt Multiply(const BigUInt& x, const BigUInt& y,
                   std::uint64_t* cycles) const override {
    CheckGf2Operands(x, y, l(), "bit-serial");
    if (cycles != nullptr) *cycles += MultiplyCyclesModel();
    return bignum::gf2::MontMul(x, y, Modulus());
  }
  const BigUInt& MontFactor() const override { return factor_; }
  std::uint64_t MultiplyCyclesModel() const override {
    return MultiplyCycles(l());
  }

 private:
  BigUInt factor_;
};

/// "word-mont" — word-level (radix 2^32) CIOS software baseline; the only
/// backend whose chainable window is [0, N).  Cycle model counts word-MAC
/// operations of the coarsely-integrated scan, not array clocks.
class WordMontEngine final : public MmmEngine {
 public:
  explicit WordMontEngine(BigUInt modulus)
      : MmmEngine(modulus, EngineField::kGfP, modulus.BitLength(), modulus),
        ctx_(std::move(modulus)) {}

  std::string_view Name() const override { return "word-mont"; }
  EngineCaps Caps() const override { return {}; }

  BigUInt Multiply(const BigUInt& x, const BigUInt& y,
                   std::uint64_t* cycles) const override {
    if (cycles != nullptr) *cycles += MultiplyCyclesModel();
    return ctx_.Multiply(x, y);
  }
  const BigUInt& MontFactor() const override { return ctx_.RSquaredModN(); }
  std::uint64_t MultiplyCyclesModel() const override {
    const std::uint64_t s = ctx_.LimbCount();
    return 2 * s * s + s;
  }

 private:
  bignum::WordMontgomery ctx_;
};

/// "mmmc" — the paper's cycle-accurate behavioural array model (dual
/// field); every multiplication is simulated clock edge by clock edge and
/// the measured 3l+4 is what Multiply reports.
class MmmcEngine final : public MmmEngine {
 public:
  MmmcEngine(BigUInt modulus, EngineField field)
      : MmmEngine(modulus, field,
                  field == EngineField::kGf2 ? bignum::gf2::Degree(modulus)
                                             : modulus.BitLength(),
                  field == EngineField::kGf2
                      ? BigUInt::PowerOfTwo(bignum::gf2::Degree(modulus) + 1)
                      : modulus << 1),
        factor_(field == EngineField::kGf2
                    ? Gf2MontFactor(modulus, bignum::gf2::Degree(modulus))
                    : GfpMontFactor(modulus, modulus.BitLength() + 2)),
        circuit_(std::move(modulus), field == EngineField::kGf2
                                         ? FieldMode::kGf2
                                         : FieldMode::kGfP) {}

  std::string_view Name() const override { return "mmmc"; }
  EngineCaps Caps() const override {
    return {.gf2 = true, .pairable_streams = true, .cycle_accurate = true};
  }

  BigUInt Multiply(const BigUInt& x, const BigUInt& y,
                   std::uint64_t* cycles) const override {
    std::lock_guard<std::mutex> lk(mu_);  // one array, one product in flight
    std::uint64_t measured = 0;
    BigUInt out = circuit_.Multiply(x, y, &measured);
    if (cycles != nullptr) *cycles += measured;
    return out;
  }
  const BigUInt& MontFactor() const override { return factor_; }
  std::uint64_t MultiplyCyclesModel() const override {
    return MultiplyCycles(l());
  }

 private:
  BigUInt factor_;
  mutable std::mutex mu_;
  mutable Mmmc circuit_;
};

/// "interleaved" — the dual-channel (C-slow) array.  A solo Multiply runs
/// on channel A (done after 3l+4); the dual-modulus pairing capability is
/// what the service's scheduler exploits.
class InterleavedEngine final : public MmmEngine {
 public:
  explicit InterleavedEngine(BigUInt modulus)
      : MmmEngine(modulus, EngineField::kGfP, modulus.BitLength(),
                  modulus << 1),
        factor_(GfpMontFactor(modulus, modulus.BitLength() + 2)),
        circuit_(std::move(modulus)) {}

  std::string_view Name() const override { return "interleaved"; }
  EngineCaps Caps() const override {
    return {.dual_modulus = true, .pairable_streams = true};
  }

  BigUInt Multiply(const BigUInt& x, const BigUInt& y,
                   std::uint64_t* cycles) const override {
    std::lock_guard<std::mutex> lk(mu_);
    if (cycles != nullptr) *cycles += MultiplyCyclesModel();
    return circuit_.MultiplyPair(x, y, BigUInt{0}, BigUInt{0}).a;
  }
  const BigUInt& MontFactor() const override { return factor_; }
  std::uint64_t MultiplyCyclesModel() const override {
    return MultiplyCycles(l());  // channel A's latency; pairs cost 3l+5
  }

 private:
  BigUInt factor_;
  mutable std::mutex mu_;
  mutable InterleavedMmmc circuit_;
};

/// "high-radix" — the radix-2^alpha word-serial datapath (§2's
/// Batina–Muurling direction), alpha from EngineOptions.
class HighRadixEngine final : public MmmEngine {
 public:
  HighRadixEngine(BigUInt modulus, std::size_t alpha)
      : MmmEngine(modulus, EngineField::kGfP, modulus.BitLength(),
                  modulus << 1),
        mult_(std::move(modulus), alpha) {}

  std::string_view Name() const override { return "high-radix"; }
  EngineCaps Caps() const override { return {}; }

  BigUInt Multiply(const BigUInt& x, const BigUInt& y,
                   std::uint64_t* cycles) const override {
    if (cycles != nullptr) *cycles += MultiplyCyclesModel();
    return mult_.Multiply(x, y);
  }
  const BigUInt& MontFactor() const override { return mult_.RSquaredModN(); }
  std::uint64_t MultiplyCyclesModel() const override {
    return mult_.MultiplyCycles();
  }

 private:
  HighRadixMultiplier mult_;
};

/// "blum-paar" — the comparison design's functional model: radix-2
/// Montgomery with the non-optimal R = 2^(l+3) (one extra iteration, two
/// extra cycles).  baseline::BlumPaarRadix2 delegates its arithmetic here;
/// the PE netlist/timing side stays in src/baseline.
class BlumPaarEngine final : public MmmEngine {
 public:
  explicit BlumPaarEngine(BigUInt modulus)
      : MmmEngine(modulus, EngineField::kGfP, modulus.BitLength(),
                  modulus << 1),
        factor_(GfpMontFactor(modulus, modulus.BitLength() + 3)) {}

  std::string_view Name() const override { return "blum-paar"; }
  EngineCaps Caps() const override { return {}; }

  BigUInt Multiply(const BigUInt& x, const BigUInt& y,
                   std::uint64_t* cycles) const override {
    if (x >= OperandBound() || y >= OperandBound()) {
      throw std::invalid_argument("blum-paar: operands must be < 2N");
    }
    if (cycles != nullptr) *cycles += MultiplyCyclesModel();
    BigUInt t;
    for (std::size_t i = 0; i < l() + 3; ++i) {
      const bool xi = x.Bit(i);
      const bool mi = t.Bit(0) ^ (xi && y.Bit(0));
      if (xi) t += y;
      if (mi) t += Modulus();
      t >>= 1;
    }
    return t;
  }
  const BigUInt& MontFactor() const override { return factor_; }
  std::uint64_t MultiplyCyclesModel() const override { return 3 * l() + 6; }

 private:
  BigUInt factor_;
};

/// "netlist-sim" — the generated gate-level MMMC driven through the
/// event simulator: the lowest-fidelity rung of the validation chain as a
/// drop-in backend.  MultiplyBatch packs up to 64 operand pairs per
/// simulation pass on the 64-lane batch engine.
class NetlistSimEngine final : public MmmEngine {
 public:
  NetlistSimEngine(BigUInt modulus, EngineField field)
      : MmmEngine(modulus, field,
                  field == EngineField::kGf2 ? bignum::gf2::Degree(modulus)
                                             : modulus.BitLength(),
                  field == EngineField::kGf2
                      ? BigUInt::PowerOfTwo(bignum::gf2::Degree(modulus) + 1)
                      : modulus << 1),
        factor_(field == EngineField::kGf2
                    ? Gf2MontFactor(modulus, bignum::gf2::Degree(modulus))
                    : GfpMontFactor(modulus, modulus.BitLength() + 2)),
        gen_(BuildMmmcNetlist(l(), /*dual_field=*/field == EngineField::kGf2)),
        driver_(gen_) {
    driver_.LoadModulus(Modulus());
    if (Field() == EngineField::kGf2) driver_.SelectField(false);
  }

  std::string_view Name() const override { return "netlist-sim"; }
  EngineCaps Caps() const override {
    return {.gf2 = true,
            .pairable_streams = true,
            .batch_lanes = rtl::BatchSimulator::kLanes,
            .cycle_accurate = true};
  }

  BigUInt Multiply(const BigUInt& x, const BigUInt& y,
                   std::uint64_t* cycles) const override {
    CheckOperands(x, y);
    std::lock_guard<std::mutex> lk(mu_);
    BigUInt out;
    std::uint64_t measured = 0;
    if (!driver_.TryMultiply(x, y, &out, &measured)) {
      throw std::runtime_error("netlist-sim: DONE never arrived (hung FSM)");
    }
    if (cycles != nullptr) *cycles += measured;
    return out;
  }

  std::vector<BigUInt> MultiplyBatch(std::span<const BigUInt> xs,
                                     std::span<const BigUInt> ys,
                                     std::uint64_t* cycles) const override {
    if (xs.size() != ys.size()) {
      throw std::invalid_argument("netlist-sim: MultiplyBatch size mismatch");
    }
    for (std::size_t i = 0; i < xs.size(); ++i) CheckOperands(xs[i], ys[i]);
    std::lock_guard<std::mutex> lk(mu_);
    if (batch_driver_ == nullptr) {
      batch_driver_ = std::make_unique<MmmcBatchSimDriver>(gen_);
      batch_driver_->LoadModulus(Modulus());
      if (Field() == EngineField::kGf2) batch_driver_->SelectField(false);
    }
    std::vector<BigUInt> out;
    out.reserve(xs.size());
    for (std::size_t at = 0; at < xs.size(); at += rtl::BatchSimulator::kLanes) {
      const std::size_t count =
          std::min(xs.size() - at, rtl::BatchSimulator::kLanes);
      const std::vector<BigUInt> lane_x(xs.begin() + at,
                                        xs.begin() + at + count);
      const std::vector<BigUInt> lane_y(ys.begin() + at,
                                        ys.begin() + at + count);
      std::vector<BigUInt> lane_out;
      std::uint64_t measured = 0;
      if (!batch_driver_->TryMultiply(lane_x, lane_y, &lane_out, &measured)) {
        throw std::runtime_error("netlist-sim: batch DONE never arrived");
      }
      if (cycles != nullptr) *cycles += measured;  // one pass, 64 lanes
      for (BigUInt& v : lane_out) out.push_back(std::move(v));
    }
    return out;
  }

  const BigUInt& MontFactor() const override { return factor_; }
  std::uint64_t MultiplyCyclesModel() const override {
    return MultiplyCycles(l());
  }

 private:
  void CheckOperands(const BigUInt& x, const BigUInt& y) const {
    if (x >= OperandBound() || y >= OperandBound()) {
      throw std::invalid_argument(
          "netlist-sim: operands outside the chainable window");
    }
  }

  BigUInt factor_;
  MmmcNetlist gen_;
  mutable std::mutex mu_;
  mutable MmmcSimDriver driver_;
  mutable std::unique_ptr<MmmcBatchSimDriver> batch_driver_;
};

void RequireGfp(const EngineOptions& options, const char* name) {
  if (options.field != EngineField::kGfP) {
    throw std::invalid_argument(std::string("MakeEngine: backend '") + name +
                                "' does not support GF(2^m)");
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

EngineRegistry::EngineRegistry() {
  const auto check_modulus = [](const BigUInt& modulus,
                                const EngineOptions& options,
                                const char* who) {
    ValidateEngineModulus(modulus, options.field, who);
  };

  Register("bit-serial",
           {"software Algorithm 2 (GF(p)) / carry-less twin (GF(2^m)), "
            "cycles charged at the validated 3l+4",
            {.gf2 = true, .pairable_streams = true},
            [check_modulus](BigUInt modulus, const EngineOptions& options)
                -> std::unique_ptr<MmmEngine> {
              check_modulus(modulus, options, "bit-serial");
              if (options.field == EngineField::kGf2) {
                return std::make_unique<Gf2BitSerialEngine>(std::move(modulus));
              }
              return std::make_unique<GfpBitSerialEngine>(std::move(modulus));
            }});
  Register("word-mont",
           {"word-level (radix 2^32) CIOS software baseline, window [0, N)",
            {},
            [](BigUInt modulus, const EngineOptions& options) {
              RequireGfp(options, "word-mont");
              CheckGfpModulus(modulus, "word-mont");
              return std::make_unique<WordMontEngine>(std::move(modulus));
            }});
  Register("mmmc",
           {"cycle-accurate behavioural systolic array (paper Fig. 3, dual "
            "field), cycles measured per clock edge",
            {.gf2 = true, .pairable_streams = true, .cycle_accurate = true},
            [check_modulus](BigUInt modulus, const EngineOptions& options) {
              check_modulus(modulus, options, "mmmc");
              return std::make_unique<MmmcEngine>(std::move(modulus),
                                                  options.field);
            }});
  Register("interleaved",
           {"dual-channel (C-slow) array; bonds two equal-length jobs at "
            "3l+5 per product pair",
            {.dual_modulus = true, .pairable_streams = true},
            [](BigUInt modulus, const EngineOptions& options) {
              RequireGfp(options, "interleaved");
              CheckGfpModulus(modulus, "interleaved");
              return std::make_unique<InterleavedEngine>(std::move(modulus));
            }});
  Register("high-radix",
           {"radix-2^alpha word-serial pipeline (alpha from EngineOptions)",
            {},
            [](BigUInt modulus, const EngineOptions& options) {
              RequireGfp(options, "high-radix");
              CheckGfpModulus(modulus, "high-radix");
              return std::make_unique<HighRadixEngine>(std::move(modulus),
                                                       options.alpha);
            }});
  Register("blum-paar",
           {"Blum-Paar radix-2 comparison design, R = 2^(l+3) (one extra "
            "iteration)",
            {},
            [](BigUInt modulus, const EngineOptions& options) {
              RequireGfp(options, "blum-paar");
              CheckGfpModulus(modulus, "blum-paar");
              return std::make_unique<BlumPaarEngine>(std::move(modulus));
            }});
  Register("netlist-sim",
           {"generated gate-level MMMC under the event simulator (dual "
            "field, 64 batch lanes)",
            {.gf2 = true,
             .pairable_streams = true,
             .batch_lanes = rtl::BatchSimulator::kLanes,
             .cycle_accurate = true},
            [check_modulus](BigUInt modulus, const EngineOptions& options) {
              check_modulus(modulus, options, "netlist-sim");
              return std::make_unique<NetlistSimEngine>(std::move(modulus),
                                                        options.field);
            }});
}

EngineRegistry& EngineRegistry::Global() {
  static EngineRegistry registry;
  return registry;
}

void EngineRegistry::Register(std::string name, Entry entry) {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [existing, unused] : entries_) {
    if (existing == name) {
      throw std::invalid_argument("EngineRegistry: duplicate backend '" +
                                  name + "'");
    }
  }
  entries_.emplace_back(std::move(name), std::move(entry));
}

const EngineRegistry::Entry* EngineRegistry::Find(std::string_view name) const {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [existing, entry] : entries_) {
    if (existing == name) return &entry;
  }
  return nullptr;
}

std::vector<std::string> EngineRegistry::Names() const {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lk(mu_);
    names.reserve(entries_.size());
    for (const auto& [name, unused] : entries_) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::unique_ptr<MmmEngine> EngineRegistry::Make(
    std::string_view name, BigUInt modulus, const EngineOptions& options) const {
  const Entry* entry = Find(name);
  if (entry == nullptr) {
    std::ostringstream message;
    message << "MakeEngine: unknown backend '" << name << "' (registered:";
    for (const std::string& known : Names()) message << ' ' << known;
    message << ')';
    throw std::invalid_argument(message.str());
  }
  if (options.field == EngineField::kGf2 && !entry->caps.gf2) {
    throw std::invalid_argument(std::string("MakeEngine: backend '") +
                                std::string(name) +
                                "' does not support GF(2^m)");
  }
  return entry->factory(std::move(modulus), options);
}

std::unique_ptr<MmmEngine> MakeEngine(std::string_view name, BigUInt modulus,
                                      const EngineOptions& options) {
  return EngineRegistry::Global().Make(name, std::move(modulus), options);
}

}  // namespace mont::core
