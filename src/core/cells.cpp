#include "core/cells.hpp"

#include "rtl/components.hpp"

namespace mont::core {

using rtl::AdderBit;
using rtl::FullAdder;
using rtl::HalfAdder;
using rtl::Netlist;
using rtl::NetId;

RightmostCellOut BuildRightmostCell(Netlist& nl, NetId t1_in, NetId x_in,
                                    NetId y0) {
  const NetId xy = nl.And(x_in, y0);
  return RightmostCellOut{
      .m = nl.Xor(t1_in, xy),
      .c0 = nl.Or(t1_in, xy),
  };
}

InnerCellOut BuildFirstBitCell(Netlist& nl, NetId t2_in, NetId x_in, NetId y1,
                               NetId m_in, NetId n1, NetId c0_in) {
  const NetId xy = nl.And(x_in, y1);
  const NetId mn = nl.And(m_in, n1);
  const AdderBit fa = FullAdder(nl, t2_in, xy, mn);
  const AdderBit ha_t = HalfAdder(nl, fa.sum, c0_in);
  const AdderBit ha_c = HalfAdder(nl, fa.carry, ha_t.carry);
  return InnerCellOut{.t = ha_t.sum, .c0 = ha_c.sum, .c1 = ha_c.carry};
}

InnerCellOut BuildRegularCell(Netlist& nl, NetId t_next_in, NetId x_in,
                              NetId yj, NetId m_in, NetId nj, NetId c0_in,
                              NetId c1_in) {
  const NetId xy = nl.And(x_in, yj);
  const NetId mn = nl.And(m_in, nj);
  const AdderBit fa1 = FullAdder(nl, t_next_in, xy, mn);
  const AdderBit ha = HalfAdder(nl, fa1.sum, c0_in);
  const AdderBit fa2 = FullAdder(nl, fa1.carry, ha.carry, c1_in);
  return InnerCellOut{.t = ha.sum, .c0 = fa2.sum, .c1 = fa2.carry};
}

LeftmostCellOut BuildLeftmostCell(Netlist& nl, NetId t_top_in, NetId t_top2_in,
                                  NetId x_in, NetId yl, NetId c0_in,
                                  NetId c1_in) {
  const NetId xy = nl.And(x_in, yl);
  const AdderBit fa1 = FullAdder(nl, t_top_in, xy, c0_in);
  const AdderBit fa2 = FullAdder(nl, t_top2_in, fa1.carry, c1_in);
  return LeftmostCellOut{.t = fa1.sum, .t_top = fa2.sum, .t_top2 = fa2.carry};
}

}  // namespace mont::core
