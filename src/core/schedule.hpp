// schedule.hpp — the systolic schedule and cycle-count formulas of the paper,
// plus the service-level scheduling structures built on them.
//
// Cell j processes iteration i of Algorithm 2 at clock cycle 2i + j
// (0-based: i = 0..l+1, j = 0..l).  From this single fact every timing
// number in the paper follows; the formulas here are asserted against the
// cycle-accurate simulation in the tests.
//
// The second half of the file holds the two data structures the batched
// exponentiation service (core/exp_service.hpp) schedules with:
//
//   * PairingQueue — a FIFO of job ids tagged with a compatibility key;
//     popping pairs the oldest job with the oldest later job sharing its
//     key, so two independent exponentiations can occupy the two channels
//     of one dual-channel array (two MMMs in 3l+5 cycles instead of 6l+8).
//     A job with no partner still pops alone — nothing starves.
//   * LruCache — the per-modulus engine cache: repeated traffic on one
//     key reuses the precomputed Montgomery context instead of paying
//     the R^2-mod-N precomputation again.
//
// Both are single-threaded building blocks; the service serialises access
// under its queue mutex.  They are kept here, header-only and std-only,
// so the scheduler policy is unit-testable without threads.
#pragma once

#include <array>
#include <cstdint>
#include <cstddef>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

namespace mont::core {

/// Clock cycle (0-based, counted from the first compute cycle after the
/// operand-load edge) at which cell `j` processes iteration `i`.
constexpr std::uint64_t CellComputeCycle(std::uint64_t i, std::uint64_t j) {
  return 2 * i + j;
}

/// Total clock cycles for one Montgomery modular multiplication on the
/// MMMC, from the cycle START is sampled to the cycle DONE is asserted.
/// Paper §4.4: 3l + 4.
constexpr std::uint64_t MultiplyCycles(std::size_t l) {
  return 3 * static_cast<std::uint64_t>(l) + 4;
}

/// Pre-computation cycles of the modular exponentiator (paper §4.5):
/// 2(2(l+2)+1) + l = 5l + 10.
constexpr std::uint64_t PrecomputeCycles(std::size_t l) {
  return 5 * static_cast<std::uint64_t>(l) + 10;
}

/// Post-processing cycles (final Montgomery multiplication by 1): l + 2.
constexpr std::uint64_t PostprocessCycles(std::size_t l) {
  return static_cast<std::uint64_t>(l) + 2;
}

/// Exponentiation cycle count in the paper's accounting (§4.5): the
/// square-and-multiply chain performs `squarings + multiplications`
/// MMM operations of 3l+4 cycles each, plus pre- and post-processing.
constexpr std::uint64_t ExponentiationCycles(std::size_t l,
                                             std::uint64_t squarings,
                                             std::uint64_t multiplications) {
  return (squarings + multiplications) * MultiplyCycles(l) +
         PrecomputeCycles(l) + PostprocessCycles(l);
}

/// Paper Eq. (10) lower bound (exponent with exactly one set bit):
/// 3l^2 + 10l + 12.
constexpr std::uint64_t ExponentiationLowerBound(std::size_t l) {
  const auto ll = static_cast<std::uint64_t>(l);
  return 3 * ll * ll + 10 * ll + 12;
}

/// Paper Eq. (10) upper bound (all exponent bits set): 6l^2 + 14l + 12.
constexpr std::uint64_t ExponentiationUpperBound(std::size_t l) {
  const auto ll = static_cast<std::uint64_t>(l);
  return 6 * ll * ll + 14 * ll + 12;
}

/// The paper's "average" exponentiation model (balanced Hamming weight:
/// l squarings + l/2 multiplications).
constexpr std::uint64_t ExponentiationAverageCycles(std::size_t l) {
  const auto ll = static_cast<std::uint64_t>(l);
  return ExponentiationCycles(l, ll, ll / 2);
}

/// Cycles for one dual-channel pair issue (two MMMs in flight): channel B
/// finishes one cycle after channel A, so 3l + 5 for both products.
constexpr std::uint64_t PairedMultiplyCycles(std::size_t l) {
  return 3 * static_cast<std::uint64_t>(l) + 5;
}

// ---------------------------------------------------------------------------
// Service scheduling structures
// ---------------------------------------------------------------------------

/// FIFO queue of job ids with same-key pairing on pop.
///
/// Keys encode dual-channel compatibility (for the exponentiation service:
/// the operand bit length l, since both channels of one array share the
/// cell count).  Ids pushed with `bonded = true` pair only with their bond
/// partner (the next bonded push with the same key) — used when a caller
/// such as RSA-CRT wants its two half-exponentiations co-scheduled — while
/// regular ids pair opportunistically.
class PairingQueue {
 public:
  /// Up to two job ids popped as one dual-channel issue.
  struct Issue {
    std::array<std::uint64_t, 2> ids{};
    std::size_t count = 0;
    bool bonded = false;
  };

  void Push(std::uint64_t id, std::uint64_t key, bool bonded = false) {
    entries_.push_back(Entry{id, key, bonded});
  }

  /// Pops the oldest entry; with `allow_pairing` it also claims the oldest
  /// later entry with the same key (bonded entries only claim their bond
  /// partner; opportunistic entries skip over bonded ones, which are
  /// reserved for their partners).  FIFO order of first issue is never
  /// violated, and an unpairable entry still issues alone.
  std::optional<Issue> Pop(bool allow_pairing = true) {
    if (entries_.empty()) return std::nullopt;
    Issue issue;
    const Entry front = entries_.front();
    entries_.pop_front();
    issue.ids[0] = front.id;
    issue.count = 1;
    issue.bonded = front.bonded;
    if (!allow_pairing) return issue;
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->key != front.key) continue;
      if (it->bonded != front.bonded) continue;
      issue.ids[1] = it->id;
      issue.count = 2;
      entries_.erase(it);
      break;
    }
    return issue;
  }

  bool Empty() const { return entries_.empty(); }
  std::size_t Size() const { return entries_.size(); }

 private:
  struct Entry {
    std::uint64_t id;
    std::uint64_t key;
    bool bonded;
  };
  std::list<Entry> entries_;
};

/// Least-recently-used cache, the policy behind the service's per-modulus
/// engine cache.  Get() refreshes recency; Put() evicts the coldest entry
/// once `capacity` is exceeded.
template <typename Key, typename Value>
class LruCache {
 public:
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  /// Pointer to the cached value (refreshed to most-recent), or nullptr.
  /// The pointer is valid until the next Put().
  Value* Get(const Key& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->second;
  }

  /// Inserts (or replaces) `key`, evicting the least-recently-used entry
  /// if the cache would exceed capacity.
  void Put(const Key& key, Value value) {
    if (capacity_ == 0) return;
    const auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    if (order_.size() == capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
      ++evictions_;
    }
    order_.emplace_front(key, std::move(value));
    index_[key] = order_.begin();
  }

  bool Contains(const Key& key) const { return index_.count(key) != 0; }
  std::size_t Size() const { return order_.size(); }
  std::size_t Capacity() const { return capacity_; }
  std::uint64_t Hits() const { return hits_; }
  std::uint64_t Misses() const { return misses_; }
  std::uint64_t Evictions() const { return evictions_; }

 private:
  std::size_t capacity_;
  std::list<std::pair<Key, Value>> order_;  // most recent first
  std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator>
      index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace mont::core
