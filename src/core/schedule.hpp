// schedule.hpp — the systolic schedule and cycle-count formulas of the paper,
// plus the service-level scheduling structures built on them.
//
// Cell j processes iteration i of Algorithm 2 at clock cycle 2i + j
// (0-based: i = 0..l+1, j = 0..l).  From this single fact every timing
// number in the paper follows; the formulas here are asserted against the
// cycle-accurate simulation in the tests.
//
// The second half of the file holds the data structures the batched
// exponentiation service (core/exp_service.hpp) schedules with:
//
//   * PairingQueue — the v1 scheduler: a single FIFO of job ids tagged
//     with a compatibility key; popping pairs the oldest job with the
//     oldest later job sharing its key, so two independent
//     exponentiations can occupy the two channels of one dual-channel
//     array (two MMMs in 3l+5 cycles instead of 6l+8).  A job with no
//     partner still pops alone — nothing starves.  Kept as the A/B
//     baseline the v2 scheduler is benchmarked against.
//   * StealScheduler — the v2 scheduler: per-worker deques with
//     cross-worker work stealing, hold-for-pairing with an age-based
//     unpair timeout (a lone job on a hot key briefly waits for a
//     partner instead of issuing solo), and adaptive batch claims under
//     backlog.  Every timing decision takes an explicit tick, so the
//     whole policy replays deterministically under a virtual clock.
//   * LruCache — the per-modulus engine cache: repeated traffic on one
//     key reuses the precomputed Montgomery context instead of paying
//     the R^2-mod-N precomputation again.
//
// All are single-threaded building blocks; the service serialises access
// under its queue mutex.  They are kept here, std-only, so the scheduler
// policy is unit-testable without threads.
#pragma once

#include <array>
#include <cstdint>
#include <cstddef>
#include <deque>
#include <list>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mont::core {

/// Clock cycle (0-based, counted from the first compute cycle after the
/// operand-load edge) at which cell `j` processes iteration `i`.
constexpr std::uint64_t CellComputeCycle(std::uint64_t i, std::uint64_t j) {
  return 2 * i + j;
}

/// Total clock cycles for one Montgomery modular multiplication on the
/// MMMC, from the cycle START is sampled to the cycle DONE is asserted.
/// Paper §4.4: 3l + 4.
constexpr std::uint64_t MultiplyCycles(std::size_t l) {
  return 3 * static_cast<std::uint64_t>(l) + 4;
}

/// Pre-computation cycles of the modular exponentiator (paper §4.5):
/// 2(2(l+2)+1) + l = 5l + 10.
constexpr std::uint64_t PrecomputeCycles(std::size_t l) {
  return 5 * static_cast<std::uint64_t>(l) + 10;
}

/// Post-processing cycles (final Montgomery multiplication by 1): l + 2.
constexpr std::uint64_t PostprocessCycles(std::size_t l) {
  return static_cast<std::uint64_t>(l) + 2;
}

/// Exponentiation cycle count in the paper's accounting (§4.5): the
/// square-and-multiply chain performs `squarings + multiplications`
/// MMM operations of 3l+4 cycles each, plus pre- and post-processing.
constexpr std::uint64_t ExponentiationCycles(std::size_t l,
                                             std::uint64_t squarings,
                                             std::uint64_t multiplications) {
  return (squarings + multiplications) * MultiplyCycles(l) +
         PrecomputeCycles(l) + PostprocessCycles(l);
}

/// Paper Eq. (10) lower bound (exponent with exactly one set bit):
/// 3l^2 + 10l + 12.
constexpr std::uint64_t ExponentiationLowerBound(std::size_t l) {
  const auto ll = static_cast<std::uint64_t>(l);
  return 3 * ll * ll + 10 * ll + 12;
}

/// Paper Eq. (10) upper bound (all exponent bits set): 6l^2 + 14l + 12.
constexpr std::uint64_t ExponentiationUpperBound(std::size_t l) {
  const auto ll = static_cast<std::uint64_t>(l);
  return 6 * ll * ll + 14 * ll + 12;
}

/// The paper's "average" exponentiation model (balanced Hamming weight:
/// l squarings + l/2 multiplications).
constexpr std::uint64_t ExponentiationAverageCycles(std::size_t l) {
  const auto ll = static_cast<std::uint64_t>(l);
  return ExponentiationCycles(l, ll, ll / 2);
}

/// Cycles for one dual-channel pair issue (two MMMs in flight): channel B
/// finishes one cycle after channel A, so 3l + 5 for both products.
constexpr std::uint64_t PairedMultiplyCycles(std::size_t l) {
  return 3 * static_cast<std::uint64_t>(l) + 5;
}

// ---------------------------------------------------------------------------
// Service scheduling structures
// ---------------------------------------------------------------------------

/// FIFO queue of job ids with same-key pairing on pop.
///
/// Keys encode dual-channel compatibility (for the exponentiation service:
/// the operand bit length l, since both channels of one array share the
/// cell count).  Ids pushed with `bonded = true` pair only with their bond
/// partner (the next bonded push with the same key) — used when a caller
/// such as RSA-CRT wants its two half-exponentiations co-scheduled — while
/// regular ids pair opportunistically.
class PairingQueue {
 public:
  /// Up to two job ids popped as one dual-channel issue.
  struct Issue {
    std::array<std::uint64_t, 2> ids{};
    std::size_t count = 0;
    bool bonded = false;
  };

  void Push(std::uint64_t id, std::uint64_t key, bool bonded = false) {
    entries_.push_back(Entry{id, key, bonded});
  }

  /// Pops the oldest entry; with `allow_pairing` it also claims the oldest
  /// later entry with the same key (bonded entries only claim their bond
  /// partner; opportunistic entries skip over bonded ones, which are
  /// reserved for their partners).  FIFO order of first issue is never
  /// violated, and an unpairable entry still issues alone.
  std::optional<Issue> Pop(bool allow_pairing = true) {
    if (entries_.empty()) return std::nullopt;
    Issue issue;
    const Entry front = entries_.front();
    entries_.pop_front();
    issue.ids[0] = front.id;
    issue.count = 1;
    issue.bonded = front.bonded;
    if (!allow_pairing) return issue;
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->key != front.key) continue;
      if (it->bonded != front.bonded) continue;
      issue.ids[1] = it->id;
      issue.count = 2;
      entries_.erase(it);
      break;
    }
    return issue;
  }

  /// Removes a queued id (deadline cancellation before dispatch).  Returns
  /// false when the id is not queued (already popped or never pushed).
  bool Remove(std::uint64_t id) {
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->id != id) continue;
      entries_.erase(it);
      return true;
    }
    return false;
  }

  bool Empty() const { return entries_.empty(); }
  std::size_t Size() const { return entries_.size(); }

 private:
  struct Entry {
    std::uint64_t id;
    std::uint64_t key;
    bool bonded;
  };
  std::list<Entry> entries_;
};

// ---------------------------------------------------------------------------
// Clocks — every scheduler timing decision goes through one of these
// ---------------------------------------------------------------------------

/// Monotonic tick source.  The threaded service reads nanoseconds from
/// SteadyClock; tests and the DeterministicExecutor drive a ManualClock,
/// so every hold/unpair/steal decision replays exactly from a seed.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current tick.  Must never decrease.
  virtual std::uint64_t Now() const = 0;
};

/// Wall time: nanoseconds on std::chrono::steady_clock.
class SteadyClock final : public Clock {
 public:
  std::uint64_t Now() const override;
};

/// Hand-advanced virtual time for deterministic tests.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(std::uint64_t start = 0) : now_(start) {}
  std::uint64_t Now() const override { return now_; }
  void Advance(std::uint64_t ticks) { now_ += ticks; }
  /// Jumps to an absolute tick (must not move backwards).
  void Set(std::uint64_t tick);

 private:
  std::uint64_t now_;
};

// ---------------------------------------------------------------------------
// StealScheduler — the v2 scheduling core
// ---------------------------------------------------------------------------

/// Scheduler v2: per-worker deques + work stealing + adaptive pairing.
///
/// The v1 PairingQueue pairs whatever happens to be queued at pop time,
/// so under sparse arrivals (shallow queue) almost everything issues
/// solo and the dual-channel array runs at half throughput; and one
/// shared queue serialises every worker on one lock.  V2 fixes both:
///
///   * Formed issue groups (pairs, bonded pairs, solos) are dispatched
///     to the least-loaded worker's deque; an idle worker whose own
///     deque is empty *steals* the oldest group from the first
///     non-empty victim deque in ring order, so one hot modulus — or
///     one slow group — can never idle the pool.
///   * A lone pairable job on a *hot* key (same-key inter-arrival EWMA
///     within `unpair_timeout`) is briefly held for a partner instead
///     of issuing solo; the age-based unpair timeout releases it solo
///     no later than `unpair_timeout` ticks after arrival, so
///     low-traffic moduli are paired opportunistically but never
///     starved.  Cold keys — and any job while the pool is otherwise
///     idle — dispatch immediately.
///   * Under backlog a worker claims an adaptive batch of up to
///     `max_batch` groups per acquisition (≈ ready groups / workers),
///     amortising queue-lock traffic without hurting light-load
///     latency.
///
/// The class is externally synchronised (the service holds its queue
/// mutex) and entirely tick-driven: Submit/Acquire take the current
/// tick, so the policy is a pure deterministic function of the call
/// sequence — the property tests replay it against a reference model.
class StealScheduler {
 public:
  struct Config {
    std::size_t workers = 2;
    bool enable_pairing = true;
    /// Idle workers steal from other deques (ring order, oldest first).
    bool work_stealing = true;
    /// Ticks a lone hot-key job may be held waiting for a partner.
    std::uint64_t unpair_timeout = 200'000;
    /// Upper bound of one adaptive batch claim (lower bound is 1).
    std::size_t max_batch = 8;
    /// Metrics registry backing the sched.* counters.  When null the
    /// scheduler owns a private registry; GetStats() reads the same
    /// counters either way.
    obs::Registry* registry = nullptr;
    /// Span tracer for hold/pair/steal/unpair decision events (ticks are
    /// the ones passed into Submit/Acquire, so DES replays trace
    /// identically).  Null disables emission.
    obs::Tracer* tracer = nullptr;
  };

  /// One acquired issue group: up to two job ids co-scheduled on one
  /// dual-channel array, plus how the scheduler arrived at the issue.
  struct Issue {
    std::array<std::uint64_t, 2> ids{};
    std::size_t count = 0;
    bool bonded = false;
    /// Taken from another worker's deque.
    bool stolen = false;
    /// Issued solo after being held for a partner that never came.
    bool unpaired_by_timeout = false;
    /// Submit tick of the group's oldest member.
    std::uint64_t arrival = 0;
  };

  /// Compat snapshot of the sched.* registry counters.  The registry is
  /// the single source of truth; this struct is only materialised by
  /// GetStats() so existing callers keep their field names.
  struct Stats {
    std::uint64_t dispatched_groups = 0;  ///< groups that entered a deque
    std::uint64_t pairs_formed = 0;       ///< opportunistic pairs (all paths)
    std::uint64_t bonded_groups = 0;
    std::uint64_t holds = 0;         ///< jobs held waiting for a partner
    std::uint64_t hold_pairs = 0;    ///< holds that found a partner in time
    std::uint64_t unpair_timeouts = 0;  ///< holds released solo by the timeout
    std::uint64_t steals = 0;
    std::uint64_t batch_acquires = 0;     ///< AcquireBatch calls claiming > 1
    std::uint64_t max_batch_claimed = 0;  ///< largest single batch
    std::uint64_t cancelled = 0;  ///< jobs removed by Cancel before acquire
  };

  explicit StealScheduler(Config config);

  /// Submits one job.  `pairable` marks a job whose backend can share a
  /// dual-channel array; non-pairable jobs always dispatch as solo
  /// groups.  A pairable job pairs with a held partner or an
  /// un-acquired solo group on the same key; a lone hot-key job is held
  /// until `now + unpair_timeout` (cold keys and an otherwise-idle pool
  /// dispatch immediately).
  void Submit(std::uint64_t id, std::uint64_t key, bool pairable,
              std::uint64_t now);

  /// Submits two jobs bonded into one group (RSA-CRT halves).  With
  /// pairing disabled they dispatch as two solo groups instead.
  void SubmitBonded(std::uint64_t id_a, std::uint64_t id_b,
                    std::uint64_t now);

  /// Claims one group for `worker`: the oldest-arrival of {own deque
  /// front, oldest ready held job}; otherwise steals the front (oldest)
  /// group of the first non-empty deque in ring order from worker+1.
  std::optional<Issue> Acquire(std::size_t worker, std::uint64_t now);

  /// Claims an adaptive batch: up to clamp(ready/workers, 1, max_batch)
  /// groups via repeated Acquire.  Appends to `out`, returns the count.
  std::size_t AcquireBatch(std::size_t worker, std::uint64_t now,
                           std::vector<Issue>* out);

  /// Cancels a queued job (deadline expiry): a held job is released from
  /// the hold buffer; a job parked in a deque group is tombstoned in
  /// place — deque slots are never erased, because open_solos_ holds
  /// pointers into the deques — and skipped when the group is popped.
  /// Returns false when the id is not queued (already acquired, finished,
  /// or unknown); jobs already in flight cannot be cancelled here.
  bool Cancel(std::uint64_t id);

  /// A group finished executing (enables the pool-busy hold predicate).
  void OnGroupDone();

  /// Earliest tick at which a currently-held job becomes claimable, if
  /// any job is held.  The threaded service bounds its waits with this.
  std::optional<std::uint64_t> NextHoldDeadline() const;

  /// True when nothing is queued (deques and hold buffer empty).
  bool Idle() const;
  /// Jobs queued but not yet acquired.
  std::size_t PendingJobs() const { return queued_jobs_; }
  /// Groups currently executing (Acquire'd, not yet OnGroupDone'd).
  std::size_t InFlightGroups() const { return in_flight_groups_; }
  std::size_t QueueDepth(std::size_t worker) const;
  std::size_t HeldJobs() const { return waiting_.size(); }
  Stats GetStats() const;
  const Config& GetConfig() const { return config_; }

 private:
  /// A formed issue group parked in a worker deque.
  struct Group {
    std::array<std::uint64_t, 2> ids{};
    std::size_t count = 0;
    bool bonded = false;
    std::uint64_t key = 0;
    std::uint64_t arrival = 0;
    /// Still upgradeable: a later same-key submit may join this group
    /// while it sits un-acquired in a deque.
    bool open_solo = false;
    /// Per-slot tombstones set by Cancel; tombstoned slots are dropped
    /// when the group is popped (a fully-tombstoned group pops empty).
    std::array<bool, 2> cancelled{};
  };
  /// A lone hot-key job held back for a partner.
  struct Held {
    std::uint64_t id = 0;
    std::uint64_t key = 0;
    std::uint64_t arrival = 0;
    std::uint64_t ready_at = 0;  ///< arrival + unpair_timeout
  };
  struct KeyTraffic {
    std::uint64_t last_arrival = 0;
    std::uint64_t ewma_gap = 0;
    bool has_arrival = false;
    bool has_gap = false;
  };

  void Dispatch(Group group);
  /// Pops the front group of `worker`'s deque, dropping tombstoned slots.
  /// Returns nullopt — and does not count an in-flight group — when every
  /// slot was cancelled (the shell is simply discarded).
  std::optional<Issue> PopGroup(std::size_t worker, bool stolen);
  /// True when holding a job could overlap useful work elsewhere.
  bool PoolBusy() const {
    return queued_jobs_ > 0 || in_flight_groups_ > 0;
  }
  /// Records a same-key arrival and returns true when the key is "hot"
  /// (expected partner gap within the unpair timeout).
  bool RecordArrivalAndClassify(std::uint64_t key, std::uint64_t now);

  Config config_;
  std::vector<std::deque<Group>> deques_;
  std::list<Held> waiting_;  // arrival order; every entry has a deadline
  /// key -> un-acquired open solo group (upgrade target), if any.
  std::unordered_map<std::uint64_t, Group*> open_solos_;
  std::unordered_map<std::uint64_t, KeyTraffic> traffic_;
  std::size_t rr_cursor_ = 0;  // round-robin tie-break for dispatch
  std::size_t queued_jobs_ = 0;
  std::size_t in_flight_groups_ = 0;
  /// Backs the sched.* handles when Config::registry is null.
  std::unique_ptr<obs::Registry> owned_registry_;
  struct {
    obs::Counter dispatched_groups;
    obs::Counter pairs_formed;
    obs::Counter bonded_groups;
    obs::Counter holds;
    obs::Counter hold_pairs;
    obs::Counter unpair_timeouts;
    obs::Counter steals;
    obs::Counter batch_acquires;
    obs::Counter cancelled;
    obs::Gauge max_batch_claimed;
  } metrics_;
};

/// Least-recently-used cache, the policy behind the service's per-modulus
/// engine cache.  Get() refreshes recency; Put() evicts the coldest entry
/// once `capacity` is exceeded.
template <typename Key, typename Value>
class LruCache {
 public:
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  /// Pointer to the cached value (refreshed to most-recent), or nullptr.
  /// The pointer is valid until the next Put().
  Value* Get(const Key& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->second;
  }

  /// Inserts (or replaces) `key`, evicting the least-recently-used entry
  /// if the cache would exceed capacity.
  void Put(const Key& key, Value value) {
    if (capacity_ == 0) return;
    const auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    if (order_.size() == capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
      ++evictions_;
    }
    order_.emplace_front(key, std::move(value));
    index_[key] = order_.begin();
  }

  bool Contains(const Key& key) const { return index_.count(key) != 0; }
  std::size_t Size() const { return order_.size(); }
  std::size_t Capacity() const { return capacity_; }
  std::uint64_t Hits() const { return hits_; }
  std::uint64_t Misses() const { return misses_; }
  std::uint64_t Evictions() const { return evictions_; }

 private:
  std::size_t capacity_;
  std::list<std::pair<Key, Value>> order_;  // most recent first
  std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator>
      index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace mont::core
