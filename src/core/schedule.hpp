// schedule.hpp — the systolic schedule and cycle-count formulas of the paper.
//
// Cell j processes iteration i of Algorithm 2 at clock cycle 2i + j
// (0-based: i = 0..l+1, j = 0..l).  From this single fact every timing
// number in the paper follows; the formulas here are asserted against the
// cycle-accurate simulation in the tests.
#pragma once

#include <cstdint>
#include <cstddef>

namespace mont::core {

/// Clock cycle (0-based, counted from the first compute cycle after the
/// operand-load edge) at which cell `j` processes iteration `i`.
constexpr std::uint64_t CellComputeCycle(std::uint64_t i, std::uint64_t j) {
  return 2 * i + j;
}

/// Total clock cycles for one Montgomery modular multiplication on the
/// MMMC, from the cycle START is sampled to the cycle DONE is asserted.
/// Paper §4.4: 3l + 4.
constexpr std::uint64_t MultiplyCycles(std::size_t l) {
  return 3 * static_cast<std::uint64_t>(l) + 4;
}

/// Pre-computation cycles of the modular exponentiator (paper §4.5):
/// 2(2(l+2)+1) + l = 5l + 10.
constexpr std::uint64_t PrecomputeCycles(std::size_t l) {
  return 5 * static_cast<std::uint64_t>(l) + 10;
}

/// Post-processing cycles (final Montgomery multiplication by 1): l + 2.
constexpr std::uint64_t PostprocessCycles(std::size_t l) {
  return static_cast<std::uint64_t>(l) + 2;
}

/// Exponentiation cycle count in the paper's accounting (§4.5): the
/// square-and-multiply chain performs `squarings + multiplications`
/// MMM operations of 3l+4 cycles each, plus pre- and post-processing.
constexpr std::uint64_t ExponentiationCycles(std::size_t l,
                                             std::uint64_t squarings,
                                             std::uint64_t multiplications) {
  return (squarings + multiplications) * MultiplyCycles(l) +
         PrecomputeCycles(l) + PostprocessCycles(l);
}

/// Paper Eq. (10) lower bound (exponent with exactly one set bit):
/// 3l^2 + 10l + 12.
constexpr std::uint64_t ExponentiationLowerBound(std::size_t l) {
  const auto ll = static_cast<std::uint64_t>(l);
  return 3 * ll * ll + 10 * ll + 12;
}

/// Paper Eq. (10) upper bound (all exponent bits set): 6l^2 + 14l + 12.
constexpr std::uint64_t ExponentiationUpperBound(std::size_t l) {
  const auto ll = static_cast<std::uint64_t>(l);
  return 6 * ll * ll + 14 * ll + 12;
}

/// The paper's "average" exponentiation model (balanced Hamming weight:
/// l squarings + l/2 multiplications).
constexpr std::uint64_t ExponentiationAverageCycles(std::size_t l) {
  const auto ll = static_cast<std::uint64_t>(l);
  return ExponentiationCycles(l, ll, ll / 2);
}

}  // namespace mont::core
