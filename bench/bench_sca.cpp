// bench_sca — quantifies the paper's §5 side-channel argument: Algorithm 2
// removes the data-dependent reduction that makes Algorithm 1 leak, and
// the exponentiation algorithm choice determines what an SPA observer
// learns.  Prints the timing-leak statistics, the TVLA verdicts, and the
// exponent-recovery results per algorithm.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bignum/random.hpp"
#include "core/exp_algorithms.hpp"
#include "sca/analysis.hpp"

int main() {
  using mont::bignum::BigUInt;

  std::printf("=== §5: side-channel profile of the reproduced designs ===\n\n");

  // --- 1. the timing channel: Algorithm 1 vs Algorithm 2 -------------------
  mont::bignum::RandomBigUInt rng(0x5cabe7c4u);
  const std::size_t l = 64;
  const BigUInt n = rng.OddExactBits(l);
  const mont::sca::TimingOracle oracle(n);
  std::vector<double> alg1_cycles;
  std::size_t subtractions = 0;
  constexpr int kSamples = 2000;
  for (int i = 0; i < kSamples; ++i) {
    const BigUInt x = rng.Below(n);
    const BigUInt y = rng.Below(n);
    alg1_cycles.push_back(static_cast<double>(oracle.Alg1Cycles(x, y)));
    subtractions += oracle.Alg1SubtractionTaken(x, y) ? 1 : 0;
  }
  const auto alg1_stats = mont::sca::Summarize(alg1_cycles);
  std::printf("--- timing channel, l = %zu, %d random multiplications ---\n",
              l, kSamples);
  std::printf("Algorithm 1: mean %.1f cycles, std %.2f, final subtraction "
              "taken %.1f%% of the time\n",
              alg1_stats.mean, std::sqrt(alg1_stats.variance),
              100.0 * static_cast<double>(subtractions) / kSamples);
  std::printf("Algorithm 2: %llu cycles, std 0.00 — constant for every "
              "input (asserted in tests)\n",
              static_cast<unsigned long long>(oracle.Alg2Cycles()));
  std::printf("-> each Algorithm-1 multiplication leaks the predicate "
              "[T >= N] through %zu extra cycles\n\n", l + 1);

  // --- 2. power model: fixed-vs-random on the MMMC datapath ----------------
  {
    const BigUInt small_n = rng.OddExactBits(24);
    mont::core::Mmmc circuit(small_n);
    const BigUInt two_n = small_n << 1;
    const BigUInt fixed_x = rng.Below(two_n), fixed_y = rng.Below(two_n);
    std::vector<double> fixed_sum, random_sum;
    for (int i = 0; i < 100; ++i) {
      auto f = mont::sca::PowerTrace(circuit, fixed_x, fixed_y);
      auto r = mont::sca::PowerTrace(circuit, rng.Below(two_n),
                                     rng.Below(two_n));
      double fs = 0, rs = 0;
      for (const auto v : f) fs += v;
      for (const auto v : r) rs += v;
      fixed_sum.push_back(fs);
      random_sum.push_back(rs);
    }
    const double t = mont::sca::WelchT(fixed_sum, random_sum);
    std::printf("--- power channel (Hamming-distance proxy), l = 24, 100+100 "
                "traces ---\n");
    std::printf("fixed-vs-random Welch t = %.1f (TVLA threshold 4.5): %s\n",
                t, std::abs(t) > 4.5 ? "LEAKS (as every unmasked datapath "
                                       "does)" : "no evidence");
    std::printf("-> constant time does not mean constant power; masking is "
                "out of the paper's scope\n\n");
  }

  // --- 3. SPA on the exponentiation operation sequence ---------------------
  std::printf("--- SPA: exponent bits recovered from the MMM operation "
              "sequence (128-bit key) ---\n");
  const BigUInt key_n = rng.OddExactBits(128);
  const mont::core::MultiExponentiator exp(key_n);
  const BigUInt secret = rng.ExactBits(128);
  std::printf("%-22s %10s %10s %12s %12s\n", "algorithm", "squares", "mults",
              "bits leaked", "cycles(3l+4)");
  for (const auto algorithm :
       {mont::core::ExpAlgorithm::kLeftToRight,
        mont::core::ExpAlgorithm::kRightToLeft,
        mont::core::ExpAlgorithm::kSlidingWindow,
        mont::core::ExpAlgorithm::kMontgomeryLadder}) {
    mont::core::ExpTrace trace;
    exp.ModExp(BigUInt{2}, secret, algorithm, 4, &trace);
    const auto recovered =
        mont::core::RecoverExponentFromTrace(trace.operations);
    // Count positions where the naive S/M parser reproduces the true bit.
    std::size_t correct = 0;
    for (std::size_t i = 0; i < recovered.size(); ++i) {
      const std::size_t bit =
          secret.BitLength() >= 2 + i ? secret.BitLength() - 2 - i : 0;
      if (i < secret.BitLength() - 1 && recovered[i] == secret.Bit(bit)) {
        ++correct;
      }
    }
    const double rate = recovered.empty()
                            ? 0.0
                            : 100.0 * static_cast<double>(correct) /
                                  static_cast<double>(secret.BitLength() - 1);
    std::printf("%-22s %10llu %10llu %11.1f%% %12llu\n",
                mont::core::ExpAlgorithmName(algorithm),
                static_cast<unsigned long long>(trace.squarings),
                static_cast<unsigned long long>(trace.multiplications), rate,
                static_cast<unsigned long long>(trace.ModeledCycles(128)));
  }
  std::printf("\n(100%% for left-to-right binary = full key recovery from "
              "one trace; ~50%% = guessing.\nThe ladder pays ~1.5x the "
              "multiplications for a key-independent sequence.)\n");
  return 0;
}
