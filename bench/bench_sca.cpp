// bench_sca — the side-channel lab's reportable numbers, quantifying the
// paper's §5 argument end to end:
//
//   1. timing channel: Algorithm 1's data-dependent subtraction vs the
//      constant 3l+4 of Algorithm 2 / the MMMC;
//   2. TVLA: fixed-vs-random Welch-t peak on gate-level power traces of
//      RSA private exponentiations, unblinded vs base-blinded;
//   3. CPA/DPA: exponent-recovery rate and measurements-to-disclosure per
//      leakage model and distinguisher, on unprotected and blinded
//      executions;
//   4. capture throughput: traces/s of 1-lane vs 64-lane gate-level
//      capture (the batch engine is what makes the lab affordable).
//
// Emits BENCH_sca.json (bench_json.hpp flat schema) for CI trend
// tracking; --smoke shrinks every population for the ctest -L perf run.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string_view>
#include <vector>

#include "bench_json.hpp"
#include "bignum/random.hpp"
#include "crypto/rsa.hpp"
#include "sca/analysis.hpp"
#include "sca/attack.hpp"
#include "sca/trace.hpp"

namespace {

using mont::bignum::BigUInt;
using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point begin, Clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

std::vector<BigUInt> RandomBases(mont::bignum::RandomBigUInt& rng,
                                 const BigUInt& bound, std::size_t count) {
  std::vector<BigUInt> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(rng.Below(bound));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string_view(argv[1]) == "--smoke";
  mont::bignum::RandomBigUInt rng(0x5cabe7c4u);
  std::vector<mont::bench::JsonRow> rows;

  std::printf("=== side-channel lab: §5 quantified at gate level%s ===\n\n",
              smoke ? " (smoke)" : "");

  // --- 1. timing channel ----------------------------------------------------
  {
    const std::size_t l = 64;
    const int samples = smoke ? 200 : 2000;
    const BigUInt n = rng.OddExactBits(l);
    const mont::sca::TimingOracle oracle(n);
    std::vector<double> alg1_cycles;
    std::size_t subtractions = 0;
    for (int i = 0; i < samples; ++i) {
      const BigUInt x = rng.Below(n);
      const BigUInt y = rng.Below(n);
      alg1_cycles.push_back(static_cast<double>(oracle.Alg1Cycles(x, y)));
      subtractions += oracle.Alg1SubtractionTaken(x, y) ? 1 : 0;
    }
    const auto stats = mont::sca::Summarize(alg1_cycles);
    const double subtraction_rate =
        static_cast<double>(subtractions) / samples;
    std::printf("timing, l=%zu, %d multiplications:\n", l, samples);
    std::printf("  Algorithm 1: mean %.1f cycles, std %.2f, subtraction "
                "taken %.1f%%\n",
                stats.mean, std::sqrt(stats.variance),
                100.0 * subtraction_rate);
    std::printf("  Algorithm 2: %llu cycles for every input\n\n",
                static_cast<unsigned long long>(oracle.Alg2Cycles()));
    rows.push_back({{"section", "timing"},
                    {"l", static_cast<unsigned long long>(l)},
                    {"samples", samples},
                    {"alg1_mean_cycles", stats.mean},
                    {"alg1_std_cycles", std::sqrt(stats.variance)},
                    {"alg1_subtraction_rate", subtraction_rate},
                    {"alg2_cycles", static_cast<unsigned long long>(
                                        oracle.Alg2Cycles())}});
  }

  // --- 2. TVLA fixed-vs-random on RSA, unblinded vs blinded ------------------
  {
    const std::size_t per_class = smoke ? 8 : 32;
    const mont::crypto::RsaKeyPair key = mont::crypto::GenerateRsaKey(32, rng);
    const BigUInt fixed = rng.Below(key.n);
    const std::vector<BigUInt> fixed_class(per_class, fixed);
    const auto random_class = RandomBases(rng, key.n, per_class);
    const auto blind = [&](const BigUInt& c) {
      return mont::crypto::BlindRsaBase(c, key.e, key.n, rng);
    };
    std::vector<BigUInt> fixed_blinded, random_blinded;
    for (std::size_t i = 0; i < per_class; ++i) {
      fixed_blinded.push_back(blind(fixed));
      random_blinded.push_back(blind(random_class[i]));
    }
    mont::sca::GateLevelCapture capture(key.n);
    const double t_unblinded = mont::sca::WelchTPeak(
        capture.CaptureModExps(fixed_class, key.d),
        capture.CaptureModExps(random_class, key.d));
    const double t_blinded = mont::sca::WelchTPeak(
        capture.CaptureModExps(fixed_blinded, key.d),
        capture.CaptureModExps(random_blinded, key.d));
    std::printf("TVLA (l=%zu RSA, %zu traces/class, threshold 4.5):\n",
                capture.l(), per_class);
    std::printf("  unblinded |t| = %8.1f  -> %s\n", std::abs(t_unblinded),
                std::abs(t_unblinded) > 4.5 ? "LEAKS" : "no evidence");
    std::printf("  blinded   |t| = %8.1f  -> %s\n\n", std::abs(t_blinded),
                std::abs(t_blinded) > 4.5 ? "LEAKS" : "no evidence");
    rows.push_back({{"section", "tvla"},
                    {"l", static_cast<unsigned long long>(capture.l())},
                    {"traces_per_class",
                     static_cast<unsigned long long>(per_class)},
                    {"welch_t_unblinded", std::abs(t_unblinded)},
                    {"welch_t_blinded", std::abs(t_blinded)},
                    {"threshold", 4.5},
                    {"unblinded_leaks", std::abs(t_unblinded) > 4.5},
                    {"blinded_leaks", std::abs(t_blinded) > 4.5}});
  }

  // --- 3. CPA/DPA exponent recovery -----------------------------------------
  {
    const std::size_t l = 16;
    const std::size_t exponent_bits = smoke ? 12 : 16;
    const std::size_t budget = smoke ? 32 : 64;
    const std::size_t hw_budget = smoke ? 64 : 128;
    const BigUInt n = rng.OddExactBits(l);
    const BigUInt d = rng.ExactBits(exponent_bits);
    const auto bases = RandomBases(rng, n, std::max(budget, hw_budget));
    std::vector<BigUInt> blinded_bases;
    for (const BigUInt& c : bases) {
      blinded_bases.push_back(
          mont::crypto::BlindRsaBase(c, BigUInt{65537}, n, rng));
    }
    mont::sca::GateLevelCapture capture(n);
    const mont::sca::TraceSet traces = capture.CaptureModExps(bases, d);
    const mont::sca::TraceSet blinded =
        capture.CaptureModExps(blinded_bases, d);
    std::printf("CPA/DPA (l=%zu, %zu-bit exponent):\n", l, exponent_bits);
    std::printf("  %-10s %-20s %7s %9s %5s\n", "leakage", "distinguisher",
                "traces", "recovered", "mtd");
    struct Scenario {
      mont::sca::Leakage leakage;
      mont::sca::Distinguisher distinguisher;
      std::size_t budget;
    };
    std::vector<Scenario> scenarios = {
        {mont::sca::Leakage::kHammingDistanceStates,
         mont::sca::Distinguisher::kPearsonCpa, budget},
        {mont::sca::Leakage::kHammingDistanceStates,
         mont::sca::Distinguisher::kDifferenceOfMeans, budget},
        {mont::sca::Leakage::kHammingWeightOutput,
         mont::sca::Distinguisher::kPearsonCpa, hw_budget},
    };
    for (const Scenario& scenario : scenarios) {
      mont::sca::AttackOptions options;
      options.leakage = scenario.leakage;
      options.distinguisher = scenario.distinguisher;
      const mont::sca::CpaAttack attack(n, options);
      const auto head = traces.Head(scenario.budget);
      const auto result = attack.Recover(
          head, {bases.data(), scenario.budget}, d.BitLength());
      const std::size_t mtd = attack.MeasurementsToDisclosure(
          head, {bases.data(), scenario.budget}, d, 0.9, 8);
      const double fraction = result.RecoveredFraction(d);
      std::printf("  %-10s %-20s %7zu %8.1f%% %5zu\n",
                  mont::sca::LeakageName(scenario.leakage),
                  mont::sca::DistinguisherName(scenario.distinguisher),
                  scenario.budget, 100.0 * fraction, mtd);
      rows.push_back(
          {{"section", "cpa"},
           {"l", static_cast<unsigned long long>(l)},
           {"exponent_bits", static_cast<unsigned long long>(exponent_bits)},
           {"leakage", mont::sca::LeakageName(scenario.leakage)},
           {"distinguisher",
            mont::sca::DistinguisherName(scenario.distinguisher)},
           {"trace_budget", static_cast<unsigned long long>(scenario.budget)},
           {"recovered_fraction", fraction},
           {"measurements_to_disclosure",
            static_cast<unsigned long long>(mtd)}});
    }
    // Countermeasure closure at the default model's budget.
    const mont::sca::CpaAttack attack(n);
    const auto blinded_result = attack.Recover(
        blinded.Head(budget), {bases.data(), budget}, d.BitLength());
    const double blinded_fraction = blinded_result.RecoveredFraction(d);
    const std::size_t blinded_mtd = attack.MeasurementsToDisclosure(
        blinded.Head(budget), {bases.data(), budget}, d, 0.9, 8);
    std::printf("  blinded executions, same attack:      %8.1f%% %5zu "
                "(chance; blinding closes the channel)\n\n",
                100.0 * blinded_fraction, blinded_mtd);
    rows.push_back({{"section", "cpa_blinded"},
                    {"l", static_cast<unsigned long long>(l)},
                    {"exponent_bits",
                     static_cast<unsigned long long>(exponent_bits)},
                    {"trace_budget", static_cast<unsigned long long>(budget)},
                    {"recovered_fraction", blinded_fraction},
                    {"measurements_to_disclosure",
                     static_cast<unsigned long long>(blinded_mtd)}});
  }

  // --- 4. capture throughput: 1-lane vs 64-lane ------------------------------
  {
    const std::size_t l = smoke ? 16 : 32;
    const std::size_t passes = smoke ? 2 : 8;
    const BigUInt n = rng.OddExactBits(l);
    const BigUInt two_n = n << 1;
    mont::sca::GateLevelCapture capture(n);
    const auto xs = RandomBases(rng, two_n, 64);
    const auto ys = RandomBases(rng, two_n, 64);
    // Scalar: one stimulus per simulation pass.
    const auto scalar_begin = Clock::now();
    std::size_t scalar_traces = 0;
    for (std::size_t pass = 0; pass < passes; ++pass) {
      for (std::size_t i = 0; i < 8; ++i) {
        const std::vector<BigUInt> x1{xs[i]}, y1{ys[i]};
        capture.CaptureMultiplications(x1, y1);
        ++scalar_traces;
      }
    }
    const double scalar_seconds = Seconds(scalar_begin, Clock::now());
    // Batched: 64 stimuli per pass.
    const auto batch_begin = Clock::now();
    std::size_t batch_traces = 0;
    for (std::size_t pass = 0; pass < passes; ++pass) {
      batch_traces += capture.CaptureMultiplications(xs, ys).Count();
    }
    const double batch_seconds = Seconds(batch_begin, Clock::now());
    const double scalar_rate =
        static_cast<double>(scalar_traces) / scalar_seconds;
    const double batch_rate = static_cast<double>(batch_traces) / batch_seconds;
    std::printf("capture throughput (l=%zu, %zu nets, %zu samples/trace):\n",
                capture.l(), capture.TrackedNetCount(),
                capture.SamplesPerMultiplication());
    std::printf("  1-lane : %10.0f traces/s\n", scalar_rate);
    std::printf("  64-lane: %10.0f traces/s  (%.1fx)\n\n", batch_rate,
                batch_rate / scalar_rate);
    rows.push_back({{"section", "capture_throughput"},
                    {"l", static_cast<unsigned long long>(capture.l())},
                    {"nets", static_cast<unsigned long long>(
                                 capture.TrackedNetCount())},
                    {"samples_per_trace",
                     static_cast<unsigned long long>(
                         capture.SamplesPerMultiplication())},
                    {"scalar_traces_per_s", scalar_rate},
                    {"batch_traces_per_s", batch_rate},
                    {"batch_speedup", batch_rate / scalar_rate}});
  }

  const std::string path = mont::bench::WriteBenchJson(
      "sca", rows, {{"smoke", smoke}, {"lanes", 64}});
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
