// bench_fig2_array — reproduces Fig. 2 / §4.3 of the paper: the complete
// linear systolic array.  For a sweep of operand lengths it prints the
// paper's closed-form area ((5l-3) XOR + (7l-7) AND + (4l-5) OR, 4l FFs),
// this repo's derived closed form, and the exact counts measured on the
// generated netlist; then shows that the critical path (in gate levels and
// picoseconds) does not depend on l.
//
// Writes BENCH_fig2_array.json (see bench_json.hpp) for the CI drift
// gate; --smoke trims the length sweep for the ctest `perf` label.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/area_model.hpp"
#include "core/netlist_gen.hpp"
#include "rtl/timing.hpp"

int main(int argc, char** argv) {
  using mont::core::DerivedArrayCombFormula;
  using mont::core::PaperAreaFormula;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::vector<std::size_t> area_sweep =
      smoke ? std::vector<std::size_t>{32, 64, 128, 256}
            : std::vector<std::size_t>{32, 64, 128, 256, 512, 1024};
  const std::vector<std::size_t> path_sweep =
      smoke ? std::vector<std::size_t>{4, 16, 64, 256}
            : std::vector<std::size_t>{4, 16, 64, 256, 1024};

  std::vector<mont::bench::JsonRow> rows;

  std::printf("=== Fig. 2 / §4.3: systolic array area and critical path ===\n\n");
  std::printf("--- gate counts: paper formula vs derived formula vs generated "
              "netlist ---\n");
  std::printf("%6s | %-23s | %-23s | %-23s\n", "", "XOR", "AND", "OR");
  std::printf("%6s | %7s %7s %7s | %7s %7s %7s | %7s %7s %7s\n", "l", "paper",
              "derived", "meas", "paper", "derived", "meas", "paper",
              "derived", "meas");
  std::printf("-------+-------------------------+-------------------------+----"
              "---------------------\n");
  for (const std::size_t l : area_sweep) {
    const auto paper = PaperAreaFormula(l);
    const auto derived = DerivedArrayCombFormula(l);
    const auto array = mont::core::BuildSystolicArrayComb(l);
    const auto stats = array.netlist->Stats();
    std::printf("%6zu | %7zu %7zu %7zu | %7zu %7zu %7zu | %7zu %7zu %7zu\n", l,
                paper.xor_gates, derived.xor_gates, stats.xor_gates,
                paper.and_gates, derived.and_gates, stats.and_gates,
                paper.or_gates, derived.or_gates, stats.or_gates);
    rows.push_back({
        {"phase", "area"},
        {"l", l},
        {"paper_xor", paper.xor_gates},
        {"derived_xor", derived.xor_gates},
        {"measured_xor", stats.xor_gates},
        {"paper_and", paper.and_gates},
        {"derived_and", derived.and_gates},
        {"measured_and", stats.and_gates},
        {"paper_or", paper.or_gates},
        {"derived_or", derived.or_gates},
        {"measured_or", stats.or_gates},
        {"paper_flip_flops", PaperAreaFormula(l).flip_flops},
        {"derived_flip_flops", mont::core::DerivedArrayFlipFlops(l)},
    });
  }
  std::printf("\nNote: the derived counts differ from the paper's by small "
              "constants (XOR, AND) and in\nthe OR slope — the paper does not "
              "state its FA/HA decomposition conventions; the\nderived column "
              "is asserted exactly against the netlist in the test suite.\n");

  std::printf("\n--- flip-flop inventory ---\n");
  std::printf("%6s %14s %14s\n", "l", "paper (4l)", "this design");
  for (const std::size_t l : {32u, 256u, 1024u}) {
    std::printf("%6zu %14zu %14zu\n", l, PaperAreaFormula(l).flip_flops,
                mont::core::DerivedArrayFlipFlops(l));
  }
  std::printf("(this design carries x/m pipes with one FF per cell plus the "
              "capture-token pipe,\nwhere the paper shares pipe registers "
              "across cell pairs — same linear shape)\n");

  std::printf("\n--- critical path independence (the scalability claim) ---\n");
  std::printf("%6s %10s %12s\n", "l", "levels", "path (ps)");
  for (const std::size_t l : path_sweep) {
    const auto array = mont::core::BuildSystolicArrayComb(l);
    const mont::rtl::TimingAnalyzer unit(*array.netlist,
                                         mont::rtl::DelayModel::Unit());
    const mont::rtl::TimingAnalyzer ps(*array.netlist, mont::rtl::DelayModel{});
    std::printf("%6zu %10zu %12.0f\n", l, unit.CriticalPath().logic_levels,
                ps.CriticalPath().critical_path_ps);
    rows.push_back({
        {"phase", "critical_path"},
        {"l", l},
        {"logic_levels", unit.CriticalPath().logic_levels},
        {"critical_path_ps", ps.CriticalPath().critical_path_ps},
    });
  }
  const std::string path = mont::bench::WriteBenchJson(
      "fig2_array", rows, {{"smoke", smoke}});
  std::printf("\nPaper: critical path = 2 T_FA(cin->cout) + T_HA(cin->cout), "
              "independent of l. Confirmed.\nJSON written to %s\n",
              path.c_str());
  return 0;
}
