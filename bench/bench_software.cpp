// bench_software — §3 context: Montgomery multiplication avoids the trial
// division that dominates naive modular arithmetic.  Google-benchmark
// microbenchmarks of the software layers: division-based modular
// multiplication vs the word-level Montgomery variants (CIOS / SOS / FIPS),
// the radix-2 Algorithms 1 and 2, the Karatsuba threshold, and the
// throughput of the three hardware-model fidelity levels.
#include <benchmark/benchmark.h>

#include "bignum/biguint.hpp"
#include "bignum/montgomery.hpp"
#include "bignum/random.hpp"
#include "core/mmmc.hpp"
#include "core/netlist_gen.hpp"
#include "rtl/simulator.hpp"

namespace {

using mont::bignum::BigUInt;
using mont::bignum::BitSerialMontgomery;
using mont::bignum::RandomBigUInt;
using mont::bignum::WordMontgomery;

struct Fixture {
  BigUInt n, x, y;
  explicit Fixture(std::size_t bits) {
    RandomBigUInt rng(0xbe7c4 + bits);
    n = rng.OddExactBits(bits);
    x = rng.Below(n);
    y = rng.Below(n);
  }
};

void BM_DivisionModMul(benchmark::State& state) {
  const Fixture f(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize((f.x * f.y) % f.n);
  }
}
BENCHMARK(BM_DivisionModMul)->Arg(256)->Arg(1024)->Arg(2048);

template <WordMontgomery::Variant V>
void BM_WordMontgomery(benchmark::State& state) {
  const Fixture f(static_cast<std::size_t>(state.range(0)));
  const WordMontgomery ctx(f.n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.Multiply(f.x, f.y, V));
  }
}
BENCHMARK_TEMPLATE(BM_WordMontgomery, WordMontgomery::Variant::kCios)
    ->Name("BM_MontgomeryCIOS")->Arg(256)->Arg(1024)->Arg(2048);
BENCHMARK_TEMPLATE(BM_WordMontgomery, WordMontgomery::Variant::kSos)
    ->Name("BM_MontgomerySOS")->Arg(256)->Arg(1024)->Arg(2048);
BENCHMARK_TEMPLATE(BM_WordMontgomery, WordMontgomery::Variant::kFips)
    ->Name("BM_MontgomeryFIPS")->Arg(256)->Arg(1024)->Arg(2048);

void BM_BitSerialAlg1(benchmark::State& state) {
  const Fixture f(static_cast<std::size_t>(state.range(0)));
  const BitSerialMontgomery ctx(f.n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.MultiplyAlg1(f.x, f.y));
  }
}
BENCHMARK(BM_BitSerialAlg1)->Arg(256)->Arg(1024);

void BM_BitSerialAlg2(benchmark::State& state) {
  const Fixture f(static_cast<std::size_t>(state.range(0)));
  const BitSerialMontgomery ctx(f.n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.MultiplyAlg2(f.x, f.y));
  }
}
BENCHMARK(BM_BitSerialAlg2)->Arg(256)->Arg(1024);

void BM_Multiplication(benchmark::State& state) {
  RandomBigUInt rng(0x3141u);
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  const BigUInt a = rng.ExactBits(bits);
  const BigUInt b = rng.ExactBits(bits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
}
// Around the Karatsuba threshold (24 limbs = 768 bits) and beyond.
BENCHMARK(BM_Multiplication)->Arg(512)->Arg(768)->Arg(1536)->Arg(4096)->Arg(16384);

void BM_ModExpWordLevel(benchmark::State& state) {
  const Fixture f(static_cast<std::size_t>(state.range(0)));
  const WordMontgomery ctx(f.n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.ModExp(f.x, f.y));
  }
}
BENCHMARK(BM_ModExpWordLevel)->Arg(256)->Arg(512)->Arg(1024)->Unit(benchmark::kMillisecond);

// Hardware-model fidelity levels: host cost of simulating one MMM.
void BM_SimBehavioural(benchmark::State& state) {
  const Fixture f(static_cast<std::size_t>(state.range(0)));
  mont::core::Mmmc circuit(f.n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit.Multiply(f.x, f.y));
  }
}
BENCHMARK(BM_SimBehavioural)->Arg(64)->Arg(256)->Arg(1024)->Unit(benchmark::kMicrosecond);

void BM_SimGateLevel(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  const Fixture f(bits);
  const auto gen = mont::core::BuildMmmcNetlist(bits);
  mont::rtl::Simulator sim(*gen.netlist);
  for (std::size_t b = 0; b < bits; ++b) sim.SetInput(gen.n_in[b], f.n.Bit(b));
  for (auto _ : state) {
    for (std::size_t b = 0; b <= bits; ++b) {
      sim.SetInput(gen.x_in[b], f.x.Bit(b));
      sim.SetInput(gen.y_in[b], f.y.Bit(b));
    }
    sim.SetInput(gen.start, true);
    sim.Tick();
    sim.SetInput(gen.start, false);
    while (!sim.Peek(gen.done)) sim.Tick();
    sim.Tick();
  }
}
BENCHMARK(BM_SimGateLevel)->Arg(16)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
