// bench_software — §3 context: Montgomery multiplication avoids the trial
// division that dominates naive modular arithmetic.  Microbenchmarks of
// the software layers: division-based modular multiplication vs the
// word-level Montgomery variants (CIOS / SOS / FIPS), the radix-2
// Algorithms 1 and 2, the Karatsuba threshold, and the throughput of the
// hardware-model fidelity levels.
//
// Self-timed (bench_timer.hpp, no benchmark-framework dependency).
// Writes BENCH_software.json; wall_* keys are host-dependent and exempt
// from the CI drift gate.  --smoke shortens the measurement windows and
// trims the gate-level sweep.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "bench_timer.hpp"
#include "bignum/biguint.hpp"
#include "bignum/montgomery.hpp"
#include "bignum/random.hpp"
#include "core/mmmc.hpp"
#include "core/netlist_gen.hpp"
#include "rtl/simulator.hpp"

namespace {

using mont::bignum::BigUInt;
using mont::bignum::BitSerialMontgomery;
using mont::bignum::RandomBigUInt;
using mont::bignum::WordMontgomery;

struct Fixture {
  BigUInt n, x, y;
  explicit Fixture(std::size_t bits) {
    RandomBigUInt rng(0xbe7c4 + bits);
    n = rng.OddExactBits(bits);
    x = rng.Below(n);
    y = rng.Below(n);
  }
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const double window = smoke ? 0.01 : 0.25;  // seconds per measurement

  std::vector<mont::bench::JsonRow> rows;
  std::printf("=== software layers: modular multiplication and simulation "
              "cost ===\n\n");
  std::printf("%-22s %8s | %12s %12s\n", "op", "bits", "iters", "ns/op");
  std::printf("-------------------------------+---------------------------\n");
  const auto report = [&](const char* op, std::size_t bits,
                          const mont::bench::TimedResult& timed) {
    std::printf("%-22s %8zu | %12llu %12.1f\n", op, bits,
                static_cast<unsigned long long>(timed.iterations),
                timed.wall_ns_per_op);
    rows.push_back({
        {"op", op},
        {"bits", bits},
        {"iterations", timed.iterations},
        {"wall_ns_per_op", timed.wall_ns_per_op},
    });
  };

  for (const std::size_t bits : {256u, 1024u, 2048u}) {
    const Fixture f(bits);
    report("division_modmul", bits, mont::bench::TimeIt([&] {
      mont::bench::KeepAlive((f.x * f.y) % f.n);
    }, window));
    const WordMontgomery ctx(f.n);
    report("montgomery_cios", bits, mont::bench::TimeIt([&] {
      mont::bench::KeepAlive(
          ctx.Multiply(f.x, f.y, WordMontgomery::Variant::kCios));
    }, window));
    report("montgomery_sos", bits, mont::bench::TimeIt([&] {
      mont::bench::KeepAlive(
          ctx.Multiply(f.x, f.y, WordMontgomery::Variant::kSos));
    }, window));
    report("montgomery_fips", bits, mont::bench::TimeIt([&] {
      mont::bench::KeepAlive(
          ctx.Multiply(f.x, f.y, WordMontgomery::Variant::kFips));
    }, window));
  }

  for (const std::size_t bits : {256u, 1024u}) {
    const Fixture f(bits);
    const BitSerialMontgomery ctx(f.n);
    report("bitserial_alg1", bits, mont::bench::TimeIt([&] {
      mont::bench::KeepAlive(ctx.MultiplyAlg1(f.x, f.y));
    }, window));
    report("bitserial_alg2", bits, mont::bench::TimeIt([&] {
      mont::bench::KeepAlive(ctx.MultiplyAlg2(f.x, f.y));
    }, window));
  }

  // Around the Karatsuba threshold (24 limbs = 768 bits) and beyond.
  for (const std::size_t bits : {512u, 768u, 1536u, 4096u, 16384u}) {
    RandomBigUInt rng(0x3141u);
    const BigUInt a = rng.ExactBits(bits);
    const BigUInt b = rng.ExactBits(bits);
    report("multiplication", bits, mont::bench::TimeIt([&] {
      mont::bench::KeepAlive(a * b);
    }, window));
  }

  for (const std::size_t bits : {256u, 512u, 1024u}) {
    const Fixture f(bits);
    const WordMontgomery ctx(f.n);
    report("modexp_word_level", bits, mont::bench::TimeIt([&] {
      mont::bench::KeepAlive(ctx.ModExp(f.x, f.y));
    }, window));
  }

  // Hardware-model fidelity levels: host cost of simulating one MMM.
  for (const std::size_t bits : {64u, 256u, 1024u}) {
    const Fixture f(bits);
    mont::core::Mmmc circuit(f.n);
    report("sim_behavioural", bits, mont::bench::TimeIt([&] {
      mont::bench::KeepAlive(circuit.Multiply(f.x, f.y));
    }, window));
  }
  const std::vector<std::size_t> gate_sweep =
      smoke ? std::vector<std::size_t>{16, 64}
            : std::vector<std::size_t>{16, 64, 128};
  for (const std::size_t bits : gate_sweep) {
    const Fixture f(bits);
    const auto gen = mont::core::BuildMmmcNetlist(bits);
    mont::rtl::Simulator sim(*gen.netlist);
    for (std::size_t b = 0; b < bits; ++b) {
      sim.SetInput(gen.n_in[b], f.n.Bit(b));
    }
    report("sim_gate_level", bits, mont::bench::TimeIt([&] {
      for (std::size_t b = 0; b <= bits; ++b) {
        sim.SetInput(gen.x_in[b], f.x.Bit(b));
        sim.SetInput(gen.y_in[b], f.y.Bit(b));
      }
      sim.SetInput(gen.start, true);
      sim.Tick();
      sim.SetInput(gen.start, false);
      while (!sim.Peek(gen.done)) sim.Tick();
      sim.Tick();
    }, window));
  }

  const std::string path = mont::bench::WriteBenchJson(
      "software", rows, {{"smoke", smoke}});
  std::printf("\nJSON written to %s\n", path.c_str());
  return 0;
}
