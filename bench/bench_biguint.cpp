// bench_biguint — Google-benchmark microbenchmarks of the BigUInt
// substrate every layer above sits on: schoolbook/Karatsuba
// multiplication across the threshold, Knuth-D division, modular
// inversion, and square-and-multiply exponentiation.  These are the
// software costs that Table 1's "software on a workstation" comparison
// point is made of.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "bignum/biguint.hpp"
#include "bignum/random.hpp"

namespace {

using mont::bignum::BigUInt;
using mont::bignum::RandomBigUInt;

void BM_Multiply(benchmark::State& state) {
  RandomBigUInt rng(0xb16 + static_cast<std::uint64_t>(state.range(0)));
  const BigUInt a = rng.ExactBits(static_cast<std::size_t>(state.range(0)));
  const BigUInt b = rng.ExactBits(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
}
// 512/1024 sit below the Karatsuba threshold, 4096/16384 above it.
BENCHMARK(BM_Multiply)->Arg(512)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_DivMod(benchmark::State& state) {
  RandomBigUInt rng(0xd17 + static_cast<std::uint64_t>(state.range(0)));
  const BigUInt a = rng.ExactBits(static_cast<std::size_t>(2 * state.range(0)));
  const BigUInt b = rng.ExactBits(static_cast<std::size_t>(state.range(0)));
  BigUInt q, r;
  for (auto _ : state) {
    BigUInt::DivMod(a, b, q, r);
    benchmark::DoNotOptimize(q);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_DivMod)->Arg(256)->Arg(1024)->Arg(4096);

void BM_ModInverse(benchmark::State& state) {
  RandomBigUInt rng(0x1f4 + static_cast<std::uint64_t>(state.range(0)));
  const BigUInt m = rng.OddExactBits(static_cast<std::size_t>(state.range(0)));
  const BigUInt a = rng.Below(m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BigUInt::ModInverse(a, m));
  }
}
BENCHMARK(BM_ModInverse)->Arg(256)->Arg(1024);

void BM_ModExp(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  RandomBigUInt rng(0xe22 + bits);
  const BigUInt n = rng.OddExactBits(bits);
  const BigUInt base = rng.Below(n);
  const BigUInt exp = rng.BalancedExactBits(bits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BigUInt::ModExp(base, exp, n));
  }
}
BENCHMARK(BM_ModExp)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
