// bench_biguint — microbenchmarks of the BigUInt substrate every layer
// above sits on: schoolbook/Karatsuba multiplication across the
// threshold, Knuth-D division, modular inversion, and square-and-multiply
// exponentiation.  These are the software costs that Table 1's "software
// on a workstation" comparison point is made of.
//
// Self-timed (bench_timer.hpp, no benchmark-framework dependency).
// Writes BENCH_biguint.json; wall_* keys are host-dependent and exempt
// from the CI drift gate.  --smoke shortens the measurement windows.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "bench_timer.hpp"
#include "bignum/biguint.hpp"
#include "bignum/random.hpp"

namespace {

using mont::bignum::BigUInt;
using mont::bignum::RandomBigUInt;

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const double window = smoke ? 0.01 : 0.25;  // seconds per measurement

  std::vector<mont::bench::JsonRow> rows;
  std::printf("=== BigUInt substrate microbenchmarks ===\n\n");
  std::printf("%-12s %8s | %12s %12s\n", "op", "bits", "iters", "ns/op");
  std::printf("---------------------+---------------------------\n");
  const auto report = [&](const char* op, std::size_t bits,
                          const mont::bench::TimedResult& timed) {
    std::printf("%-12s %8zu | %12llu %12.1f\n", op, bits,
                static_cast<unsigned long long>(timed.iterations),
                timed.wall_ns_per_op);
    rows.push_back({
        {"op", op},
        {"bits", bits},
        {"iterations", timed.iterations},
        {"wall_ns_per_op", timed.wall_ns_per_op},
    });
  };

  // 512/1024 sit below the Karatsuba threshold, 4096/16384 above it.
  for (const std::size_t bits : {512u, 1024u, 4096u, 16384u}) {
    RandomBigUInt rng(0xb16 + bits);
    const BigUInt a = rng.ExactBits(bits);
    const BigUInt b = rng.ExactBits(bits);
    report("multiply", bits, mont::bench::TimeIt([&] {
      mont::bench::KeepAlive(a * b);
    }, window));
  }
  for (const std::size_t bits : {256u, 1024u, 4096u}) {
    RandomBigUInt rng(0xd17 + bits);
    const BigUInt a = rng.ExactBits(2 * bits);
    const BigUInt b = rng.ExactBits(bits);
    BigUInt q, r;
    report("divmod", bits, mont::bench::TimeIt([&] {
      BigUInt::DivMod(a, b, q, r);
      mont::bench::KeepAlive(q);
      mont::bench::KeepAlive(r);
    }, window));
  }
  for (const std::size_t bits : {256u, 1024u}) {
    RandomBigUInt rng(0x1f4 + bits);
    const BigUInt m = rng.OddExactBits(bits);
    const BigUInt a = rng.Below(m);
    report("mod_inverse", bits, mont::bench::TimeIt([&] {
      mont::bench::KeepAlive(BigUInt::ModInverse(a, m));
    }, window));
  }
  for (const std::size_t bits : {256u, 1024u}) {
    RandomBigUInt rng(0xe22 + bits);
    const BigUInt n = rng.OddExactBits(bits);
    const BigUInt base = rng.Below(n);
    const BigUInt exp = rng.BalancedExactBits(bits);
    report("mod_exp", bits, mont::bench::TimeIt([&] {
      mont::bench::KeepAlive(BigUInt::ModExp(base, exp, n));
    }, window));
  }

  const std::string path = mont::bench::WriteBenchJson(
      "biguint", rows, {{"smoke", smoke}});
  std::printf("\nJSON written to %s\n", path.c_str());
  return 0;
}
