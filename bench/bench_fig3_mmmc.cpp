// bench_fig3_mmmc — reproduces Fig. 3 of the paper: the MMMC architecture
// (controller + datapath).  Prints the control/datapath decomposition of
// the generated circuit, the control-bit comparison against Blum-Paar
// (§4.4: log2(l+2)+2 bits here vs 3*ceil(l/u) bits there), and the mapped
// FPGA resource split.  Since the 64-lane engine, every row is also
// *simulated*: 64 random operand pairs run through the gate-level netlist
// in one bit-parallel pass and checked against the software Montgomery
// reference — so the table is backed by a live circuit, not just static
// stats.  Writes BENCH_fig3_mmmc.json; --smoke caps the sweep at l = 128
// for the ctest `perf` label.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "baseline/blum_paar.hpp"
#include "bench_json.hpp"
#include "bignum/montgomery.hpp"
#include "bignum/random.hpp"
#include "core/netlist_gen.hpp"
#include "core/sim_drivers.hpp"
#include "fpga/device_model.hpp"
#include "rtl/batch_sim.hpp"

namespace {

using mont::bignum::BigUInt;
constexpr std::size_t kLanes = mont::rtl::BatchSimulator::kLanes;

/// Runs 64 random operand pairs through the netlist in one batch pass;
/// returns true (and the observed cycle count) iff every lane matches the
/// software reference and DONE arrives in the paper's 3l+4 cycles.
bool VerifyRow(const mont::core::MmmcNetlist& gen,
               mont::bignum::RandomBigUInt& rng, std::uint64_t* cycles) {
  const std::size_t l = gen.l;
  const BigUInt n = rng.OddExactBits(l);
  const BigUInt two_n = n << 1;
  const mont::bignum::BitSerialMontgomery reference(n);
  std::vector<BigUInt> xs, ys;
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    xs.push_back(rng.Below(two_n));
    ys.push_back(rng.Below(two_n));
  }
  mont::core::MmmcBatchSimDriver drv(gen);
  drv.LoadModulus(n);
  std::vector<BigUInt> results;
  if (!drv.TryMultiply(xs, ys, &results, cycles)) return false;  // hung FSM
  if (*cycles != 3 * l + 4) return false;
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    if (results[lane] != reference.MultiplyAlg2(xs[lane], ys[lane])) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  std::printf("=== Fig. 3: MMMC architecture — controller + datapath ===\n\n");

  std::printf("%6s | %9s %9s %9s | %10s %9s | %12s %14s | %10s\n", "l",
              "gates", "FFs", "LUTs", "slices", "Tp (ns)", "ctl bits",
              "BP ctl bits", "64-ln sim");
  std::printf("-------+-------------------------------+----------------------+"
              "----------------------------+-----------\n");
  std::vector<mont::bench::JsonRow> rows;
  mont::bignum::RandomBigUInt rng(0xf163f163ull);
  bool all_verified = true;
  for (const std::size_t l : {32u, 64u, 128u, 256u, 512u, 1024u}) {
    if (smoke && l > 128) continue;
    const auto gen = mont::core::BuildMmmcNetlist(l);
    const auto stats = gen.netlist->Stats();
    const auto fpga = mont::fpga::AnalyzeNetlist(*gen.netlist);
    // Control state: 2-bit FSM + counter (the paper quotes log2(l+2)+2).
    const std::size_t ctl_bits = gen.counter_width + 2;
    // Blum-Paar distribute 3-bit command registers across ceil(l/u) PEs
    // (radix-2: u = 1 -> 3l bits of control).
    const std::size_t bp_ctl_bits = 3 * l;
    std::uint64_t cycles = 0;
    const bool verified = VerifyRow(gen, rng, &cycles);
    all_verified = all_verified && verified;
    std::printf("%6zu | %9zu %9zu %9zu | %10zu %9.3f | %12zu %14zu | %10s\n",
                l, stats.CombinationalNodes(), stats.flip_flops, fpga.luts,
                fpga.slices, fpga.clock_period_ns, ctl_bits, bp_ctl_bits,
                verified ? "OK" : "FAIL");
    rows.push_back({
        {"l", l},
        {"gates", stats.CombinationalNodes()},
        {"flip_flops", stats.flip_flops},
        {"luts", fpga.luts},
        {"slices", fpga.slices},
        {"clock_period_ns", fpga.clock_period_ns},
        {"ctl_bits", ctl_bits},
        {"blum_paar_ctl_bits", bp_ctl_bits},
        {"sim_verified_lanes", verified ? kLanes : std::size_t{0}},
        {"sim_cycles", cycles},
    });
  }

  if (!smoke) {
    std::printf("\n--- datapath composition for l = 64 ---\n");
    const std::size_t l = 64;
    const auto gen = mont::core::BuildMmmcNetlist(l);
    const auto stats = gen.netlist->Stats();
    const auto array_only = mont::core::BuildSystolicArrayComb(l);
    const auto array_stats = array_only.netlist->Stats();
    std::printf("  systolic array cell logic: %zu gates\n",
                array_stats.CombinationalNodes());
    std::printf("  registers+muxes+control:   %zu gates\n",
                stats.CombinationalNodes() - array_stats.CombinationalNodes());
    std::printf("  X/Y/N/T + pipeline + token flip-flops: %zu\n",
                stats.flip_flops);
    std::printf("  counter width: %zu bits (paper: ceil(log2(l+2)) = %d)\n",
                gen.counter_width,
                static_cast<int>(std::ceil(std::log2(l + 2.0))));
  }

  const std::string path = mont::bench::WriteBenchJson(
      "fig3_mmmc", rows, {{"smoke", smoke}, {"lanes", kLanes}});
  std::printf("\nThe controller is a constant-size ASM plus a log-width "
              "counter — unlike Blum-Paar's\nper-PE command registers, "
              "control cost does not scale with the datapath, which is\n"
              "where the clock-frequency advantage comes from (§4.4).\n"
              "JSON written to %s\n", path.c_str());
  return all_verified ? 0 : 1;
}
