// bench_fig3_mmmc — reproduces Fig. 3 of the paper: the MMMC architecture
// (controller + datapath).  Prints the control/datapath decomposition of
// the generated circuit, the control-bit comparison against Blum-Paar
// (§4.4: log2(l+2)+2 bits here vs 3*ceil(l/u) bits there), and the mapped
// FPGA resource split.
#include <cmath>
#include <cstdio>

#include "baseline/blum_paar.hpp"
#include "core/netlist_gen.hpp"
#include "fpga/device_model.hpp"

int main() {
  std::printf("=== Fig. 3: MMMC architecture — controller + datapath ===\n\n");

  std::printf("%6s | %9s %9s %9s | %10s %9s | %12s %14s\n", "l", "gates",
              "FFs", "LUTs", "slices", "Tp (ns)", "ctl bits", "BP ctl bits");
  std::printf("-------+-------------------------------+----------------------+"
              "----------------------------\n");
  for (const std::size_t l : {32u, 64u, 128u, 256u, 512u, 1024u}) {
    const auto gen = mont::core::BuildMmmcNetlist(l);
    const auto stats = gen.netlist->Stats();
    const auto fpga = mont::fpga::AnalyzeNetlist(*gen.netlist);
    // Control state: 2-bit FSM + counter (the paper quotes log2(l+2)+2).
    const std::size_t ctl_bits = gen.counter_width + 2;
    // Blum-Paar distribute 3-bit command registers across ceil(l/u) PEs
    // (radix-2: u = 1 -> 3l bits of control).
    const std::size_t bp_ctl_bits = 3 * l;
    std::printf("%6zu | %9zu %9zu %9zu | %10zu %9.3f | %12zu %14zu\n", l,
                stats.CombinationalNodes(), stats.flip_flops, fpga.luts,
                fpga.slices, fpga.clock_period_ns, ctl_bits, bp_ctl_bits);
  }

  std::printf("\n--- datapath composition for l = 64 ---\n");
  {
    const std::size_t l = 64;
    const auto gen = mont::core::BuildMmmcNetlist(l);
    const auto stats = gen.netlist->Stats();
    const auto array_only = mont::core::BuildSystolicArrayComb(l);
    const auto array_stats = array_only.netlist->Stats();
    std::printf("  systolic array cell logic: %zu gates\n",
                array_stats.CombinationalNodes());
    std::printf("  registers+muxes+control:   %zu gates\n",
                stats.CombinationalNodes() - array_stats.CombinationalNodes());
    std::printf("  X/Y/N/T + pipeline + token flip-flops: %zu\n",
                stats.flip_flops);
    std::printf("  counter width: %zu bits (paper: ceil(log2(l+2)) = %d)\n",
                gen.counter_width,
                static_cast<int>(std::ceil(std::log2(l + 2.0))));
  }

  std::printf("\nThe controller is a constant-size ASM plus a log-width "
              "counter — unlike Blum-Paar's\nper-PE command registers, "
              "control cost does not scale with the datapath, which is\n"
              "where the clock-frequency advantage comes from (§4.4).\n");
  return 0;
}
