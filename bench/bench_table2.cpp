// bench_table2 — reproduces Table 2 of the paper: slices (S), clock period
// (Tp), time-area product (TA) and the time for one Montgomery modular
// multiplication (T_MMM) for l in {32, 64, 128, 256, 512, 1024}.
//
// S and Tp come from mapping the generated gate-level MMMC through the
// Virtex-E device model; T_MMM = (3l+4) * Tp where the cycle count is the
// one asserted clock-by-clock in the test suite (and re-measured here on
// the behavioural simulator for every row where that is fast).
//
// Writes BENCH_table2.json (see bench_json.hpp) so CI can track model
// drift against the paper's numbers; --smoke is accepted for symmetry
// with the other perf-labelled benches (every row is already cheap).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "bignum/random.hpp"
#include "core/mmmc.hpp"
#include "core/netlist_gen.hpp"
#include "core/schedule.hpp"
#include "fpga/device_model.hpp"

namespace {

struct PaperRow {
  std::size_t l;
  std::size_t slices;
  double tp_ns;
  double ta;        // slices * ns
  double tmmm_us;
};

constexpr PaperRow kPaperTable2[] = {
    {32, 225, 9.256, 2082.6, 0.926},      {64, 418, 9.221, 3854.38, 1.807},
    {128, 806, 10.242, 8255.05, 3.974},   {256, 1548, 9.956, 15411.88, 7.686},
    {512, 2972, 10.501, 31208.97, 16.171}, {1024, 5706, 10.458, 59673.35, 32.168},
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  std::printf("=== Table 2: slices, clock period, time-area product, T_MMM "
              "===\n");
  std::printf("(paper: Xilinx V812E-BG-560-8 synthesis; here: LUT4 mapping + "
              "slice packing + wire-load timing)\n\n");
  std::printf("%6s | %-15s | %-19s | %-21s | %-17s | %s\n", "", "S (slices)",
              "Tp (ns)", "TA (S*ns)", "T_MMM (us)", "cycles");
  std::printf("%6s | %7s %7s | %9s %9s | %10s %10s | %8s %8s | %s\n", "l",
              "paper", "model", "paper", "model", "paper", "model", "paper",
              "model", "sim");
  std::printf("-------+-----------------+---------------------+---------------"
              "--------+-------------------+---------\n");

  std::vector<mont::bench::JsonRow> json_rows;
  mont::bignum::RandomBigUInt rng(0x7ab1e2u);
  for (const PaperRow& row : kPaperTable2) {
    const auto gen = mont::core::BuildMmmcNetlist(row.l);
    const auto fpga = mont::fpga::AnalyzeNetlist(*gen.netlist);
    const std::uint64_t cycles = mont::core::MultiplyCycles(row.l);
    const double tmmm_us = static_cast<double>(cycles) *
                           fpga.clock_period_ns * 1e-3;

    // Re-measure the cycle count on the behavioural simulator (cheap for
    // every l in the table).
    const auto n = rng.OddExactBits(row.l);
    mont::core::Mmmc circuit(n);
    std::uint64_t simulated = 0;
    circuit.Multiply(rng.Below(n << 1), rng.Below(n << 1), &simulated);

    std::printf("%6zu | %7zu %7zu | %9.3f %9.3f | %10.1f %10.1f | %8.3f %8.3f "
                "| %7llu%s\n",
                row.l, row.slices, fpga.slices, row.tp_ns,
                fpga.clock_period_ns, row.ta,
                fpga.clock_period_ns * static_cast<double>(fpga.slices),
                row.tmmm_us, tmmm_us,
                static_cast<unsigned long long>(simulated),
                simulated == cycles ? " (=3l+4)" : " MISMATCH");

    json_rows.push_back({
        {"l", row.l},
        {"slices_paper", row.slices},
        {"slices_model", fpga.slices},
        {"tp_paper_ns", row.tp_ns},
        {"tp_model_ns", fpga.clock_period_ns},
        {"ta_paper", row.ta},
        {"ta_model",
         fpga.clock_period_ns * static_cast<double>(fpga.slices)},
        {"tmmm_paper_us", row.tmmm_us},
        {"tmmm_model_us", tmmm_us},
        {"simulated_cycles", simulated},
        {"cycles_match_formula", simulated == cycles},
    });
  }

  const std::string path =
      mont::bench::WriteBenchJson("table2", json_rows, {{"smoke", smoke}});
  std::printf("\nShape check: slices linear in l (paper ~5.6/bit, model "
              "within 20%%),\nclock period flat across two orders of "
              "magnitude of l — the paper's key claim.\nJSON written to "
              "%s\n", path.c_str());
  return 0;
}
