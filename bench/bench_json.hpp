// bench_json.hpp — minimal machine-readable bench reporting.
//
// Every bench that feeds CI trend tracking writes one BENCH_<name>.json
// next to its stdout table (cf. arXiv:2408.13485 on benchmark discipline:
// a speedup that is not machine-checked is asserted, not tracked).  The
// schema is deliberately flat so a jq one-liner can diff two runs:
//
//   { "bench": "<name>", "schema": 1, "rows": [ {k: v, ...}, ... ] }
//
// No external JSON dependency: values are bool/int/double/string only,
// and strings in bench rows are identifiers (no escaping beyond quotes
// and backslashes is required, but all control characters are handled).
#pragma once

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

namespace mont::bench {

/// One JSON scalar.
class JsonValue {
 public:
  JsonValue(bool v) : text_(v ? "true" : "false") {}  // NOLINT
  JsonValue(int v) : text_(std::to_string(v)) {}      // NOLINT
  JsonValue(long v) : text_(std::to_string(v)) {}               // NOLINT
  JsonValue(long long v) : text_(std::to_string(v)) {}          // NOLINT
  JsonValue(unsigned v) : text_(std::to_string(v)) {}           // NOLINT
  JsonValue(unsigned long v) : text_(std::to_string(v)) {}      // NOLINT
  JsonValue(unsigned long long v) : text_(std::to_string(v)) {}  // NOLINT
  JsonValue(double v) {  // NOLINT
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    text_ = buf;
  }
  JsonValue(const char* v) : text_(Quote(v)) {}         // NOLINT
  JsonValue(const std::string& v) : text_(Quote(v)) {}  // NOLINT

  const std::string& Rendered() const { return text_; }

 private:
  static std::string Quote(const std::string& raw) {
    std::string out = "\"";
    for (const char c : raw) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", c);
        out += buf;
      } else {
        out += c;
      }
    }
    out += '"';
    return out;
  }

  std::string text_;
};

/// An ordered list of key/value pairs rendered as one JSON object.
using JsonRow = std::vector<std::pair<std::string, JsonValue>>;

inline std::string RenderRow(const JsonRow& row) {
  std::string out = "{";
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i != 0) out += ", ";
    out += JsonValue(row[i].first).Rendered();
    out += ": ";
    out += row[i].second.Rendered();
  }
  out += "}";
  return out;
}

/// Writes BENCH_<name>.json in the current directory (the CI bench step
/// collects build/bench/BENCH_*.json as artifacts).  Top-level `meta`
/// pairs land beside "bench"/"schema"; returns the path written.
inline std::string WriteBenchJson(const std::string& name,
                                  const std::vector<JsonRow>& rows,
                                  const JsonRow& meta = {}) {
  const std::string path = "BENCH_" + name + ".json";
  std::ofstream out(path);
  out << "{\n  \"bench\": " << JsonValue(name).Rendered()
      << ",\n  \"schema\": 1";
  for (const auto& [key, value] : meta) {
    out << ",\n  " << JsonValue(key).Rendered() << ": " << value.Rendered();
  }
  out << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    out << "    " << RenderRow(rows[i]) << (i + 1 < rows.size() ? "," : "")
        << "\n";
  }
  out << "  ]\n}\n";
  return path;
}

}  // namespace mont::bench
