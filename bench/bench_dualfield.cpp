// bench_dualfield — ablation: the Savaş-style dual-field extension (§2
// related work).  Measures what it costs to make the paper's multiplier
// serve GF(2^m) alongside GF(p): carry-gating ANDs on an fsel line, a
// regular cell at the top position, nothing else.  Prints area/Tp for the
// single-field and dual-field circuits across l, plus a functional demo in
// both fields on the same netlist.
#include <cstdio>

#include "bignum/gf2.hpp"
#include "bignum/random.hpp"
#include "core/mmmc.hpp"
#include "core/netlist_gen.hpp"
#include "fpga/device_model.hpp"
#include "rtl/simulator.hpp"

int main() {
  using mont::bignum::BigUInt;

  std::printf("=== ablation: dual-field (GF(p) + GF(2^m)) multiplier ===\n\n");
  std::printf("%6s | %10s %10s %7s | %9s %9s | %9s %9s\n", "l", "1F slices",
              "2F slices", "extra", "1F Tp", "2F Tp", "1F LUTs", "2F LUTs");
  std::printf("-------+-------------------------------+---------------------+"
              "--------------------\n");
  for (const std::size_t l : {32u, 64u, 128u, 256u, 512u}) {
    const auto single = mont::core::BuildMmmcNetlist(l, false);
    const auto dual = mont::core::BuildMmmcNetlist(l, true);
    const auto rs = mont::fpga::AnalyzeNetlist(*single.netlist);
    const auto rd = mont::fpga::AnalyzeNetlist(*dual.netlist);
    std::printf("%6zu | %10zu %10zu %6.1f%% | %9.3f %9.3f | %9zu %9zu\n", l,
                rs.slices, rd.slices,
                100.0 * (static_cast<double>(rd.slices) /
                             static_cast<double>(rs.slices) -
                         1.0),
                rs.clock_period_ns, rd.clock_period_ns, rs.luts, rd.luts);
  }

  // Functional demo: the same gate-level circuit multiplying in both
  // fields, switched by one input pin.
  std::printf("\n--- one netlist, two fields (l = 8) ---\n");
  {
    const std::size_t l = 8;
    const auto gen = mont::core::BuildMmmcNetlist(l, true);
    mont::rtl::Simulator sim(*gen.netlist);
    const auto run = [&](bool gfp, const BigUInt& modulus, const BigUInt& x,
                         const BigUInt& y) {
      sim.SetInput(gen.fsel, gfp);
      for (std::size_t b = 0; b < l; ++b) {
        sim.SetInput(gen.n_in[b], modulus.Bit(b));
      }
      for (std::size_t b = 0; b <= l; ++b) {
        sim.SetInput(gen.x_in[b], x.Bit(b));
        sim.SetInput(gen.y_in[b], y.Bit(b));
      }
      sim.SetInput(gen.start, true);
      sim.Tick();
      sim.SetInput(gen.start, false);
      while (!sim.Peek(gen.done)) sim.Tick();
      BigUInt out;
      for (std::size_t b = 0; b < gen.result.size(); ++b) {
        if (sim.Peek(gen.result[b])) out.SetBit(b, true);
      }
      sim.Tick();
      return out;
    };

    // GF(p): N = 239.
    const BigUInt n{239}, x{100}, y{200};
    const BigUInt gfp = run(true, n, x, y);
    mont::core::Mmmc reference(n);
    std::printf("fsel=1 (GF(p), N=239):    Mont(100,200) = %-4s %s\n",
                gfp.ToDec().c_str(),
                gfp == reference.Multiply(x, y) ? "[matches behavioural model]"
                                                : "[MISMATCH]");

    // GF(2^8): AES polynomial (low bits; x^8 implicit).
    const BigUInt f{0x11b}, a{0x57}, b{0x83};
    const BigUInt gf2 = run(false, BigUInt{0x1b}, a, b);
    std::printf("fsel=0 (GF(2^8), AES f):  Mont(0x57,0x83) = 0x%-3s %s\n",
                gf2.ToHex().c_str(),
                gf2 == mont::bignum::gf2::MontMul(a, b, f)
                    ? "[matches polynomial reference]"
                    : "[MISMATCH]");
  }
  std::printf("\n(Dual-field costs a few percent of area and no clock — the "
              "conclusion of the\nSavaş/Tenca/Koç line of work, reproduced "
              "on this architecture.)\n");
  return 0;
}
