// bench_dualfield — ablation: the Savaş-style dual-field extension (§2
// related work).  Measures what it costs to make the paper's multiplier
// serve GF(2^m) alongside GF(p): carry-gating ANDs on an fsel line, a
// regular cell at the top position, nothing else.  Prints area/Tp for the
// single-field and dual-field circuits across l, plus a functional demo in
// both fields on the same netlist — driven through the "netlist-sim" and
// "mmmc" engine-registry backends.
//
// Writes BENCH_dualfield.json (see bench_json.hpp) so CI can track the
// area/clock overhead; --smoke cuts the l sweep for the ctest `perf`
// label.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "bignum/gf2.hpp"
#include "bignum/random.hpp"
#include "core/engine.hpp"
#include "core/netlist_gen.hpp"
#include "core/sim_drivers.hpp"
#include "fpga/device_model.hpp"

int main(int argc, char** argv) {
  using mont::bignum::BigUInt;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  std::vector<mont::bench::JsonRow> json_rows;

  std::printf("=== ablation: dual-field (GF(p) + GF(2^m)) multiplier ===\n\n");
  std::printf("%6s | %10s %10s %7s | %9s %9s | %9s %9s\n", "l", "1F slices",
              "2F slices", "extra", "1F Tp", "2F Tp", "1F LUTs", "2F LUTs");
  std::printf("-------+-------------------------------+---------------------+"
              "--------------------\n");
  const std::vector<std::size_t> sweep =
      smoke ? std::vector<std::size_t>{32u, 64u, 128u}
            : std::vector<std::size_t>{32u, 64u, 128u, 256u, 512u};
  for (const std::size_t l : sweep) {
    const auto single = mont::core::BuildMmmcNetlist(l, false);
    const auto dual = mont::core::BuildMmmcNetlist(l, true);
    const auto rs = mont::fpga::AnalyzeNetlist(*single.netlist);
    const auto rd = mont::fpga::AnalyzeNetlist(*dual.netlist);
    const double extra_percent =
        100.0 * (static_cast<double>(rd.slices) /
                     static_cast<double>(rs.slices) -
                 1.0);
    std::printf("%6zu | %10zu %10zu %6.1f%% | %9.3f %9.3f | %9zu %9zu\n", l,
                rs.slices, rd.slices, extra_percent, rs.clock_period_ns,
                rd.clock_period_ns, rs.luts, rd.luts);
    json_rows.push_back({
        {"l", l},
        {"single_field_slices", rs.slices},
        {"dual_field_slices", rd.slices},
        {"extra_area_percent", extra_percent},
        {"single_field_tp_ns", rs.clock_period_ns},
        {"dual_field_tp_ns", rd.clock_period_ns},
        {"single_field_luts", rs.luts},
        {"dual_field_luts", rd.luts},
    });
  }

  // Functional demo: the *same* dual-field gate-level circuit multiplying
  // in both fields, switched by its fsel input pin, cross-checked against
  // the registry's behavioural "mmmc" backend per field.
  std::printf("\n--- one netlist, two fields (l = 8) ---\n");
  {
    const std::size_t l = 8;
    const auto gen = mont::core::BuildMmmcNetlist(l, /*dual_field=*/true);
    mont::core::MmmcSimDriver driver(gen);

    // GF(p): N = 239, fsel = 1.
    const BigUInt n{239}, x{100}, y{200};
    driver.LoadModulus(n);
    driver.SelectField(true);
    BigUInt gfp;
    bool gfp_ok = driver.TryMultiply(x, y, &gfp);
    gfp_ok = gfp_ok && gfp == mont::core::MakeEngine("mmmc", n)->Multiply(x, y);
    std::printf("fsel=1 (GF(p), N=239):    Mont(100,200) = %-4s %s\n",
                gfp.ToDec().c_str(),
                gfp_ok ? "[matches behavioural model]" : "[MISMATCH]");

    // GF(2^8): AES polynomial (low bits on n_in; x^8 implicit), fsel = 0.
    const BigUInt f{0x11b}, a{0x57}, b{0x83};
    driver.LoadModulus(BigUInt{0x1b});
    driver.SelectField(false);
    BigUInt gf2;
    bool gf2_ok = driver.TryMultiply(a, b, &gf2);
    gf2_ok = gf2_ok && gf2 == mont::bignum::gf2::MontMul(a, b, f);
    std::printf("fsel=0 (GF(2^8), AES f):  Mont(0x57,0x83) = 0x%-3s %s\n",
                gf2.ToHex().c_str(),
                gf2_ok ? "[matches polynomial reference]" : "[MISMATCH]");
    json_rows.push_back({
        {"kind", "functional_demo"},
        {"l", 8},
        {"gfp_verified", gfp_ok},
        {"gf2_verified", gf2_ok},
    });
  }
  const std::string path =
      mont::bench::WriteBenchJson("dualfield", json_rows, {{"smoke", smoke}});
  std::printf("\n(Dual-field costs a few percent of area and no clock — the "
              "conclusion of the\nSavaş/Tenca/Koç line of work, reproduced "
              "on this architecture.)\nJSON written to %s\n", path.c_str());
  return 0;
}
