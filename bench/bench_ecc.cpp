// bench_ecc — the paper's §5 future-work direction quantified: elliptic
// curve point multiplication over GF(p) built from nothing but the MMMC
// (the curve's field arithmetic runs on the engine registry's bit-serial
// backend — the paper's Algorithm 2).  Prints field-multiplication counts
// and modelled latency on the Virtex-E for P-192 scalar multiplication,
// and the ECC-vs-RSA comparison the paper's introduction motivates
// (equivalent security at smaller sizes).
//
// Writes BENCH_ecc.json (see bench_json.hpp) so CI can track the modelled
// latencies; --smoke cuts the scalar sweep for the ctest `perf` label.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "bignum/random.hpp"
#include "core/netlist_gen.hpp"
#include "core/schedule.hpp"
#include "crypto/ecc.hpp"
#include "fpga/device_model.hpp"

int main(int argc, char** argv) {
  using mont::bignum::BigUInt;
  using mont::crypto::Curve;
  using mont::crypto::CurveParams;
  using mont::crypto::EccStats;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  std::vector<mont::bench::JsonRow> json_rows;

  std::printf("=== §5 future work: ECC point multiplication on the MMMC ===\n\n");

  const Curve curve(CurveParams::Secp192r1());
  const std::size_t l = curve.Params().p.BitLength();
  const auto gen = mont::core::BuildMmmcNetlist(l);
  const auto fpga = mont::fpga::AnalyzeNetlist(*gen.netlist);
  std::printf("curve: secp192r1 (l = %zu), MMMC: %zu slices, Tp = %.3f ns, "
              "field engine: %s\n\n",
              l, fpga.slices, fpga.clock_period_ns,
              std::string(curve.FieldEngine().Name()).c_str());

  mont::bignum::RandomBigUInt rng(0xecc1u);
  std::printf("%18s | %10s %10s | %12s | %10s\n", "scalar bits", "muls",
              "squares", "MMM cycles", "time (ms)");
  std::printf("-------------------+-----------------------+--------------+----"
              "-------\n");
  const std::vector<std::size_t> sweep =
      smoke ? std::vector<std::size_t>{32u, 64u}
            : std::vector<std::size_t>{32u, 64u, 128u, 160u, 192u};
  for (const std::size_t kbits : sweep) {
    const BigUInt k = rng.ExactBits(kbits);
    EccStats stats;
    const auto point = curve.ScalarMul(k, curve.Generator(), &stats);
    const std::uint64_t cycles = stats.ModeledCycles(l);
    const double ms =
        static_cast<double>(cycles) * fpga.clock_period_ns * 1e-6;
    const bool on_curve = curve.IsOnCurve(point);
    std::printf("%18zu | %10llu %10llu | %12llu | %10.3f   %s\n", kbits,
                static_cast<unsigned long long>(stats.field_mults),
                static_cast<unsigned long long>(stats.field_squares),
                static_cast<unsigned long long>(cycles), ms,
                on_curve ? "(on curve)" : "(OFF CURVE!)");
    json_rows.push_back({
        {"kind", "scalar_mul"},
        {"scalar_bits", kbits},
        {"field_mults", stats.field_mults},
        {"field_squares", stats.field_squares},
        {"mmm_cycles", cycles},
        {"time_ms", ms},
        {"on_curve", on_curve},
    });
  }

  // --- the introduction's motivation: ECC vs RSA at equivalent security ---
  std::printf("\n--- ECC-192 point multiplication vs RSA-1024 private "
              "exponentiation ---\n");
  {
    EccStats stats;
    const BigUInt k = rng.ExactBits(192);
    curve.ScalarMul(k, curve.Generator(), &stats);
    const std::uint64_t ecc_cycles = stats.ModeledCycles(192);
    const auto gen1024 = mont::core::BuildMmmcNetlist(1024);
    const auto fpga1024 = mont::fpga::AnalyzeNetlist(*gen1024.netlist);
    const std::uint64_t rsa_cycles =
        mont::core::ExponentiationAverageCycles(1024);
    const double ecc_ms =
        static_cast<double>(ecc_cycles) * fpga.clock_period_ns * 1e-6;
    const double rsa_ms =
        static_cast<double>(rsa_cycles) * fpga1024.clock_period_ns * 1e-6;
    std::printf("  ECC-192 scalar mult : %12llu cycles  %8.3f ms  on %zu "
                "slices\n",
                static_cast<unsigned long long>(ecc_cycles), ecc_ms,
                fpga.slices);
    std::printf("  RSA-1024 modexp     : %12llu cycles  %8.3f ms  on %zu "
                "slices\n",
                static_cast<unsigned long long>(rsa_cycles), rsa_ms,
                fpga1024.slices);
    std::printf("  -> ECC %.1fx faster on a %.1fx smaller multiplier at "
                "comparable security\n",
                rsa_ms / ecc_ms,
                static_cast<double>(fpga1024.slices) /
                    static_cast<double>(fpga.slices));
    json_rows.push_back({
        {"kind", "ecc_vs_rsa"},
        {"ecc_cycles", ecc_cycles},
        {"ecc_ms", ecc_ms},
        {"ecc_slices", fpga.slices},
        {"rsa_cycles", rsa_cycles},
        {"rsa_ms", rsa_ms},
        {"rsa_slices", fpga1024.slices},
        {"speedup", rsa_ms / ecc_ms},
    });
  }
  const std::string path =
      mont::bench::WriteBenchJson("ecc", json_rows, {{"smoke", smoke}});
  std::printf("\n(\"A cryptographic device dealing with both types of PKC "
              "would be very useful\" — the\nsame MMMC serves both: flat "
              "clock across l is what makes the dual use work.)\n"
              "JSON written to %s\n", path.c_str());
  return 0;
}
