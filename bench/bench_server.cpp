// bench_server — the signing-service front-end under load: goodput
// versus offered load, shed fraction, and latency percentiles.
//
// Three sections:
//
//   * admission_model — single-threaded, so the token-bucket arithmetic
//     is exact: a tenant with an 8-token burst and an (effectively)
//     never-refilling bucket offered 24 sequential requests yields
//     exactly 8 signatures and 16 typed BACKPRESSURE refusals.  These
//     counts are model-derived and drift-gated strictly.
//   * deadline_model — every request carries a 1-tick relative deadline
//     (the service clock is nanoseconds), so all of them are cancelled
//     at claim time: DEADLINE_EXCEEDED responses and the job-level
//     cancelled counter are exact.
//   * sweep — closed-loop load generator: T client threads (T doubling
//     per level) each push K requests through the full wire codec with
//     no retries.  Reported goodput (verified signatures/sec), offered
//     rate, shed fraction and p50/p95/p99 latency are host-throughput
//     measurements: the JSON keys carry wall/per_sec markers so
//     bench_drift_check tracks the row identity strictly but skips the
//     host-dependent numbers.
//
// The bench gates itself: goodput past saturation must not collapse
// (highest-load goodput >= 50% of peak goodput), no bad signature may
// ever be released, and the job-level counters must conserve.  Any
// violation exits nonzero, so `ctest -L perf` catches an overload
// regression without needing a calibrated host.
//
// Writes BENCH_server.json (bench_json.hpp); --smoke bounds the sweep
// for the ctest `perf` label.  `--trace-out FILE` attaches an
// obs::Tracer to the sweep's services and dumps the request-lifecycle
// trace as chrome://tracing JSON.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "bignum/random.hpp"
#include "obs/trace.hpp"
#include "crypto/rsa.hpp"
#include "server/client.hpp"
#include "server/keystore.hpp"
#include "server/signing_service.hpp"
#include "server/transport.hpp"
#include "server/wire.hpp"

namespace {

namespace server = mont::server;
using Clock = std::chrono::steady_clock;

// Far beyond any run's duration: the bucket never refills mid-bench.
constexpr std::uint64_t kNeverRefillTicks = 3'600'000'000'000ull;

const mont::crypto::RsaKeyPair& BenchKey() {
  static const mont::crypto::RsaKeyPair key = [] {
    mont::bignum::RandomBigUInt rng(0xbe9c45e12ull);
    return mont::crypto::GenerateRsaKey(512, rng);
  }();
  return key;
}

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

// --- admission_model: exact token-bucket outcome ---------------------------

mont::bench::JsonRow AdmissionModelRow() {
  server::Keystore keystore;
  server::TenantConfig tenant;
  tenant.name = "bucketed";
  tenant.burst = 8;
  tenant.refill_period_ticks = kNeverRefillTicks;
  keystore.AddTenant(1, tenant);
  keystore.AddKey(1, 1, BenchKey());
  server::SigningService service(std::move(keystore));
  server::InProcTransport transport(service);

  const std::size_t offered = 24;
  std::size_t ok = 0, backpressure = 0;
  for (std::size_t i = 0; i < offered; ++i) {
    server::SignRequest request;
    request.request_id = i + 1;
    request.tenant_id = 1;
    request.key_id = 1;
    request.message = {'a', static_cast<std::uint8_t>(i)};
    const auto response = transport.Call(request).get();
    if (!response) continue;
    if (response->status == server::StatusCode::kOk) ++ok;
    if (response->status == server::StatusCode::kRejectedBackpressure) {
      ++backpressure;
    }
  }
  service.Wait();
  std::printf("admission_model: %zu offered -> %zu ok, %zu backpressure\n",
              offered, ok, backpressure);
  return {{"stage", "admission_model"},
          {"offered", static_cast<unsigned long long>(offered)},
          {"ok", static_cast<unsigned long long>(ok)},
          {"backpressure", static_cast<unsigned long long>(backpressure)},
          {"backpressure_fraction",
           static_cast<double>(backpressure) / static_cast<double>(offered)}};
}

// --- deadline_model: every request expires before dispatch -----------------

mont::bench::JsonRow DeadlineModelRow() {
  server::Keystore keystore;
  server::TenantConfig tenant;
  tenant.name = "deadlined";
  keystore.AddTenant(1, tenant);
  keystore.AddKey(1, 1, BenchKey());
  server::SigningService service(std::move(keystore));
  server::InProcTransport transport(service);

  const std::size_t offered = 8;
  std::size_t deadline_exceeded = 0;
  for (std::size_t i = 0; i < offered; ++i) {
    server::SignRequest request;
    request.request_id = i + 1;
    request.tenant_id = 1;
    request.key_id = 1;
    request.deadline_ticks = 1;  // expired by the time a worker claims it
    request.message = {'d', static_cast<std::uint8_t>(i)};
    const auto response = transport.Call(request).get();
    if (response &&
        response->status == server::StatusCode::kDeadlineExceeded) {
      ++deadline_exceeded;
    }
  }
  service.Wait();
  const auto jobs = service.ServiceSnapshot();
  std::printf("deadline_model: %zu offered -> %zu DEADLINE_EXCEEDED "
              "(%llu jobs cancelled in-scheduler)\n",
              offered, deadline_exceeded,
              static_cast<unsigned long long>(jobs.deadline_exceeded));
  return {{"stage", "deadline_model"},
          {"offered", static_cast<unsigned long long>(offered)},
          {"deadline_exceeded",
           static_cast<unsigned long long>(deadline_exceeded)},
          {"jobs_cancelled",
           static_cast<unsigned long long>(jobs.deadline_exceeded)}};
}

// --- sweep: closed-loop goodput vs offered load ----------------------------

struct SweepPoint {
  std::size_t threads = 0;
  std::size_t offered = 0;
  std::size_t ok = 0;
  std::size_t refused = 0;  // typed backpressure/shed
  double wall_seconds = 0;
  double goodput_per_sec = 0;
  double offered_per_sec = 0;
  double p50_us = 0, p95_us = 0, p99_us = 0;
};

SweepPoint RunSweepLevel(std::size_t threads, std::size_t per_thread,
                         std::size_t workers, mont::obs::Tracer* tracer) {
  server::Keystore keystore;
  server::TenantConfig tenant;
  tenant.name = "load";
  tenant.burst = 1u << 20;  // the bucket is not the bottleneck here
  tenant.max_in_flight = 2 * workers;
  keystore.AddTenant(1, tenant);
  keystore.AddKey(1, 1, BenchKey());
  server::SigningService::Options options;
  options.service.workers = workers;
  options.service.tracer = tracer;
  options.admission.queue_high_watermark = 2 * workers;
  server::SigningService service(std::move(keystore), options);
  server::InProcTransport transport(service);

  SweepPoint point;
  point.threads = threads;
  point.offered = threads * per_thread;
  std::vector<std::vector<double>> latencies(threads);
  std::vector<std::size_t> oks(threads, 0), refusals(threads, 0);
  std::vector<std::thread> pool;
  const auto start = Clock::now();
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      for (std::size_t i = 0; i < per_thread; ++i) {
        server::SignRequest request;
        request.request_id = t * per_thread + i + 1;
        request.tenant_id = 1;
        request.key_id = 1;
        request.message = {static_cast<std::uint8_t>(t),
                           static_cast<std::uint8_t>(i)};
        const auto sent = Clock::now();
        const auto response = transport.Call(request).get();
        const double micros =
            std::chrono::duration<double, std::micro>(Clock::now() - sent)
                .count();
        if (!response) continue;
        if (response->status == server::StatusCode::kOk) {
          ++oks[t];
          latencies[t].push_back(micros);
        } else if (response->status ==
                       server::StatusCode::kRejectedBackpressure ||
                   response->status == server::StatusCode::kShedOverload) {
          ++refusals[t];
        }
      }
    });
  }
  for (std::thread& thread : pool) thread.join();
  service.Wait();
  point.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();

  std::vector<double> all;
  for (std::size_t t = 0; t < threads; ++t) {
    point.ok += oks[t];
    point.refused += refusals[t];
    all.insert(all.end(), latencies[t].begin(), latencies[t].end());
  }
  std::sort(all.begin(), all.end());
  point.p50_us = Percentile(all, 0.50);
  point.p95_us = Percentile(all, 0.95);
  point.p99_us = Percentile(all, 0.99);
  point.goodput_per_sec =
      point.wall_seconds > 0
          ? static_cast<double>(point.ok) / point.wall_seconds
          : 0;
  point.offered_per_sec =
      point.wall_seconds > 0
          ? static_cast<double>(point.offered) / point.wall_seconds
          : 0;

  const auto counters = service.Snapshot();
  const auto jobs = service.ServiceSnapshot();
  if (counters.bad_signatures_released != 0) {
    std::fprintf(stderr, "FATAL: bad signature released under load\n");
    std::exit(1);
  }
  if (jobs.jobs_submitted != jobs.jobs_completed + jobs.deadline_exceeded) {
    std::fprintf(stderr, "FATAL: job counters do not conserve (%llu != "
                         "%llu + %llu)\n",
                 static_cast<unsigned long long>(jobs.jobs_submitted),
                 static_cast<unsigned long long>(jobs.jobs_completed),
                 static_cast<unsigned long long>(jobs.deadline_exceeded));
    std::exit(1);
  }
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    }
  }
  mont::obs::Tracer tracer;
  mont::obs::Tracer* const trace_ptr = trace_out.empty() ? nullptr : &tracer;
  const std::size_t workers = 2;
  const std::size_t per_thread = smoke ? 6 : 24;
  const std::vector<std::size_t> levels =
      smoke ? std::vector<std::size_t>{1, 2, 4, 8}
            : std::vector<std::size_t>{1, 2, 4, 8, 16, 32};

  std::printf("=== bench_server: signing service under load ===\n\n");
  std::vector<mont::bench::JsonRow> rows;
  rows.push_back(AdmissionModelRow());
  rows.push_back(DeadlineModelRow());

  std::printf("\nsweep: %zu workers, %zu requests/thread, closed loop\n",
              workers, per_thread);
  std::printf("%8s %9s %7s %8s %12s %10s %10s %10s\n", "threads", "offered",
              "ok", "refused", "goodput/s", "p50 us", "p95 us", "p99 us");
  std::vector<SweepPoint> points;
  for (const std::size_t threads : levels) {
    const SweepPoint point =
        RunSweepLevel(threads, per_thread, workers, trace_ptr);
    std::printf("%8zu %9zu %7zu %8zu %12.1f %10.1f %10.1f %10.1f\n",
                point.threads, point.offered, point.ok, point.refused,
                point.goodput_per_sec, point.p50_us, point.p95_us,
                point.p99_us);
    const double shed_fraction =
        point.offered > 0 ? static_cast<double>(point.refused) /
                                static_cast<double>(point.offered)
                          : 0;
    rows.push_back(
        {{"stage", "sweep"},
         {"threads", static_cast<unsigned long long>(point.threads)},
         {"offered", static_cast<unsigned long long>(point.offered)},
         {"workers", static_cast<unsigned long long>(workers)},
         // Host-throughput measurements: wall/per_sec keys are exempt
         // from the drift gate (bench_drift_check.cpp's skip class).
         {"ok_per_sec_goodput", point.goodput_per_sec},
         {"offered_per_sec", point.offered_per_sec},
         {"shed_fraction_wall", shed_fraction},
         {"p50_wall_us", point.p50_us},
         {"p95_wall_us", point.p95_us},
         {"p99_wall_us", point.p99_us}});
    points.push_back(point);
  }

  // Self-gate: goodput past saturation must degrade gracefully, not
  // collapse.  (Admission sheds excess load, so the service keeps
  // signing near its capacity even when offered 16x more.)
  double peak = 0;
  for (const SweepPoint& point : points) {
    peak = std::max(peak, point.goodput_per_sec);
  }
  const double last = points.back().goodput_per_sec;
  const bool no_collapse = peak <= 0 || last >= 0.5 * peak;
  std::printf("\ngoodput peak %.1f/s, at max offered load %.1f/s -> %s\n",
              peak, last, no_collapse ? "no collapse" : "COLLAPSE");

  const std::string path =
      mont::bench::WriteBenchJson("server", rows, {{"smoke", smoke}});
  std::printf("wrote %s\n", path.c_str());
  if (trace_ptr != nullptr && tracer.WriteChromeJson(trace_out)) {
    std::printf("trace: %zu events -> %s (load in ui.perfetto.dev)\n",
                tracer.EventCount(), trace_out.c_str());
  }
  return no_collapse ? 0 : 1;
}
