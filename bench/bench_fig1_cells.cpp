// bench_fig1_cells — reproduces Fig. 1 of the paper: the four systolic cell
// types.  Prints each cell's gate inventory (paper's stated composition vs
// the generated netlist), verifies each cell's function exhaustively
// against its recurrence equation — 64 input combinations per bit-parallel
// simulation pass (the whole truth table of every cell fits in at most two
// passes) — and reports per-cell critical paths.
//
// Writes BENCH_fig1_cells.json (see bench_json.hpp) for the CI drift
// gate; the sweep is exhaustive and cheap, so --smoke only tags the
// artifact's meta.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/area_model.hpp"
#include "core/cells.hpp"
#include "rtl/batch_sim.hpp"
#include "rtl/components.hpp"
#include "rtl/netlist.hpp"
#include "rtl/timing.hpp"

namespace {

using mont::core::GateCounts;
using mont::rtl::Netlist;
using mont::rtl::NetId;

struct CellReport {
  const char* name;
  const char* paper_inventory;
  GateCounts counts;
  std::size_t depth_levels;
  double delay_ps;
  bool verified;
};

template <typename BuildFn, typename CheckFn>
CellReport Examine(const char* name, const char* paper, std::size_t n_inputs,
                   BuildFn&& build, CheckFn&& check) {
  Netlist nl;
  std::vector<NetId> inputs;
  for (std::size_t i = 0; i < n_inputs; ++i) {
    inputs.push_back(nl.AddInput(mont::rtl::IndexedName("i", i)));
  }
  const std::vector<NetId> outputs = build(nl, inputs);
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    nl.MarkOutput(outputs[i], mont::rtl::IndexedName("o", i));
  }
  // Exhaustive truth-table sweep, 64 input combinations per lane-packed
  // pass: lane k of pass p carries input value 64*p + k.
  mont::rtl::BatchSimulator sim(nl);
  bool ok = true;
  for (std::uint64_t base = 0; base < (1ull << n_inputs); base += 64) {
    for (std::size_t i = 0; i < n_inputs; ++i) {
      std::uint64_t word = 0;
      for (std::uint64_t lane = 0; lane < 64; ++lane) {
        if (((base + lane) >> i) & 1) word |= 1ull << lane;
      }
      sim.SetInput(inputs[i], word);
    }
    sim.Settle();
    for (std::uint64_t lane = 0;
         lane < 64 && base + lane < (1ull << n_inputs); ++lane) {
      std::uint64_t got = 0;
      for (std::size_t i = 0; i < outputs.size(); ++i) {
        if (sim.PeekLane(outputs[i], lane)) got |= 1ull << i;
      }
      if (got != check(base + lane)) ok = false;
    }
  }
  const auto stats = nl.Stats();
  const mont::rtl::TimingAnalyzer unit(nl, mont::rtl::DelayModel::Unit());
  const mont::rtl::TimingAnalyzer ps(nl, mont::rtl::DelayModel{});
  return CellReport{
      name,
      paper,
      GateCounts{stats.xor_gates, stats.and_gates, stats.or_gates, 0},
      unit.CriticalPath().logic_levels,
      ps.CriticalPath().critical_path_ps,
      ok};
}

std::uint64_t Bit(std::uint64_t v, int i) { return (v >> i) & 1; }

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  std::printf("=== Fig. 1: systolic array cells — gate inventory, function, "
              "critical path ===\n\n");

  const CellReport reports[] = {
      Examine(
          "rightmost (b)", "1 AND + 1 OR + 1 XOR", 3,
          [](Netlist& nl, const std::vector<NetId>& in) {
            const auto cell =
                mont::core::BuildRightmostCell(nl, in[0], in[1], in[2]);
            return std::vector<NetId>{cell.m, cell.c0};
          },
          [](std::uint64_t v) {
            const std::uint64_t t1 = Bit(v, 0), xy = Bit(v, 1) & Bit(v, 2);
            return (t1 ^ xy) | ((t1 | xy) << 1);  // Eq. 5 and Eq. 7
          }),
      Examine(
          "1st-bit (c)", "1 FA + 2 HA + 2 AND", 6,
          [](Netlist& nl, const std::vector<NetId>& in) {
            const auto cell = mont::core::BuildFirstBitCell(
                nl, in[0], in[1], in[2], in[3], in[4], in[5]);
            return std::vector<NetId>{cell.t, cell.c0, cell.c1};
          },
          [](std::uint64_t v) {
            // Eq. 8: t + 2c0 + 4c1 = t2 + x*y1 + m*n1 + c00.
            return Bit(v, 0) + (Bit(v, 1) & Bit(v, 2)) +
                   (Bit(v, 3) & Bit(v, 4)) + Bit(v, 5);
          }),
      Examine(
          "regular (a)", "2 FA + 1 HA + 2 AND", 7,
          [](Netlist& nl, const std::vector<NetId>& in) {
            const auto cell = mont::core::BuildRegularCell(
                nl, in[0], in[1], in[2], in[3], in[4], in[5], in[6]);
            return std::vector<NetId>{cell.t, cell.c0, cell.c1};
          },
          [](std::uint64_t v) {
            // Eq. 4: t + 2c0 + 4c1 = t_next + x*y + m*n + c0_in + 2*c1_in.
            return Bit(v, 0) + (Bit(v, 1) & Bit(v, 2)) +
                   (Bit(v, 3) & Bit(v, 4)) + Bit(v, 5) + 2 * Bit(v, 6);
          }),
      Examine(
          "leftmost (d)", "1 FA + 1 AND + 1 XOR (paper; widened: 2 FA + 1 AND)",
          6,
          [](Netlist& nl, const std::vector<NetId>& in) {
            const auto cell = mont::core::BuildLeftmostCell(
                nl, in[0], in[1], in[2], in[3], in[4], in[5]);
            return std::vector<NetId>{cell.t, cell.t_top, cell.t_top2};
          },
          [](std::uint64_t v) {
            // Widened Eq. 9: t + 2t' + 4t'' = t_l1 + x*y_l + c0 + 2(t_l2+c1).
            return Bit(v, 0) + (Bit(v, 2) & Bit(v, 3)) + Bit(v, 4) +
                   2 * (Bit(v, 1) + Bit(v, 5));
          }),
  };

  std::printf("%-14s | %-7s | %-45s | %3s %3s %3s | %6s | %9s\n", "cell",
              "verify", "paper inventory", "XOR", "AND", "OR", "levels",
              "path(ps)");
  std::printf("---------------+---------+---------------------------------------"
              "--------+-------------+--------+----------\n");
  for (const CellReport& r : reports) {
    std::printf("%-14s | %-7s | %-45s | %3zu %3zu %3zu | %6zu | %9.0f\n",
                r.name, r.verified ? "OK" : "FAIL", r.paper_inventory,
                r.counts.xor_gates, r.counts.and_gates, r.counts.or_gates,
                r.depth_levels, r.delay_ps);
  }

  std::vector<mont::bench::JsonRow> rows;
  bool all_verified = true;
  for (const CellReport& r : reports) {
    all_verified = all_verified && r.verified;
    rows.push_back({
        {"cell", r.name},
        {"verified", r.verified},
        {"xor_gates", r.counts.xor_gates},
        {"and_gates", r.counts.and_gates},
        {"or_gates", r.counts.or_gates},
        {"logic_levels", r.depth_levels},
        {"critical_path_ps", r.delay_ps},
    });
  }
  const std::string path = mont::bench::WriteBenchJson(
      "fig1_cells", rows, {{"smoke", smoke}});

  std::printf("\nThe regular cell dominates the array; its registered path "
              "(2 FA + 1 HA per the paper)\nsets the clock and is the same "
              "for every operand length.\nJSON written to %s\n", path.c_str());
  return all_verified ? 0 : 1;
}
