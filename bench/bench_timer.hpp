// bench_timer.hpp — a minimal self-calibrating timing loop, so the
// microbenchmark binaries carry no external benchmark-framework
// dependency.  Wall-clock numbers are host-dependent by nature; the CI
// drift gate skips keys named wall_* (see bench_drift_check.cpp), so
// benches report them for humans and trend plots, not as a hard gate.
#pragma once

#include <chrono>
#include <cstdint>

namespace mont::bench {

/// Keeps `value` observable so the timed expression is not optimized out.
template <typename T>
inline void KeepAlive(const T& value) {
  asm volatile("" : : "g"(&value) : "memory");
}

struct TimedResult {
  std::uint64_t iterations = 0;
  double wall_seconds = 0;     ///< total time of the final measured batch
  double wall_ns_per_op = 0;
};

/// Runs `fn` in growing batches until one batch spans at least
/// `min_seconds`, then reports that batch.  One warmup call pays lazy
/// initialisation outside the measurement.
template <typename Fn>
TimedResult TimeIt(Fn&& fn, double min_seconds) {
  using Clock = std::chrono::steady_clock;
  fn();  // warmup
  std::uint64_t n = 1;
  for (;;) {
    const Clock::time_point begin = Clock::now();
    for (std::uint64_t i = 0; i < n; ++i) fn();
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - begin).count();
    if (elapsed >= min_seconds || n >= (1ull << 30)) {
      TimedResult result;
      result.iterations = n;
      result.wall_seconds = elapsed;
      result.wall_ns_per_op = elapsed / static_cast<double>(n) * 1e9;
      return result;
    }
    // Aim past the threshold in one more batch, growing at least 2x.
    const double scale =
        elapsed > 0 ? (1.5 * min_seconds) / elapsed : 2.0;
    const std::uint64_t next = static_cast<std::uint64_t>(
        static_cast<double>(n) * (scale > 2.0 ? scale : 2.0));
    n = next > n ? next : n + 1;
  }
}

}  // namespace mont::bench
