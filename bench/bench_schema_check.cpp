// bench_schema_check — validates BENCH_*.json artifacts against the flat
// bench schema (bench_json.hpp):
//
//   { "bench": <non-empty string>, "schema": 1, <scalar meta...>,
//     "rows": [ { key: scalar, ... }, ... ] }   // rows non-empty, flat
//
// Usage: bench_schema_check <file-or-directory>...
// Directories are scanned (non-recursively) for BENCH_*.json.  Exits
// non-zero — failing the CI step / ctest `perf` label — if any artifact
// is malformed or no artifact is found at all, so a bench that silently
// stops emitting its JSON breaks the build instead of the trend charts.
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader (objects/arrays/strings/numbers/bools) — just enough
// structure checking for the flat bench schema; values are not retained
// beyond what the checks need.
// ---------------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  struct Scalar {
    enum class Kind { kString, kNumber, kBool } kind = Kind::kString;
    std::string string_value;
    double number_value = 0;
  };

  void Fail(const std::string& why) {
    std::size_t line = 1;
    for (std::size_t i = 0; i < at_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++line;
    }
    std::ostringstream message;
    message << why << " (line " << line << ")";
    throw std::runtime_error(message.str());
  }

  void SkipSpace() {
    while (at_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[at_]))) {
      ++at_;
    }
  }

  char Peek() {
    SkipSpace();
    if (at_ >= text_.size()) Fail("unexpected end of input");
    return text_[at_];
  }

  void Expect(char c) {
    if (Peek() != c) Fail(std::string("expected '") + c + "'");
    ++at_;
  }

  bool TryConsume(char c) {
    SkipSpace();
    if (at_ < text_.size() && text_[at_] == c) {
      ++at_;
      return true;
    }
    return false;
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      if (at_ >= text_.size()) Fail("unterminated string");
      const char c = text_[at_++];
      if (c == '"') break;
      if (c == '\\') {
        if (at_ >= text_.size()) Fail("unterminated escape");
        const char esc = text_[at_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (at_ + 4 > text_.size()) Fail("truncated \\u escape");
            for (int i = 0; i < 4; ++i) {
              if (!std::isxdigit(static_cast<unsigned char>(text_[at_ + i]))) {
                Fail("bad \\u escape");
              }
            }
            at_ += 4;
            out += '?';  // code point value irrelevant to the schema
            break;
          }
          default: Fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  Scalar ParseScalar() {
    Scalar scalar;
    const char c = Peek();
    if (c == '"') {
      scalar.kind = Scalar::Kind::kString;
      scalar.string_value = ParseString();
      return scalar;
    }
    if (c == 't' || c == 'f') {
      const char* word = c == 't' ? "true" : "false";
      for (const char* p = word; *p != '\0'; ++p) {
        if (at_ >= text_.size() || text_[at_++] != *p) Fail("bad literal");
      }
      scalar.kind = Scalar::Kind::kBool;
      return scalar;
    }
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      const std::size_t start = at_;
      ++at_;
      while (at_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[at_])) ||
              text_[at_] == '.' || text_[at_] == 'e' || text_[at_] == 'E' ||
              text_[at_] == '+' || text_[at_] == '-')) {
        ++at_;
      }
      scalar.kind = Scalar::Kind::kNumber;
      try {
        scalar.number_value = std::stod(text_.substr(start, at_ - start));
      } catch (...) {
        Fail("malformed number");
      }
      return scalar;
    }
    Fail("expected a scalar (string/number/bool)");
    return scalar;  // unreachable
  }

  bool AtEnd() {
    SkipSpace();
    return at_ >= text_.size();
  }

 private:
  const std::string& text_;
  std::size_t at_ = 0;
};

/// Parses and validates one artifact; throws std::runtime_error on any
/// schema violation.
void CheckArtifact(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open file");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  Parser parser(text);

  bool seen_bench = false, seen_schema = false, seen_rows = false;
  parser.Expect('{');
  bool first_member = true;
  while (true) {
    if (!first_member) {
      if (!parser.TryConsume(',')) break;
    } else if (parser.Peek() == '}') {
      break;
    }
    first_member = false;
    const std::string key = parser.ParseString();
    parser.Expect(':');
    if (key == "bench") {
      const auto scalar = parser.ParseScalar();
      if (scalar.kind != Parser::Scalar::Kind::kString ||
          scalar.string_value.empty()) {
        parser.Fail("\"bench\" must be a non-empty string");
      }
      seen_bench = true;
    } else if (key == "schema") {
      const auto scalar = parser.ParseScalar();
      if (scalar.kind != Parser::Scalar::Kind::kNumber ||
          scalar.number_value != 1.0) {
        parser.Fail("\"schema\" must be the number 1");
      }
      seen_schema = true;
    } else if (key == "rows") {
      parser.Expect('[');
      std::size_t row_count = 0;
      if (parser.Peek() != ']') {
        do {
          parser.Expect('{');
          std::size_t member_count = 0;
          if (parser.Peek() != '}') {
            do {
              const std::string row_key = parser.ParseString();
              if (row_key.empty()) parser.Fail("empty row key");
              parser.Expect(':');
              parser.ParseScalar();  // rows are flat: scalars only
              ++member_count;
            } while (parser.TryConsume(','));
          }
          parser.Expect('}');
          if (member_count == 0) parser.Fail("empty row object");
          ++row_count;
        } while (parser.TryConsume(','));
      }
      parser.Expect(']');
      if (row_count == 0) parser.Fail("\"rows\" must be non-empty");
      seen_rows = true;
    } else {
      parser.ParseScalar();  // meta members are scalars
    }
  }
  parser.Expect('}');
  if (!parser.AtEnd()) parser.Fail("trailing content after the object");
  if (!seen_bench) throw std::runtime_error("missing \"bench\"");
  if (!seen_schema) throw std::runtime_error("missing \"schema\"");
  if (!seen_rows) throw std::runtime_error("missing \"rows\"");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: bench_schema_check <BENCH_*.json or directory>...\n");
    return 2;
  }
  std::vector<std::filesystem::path> artifacts;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg(argv[i]);
    if (std::filesystem::is_directory(arg)) {
      for (const auto& entry : std::filesystem::directory_iterator(arg)) {
        const std::string name = entry.path().filename().string();
        if (entry.is_regular_file() && name.rfind("BENCH_", 0) == 0 &&
            entry.path().extension() == ".json") {
          artifacts.push_back(entry.path());
        }
      }
    } else {
      artifacts.push_back(arg);
    }
  }
  if (artifacts.empty()) {
    std::fprintf(stderr, "bench_schema_check: no BENCH_*.json artifacts "
                         "found — did the perf benches run?\n");
    return 1;
  }
  int failures = 0;
  for (const auto& path : artifacts) {
    try {
      CheckArtifact(path);
      std::printf("ok       %s\n", path.string().c_str());
    } catch (const std::exception& error) {
      std::printf("MALFORMED %s: %s\n", path.string().c_str(), error.what());
      ++failures;
    }
  }
  if (failures != 0) {
    std::fprintf(stderr, "bench_schema_check: %d malformed artifact(s)\n",
                 failures);
    return 1;
  }
  std::printf("%zu artifact(s) conform to the bench schema\n",
              artifacts.size());
  return 0;
}
