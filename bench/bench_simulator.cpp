// bench_simulator — the gate-level simulation engines head to head: the
// scalar (1-lane) Simulator vs the 64-lane bit-parallel BatchSimulator,
// both running full Montgomery multiplications on generated MMMC netlists
// across operand lengths.  Metrics per netlist size:
//
//   * cycles/s   — clock edges simulated per second (scalar), and
//                  lane-cycles/s for the batch engine (edges x 64 lanes,
//                  i.e. how many scalar-equivalent cycles it retires);
//   * gate-evals/s — cycles/s x combinational nodes, the raw event rate;
//   * speedup    — batch lane-cycles/s over scalar cycles/s.
//
// Every batch lane is verified against the software Montgomery reference
// before timing starts, so the numbers are for a simulator that is
// provably still correct.  Writes BENCH_simulator.json (see
// bench_json.hpp) for CI trend tracking; --smoke restricts the sweep for
// the ctest `perf` label.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "bignum/biguint.hpp"
#include "bignum/montgomery.hpp"
#include "bignum/random.hpp"
#include "core/netlist_gen.hpp"
#include "core/sim_drivers.hpp"
#include "rtl/batch_sim.hpp"
#include "rtl/compiled.hpp"
#include "rtl/simulator.hpp"

namespace {

using mont::bignum::BigUInt;
using mont::core::MmmcNetlist;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kLanes = mont::rtl::BatchSimulator::kLanes;

double Seconds(Clock::time_point begin, Clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

struct EngineRate {
  double cycles_per_sec = 0;  // clock edges / s (per engine pass)
  std::uint64_t edges = 0;
  double seconds = 0;
};

/// Repeats `multiply` (which returns clock edges spent) until the time
/// budget is used up.
template <typename OneMultiply>
EngineRate Measure(double budget_sec, OneMultiply&& multiply) {
  EngineRate rate;
  const Clock::time_point begin = Clock::now();
  Clock::time_point now = begin;
  do {
    rate.edges += multiply();
    now = Clock::now();
  } while (Seconds(begin, now) < budget_sec);
  rate.seconds = Seconds(begin, now);
  rate.cycles_per_sec = static_cast<double>(rate.edges) / rate.seconds;
  return rate;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::vector<std::size_t> lengths =
      smoke ? std::vector<std::size_t>{16, 64}
            : std::vector<std::size_t>{16, 32, 64, 128, 256, 512};
  const double budget = smoke ? 0.25 : 1.0;

  std::printf("=== Gate-level simulation engines: scalar vs 64-lane "
              "bit-parallel ===\n\n");
  std::printf("%6s | %9s %7s | %12s %13s | %14s | %8s\n", "l", "gates", "FFs",
              "scalar cyc/s", "batch lcyc/s", "gate-evals/s", "speedup");
  std::printf("-------+-------------------+----------------------------+"
              "----------------+---------\n");

  std::vector<mont::bench::JsonRow> rows;
  mont::bignum::RandomBigUInt rng(0x5eed5eedull);
  for (const std::size_t l : lengths) {
    const MmmcNetlist gen = mont::core::BuildMmmcNetlist(l);
    const auto stats = gen.netlist->Stats();
    const BigUInt n = rng.OddExactBits(l);
    const BigUInt two_n = n << 1;
    std::vector<BigUInt> xs, ys;
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
      xs.push_back(rng.Below(two_n));
      ys.push_back(rng.Below(two_n));
    }

    const mont::rtl::CompiledNetlist compiled(*gen.netlist);

    // Correctness gate: all 64 lanes against the software reference.
    {
      const mont::bignum::BitSerialMontgomery reference(n);
      mont::rtl::BatchSimulator sim(compiled);
      mont::core::MmmcBatchSimDriver drv(gen, sim);
      drv.LoadModulus(n);
      std::vector<BigUInt> results;
      if (!drv.TryMultiply(xs, ys, &results)) {
        std::printf("FAIL: FSM hung at l = %zu\n", l);
        return 1;
      }
      for (std::size_t lane = 0; lane < kLanes; ++lane) {
        if (results[lane] != reference.MultiplyAlg2(xs[lane], ys[lane])) {
          std::printf("FAIL: lane %zu wrong at l = %zu\n", lane, l);
          return 1;
        }
      }
    }

    mont::rtl::Simulator scalar_sim(*gen.netlist);
    mont::core::MmmcSimDriver scalar(gen, scalar_sim);
    scalar.LoadModulus(n);
    std::size_t next = 0;
    const EngineRate scalar_rate = Measure(budget, [&] {
      next = (next + 1) % kLanes;
      std::uint64_t cycles = 0;
      scalar.TryMultiply(xs[next], ys[next], nullptr, &cycles);
      return cycles + 1;  // + the OUT -> IDLE drain edge
    });

    mont::rtl::BatchSimulator batch_sim(compiled);
    mont::core::MmmcBatchSimDriver batch(gen, batch_sim);
    batch.LoadModulus(n);
    const EngineRate batch_rate = Measure(budget, [&] {
      std::uint64_t cycles = 0;
      batch.TryMultiply(xs, ys, nullptr, &cycles);
      return cycles + 1;  // + the OUT -> IDLE drain edge
    });

    const double lane_cycles = batch_rate.cycles_per_sec * kLanes;
    const double speedup = lane_cycles / scalar_rate.cycles_per_sec;
    const double gate_evals =
        lane_cycles * static_cast<double>(stats.CombinationalNodes());
    std::printf("%6zu | %9zu %7zu | %12.3e %13.3e | %14.3e | %7.1fx\n", l,
                stats.CombinationalNodes(), stats.flip_flops,
                scalar_rate.cycles_per_sec, lane_cycles, gate_evals, speedup);

    rows.push_back({
        {"l", l},
        {"gates", stats.CombinationalNodes()},
        {"flip_flops", stats.flip_flops},
        {"scalar_cycles_per_sec", scalar_rate.cycles_per_sec},
        {"batch_edges_per_sec", batch_rate.cycles_per_sec},
        {"batch_lane_cycles_per_sec", lane_cycles},
        {"gate_evals_per_sec", gate_evals},
        {"speedup_vs_scalar", speedup},
        {"active_lanes", kLanes},
    });
  }

  const std::string path = mont::bench::WriteBenchJson(
      "simulator", rows, {{"smoke", smoke}, {"lanes", kLanes}});
  std::printf("\nlane-cycles/s = clock edges/s x 64 lanes (scalar-equivalent "
              "throughput).\nJSON written to %s\n", path.c_str());
  return 0;
}
