// analysis_report — the netlist verification gate.
//
// Runs the full static-analysis pass (structural lint + secret-taint
// dataflow) and the 64-lane differential soundness crosscheck over every
// generated circuit family:
//
//   * the MMMC (single- and dual-field),
//   * the bare systolic cell array,
//   * the modular exponentiator (plain and masked-exponent).
//
// Prints one block per circuit and writes BENCH_analysis.json.  With
// --strict, exits non-zero when any circuit has a hard lint finding, a
// stale waiver, a crosscheck violation, or when the masked exponentiator
// fails to show the blinding cut (its Secret logic cone must be strictly
// smaller than the unmasked twin's).  CI runs exactly that as a gate.
//
// The emitted counts are structural, not timed, so the artifact is stable
// across machines: drift against bench/baseline/BENCH_analysis.json means
// a generator or analysis-rule change, never noise.
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analysis/crosscheck.hpp"
#include "analysis/lint.hpp"
#include "analysis/taint.hpp"
#include "bench_json.hpp"
#include "core/netlist_gen.hpp"

namespace {

struct Circuit {
  std::string name;
  std::unique_ptr<mont::rtl::Netlist> netlist;
  std::size_t crosscheck_ticks = 0;
};

struct Verdict {
  bool ok = true;
  std::vector<mont::bench::JsonRow> rows;
  // Secret logic-cone sizes of the two exponentiator variants.
  std::size_t exp_secret_logic = 0;
  std::size_t exp_masked_secret_logic = 0;
};

void Analyze(const Circuit& circuit, Verdict& verdict) {
  using namespace mont::analysis;
  const mont::rtl::Netlist& nl = *circuit.netlist;
  std::printf("=== %s (%zu nets) ===\n", circuit.name.c_str(), nl.NodeCount());

  const LintReport lint = RunLint(nl);
  std::fputs(FormatLintReport(nl, lint).c_str(), stdout);
  if (!lint.Clean() || !lint.stale_waivers.empty()) verdict.ok = false;

  const TaintReport taint = AnalyzeTaint(nl);
  std::fputs(FormatTaintSummary(nl, taint).c_str(), stdout);

  CrosscheckOptions xopts;
  xopts.ticks = circuit.crosscheck_ticks;
  const CrosscheckResult xc = RunDifferentialCrosscheck(nl, taint, xopts);
  std::fputs(FormatCrosscheckResult(nl, xc).c_str(), stdout);
  if (!xc.Sound()) verdict.ok = false;
  std::printf("\n");

  const auto count = [&](TaintLabel l) {
    return taint.logic_counts[static_cast<std::size_t>(l)];
  };
  if (circuit.name == "exp6") verdict.exp_secret_logic = count(TaintLabel::kSecret);
  if (circuit.name == "exp6_masked") {
    verdict.exp_masked_secret_logic = count(TaintLabel::kSecret);
  }
  verdict.rows.push_back({
      {"circuit", circuit.name},
      {"nets", nl.NodeCount()},
      {"lint_findings", lint.findings.size()},
      {"lint_waived", lint.waived.size()},
      {"lint_stale_waivers", lint.stale_waivers.size()},
      {"max_depth", lint.max_depth},
      {"max_fanout", lint.max_fanout},
      {"clean_logic", count(TaintLabel::kClean)},
      {"random_logic", count(TaintLabel::kRandom)},
      {"blinded_logic", count(TaintLabel::kBlinded)},
      {"secret_logic", count(TaintLabel::kSecret)},
      {"taint_sweeps", taint.sweeps},
      {"crosscheck_secret_bits", xc.secret_bits},
      {"crosscheck_violations", xc.violations.size()},
      {"crosscheck_differing_nets", xc.differing_nets},
      {"crosscheck_coverage_fraction", xc.tainted_coverage},
  });
}

}  // namespace

int main(int argc, char** argv) {
  bool strict = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--strict") == 0) strict = true;
    // --smoke accepted for bench-runner uniformity; the circuits are
    // already sized so the full run IS the smoke run (structural counts
    // must match the committed baseline bit-for-bit either way).
  }

  using mont::core::BuildExponentiatorNetlist;
  using mont::core::BuildMmmcNetlist;
  using mont::core::BuildSystolicArrayComb;
  using mont::core::ExponentiatorNetlistOptions;

  std::vector<Circuit> circuits;
  circuits.push_back({"mmmc8", BuildMmmcNetlist(8).netlist, 512});
  circuits.push_back(
      {"mmmc8_dual", BuildMmmcNetlist(8, /*dual_field=*/true).netlist, 512});
  circuits.push_back({"cells8", BuildSystolicArrayComb(8).netlist, 64});
  circuits.push_back({"exp6", BuildExponentiatorNetlist(6).netlist, 1024});
  ExponentiatorNetlistOptions masked;
  masked.mask_exponent = true;
  circuits.push_back(
      {"exp6_masked", BuildExponentiatorNetlist(6, masked).netlist, 1024});

  Verdict verdict;
  for (const Circuit& circuit : circuits) Analyze(circuit, verdict);

  const bool cut_shown =
      verdict.exp_masked_secret_logic < verdict.exp_secret_logic;
  std::printf("blinding cut: masked exponentiator has %zu secret logic "
              "net(s) vs %zu unmasked — %s\n",
              verdict.exp_masked_secret_logic, verdict.exp_secret_logic,
              cut_shown ? "cut shown" : "NO CUT");
  if (!cut_shown) verdict.ok = false;

  const std::string path = mont::bench::WriteBenchJson(
      "analysis", verdict.rows,
      {{"strict", strict}, {"circuits", verdict.rows.size()}});
  std::printf("wrote %s\n", path.c_str());

  if (strict && !verdict.ok) {
    std::printf("analysis_report --strict: FAILING (see findings above)\n");
    return 1;
  }
  std::printf("analysis_report: %s\n", verdict.ok ? "OK" : "FINDINGS PRESENT");
  return 0;
}
