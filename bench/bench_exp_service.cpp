// bench_exp_service — the batched async exponentiation service under load:
// jobs/sec versus worker count, pairing on/off, and queue depth.
//
// Two throughput views matter and the bench reports both:
//
//   * wall jobs/s — host-side service throughput (queue + worker pool
//     overhead on this machine's cores);
//   * modelled jobs per gigacycle — throughput of the modelled hardware,
//     from the per-issue cycle charges (3l+5 per dual-channel MMM pair,
//     3l+4 per single MMM).  This is where dual-channel pairing shows:
//     with a deep queue of same-length jobs nearly every MMM issues
//     paired, so the array retires ~2 MMMs per 3l+5 cycles and the
//     paired/unpaired ratio approaches 2(3l+4)/(3l+5) ~ 1.97x.
//
// The queue-depth sweep demonstrates the scheduling side: pairing needs
// at least two queued jobs, so depth 1 pairs nothing and the pairing
// fraction (and modelled throughput) climbs with depth.
//
// Writes BENCH_exp_service.json (see bench_json.hpp); --smoke restricts
// the sweep for the ctest `perf` label.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "bignum/biguint.hpp"
#include "bignum/random.hpp"
#include "core/exp_service.hpp"
#include "core/schedule.hpp"

namespace {

using mont::bignum::BigUInt;
using mont::core::ExpService;
using Clock = std::chrono::steady_clock;

struct Workload {
  std::size_t l = 0;
  std::vector<BigUInt> moduli;     // one per job (cycled over a small pool)
  std::vector<BigUInt> bases;
  std::vector<BigUInt> exponents;
};

Workload MakeWorkload(std::size_t l, std::size_t jobs, std::uint64_t seed) {
  Workload load;
  load.l = l;
  mont::bignum::RandomBigUInt rng(seed);
  std::vector<BigUInt> pool;
  for (int i = 0; i < 4; ++i) pool.push_back(rng.OddExactBits(l));
  for (std::size_t j = 0; j < jobs; ++j) {
    const BigUInt& n = pool[j % pool.size()];
    load.moduli.push_back(n);
    load.bases.push_back(rng.Below(n));
    load.exponents.push_back(rng.BalancedExactBits(l));
  }
  return load;
}

struct RunStats {
  double wall_seconds = 0;
  double wall_jobs_per_sec = 0;
  std::uint64_t model_cycles = 0;  // array occupancy across all issues
  double jobs_per_gigacycle = 0;
  double paired_fraction = 0;  // jobs that ran co-scheduled
};

/// Pushes the whole workload with at most `depth` jobs in flight (0 =
/// unbounded) and accounts wall time and modelled array cycles.
RunStats RunWorkload(const Workload& load, std::size_t workers, bool pairing,
                     std::size_t depth = 0) {
  ExpService::Options options;
  options.workers = workers;
  options.enable_pairing = pairing;
  ExpService service(options);

  const std::size_t jobs = load.moduli.size();
  RunStats stats;
  const Clock::time_point begin = Clock::now();
  std::vector<std::future<ExpService::Result>> futures;
  futures.reserve(jobs);
  std::uint64_t paired_jobs = 0;
  const auto harvest = [&](std::size_t up_to) {
    for (std::size_t j = futures.size(); j-- > up_to;) {
      if (!futures[j].valid()) continue;
      const ExpService::Result result = futures[j].get();
      if (result.paired) {
        ++paired_jobs;
        // Both partners report the group total: attribute half each so
        // every issue group counts once.
        stats.model_cycles += result.stats.engine_cycles / 2;
      } else {
        stats.model_cycles += result.stats.engine_cycles;
      }
    }
  };
  for (std::size_t j = 0; j < jobs; ++j) {
    futures.push_back(
        service.Submit(load.moduli[j], load.bases[j], load.exponents[j]));
    if (depth != 0 && futures.size() % depth == 0) {
      harvest(futures.size() - depth);
    }
  }
  harvest(0);
  stats.wall_seconds =
      std::chrono::duration<double>(Clock::now() - begin).count();
  stats.wall_jobs_per_sec = static_cast<double>(jobs) / stats.wall_seconds;
  stats.jobs_per_gigacycle =
      static_cast<double>(jobs) / static_cast<double>(stats.model_cycles) *
      1e9;
  stats.paired_fraction =
      static_cast<double>(paired_jobs) / static_cast<double>(jobs);
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::vector<std::size_t> lengths =
      smoke ? std::vector<std::size_t>{128}
            : std::vector<std::size_t>{128, 256};
  const std::size_t jobs = smoke ? 96 : 256;
  const std::vector<std::size_t> worker_counts =
      smoke ? std::vector<std::size_t>{1, 2} : std::vector<std::size_t>{1, 2, 4};

  std::vector<mont::bench::JsonRow> rows;

  std::printf("=== ExpService: jobs/s vs workers, dual-channel pairing "
              "on/off ===\n\n");
  std::printf("%6s %8s | %-23s | %-23s | %s\n", "", "",
              "unpaired (1 job/pass)", "paired (2 jobs/pass)", "model");
  std::printf("%6s %8s | %11s %11s | %11s %11s %7s | %s\n", "l", "workers",
              "wall j/s", "j/Gcycle", "wall j/s", "j/Gcycle", "paired",
              "speedup");
  std::printf("-------+--------+------------------------+------------------"
              "--------------+--------\n");
  for (const std::size_t l : lengths) {
    const Workload load = MakeWorkload(l, jobs, 0x5e1f5e1full + l);
    for (const std::size_t workers : worker_counts) {
      const RunStats unpaired = RunWorkload(load, workers, /*pairing=*/false);
      const RunStats paired = RunWorkload(load, workers, /*pairing=*/true);
      const double model_speedup =
          paired.jobs_per_gigacycle / unpaired.jobs_per_gigacycle;
      std::printf("%6zu %8zu | %11.1f %11.2f | %11.1f %11.2f %6.0f%% | "
                  "%6.2fx\n",
                  l, workers, unpaired.wall_jobs_per_sec,
                  unpaired.jobs_per_gigacycle, paired.wall_jobs_per_sec,
                  paired.jobs_per_gigacycle, paired.paired_fraction * 100,
                  model_speedup);
      rows.push_back({
          {"phase", "workers"},
          {"l", l},
          {"workers", workers},
          {"jobs", jobs},
          {"unpaired_wall_jobs_per_sec", unpaired.wall_jobs_per_sec},
          {"unpaired_jobs_per_gigacycle", unpaired.jobs_per_gigacycle},
          {"unpaired_model_cycles", unpaired.model_cycles},
          {"paired_wall_jobs_per_sec", paired.wall_jobs_per_sec},
          {"paired_jobs_per_gigacycle", paired.jobs_per_gigacycle},
          {"paired_model_cycles", paired.model_cycles},
          {"paired_fraction", paired.paired_fraction},
          {"paired_speedup_model", model_speedup},
      });
    }
  }

  std::printf("\n=== Pairing fraction vs queue depth (l = %zu, 2 workers) "
              "===\n\n", lengths.front());
  std::printf("%7s | %9s | %11s | %s\n", "depth", "paired", "j/Gcycle",
              "wall j/s");
  std::printf("--------+-----------+-------------+---------\n");
  {
    const Workload load =
        MakeWorkload(lengths.front(), jobs, 0xdeb7full);
    for (const std::size_t depth : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}, std::size_t{0}}) {
      const RunStats run =
          RunWorkload(load, /*workers=*/2, /*pairing=*/true, depth);
      std::printf("%7s | %8.0f%% | %11.2f | %8.1f\n",
                  depth == 0 ? "inf" : std::to_string(depth).c_str(),
                  run.paired_fraction * 100, run.jobs_per_gigacycle,
                  run.wall_jobs_per_sec);
      rows.push_back({
          {"phase", "depth"},
          {"l", lengths.front()},
          {"depth", depth},  // 0 = unbounded
          {"jobs", jobs},
          {"paired_fraction", run.paired_fraction},
          {"jobs_per_gigacycle", run.jobs_per_gigacycle},
          {"wall_jobs_per_sec", run.wall_jobs_per_sec},
      });
    }
  }

  const std::string path = mont::bench::WriteBenchJson(
      "exp_service", rows, {{"smoke", smoke}});
  std::printf("\njobs/Gcycle = modelled-array throughput (3l+5 per paired "
              "MMM issue, 3l+4 single);\nwall j/s = host-side service "
              "throughput.  JSON written to %s\n", path.c_str());
  return 0;
}
