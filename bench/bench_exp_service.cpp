// bench_exp_service — the batched async exponentiation service under load:
// jobs/sec versus worker count, pairing on/off, and queue depth.
//
// Two throughput views matter and the bench reports both:
//
//   * wall jobs/s — host-side service throughput (queue + worker pool
//     overhead on this machine's cores);
//   * modelled jobs per gigacycle — throughput of the modelled hardware,
//     from the per-issue cycle charges (3l+5 per dual-channel MMM pair,
//     3l+4 per single MMM).  This is where dual-channel pairing shows:
//     with a deep queue of same-length jobs nearly every MMM issues
//     paired, so the array retires ~2 MMMs per 3l+5 cycles and the
//     paired/unpaired ratio approaches 2(3l+4)/(3l+5) ~ 1.97x.
//
// The queue-depth sweep demonstrates the scheduling side: pairing needs
// at least two queued jobs, so depth 1 pairs nothing and the pairing
// fraction (and modelled throughput) climbs with depth.
//
// The multi-tenant stress section runs on the DeterministicExecutor —
// the same scheduling core as the threaded service, driven by a virtual
// clock — because on a small CI box wall-clock throughput of a worker
// pool measures the host, not the scheduler.  Virtual time measures the
// modelled arrays: per-job latency percentiles (p50/p95/p99) and
// saturation throughput (jobs per array-gigacycle of occupancy) are
// exact and replayable.  The v2 stealing scheduler must beat the v1
// shared queue by >= 1.2x jobs/Gcycle on the bursty mixed-tenant trace
// (stress_speedup_model); bench_drift_check gates that ratio in CI.
//
// Writes BENCH_exp_service.json and BENCH_scheduler.json (see
// bench_json.hpp); --smoke restricts the sweep for the ctest `perf`
// label.  `--trace-out FILE` attaches an obs::Tracer to the v2
// stealing stress replay and dumps it as chrome://tracing JSON.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "bench_json.hpp"
#include "bignum/biguint.hpp"
#include "bignum/random.hpp"
#include "core/exp_service.hpp"
#include "core/schedule.hpp"
#include "obs/trace.hpp"

namespace {

using mont::bignum::BigUInt;
using mont::core::DeterministicExecutor;
using mont::core::ExpService;
using mont::core::SchedulerKind;
using Clock = std::chrono::steady_clock;

struct Workload {
  std::size_t l = 0;
  std::vector<BigUInt> moduli;     // one per job (cycled over a small pool)
  std::vector<BigUInt> bases;
  std::vector<BigUInt> exponents;
};

Workload MakeWorkload(std::size_t l, std::size_t jobs, std::uint64_t seed) {
  Workload load;
  load.l = l;
  mont::bignum::RandomBigUInt rng(seed);
  std::vector<BigUInt> pool;
  for (int i = 0; i < 4; ++i) pool.push_back(rng.OddExactBits(l));
  for (std::size_t j = 0; j < jobs; ++j) {
    const BigUInt& n = pool[j % pool.size()];
    load.moduli.push_back(n);
    load.bases.push_back(rng.Below(n));
    load.exponents.push_back(rng.BalancedExactBits(l));
  }
  return load;
}

struct RunStats {
  double wall_seconds = 0;
  double wall_jobs_per_sec = 0;
  std::uint64_t model_cycles = 0;  // array occupancy across all issues
  double jobs_per_gigacycle = 0;
  double paired_fraction = 0;  // jobs that ran co-scheduled
};

/// Pushes the whole workload with at most `depth` jobs in flight (0 =
/// unbounded) and accounts wall time and modelled array cycles.
RunStats RunWorkload(const Workload& load, std::size_t workers, bool pairing,
                     std::size_t depth = 0) {
  ExpService::Options options;
  options.workers = workers;
  options.enable_pairing = pairing;
  ExpService service(options);

  const std::size_t jobs = load.moduli.size();
  RunStats stats;
  const Clock::time_point begin = Clock::now();
  std::vector<std::future<ExpService::Result>> futures;
  futures.reserve(jobs);
  std::uint64_t paired_jobs = 0;
  const auto harvest = [&](std::size_t up_to) {
    for (std::size_t j = futures.size(); j-- > up_to;) {
      if (!futures[j].valid()) continue;
      const ExpService::Result result = futures[j].get();
      if (result.paired) {
        ++paired_jobs;
        // Both partners report the group total: attribute half each so
        // every issue group counts once.
        stats.model_cycles += result.stats.engine_cycles / 2;
      } else {
        stats.model_cycles += result.stats.engine_cycles;
      }
    }
  };
  for (std::size_t j = 0; j < jobs; ++j) {
    futures.push_back(
        service.Submit(load.moduli[j], load.bases[j], load.exponents[j]));
    if (depth != 0 && futures.size() % depth == 0) {
      harvest(futures.size() - depth);
    }
  }
  harvest(0);
  stats.wall_seconds =
      std::chrono::duration<double>(Clock::now() - begin).count();
  stats.wall_jobs_per_sec = static_cast<double>(jobs) / stats.wall_seconds;
  stats.jobs_per_gigacycle =
      static_cast<double>(jobs) / static_cast<double>(stats.model_cycles) *
      1e9;
  stats.paired_fraction =
      static_cast<double>(paired_jobs) / static_cast<double>(jobs);
  return stats;
}

// ---------------------------------------------------------------------------
// Multi-tenant bursty stress on the deterministic executor
// ---------------------------------------------------------------------------

struct TenantJob {
  std::size_t pool_index = 0;   // modulus pool entry
  const char* engine = "";      // per-job engine override ("" = default)
  BigUInt base, exponent;
  std::uint64_t arrival = 0;    // virtual tick
};

struct StressTrace {
  std::vector<BigUInt> pool;
  std::vector<TenantJob> jobs;  // sorted by arrival
  std::uint64_t mean_gap = 0;
};

/// Virtual duration of one solo job at bit length l (default backend).
std::uint64_t CalibrateSoloTicks(const BigUInt& n, const BigUInt& base,
                                 const BigUInt& exponent) {
  ExpService::Options options;
  options.workers = 1;
  DeterministicExecutor calibrate(options);
  calibrate.SubmitAt(0, n, base, exponent);
  calibrate.RunUntilIdle();
  const auto& record = calibrate.Records().at(0);
  return record.finish_tick - record.start_tick;
}

/// Seeded bursty mixed-tenant trace: three tenants (128-bit default
/// engine, 256-bit default engine, 128-bit word-mont override) with
/// Poisson inter-burst gaps and geometric burst sizes, tuned so the v1
/// scheduler's per-worker utilisation sits near 0.8 — loaded enough to
/// queue, sparse enough that a shared FIFO rarely holds two equal-length
/// jobs at once.
StressTrace MakeStressTrace(std::size_t jobs, std::size_t workers,
                            std::uint64_t seed) {
  StressTrace trace;
  mont::bignum::RandomBigUInt rng(seed);
  // Pool: two moduli per bit length so the engine cache sees churn.
  for (int i = 0; i < 2; ++i) trace.pool.push_back(rng.OddExactBits(128));
  for (int i = 0; i < 2; ++i) trace.pool.push_back(rng.OddExactBits(256));

  const std::uint64_t solo_128 = CalibrateSoloTicks(
      trace.pool[0], rng.Below(trace.pool[0]), rng.Below(trace.pool[0]));
  const std::uint64_t solo_256 = CalibrateSoloTicks(
      trace.pool[2], rng.Below(trace.pool[2]), rng.Below(trace.pool[2]));

  // Tenant mix and the implied mean cost per arrival (word-mont runs on
  // the modelled word datapath but is charged its engine's cycles; the
  // 128-bit estimate is close enough for load tuning).
  const double mean_cost = 0.60 * static_cast<double>(solo_128) +
                           0.25 * static_cast<double>(solo_256) +
                           0.15 * static_cast<double>(solo_128);
  const double utilization = 0.8;
  trace.mean_gap = static_cast<std::uint64_t>(
      mean_cost / (static_cast<double>(workers) * utilization));

  std::uint64_t tick = 0;
  std::size_t burst_left = 0;
  for (std::size_t j = 0; j < jobs; ++j) {
    if (burst_left == 0) {
      // Geometric burst size (mean 2), exponential gap between bursts
      // scaled so the long-run arrival rate stays 1/mean_gap.
      burst_left = 1;
      while (burst_left < 4 && rng.Engine().NextBelow(2) == 0) ++burst_left;
      const double u =
          (static_cast<double>(rng.Engine().NextBelow(1u << 20)) + 1.0) /
          static_cast<double>(1u << 20);
      tick += static_cast<std::uint64_t>(
          -2.0 * static_cast<double>(trace.mean_gap) * std::log(u));
    }
    --burst_left;
    TenantJob job;
    const std::uint64_t tenant = rng.Engine().NextBelow(20);
    if (tenant < 12) {  // 60%: 128-bit, default (pairable) engine
      job.pool_index = rng.Engine().NextBelow(2);
    } else if (tenant < 17) {  // 25%: 256-bit, default engine
      job.pool_index = 2 + rng.Engine().NextBelow(2);
    } else {  // 15%: 128-bit on the word-serial datapath (never pairs)
      job.pool_index = rng.Engine().NextBelow(2);
      job.engine = "word-mont";
    }
    const BigUInt& n = trace.pool[job.pool_index];
    job.base = rng.Below(n);
    job.exponent = rng.Below(n);
    job.arrival = tick;
    trace.jobs.push_back(std::move(job));
  }
  return trace;
}

struct StressStats {
  std::uint64_t busy_cycles = 0;   // array occupancy, groups counted once
  double jobs_per_gigacycle = 0;
  double paired_fraction = 0;
  std::uint64_t makespan = 0;
  std::uint64_t p50 = 0, p95 = 0, p99 = 0;  // virtual latency (cycles)
  ExpService::Counters counters;
};

StressStats RunStress(const StressTrace& trace, SchedulerKind kind,
                      std::size_t workers, std::uint64_t unpair_timeout,
                      mont::obs::Tracer* tracer = nullptr) {
  ExpService::Options options;
  options.workers = workers;
  options.scheduler = kind;
  options.unpair_timeout = unpair_timeout;
  options.engine_cache_capacity = 6;
  options.tracer = tracer;
  DeterministicExecutor exec(options);
  for (const TenantJob& job : trace.jobs) {
    mont::core::ExpJobOptions job_options;
    job_options.engine_name = job.engine;
    exec.SubmitAt(job.arrival, trace.pool[job.pool_index], job.base,
                  job.exponent, job_options);
  }
  exec.RunUntilIdle();

  StressStats stats;
  stats.counters = exec.Snapshot();
  stats.makespan = exec.Now();
  std::set<std::tuple<std::size_t, std::uint64_t, std::uint64_t>> groups;
  std::vector<std::uint64_t> latencies;
  std::uint64_t paired = 0;
  for (const auto& record : exec.Records()) {
    groups.emplace(record.worker, record.start_tick, record.finish_tick);
    latencies.push_back(record.finish_tick - record.submit_tick);
    if (record.paired) ++paired;
  }
  for (const auto& [worker, start, finish] : groups) {
    stats.busy_cycles += finish - start;
  }
  std::sort(latencies.begin(), latencies.end());
  const auto percentile = [&](double p) {
    const std::size_t index = static_cast<std::size_t>(
        p * static_cast<double>(latencies.size() - 1));
    return latencies[index];
  };
  stats.p50 = percentile(0.50);
  stats.p95 = percentile(0.95);
  stats.p99 = percentile(0.99);
  stats.jobs_per_gigacycle = static_cast<double>(trace.jobs.size()) /
                             static_cast<double>(stats.busy_cycles) * 1e9;
  stats.paired_fraction = static_cast<double>(paired) /
                          static_cast<double>(trace.jobs.size());
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    }
  }
  mont::obs::Tracer tracer;
  mont::obs::Tracer* const trace_ptr = trace_out.empty() ? nullptr : &tracer;
  const std::vector<std::size_t> lengths =
      smoke ? std::vector<std::size_t>{128}
            : std::vector<std::size_t>{128, 256};
  const std::size_t jobs = smoke ? 96 : 256;
  const std::vector<std::size_t> worker_counts =
      smoke ? std::vector<std::size_t>{1, 2} : std::vector<std::size_t>{1, 2, 4};

  std::vector<mont::bench::JsonRow> rows;

  std::printf("=== ExpService: jobs/s vs workers, dual-channel pairing "
              "on/off ===\n\n");
  std::printf("%6s %8s | %-23s | %-23s | %s\n", "", "",
              "unpaired (1 job/pass)", "paired (2 jobs/pass)", "model");
  std::printf("%6s %8s | %11s %11s | %11s %11s %7s | %s\n", "l", "workers",
              "wall j/s", "j/Gcycle", "wall j/s", "j/Gcycle", "paired",
              "speedup");
  std::printf("-------+--------+------------------------+------------------"
              "--------------+--------\n");
  for (const std::size_t l : lengths) {
    const Workload load = MakeWorkload(l, jobs, 0x5e1f5e1full + l);
    for (const std::size_t workers : worker_counts) {
      const RunStats unpaired = RunWorkload(load, workers, /*pairing=*/false);
      const RunStats paired = RunWorkload(load, workers, /*pairing=*/true);
      const double model_speedup =
          paired.jobs_per_gigacycle / unpaired.jobs_per_gigacycle;
      std::printf("%6zu %8zu | %11.1f %11.2f | %11.1f %11.2f %6.0f%% | "
                  "%6.2fx\n",
                  l, workers, unpaired.wall_jobs_per_sec,
                  unpaired.jobs_per_gigacycle, paired.wall_jobs_per_sec,
                  paired.jobs_per_gigacycle, paired.paired_fraction * 100,
                  model_speedup);
      rows.push_back({
          {"phase", "workers"},
          {"l", l},
          {"workers", workers},
          {"jobs", jobs},
          {"unpaired_wall_jobs_per_sec", unpaired.wall_jobs_per_sec},
          {"unpaired_jobs_per_gigacycle", unpaired.jobs_per_gigacycle},
          {"unpaired_model_cycles", unpaired.model_cycles},
          {"paired_wall_jobs_per_sec", paired.wall_jobs_per_sec},
          {"paired_jobs_per_gigacycle", paired.jobs_per_gigacycle},
          {"paired_model_cycles", paired.model_cycles},
          {"paired_fraction", paired.paired_fraction},
          {"paired_speedup_model", model_speedup},
      });
    }
  }

  std::printf("\n=== Pairing fraction vs queue depth (l = %zu, 2 workers) "
              "===\n\n", lengths.front());
  std::printf("%7s | %9s | %11s | %s\n", "depth", "paired", "j/Gcycle",
              "wall j/s");
  std::printf("--------+-----------+-------------+---------\n");
  {
    const Workload load =
        MakeWorkload(lengths.front(), jobs, 0xdeb7full);
    for (const std::size_t depth : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}, std::size_t{0}}) {
      const RunStats run =
          RunWorkload(load, /*workers=*/2, /*pairing=*/true, depth);
      std::printf("%7s | %8.0f%% | %11.2f | %8.1f\n",
                  depth == 0 ? "inf" : std::to_string(depth).c_str(),
                  run.paired_fraction * 100, run.jobs_per_gigacycle,
                  run.wall_jobs_per_sec);
      rows.push_back({
          {"phase", "depth"},
          {"l", lengths.front()},
          {"depth", depth},  // 0 = unbounded
          {"jobs", jobs},
          {"paired_fraction", run.paired_fraction},
          {"jobs_per_gigacycle", run.jobs_per_gigacycle},
          {"wall_jobs_per_sec", run.wall_jobs_per_sec},
      });
    }
  }

  // --- multi-tenant bursty stress: v2 stealing vs v1 shared queue ------
  const std::size_t stress_jobs = smoke ? 96 : 320;
  const std::size_t stress_workers = 4;
  const StressTrace trace =
      MakeStressTrace(stress_jobs, stress_workers, 0x57e55eedull);
  // Hold at most a few inter-arrival gaps: long enough that a same-key
  // partner usually arrives, short enough to bound added latency.
  const std::uint64_t unpair_timeout = 4 * trace.mean_gap;
  const StressStats v1 = RunStress(trace, SchedulerKind::kSharedQueue,
                                   stress_workers, unpair_timeout);
  const StressStats v2 = RunStress(trace, SchedulerKind::kStealing,
                                   stress_workers, unpair_timeout, trace_ptr);
  const double stress_speedup =
      v2.jobs_per_gigacycle / v1.jobs_per_gigacycle;

  std::printf("\n=== Multi-tenant bursty stress (deterministic executor, "
              "%zu jobs, %zu workers) ===\n\n", stress_jobs, stress_workers);
  std::printf("3 tenants: 60%% 128-bit + 25%% 256-bit on the systolic "
              "array, 15%% word-mont overrides;\nbursty Poisson arrivals, "
              "mean gap %llu cycles, unpair timeout %llu cycles.\n\n",
              static_cast<unsigned long long>(trace.mean_gap),
              static_cast<unsigned long long>(unpair_timeout));
  std::printf("%-18s | %10s %8s | %10s %10s %10s | %9s\n", "scheduler",
              "j/Gcycle", "paired", "p50", "p95", "p99", "makespan");
  const auto print_stress = [&](const char* name, const StressStats& s) {
    std::printf("%-18s | %10.2f %7.0f%% | %10llu %10llu %10llu | %9llu\n",
                name, s.jobs_per_gigacycle, s.paired_fraction * 100,
                static_cast<unsigned long long>(s.p50),
                static_cast<unsigned long long>(s.p95),
                static_cast<unsigned long long>(s.p99),
                static_cast<unsigned long long>(s.makespan));
  };
  print_stress("v1 shared queue", v1);
  print_stress("v2 stealing", v2);
  std::printf("\nsaturation speedup (jobs per array-gigacycle, v2/v1): "
              "%.2fx  (gate: >= 1.2x)\n", stress_speedup);

  const auto stress_row = [&](const char* name, const StressStats& s) {
    return mont::bench::JsonRow{
        {"phase", "stress"},
        {"scheduler", name},
        {"jobs", stress_jobs},
        {"workers", stress_workers},
        {"busy_cycles", s.busy_cycles},
        {"jobs_per_gigacycle", s.jobs_per_gigacycle},
        {"paired_fraction", s.paired_fraction},
        {"latency_p50_cycles", s.p50},
        {"latency_p95_cycles", s.p95},
        {"latency_p99_cycles", s.p99},
        {"makespan_cycles", s.makespan},
        {"steals", s.counters.steals},
        {"holds", s.counters.holds},
        {"unpair_timeouts", s.counters.unpair_timeouts},
    };
  };
  rows.push_back(stress_row("shared_queue", v1));
  rows.push_back(stress_row("stealing", v2));
  rows.push_back({
      {"phase", "stress_summary"},
      {"jobs", stress_jobs},
      {"workers", stress_workers},
      {"mean_gap_cycles", trace.mean_gap},
      {"unpair_timeout_cycles", unpair_timeout},
      {"stress_speedup_model", stress_speedup},
      {"meets_1_2x_gate", stress_speedup >= 1.2},
  });

  const std::string path = mont::bench::WriteBenchJson(
      "exp_service", rows, {{"smoke", smoke}});

  // Scheduler micro-metrics as their own artifact, so scheduling-policy
  // drift (holds, steals, batch shapes) is gated independently of the
  // throughput numbers above.
  std::vector<mont::bench::JsonRow> sched_rows;
  const auto sched_row = [&](const char* name, const StressStats& s) {
    return mont::bench::JsonRow{
        {"scheduler", name},
        {"jobs", stress_jobs},
        {"pair_issues", s.counters.pair_issues},
        {"single_issues", s.counters.single_issues},
        {"steals", s.counters.steals},
        {"holds", s.counters.holds},
        {"hold_pairs", s.counters.hold_pairs},
        {"unpair_timeouts", s.counters.unpair_timeouts},
        {"batch_acquires", s.counters.batch_acquires},
        {"max_batch_claimed", s.counters.max_batch_claimed},
        {"engine_cache_hits", s.counters.engine_cache_hits},
        {"engine_cache_misses", s.counters.engine_cache_misses},
    };
  };
  sched_rows.push_back(sched_row("shared_queue", v1));
  sched_rows.push_back(sched_row("stealing", v2));
  const std::string sched_path = mont::bench::WriteBenchJson(
      "scheduler", sched_rows,
      {{"smoke", smoke},
       {"unpair_timeout_cycles", unpair_timeout},
       {"max_batch", 8}});

  std::printf("\njobs/Gcycle = modelled-array throughput (3l+5 per paired "
              "MMM issue, 3l+4 single);\nwall j/s = host-side service "
              "throughput.  JSON written to %s and %s\n", path.c_str(),
              sched_path.c_str());
  if (trace_ptr != nullptr && tracer.WriteChromeJson(trace_out)) {
    std::printf("trace: %zu events -> %s (load in ui.perfetto.dev)\n",
                tracer.EventCount(), trace_out.c_str());
  }
  return stress_speedup >= 1.2 ? 0 : 1;
}
