// bench_obs — the observability overhead gate.
//
// The obs layer's contract is "always on, never felt": every ExpService /
// scheduler / engine counter now lives in the metrics registry, and the
// span tracer's emission sites are compiled into the hot path behind one
// `tracer != nullptr && tracer->enabled()` check.  This bench measures
// what that costs on the bursty multi-tenant stress workload (the same
// shape bench_exp_service gates scheduling on, driven through the
// DeterministicExecutor so the work per run is bit-identical):
//
//   baseline   no tracer attached      registry counters only
//   idle       tracer attached, off    + one relaxed load per event site
//   enabled    tracer attached, on     + ring-buffer emission
//
// THE GATE: idle must stay within 3% of baseline (best-of-N wall time,
// re-measured up to 3 times before failing, because a 3% bar on a shared
// CI box needs noise discipline).  Enabled-mode cost is reported but not
// gated — turning tracing on is a diagnostic decision, not a tax.
//
// The enabled run's event tally, drop count and scheduler counters are
// deterministic per seed, so BENCH_obs.json doubles as a drift gate on
// the instrumentation itself: a new or vanished emission site shows up
// as a strict-tolerance failure, not a silent change.
//
// Writes BENCH_obs.json; --smoke shrinks the trace for `ctest -L perf`.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "bignum/biguint.hpp"
#include "bignum/random.hpp"
#include "core/exp_service.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using mont::bignum::BigUInt;
using mont::core::DeterministicExecutor;
using mont::core::ExpService;
using mont::core::SchedulerKind;
using Clock = std::chrono::steady_clock;

struct TenantJob {
  std::size_t pool_index = 0;
  const char* engine = "";
  BigUInt base, exponent;
  std::uint64_t arrival = 0;
};

struct StressTrace {
  std::vector<BigUInt> pool;
  std::vector<TenantJob> jobs;
};

std::uint64_t CalibrateSoloTicks(const BigUInt& n, const BigUInt& base,
                                 const BigUInt& exponent) {
  ExpService::Options options;
  options.workers = 1;
  DeterministicExecutor calibrate(options);
  calibrate.SubmitAt(0, n, base, exponent);
  calibrate.RunUntilIdle();
  const auto& record = calibrate.Records().at(0);
  return record.finish_tick - record.start_tick;
}

// Same bursty mixed-tenant shape as bench_exp_service's stress section:
// 60% 128-bit default engine, 25% 256-bit, 15% 128-bit word-mont
// overrides, geometric bursts with exponential inter-burst gaps tuned
// for ~0.8 per-worker utilisation.
StressTrace MakeStressTrace(std::size_t jobs, std::size_t workers,
                            std::uint64_t seed) {
  StressTrace trace;
  mont::bignum::RandomBigUInt rng(seed);
  for (int i = 0; i < 2; ++i) trace.pool.push_back(rng.OddExactBits(128));
  for (int i = 0; i < 2; ++i) trace.pool.push_back(rng.OddExactBits(256));

  const std::uint64_t solo_128 = CalibrateSoloTicks(
      trace.pool[0], rng.Below(trace.pool[0]), rng.Below(trace.pool[0]));
  const std::uint64_t solo_256 = CalibrateSoloTicks(
      trace.pool[2], rng.Below(trace.pool[2]), rng.Below(trace.pool[2]));
  const double mean_cost = 0.75 * static_cast<double>(solo_128) +
                           0.25 * static_cast<double>(solo_256);
  const std::uint64_t mean_gap = static_cast<std::uint64_t>(
      mean_cost / (static_cast<double>(workers) * 0.8));

  std::uint64_t tick = 0;
  std::size_t burst_left = 0;
  for (std::size_t j = 0; j < jobs; ++j) {
    if (burst_left == 0) {
      burst_left = 1;
      while (burst_left < 4 && rng.Engine().NextBelow(2) == 0) ++burst_left;
      const double u =
          (static_cast<double>(rng.Engine().NextBelow(1u << 20)) + 1.0) /
          static_cast<double>(1u << 20);
      tick += static_cast<std::uint64_t>(
          -2.0 * static_cast<double>(mean_gap) * std::log(u));
    }
    --burst_left;
    TenantJob job;
    const std::uint64_t tenant = rng.Engine().NextBelow(20);
    if (tenant < 12) {
      job.pool_index = rng.Engine().NextBelow(2);
    } else if (tenant < 17) {
      job.pool_index = 2 + rng.Engine().NextBelow(2);
    } else {
      job.pool_index = rng.Engine().NextBelow(2);
      job.engine = "word-mont";
    }
    const BigUInt& n = trace.pool[job.pool_index];
    job.base = rng.Below(n);
    job.exponent = rng.Below(n);
    job.arrival = tick;
    trace.jobs.push_back(std::move(job));
  }
  return trace;
}

struct RunResult {
  double wall_seconds = 0;
  ExpService::Counters counters;
  std::size_t invariant_violations = 0;
};

/// One full stress replay through the DeterministicExecutor.  Submission
/// and execution are timed (both carry emission sites); construction is
/// not (registry binding is a one-time cost).
RunResult RunOnce(const StressTrace& trace, std::size_t workers,
                  mont::obs::Tracer* tracer) {
  ExpService::Options options;
  options.workers = workers;
  options.scheduler = SchedulerKind::kStealing;
  options.engine_cache_capacity = 6;
  options.tracer = tracer;
  DeterministicExecutor exec(options);

  const Clock::time_point begin = Clock::now();
  for (const TenantJob& job : trace.jobs) {
    mont::core::ExpJobOptions job_options;
    job_options.engine_name = job.engine;
    exec.SubmitAt(job.arrival, trace.pool[job.pool_index], job.base,
                  job.exponent, job_options);
  }
  exec.RunUntilIdle();
  RunResult result;
  result.wall_seconds =
      std::chrono::duration<double>(Clock::now() - begin).count();
  result.counters = exec.Snapshot();
  result.invariant_violations =
      exec.registry().CheckInvariants(exec.registry().Snapshot()).size();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::size_t jobs = smoke ? 96 : 320;
  const std::size_t workers = 4;
  const std::size_t reps = smoke ? 3 : 5;
  const double gate = 0.03;

  std::printf("=== obs overhead gate: bursty stress (%zu jobs, %zu workers, "
              "best of %zu) ===\n\n", jobs, workers, reps);
  const StressTrace trace = MakeStressTrace(jobs, workers, 0x57e55eedull);

  // The gate measurement: baseline, idle and enabled reps are
  // interleaved (so a host-load drift hits all three estimators
  // equally), best-of-N minima are compared, and a failing attempt is
  // re-measured up to 3 times — a 3% bar on a shared CI box needs
  // noise discipline.
  double baseline_wall = 0;
  double idle_wall = 0;
  double enabled_wall = 0;
  double idle_overhead = 0;
  mont::obs::Tracer tracer;
  RunResult enabled_result;
  std::size_t events = 0;
  std::uint64_t dropped = 0;
  for (int attempt = 0; attempt < 3; ++attempt) {
    baseline_wall = std::numeric_limits<double>::infinity();
    idle_wall = std::numeric_limits<double>::infinity();
    enabled_wall = std::numeric_limits<double>::infinity();
    mont::obs::Tracer idle_tracer;
    idle_tracer.set_enabled(false);
    for (std::size_t r = 0; r < reps; ++r) {
      baseline_wall =
          std::min(baseline_wall, RunOnce(trace, workers, nullptr).wall_seconds);
      idle_wall = std::min(idle_wall,
                           RunOnce(trace, workers, &idle_tracer).wall_seconds);
      tracer.Clear();
      RunResult result = RunOnce(trace, workers, &tracer);
      enabled_wall = std::min(enabled_wall, result.wall_seconds);
      enabled_result = result;
      events = tracer.EventCount();
      dropped = tracer.DroppedEvents();
    }
    idle_overhead = idle_wall / baseline_wall - 1.0;
    if (idle_overhead <= gate) break;
    std::printf("  (attempt %d: idle overhead %.2f%% > %.0f%%, "
                "re-measuring)\n", attempt + 1, idle_overhead * 100,
                gate * 100);
  }
  const double enabled_overhead = enabled_wall / baseline_wall - 1.0;

  std::printf("%-22s | %12s | %s\n", "configuration", "best wall s",
              "overhead vs baseline");
  std::printf("-----------------------+--------------+---------------------\n");
  std::printf("%-22s | %12.4f | %s\n", "baseline (no tracer)", baseline_wall,
              "-");
  std::printf("%-22s | %12.4f | %+.2f%%  (gate: <= %.0f%%)\n",
              "tracer idle", idle_wall, idle_overhead * 100, gate * 100);
  std::printf("%-22s | %12.4f | %+.2f%%  (reported, not gated)\n",
              "tracer enabled", enabled_wall, enabled_overhead * 100);
  std::printf("\nenabled run: %zu trace events (%llu dropped), "
              "%llu jobs completed, %zu invariant violation(s)\n",
              events, static_cast<unsigned long long>(dropped),
              static_cast<unsigned long long>(
                  enabled_result.counters.jobs_completed),
              enabled_result.invariant_violations);

  std::vector<mont::bench::JsonRow> rows;
  rows.push_back({
      {"phase", "overhead"},
      {"jobs", jobs},
      {"workers", workers},
      {"reps", reps},
      {"baseline_wall_seconds", baseline_wall},
      {"idle_wall_seconds", idle_wall},
      {"enabled_wall_seconds", enabled_wall},
      {"idle_overhead_fraction", idle_overhead},
      {"enabled_overhead_fraction", enabled_overhead},
      {"gate_limit_fraction", gate},
      {"meets_gate", idle_overhead <= gate},
  });
  // Deterministic per seed: a strict drift failure here means an
  // emission site or a scheduling decision changed, not the host.
  rows.push_back({
      {"phase", "trace_census"},
      {"jobs", jobs},
      {"workers", workers},
      {"trace_events", events},
      {"trace_dropped", dropped},
      {"jobs_completed", enabled_result.counters.jobs_completed},
      {"pair_issues", enabled_result.counters.pair_issues},
      {"single_issues", enabled_result.counters.single_issues},
      {"steals", enabled_result.counters.steals},
      {"holds", enabled_result.counters.holds},
      {"invariant_violations", enabled_result.invariant_violations},
  });
  const std::string path =
      mont::bench::WriteBenchJson("obs", rows, {{"smoke", smoke}});
  std::printf("JSON written to %s\n", path.c_str());

  if (enabled_result.invariant_violations != 0) {
    std::printf("FAIL: metric conservation invariants violated\n");
    return 1;
  }
  if (idle_overhead > gate) {
    std::printf("FAIL: idle-tracing overhead %.2f%% exceeds the %.0f%% "
                "gate\n", idle_overhead * 100, gate * 100);
    return 1;
  }
  std::printf("OK: idle-tracing overhead %.2f%% within the %.0f%% gate\n",
              idle_overhead * 100, gate * 100);
  return 0;
}
