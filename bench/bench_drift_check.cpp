// bench_drift_check — the CI drift gate over the BENCH_*.json artifacts.
//
//   bench_drift_check <baseline-dir> <current-dir>
//
// Every BENCH_*.json under <baseline-dir> (the committed bench/baseline/
// snapshot) must exist under <current-dir> (the build tree after the perf
// smoke runs) with the same row count and row keys, and every metric must
// sit inside its tolerance class:
//
//   skip     keys matching  wall | per_sec | per_s | iterations | seconds
//            plus the host-throughput ratios batch_speedup and
//            speedup_vs_scalar — wall-clock derived; reported for humans,
//            never gated.
//   lenient  keys matching  fraction | speedup | gigacycle | model_cycles |
//            latency — statistics of the *threaded* service benches, which
//            depend on OS scheduling (45% relative, 0.35 absolute slack).
//   strict   everything else — model-derived values (cycle formulas, gate
//            counts, paper constants, deterministic-executor traces) that
//            must reproduce almost exactly (10% relative).
//
// A new artifact in <current-dir> with no committed baseline also fails:
// adding a bench requires refreshing bench/baseline/ in the same change.
// Exits 0 when everything is inside tolerance, 1 otherwise.
#include <cctype>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// A tiny recursive JSON reader.  Same scope as bench_schema_check's parser
// (the subset bench_json.hpp emits) but value-retaining, since the drift
// gate has to compare numbers, not just validate shape.
// ---------------------------------------------------------------------------

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<Value> items;
  std::map<std::string, Value> fields;
};

class Parser {
 public:
  Parser(std::string text, std::string origin)
      : text_(std::move(text)), origin_(std::move(origin)) {}

  Value ParseDocument() {
    Value v = ParseValue();
    SkipSpace();
    if (pos_ != text_.size()) Fail("trailing content after document");
    return v;
  }

 private:
  [[noreturn]] void Fail(const std::string& why) const {
    throw std::runtime_error(origin_ + ": " + why + " (at byte " +
                             std::to_string(pos_) + ")");
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() {
    SkipSpace();
    if (pos_ >= text_.size()) Fail("unexpected end of input");
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) Fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool TryConsume(const std::string& word) {
    SkipSpace();
    if (text_.compare(pos_, word.size(), word) == 0) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) Fail("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u':
            if (pos_ + 4 > text_.size()) Fail("short \\u escape");
            out += '?';  // artifacts are ASCII; keep a placeholder
            pos_ += 4;
            break;
          default: Fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    if (pos_ >= text_.size()) Fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  Value ParseValue() {
    char c = Peek();
    Value v;
    if (c == '{') {
      v.kind = Value::Kind::kObject;
      Expect('{');
      if (Peek() != '}') {
        for (;;) {
          std::string key = ParseString();
          Expect(':');
          v.fields[key] = ParseValue();
          if (Peek() == ',') { ++pos_; continue; }
          break;
        }
      }
      Expect('}');
    } else if (c == '[') {
      v.kind = Value::Kind::kArray;
      Expect('[');
      if (Peek() != ']') {
        for (;;) {
          v.items.push_back(ParseValue());
          if (Peek() == ',') { ++pos_; continue; }
          break;
        }
      }
      Expect(']');
    } else if (c == '"') {
      v.kind = Value::Kind::kString;
      v.string_value = ParseString();
    } else if (TryConsume("true")) {
      v.kind = Value::Kind::kBool;
      v.bool_value = true;
    } else if (TryConsume("false")) {
      v.kind = Value::Kind::kBool;
      v.bool_value = false;
    } else if (TryConsume("null")) {
      v.kind = Value::Kind::kNull;
    } else {
      v.kind = Value::Kind::kNumber;
      std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
              text_[pos_] == 'e' || text_[pos_] == 'E')) {
        ++pos_;
      }
      if (pos_ == start) Fail("expected a JSON value");
      try {
        v.number_value = std::stod(text_.substr(start, pos_ - start));
      } catch (const std::exception&) {
        Fail("malformed number");
      }
    }
    return v;
  }

  std::string text_;
  std::string origin_;
  std::size_t pos_ = 0;
};

Value LoadJson(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path.string());
  std::ostringstream buf;
  buf << in.rdbuf();
  return Parser(buf.str(), path.filename().string()).ParseDocument();
}

// ---------------------------------------------------------------------------
// Tolerance classes
// ---------------------------------------------------------------------------

enum class Tolerance { kSkip, kLenient, kStrict };

bool Contains(const std::string& haystack, const char* needle) {
  return haystack.find(needle) != std::string::npos;
}

Tolerance Classify(const std::string& key) {
  // batch_speedup / speedup_vs_scalar are ratios of two host-throughput
  // measurements, so they inherit the host's load sensitivity.
  for (const char* pat : {"wall", "per_sec", "per_s", "iterations",
                          "seconds", "batch_speedup", "speedup_vs_scalar"}) {
    if (Contains(key, pat)) return Tolerance::kSkip;
  }
  for (const char* pat : {"fraction", "speedup", "gigacycle", "model_cycles",
                          "latency"}) {
    if (Contains(key, pat)) return Tolerance::kLenient;
  }
  return Tolerance::kStrict;
}

bool NumbersAgree(double base, double cur, Tolerance tol) {
  const double diff = std::fabs(base - cur);
  const double mag = std::max(std::fabs(base), std::fabs(cur));
  const double rel = mag > 0 ? diff / mag : 0.0;
  if (tol == Tolerance::kLenient) return rel <= 0.45 || diff <= 0.35;
  return rel <= 0.10 || diff <= 1e-9;
}

struct Report {
  int failures = 0;
  int compared = 0;
  int skipped = 0;

  void Fail(const std::string& what) {
    ++failures;
    std::printf("  DRIFT %s\n", what.c_str());
  }
};

std::string Describe(const Value& v) {
  switch (v.kind) {
    case Value::Kind::kBool: return v.bool_value ? "true" : "false";
    case Value::Kind::kString: return "\"" + v.string_value + "\"";
    case Value::Kind::kNumber: {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%g", v.number_value);
      return buf;
    }
    default: return "<non-scalar>";
  }
}

void CompareRow(const std::string& artifact, std::size_t row_index,
                const Value& base_row, const Value& cur_row, Report& report) {
  const std::string where = artifact + " row " + std::to_string(row_index);
  for (const auto& [key, base_val] : base_row.fields) {
    auto it = cur_row.fields.find(key);
    if (it == cur_row.fields.end()) {
      report.Fail(where + ": key '" + key + "' missing from current run");
      continue;
    }
    const Value& cur_val = it->second;
    if (Classify(key) == Tolerance::kSkip) {
      ++report.skipped;
      continue;
    }
    ++report.compared;
    if (base_val.kind != cur_val.kind) {
      report.Fail(where + " '" + key + "': type changed (" +
                  Describe(base_val) + " -> " + Describe(cur_val) + ")");
      continue;
    }
    switch (base_val.kind) {
      case Value::Kind::kNumber:
        if (!NumbersAgree(base_val.number_value, cur_val.number_value,
                          Classify(key))) {
          // Name the artifact, row and key with both values and the
          // percent delta, so a red CI run reads as "what moved, by how
          // much" without opening either JSON file.
          const double base_num = base_val.number_value;
          const double cur_num = cur_val.number_value;
          char delta[48];
          if (base_num != 0.0) {
            std::snprintf(delta, sizeof delta, "%+.2f%%",
                          100.0 * (cur_num - base_num) / std::fabs(base_num));
          } else {
            std::snprintf(delta, sizeof delta, "baseline was 0");
          }
          char buf[256];
          std::snprintf(buf, sizeof buf,
                        "%s key '%s': baseline %g -> current %g (%s, outside "
                        "%s tolerance)",
                        where.c_str(), key.c_str(), base_num, cur_num, delta,
                        Classify(key) == Tolerance::kLenient
                            ? "lenient 45%-relative"
                            : "strict 10%-relative");
          report.Fail(buf);
        }
        break;
      case Value::Kind::kBool:
        if (base_val.bool_value != cur_val.bool_value) {
          report.Fail(where + " '" + key + "': " + Describe(base_val) +
                      " -> " + Describe(cur_val));
        }
        break;
      case Value::Kind::kString:
        if (base_val.string_value != cur_val.string_value) {
          report.Fail(where + " '" + key + "': " + Describe(base_val) +
                      " -> " + Describe(cur_val));
        }
        break;
      default:
        report.Fail(where + " '" + key + "': unexpected non-scalar value");
        break;
    }
  }
  for (const auto& [key, cur_val] : cur_row.fields) {
    (void)cur_val;
    if (base_row.fields.find(key) == base_row.fields.end()) {
      report.Fail(where + ": new key '" + key +
                  "' absent from baseline (refresh bench/baseline/)");
    }
  }
}

void CompareArtifact(const std::string& name, const Value& base,
                     const Value& cur, Report& report) {
  const auto rows_of = [&](const Value& doc, const char* which)
      -> const std::vector<Value>* {
    auto it = doc.fields.find("rows");
    if (it == doc.fields.end() || it->second.kind != Value::Kind::kArray) {
      report.Fail(name + ": " + which + " has no rows array");
      return nullptr;
    }
    return &it->second.items;
  };
  const std::vector<Value>* base_rows = rows_of(base, "baseline");
  const std::vector<Value>* cur_rows = rows_of(cur, "current");
  if (!base_rows || !cur_rows) return;
  if (base_rows->size() != cur_rows->size()) {
    report.Fail(name + ": row count " + std::to_string(base_rows->size()) +
                " -> " + std::to_string(cur_rows->size()));
    return;
  }
  for (std::size_t i = 0; i < base_rows->size(); ++i) {
    if ((*base_rows)[i].kind != Value::Kind::kObject ||
        (*cur_rows)[i].kind != Value::Kind::kObject) {
      report.Fail(name + " row " + std::to_string(i) + ": not an object");
      continue;
    }
    CompareRow(name, i, (*base_rows)[i], (*cur_rows)[i], report);
  }
}

std::map<std::string, fs::path> ListArtifacts(const fs::path& dir) {
  std::map<std::string, fs::path> out;
  if (!fs::is_directory(dir)) return out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 && name.size() > 5 &&
        name.substr(name.size() - 5) == ".json") {
      out[name] = entry.path();
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s <baseline-dir> <current-dir>\n", argv[0]);
    return 2;
  }
  const fs::path baseline_dir = argv[1];
  const fs::path current_dir = argv[2];
  if (!fs::is_directory(baseline_dir)) {
    std::fprintf(stderr, "baseline dir %s does not exist\n", argv[1]);
    return 2;
  }

  const auto baselines = ListArtifacts(baseline_dir);
  const auto currents = ListArtifacts(current_dir);
  if (baselines.empty()) {
    std::fprintf(stderr, "no BENCH_*.json baselines under %s\n", argv[1]);
    return 2;
  }

  std::printf("=== bench drift gate: %zu baseline artifact(s) ===\n",
              baselines.size());
  Report report;
  for (const auto& [name, base_path] : baselines) {
    auto it = currents.find(name);
    std::printf("%s\n", name.c_str());
    if (it == currents.end()) {
      report.Fail(name + ": artifact missing from current run (" +
                  current_dir.string() + ")");
      continue;
    }
    try {
      const Value base = LoadJson(base_path);
      const Value cur = LoadJson(it->second);
      CompareArtifact(name, base, cur, report);
    } catch (const std::exception& e) {
      report.Fail(e.what());
    }
  }
  for (const auto& [name, path] : currents) {
    (void)path;
    if (baselines.find(name) == baselines.end()) {
      report.Fail(name +
                  ": produced by current run but has no committed baseline "
                  "(add it to bench/baseline/)");
    }
  }

  std::printf(
      "\n%d metric(s) compared, %d host-dependent key(s) skipped, "
      "%d drift failure(s)\n",
      report.compared, report.skipped, report.failures);
  if (report.failures != 0) {
    std::printf("FAIL: refresh bench/baseline/ if the change is intended\n");
    return 1;
  }
  std::printf("OK: all artifacts within tolerance\n");
  return 0;
}
