// bench_fig4_asm — reproduces Fig. 4 of the paper: the algorithmic state
// machine of the MMMC.  Traces the controller through a complete
// multiplication (states, counter, comparator, X-register shifts), prints
// the per-state cycle occupancy for a sweep of l, and verifies the DONE
// latency 3l+4 on every row.
#include <cstdio>
#include <map>

#include "bignum/random.hpp"
#include "core/mmmc.hpp"
#include "core/schedule.hpp"

int main() {
  using mont::bignum::BigUInt;
  using mont::core::Mmmc;
  using mont::core::MmmcState;
  using mont::core::MmmcStateName;

  std::printf("=== Fig. 4: ASM of the Montgomery modular multiplier ===\n\n");

  // --- full trace on a small instance (l = 6, N = 45, x = 29, y = 51) ---
  {
    Mmmc circuit{BigUInt{45}};
    circuit.ApplyInputs(BigUInt{29}, BigUInt{51});
    std::printf("--- cycle-by-cycle trace, l = %zu ---\n", circuit.l());
    std::printf("%5s %-5s %7s %9s %6s\n", "cycle", "state", "counter",
                "count-end", "done");
    std::printf("%5s %-5s %7s %9s %6s   (IDLE: load X,Y,N; clear T, counter)\n",
                "0", "IDLE", "-", "-", "0");
    int cycle = 1;
    circuit.Tick();
    while (true) {
      std::printf("%5d %-5s %7llu %9s %6d\n", cycle,
                  MmmcStateName(circuit.State()),
                  static_cast<unsigned long long>(circuit.Counter()),
                  circuit.CountEnd() ? "1" : "0", circuit.Done() ? 1 : 0);
      if (circuit.Done()) break;
      circuit.Tick();
      ++cycle;
    }
    std::printf("result = %s (DONE after %d cycles = 3l+4 = %llu)\n\n",
                circuit.Result().ToDec().c_str(), cycle,
                static_cast<unsigned long long>(
                    mont::core::MultiplyCycles(circuit.l())));
  }

  // --- state occupancy across l ---
  std::printf("--- state occupancy per multiplication ---\n");
  std::printf("%6s %6s %6s %6s %6s %8s %10s\n", "l", "IDLE", "MUL1", "MUL2",
              "OUT", "total", "=3l+4?");
  mont::bignum::RandomBigUInt rng(0xf14u);
  for (const std::size_t bits : {8u, 16u, 32u, 64u, 128u, 256u}) {
    const BigUInt n = rng.OddExactBits(bits);
    Mmmc circuit(n);
    circuit.ApplyInputs(rng.Below(n << 1), rng.Below(n << 1));
    std::map<MmmcState, std::uint64_t> occupancy;
    ++occupancy[MmmcState::kIdle];  // the load cycle
    circuit.Tick();
    std::uint64_t total = 1;
    while (!circuit.Done()) {
      ++occupancy[circuit.State()];
      circuit.Tick();
      ++total;
    }
    ++occupancy[MmmcState::kOut];
    std::printf("%6zu %6llu %6llu %6llu %6llu %8llu %10s\n", bits,
                static_cast<unsigned long long>(occupancy[MmmcState::kIdle]),
                static_cast<unsigned long long>(occupancy[MmmcState::kMul1]),
                static_cast<unsigned long long>(occupancy[MmmcState::kMul2]),
                static_cast<unsigned long long>(occupancy[MmmcState::kOut]),
                static_cast<unsigned long long>(total),
                total == mont::core::MultiplyCycles(bits) ? "yes" : "NO");
  }

  std::printf("\nMUL1/MUL2 alternate (even/odd compute phases); the counter "
              "increments in MUL2 only\nand the comparator fires at counter "
              "== l+1, launching the skewed result capture.\n");
  return 0;
}
