// bench_fig4_asm — reproduces Fig. 4 of the paper: the algorithmic state
// machine of the MMMC.  Traces the controller through a complete
// multiplication (states, counter, comparator, X-register shifts), prints
// the per-state cycle occupancy for a sweep of l, and verifies the DONE
// latency 3l+4 on every row.
//
// Writes BENCH_fig4_asm.json (see bench_json.hpp) for the CI drift gate;
// --smoke trims the occupancy sweep for the ctest `perf` label.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "bignum/random.hpp"
#include "core/mmmc.hpp"
#include "core/schedule.hpp"

int main(int argc, char** argv) {
  using mont::bignum::BigUInt;
  using mont::core::Mmmc;
  using mont::core::MmmcState;
  using mont::core::MmmcStateName;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::vector<std::size_t> sweep =
      smoke ? std::vector<std::size_t>{8, 16, 32, 64}
            : std::vector<std::size_t>{8, 16, 32, 64, 128, 256};

  std::printf("=== Fig. 4: ASM of the Montgomery modular multiplier ===\n\n");

  // --- full trace on a small instance (l = 6, N = 45, x = 29, y = 51) ---
  {
    Mmmc circuit{BigUInt{45}};
    circuit.ApplyInputs(BigUInt{29}, BigUInt{51});
    std::printf("--- cycle-by-cycle trace, l = %zu ---\n", circuit.l());
    std::printf("%5s %-5s %7s %9s %6s\n", "cycle", "state", "counter",
                "count-end", "done");
    std::printf("%5s %-5s %7s %9s %6s   (IDLE: load X,Y,N; clear T, counter)\n",
                "0", "IDLE", "-", "-", "0");
    int cycle = 1;
    circuit.Tick();
    while (true) {
      std::printf("%5d %-5s %7llu %9s %6d\n", cycle,
                  MmmcStateName(circuit.State()),
                  static_cast<unsigned long long>(circuit.Counter()),
                  circuit.CountEnd() ? "1" : "0", circuit.Done() ? 1 : 0);
      if (circuit.Done()) break;
      circuit.Tick();
      ++cycle;
    }
    std::printf("result = %s (DONE after %d cycles = 3l+4 = %llu)\n\n",
                circuit.Result().ToDec().c_str(), cycle,
                static_cast<unsigned long long>(
                    mont::core::MultiplyCycles(circuit.l())));
  }

  // --- state occupancy across l ---
  std::printf("--- state occupancy per multiplication ---\n");
  std::printf("%6s %6s %6s %6s %6s %8s %10s\n", "l", "IDLE", "MUL1", "MUL2",
              "OUT", "total", "=3l+4?");
  std::vector<mont::bench::JsonRow> rows;
  bool all_match = true;
  mont::bignum::RandomBigUInt rng(0xf14u);
  for (const std::size_t bits : sweep) {
    const BigUInt n = rng.OddExactBits(bits);
    Mmmc circuit(n);
    circuit.ApplyInputs(rng.Below(n << 1), rng.Below(n << 1));
    std::map<MmmcState, std::uint64_t> occupancy;
    ++occupancy[MmmcState::kIdle];  // the load cycle
    circuit.Tick();
    std::uint64_t total = 1;
    while (!circuit.Done()) {
      ++occupancy[circuit.State()];
      circuit.Tick();
      ++total;
    }
    ++occupancy[MmmcState::kOut];
    std::printf("%6zu %6llu %6llu %6llu %6llu %8llu %10s\n", bits,
                static_cast<unsigned long long>(occupancy[MmmcState::kIdle]),
                static_cast<unsigned long long>(occupancy[MmmcState::kMul1]),
                static_cast<unsigned long long>(occupancy[MmmcState::kMul2]),
                static_cast<unsigned long long>(occupancy[MmmcState::kOut]),
                static_cast<unsigned long long>(total),
                total == mont::core::MultiplyCycles(bits) ? "yes" : "NO");
    all_match = all_match && total == mont::core::MultiplyCycles(bits);
    rows.push_back({
        {"l", bits},
        {"idle_cycles", occupancy[MmmcState::kIdle]},
        {"mul1_cycles", occupancy[MmmcState::kMul1]},
        {"mul2_cycles", occupancy[MmmcState::kMul2]},
        {"out_cycles", occupancy[MmmcState::kOut]},
        {"total_cycles", total},
        {"formula_cycles", mont::core::MultiplyCycles(bits)},
        {"matches_formula", total == mont::core::MultiplyCycles(bits)},
    });
  }
  const std::string path = mont::bench::WriteBenchJson(
      "fig4_asm", rows, {{"smoke", smoke}});

  std::printf("\nMUL1/MUL2 alternate (even/odd compute phases); the counter "
              "increments in MUL2 only\nand the comparator fires at counter "
              "== l+1, launching the skewed result capture.\nJSON written to "
              "%s\n", path.c_str());
  return all_match ? 0 : 1;
}
