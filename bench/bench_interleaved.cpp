// bench_interleaved — ablation: filling the array's idle parity.
//
// On the paper's 2i+j schedule every cell idles half the time (the
// MUL1/MUL2 alternation).  This bench quantifies what the idle phase is
// worth: dual-channel multiplication throughput, and right-to-left
// exponentiation with the square/multiply streams paired — against the
// paper's sequential Algorithm 3 on the same array.
//
// Writes BENCH_interleaved.json (see bench_json.hpp) so CI can track the
// pairing speedups; --smoke cuts the exponentiation sizes for the ctest
// `perf` label.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "bignum/random.hpp"
#include "core/exponentiator.hpp"
#include "core/interleaved.hpp"
#include "core/netlist_gen.hpp"
#include "core/schedule.hpp"
#include "fpga/device_model.hpp"

int main(int argc, char** argv) {
  using mont::bignum::BigUInt;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  std::vector<mont::bench::JsonRow> json_rows;

  std::printf("=== ablation: dual-channel (C-slow) operation of the array "
              "===\n\n");

  std::printf("--- two independent multiplications ---\n");
  std::printf("%6s %18s %18s %10s\n", "l", "sequential (cyc)",
              "interleaved (cyc)", "speedup");
  for (const std::size_t l : {32u, 128u, 512u, 1024u}) {
    const std::uint64_t seq = 2 * mont::core::MultiplyCycles(l);
    const std::uint64_t dual = mont::core::InterleavedMmmc::PairCycles(l);
    const double speedup = static_cast<double>(seq) / static_cast<double>(dual);
    std::printf("%6zu %18llu %18llu %9.3fx\n", l,
                static_cast<unsigned long long>(seq),
                static_cast<unsigned long long>(dual), speedup);
    json_rows.push_back({
        {"kind", "pair"},
        {"l", l},
        {"sequential_cycles", seq},
        {"interleaved_cycles", dual},
        {"speedup", speedup},
    });
  }
  std::printf("(hardware cost: one extra X register, one Y register + "
              "per-cell phase mux, one result\nregister, and per-channel "
              "copies of the two top T bits — the cell array is unchanged)\n");

  std::printf("\n--- full exponentiation: paired right-to-left vs the "
              "paper's Algorithm 3 ---\n");
  std::printf("%6s | %16s %16s %9s | %s\n", "l", "Alg.3 (cycles)",
              "paired (cycles)", "speedup", "verified");
  mont::bignum::RandomBigUInt rng(0x17e9u);
  const std::vector<std::size_t> exp_bits =
      smoke ? std::vector<std::size_t>{16u, 32u}
            : std::vector<std::size_t>{16u, 32u, 64u, 96u};
  for (const std::size_t bits : exp_bits) {
    const BigUInt n = rng.OddExactBits(bits);
    const BigUInt base = rng.Below(n);
    const BigUInt e = rng.BalancedExactBits(bits);

    mont::core::Exponentiator sequential(n);
    mont::core::EngineStats seq_stats;
    const BigUInt want = sequential.ModExp(base, e, &seq_stats);

    mont::core::InterleavedExponentiator paired(n);
    mont::core::EngineStats pair_stats;
    const BigUInt got = paired.ModExp(base, e, &pair_stats);

    const double speedup = static_cast<double>(seq_stats.engine_cycles) /
                           static_cast<double>(pair_stats.engine_cycles);
    const bool verified = got == want;
    std::printf("%6zu | %16llu %16llu %8.3fx | %s\n", bits,
                static_cast<unsigned long long>(seq_stats.engine_cycles),
                static_cast<unsigned long long>(pair_stats.engine_cycles),
                speedup, verified ? "ok" : "MISMATCH");
    json_rows.push_back({
        {"kind", "modexp"},
        {"l", bits},
        {"alg3_cycles", seq_stats.engine_cycles},
        {"paired_cycles", pair_stats.engine_cycles},
        {"paired_issues", pair_stats.paired_issues},
        {"single_issues", pair_stats.single_issues},
        {"speedup", speedup},
        {"verified", verified},
    });
  }

  // Scale the 1024-bit picture with the device model.
  {
    const std::size_t l = 1024;
    const auto gen = mont::core::BuildMmmcNetlist(l);
    const double tp = mont::fpga::AnalyzeNetlist(*gen.netlist).clock_period_ns;
    // Balanced exponent: l squares paired with l/2 multiplies -> l/2 pairs
    // + l/2 single squares (+pre/post), vs 1.5l sequential MMMs.
    const double seq_ms = static_cast<double>(
                              mont::core::ExponentiationAverageCycles(l)) *
                          tp * 1e-6;
    const std::uint64_t paired_cycles =
        (l / 2) * mont::core::InterleavedMmmc::PairCycles(l) +
        (l / 2 + 2) * mont::core::MultiplyCycles(l);
    const double paired_ms = static_cast<double>(paired_cycles) * tp * 1e-6;
    std::printf("\nRSA-1024 average decryption on the modelled V812E: "
                "%.2f ms -> %.2f ms (%.2fx)\n",
                seq_ms, paired_ms, seq_ms / paired_ms);
    json_rows.push_back({
        {"kind", "rsa1024_model"},
        {"l", l},
        {"tp_ns", tp},
        {"sequential_ms", seq_ms},
        {"paired_ms", paired_ms},
        {"speedup", seq_ms / paired_ms},
    });
  }
  const std::string path =
      mont::bench::WriteBenchJson("interleaved", json_rows, {{"smoke", smoke}});
  std::printf("\n(The paper's future-work systolic exponentiator of Iwamura "
              "et al. exploits exactly\nthis idle phase; here it is built "
              "and measured.)\nJSON written to %s\n", path.c_str());
  return 0;
}
