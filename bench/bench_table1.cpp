// bench_table1 — reproduces Table 1 of the paper: clock period Tp and the
// average time for one modular exponentiation for l in {32,...,1024} on the
// modelled Xilinx V812E-BG-560-8.
//
// Method: Tp comes from the device model applied to the generated MMMC
// netlist; cycle counts come from the validated exponentiator model (the
// per-MMM count 3l+4 is asserted against the clock-by-clock simulation in
// the test suite).  For each l, random balanced-Hamming-weight exponents
// are run through the exponentiator and the measured MMM cycles are
// averaged; the paper's closed-form average (l squarings + l/2 multiplies)
// is printed alongside.  Also prints the Eq. 10 bounds.
//
// Writes BENCH_table1.json (see bench_json.hpp) so CI can track model
// drift against the paper's numbers; --smoke cuts the per-row trial count
// for the ctest `perf` label.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "bignum/random.hpp"
#include "core/exponentiator.hpp"
#include "core/netlist_gen.hpp"
#include "core/schedule.hpp"
#include "fpga/device_model.hpp"

namespace {

struct PaperRow {
  std::size_t l;
  double tp_ns;
  double texp_ms;
};

constexpr PaperRow kPaperTable1[] = {
    {32, 9.256, 0.046},   {128, 10.242, 0.775},  {256, 9.956, 2.974},
    {512, 10.501, 12.468}, {1024, 10.458, 49.508},
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const int kTrials = smoke ? 1 : 3;

  std::printf("=== Table 1: clock period and average modular exponentiation "
              "time ===\n");
  std::printf("(paper: Xilinx V812E-BG-560-8; here: calibrated device model "
              "+ validated cycle counts)\n\n");
  std::printf("%6s | %-21s | %-31s | %s\n", "", "Tp (ns)", "avg T_mod-exp (ms)",
              "avg cycles");
  std::printf("%6s | %9s %11s | %9s %10s %10s | %s\n", "l", "paper", "model",
              "paper", "formula", "measured", "measured");
  std::printf("-------+----------------------+---------------------------------"
              "+-----------\n");

  std::vector<mont::bench::JsonRow> json_rows;
  mont::bignum::RandomBigUInt rng(0x7ab1e1u);
  for (const PaperRow& row : kPaperTable1) {
    const auto gen = mont::core::BuildMmmcNetlist(row.l);
    const auto fpga = mont::fpga::AnalyzeNetlist(*gen.netlist);

    // Measure: average total MMM cycles over random balanced exponents.
    // (The fast engine is bit-exact vs the clock-level model; each MMM is
    // charged the validated 3l+4.)
    const mont::bignum::BigUInt n = rng.OddExactBits(row.l);
    mont::core::Exponentiator exponentiator(n);
    std::uint64_t total_cycles = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      const auto base = rng.Below(n);
      const auto exponent = rng.BalancedExactBits(row.l);
      mont::core::EngineStats stats;
      exponentiator.ModExp(base, exponent, &stats);
      total_cycles += stats.engine_cycles +
                      mont::core::PrecomputeCycles(row.l) +
                      mont::core::PostprocessCycles(row.l);
    }
    const double measured_cycles =
        static_cast<double>(total_cycles) / kTrials;
    const std::uint64_t formula_cycles =
        mont::core::ExponentiationAverageCycles(row.l);
    const double measured_ms =
        measured_cycles * fpga.clock_period_ns * 1e-6;

    const double formula_ms =
        static_cast<double>(formula_cycles) * fpga.clock_period_ns * 1e-6;
    std::printf("%6zu | %9.3f %11.3f | %9.3f %10.3f %10.3f | %10.0f\n", row.l,
                row.tp_ns, fpga.clock_period_ns, row.texp_ms, formula_ms,
                measured_ms, measured_cycles);

    json_rows.push_back({
        {"l", row.l},
        {"tp_paper_ns", row.tp_ns},
        {"tp_model_ns", fpga.clock_period_ns},
        {"texp_paper_ms", row.texp_ms},
        {"texp_formula_ms", formula_ms},
        {"texp_measured_ms", measured_ms},
        {"avg_measured_cycles", measured_cycles},
        {"avg_formula_cycles", formula_cycles},
        {"eq10_lower_cycles", mont::core::ExponentiationLowerBound(row.l)},
        {"eq10_upper_cycles", mont::core::ExponentiationUpperBound(row.l)},
    });
  }

  std::printf("\n--- Eq. 10 bounds: 3l^2+10l+12 <= T_mod-exp(cycles) <= "
              "6l^2+14l+12 ---\n");
  std::printf("%6s %14s %14s %14s %14s\n", "l", "lower", "avg(formula)",
              "upper", "avg within");
  for (const PaperRow& row : kPaperTable1) {
    const std::uint64_t lo = mont::core::ExponentiationLowerBound(row.l);
    const std::uint64_t hi = mont::core::ExponentiationUpperBound(row.l);
    const std::uint64_t avg = mont::core::ExponentiationAverageCycles(row.l);
    std::printf("%6zu %14" PRIu64 " %14" PRIu64 " %14" PRIu64 " %14s\n", row.l,
                lo, avg, hi, (lo <= avg && avg <= hi) ? "yes" : "NO");
  }
  const std::string path = mont::bench::WriteBenchJson(
      "table1", json_rows, {{"smoke", smoke}, {"trials", kTrials}});
  std::printf("\nShape check: who wins and where — times scale as l^2 with a "
              "flat clock,\nmatching the paper's Table 1 within the device "
              "model's calibration band.\nJSON written to %s\n", path.c_str());
  return 0;
}
