// bench_baseline — reproduces the paper's §2/§4.4 comparison against
// Blum & Paar's designs: iteration counts, clock period, per-MMM time and
// full 1024-bit exponentiation time, plus the radix and final-subtraction
// ablations called out in DESIGN.md.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "baseline/blum_paar.hpp"
#include "bench_json.hpp"
#include "bignum/random.hpp"
#include "core/high_radix.hpp"
#include "core/netlist_gen.hpp"
#include "core/schedule.hpp"
#include "fpga/device_model.hpp"

int main(int argc, char** argv) {
  using mont::baseline::BlumPaarRadix2;
  using mont::baseline::FinalSubtractionModel;
  using mont::baseline::HighRadixModel;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::vector<std::size_t> sweep =
      smoke ? std::vector<std::size_t>{32, 64, 128, 256}
            : std::vector<std::size_t>{32, 64, 128, 256, 512, 1024};
  // The radix ablation rebuilds the full netlist; smoke uses a shorter l.
  const std::size_t ablation_l = smoke ? 256 : 1024;
  std::vector<mont::bench::JsonRow> rows;

  std::printf("=== §2/§4.4: this design vs Blum-Paar radix-2 ===\n\n");

  const double bp_tp = BlumPaarRadix2::ClockPeriodNs();
  std::printf("%6s | %11s %11s | %9s %9s | %11s %11s | %8s\n", "l",
              "ours cyc", "BP cyc", "ours Tp", "BP Tp", "ours T(us)",
              "BP T(us)", "speedup");
  std::printf("-------+-------------------------+---------------------+-------"
              "------------------+---------\n");
  for (const std::size_t l : sweep) {
    const auto gen = mont::core::BuildMmmcNetlist(l);
    const double our_tp =
        mont::fpga::AnalyzeNetlist(*gen.netlist).clock_period_ns;
    const std::uint64_t our_cycles = mont::core::MultiplyCycles(l);
    const std::uint64_t bp_cycles = BlumPaarRadix2::MultiplyCycles(l);
    const double ours_us = static_cast<double>(our_cycles) * our_tp * 1e-3;
    const double bp_us = static_cast<double>(bp_cycles) * bp_tp * 1e-3;
    std::printf("%6zu | %11llu %11llu | %9.3f %9.3f | %11.3f %11.3f | %7.2fx\n",
                l, static_cast<unsigned long long>(our_cycles),
                static_cast<unsigned long long>(bp_cycles), our_tp, bp_tp,
                ours_us, bp_us, bp_us / ours_us);
    rows.push_back({
        {"phase", "vs_blum_paar"},
        {"l", l},
        {"our_cycles", our_cycles},
        {"bp_cycles", bp_cycles},
        {"our_tp_ns", our_tp},
        {"bp_tp_ns", bp_tp},
        {"our_t_us", ours_us},
        {"bp_t_us", bp_us},
        {"speedup", bp_us / ours_us},
    });
  }
  std::printf("\n(The win comes from (a) R = 2^(l+2): l+2 iterations instead "
              "of l+3, and (b) pure-\ncombinational 1-bit cells: no per-PE "
              "command registers/muxes on the critical path.)\n");

  // Functional cross-check: both designs compute correct modular products.
  {
    mont::bignum::RandomBigUInt rng(0xbb01u);
    const auto n = rng.OddExactBits(256);
    BlumPaarRadix2 bp(n);
    std::uint64_t mmm_count = 0;
    const auto base = rng.Below(n);
    const auto e = rng.ExactBits(128);
    const auto got = bp.ModExp(base, e, &mmm_count);
    const auto expect = mont::bignum::BigUInt::ModExp(base, e, n);
    std::printf("\nfunctional cross-check (256-bit modexp on BP model): %s "
                "(%llu MMMs)\n",
                got == expect ? "OK" : "MISMATCH",
                static_cast<unsigned long long>(mmm_count));
  }

  // --- radix ablation (Blum-Paar high-radix [4]) ---
  std::printf("\n=== ablation: radix 2^u at l = %zu ===\n", ablation_l);
  std::printf("%8s %12s %12s %14s\n", "radix", "cycles", "Tp (ns)",
              "T_MMM (us)");
  {
    const std::size_t l = ablation_l;
    const auto gen = mont::core::BuildMmmcNetlist(l);
    const double our_tp =
        mont::fpga::AnalyzeNetlist(*gen.netlist).clock_period_ns;
    std::printf("%8s %12llu %12.3f %14.3f   <- this design\n", "2",
                static_cast<unsigned long long>(mont::core::MultiplyCycles(l)),
                our_tp,
                static_cast<double>(mont::core::MultiplyCycles(l)) * our_tp *
                    1e-3);
    rows.push_back({
        {"phase", "radix_ablation"},
        {"l", l},
        {"radix_bits", 1},
        {"cycles", mont::core::MultiplyCycles(l)},
        {"tp_ns", our_tp},
        {"t_mmm_us",
         static_cast<double>(mont::core::MultiplyCycles(l)) * our_tp * 1e-3},
    });
    for (const std::size_t u : {4u, 8u, 16u}) {
      const HighRadixModel model{.radix_bits = u};
      const double tp = model.ClockPeriodNs();
      std::printf("%8zu %12llu %12.3f %14.3f\n", u,
                  static_cast<unsigned long long>(model.MultiplyCycles(l)), tp,
                  static_cast<double>(model.MultiplyCycles(l)) * tp * 1e-3);
      rows.push_back({
          {"phase", "radix_ablation"},
          {"l", l},
          {"radix_bits", u},
          {"cycles", model.MultiplyCycles(l)},
          {"tp_ns", tp},
          {"t_mmm_us",
           static_cast<double>(model.MultiplyCycles(l)) * tp * 1e-3},
      });
    }
    // Functional cross-check of the radix-2^u datapath implementation.
    mont::bignum::RandomBigUInt rng(0xbb02u);
    const auto n = rng.OddExactBits(l);
    const mont::core::HighRadixMultiplier radix16(n, 4);
    const auto x = rng.Below(n), y = rng.Below(n);
    const auto r_inv =
        mont::bignum::BigUInt::ModInverse(radix16.R() % n, n);
    const bool functional_ok =
        radix16.Multiply(x, y) % n == (x * y * r_inv) % n;
    std::printf("radix-16 functional check at l=%zu (%zu iterations): %s\n",
                l, radix16.Iterations(), functional_ok ? "OK" : "MISMATCH");
  }
  std::printf("(higher radix trades cycles for clock period and area — the "
              "paper's reason to pick radix 2\nfor an arbitrary-precision "
              "multiplier)\n");

  // --- final-subtraction ablation (what Walter's bound buys) ---
  std::printf("\n=== ablation: Algorithm 1 (final subtraction) vs Algorithm 2 "
              "===\n");
  std::printf("%6s %16s %16s %10s\n", "l", "Alg1 cycles", "Alg2 cycles",
              "saved");
  for (const std::size_t l : {32u, 256u, 1024u}) {
    const std::uint64_t alg1 = FinalSubtractionModel::MultiplyCycles(l);
    const std::uint64_t alg2 = mont::core::MultiplyCycles(l);
    std::printf("%6zu %16llu %16llu %9.1f%%\n", l,
                static_cast<unsigned long long>(alg1),
                static_cast<unsigned long long>(alg2),
                100.0 * static_cast<double>(alg1 - alg2) /
                    static_cast<double>(alg1));
    rows.push_back({
        {"phase", "final_subtraction"},
        {"l", l},
        {"alg1_cycles", alg1},
        {"alg2_cycles", alg2},
        {"saved_percent", 100.0 * static_cast<double>(alg1 - alg2) /
                              static_cast<double>(alg1)},
    });
  }
  const std::string path = mont::bench::WriteBenchJson(
      "baseline", rows, {{"smoke", smoke}});
  std::printf("(plus the removed comparator/subtractor area, and constant-"
              "time operation — the paper\nnotes the reduction step is "
              "presumed vulnerable to side-channel attacks)\nJSON written "
              "to %s\n", path.c_str());
  return 0;
}
