// Gate-level validation: the generated MMMC netlist must match the
// behavioural cycle-accurate model clock-for-clock and bit-for-bit, the
// generated array must match the derived closed-form area model exactly,
// and the critical path must be independent of the operand length.
#include <gtest/gtest.h>

#include "bignum/biguint.hpp"
#include "bignum/montgomery.hpp"
#include "bignum/random.hpp"
#include "core/area_model.hpp"
#include "core/cells.hpp"
#include "core/mmmc.hpp"
#include "core/netlist_gen.hpp"
#include "core/schedule.hpp"
#include "rtl/simulator.hpp"
#include "rtl/timing.hpp"
#include "rtl/verilog.hpp"
#include "testutil.hpp"
#include "testutil_netlist.hpp"

namespace mont::core {
namespace {

using bignum::BigUInt;
using bignum::RandomBigUInt;

// ---------------------------------------------------------------------------
// Cell truth tables against the recurrence equations (Eq. 5-9).
// ---------------------------------------------------------------------------

TEST(Cells, RightmostMatchesEq5And7) {
  rtl::Netlist nl;
  const rtl::NetId t1 = nl.AddInput("t1");
  const rtl::NetId x = nl.AddInput("x");
  const rtl::NetId y0 = nl.AddInput("y0");
  const RightmostCellOut cell = BuildRightmostCell(nl, t1, x, y0);
  rtl::Simulator sim(nl);
  for (int v = 0; v < 8; ++v) {
    const int vt = v & 1, vx = (v >> 1) & 1, vy = (v >> 2) & 1;
    sim.SetInput(t1, vt);
    sim.SetInput(x, vx);
    sim.SetInput(y0, vy);
    sim.Settle();
    const int sum = vt + (vx & vy);  // Eq. 6 with m folded in: 2*c0 + 0
    EXPECT_EQ(sim.Peek(cell.m), (vt ^ (vx & vy)) != 0) << "Eq. 5";
    EXPECT_EQ(sim.Peek(cell.c0), sum >= 1) << "Eq. 7";
  }
}

TEST(Cells, FirstBitMatchesEq8) {
  rtl::Netlist nl;
  const auto in = [&](const char* name) { return nl.AddInput(name); };
  const rtl::NetId t2 = in("t2"), x = in("x"), y1 = in("y1"), m = in("m"),
                   n1 = in("n1"), c00 = in("c00");
  const InnerCellOut cell = BuildFirstBitCell(nl, t2, x, y1, m, n1, c00);
  rtl::Simulator sim(nl);
  for (int v = 0; v < 64; ++v) {
    const int vt = v & 1, vx = (v >> 1) & 1, vy = (v >> 2) & 1,
              vm = (v >> 3) & 1, vn = (v >> 4) & 1, vc = (v >> 5) & 1;
    sim.SetInput(t2, vt);
    sim.SetInput(x, vx);
    sim.SetInput(y1, vy);
    sim.SetInput(m, vm);
    sim.SetInput(n1, vn);
    sim.SetInput(c00, vc);
    sim.Settle();
    const int total = vt + (vx & vy) + (vm & vn) + vc;  // Eq. 8 RHS
    const int got = (sim.Peek(cell.t) ? 1 : 0) + 2 * (sim.Peek(cell.c0) ? 1 : 0) +
                    4 * (sim.Peek(cell.c1) ? 1 : 0);
    EXPECT_EQ(got, total) << "v=" << v;
  }
}

TEST(Cells, RegularMatchesEq4) {
  rtl::Netlist nl;
  const auto in = [&](const char* name) { return nl.AddInput(name); };
  const rtl::NetId t = in("t"), x = in("x"), y = in("y"), m = in("m"),
                   n = in("n"), c0 = in("c0"), c1 = in("c1");
  const InnerCellOut cell = BuildRegularCell(nl, t, x, y, m, n, c0, c1);
  rtl::Simulator sim(nl);
  for (int v = 0; v < 128; ++v) {
    const int vt = v & 1, vx = (v >> 1) & 1, vy = (v >> 2) & 1,
              vm = (v >> 3) & 1, vn = (v >> 4) & 1, vc0 = (v >> 5) & 1,
              vc1 = (v >> 6) & 1;
    sim.SetInput(t, vt);
    sim.SetInput(x, vx);
    sim.SetInput(y, vy);
    sim.SetInput(m, vm);
    sim.SetInput(n, vn);
    sim.SetInput(c0, vc0);
    sim.SetInput(c1, vc1);
    sim.Settle();
    const int total = vt + (vx & vy) + (vm & vn) + vc0 + 2 * vc1;  // Eq. 4 RHS
    const int got = (sim.Peek(cell.t) ? 1 : 0) + 2 * (sim.Peek(cell.c0) ? 1 : 0) +
                    4 * (sim.Peek(cell.c1) ? 1 : 0);
    EXPECT_EQ(got, total) << "v=" << v;
  }
}

TEST(Cells, LeftmostMatchesWidenedEq9) {
  rtl::Netlist nl;
  const auto in = [&](const char* name) { return nl.AddInput(name); };
  const rtl::NetId t1 = in("t_l1"), t2 = in("t_l2"), x = in("x"), y = in("y"),
                   c0 = in("c0"), c1 = in("c1");
  const LeftmostCellOut cell = BuildLeftmostCell(nl, t1, t2, x, y, c0, c1);
  rtl::Simulator sim(nl);
  for (int v = 0; v < 64; ++v) {
    const int vt1 = v & 1, vt2 = (v >> 1) & 1, vx = (v >> 2) & 1,
              vy = (v >> 3) & 1, vc0 = (v >> 4) & 1, vc1 = (v >> 5) & 1;
    sim.SetInput(t1, vt1);
    sim.SetInput(t2, vt2);
    sim.SetInput(x, vx);
    sim.SetInput(y, vy);
    sim.SetInput(c0, vc0);
    sim.SetInput(c1, vc1);
    sim.Settle();
    // Widened Eq. 9: t_{i-1,l+1} + x*y_l + c0 + 2*(t_{i-1,l+2} + c1).
    const int total = vt1 + (vx & vy) + vc0 + 2 * (vt2 + vc1);
    const int got = (sim.Peek(cell.t) ? 1 : 0) +
                    2 * (sim.Peek(cell.t_top) ? 1 : 0) +
                    4 * (sim.Peek(cell.t_top2) ? 1 : 0);
    EXPECT_EQ(got, total) << "v=" << v;
  }
}

// ---------------------------------------------------------------------------
// Area: generated array matches the derived closed form exactly; paper's
// published closed form has the same slope in l.
// ---------------------------------------------------------------------------

class ArrayArea : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ArrayArea, GeneratedNetlistMatchesDerivedFormula) {
  const std::size_t l = GetParam();
  const SystolicArrayNetlist array = BuildSystolicArrayComb(l);
  const rtl::NetlistStats stats = array.netlist->Stats();
  const GateCounts expect = DerivedArrayCombFormula(l);
  EXPECT_EQ(stats.xor_gates, expect.xor_gates);
  EXPECT_EQ(stats.and_gates, expect.and_gates);
  EXPECT_EQ(stats.or_gates, expect.or_gates);
  EXPECT_EQ(stats.flip_flops, 0u) << "combinational view has no registers";
}

INSTANTIATE_TEST_SUITE_P(Lengths, ArrayArea,
                         ::testing::Values(2, 3, 4, 8, 16, 32, 64, 128, 256,
                                           512, 1024));

TEST(ArrayArea, PaperAndDerivedFormulasShareSlopes) {
  // Both closed forms are affine in l; compare slopes over a wide range.
  const GateCounts paper_lo = PaperAreaFormula(64);
  const GateCounts paper_hi = PaperAreaFormula(1024);
  const GateCounts ours_lo = DerivedArrayCombFormula(64);
  const GateCounts ours_hi = DerivedArrayCombFormula(1024);
  const auto slope = [](std::size_t lo, std::size_t hi) {
    return static_cast<double>(hi - lo) / (1024 - 64);
  };
  EXPECT_EQ(slope(paper_lo.xor_gates, paper_hi.xor_gates),
            slope(ours_lo.xor_gates, ours_hi.xor_gates))
      << "XOR slope must be 5 per bit";
  EXPECT_EQ(slope(paper_lo.and_gates, paper_hi.and_gates),
            slope(ours_lo.and_gates, ours_hi.and_gates))
      << "AND slope must be 7 per bit";
}

// ---------------------------------------------------------------------------
// Timing: the critical path is the same for every operand length (the
// paper's key scalability claim).
// ---------------------------------------------------------------------------

TEST(ArrayTiming, CriticalPathIndependentOfLength) {
  std::size_t depth_ref = 0;
  for (const std::size_t l : {4u, 16u, 64u, 256u, 1024u}) {
    const SystolicArrayNetlist array = BuildSystolicArrayComb(l);
    const rtl::TimingAnalyzer sta(*array.netlist, rtl::DelayModel::Unit());
    const std::size_t depth = sta.CriticalPath().logic_levels;
    if (depth_ref == 0) depth_ref = depth;
    EXPECT_EQ(depth, depth_ref) << "l=" << l;
  }
  // The depth equals one regular cell's product-to-c1 path.
  EXPECT_LE(depth_ref, 8u);
  EXPECT_GE(depth_ref, 4u);
}

TEST(MmmcTiming, FullCircuitPathGrowsOnlyWithControl) {
  // The full MMMC adds the counter/comparator cone, which grows only
  // logarithmically: the datapath itself stays constant.
  const auto depth_of = [](std::size_t l) {
    const MmmcNetlist mmmc = BuildMmmcNetlist(l);
    const rtl::TimingAnalyzer sta(*mmmc.netlist, rtl::DelayModel::Unit());
    return sta.CriticalPath().logic_levels;
  };
  const std::size_t d32 = depth_of(32);
  const std::size_t d256 = depth_of(256);
  EXPECT_LE(d256, d32 + 4) << "only log-depth control growth allowed";
}

// ---------------------------------------------------------------------------
// Full netlist vs behavioural model: bit-for-bit, clock-for-clock.
// ---------------------------------------------------------------------------

class NetlistVsBehavioural : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NetlistVsBehavioural, LockstepEquivalence) {
  const std::size_t bits = GetParam();
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(bits);
  const BigUInt two_n = n << 1;

  const MmmcNetlist gen = BuildMmmcNetlist(bits);
  test::MmmcNetlistDriver drv(gen);
  Mmmc model(n);
  drv.LoadModulus(n);

  for (int trial = 0; trial < 3; ++trial) {
    const BigUInt x = rng.Below(two_n);
    const BigUInt y = rng.Below(two_n);

    // Behavioural run, then the same multiplication gate by gate.
    std::uint64_t model_cycles = 0;
    const BigUInt expect = model.Multiply(x, y, &model_cycles);
    std::uint64_t gate_cycles = 0;
    const BigUInt got = drv.Multiply(x, y, &gate_cycles);

    EXPECT_EQ(got, expect) << "bits=" << bits << " trial=" << trial;
    EXPECT_EQ(gate_cycles, model_cycles);
    EXPECT_EQ(gate_cycles, MultiplyCycles(bits));
  }
}

INSTANTIATE_TEST_SUITE_P(BitLengths, NetlistVsBehavioural,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8, 12, 16, 24,
                                           32, 48));

// Exhaustive gate-level check on a tiny modulus.
TEST(NetlistVsBehavioural, ExhaustiveTinyModulus) {
  const BigUInt n{13};
  const std::size_t l = 4;
  const MmmcNetlist gen = BuildMmmcNetlist(l);
  test::MmmcNetlistDriver drv(gen);
  bignum::BitSerialMontgomery reference(n);
  drv.LoadModulus(n);
  for (std::uint64_t x = 0; x < 26; ++x) {
    for (std::uint64_t y = 0; y < 26; ++y) {
      const BigUInt bx{x}, by{y};
      EXPECT_EQ(drv.Multiply(bx, by), reference.MultiplyAlg2(bx, by))
          << "x=" << x << " y=" << y;
    }
  }
}

TEST(NetlistExport, MmmcVerilogIsWellFormed) {
  const MmmcNetlist gen = BuildMmmcNetlist(8);
  const std::string verilog = rtl::ExportVerilog(*gen.netlist, "mmmc8");
  EXPECT_NE(verilog.find("module mmmc8"), std::string::npos);
  EXPECT_NE(verilog.find("out_done"), std::string::npos);
  EXPECT_NE(verilog.find("out_result0"), std::string::npos);
  EXPECT_NE(verilog.find("endmodule"), std::string::npos);
}

}  // namespace
}  // namespace mont::core
