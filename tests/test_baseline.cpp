// Tests for the comparison baselines: Blum-Paar radix-2 (functional
// correctness with their R = 2^(l+3), cycle/clock disadvantages), the
// high-radix model, and the final-subtraction model.
#include <gtest/gtest.h>

#include "baseline/blum_paar.hpp"
#include "bignum/montgomery.hpp"
#include "bignum/random.hpp"
#include "core/schedule.hpp"
#include "fpga/device_model.hpp"
#include "testutil.hpp"

namespace mont::baseline {
namespace {

using bignum::BigUInt;
using bignum::RandomBigUInt;

TEST(BlumPaar, RejectsBadModulus) {
  EXPECT_THROW(BlumPaarRadix2(BigUInt{10}), std::invalid_argument);
}

TEST(BlumPaar, MultiplyMatchesDefinition) {
  auto rng = test::TestRng();
  for (const std::size_t bits : {8u, 16u, 64u, 128u}) {
    const BigUInt n = rng.OddExactBits(bits);
    BlumPaarRadix2 bp(n);
    const BigUInt two_n = n << 1;
    for (int trial = 0; trial < 8; ++trial) {
      const BigUInt x = rng.Below(two_n);
      const BigUInt y = rng.Below(two_n);
      // Their R also keeps outputs chainable below 2N.
      EXPECT_TRUE(test::IsChainableMontProduct(bp.Multiply(x, y), x, y, n,
                                               bp.R()))
          << "bits=" << bits;
    }
  }
}

TEST(BlumPaar, ModExpMatchesReference) {
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(96);
  BlumPaarRadix2 bp(n);
  for (int trial = 0; trial < 5; ++trial) {
    const BigUInt base = rng.Below(n);
    const BigUInt e = rng.ExactBits(64);
    EXPECT_EQ(bp.ModExp(base, e), BigUInt::ModExp(base, e, n));
  }
}

TEST(BlumPaar, UsesOneMoreIterationThanOurs) {
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(64);
  BlumPaarRadix2 bp(n);
  bignum::BitSerialMontgomery ours(n);
  EXPECT_EQ(bp.Iterations(), 64u + 3);
  EXPECT_EQ(bp.R(), ours.R() << 1) << "their Montgomery parameter is 2x ours";
  // Different R means different products for the same inputs...
  const BigUInt x = rng.Below(n), y = rng.Below(n);
  const BigUInt theirs = bp.Multiply(x, y) % n;
  const BigUInt mine = ours.MultiplyAlg2(x, y) % n;
  // ...related by exactly one extra halving.
  const BigUInt two_inv = BigUInt::ModInverse(BigUInt{2}, n);
  EXPECT_EQ(theirs, (mine * two_inv) % n);
}

TEST(BlumPaar, CycleCountDisadvantage) {
  for (const std::size_t l : {32u, 128u, 1024u}) {
    EXPECT_GT(BlumPaarRadix2::MultiplyCycles(l), core::MultiplyCycles(l));
    EXPECT_EQ(BlumPaarRadix2::MultiplyCycles(l) - core::MultiplyCycles(l), 2u)
        << "one extra iteration costs two clock cycles on the skewed array";
  }
}

TEST(BlumPaar, ProcessingElementIsSlowerThanOurCell) {
  // The paper's architectural argument: their PE carries 3 control bits and
  // four muxes on the data path, so its registered critical path must be
  // longer than our pure-combinational cell inside the full MMMC.
  const double theirs = BlumPaarRadix2::ClockPeriodNs();
  EXPECT_GT(theirs, 10.451 * 0.99) << "PE clock must not beat the MMMC clock";
  const rtl::Netlist pe = BlumPaarRadix2::BuildProcessingElement();
  const auto report = fpga::AnalyzeNetlist(pe);
  EXPECT_GE(report.lut_depth, 3u);
}

TEST(HighRadix, FewerCyclesButSlowerClock) {
  const HighRadixModel radix4{.radix_bits = 4};
  const HighRadixModel radix16{.radix_bits = 16};
  const std::size_t l = 1024;
  const std::uint64_t ours = core::MultiplyCycles(l);
  EXPECT_LT(radix4.MultiplyCycles(l), ours);
  EXPECT_LT(radix16.MultiplyCycles(l), radix4.MultiplyCycles(l));
  EXPECT_GT(radix4.ClockPeriodNs(), BlumPaarRadix2::ClockPeriodNs());
  EXPECT_GT(radix16.ClockPeriodNs(), radix4.ClockPeriodNs());
}

TEST(FinalSubtraction, CostsOneExtraPass) {
  for (const std::size_t l : {32u, 256u, 1024u}) {
    EXPECT_EQ(FinalSubtractionModel::MultiplyCycles(l),
              core::MultiplyCycles(l) + l + 1);
  }
}

}  // namespace
}  // namespace mont::baseline
