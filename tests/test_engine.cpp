// Tests for the unified multiplication-backend interface (core/engine.hpp):
//
//   * registry contents, unknown-name and capability-mismatch error paths;
//   * the cross-engine equivalence matrix: every registered backend is
//     bit-identical on a shared operand sweep — plain products through the
//     ToMont/Multiply/FromMont round trip, and full ModExp — in GF(p) and,
//     where supported, GF(2^m);
//   * raw Montgomery products agree across the engines sharing the
//     paper's parameter R = 2^(l+2);
//   * batch lanes (netlist-sim) match the scalar path;
//   * normalized EngineStats accounting and the baseline's delegation.
#include <gtest/gtest.h>

#include <algorithm>

#include "baseline/blum_paar.hpp"
#include "bignum/gf2.hpp"
#include "bignum/montgomery.hpp"
#include "bignum/random.hpp"
#include "core/engine.hpp"
#include "core/schedule.hpp"
#include "testutil.hpp"

namespace mont::core {
namespace {

using bignum::BigUInt;

std::vector<std::string> AllNames() { return EngineRegistry::Global().Names(); }

TEST(EngineRegistry, ListsAllBuiltinBackends) {
  const auto names = AllNames();
  for (const char* expected :
       {"bit-serial", "blum-paar", "high-radix", "interleaved", "mmmc",
        "netlist-sim", "word-mont"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing backend " << expected;
  }
}

TEST(EngineRegistry, UnknownNameThrowsAndListsKnownNames) {
  try {
    MakeEngine("no-such-engine", BigUInt{23});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("no-such-engine"), std::string::npos);
    EXPECT_NE(message.find("mmmc"), std::string::npos)
        << "the error should list the registered backends";
  }
}

TEST(EngineRegistry, Gf2CapabilityMismatchThrows) {
  const BigUInt f{0x13};  // x^4 + x + 1
  const EngineOptions gf2{.field = EngineField::kGf2};
  for (const char* gfp_only :
       {"word-mont", "interleaved", "high-radix", "blum-paar"}) {
    EXPECT_THROW(MakeEngine(gfp_only, f, gf2), std::invalid_argument)
        << gfp_only;
    EXPECT_FALSE(EngineRegistry::Global().Find(gfp_only)->caps.gf2);
  }
  for (const char* dual : {"bit-serial", "mmmc", "netlist-sim"}) {
    EXPECT_TRUE(EngineRegistry::Global().Find(dual)->caps.gf2) << dual;
  }
}

TEST(EngineRegistry, InvalidModuliThrowPerField) {
  for (const std::string& name : AllNames()) {
    EXPECT_THROW(MakeEngine(name, BigUInt{24}), std::invalid_argument)
        << name << ": even GF(p) modulus";
    EXPECT_THROW(MakeEngine(name, BigUInt{1}), std::invalid_argument)
        << name << ": modulus 1";
  }
  const EngineOptions gf2{.field = EngineField::kGf2};
  // f(0) != 1 and deg(f) < 2 are invalid field polynomials.
  EXPECT_THROW(MakeEngine("bit-serial", BigUInt{0x12}, gf2),
               std::invalid_argument);
  EXPECT_THROW(MakeEngine("bit-serial", BigUInt{0x3}, gf2),
               std::invalid_argument);
}

TEST(EngineRegistry, HighRadixAlphaValidated) {
  EXPECT_THROW(MakeEngine("high-radix", BigUInt{23}, {.alpha = 0}),
               std::invalid_argument);
  EXPECT_THROW(MakeEngine("high-radix", BigUInt{23}, {.alpha = 33}),
               std::invalid_argument);
  EXPECT_NO_THROW(MakeEngine("high-radix", BigUInt{23}, {.alpha = 4}));
}

TEST(EngineRegistry, DuplicateRegistrationThrows) {
  EXPECT_THROW(EngineRegistry::Global().Register("mmmc", {}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Cross-engine equivalence matrix, GF(p)
// ---------------------------------------------------------------------------

TEST(EngineMatrix, AllBackendsBitIdenticalOnGfpSweep) {
  auto rng = test::TestRng();
  for (const std::size_t bits : {5u, 9u, 12u}) {
    const BigUInt n = rng.OddExactBits(bits);
    std::vector<std::unique_ptr<MmmEngine>> engines;
    for (const std::string& name : AllNames()) {
      engines.push_back(MakeEngine(name, n));
      EXPECT_EQ(engines.back()->Modulus(), n);
      EXPECT_EQ(engines.back()->l(), bits);
    }
    for (int trial = 0; trial < 6; ++trial) {
      // Operands below N sit inside every backend's chainable window.
      const BigUInt x = rng.Below(n), y = rng.Below(n);
      const BigUInt want_product = (x * y) % n;
      const BigUInt e = rng.ExactBits(bits);
      const BigUInt want_power = BigUInt::ModExp(x, e, n);
      for (const auto& engine : engines) {
        // Plain product through the engine's own Montgomery domain.
        EXPECT_EQ(engine->FromMont(
                      engine->Multiply(engine->ToMont(x), engine->ToMont(y))),
                  want_product)
            << engine->Name() << " bits=" << bits;
        // Full exponentiation.
        EXPECT_EQ(engine->ModExp(x, e), want_power)
            << engine->Name() << " bits=" << bits;
      }
    }
  }
}

// The engines sharing the paper's Montgomery parameter R = 2^(l+2) agree
// on the *raw* product, not just after normalisation.
TEST(EngineMatrix, PaperRadixEnginesShareRawProducts) {
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(10);
  const BigUInt two_n = n << 1;
  const auto reference = MakeEngine("bit-serial", n);
  for (const char* name : {"mmmc", "interleaved", "netlist-sim"}) {
    const auto engine = MakeEngine(name, n);
    for (int trial = 0; trial < 8; ++trial) {
      const BigUInt x = rng.Below(two_n), y = rng.Below(two_n);
      EXPECT_EQ(engine->Multiply(x, y), reference->Multiply(x, y)) << name;
    }
    // Window enforcement: 2N itself is out of range.
    EXPECT_THROW(engine->Multiply(two_n, BigUInt{1}), std::invalid_argument)
        << name;
  }
}

// ---------------------------------------------------------------------------
// Cross-engine equivalence matrix, GF(2^m)
// ---------------------------------------------------------------------------

TEST(EngineMatrix, DualFieldBackendsBitIdenticalOnGf2Sweep) {
  auto rng = test::TestRng();
  const EngineOptions gf2{.field = EngineField::kGf2};
  for (const std::uint64_t poly : {0x13ull, 0x11bull}) {  // deg 4, deg 8 (AES)
    const BigUInt f{poly};
    const std::size_t m = bignum::gf2::Degree(f);
    const bignum::Gf2Field field(f);
    std::vector<std::unique_ptr<MmmEngine>> engines;
    for (const char* name : {"bit-serial", "mmmc", "netlist-sim"}) {
      engines.push_back(MakeEngine(name, f, gf2));
      EXPECT_EQ(engines.back()->Field(), EngineField::kGf2);
      EXPECT_EQ(engines.back()->l(), m);
    }
    for (int trial = 0; trial < 8; ++trial) {
      const BigUInt a = rng.Below(BigUInt::PowerOfTwo(m));
      const BigUInt b = rng.Below(BigUInt::PowerOfTwo(m));
      const BigUInt want_product = field.Mul(a, b);
      const BigUInt raw = bignum::gf2::MontMul(a, b, f);
      const BigUInt e = rng.ExactBits(m);
      const BigUInt want_power = field.Pow(a, e);
      for (const auto& engine : engines) {
        EXPECT_EQ(engine->Multiply(a, b), raw) << engine->Name();
        EXPECT_EQ(engine->FromMont(
                      engine->Multiply(engine->ToMont(a), engine->ToMont(b))),
                  want_product)
            << engine->Name();
        EXPECT_EQ(engine->ModExp(a, e), want_power) << engine->Name();
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Batch lanes, stats, delegation
// ---------------------------------------------------------------------------

TEST(Engine, NetlistBatchLanesMatchScalarPath) {
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(8);
  const BigUInt two_n = n << 1;
  const auto engine = MakeEngine("netlist-sim", n);
  ASSERT_EQ(engine->Caps().batch_lanes, 64u);
  std::vector<BigUInt> xs, ys;
  for (int j = 0; j < 10; ++j) {
    xs.push_back(rng.Below(two_n));
    ys.push_back(rng.Below(two_n));
  }
  std::uint64_t batch_cycles = 0;
  const auto batch = engine->MultiplyBatch(xs, ys, &batch_cycles);
  ASSERT_EQ(batch.size(), xs.size());
  for (std::size_t j = 0; j < xs.size(); ++j) {
    EXPECT_EQ(batch[j], engine->Multiply(xs[j], ys[j])) << "lane " << j;
  }
  // Ten products, one 64-lane pass: 3l+4 cycles total, not 10x.
  EXPECT_EQ(batch_cycles, MultiplyCycles(engine->l()));
}

TEST(Engine, StatsAccountingIsNormalized) {
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(24);
  const BigUInt base = rng.Below(n);
  const BigUInt e = rng.BalancedExactBits(24);
  const auto engine = MakeEngine("bit-serial", n);
  EngineStats stats;
  engine->ModExp(base, e, &stats);
  EXPECT_EQ(stats.mmm_invocations,
            stats.squarings + stats.multiplications + 2);
  EXPECT_EQ(stats.engine_cycles,
            stats.mmm_invocations * MultiplyCycles(engine->l()));
  EXPECT_EQ(stats.paper_model_cycles,
            ExponentiationCycles(engine->l(), stats.squarings,
                                 stats.multiplications));
  // The cycle-accurate array measures exactly what the model charges.
  EngineStats measured;
  MakeEngine("mmmc", n)->ModExp(base, e, &measured);
  EXPECT_EQ(measured.engine_cycles, stats.engine_cycles);
  EXPECT_EQ(measured.squarings, stats.squarings);
}

TEST(Engine, BaselineDelegatesToRegistryBackend) {
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(16);
  const baseline::BlumPaarRadix2 baseline_model(n);
  const auto engine = MakeEngine("blum-paar", n);
  for (int trial = 0; trial < 6; ++trial) {
    const BigUInt x = rng.Below(n << 1), y = rng.Below(n << 1);
    EXPECT_EQ(baseline_model.Multiply(x, y), engine->Multiply(x, y));
  }
  std::uint64_t mmm_count = 0;
  const BigUInt e = rng.ExactBits(16);
  EXPECT_EQ(baseline_model.ModExp(BigUInt{5}, e, &mmm_count),
            engine->ModExp(BigUInt{5}, e));
  EXPECT_GT(mmm_count, 0u);
}

}  // namespace
}  // namespace mont::core
