// Tests for the gate-level netlist IR, simulator, component library,
// static timing analysis and Verilog export.
#include <gtest/gtest.h>

#include <cstdint>

#include "rtl/components.hpp"
#include "rtl/netlist.hpp"
#include "rtl/simulator.hpp"
#include "rtl/timing.hpp"
#include "rtl/verilog.hpp"
#include "testutil_netlist.hpp"

namespace mont::rtl {
namespace {

TEST(Netlist, GateTruthTables) {
  Netlist nl;
  const NetId a = nl.AddInput("a");
  const NetId b = nl.AddInput("b");
  const NetId and_g = nl.And(a, b);
  const NetId or_g = nl.Or(a, b);
  const NetId xor_g = nl.Xor(a, b);
  const NetId nand_g = nl.Nand(a, b);
  const NetId nor_g = nl.Nor(a, b);
  const NetId xnor_g = nl.Xnor(a, b);
  const NetId not_g = nl.Not(a);
  const NetId buf_g = nl.Buf(a);
  Simulator sim(nl);
  for (int va = 0; va <= 1; ++va) {
    for (int vb = 0; vb <= 1; ++vb) {
      sim.SetInput(a, va);
      sim.SetInput(b, vb);
      sim.Settle();
      EXPECT_EQ(sim.Peek(and_g), (va & vb) != 0);
      EXPECT_EQ(sim.Peek(or_g), (va | vb) != 0);
      EXPECT_EQ(sim.Peek(xor_g), (va ^ vb) != 0);
      EXPECT_EQ(sim.Peek(nand_g), !(va & vb));
      EXPECT_EQ(sim.Peek(nor_g), !(va | vb));
      EXPECT_EQ(sim.Peek(xnor_g), !(va ^ vb));
      EXPECT_EQ(sim.Peek(not_g), !va);
      EXPECT_EQ(sim.Peek(buf_g), va != 0);
    }
  }
}

TEST(Netlist, MuxSelects) {
  Netlist nl;
  const NetId sel = nl.AddInput("sel");
  const NetId d0 = nl.AddInput("d0");
  const NetId d1 = nl.AddInput("d1");
  const NetId mux = nl.Mux(sel, d0, d1);
  Simulator sim(nl);
  for (int s = 0; s <= 1; ++s) {
    for (int v0 = 0; v0 <= 1; ++v0) {
      for (int v1 = 0; v1 <= 1; ++v1) {
        sim.SetInput(sel, s);
        sim.SetInput(d0, v0);
        sim.SetInput(d1, v1);
        sim.Settle();
        EXPECT_EQ(sim.Peek(mux), (s ? v1 : v0) != 0);
      }
    }
  }
}

TEST(Netlist, ConstantsAreFixed) {
  Netlist nl;
  Simulator sim(nl);
  EXPECT_FALSE(sim.Peek(nl.Const0()));
  EXPECT_TRUE(sim.Peek(nl.Const1()));
}

TEST(Netlist, StatsCountGateFamilies) {
  Netlist nl;
  const NetId a = nl.AddInput("a");
  const NetId b = nl.AddInput("b");
  nl.And(a, b);
  nl.Nand(a, b);
  nl.Or(a, b);
  nl.Xor(a, b);
  nl.Xnor(a, b);
  nl.Not(a);
  nl.Mux(a, b, b);
  nl.Dff(a);
  const NetlistStats stats = nl.Stats();
  EXPECT_EQ(stats.inputs, 2u);
  EXPECT_EQ(stats.and_gates, 2u);
  EXPECT_EQ(stats.or_gates, 1u);
  EXPECT_EQ(stats.xor_gates, 2u);
  EXPECT_EQ(stats.not_gates, 1u);
  EXPECT_EQ(stats.mux_gates, 1u);
  EXPECT_EQ(stats.flip_flops, 1u);
}

TEST(Netlist, CombinationalCycleDetected) {
  Netlist nl;
  const NetId a = nl.AddInput("a");
  // Build a cycle through a DFF rewire trick is legal; a pure combinational
  // cycle must throw.  Construct one via RewireDff misuse is prevented, so
  // test detection through an artificial self-feeding structure:
  const NetId dff = nl.Dff(a);
  (void)dff;
  EXPECT_NO_THROW(nl.TopoOrder());
}

TEST(Netlist, DffFeedbackThroughLogicIsLegal) {
  // q toggles: q <= NOT q.
  Netlist nl;
  const NetId dff = nl.Dff(nl.Const0());
  const NetId inv = nl.Not(dff);
  nl.RewireDff(dff, inv);
  Simulator sim(nl);
  EXPECT_FALSE(sim.Peek(dff));
  sim.Tick();
  EXPECT_TRUE(sim.Peek(dff));
  sim.Tick();
  EXPECT_FALSE(sim.Peek(dff));
}

TEST(Simulator, DffEnableAndReset) {
  Netlist nl;
  const NetId d = nl.AddInput("d");
  const NetId en = nl.AddInput("en");
  const NetId rst = nl.AddInput("rst");
  const NetId q = nl.Dff(d, en, rst);
  Simulator sim(nl);
  sim.SetInput(d, true);
  sim.SetInput(en, false);
  sim.SetInput(rst, false);
  sim.Tick();
  EXPECT_FALSE(sim.Peek(q)) << "disabled DFF must hold";
  sim.SetInput(en, true);
  sim.Tick();
  EXPECT_TRUE(sim.Peek(q)) << "enabled DFF must capture";
  sim.SetInput(rst, true);
  sim.Tick();
  EXPECT_FALSE(sim.Peek(q)) << "sync reset must clear even when enabled";
}

TEST(Simulator, ResetClearsStateAndCycles) {
  Netlist nl;
  const NetId q = nl.Dff(nl.Const1());
  Simulator sim(nl);
  sim.Run(3);
  EXPECT_TRUE(sim.Peek(q));
  EXPECT_EQ(sim.CycleCount(), 3u);
  sim.Reset();
  EXPECT_FALSE(sim.Peek(q));
  EXPECT_EQ(sim.CycleCount(), 0u);
}

TEST(Simulator, SetInputRejectsNonInputs) {
  Netlist nl;
  const NetId a = nl.AddInput("a");
  const NetId g = nl.Not(a);
  Simulator sim(nl);
  EXPECT_THROW(sim.SetInput(g, true), std::logic_error);
}

TEST(Simulator, PeekBusRejectsWideBusesPeekWideReadsThem) {
  Netlist nl;
  const Bus wide = InputBus(nl, "w", 70);
  Simulator sim(nl);
  bignum::BigUInt expect;
  for (std::size_t i = 0; i < wide.size(); i += 3) {
    sim.SetInput(wide[i], true);
    expect.SetBit(i, true);
  }
  sim.Settle();
  EXPECT_THROW(sim.PeekBus(wide), std::invalid_argument);
  EXPECT_EQ(sim.PeekWide(wide), expect);
  // Narrow buses: both views agree.
  const Bus low(wide.begin(), wide.begin() + 8);
  EXPECT_EQ(sim.PeekWide(low).ToUint64(), sim.PeekBus(low));
}

TEST(Components, HalfAdderTruthTable) {
  Netlist nl;
  const NetId a = nl.AddInput("a");
  const NetId b = nl.AddInput("b");
  const AdderBit ha = HalfAdder(nl, a, b);
  Simulator sim(nl);
  for (int va = 0; va <= 1; ++va) {
    for (int vb = 0; vb <= 1; ++vb) {
      sim.SetInput(a, va);
      sim.SetInput(b, vb);
      sim.Settle();
      EXPECT_EQ(sim.Peek(ha.sum), ((va + vb) & 1) != 0);
      EXPECT_EQ(sim.Peek(ha.carry), ((va + vb) >> 1) != 0);
    }
  }
}

TEST(Components, FullAdderTruthTable) {
  Netlist nl;
  const NetId a = nl.AddInput("a");
  const NetId b = nl.AddInput("b");
  const NetId c = nl.AddInput("c");
  const AdderBit fa = FullAdder(nl, a, b, c);
  Simulator sim(nl);
  for (int v = 0; v < 8; ++v) {
    sim.SetInput(a, v & 1);
    sim.SetInput(b, (v >> 1) & 1);
    sim.SetInput(c, (v >> 2) & 1);
    sim.Settle();
    const int total = (v & 1) + ((v >> 1) & 1) + ((v >> 2) & 1);
    EXPECT_EQ(sim.Peek(fa.sum), (total & 1) != 0);
    EXPECT_EQ(sim.Peek(fa.carry), (total >> 1) != 0);
  }
}

class RippleAdderWidths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RippleAdderWidths, AddsExhaustivelyOrSampled) {
  const std::size_t width = GetParam();
  Netlist nl;
  const Bus a = InputBus(nl, "a", width);
  const Bus b = InputBus(nl, "b", width);
  const Bus sum = RippleCarryAdder(nl, a, b);
  ASSERT_EQ(sum.size(), width + 1);
  Simulator sim(nl);
  const std::uint64_t limit = width <= 4 ? (1ull << width) : 16;
  const std::uint64_t step = width <= 4 ? 1 : ((1ull << width) / 16) | 1;
  for (std::uint64_t va = 0; va < (1ull << width); va += step) {
    for (std::uint64_t vb = 0; vb < (1ull << width); vb += step) {
      test::SetBus(sim, a, va);
      test::SetBus(sim, b, vb);
      sim.Settle();
      EXPECT_EQ(sim.PeekBus(sum), va + vb);
    }
  }
  (void)limit;
}

INSTANTIATE_TEST_SUITE_P(Widths, RippleAdderWidths,
                         ::testing::Values(1, 2, 3, 4, 8, 16));

TEST(Components, LoadRegisterHoldsAndLoads) {
  Netlist nl;
  const Bus d = InputBus(nl, "d", 4);
  const NetId load = nl.AddInput("load");
  const Bus q = LoadRegister(nl, d, load);
  Simulator sim(nl);
  test::SetBus(sim, d, 0xa);
  sim.SetInput(load, false);
  sim.Tick();
  EXPECT_EQ(sim.PeekBus(q), 0u);
  sim.SetInput(load, true);
  sim.Tick();
  EXPECT_EQ(sim.PeekBus(q), 0xau);
  sim.SetInput(load, false);
  test::SetBus(sim, d, 0);
  sim.Tick();
  EXPECT_EQ(sim.PeekBus(q), 0xau) << "must hold without load";
}

TEST(Components, ShiftRightRegisterShiftsInFill) {
  Netlist nl;
  const Bus d = InputBus(nl, "d", 4);
  const NetId load = nl.AddInput("load");
  const NetId shift = nl.AddInput("shift");
  const Bus q = ShiftRightRegister(nl, d, load, shift, nl.Const0());
  Simulator sim(nl);
  test::SetBus(sim, d, 0b1101);
  sim.SetInput(load, true);
  sim.SetInput(shift, false);
  sim.Tick();
  EXPECT_EQ(sim.PeekBus(q), 0b1101u);
  sim.SetInput(load, false);
  sim.SetInput(shift, true);
  sim.Tick();
  EXPECT_EQ(sim.PeekBus(q), 0b0110u);
  sim.Tick();
  EXPECT_EQ(sim.PeekBus(q), 0b0011u);
  sim.SetInput(shift, false);
  sim.Tick();
  EXPECT_EQ(sim.PeekBus(q), 0b0011u) << "must hold without shift";
}

TEST(Components, CounterCountsAndResets) {
  Netlist nl;
  const NetId inc = nl.AddInput("inc");
  const NetId rst = nl.AddInput("rst");
  const Bus count = Counter(nl, 5, inc, rst);
  Simulator sim(nl);
  sim.SetInput(inc, true);
  sim.SetInput(rst, false);
  for (std::uint64_t expect = 1; expect <= 40; ++expect) {
    sim.Tick();
    EXPECT_EQ(sim.PeekBus(count), expect & 0x1f);
  }
  sim.SetInput(rst, true);
  sim.Tick();
  EXPECT_EQ(sim.PeekBus(count), 0u);
}

TEST(Components, EqualsConstantMatchesOnlyTarget) {
  Netlist nl;
  const Bus v = InputBus(nl, "v", 6);
  const NetId eq = EqualsConstant(nl, v, 37);
  Simulator sim(nl);
  for (std::uint64_t value = 0; value < 64; ++value) {
    test::SetBus(sim, v, value);
    sim.Settle();
    EXPECT_EQ(sim.Peek(eq), value == 37u) << value;
  }
}

TEST(Components, ReduceHelpers) {
  Netlist nl;
  const Bus v = InputBus(nl, "v", 5);
  const NetId all = ReduceAnd(nl, v);
  const NetId any = ReduceOr(nl, v);
  Simulator sim(nl);
  for (std::uint64_t value = 0; value < 32; ++value) {
    test::SetBus(sim, v, value);
    sim.Settle();
    EXPECT_EQ(sim.Peek(all), value == 31u);
    EXPECT_EQ(sim.Peek(any), value != 0u);
  }
}

TEST(Timing, FullAdderCriticalPath) {
  Netlist nl;
  const NetId a = nl.AddInput("a");
  const NetId b = nl.AddInput("b");
  const NetId cin = nl.AddInput("cin");
  const AdderBit fa = FullAdder(nl, a, b, cin);
  nl.MarkOutput(fa.sum, "sum");
  nl.MarkOutput(fa.carry, "cout");
  const TimingAnalyzer sta(nl, DelayModel::Unit());
  // Longest: input -> xor -> (xor|and) -> or = 3 levels.
  EXPECT_EQ(sta.CriticalPath().logic_levels, 3u);
}

TEST(Timing, RippleAdderDepthGrowsLinearly) {
  const auto depth_of = [](std::size_t width) {
    Netlist nl;
    const Bus a = InputBus(nl, "a", width);
    const Bus b = InputBus(nl, "b", width);
    const Bus sum = RippleCarryAdder(nl, a, b);
    nl.MarkOutput(sum.back(), "cout");
    return TimingAnalyzer(nl, DelayModel::Unit()).CriticalPath().logic_levels;
  };
  const std::size_t d8 = depth_of(8);
  const std::size_t d16 = depth_of(16);
  EXPECT_GT(d16, d8);
  // Carry chain adds 2 levels (and+or) per bit after the first.
  EXPECT_EQ(d16 - d8, 2u * 8u);
}

TEST(Timing, RegisterToRegisterPathMeasured) {
  // DFF -> XOR -> DFF: one level.
  Netlist nl;
  const NetId q1 = nl.Dff(nl.Const0());
  const NetId x = nl.Xor(q1, nl.Const1());
  const NetId q2 = nl.Dff(x);
  (void)q2;
  nl.RewireDff(q1, x);
  const TimingAnalyzer sta(nl, DelayModel::Unit());
  EXPECT_EQ(sta.CriticalPath().logic_levels, 1u);
}

TEST(Verilog, ExportContainsStructure) {
  Netlist nl;
  const NetId a = nl.AddInput("a");
  const NetId b = nl.AddInput("b");
  const AdderBit fa = FullAdder(nl, a, b, nl.Const0());
  const NetId q = nl.Dff(fa.sum, b);
  nl.MarkOutput(q, "q");
  const std::string verilog = ExportVerilog(nl, "adder_reg");
  EXPECT_NE(verilog.find("module adder_reg"), std::string::npos);
  EXPECT_NE(verilog.find("input wire clk"), std::string::npos);
  EXPECT_NE(verilog.find("always @(posedge clk)"), std::string::npos);
  EXPECT_NE(verilog.find("assign out_q"), std::string::npos);
  EXPECT_NE(verilog.find("endmodule"), std::string::npos);
  // One assign per combinational gate: 2 XOR + 2 AND + 1 OR from the FA.
  std::size_t assigns = 0;
  for (std::size_t at = verilog.find("assign"); at != std::string::npos;
       at = verilog.find("assign", at + 1)) {
    ++assigns;
  }
  EXPECT_GE(assigns, 6u);
}

// Property: a registered ripple-carry accumulator netlist simulated for N
// cycles computes N * increment mod 2^width (end-to-end seq + comb check).
TEST(Integration, AccumulatorMatchesArithmetic) {
  constexpr std::size_t kWidth = 8;
  Netlist nl;
  Bus acc(kWidth);
  for (std::size_t i = 0; i < kWidth; ++i) acc[i] = nl.Dff(nl.Const0());
  const Bus inc = ConstantBus(nl, 13, kWidth);
  Bus sum = RippleCarryAdder(nl, acc, inc);
  for (std::size_t i = 0; i < kWidth; ++i) nl.RewireDff(acc[i], sum[i]);
  Simulator sim(nl);
  for (std::uint64_t n = 1; n <= 100; ++n) {
    sim.Tick();
    EXPECT_EQ(sim.PeekBus(acc), (13 * n) & 0xffu);
  }
}

}  // namespace
}  // namespace mont::rtl
