// Adversarial edge cases for the BigUInt substrate: operand aliasing,
// boundary limb patterns, the Knuth-D correction paths, and conversion
// round trips under stress.  These complement test_biguint.cpp's
// happy-path and property coverage.
#include <gtest/gtest.h>

#include "bignum/biguint.hpp"
#include "bignum/random.hpp"
#include "testutil.hpp"

namespace mont::bignum {
namespace {

TEST(BigUIntAliasing, SelfAddDoubles) {
  BigUInt a = BigUInt::FromHex("ffffffffffffffffffffffff");
  const BigUInt expect = a << 1;
  a += a;
  EXPECT_EQ(a, expect);
}

TEST(BigUIntAliasing, SelfSubtractIsZero) {
  BigUInt a = BigUInt::FromHex("123456789abcdef0f0f0");
  a -= a;
  EXPECT_TRUE(a.IsZero());
}

TEST(BigUIntAliasing, SelfMultiplySquares) {
  BigUInt a = BigUInt::FromDec("987654321987654321");
  const BigUInt expect = a * a;
  a *= a;
  EXPECT_EQ(a, expect);
}

TEST(BigUIntAliasing, DivModWithAliasedOutputs) {
  const BigUInt a = BigUInt::FromDec("123456789123456789123456789");
  const BigUInt b = BigUInt::FromDec("1000000007");
  BigUInt q = a, r = b;  // outputs alias the logical inputs' copies
  BigUInt::DivMod(q, r, q, r);
  EXPECT_EQ(q * b + r, a);
}

TEST(BigUIntEdge, ShiftByZeroAndByWholeLimbs) {
  const BigUInt a = BigUInt::FromHex("deadbeef12345678");
  EXPECT_EQ(a << 0, a);
  EXPECT_EQ(a >> 0, a);
  EXPECT_EQ((a << 32) >> 32, a);
  EXPECT_EQ((a << 96) >> 96, a);
  EXPECT_TRUE((a >> 64).IsZero());
  EXPECT_TRUE((a >> 1000).IsZero());
  BigUInt zero;
  EXPECT_TRUE((zero << 123).IsZero());
}

TEST(BigUIntEdge, AllOnesLimbPatterns) {
  // (2^k - 1) arithmetic hits every carry/borrow path.
  for (const std::size_t k : {32u, 64u, 96u, 128u, 160u}) {
    const BigUInt ones = BigUInt::PowerOfTwo(k) - BigUInt{1};
    EXPECT_EQ(ones + BigUInt{1}, BigUInt::PowerOfTwo(k));
    EXPECT_EQ((ones * ones) + (ones << 1) + BigUInt{1},
              BigUInt::PowerOfTwo(2 * k));
    EXPECT_EQ(BigUInt::PowerOfTwo(k) - ones, BigUInt{1});
  }
}

TEST(BigUIntEdge, KnuthDCorrectionPatterns) {
  // Structured dividends with saturated limbs drive q-hat over-estimation
  // (the D3 adjustment loop and the rare D6 add-back).  The property
  // a = q*b + r, r < b certifies correctness regardless of which path ran.
  auto rng = test::TestRng();
  const BigUInt f32 = BigUInt::PowerOfTwo(32) - BigUInt{1};
  std::vector<BigUInt> awkward;
  // Divisors with a maximal top limb and a zero second limb are the
  // classic add-back triggers.
  awkward.push_back((f32 << 64) + BigUInt{1});
  awkward.push_back((f32 << 64) + (f32 << 32));
  awkward.push_back(BigUInt::PowerOfTwo(95) + BigUInt{1});
  awkward.push_back((BigUInt::PowerOfTwo(64) - BigUInt{1}) << 32);
  for (const BigUInt& divisor : awkward) {
    for (int trial = 0; trial < 40; ++trial) {
      // Dividends built from the divisor so the top digits nearly match.
      BigUInt dividend = divisor * rng.ExactBits(64);
      if (trial % 2 == 0) dividend += rng.Below(divisor);
      if (trial % 3 == 0) dividend -= BigUInt{1};
      BigUInt q, r;
      BigUInt::DivMod(dividend, divisor, q, r);
      EXPECT_EQ(q * divisor + r, dividend);
      EXPECT_LT(r, divisor);
    }
  }
}

TEST(BigUIntEdge, KnownAddBackVector) {
  // The canonical Knuth add-back example scaled to 32-bit digits:
  // u = 0x7fffffff_80000000_00000000_00000000, v = 0x80000000_00000000_00000001.
  const BigUInt u = (BigUInt{0x7fffffffull} << 96) + (BigUInt{0x80000000ull} << 64);
  const BigUInt v = (BigUInt{0x80000000ull} << 64) + BigUInt{1};
  BigUInt q, r;
  BigUInt::DivMod(u, v, q, r);
  EXPECT_EQ(q * v + r, u);
  EXPECT_LT(r, v);
  EXPECT_EQ(q.ToUint64(), 0xfffffffeull);
}

TEST(BigUIntEdge, DecimalStressRoundTrip) {
  auto rng = test::TestRng();
  for (int trial = 0; trial < 25; ++trial) {
    const BigUInt v = rng.ExactBits(
        1 + static_cast<std::size_t>(rng.Engine().NextBelow(2000)));
    EXPECT_EQ(BigUInt::FromDec(v.ToDec()), v);
    EXPECT_EQ(BigUInt::FromHex(v.ToHex()), v);
  }
}

TEST(BigUIntEdge, CompareAdjacentValues) {
  auto rng = test::TestRng();
  for (int trial = 0; trial < 50; ++trial) {
    const BigUInt v = rng.ExactBits(200);
    EXPECT_LT(v, v + BigUInt{1});
    EXPECT_GT(v, v - BigUInt{1});
    EXPECT_EQ(BigUInt::Compare(v, v), 0);
  }
}

TEST(BigUIntEdge, ModExpDegenerateModuli) {
  EXPECT_THROW(BigUInt::ModExp(BigUInt{2}, BigUInt{3}, BigUInt{0}),
               std::domain_error);
  EXPECT_TRUE(BigUInt::ModExp(BigUInt{2}, BigUInt{3}, BigUInt{1}).IsZero());
  EXPECT_TRUE(BigUInt::ModExp(BigUInt{0}, BigUInt{0}, BigUInt{7}).IsOne())
      << "0^0 = 1 by the square-and-multiply convention";
}

TEST(BigUIntEdge, ZeroOperandArithmetic) {
  const BigUInt zero;
  auto rng = test::TestRng();
  const BigUInt v = rng.ExactBits(130);
  EXPECT_EQ(zero + v, v);
  EXPECT_EQ(v + zero, v);
  EXPECT_EQ(v - zero, v);
  EXPECT_TRUE((zero * v).IsZero());
  EXPECT_TRUE((v * zero).IsZero());
  EXPECT_TRUE((zero / v).IsZero());
  EXPECT_TRUE((zero % v).IsZero());
  EXPECT_TRUE((zero << 77).IsZero());
  EXPECT_TRUE((zero >> 77).IsZero());
  EXPECT_EQ(zero.LimbCount(), 0u);
  EXPECT_EQ(BigUInt::Compare(zero, BigUInt{0}), 0);
  EXPECT_EQ(BigUInt::Gcd(zero, zero).ToUint64(), 0u);
}

TEST(BigUIntEdge, OneLimbBoundaryValues) {
  // Values straddling the one-limb boundary 2^32 and the 2^64 boundary
  // ToUint64 narrows through.
  const BigUInt max32 = BigUInt::PowerOfTwo(32) - BigUInt{1};
  EXPECT_EQ(max32.LimbCount(), 1u);
  EXPECT_EQ((max32 + BigUInt{1}).LimbCount(), 2u);
  EXPECT_EQ(((max32 + BigUInt{1}) - BigUInt{1}).LimbCount(), 1u)
      << "shrinking back across the limb boundary must renormalize";
  const BigUInt max64 = BigUInt::PowerOfTwo(64) - BigUInt{1};
  EXPECT_EQ(max64.LimbCount(), 2u);
  EXPECT_EQ(max64.ToUint64(), ~0ull);
  EXPECT_EQ((max64 + BigUInt{1}).BitLength(), 65u);
  EXPECT_EQ((max64 * max64) + (max64 << 1) + BigUInt{1},
            BigUInt::PowerOfTwo(128));
}

TEST(BigUIntEdge, CarryChainsAcrossManyLimbs) {
  // 0xfff...f + 1 must propagate a carry through every limb, and the
  // subtraction must borrow all the way back down.
  for (const std::size_t bits : {32u, 64u, 96u, 256u, 1024u}) {
    const BigUInt ones = BigUInt::PowerOfTwo(bits) - BigUInt{1};
    EXPECT_EQ(ones + BigUInt{1}, BigUInt::PowerOfTwo(bits)) << bits;
    EXPECT_EQ(BigUInt::PowerOfTwo(bits) - BigUInt{1}, ones)
        << "borrow cascade at " << bits;
    EXPECT_EQ((ones + ones) >> 1, ones) << "doubling carries at " << bits;
  }
}

TEST(BigUIntEdge, MulCarryBoundaryIdentity) {
  // Saturated multiplicands drive the widening carry path; the identity
  // (2^k - 1) * b == (b << k) - b certifies it against shift/subtract.
  auto rng = test::TestRng();
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t k =
        1 + static_cast<std::size_t>(rng.Engine().NextBelow(200));
    const BigUInt a = BigUInt::PowerOfTwo(k) - BigUInt{1};
    const BigUInt b =
        rng.ExactBits(1 + static_cast<std::size_t>(rng.Engine().NextBelow(200)));
    EXPECT_EQ(a * b, (b << k) - b) << "k=" << k;
  }
}

TEST(BigUIntEdge, SetBitClearingNormalizes) {
  BigUInt v;
  v.SetBit(100, true);
  EXPECT_EQ(v.LimbCount(), 4u);
  v.SetBit(100, false);
  EXPECT_EQ(v.LimbCount(), 0u) << "clearing the top bit must renormalize";
  EXPECT_TRUE(v.IsZero());
}

}  // namespace
}  // namespace mont::bignum
